package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarkovRowsSumToOne(t *testing.T) {
	mk := NewMarkov(64, 0.3)
	for i := 0; i <= 64; i++ {
		down, stay, up := mk.Probs(i)
		if down < 0 || stay < 0 || up < 0 {
			t.Fatalf("negative probability at state %d", i)
		}
		if s := down + stay + up; math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestMarkovBoundaries(t *testing.T) {
	mk := NewMarkov(64, 0.5)
	down, _, _ := mk.Probs(0)
	if down != 0 {
		t.Error("state 0 can move down")
	}
	_, _, up := mk.Probs(64)
	if up != 0 {
		t.Error("state N can move up")
	}
}

// TestMarkovMatchesClosedForm is the central validation of the appendix
// derivation: evolving the chain must reproduce the closed form
// E[F_C] = qN − (qN − S)·kⁿ exactly (the closed form is the chain's
// expectation, not an approximation).
func TestMarkovMatchesClosedForm(t *testing.T) {
	const n = 128
	m := New(n)
	for _, q := range []float64{0, 0.2, 0.5, 0.8, 1} {
		mk := NewMarkov(n, q)
		for _, s0 := range []int{0, 1, 64, 127, 128} {
			for _, steps := range []int{0, 1, 2, 10, 100, 500} {
				chain := mk.Expected(s0, steps)
				closed := m.ExpectDep(float64(s0), q, uint64(steps))
				if math.Abs(chain-closed) > 1e-6 {
					t.Errorf("q=%v S=%d n=%d: chain %v, closed form %v", q, s0, steps, chain, closed)
				}
			}
		}
	}
}

func TestMarkovMatchesClosedFormQuick(t *testing.T) {
	const n = 64
	m := New(n)
	f := func(s8, q8 uint8, steps8 uint8) bool {
		s0 := int(s8) % (n + 1)
		q := float64(q8) / 255
		steps := int(steps8)
		chain := NewMarkov(n, q).Expected(s0, steps)
		closed := m.ExpectDep(float64(s0), q, uint64(steps))
		return math.Abs(chain-closed) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkovDistributionStaysNormalized(t *testing.T) {
	mk := NewMarkov(32, 0.37)
	dist := make([]float64, 33)
	dist[5] = 1
	out := mk.Evolve(dist, 200)
	var sum float64
	for _, p := range out {
		if p < -1e-15 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v after 200 steps", sum)
	}
	// Input must be untouched.
	if dist[5] != 1 {
		t.Error("Evolve mutated its input")
	}
}

func TestMarkovAbsorbingExtremes(t *testing.T) {
	// q=1 with a full footprint stays full; q=0 from empty stays empty.
	if got := NewMarkov(16, 1).Expected(16, 50); math.Abs(got-16) > 1e-9 {
		t.Errorf("full footprint under q=1 drifted to %v", got)
	}
	if got := NewMarkov(16, 0).Expected(0, 50); got != 0 {
		t.Errorf("empty footprint under q=0 drifted to %v", got)
	}
}

func TestMarkovValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMarkov(0, 0.5) },
		func() { NewMarkov(16, -0.1) },
		func() { NewMarkov(16, 1.1) },
		func() { NewMarkov(16, 0.5).Probs(17) },
		func() { NewMarkov(16, 0.5).Expected(17, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{0, 0.5, 0.5}); got != 1.5 {
		t.Errorf("Mean = %v, want 1.5", got)
	}
}
