package model

import (
	"strings"
	"testing"
)

// fakeScheme is a registrable no-op priority algebra for registry tests.
type fakeScheme struct{ name string }

func (f fakeScheme) Name() string { return f.name }
func (f fakeScheme) Blocking(m *Model, s float64, n, mt uint64) (float64, float64) {
	return 0, 0
}
func (f fakeScheme) Dependent(m *Model, s, slast, q float64, n, mt uint64) (float64, float64) {
	return 0, 0
}
func (f fakeScheme) Initial(m *Model, s, slast float64, mt uint64) float64 { return 0 }
func (f fakeScheme) Footprint(m *Model, prio, slast float64, mt uint64) float64 {
	return 0
}

func TestSchemeForBuiltins(t *testing.T) {
	for _, name := range []string{"LFF", "lff", " CRT ", "crt"} {
		s, err := SchemeFor(name)
		if err != nil || s == nil {
			t.Errorf("SchemeFor(%q) = %v, %v", name, s, err)
		}
	}
	// FCFS resolves to no scheme, no error — the baseline.
	for _, name := range []string{"FCFS", "fcfs"} {
		s, err := SchemeFor(name)
		if err != nil || s != nil {
			t.Errorf("SchemeFor(%q) = %v, %v; want nil, nil", name, s, err)
		}
	}
}

func TestSchemeForUnknownListsPolicies(t *testing.T) {
	_, err := SchemeFor("BOGUS")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, want := range []string{"BOGUS", "FCFS", "LFF", "CRT"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestRegisterSchemeRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Scheme
		want string
	}{
		{"nil", nil, "nil"},
		{"empty name", fakeScheme{name: "  "}, "empty"},
		{"reserved baseline", fakeScheme{name: "fcfs"}, "reserved"},
		{"duplicate builtin", fakeScheme{name: "lff"}, "already registered"},
	}
	for _, c := range cases {
		if err := RegisterScheme(c.s); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestRegisterSchemeExtends(t *testing.T) {
	s := fakeScheme{name: "regtest-xyz"}
	if err := RegisterScheme(s); err != nil {
		t.Fatalf("RegisterScheme: %v", err)
	}
	defer delete(schemes, "REGTEST-XYZ")
	got, err := SchemeFor("Regtest-Xyz")
	if err != nil || got == nil {
		t.Fatalf("SchemeFor after register = %v, %v", got, err)
	}
	if err := RegisterScheme(fakeScheme{name: "REGTEST-XYZ"}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	found := false
	for _, n := range Schemes() {
		if n == "REGTEST-XYZ" {
			found = true
		}
	}
	if !found {
		t.Errorf("Schemes() = %v missing the registered name", Schemes())
	}
	if Schemes()[0] != "FCFS" {
		t.Errorf("Schemes()[0] = %q, want FCFS first", Schemes()[0])
	}
}
