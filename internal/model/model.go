// Package model implements the paper's shared-state cache model: the
// closed-form expected footprints of Section 2.4, the inflated priority
// algebra of Section 4 (for the LFF and CRT policies), and the appendix
// Markov chain the closed form is derived from.
//
// Throughout, N is the cache size in lines, k = (N-1)/N, S is a thread's
// expected footprint (in lines) at the last time it was updated, n is
// the number of E-cache misses taken by the blocking thread during its
// scheduling interval, and m(t) is the processor's cumulative E-cache
// miss count. The three closed forms are:
//
//	blocking thread A:    E[F_A] = N − (N − S_A)·kⁿ
//	independent thread B: E[F_B] = S_B·kⁿ
//	dependent thread C:   E[F_C] = q·N − (q·N − S_C)·kⁿ
//
// where q is the sharing coefficient on edge (A, C) of the dependency
// graph. Cases 1 and 2 are the q=1 and q=0 limits of case 3.
//
// The model pre-computes kⁿ for a large range of n and log F for all
// integer footprints 0 < F ≤ N, exactly as the paper's implementation
// does, so that a priority update costs a handful of floating-point
// instructions. Every floating-point operation performed by the exported
// update entry points is counted, which is how Table 3 is regenerated.
package model

import (
	"fmt"
	"math"
	"sync"
)

// powTableSize bounds the pre-computed kⁿ table. Scheduling intervals
// with more misses than this fall back to exp(n·log k); for a 512KB /
// 64B-line cache k^65536 ≈ 3e-4, so the table covers every interval that
// leaves any footprint worth scheduling for.
const powTableSize = 1 << 16

// Model holds the per-cache-geometry constants and lookup tables.
type Model struct {
	n     int     // cache size in lines
	k     float64 // (N-1)/N
	logK  float64 // log k (negative)
	powK  []float64
	logF  []float64 // logF[i] = log(i), logF[0] = log of smallest footprint quantum
	flops uint64
}

// New builds a model for a cache of n lines (n >= 2).
func New(n int) *Model {
	if n < 2 {
		// Invariant: rt.New and replay validate cache geometry before
		// building a model.
		panic(fmt.Sprintf("model: cache of %d lines", n))
	}
	t := tablesFor(n)
	return &Model{
		n:    n,
		k:    float64(n-1) / float64(n),
		logK: math.Log(float64(n-1) / float64(n)),
		powK: t.powK,
		logF: t.logF,
	}
}

// modelTables are the immutable lookup tables for one cache geometry.
// Building them costs ~80K math calls, and every cell of a sweep
// builds a model for the same geometry, so they are cached process-wide
// and shared: the tables are pure functions of n and never written
// after construction (the Model keeps its mutable FLOP counter
// per-instance, so sharing is race-free across parallel cells).
type modelTables struct {
	powK []float64
	logF []float64
}

var tableCache sync.Map // int (n) -> *modelTables

func tablesFor(n int) *modelTables {
	if t, ok := tableCache.Load(n); ok {
		return t.(*modelTables)
	}
	t := &modelTables{
		powK: make([]float64, powTableSize),
		logF: make([]float64, n+1),
	}
	k := float64(n-1) / float64(n)
	p := 1.0
	for i := range t.powK {
		t.powK[i] = p
		p *= k
	}
	// log(0) is demanded when a thread has no state; treat a footprint
	// below one line as one line so priorities stay finite and ordered.
	t.logF[0] = 0
	for i := 1; i <= n; i++ {
		t.logF[i] = math.Log(float64(i))
	}
	// A racing builder may store first; keep whichever won so every
	// caller shares one copy (the values are identical either way).
	actual, _ := tableCache.LoadOrStore(n, t)
	return actual.(*modelTables)
}

// N returns the cache size in lines.
func (m *Model) N() int { return m.n }

// K returns (N-1)/N.
func (m *Model) K() float64 { return m.k }

// LogK returns log((N-1)/N), a negative constant.
func (m *Model) LogK() float64 { return m.logK }

// FLOPs returns the number of floating-point operations performed by
// update entry points since the last reset. Table lookups (kⁿ, log F)
// are not counted, matching the paper's accounting.
func (m *Model) FLOPs() uint64 { return m.flops }

// ResetFLOPs zeroes the operation counter.
func (m *Model) ResetFLOPs() { m.flops = 0 }

// PowK returns kⁿ, from the table when possible.
func (m *Model) PowK(n uint64) float64 {
	if n < powTableSize {
		return m.powK[n]
	}
	return math.Exp(float64(n) * m.logK)
}

// Log returns log f, using the pre-computed integer table when f is a
// small non-negative integer value and the libm call otherwise.
// Footprints below one line are clamped to one line (log 0 is -inf and
// would poison priority arithmetic; a sub-line footprint cannot be
// distinguished from an empty one by the scheduler anyway).
func (m *Model) Log(f float64) float64 {
	if f < 1 {
		return 0
	}
	if i := int(f); float64(i) == f && i <= m.n {
		return m.logF[i]
	}
	return math.Log(f)
}

// CheckFootprint returns a descriptive error when s is not a valid
// footprint for a cache of n lines: NaN, negative, or larger than the
// cache. It is the error-returning validation used where untrusted
// footprints enter the model (trace validation, replay, tests); the
// update entry points themselves clamp instead, because a scheduling
// hint must never fault the program.
func CheckFootprint(s float64, n int) error {
	if math.IsNaN(s) {
		return fmt.Errorf("model: footprint is NaN")
	}
	if s < 0 || s > float64(n) {
		return fmt.Errorf("model: footprint %v outside [0, %d]", s, n)
	}
	return nil
}

// CheckSharing returns a descriptive error when q is not a valid sharing
// coefficient: NaN or outside [0, 1].
func CheckSharing(q float64) error {
	if math.IsNaN(q) {
		return fmt.Errorf("model: sharing coefficient is NaN")
	}
	if q < 0 || q > 1 {
		return fmt.Errorf("model: sharing coefficient %v outside [0, 1]", q)
	}
	return nil
}

// ClampFootprint forces s into the valid footprint range [0, n].
// NaN clamps to 0 (an unknown footprint is treated as no footprint).
// In-range values are returned unchanged.
func ClampFootprint(s float64, n int) float64 {
	if !(s > 0) { // catches negatives and NaN
		return 0
	}
	if fn := float64(n); s > fn {
		return fn
	}
	return s
}

// ClampSharing forces q into [0, 1]; NaN clamps to 0 (an unknown
// coefficient shares nothing). In-range values are returned unchanged.
func ClampSharing(q float64) float64 {
	if !(q > 0) {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// clampS bounds an incoming footprint to [0, N] for this model's cache.
// A no-op for every value the scheduler itself produces; it exists so
// corrupted counter readings or hostile recordings cannot push the
// closed forms outside their domain (where log would return -Inf and
// poison every later priority).
func (m *Model) clampS(s float64) float64 { return ClampFootprint(s, m.n) }

// ExpectSelf returns the expected footprint of the blocking thread
// itself after taking n misses, given its footprint s when dispatched
// (case 1: E = N − (N−s)·kⁿ). s is clamped to [0, N], so the result is
// always in [0, N] as well.
func (m *Model) ExpectSelf(s float64, n uint64) float64 {
	s = m.clampS(s)
	fn := float64(m.n)
	return fn - (fn-s)*m.PowK(n)
}

// ExpectIndep returns the expected footprint of a thread independent of
// the blocking thread after the blocker took n misses (case 2:
// E = s·kⁿ). s is clamped to [0, N].
func (m *Model) ExpectIndep(s float64, n uint64) float64 {
	return m.clampS(s) * m.PowK(n)
}

// ExpectDep returns the expected footprint of a thread that shares state
// with the blocking thread, where q is the sharing coefficient on the
// (blocker, thread) edge (case 3: E = qN − (qN−s)·kⁿ). s is clamped to
// [0, N] and q to [0, 1], so the result is always in [0, N].
func (m *Model) ExpectDep(s, q float64, n uint64) float64 {
	s = m.clampS(s)
	qn := ClampSharing(q) * float64(m.n)
	return qn - (qn-s)*m.PowK(n)
}

// Decay returns a footprint s observed when the processor's miss counter
// read m0, decayed to the instant the counter reads mt. Between updates
// every thread is independent of whatever ran, so the universal decay
// law E(t) = s·k^(m(t)−m0) applies; this is what makes the inflated
// priorities of Section 4 time-invariant. s is clamped to [0, N]; a
// non-monotonic counter (mt < m0, impossible on healthy hardware but
// routine under fault injection) leaves s undecayed rather than
// amplifying it.
func (m *Model) Decay(s float64, m0, mt uint64) float64 {
	s = m.clampS(s)
	if mt <= m0 {
		return s
	}
	return s * m.PowK(mt-m0)
}
