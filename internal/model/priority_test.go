package model

import (
	"math"
	"testing"
	"testing/quick"
)

// prioAt recomputes, from first principles, what a scheme's priority
// *should* be for a thread whose footprint decayed from (s, m0) to time
// mt, using the definition p = log E(t) − [log E_last] − m(t)·log k.
func prioAt(sch Scheme, m *Model, s, slast float64, m0, mt uint64) float64 {
	e := m.Decay(s, m0, mt)
	switch sch.(type) {
	case LFF:
		return m.Log(e) - float64(mt)*m.LogK()
	case CRT:
		if slast <= 0 {
			slast = s
		}
		return m.Log(e) - m.Log(slast) - float64(mt)*m.LogK()
	}
	panic("unknown scheme")
}

// TestIndependentPriorityInvariance is the paper's central O(d) claim:
// for a thread not involved in a context switch, the inflated priority
// computed at any later miss count equals the priority computed when its
// entry was last updated — so independent threads need no update at all.
func TestIndependentPriorityInvariance(t *testing.T) {
	m := New(8192)
	for _, sch := range []Scheme{LFF{}, CRT{}} {
		f := func(s16 uint16, m0x uint16, dx uint16) bool {
			s := float64(s16%8192) + 1
			m0 := uint64(m0x)
			mt := m0 + uint64(dx)
			if m.Decay(s, m0, mt) < 1 {
				// Below one resident line the Log clamp flattens the
				// priority on purpose: such a thread is cold and its
				// exact order no longer matters. The invariance claim
				// applies to footprints of at least one line.
				return true
			}
			p0 := prioAt(sch, m, s, s, m0, m0)
			p1 := prioAt(sch, m, s, s, m0, mt)
			// Identical up to floating-point noise: the decay's k^Δ and
			// the −m·logk term cancel only analytically, so allow tiny
			// error relative to the magnitudes involved.
			tol := 1e-9 * (1 + math.Abs(p0) + float64(mt)*(-m.LogK()))
			return math.Abs(p0-p1) <= tol
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", sch.Name(), err)
		}
	}
}

// TestLFFOrderEquivalence: at a common instant, LFF priority order must
// equal expected-footprint order (p_A < p_B ⟺ E[F_A] < E[F_B]).
func TestLFFOrderEquivalence(t *testing.T) {
	m := New(8192)
	f := func(sa, sb uint16, m0a16, m0b16 uint16, dt16 uint16) bool {
		fa, fb := float64(sa%8192)+1, float64(sb%8192)+1
		m0a, m0b := uint64(m0a16), uint64(m0b16)
		mt := maxU64(m0a, m0b) + uint64(dt16)
		pa := prioAt(LFF{}, m, fa, fa, m0a, m0a)
		pb := prioAt(LFF{}, m, fb, fb, m0b, m0b)
		ea := m.Decay(fa, m0a, mt)
		eb := m.Decay(fb, m0b, mt)
		// Clamp footprints below one line the way Log does, since such
		// threads are indistinguishable to the scheduler.
		if ea < 1 {
			ea = 1
		}
		if eb < 1 {
			eb = 1
		}
		const eps = 1e-9
		if math.Abs(ea-eb) < eps {
			return true // ties may order either way
		}
		return (pa < pb) == (ea < eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestBlockingPriorityBeatsSleepers(t *testing.T) {
	// Under CRT a thread that just blocked has reload ratio 0, the best
	// possible; no sleeping thread at the same instant can beat it.
	m := New(8192)
	mt := uint64(100000)
	_, pBlock := CRT{}.Blocking(m, 500, 200, mt)
	for _, s := range []float64{1, 100, 8000} {
		for _, back := range []uint64{10, 1000, 50000} {
			pSleep := prioAt(CRT{}, m, s, s, mt-back, mt-back)
			if pSleep > pBlock+1e-9 {
				t.Errorf("sleeper (s=%v, m0=%d) priority %v beats fresh blocker %v", s, mt-back, pSleep, pBlock)
			}
		}
	}
}

func TestFootprintInversion(t *testing.T) {
	m := New(8192)
	// LFF: Footprint(prio, _, mt) must recover the decayed footprint.
	s, m0 := 1234.0, uint64(777)
	p := LFF{}.Initial(m, s, s, m0)
	for _, dm := range []uint64{0, 1, 100, 10000} {
		want := m.Decay(s, m0, m0+dm)
		got := LFF{}.Footprint(m, p, 0, m0+dm)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("LFF inversion at Δm=%d: got %v want %v", dm, got, want)
		}
	}
	// CRT: Footprint needs slast; a fresh blocker with footprint E and
	// E_last = E must invert to E.
	newS, pc := CRT{}.Blocking(m, 100, 50, 4000)
	got := CRT{}.Footprint(m, pc, newS, 4000)
	if math.Abs(got-newS) > 1e-6*newS {
		t.Errorf("CRT inversion: got %v want %v", got, newS)
	}
	if got := (CRT{}).Footprint(m, pc, 0, 4000); got != 0 {
		t.Errorf("CRT inversion without slast = %v, want 0", got)
	}
}

func TestReloadRatio(t *testing.T) {
	m := New(8192)
	newS, p := CRT{}.Blocking(m, 300, 100, 900)
	if r := (CRT{}).ReloadRatio(m, p, 900); math.Abs(r) > 1e-9 {
		t.Errorf("fresh blocker reload ratio = %v, want 0", r)
	}
	// After Δm further misses by others, R = 1 − k^Δm.
	const dm = 2500
	want := 1 - m.PowK(dm)
	if r := (CRT{}).ReloadRatio(m, p, 900+dm); math.Abs(r-want) > 1e-9 {
		t.Errorf("decayed reload ratio = %v, want %v", r, want)
	}
	_ = newS
}

// TestFLOPCounts regenerates the per-update-class operation counts that
// Table 3 reports. The exact numbers are our implementation's; the
// paper's claim being checked is that they are all O(1) and small, and
// that the independent class costs zero.
func TestFLOPCounts(t *testing.T) {
	m := New(8192)
	cases := []struct {
		name string
		op   func()
		want uint64
	}{
		{"LFF blocking", func() { LFF{}.Blocking(m, 10, 5, 100) }, 5},
		{"LFF dependent", func() { LFF{}.Dependent(m, 10, 0, 0.5, 5, 100) }, 6},
		{"CRT blocking", func() { CRT{}.Blocking(m, 10, 5, 100) }, 4},
		{"CRT dependent", func() { CRT{}.Dependent(m, 10, 20, 0.5, 5, 100) }, 7},
	}
	for _, c := range cases {
		m.ResetFLOPs()
		c.op()
		if got := m.FLOPs(); got != c.want {
			t.Errorf("%s: %d FLOPs, want %d", c.name, got, c.want)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	if _, ok := SchemeByName("LFF").(LFF); !ok {
		t.Error("LFF lookup failed")
	}
	if _, ok := SchemeByName("crt").(CRT); !ok {
		t.Error("crt lookup failed")
	}
	if SchemeByName("FCFS") != nil {
		t.Error("FCFS should have no scheme")
	}
}

func TestSchemeNames(t *testing.T) {
	if (LFF{}).Name() != "LFF" || (CRT{}).Name() != "CRT" {
		t.Error("scheme names wrong")
	}
}
