package model

import (
	"math"
	"testing"
)

func TestCheckFootprint(t *testing.T) {
	const n = 8192
	for _, s := range []float64{0, 1, 4096, 8192} {
		if err := CheckFootprint(s, n); err != nil {
			t.Errorf("CheckFootprint(%v) = %v, want nil", s, err)
		}
	}
	for _, s := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.001, 8192.001, 1e18} {
		if err := CheckFootprint(s, n); err == nil {
			t.Errorf("CheckFootprint(%v) = nil, want error", s)
		}
	}
}

func TestCheckSharing(t *testing.T) {
	for _, q := range []float64{0, 0.25, 1} {
		if err := CheckSharing(q); err != nil {
			t.Errorf("CheckSharing(%v) = %v, want nil", q, err)
		}
	}
	for _, q := range []float64{math.NaN(), math.Inf(1), -0.1, 1.1} {
		if err := CheckSharing(q); err == nil {
			t.Errorf("CheckSharing(%v) = nil, want error", q)
		}
	}
}

func TestClampFootprintAndSharing(t *testing.T) {
	const n = 100
	cases := []struct{ in, want float64 }{
		{math.NaN(), 0}, {math.Inf(-1), 0}, {-5, 0},
		{0, 0}, {42.5, 42.5}, {100, 100},
		{100.5, 100}, {math.Inf(1), 100},
	}
	for _, c := range cases {
		if got := ClampFootprint(c.in, n); got != c.want {
			t.Errorf("ClampFootprint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	qcases := []struct{ in, want float64 }{
		{math.NaN(), 0}, {-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	}
	for _, c := range qcases {
		if got := ClampSharing(c.in); got != c.want {
			t.Errorf("ClampSharing(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestClosedFormsClampGarbageInputs pins the API-boundary hardening:
// whatever garbage a corrupted counter pipeline produces for s or q,
// the closed forms return a finite footprint in [0, N].
func TestClosedFormsClampGarbageInputs(t *testing.T) {
	m := New(1024)
	garbageS := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -50, 1e12}
	garbageQ := []float64{math.NaN(), math.Inf(1), -3, 7}
	check := func(name string, got float64) {
		t.Helper()
		if math.IsNaN(got) || got < 0 || got > 1024 {
			t.Errorf("%s = %v, want finite in [0, 1024]", name, got)
		}
	}
	for _, s := range garbageS {
		for _, n := range []uint64{0, 100, 1 << 40} {
			check("ExpectSelf", m.ExpectSelf(s, n))
			check("ExpectIndep", m.ExpectIndep(s, n))
			check("Decay", m.Decay(s, 0, n))
			for _, q := range garbageQ {
				check("ExpectDep", m.ExpectDep(s, q, n))
			}
		}
	}
}

// TestClampIsIdentityInRange pins golden-safety: for in-range inputs
// the clamps are exact no-ops, so the hardened closed forms compute
// bit-identical results to the unclamped originals.
func TestClampIsIdentityInRange(t *testing.T) {
	m := New(8192)
	for _, s := range []float64{0, 0.125, 17.3, 4095.99, 8192} {
		if got := ClampFootprint(s, 8192); got != s {
			t.Errorf("ClampFootprint(%v) = %v, not identity", s, got)
		}
		a := m.ExpectSelf(s, 977)
		b := m.ExpectSelf(ClampFootprint(s, 8192), 977)
		if a != b {
			t.Errorf("clamp changed ExpectSelf(%v): %v != %v", s, a, b)
		}
	}
}
