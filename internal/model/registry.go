package model

// The policy registry. Policies used to be bare strings dispatched in a
// switch; the registry makes the set extensible (a new Scheme plugs in
// with RegisterScheme and is immediately usable from rt.Options.Policy,
// the public Config, and cmd/atsim) and gives user-facing code one
// place to validate policy names and enumerate what exists.

import (
	"fmt"
	"sort"
	"strings"
)

// fcfsName is the reserved baseline policy: no priority algebra, the
// scheduler degenerates to its global FIFO queue.
const fcfsName = "FCFS"

// schemes maps canonical (upper-case) policy names to their priority
// algebra. Lookup is case-insensitive. The registry is written only
// from init functions and RegisterScheme; runs only read it.
var schemes = map[string]Scheme{}

func init() {
	// The paper's two locality policies are always present.
	if err := RegisterScheme(LFF{}); err != nil {
		panic(err) // invariant: the built-in registrations cannot collide
	}
	if err := RegisterScheme(CRT{}); err != nil {
		panic(err) // invariant: the built-in registrations cannot collide
	}
}

// RegisterScheme adds a named priority scheme. The name comes from
// s.Name(); it must be non-empty, must not be the reserved FCFS
// baseline, and must not already be registered (case-insensitively).
// Register from init functions or before building engines — the
// registry is not synchronized against concurrent runs.
func RegisterScheme(s Scheme) error {
	if s == nil {
		return fmt.Errorf("model: RegisterScheme(nil)")
	}
	name := strings.ToUpper(strings.TrimSpace(s.Name()))
	if name == "" {
		return fmt.Errorf("model: scheme has an empty name")
	}
	if name == fcfsName {
		return fmt.Errorf("model: %q is the reserved baseline policy", fcfsName)
	}
	if _, dup := schemes[name]; dup {
		return fmt.Errorf("model: scheme %q already registered", name)
	}
	schemes[name] = s
	return nil
}

// SchemeFor resolves a policy name. The FCFS baseline (any case)
// resolves to a nil Scheme with no error — the scheduler treats nil as
// "no priority algebra". Unknown names return an error naming the
// registered policies.
func SchemeFor(name string) (Scheme, error) {
	canon := strings.ToUpper(strings.TrimSpace(name))
	if canon == fcfsName {
		return nil, nil
	}
	if s, ok := schemes[canon]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("model: unknown policy %q (have %s)", name, strings.Join(Schemes(), ", "))
}

// Schemes returns every registered policy name, FCFS first, the rest
// sorted.
func Schemes() []string {
	names := make([]string, 0, len(schemes)+1)
	for n := range schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return append([]string{fcfsName}, names...)
}
