package model

import (
	"math"
	"testing"
)

func TestExpectSharedSelfDegenerates(t *testing.T) {
	m := New(8192)
	// own == total is exactly the private case 1.
	for _, s := range []float64{0, 100, 4096, 8192} {
		for _, n := range []uint64{1, 100, 5000} {
			if got, want := m.ExpectSharedSelf(s, n, n), m.ExpectSelf(s, n); math.Abs(got-want) > 1e-9 {
				t.Errorf("ExpectSharedSelf(%v, %d, %d) = %v, want private %v", s, n, n, got, want)
			}
		}
	}
	// own == 0 is pure decay (private case 2).
	if got, want := m.ExpectSharedSelf(4096, 0, 3000), m.ExpectIndep(4096, 3000); math.Abs(got-want) > 1e-9 {
		t.Errorf("pure-decay ExpectSharedSelf = %v, want %v", got, want)
	}
	// A zero-miss interval leaves the footprint unchanged.
	if got := m.ExpectSharedSelf(123, 0, 0); got != 123 {
		t.Errorf("zero-interval = %v, want 123", got)
	}
}

func TestExpectSharedSelfBoundsAndMonotonicity(t *testing.T) {
	m := New(8192)
	// Clamps: s out of range, own > total.
	if got := m.ExpectSharedSelf(-5, 10, 100); got < 0 {
		t.Errorf("negative footprint %v", got)
	}
	if got := m.ExpectSharedSelf(1e9, 10, 100); got > 8192 {
		t.Errorf("footprint %v exceeds N", got)
	}
	if got, want := m.ExpectSharedSelf(100, 500, 100), m.ExpectSelf(100, 100); math.Abs(got-want) > 1e-9 {
		t.Errorf("own > total not clamped: %v vs %v", got, want)
	}
	// More co-runner pressure (smaller own at fixed total) means a
	// smaller expected footprint; results stay in [0, N].
	prev := math.Inf(1)
	for own := uint64(4000); ; own -= 1000 {
		e := m.ExpectSharedSelf(1000, own, 4000)
		if e < 0 || e > 8192 {
			t.Fatalf("E out of range: %v", e)
		}
		if e > prev {
			t.Fatalf("E not monotonic in own: %v after %v", e, prev)
		}
		prev = e
		if own == 0 {
			break
		}
	}
}

func TestExpectSharedDep(t *testing.T) {
	m := New(8192)
	// own == total reduces to the private dependent form.
	for _, q := range []float64{0, 0.25, 1} {
		got := m.ExpectSharedDep(500, q, 2000, 2000)
		want := m.ExpectDep(500, q, 2000)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("ExpectSharedDep(q=%v, own=total) = %v, want private %v", q, got, want)
		}
	}
	// own == 0 is pure decay regardless of q.
	if got, want := m.ExpectSharedDep(500, 0.8, 0, 2000), m.ExpectIndep(500, 2000); math.Abs(got-want) > 1e-9 {
		t.Errorf("own=0 dep = %v, want decay %v", got, want)
	}
	// q is clamped like the private form.
	if got, want := m.ExpectSharedDep(500, 7, 1000, 2000), m.ExpectSharedDep(500, 1, 1000, 2000); got != want {
		t.Errorf("q clamp: %v vs %v", got, want)
	}
	if got := m.ExpectSharedDep(500, math.NaN(), 1000, 2000); math.IsNaN(got) {
		t.Error("NaN q leaked through")
	}
}

func TestSharedSchemesRegistered(t *testing.T) {
	for _, name := range []string{"LFF-SH", "CRT-SH"} {
		sc, err := SchemeFor(name)
		if err != nil {
			t.Fatalf("SchemeFor(%s): %v", name, err)
		}
		if _, ok := sc.(SharedScheme); !ok {
			t.Fatalf("%s does not implement SharedScheme", name)
		}
	}
	// The paper's schemes must NOT be shared-aware: the scheduler keys
	// its clock switch off this assertion.
	for _, name := range []string{"FCFS", "LFF", "CRT"} {
		sc, err := SchemeFor(name)
		if err != nil {
			t.Fatalf("SchemeFor(%s): %v", name, err)
		}
		if _, ok := sc.(SharedScheme); ok {
			t.Fatalf("%s unexpectedly implements SharedScheme", name)
		}
	}
}

func TestSharedSchemesDegenerateToBase(t *testing.T) {
	m := New(8192)
	var lff LFFShared
	var crt CRTShared
	// own == total must reproduce the base schemes' updates exactly
	// (same footprint; the priority differs only through the identical
	// forms), so a shared-aware policy on a private topology behaves
	// like its base policy.
	s, slast, q := 700.0, 300.0, 0.5
	n, mt := uint64(1200), uint64(50_000)

	bs, bp := lff.LFF.Blocking(m, s, n, mt)
	ss, sp := lff.BlockingShared(m, s, n, n, mt)
	if math.Abs(bs-ss) > 1e-9 || math.Abs(bp-sp) > 1e-9 {
		t.Errorf("LFF-SH blocking degenerate: (%v,%v) vs LFF (%v,%v)", ss, sp, bs, bp)
	}
	bs, bp = lff.LFF.Dependent(m, s, slast, q, n, mt)
	ss, sp = lff.DependentShared(m, s, slast, q, n, n, mt)
	if math.Abs(bs-ss) > 1e-9 || math.Abs(bp-sp) > 1e-9 {
		t.Errorf("LFF-SH dependent degenerate: (%v,%v) vs LFF (%v,%v)", ss, sp, bs, bp)
	}

	bs, bp = crt.CRT.Blocking(m, s, n, mt)
	ss, sp = crt.BlockingShared(m, s, n, n, mt)
	if math.Abs(bs-ss) > 1e-9 || math.Abs(bp-sp) > 1e-9 {
		t.Errorf("CRT-SH blocking degenerate: (%v,%v) vs CRT (%v,%v)", ss, sp, bs, bp)
	}
	bs, bp = crt.CRT.Dependent(m, s, slast, q, n, mt)
	ss, sp = crt.DependentShared(m, s, slast, q, n, n, mt)
	if math.Abs(bs-ss) > 1e-9 || math.Abs(bp-sp) > 1e-9 {
		t.Errorf("CRT-SH dependent degenerate: (%v,%v) vs CRT (%v,%v)", ss, sp, bs, bp)
	}
}
