package model

import (
	"math"
	"testing"
	"testing/quick"
)

const testN = 256 // small cache keeps Markov evolution cheap

func TestClosedFormBasics(t *testing.T) {
	m := New(testN)
	// No misses: footprints unchanged.
	if got := m.ExpectSelf(100, 0); got != 100 {
		t.Errorf("ExpectSelf(100, 0) = %v", got)
	}
	if got := m.ExpectIndep(100, 0); got != 100 {
		t.Errorf("ExpectIndep(100, 0) = %v", got)
	}
	if got := m.ExpectDep(100, 0.5, 0); got != 100 {
		t.Errorf("ExpectDep(100, 0.5, 0) = %v", got)
	}
	// One miss from an empty footprint: the blocker gains exactly one
	// line, an independent sleeper with S lines keeps S·k.
	if got := m.ExpectSelf(0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("ExpectSelf(0, 1) = %v, want 1", got)
	}
	if got := m.ExpectIndep(testN, 1); math.Abs(got-float64(testN)*m.K()) > 1e-9 {
		t.Errorf("ExpectIndep(N, 1) = %v", got)
	}
}

func TestAsymptotes(t *testing.T) {
	m := New(testN)
	const big = 1 << 20
	if got := m.ExpectSelf(0, big); math.Abs(got-float64(testN)) > 1e-6 {
		t.Errorf("ExpectSelf asymptote = %v, want %d", got, testN)
	}
	if got := m.ExpectIndep(float64(testN), big); got > 1e-6 {
		t.Errorf("ExpectIndep asymptote = %v, want 0", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := m.ExpectDep(100, q, big); math.Abs(got-q*float64(testN)) > 1e-6 {
			t.Errorf("ExpectDep(q=%v) asymptote = %v, want %v", q, got, q*float64(testN))
		}
	}
}

func TestDepReducesToSelfAndIndep(t *testing.T) {
	m := New(testN)
	f := func(s8 uint8, n16 uint16) bool {
		s := float64(s8)
		n := uint64(n16)
		self := m.ExpectSelf(s, n)
		dep1 := m.ExpectDep(s, 1, n)
		indep := m.ExpectIndep(s, n)
		dep0 := m.ExpectDep(s, 0, n)
		return math.Abs(self-dep1) < 1e-9 && math.Abs(indep-dep0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFootprintBounds(t *testing.T) {
	m := New(testN)
	f := func(s8 uint8, q8 uint8, n16 uint16) bool {
		s := float64(s8) // <= 255 < N? testN=256, s8 max 255 ok
		q := float64(q8) / 255
		n := uint64(n16)
		e := m.ExpectDep(s, q, n)
		lo, hi := math.Min(s, q*float64(testN)), math.Max(s, q*float64(testN))
		return e >= lo-1e-9 && e <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInMisses(t *testing.T) {
	m := New(testN)
	// The blocker's footprint is nondecreasing in n; an independent
	// sleeper's is nonincreasing.
	prevSelf, prevIndep := m.ExpectSelf(10, 0), m.ExpectIndep(200, 0)
	for n := uint64(1); n < 5000; n += 7 {
		s, i := m.ExpectSelf(10, n), m.ExpectIndep(200, n)
		if s < prevSelf-1e-12 {
			t.Fatalf("ExpectSelf decreased at n=%d", n)
		}
		if i > prevIndep+1e-12 {
			t.Fatalf("ExpectIndep increased at n=%d", n)
		}
		prevSelf, prevIndep = s, i
	}
}

func TestPowKTableMatchesExp(t *testing.T) {
	m := New(8192)
	for _, n := range []uint64{0, 1, 17, 1000, powTableSize - 1, powTableSize, powTableSize + 5, 1 << 20} {
		want := math.Exp(float64(n) * m.LogK())
		if got := m.PowK(n); math.Abs(got-want) > 1e-9*math.Max(want, 1e-300) && math.Abs(got-want) > 1e-12 {
			t.Errorf("PowK(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogTable(t *testing.T) {
	m := New(testN)
	for _, f := range []float64{1, 2, 100, 255, 256} {
		if got, want := m.Log(f), math.Log(f); math.Abs(got-want) > 1e-12 {
			t.Errorf("Log(%v) = %v, want %v", f, got, want)
		}
	}
	// Non-integer and beyond-table values fall back to libm.
	if got, want := m.Log(100.5), math.Log(100.5); got != want {
		t.Errorf("Log(100.5) = %v, want %v", got, want)
	}
	if got, want := m.Log(1e6), math.Log(1e6); got != want {
		t.Errorf("Log(1e6) = %v, want %v", got, want)
	}
	// Sub-line footprints clamp to log(1) = 0 instead of -inf.
	if got := m.Log(0); got != 0 {
		t.Errorf("Log(0) = %v, want 0", got)
	}
	if got := m.Log(0.5); got != 0 {
		t.Errorf("Log(0.5) = %v, want 0", got)
	}
}

func TestDecay(t *testing.T) {
	m := New(testN)
	if got := m.Decay(100, 50, 50); got != 100 {
		t.Errorf("no-elapsed decay = %v", got)
	}
	if got := m.Decay(100, 60, 50); got != 100 {
		t.Errorf("clock regression should not grow footprint: %v", got)
	}
	want := 100 * m.PowK(25)
	if got := m.Decay(100, 50, 75); math.Abs(got-want) > 1e-12 {
		t.Errorf("Decay = %v, want %v", got, want)
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1) did not panic")
		}
	}()
	New(1)
}
