package model

// This file implements the inflated priority algebra of Section 4. Both
// policies replace the expected footprint with a monotonically related
// priority that is *time-invariant for threads independent of the
// blocking thread*, so a context switch updates only the blocking thread
// and its out-neighbours in the dependency graph:
//
//	LFF:  p(t) = log E[F](t) − m(t)·log k
//	CRT:  p(t) = log E[F](t) − log E[F_last] − m(t)·log k
//
// Since every thread not involved in the switch decays as
// E(t) = S·k^(m(t)−m0), its priority is constant:
// p(t) = log S + (m(t)−m0)·log k − m(t)·log k = log S − m0·log k.
//
// Scheme implementations count their floating-point operations on the
// shared Model so Table 3 can be regenerated; pre-computed table lookups
// (kⁿ, log F) and integer arithmetic are free, matching the paper's
// accounting.

// UpdateCase names which of the model's three closed forms produced a
// footprint update — the paper's case taxonomy of Section 2.4. The
// scheduler stamps every model-update telemetry event with one of these
// so a trace shows not just that S changed but which law changed it.
type UpdateCase uint8

const (
	// CaseBlocking is case 1: the thread that just blocked,
	// E = N − (N−S)·kⁿ.
	CaseBlocking UpdateCase = 1
	// CaseIndependent is case 2: a thread independent of the blocker,
	// whose footprint only decays, E = S·kⁿ. The decay is applied
	// lazily, so a case-2 event is emitted when the decayed value is
	// materialized (heap demotion, runnable re-evaluation).
	CaseIndependent UpdateCase = 2
	// CaseDependent is case 3: an out-neighbour of the blocker in the
	// sharing graph, E = qN − (qN−S)·kⁿ.
	CaseDependent UpdateCase = 3
)

func (c UpdateCase) String() string {
	switch c {
	case CaseBlocking:
		return "blocking"
	case CaseIndependent:
		return "independent"
	case CaseDependent:
		return "dependent"
	default:
		return "unknown"
	}
}

// Scheme is the priority algebra of one locality policy. A Scheme is
// stateless; per-thread state (S, S_last, m0, priority) lives in the
// scheduler's footprint entries.
type Scheme interface {
	// Name returns the policy name ("LFF" or "CRT").
	Name() string

	// Blocking computes the new expected footprint and priority of the
	// thread that just blocked on a processor: s is its footprint when
	// it was dispatched, n the misses it took, mt the processor's
	// cumulative miss count at the switch.
	Blocking(m *Model, s float64, n, mt uint64) (newS, prio float64)

	// Dependent computes the new expected footprint and priority of a
	// thread that shares state (coefficient q) with the blocking
	// thread: s is the dependent's footprint at the start of the
	// blocker's interval, slast its footprint when it last executed on
	// this processor (used only by CRT; pass newS's prior value or 0).
	Dependent(m *Model, s, slast, q float64, n, mt uint64) (newS, prio float64)

	// Initial computes the priority of a freshly created footprint
	// entry with footprint s and last-executed footprint slast at
	// processor miss count mt.
	Initial(m *Model, s, slast float64, mt uint64) float64

	// Footprint inverts the priority back to the current expected
	// footprint at processor miss count mt (for threshold demotion
	// and diagnostics). For CRT the inversion needs slast.
	Footprint(m *Model, prio, slast float64, mt uint64) float64
}

// LFF is the Largest Footprint First priority algebra (Section 4.1).
type LFF struct{}

// Name implements Scheme.
func (LFF) Name() string { return "LFF" }

// Blocking implements Scheme: E = N − (N−s)·kⁿ, p = log E − (m₀+n)·log k.
// Five floating-point operations (two subs and a mul for E, a mul and a
// sub for p); the log and kⁿ come from tables.
func (LFF) Blocking(m *Model, s float64, n, mt uint64) (newS, prio float64) {
	newS = m.ExpectSelf(s, n)
	prio = m.Log(newS) - float64(mt)*m.logK
	m.flops += 5
	return newS, prio
}

// Dependent implements Scheme: E = qN − (qN−s)·kⁿ, p = log E − m·log k.
// Six floating-point operations (the qN product is recomputed; a
// scheduler that caches qN on the graph edge saves one).
func (LFF) Dependent(m *Model, s, _, q float64, n, mt uint64) (newS, prio float64) {
	newS = m.ExpectDep(s, q, n)
	prio = m.Log(newS) - float64(mt)*m.logK
	m.flops += 6
	return newS, prio
}

// Initial implements Scheme.
func (LFF) Initial(m *Model, s, _ float64, mt uint64) float64 {
	m.flops += 2
	return m.Log(s) - float64(mt)*m.logK
}

// Footprint implements Scheme: E = exp(p + m·log k).
func (LFF) Footprint(m *Model, prio, _ float64, mt uint64) float64 {
	return exp(prio + float64(mt)*m.logK)
}

// CRT is the smallest Cache-Reload raTio priority algebra (Section 4.2).
// Higher priority means a smaller expected reload ratio
// R = (E[F_last] − E[F]) / E[F_last].
type CRT struct{}

// Name implements Scheme.
func (CRT) Name() string { return "CRT" }

// Blocking implements Scheme. A thread that just blocked has all of its
// (current expected) state in the cache, so R = 0 and
// p = −m(t)·log k: one multiplication once −log k is pre-computed. The
// footprint bookkeeping (E = N − (N−s)·kⁿ, three FLOPs) still happens so
// that future updates know S and S_last.
func (CRT) Blocking(m *Model, s float64, n, mt uint64) (newS, prio float64) {
	newS = m.ExpectSelf(s, n)
	prio = -(float64(mt) * m.logK)
	m.flops += 4
	return newS, prio
}

// Dependent implements Scheme: p = log E − log E_last − m·log k. If the
// thread has never executed on this processor (slast <= 0), its reload
// ratio is taken as zero — everything it has ever had here is here — by
// using E itself as E_last.
func (CRT) Dependent(m *Model, s, slast, q float64, n, mt uint64) (newS, prio float64) {
	newS = m.ExpectDep(s, q, n)
	if slast <= 0 {
		slast = newS
	}
	prio = m.Log(newS) - m.Log(slast) - float64(mt)*m.logK
	m.flops += 7
	return newS, prio
}

// Initial implements Scheme.
func (CRT) Initial(m *Model, s, slast float64, mt uint64) float64 {
	if slast <= 0 {
		slast = s
	}
	m.flops += 3
	return m.Log(s) - m.Log(slast) - float64(mt)*m.logK
}

// Footprint implements Scheme: E = E_last·exp(p + m·log k).
func (CRT) Footprint(m *Model, prio, slast float64, mt uint64) float64 {
	if slast <= 0 {
		return 0
	}
	return slast * exp(prio+float64(mt)*m.logK)
}

// ReloadRatio recovers R = (E_last − E)/E_last from a CRT priority.
func (CRT) ReloadRatio(m *Model, prio float64, mt uint64) float64 {
	return 1 - exp(prio+float64(mt)*m.logK)
}

// SchemeByName returns the scheme for a policy name, or nil for "FCFS"
// and unknown names. Prefer SchemeFor, which distinguishes the FCFS
// baseline from a typo; this survives for callers that have already
// validated the name.
func SchemeByName(name string) Scheme {
	s, err := SchemeFor(name)
	if err != nil {
		return nil
	}
	return s
}
