package model

// Shared-cache generalization of the Section 2.4 closed forms, and the
// shared-LLC-aware policy variants built on it.
//
// Under a shared last-level cache, the miss counter a sleeping or
// blocking thread decays against is the *total* machine miss count: a
// co-runner's miss evicts one of the thread's N-line-cache lines with
// probability F/N exactly as the thread's own misses do on a private
// cache, so the universal decay law E(t) = S·k^(m(t)−m0) carries over
// unchanged with m taken machine-wide.
//
// The blocking form changes. On a private cache every one of the
// blocker's own n misses *adds* a line to its footprint; on a shared
// cache only the fraction p = own/total of the interval's misses do,
// and the remaining (1−p) — the co-runners' misses — apply pure
// eviction pressure. Per miss, E' = E + p − E/N, whose M-step solution
// is
//
//	E = pN − (pN − S)·k^M,  p = own/total, M = total misses
//
// (Ling et al., arXiv:2007.11195 derive the same fixed point pN for
// proportional insertion pressure on a shared cache.) With own = total
// this is exactly the private case 1; with own = 0 it is pure decay —
// the form interpolates between the paper's cases 1 and 2.
//
// The dependent form applies the same dilution to the sharing
// coefficient: only the co-runner's own misses can install lines the
// dependent thread reuses, so the effective coefficient on an annotated
// edge is q·own/total and E = q_eff·N·(1 − k^M) + S·k^M.
//
// All inputs are clamped at the API boundary like the private forms:
// s to [0, N], q to [0, 1], own to [0, total].

// ExpectSharedSelf returns the expected footprint of a thread that just
// blocked on a shared cache, where own is the thread's own miss count
// over its interval and total the machine-wide miss count over the same
// interval (own ≤ total; total includes own):
//
//	E = pN − (pN − s)·k^total,  p = own/total.
//
// With own == total it reduces to ExpectSelf, with own == 0 to pure
// decay. s is clamped to [0, N] and own to [0, total]; a zero-miss
// interval returns s unchanged. The result is always in [0, N].
func (m *Model) ExpectSharedSelf(s float64, own, total uint64) float64 {
	s = m.clampS(s)
	if total == 0 {
		return s
	}
	if own > total {
		own = total
	}
	pn := float64(own) / float64(total) * float64(m.n)
	return pn - (pn-s)*m.PowK(total)
}

// ExpectSharedDep returns the expected footprint of a thread that
// shares state (coefficient q) with a co-runner on a shared cache: own
// is the co-runner's miss count over the interval, total the
// machine-wide miss count (own ≤ total), and the effective coefficient
// is diluted to q·own/total because only the co-runner's own misses
// install shared lines:
//
//	E = q_eff·N − (q_eff·N − s)·k^total,  q_eff = q·own/total.
//
// s is clamped to [0, N], q to [0, 1] and own to [0, total]; a
// zero-miss interval returns s unchanged. The result is always in
// [0, N].
func (m *Model) ExpectSharedDep(s, q float64, own, total uint64) float64 {
	s = m.clampS(s)
	if total == 0 {
		return s
	}
	if own > total {
		own = total
	}
	qn := ClampSharing(q) * (float64(own) / float64(total)) * float64(m.n)
	return qn - (qn-s)*m.PowK(total)
}

// SharedScheme extends Scheme with the shared-cache update forms. The
// scheduler type-asserts its scheme once at construction: a scheme
// implementing SharedScheme switches the scheduler onto the machine-
// wide miss clock and these forms; plain Schemes keep the private
// per-CPU clock and the paper's forms. The embedded Scheme methods
// remain coherent (they are the own == total degenerate case), so a
// shared-aware policy run on a private topology behaves like its base
// policy.
type SharedScheme interface {
	Scheme

	// BlockingShared computes the new expected footprint and priority
	// of the thread that just blocked: s is its footprint at dispatch,
	// own its interval miss count, total the machine-wide interval miss
	// count and mt the machine-wide cumulative miss clock.
	BlockingShared(m *Model, s float64, own, total, mt uint64) (newS, prio float64)

	// DependentShared computes the new expected footprint and priority
	// of a thread annotated as sharing (coefficient q) with the
	// blocker; own/total are the blocker's and machine-wide interval
	// miss counts, mt the machine-wide cumulative clock, slast the
	// dependent's footprint when it last executed (CRT only).
	DependentShared(m *Model, s, slast, q float64, own, total, mt uint64) (newS, prio float64)
}

// LFFShared is Largest Footprint First for a shared last-level cache:
// the same inflated priority p = log E − m(t)·log k, but E from the
// co-runner-aware forms and m(t) the machine-wide miss clock (under
// which the inflation is time-invariant for every sleeping thread,
// since co-runner pressure is exactly the universal decay). Run on a
// private topology it degrades to plain LFF.
type LFFShared struct{ LFF }

// Name implements Scheme.
func (LFFShared) Name() string { return "LFF-SH" }

// BlockingShared implements SharedScheme: E = pN − (pN−s)·k^total,
// p = log E − mt·log k. Seven floating-point operations (the division
// and multiply for pN, two subs and a mul for E, a mul and a sub for
// p); the log and k^total come from tables.
func (LFFShared) BlockingShared(m *Model, s float64, own, total, mt uint64) (newS, prio float64) {
	newS = m.ExpectSharedSelf(s, own, total)
	prio = m.Log(newS) - float64(mt)*m.logK
	m.flops += 7
	return newS, prio
}

// DependentShared implements SharedScheme: E with the diluted
// coefficient q·own/total, p = log E − mt·log k. Eight floating-point
// operations.
func (LFFShared) DependentShared(m *Model, s, _, q float64, own, total, mt uint64) (newS, prio float64) {
	newS = m.ExpectSharedDep(s, q, own, total)
	prio = m.Log(newS) - float64(mt)*m.logK
	m.flops += 8
	return newS, prio
}

// CRTShared is smallest Cache-Reload raTio for a shared last-level
// cache: the blocking thread's reload ratio is still zero (its expected
// state is whatever survived co-runner pressure, and all of it is in
// the cache), so p = −mt·log k on the machine-wide clock; dependent
// updates use the diluted sharing coefficient. Run on a private
// topology it degrades to plain CRT.
type CRTShared struct{ CRT }

// Name implements Scheme.
func (CRTShared) Name() string { return "CRT-SH" }

// BlockingShared implements SharedScheme: E = pN − (pN−s)·k^total for
// the bookkeeping, p = −mt·log k. Six floating-point operations.
func (CRTShared) BlockingShared(m *Model, s float64, own, total, mt uint64) (newS, prio float64) {
	newS = m.ExpectSharedSelf(s, own, total)
	prio = -(float64(mt) * m.logK)
	m.flops += 6
	return newS, prio
}

// DependentShared implements SharedScheme:
// p = log E − log E_last − mt·log k with the diluted coefficient; a
// thread that never executed here (slast <= 0) takes R = 0 by using E
// as E_last. Nine floating-point operations.
func (CRTShared) DependentShared(m *Model, s, slast, q float64, own, total, mt uint64) (newS, prio float64) {
	newS = m.ExpectSharedDep(s, q, own, total)
	if slast <= 0 {
		slast = newS
	}
	prio = m.Log(newS) - m.Log(slast) - float64(mt)*m.logK
	m.flops += 9
	return newS, prio
}

func init() {
	RegisterScheme(LFFShared{})
	RegisterScheme(CRTShared{})
}
