package model

import "testing"

// TestUpdateCaseMirrorsObsSchema pins the numeric values and names the
// observability layer depends on: internal/obs stamps KModelUpdate
// events with UpdateCase values but stays dependency-light (it does
// not import the model), so its exporters hard-code the 1/2/3 →
// blocking/independent/dependent mapping. Renumbering or renaming the
// cases must fail here before it silently skews exported traces.
func TestUpdateCaseMirrorsObsSchema(t *testing.T) {
	want := map[UpdateCase]string{
		CaseBlocking:    "blocking",
		CaseIndependent: "independent",
		CaseDependent:   "dependent",
	}
	if CaseBlocking != 1 || CaseIndependent != 2 || CaseDependent != 3 {
		t.Fatalf("case values changed: blocking=%d independent=%d dependent=%d (obs hard-codes 1/2/3)",
			CaseBlocking, CaseIndependent, CaseDependent)
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("UpdateCase(%d).String() = %q, want %q", c, c.String(), name)
		}
	}
	if UpdateCase(0).String() != "unknown" || UpdateCase(9).String() != "unknown" {
		t.Error("out-of-range cases must name as unknown")
	}
}
