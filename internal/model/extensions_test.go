package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/xrand"
)

// TestAssocSelfMatchesSimulation validates the associative extension
// against the actual set-associative cache simulator: a thread missing
// at uniformly random sets of a 2-way cache must grow its footprint as
// the per-set Poisson model predicts.
func TestAssocSelfMatchesSimulation(t *testing.T) {
	const sets, ways, line = 512, 2, 64
	am := NewAssocModel(sets, ways)
	c := cachesim.New(cachesim.Config{Name: "A", Size: sets * ways * line, LineSize: line, Assoc: ways, HitCycles: 1})
	rng := xrand.New(42)
	// Fill the cache with a sleeper's lines first so every fill has a
	// victim (the model's "initially foreign cache").
	const sleeper mem.ThreadID = 9
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			c.Insert(sleeper, mem.Addr((w*sets+s)*line), false, false)
		}
	}
	const runner mem.ThreadID = 1
	// The runner misses on fresh lines at random sets (addresses far
	// from the sleeper's and from each other).
	base := uint64(1 << 30)
	for n := uint64(1); n <= 4096; n++ {
		set := rng.Uint64n(sets)
		addr := mem.Addr(base + n*uint64(sets*line) + set*line)
		c.Insert(runner, addr, false, false)
		if n%512 != 0 {
			continue
		}
		wantSelf := am.ExpectSelf(n)
		gotSelf := float64(c.OwnerFootprint(runner))
		if math.Abs(gotSelf-wantSelf) > 0.05*float64(am.N()) {
			t.Errorf("n=%d: runner footprint %v, model %v", n, gotSelf, wantSelf)
		}
		wantIndep := am.ExpectIndepFull(n)
		gotIndep := float64(c.OwnerFootprint(sleeper))
		if math.Abs(gotIndep-wantIndep) > 0.05*float64(am.N()) {
			t.Errorf("n=%d: sleeper footprint %v, model %v", n, gotIndep, wantIndep)
		}
	}
}

// TestAssocLRUProtectsRunner: under LRU associativity the running
// thread's footprint grows strictly faster than the direct-mapped
// closed form for the same capacity (no self-collisions until a set is
// fully owned).
func TestAssocLRUProtectsRunner(t *testing.T) {
	am := NewAssocModel(2048, 4)
	for _, n := range []uint64{100, 1000, 4000, 8000} {
		if self, dm := am.ExpectSelf(n), am.DirectMappedSelf(n); self <= dm {
			t.Errorf("n=%d: associative %v <= direct-mapped %v", n, self, dm)
		}
	}
}

// TestAssocConservation: the runner's and full-cache sleeper's expected
// footprints always sum to the capacity (every fill converts exactly
// one sleeper line).
func TestAssocConservation(t *testing.T) {
	am := NewAssocModel(1024, 2)
	f := func(n16 uint16) bool {
		n := uint64(n16)
		total := am.ExpectSelf(n) + am.ExpectIndepFull(n)
		return math.Abs(total-float64(am.N())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssocAsymptotes(t *testing.T) {
	am := NewAssocModel(256, 4)
	if got := am.ExpectSelf(0); got != 0 {
		t.Errorf("ExpectSelf(0) = %v", got)
	}
	if got := am.ExpectSelf(1 << 20); math.Abs(got-float64(am.N())) > 1 {
		t.Errorf("ExpectSelf asymptote = %v, want %d", got, am.N())
	}
	if got := am.ExpectIndepFull(1 << 20); got > 1 {
		t.Errorf("ExpectIndepFull asymptote = %v, want 0", got)
	}
}

func TestAssocValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewAssocModel(0, 2)
}

// TestInvalReducesToDep: with zero invalidation pressure the extension
// must match the original case 3 closed form.
func TestInvalReducesToDep(t *testing.T) {
	m := New(256)
	f := func(s8, q8 uint8, n16 uint16) bool {
		s, q, n := float64(s8), float64(q8)/255, uint64(n16)
		a := m.ExpectDepInval(s, q, 0, n)
		b := m.ExpectDep(s, q, n)
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInvalMatchesChain: the closed form must equal the extended Markov
// chain's expectation (the recurrence is linear, so exactly).
func TestInvalMatchesChain(t *testing.T) {
	const n = 96
	m := New(n)
	for _, q := range []float64{0.2, 0.5, 0.8} {
		for _, v := range []float64{0, 0.05, 0.15} {
			mk := NewInvalMarkov(n, q, v)
			for _, s0 := range []int{0, 48, 96} {
				for _, steps := range []int{0, 1, 50, 400} {
					chain := mk.Expected(s0, steps)
					closed := m.ExpectDepInval(float64(s0), q, v, uint64(steps))
					if math.Abs(chain-closed) > 1e-6 {
						t.Errorf("q=%v v=%v s=%d n=%d: chain %v closed %v", q, v, s0, steps, chain, closed)
					}
				}
			}
		}
	}
}

// TestInvalLowersPlateau: invalidation pressure must lower the
// asymptotic footprint to qN/(1+v) and never raise it.
func TestInvalLowersPlateau(t *testing.T) {
	m := New(8192)
	const q = 0.6
	base := m.ExpectDep(0, q, 1<<20)
	for _, v := range []float64{0.1, 0.3, 0.4} {
		got := m.ExpectDepInval(0, q, v, 1<<20)
		want := q * 8192 / (1 + v)
		if math.Abs(got-want) > 1 {
			t.Errorf("v=%v: plateau %v, want %v", v, got, want)
		}
		if got >= base {
			t.Errorf("v=%v: plateau %v not below v=0 plateau %v", v, got, base)
		}
	}
}

func TestInvalValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewInvalMarkov(16, 0.5, -0.1) },
		func() { NewInvalMarkov(16, 0.2, 0.9) }, // (1-q)+v > 1
		func() { m := New(64); m.ExpectDepInval(0, 0.5, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAssocSelfFromReducesToSelf(t *testing.T) {
	am := NewAssocModel(1024, 2)
	for _, n := range []uint64{0, 100, 5000} {
		a, b := am.ExpectSelfFrom(0, n), am.ExpectSelf(n)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("n=%d: from-zero %v != base %v", n, a, b)
		}
	}
}

func TestAssocSelfFromMonotoneAndBounded(t *testing.T) {
	am := NewAssocModel(512, 4)
	f := func(s016, n16 uint16) bool {
		s0 := float64(s016) * float64(am.N()) / 65535
		n := uint64(n16)
		e := am.ExpectSelfFrom(s0, n)
		// Bounded by the capacity above, and by both the initial
		// footprint and the fresh-fill expectation below (the
		// occupancy update min(W, j+x) is pointwise ≥ j and ≥ min(W,x)).
		if e > float64(am.N())+1e-6 {
			return false
		}
		return e >= am.ExpectSelf(n)-1e-6 && e >= s0-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssocSelfFromMatchesSimulation(t *testing.T) {
	const sets, ways, line = 512, 2, 64
	am := NewAssocModel(sets, ways)
	c := cachesim.New(cachesim.Config{Name: "A", Size: sets * ways * line, LineSize: line, Assoc: ways, HitCycles: 1})
	rng := xrand.New(17)
	// Foreign fill first.
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			c.Insert(9, mem.Addr((w*sets+s)*line), false, false)
		}
	}
	// The runner pre-establishes s0 = 400 random distinct lines.
	const s0 = 400
	base := uint64(1 << 28)
	for i := uint64(0); i < s0; i++ {
		set := rng.Uint64n(sets)
		c.Insert(1, mem.Addr(base+i*uint64(sets*line)+set*line), false, false)
	}
	start := float64(c.OwnerFootprint(1))
	// Now take n fresh misses and compare.
	base2 := uint64(1 << 30)
	for n := uint64(1); n <= 2048; n++ {
		set := rng.Uint64n(sets)
		c.Insert(1, mem.Addr(base2+n*uint64(sets*line)+set*line), false, false)
		if n%512 != 0 {
			continue
		}
		want := am.ExpectSelfFrom(start, n)
		got := float64(c.OwnerFootprint(1))
		if math.Abs(got-want) > 0.06*float64(am.N()) {
			t.Errorf("n=%d: footprint %v, model %v", n, got, want)
		}
	}
}
