package model

import (
	"fmt"
	"math"
)

// This file implements two extensions the paper describes but does not
// build:
//
//  1. The set-associative cache case ("The developed model can be
//     extended to the associative cache case (although the analytical
//     results are likely to be more complex with a higher runtime
//     overhead)", Section 2.1). AssocModel computes expected footprints
//     for an S-set, W-way LRU cache by evolving the per-set occupancy
//     distribution under uniformly distributed misses. The key
//     qualitative difference from the direct-mapped closed forms: LRU
//     protects the running thread's fresh lines, so its footprint grows
//     faster, and evicts never-referenced sleepers' lines first, so
//     their footprints decay faster.
//
//  2. Invalidation effects ("Our model does not take into account
//     invalidation effects when data cached by one processor is
//     modified by another", Section 3.4). ExpectDepInval extends case 3
//     with a per-miss invalidation pressure v; the closed form follows
//     from the same linear recurrence as the appendix chain.

// AssocModel models an S-set, W-way LRU cache under the paper's
// independence assumption (each miss lands in a uniformly random set).
type AssocModel struct {
	// Sets and Ways describe the geometry; Sets*Ways is the capacity
	// in lines.
	Sets, Ways int
	// dm is the direct-mapped model of the same capacity, carried for
	// DirectMappedSelf so its kⁿ comes from the memoized table instead
	// of a libm pow per sample (nil only for a 1-line geometry, which
	// the direct-mapped closed form handles inline).
	dm *Model
}

// NewAssocModel validates and builds the model.
func NewAssocModel(sets, ways int) AssocModel {
	if sets < 1 || ways < 1 {
		// Invariant panics in the extensions: driven by experiment code
		// with fixed parameters, not user input.
		panic(fmt.Sprintf("model: bad associative geometry %dx%d", sets, ways))
	}
	a := AssocModel{Sets: sets, Ways: ways}
	if n := sets * ways; n >= 2 {
		a.dm = New(n)
	}
	return a
}

// N returns the capacity in lines.
func (a AssocModel) N() int { return a.Sets * a.Ways }

// setDist returns the Poisson(λ = n/Sets) pmf truncated at Ways (the
// tail mass is folded into the last entry), the per-set distribution of
// the number of misses that landed in a given set. The Poisson limit of
// Binomial(n, 1/Sets) is accurate for the cache sizes involved.
func (a AssocModel) setDist(n uint64) []float64 {
	lambda := float64(n) / float64(a.Sets)
	pmf := make([]float64, a.Ways+1)
	// P(X = j) computed iteratively; pmf[Ways] accumulates P(X >= Ways).
	p := math.Exp(-lambda)
	cum := 0.0
	for j := 0; j < a.Ways; j++ {
		pmf[j] = p
		cum += p
		p *= lambda / float64(j+1)
	}
	pmf[a.Ways] = 1 - cum
	if pmf[a.Ways] < 0 {
		pmf[a.Ways] = 0
	}
	return pmf
}

// ExpectSelf returns the expected footprint of the running thread after
// n misses into an initially foreign (or empty) cache. Under LRU the
// thread's own lines are always younger than the sleeping foreign
// lines, so the victim is foreign until the set is fully owned: a set
// that received j misses holds min(j, W) of the thread's lines.
func (a AssocModel) ExpectSelf(n uint64) float64 {
	pmf := a.setDist(n)
	e := 0.0
	for j, p := range pmf {
		e += float64(j) * p // j is already capped at Ways
	}
	return float64(a.Sets) * e
}

// ExpectIndepFull returns the expected footprint of a sleeping
// independent thread that initially owned the whole cache, after the
// runner takes n misses. The sleeper's lines are never re-referenced,
// so in each set they are the LRU victims, dying one per miss: a set
// that received j misses keeps W − min(j, W) of them.
func (a AssocModel) ExpectIndepFull(n uint64) float64 {
	pmf := a.setDist(n)
	e := 0.0
	for j, p := range pmf {
		e += float64(a.Ways-j) * p // j capped at Ways, so this is >= 0
	}
	return float64(a.Sets) * e
}

// ExpectSelfFrom generalizes ExpectSelf to an initial own-footprint of
// s0 *resident* lines. Residency caps each set's own-line count at the
// associativity, so the initial occupancy is modelled as the
// mean-preserving floor/ceil mixture of λ = s0/Sets (an unconstrained
// Poisson would put mass above W and lose it to truncation). A set
// holding j of the thread's lines before the interval and receiving X
// fresh misses holds min(W, j+X) afterwards — LRU evicts the foreign
// lines first, then recycles the thread's own oldest lines — which is
// pointwise ≥ j, so the expectation never drops below s0.
func (a AssocModel) ExpectSelfFrom(s0 float64, n uint64) float64 {
	if s0 <= 0 {
		return a.ExpectSelf(n)
	}
	if s0 > float64(a.N()) {
		s0 = float64(a.N())
	}
	lambda := s0 / float64(a.Sets)
	j0 := int(lambda)
	frac := lambda - float64(j0)
	fills := a.setDist(n)
	expectAt := func(j int) float64 {
		e := 0.0
		for x, px := range fills {
			own := j + x
			if own > a.Ways {
				own = a.Ways
			}
			e += float64(own) * px
		}
		return e
	}
	e := (1-frac)*expectAt(j0) + frac*expectAt(minInt(j0+1, a.Ways))
	return float64(a.Sets) * e
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DirectMappedSelf returns the direct-mapped closed form N−N·kⁿ for the
// same capacity, for comparison: LRU associativity grows the running
// thread's footprint strictly faster (no self-collision until a set
// fills).
func (a AssocModel) DirectMappedSelf(n uint64) float64 {
	N := float64(a.N())
	if a.dm == nil {
		// 1-line cache (constructed literally, bypassing NewAssocModel):
		// k = 0, so the footprint is N after any miss.
		if n == 0 {
			return 0
		}
		return N
	}
	return N - N*a.dm.PowK(n)
}

// ExpectDepInval extends the dependent-thread closed form (case 3) with
// invalidation pressure: per miss taken by the running thread, remote
// writes additionally invalidate a resident line of the dependent
// thread with probability v·E[F]/N (proportional to its residency).
// The per-miss recurrence
//
//	E' = E + q·(N−E)/N − (1−q)·E/N − v·E/N
//
// is linear, so
//
//	E_n = qN/(1+v) − (qN/(1+v) − S)·(1 − (1+v)/N)ⁿ
//
// With v = 0 this is exactly ExpectDep; with v > 0 the footprint
// converges faster and to a lower plateau qN/(1+v) — data that is being
// written remotely cannot be held.
func (m *Model) ExpectDepInval(s, q, v float64, n uint64) float64 {
	if v < 0 {
		panic("model: negative invalidation pressure")
	}
	fn := float64(m.n)
	plateau := q * fn / (1 + v)
	// With v = 0 the decay base is exactly k = (N−1)/N, so the memoized
	// table applies; only a genuine invalidation pressure needs the
	// libm pow.
	var decay float64
	if v == 0 {
		decay = m.PowK(n)
	} else {
		decay = math.Pow(1-(1+v)/fn, float64(n))
	}
	return plateau - (plateau-s)*decay
}

// InvalMarkov is the appendix Markov chain extended with invalidation
// pressure, used to cross-check ExpectDepInval.
type InvalMarkov struct {
	N int
	Q float64
	V float64
}

// NewInvalMarkov validates and builds the chain. v is bounded so the
// per-state transition probabilities stay in [0, 1].
func NewInvalMarkov(n int, q, v float64) InvalMarkov {
	if n < 1 || q < 0 || q > 1 || v < 0 || (1-q)+v > 1 {
		panic(fmt.Sprintf("model: bad invalidation chain N=%d q=%v v=%v", n, q, v))
	}
	return InvalMarkov{N: n, Q: q, V: v}
}

// Expected evolves the chain n steps from footprint s and returns the
// expectation.
func (mk InvalMarkov) Expected(s, n int) float64 {
	if s < 0 || s > mk.N {
		panic("model: initial footprint out of range")
	}
	dist := make([]float64, mk.N+1)
	dist[s] = 1
	next := make([]float64, mk.N+1)
	fn := float64(mk.N)
	for step := 0; step < n; step++ {
		for i := range next {
			next[i] = 0
		}
		for i, p := range dist {
			if p == 0 {
				continue
			}
			fi := float64(i)
			up := mk.Q * (fn - fi) / fn
			down := (1-mk.Q)*fi/fn + mk.V*fi/fn
			stay := 1 - up - down
			if down > 0 {
				next[i-1] += p * down
			}
			next[i] += p * stay
			if up > 0 {
				next[i+1] += p * up
			}
		}
		dist, next = next, dist
	}
	return Mean(dist)
}
