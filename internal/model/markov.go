package model

import (
	"fmt"
	"math"
)

// exp is math.Exp; indirected so the priority code reads cleanly.
func exp(x float64) float64 { return math.Exp(x) }

// Markov is the appendix's birth-death chain over the number of resident
// lines of a dependent thread C while a sharing partner A takes misses.
// State i ∈ [0, N] is the size of C's footprint; each miss by A moves
// the chain according to whether the fetched line is shared with C and
// whether the displaced line belonged to C:
//
//	p(i → i+1) = q·(N−i)/N          (shared line lands outside C's lines)
//	p(i → i−1) = (1−q)·i/N          (unshared line displaces a C line)
//	p(i → i)   = q·i/N + (1−q)·(N−i)/N
//
// The closed form E_n[F_C] = qN − (qN − S)·kⁿ follows; the chain is kept
// as an executable cross-check (property tests evolve it and compare).
type Markov struct {
	// N is the cache size in lines.
	N int
	// Q is the sharing coefficient q(A,C) ∈ [0, 1].
	Q float64
}

// NewMarkov validates and builds a chain.
func NewMarkov(n int, q float64) Markov {
	if n < 1 {
		// Invariant panics throughout the chain: the Markov cross-check
		// is driven by experiment code with fixed parameters.
		panic(fmt.Sprintf("model: Markov chain over %d lines", n))
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("model: sharing coefficient %v outside [0,1]", q))
	}
	return Markov{N: n, Q: q}
}

// Probs returns the one-miss transition probabilities out of state i.
func (mk Markov) Probs(i int) (down, stay, up float64) {
	if i < 0 || i > mk.N {
		panic(fmt.Sprintf("model: Markov state %d outside [0,%d]", i, mk.N))
	}
	fi, fn := float64(i), float64(mk.N)
	up = mk.Q * (fn - fi) / fn
	down = (1 - mk.Q) * fi / fn
	stay = 1 - up - down
	return down, stay, up
}

// Step advances a probability distribution over states [0, N] by one
// miss, writing into dst (which must have length N+1 and may not alias
// dist). It returns dst.
func (mk Markov) Step(dst, dist []float64) []float64 {
	if len(dist) != mk.N+1 || len(dst) != mk.N+1 {
		panic("model: Markov distribution length must be N+1")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, p := range dist {
		if p == 0 {
			continue
		}
		down, stay, up := mk.Probs(i)
		if down > 0 {
			dst[i-1] += p * down
		}
		dst[i] += p * stay
		if up > 0 {
			dst[i+1] += p * up
		}
	}
	return dst
}

// Evolve advances the distribution n steps, returning the final
// distribution (the input is not modified).
func (mk Markov) Evolve(dist []float64, n int) []float64 {
	cur := append([]float64(nil), dist...)
	next := make([]float64, len(dist))
	for s := 0; s < n; s++ {
		cur, next = mk.Step(next, cur), cur
	}
	return cur
}

// Expected returns E[F_C] after n misses starting from the point
// distribution at footprint s, by evolving the chain — the quantity the
// closed form ExpectDep(s, q, n) predicts analytically.
func (mk Markov) Expected(s, n int) float64 {
	if s < 0 || s > mk.N {
		panic(fmt.Sprintf("model: initial footprint %d outside [0,%d]", s, mk.N))
	}
	dist := make([]float64, mk.N+1)
	dist[s] = 1
	return Mean(mk.Evolve(dist, n))
}

// Mean returns the expected state of a distribution over [0, N].
func Mean(dist []float64) float64 {
	var m float64
	for i, p := range dist {
		m += float64(i) * p
	}
	return m
}
