// Package perfctr simulates the per-processor hardware performance
// monitoring unit the paper's runtime reads at every context switch.
//
// The model follows the UltraSPARC-1: a Performance Control Register
// (PCR) selects which event each of two 32-bit Performance
// Instrumentation Counters (PIC0, PIC1) accumulates, and a PCR bit
// grants user-level read access so the thread runtime gets cache-use
// information for free. In the paper's configuration PIC0 counts
// E-cache references and PIC1 counts E-cache hits; the scheduler derives
// misses as refs − hits across a scheduling interval using modular
// 32-bit arithmetic (the counters wrap).
package perfctr

import "fmt"

// Event enumerates countable hardware events. Only the cache-related
// events are used by the scheduling runtime, but cycles and instructions
// are provided for the MPI experiments.
type Event uint8

// Countable events.
const (
	// EventNone makes a counter hold its value.
	EventNone Event = iota
	// EventCycles counts processor cycles.
	EventCycles
	// EventInstructions counts instructions executed.
	EventInstructions
	// EventECacheRefs counts external (L2) cache references.
	EventECacheRefs
	// EventECacheHits counts external (L2) cache hits.
	EventECacheHits
)

func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventCycles:
		return "cycles"
	case EventInstructions:
		return "instr"
	case EventECacheRefs:
		return "EC_ref"
	case EventECacheHits:
		return "EC_hit"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// PCR is the Performance Control Register: event selection for the two
// PICs plus the user-access ("PRIV=0") bit that lets the runtime read
// the counters without a system call.
type PCR struct {
	Pic0, Pic1 Event
	UserAccess bool
}

// DefaultPCR is the configuration the paper uses on both platforms:
// PIC0 = E-cache references, PIC1 = E-cache hits, readable at user
// level.
func DefaultPCR() PCR {
	return PCR{Pic0: EventECacheRefs, Pic1: EventECacheHits, UserAccess: true}
}

// Unit is one processor's performance monitoring unit.
type Unit struct {
	pcr        PCR
	pic0, pic1 uint32
}

// NewUnit returns a unit programmed with the given control register.
func NewUnit(pcr PCR) *Unit { return &Unit{pcr: pcr} }

// PCR returns the current control register value.
func (u *Unit) PCR() PCR { return u.pcr }

// Program rewrites the control register. Real hardware does not clear
// the PICs on a PCR write, and neither does the simulation.
func (u *Unit) Program(pcr PCR) { u.pcr = pcr }

// Record accumulates delta occurrences of event e into whichever PICs
// are programmed to count it. The 32-bit counters wrap silently, as on
// hardware.
func (u *Unit) Record(e Event, delta uint64) {
	if u.pcr.Pic0 == e {
		u.pic0 += uint32(delta)
	}
	if u.pcr.Pic1 == e {
		u.pic1 += uint32(delta)
	}
}

// Snapshot is a point-in-time reading of both PICs.
type Snapshot struct {
	Pic0, Pic1 uint32
}

// Read returns the current counter values. It fails (as the hardware
// traps) if user access is not enabled; the runtime always programs
// UserAccess, so this is a guard against misconfiguration, not a
// recoverable condition.
func (u *Unit) Read() Snapshot {
	if !u.pcr.UserAccess {
		// Invariant: models a hardware trap, not a recoverable error.
		panic("perfctr: user-level PIC read with PCR.UserAccess clear")
	}
	return Snapshot{Pic0: u.pic0, Pic1: u.pic1}
}

// Reset zeroes both counters (a privileged write on hardware; the
// runtime instead uses snapshot deltas, but tests and tools may reset).
func (u *Unit) Reset() { u.pic0, u.pic1 = 0, 0 }

// Delta returns the per-PIC event counts between two snapshots taken
// from the same unit, correctly handling 32-bit wraparound (intervals
// shorter than 2^32 events, which every scheduling interval is).
func Delta(cur, prev Snapshot) (d0, d1 uint64) {
	return uint64(cur.Pic0 - prev.Pic0), uint64(cur.Pic1 - prev.Pic1)
}

// MissesSince derives the number of E-cache misses between prev and cur
// for a unit programmed with DefaultPCR (refs on PIC0, hits on PIC1).
func MissesSince(cur, prev Snapshot) uint64 {
	refs, hits := Delta(cur, prev)
	if hits > refs {
		// Can only happen if the PCR was reprogrammed mid-interval;
		// clamp rather than underflow.
		return 0
	}
	return refs - hits
}
