package perfctr

import "testing"

func TestDefaultConfiguration(t *testing.T) {
	u := NewUnit(DefaultPCR())
	u.Record(EventECacheRefs, 10)
	u.Record(EventECacheHits, 7)
	u.Record(EventCycles, 100) // not selected: must not count
	s := u.Read()
	if s.Pic0 != 10 || s.Pic1 != 7 {
		t.Errorf("snapshot = %+v, want {10 7}", s)
	}
}

func TestMissesSince(t *testing.T) {
	u := NewUnit(DefaultPCR())
	base := u.Read()
	u.Record(EventECacheRefs, 100)
	u.Record(EventECacheHits, 60)
	if got := MissesSince(u.Read(), base); got != 40 {
		t.Errorf("MissesSince = %d, want 40", got)
	}
}

func TestWraparound(t *testing.T) {
	u := NewUnit(DefaultPCR())
	// Push PIC0 to the brink of wrap, snapshot, cross the wrap, and
	// verify the interval delta survives it.
	u.Record(EventECacheRefs, 1<<32-5)
	base := u.Read()
	u.Record(EventECacheRefs, 10) // wraps
	d0, _ := Delta(u.Read(), base)
	if d0 != 10 {
		t.Errorf("delta across wrap = %d, want 10", d0)
	}
}

func TestHitsExceedingRefsClamps(t *testing.T) {
	// Only possible if the PCR was reprogrammed mid-interval; the
	// runtime must see 0, not a huge unsigned underflow.
	u := NewUnit(DefaultPCR())
	base := u.Read()
	u.Record(EventECacheHits, 5)
	if got := MissesSince(u.Read(), base); got != 0 {
		t.Errorf("clamped misses = %d, want 0", got)
	}
}

func TestPrivilegedReadTraps(t *testing.T) {
	pcr := DefaultPCR()
	pcr.UserAccess = false
	u := NewUnit(pcr)
	defer func() {
		if recover() == nil {
			t.Error("user-level read with UserAccess clear did not trap")
		}
	}()
	u.Read()
}

func TestProgramPreservesCounts(t *testing.T) {
	u := NewUnit(DefaultPCR())
	u.Record(EventECacheRefs, 42)
	pcr := u.PCR()
	pcr.Pic0 = EventCycles
	u.Program(pcr)
	if got := u.Read().Pic0; got != 42 {
		t.Errorf("PCR write cleared PIC0: %d", got)
	}
	u.Record(EventCycles, 8)
	if got := u.Read().Pic0; got != 50 {
		t.Errorf("PIC0 after retarget = %d, want 50", got)
	}
}

func TestReset(t *testing.T) {
	u := NewUnit(DefaultPCR())
	u.Record(EventECacheRefs, 3)
	u.Record(EventECacheHits, 2)
	u.Reset()
	if s := u.Read(); s.Pic0 != 0 || s.Pic1 != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSameEventBothPICs(t *testing.T) {
	u := NewUnit(PCR{Pic0: EventECacheRefs, Pic1: EventECacheRefs, UserAccess: true})
	u.Record(EventECacheRefs, 6)
	if s := u.Read(); s.Pic0 != 6 || s.Pic1 != 6 {
		t.Errorf("both PICs should count the shared event: %+v", s)
	}
}

func TestEventStrings(t *testing.T) {
	names := map[Event]string{
		EventNone: "none", EventCycles: "cycles", EventInstructions: "instr",
		EventECacheRefs: "EC_ref", EventECacheHits: "EC_hit",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if Event(200).String() != "Event(200)" {
		t.Error("unknown event string wrong")
	}
}

func TestMissesSinceExactWrapBoundary(t *testing.T) {
	// The interval straddles exactly 2^32-1 -> 0: one ref is counted at
	// the all-ones value, the next increment wraps PIC0 to zero.
	prev := Snapshot{Pic0: 1<<32 - 1, Pic1: 0}
	cur := Snapshot{Pic0: 0, Pic1: 0} // exactly one ref, a miss
	if got := MissesSince(cur, prev); got != 1 {
		t.Errorf("misses across the exact wrap = %d, want 1", got)
	}
	// Zero-length interval at the boundary value itself.
	if got := MissesSince(prev, prev); got != 0 {
		t.Errorf("empty interval at 2^32-1 = %d, want 0", got)
	}
}

func TestMissesSinceBothPICsWrap(t *testing.T) {
	// Refs and hits both wrap within one interval: 100 refs of which 60
	// hit, with both counters starting near the top of their range.
	prev := Snapshot{Pic0: 1<<32 - 40, Pic1: 1<<32 - 20}
	cur := Snapshot{Pic0: prev.Pic0 + 100, Pic1: prev.Pic1 + 60} // wraps
	if got := MissesSince(cur, prev); got != 40 {
		t.Errorf("misses with both PICs wrapping = %d, want 40", got)
	}
}

func TestMissesSinceMultiWrapAliases(t *testing.T) {
	// Modular arithmetic cannot distinguish k from k + 2^32: an interval
	// of 2^32+7 refs reads as 7. This documents the contract — intervals
	// must stay under 2^32 events, which every scheduling interval does.
	u := NewUnit(DefaultPCR())
	base := u.Read()
	u.Record(EventECacheRefs, 1<<32+7)
	if got := MissesSince(u.Read(), base); got != 7 {
		t.Errorf("aliased delta = %d, want 7 (mod 2^32)", got)
	}
}
