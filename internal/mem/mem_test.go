package mem

import (
	"testing"
	"testing/quick"
)

func TestLog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {64, 6}, {4096, 12}, {1 << 19, 19},
	}
	for _, c := range cases {
		if got := Log2(c.in); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 64, 4096, 1 << 32} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 65, 4097} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLineAddr(t *testing.T) {
	if got := LineAddr(0x12345, 64); got != 0x12340 {
		t.Errorf("LineAddr(0x12345, 64) = %#x, want 0x12340", uint64(got))
	}
	if got := LineAddr(0x40, 64); got != 0x40 {
		t.Errorf("aligned address moved: %#x", uint64(got))
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		a    Addr
		n    uint64
		line uint64
		want uint64
	}{
		{0, 0, 64, 0},
		{0, 1, 64, 1},
		{0, 64, 64, 1},
		{0, 65, 64, 2},
		{63, 2, 64, 2},  // straddles a boundary
		{64, 64, 64, 1}, // exactly one aligned line
		{100, 600, 64, 10},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.a, c.n, c.line); got != c.want {
			t.Errorf("LinesSpanned(%#x, %d, %d) = %d, want %d", uint64(c.a), c.n, c.line, got, c.want)
		}
	}
}

func TestLinesSpannedProperty(t *testing.T) {
	// The span count is always within 1 of n/lineSize rounded up, and
	// never less than 1 for nonzero n.
	f := func(a uint32, n uint16) bool {
		const line = 64
		got := LinesSpanned(Addr(a), uint64(n), line)
		if n == 0 {
			return got == 0
		}
		min := (uint64(n) + line - 1) / line
		return got >= min && got <= min+1 && got >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessConstructors(t *testing.T) {
	a := ReadRange(0x1000, 100)
	if a.Write {
		t.Error("ReadRange produced a write")
	}
	if a.Refs() != 13 { // ceil(100/8)
		t.Errorf("ReadRange(…, 100).Refs() = %d, want 13", a.Refs())
	}
	w := WriteRange(0x1000, 64)
	if !w.Write || w.Refs() != 8 {
		t.Errorf("WriteRange wrong: %+v", w)
	}
	b := Batch{a, w}
	if b.Refs() != 21 {
		t.Errorf("Batch.Refs() = %d, want 21", b.Refs())
	}
}

func TestRange(t *testing.T) {
	r := Range{Base: 0x1000, Len: 0x100}
	if r.End() != 0x1100 {
		t.Errorf("End() = %#x", uint64(r.End()))
	}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Error("Contains misses endpoints")
	}
	if r.Contains(0x1100) || r.Contains(0xfff) {
		t.Error("Contains includes outside addresses")
	}
	if got := r.Lines(64); got != 4 {
		t.Errorf("Lines(64) = %d, want 4", got)
	}
}

func TestThreadIDString(t *testing.T) {
	if NilThread.String() != "t<nil>" || SchedThread.String() != "t<sched>" {
		t.Error("sentinel thread names wrong")
	}
	if ThreadID(7).String() != "t7" {
		t.Errorf("ThreadID(7) = %q", ThreadID(7).String())
	}
	if NilThread.Valid() || SchedThread.Valid() || !ThreadID(0).Valid() {
		t.Error("Valid() wrong for sentinels or zero")
	}
}
