// Package mem provides the primitive memory types shared by the cache
// simulator, the machine model, and the thread runtime: virtual and
// physical addresses, line and page geometry, thread identifiers, and
// batched memory references.
//
// All simulated addresses are byte addresses in a flat 64-bit space.
// Geometry (line size, page size) is always a power of two and is carried
// by the component that owns it (a cache, a page mapper); this package
// only supplies the arithmetic.
package mem

import "fmt"

// Addr is a simulated memory address (virtual or physical, depending on
// context). The zero address is valid but by convention never allocated,
// so it can be used as a sentinel.
type Addr uint64

// ThreadID identifies a simulated thread. IDs are dense small integers
// assigned by the runtime in creation order, which makes them usable as
// array indices.
type ThreadID int32

// Reserved thread identifiers.
const (
	// NilThread is the absence of a thread (e.g. the owner of an
	// invalid cache line).
	NilThread ThreadID = -1
	// SchedThread attributes references issued by the scheduler itself
	// (heap arrays, thread tables) rather than by any user thread.
	SchedThread ThreadID = -2
)

// Valid reports whether id names an actual user thread.
func (id ThreadID) Valid() bool { return id >= 0 }

func (id ThreadID) String() string {
	switch id {
	case NilThread:
		return "t<nil>"
	case SchedThread:
		return "t<sched>"
	default:
		return fmt.Sprintf("t%d", int32(id))
	}
}

// Log2 returns floor(log2(v)) for v > 0. It is used to derive index and
// offset shifts from power-of-two sizes.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// LineAddr returns the address of the start of the line containing a,
// for the given line size (a power of two).
func LineAddr(a Addr, lineSize uint64) Addr { return a &^ Addr(lineSize-1) }

// LinesSpanned returns how many lines of the given size the byte range
// [a, a+n) touches. A zero-length range touches no lines.
func LinesSpanned(a Addr, n uint64, lineSize uint64) uint64 {
	if n == 0 {
		return 0
	}
	first := uint64(a) / lineSize
	last := (uint64(a) + n - 1) / lineSize
	return last - first + 1
}

// Access describes a strided run of memory references: Count references
// of Size bytes each, starting at Base, with successive reference
// addresses Stride bytes apart. Stride may be negative (a backwards
// walk) or zero (repeated references to one location).
//
// A batch of Access values is the unit of work a thread hands to the
// machine; representing runs rather than single references keeps the
// simulation cost near one cache probe per reference.
type Access struct {
	Base   Addr
	Count  int32
	Stride int32
	Size   uint16
	Write  bool
}

// Refs returns the number of references the access performs.
func (a Access) Refs() int64 { return int64(a.Count) }

// Bytes returns the total number of bytes the access touches, counting
// overlapping references once per reference (it is Count*Size, not the
// span).
func (a Access) Bytes() int64 { return int64(a.Count) * int64(a.Size) }

// Read constructs a read access of Count references of Size bytes with
// the given stride.
func Read(base Addr, count, stride int32, size uint16) Access {
	return Access{Base: base, Count: count, Stride: stride, Size: size}
}

// Write constructs a write access of Count references of Size bytes with
// the given stride.
func Write(base Addr, count, stride int32, size uint16) Access {
	return Access{Base: base, Count: count, Stride: stride, Size: size, Write: true}
}

// ReadRange constructs a sequential read sweep over [base, base+n) in
// word-sized (8-byte) references.
func ReadRange(base Addr, n int64) Access {
	return Access{Base: base, Count: int32((n + 7) / 8), Stride: 8, Size: 8}
}

// WriteRange constructs a sequential write sweep over [base, base+n) in
// word-sized (8-byte) references.
func WriteRange(base Addr, n int64) Access {
	return Access{Base: base, Count: int32((n + 7) / 8), Stride: 8, Size: 8, Write: true}
}

// Batch is an ordered sequence of accesses applied atomically with
// respect to other CPUs at batch granularity. Batches are value types;
// callers may reuse backing arrays between applications.
type Batch []Access

// Refs returns the total number of references in the batch.
func (b Batch) Refs() int64 {
	var n int64
	for _, a := range b {
		n += a.Refs()
	}
	return n
}

// Range is a contiguous byte range [Base, Base+Len) of the simulated
// address space, used to describe thread state regions for footprint
// tracking and allocation.
type Range struct {
	Base Addr
	Len  uint64
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Len) }

// Contains reports whether a lies inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Lines returns the number of lines of the given size the range spans.
func (r Range) Lines(lineSize uint64) uint64 { return LinesSpanned(r.Base, r.Len, lineSize) }

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Base), uint64(r.End()))
}
