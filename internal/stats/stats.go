// Package stats provides the small statistical toolkit used by the
// model-accuracy experiments: online moments, error metrics between a
// predicted and an observed series, and sampled series containers.
package stats

import (
	"fmt"
	"math"
)

// Online accumulates count, mean and variance incrementally using
// Welford's algorithm. The zero value is an empty accumulator.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean, or 0 for an empty accumulator.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the population variance, or 0 with fewer than two
// observations.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Std returns the population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation. Like Mean, it returns 0 for an
// empty accumulator — 0 is a sentinel, not an observation; check N to
// distinguish "no data" from a genuine 0. (Before the Summary API this
// convention was only documented on Mean.)
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 for an empty accumulator
// (same convention as Min and Mean: check N for "no data").
func (o *Online) Max() float64 { return o.max }

// Summary is a point-in-time copy of an accumulator's statistics, the
// form consumed by the observability metrics exporters. For N == 0
// every field is 0 — the empty-accumulator convention of Mean/Min/Max
// made explicit in one place.
type Summary struct {
	N    int64
	Mean float64
	Var  float64
	Std  float64
	Min  float64
	Max  float64
}

// Summary returns the accumulator's current statistics.
func (o *Online) Summary() Summary {
	return Summary{N: o.n, Mean: o.Mean(), Var: o.Var(), Std: o.Std(), Min: o.min, Max: o.max}
}

// Merge folds accumulator b into o, as if every observation added to b
// had been added to o (Chan et al.'s parallel Welford combination).
// Per-CPU metric shards are merged with it; merging in a different
// order can differ in the last floating-point bit, so deterministic
// consumers must merge in a fixed order.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean += d * float64(b.n) / float64(n)
	o.n = n
}

// Series is a sampled curve: parallel X and Y slices of equal length.
// Experiments append checkpoints as the computation unfolds and reports
// render the result.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one sample point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the Y value for the largest X not exceeding x, using
// linear search from the end (series are appended in X order). It
// returns 0 for an empty series or when x precedes the first sample.
func (s *Series) YAt(x float64) float64 {
	for i := len(s.X) - 1; i >= 0; i-- {
		if s.X[i] <= x {
			return s.Y[i]
		}
	}
	return 0
}

// Last returns the final (x, y) sample. It panics on an empty series.
func (s *Series) Last() (float64, float64) {
	i := len(s.X) - 1
	return s.X[i], s.Y[i]
}

// RMSE returns the root-mean-square error between predicted and observed
// values. The slices must have equal nonzero length.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		// Invariant: mismatched series are a programming error.
		panic(fmt.Sprintf("stats: RMSE length mismatch %d != %d", len(pred), len(obs)))
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		d := pred[i] - obs[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// MeanRelError returns the mean of |pred-obs| / max(|obs|, floor): the
// average relative prediction error with a floor that keeps early
// near-zero observations from dominating.
func MeanRelError(pred, obs []float64, floor float64) float64 {
	if len(pred) != len(obs) {
		// Invariant: mismatched series are a programming error.
		panic(fmt.Sprintf("stats: MeanRelError length mismatch %d != %d", len(pred), len(obs)))
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		den := math.Abs(obs[i])
		if den < floor {
			den = floor
		}
		sum += math.Abs(pred[i]-obs[i]) / den
	}
	return sum / float64(len(pred))
}

// MeanBias returns the mean of (pred - obs): positive values mean the
// model overestimates, which is the signature the paper reports for the
// typechecker and raytrace workloads.
func MeanBias(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		// Invariant: mismatched series are a programming error.
		panic(fmt.Sprintf("stats: MeanBias length mismatch %d != %d", len(pred), len(obs)))
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		sum += pred[i] - obs[i]
	}
	return sum / float64(len(pred))
}

// Ratio returns a/b, or 0 when b is 0. It is used for relative
// performance numbers where a zero denominator means "not measured".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentEliminated returns the percentage of base eliminated by v:
// 100*(base-v)/base. Negative results mean v exceeded the baseline
// (the paper reports -1% for photo on one CPU).
func PercentEliminated(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - v) / base
}

// CounterHealth is one processor's miss-counter health accounting, as
// maintained by the runtime's reading sanitizer. Every scheduling
// interval's counter reading is classified OK, Suspect, or Rejected;
// persistent rejection quarantines the counter (the scheduler then
// falls back to the annotation-free baseline on that CPU) and sustained
// clean readings recover it. The struct records every classification
// and every state transition, so experiments can show exactly when and
// how often degradation kicked in.
type CounterHealth struct {
	// CPU is the processor index.
	CPU int
	// OK, Suspect and Rejected count interval readings by class.
	OK       uint64
	Suspect  uint64
	Rejected uint64
	// Quarantines and Recoveries count state transitions into and out
	// of quarantine.
	Quarantines uint64
	Recoveries  uint64
	// Quarantined is the current state: true while the scheduler is
	// degraded to the annotation-free baseline on this CPU.
	Quarantined bool
	// StreakRejected and StreakClean are the current consecutive
	// rejected / clean reading counts driving the hysteresis.
	StreakRejected int
	StreakClean    int
}

// Total returns the number of classified readings.
func (h CounterHealth) Total() uint64 { return h.OK + h.Suspect + h.Rejected }

// String renders a one-line health summary.
func (h CounterHealth) String() string {
	state := "healthy"
	if h.Quarantined {
		state = "QUARANTINED"
	}
	return fmt.Sprintf("cpu%d %s: %d ok, %d suspect, %d rejected, %d quarantines, %d recoveries",
		h.CPU, state, h.OK, h.Suspect, h.Rejected, h.Quarantines, h.Recoveries)
}
