package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineMoments(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	if math.Abs(o.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", o.Std())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.Std() != 0 {
		t.Error("empty accumulator not all-zero")
	}
	o.Add(3)
	if o.Mean() != 3 || o.Var() != 0 {
		t.Errorf("single observation: mean %v var %v", o.Mean(), o.Var())
	}
}

func TestOnlineMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var o Online
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			o.Add(x)
		}
		if len(clean) == 0 {
			return o.N() == 0
		}
		var sum float64
		for _, x := range clean {
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(len(clean))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(o.Mean()-mean) < 1e-6*scale &&
			math.Abs(o.Var()-wantVar) < 1e-4*math.Max(1, wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 10)
	s.Append(5, 20)
	s.Append(9, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.YAt(5); got != 20 {
		t.Errorf("YAt(5) = %v", got)
	}
	if got := s.YAt(8.9); got != 20 {
		t.Errorf("YAt(8.9) = %v", got)
	}
	if got := s.YAt(100); got != 30 {
		t.Errorf("YAt(100) = %v", got)
	}
	if got := s.YAt(-1); got != 0 {
		t.Errorf("YAt(-1) = %v", got)
	}
	if x, y := s.Last(); x != 9 || y != 30 {
		t.Errorf("Last = (%v,%v)", x, y)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("identical series RMSE = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMeanRelError(t *testing.T) {
	got := MeanRelError([]float64{110, 90}, []float64{100, 100}, 1)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MeanRelError = %v, want 0.1", got)
	}
	// The floor keeps zero observations from blowing up.
	got = MeanRelError([]float64{5}, []float64{0}, 10)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("floored MeanRelError = %v, want 0.5", got)
	}
}

func TestMeanBias(t *testing.T) {
	got := MeanBias([]float64{12, 14}, []float64{10, 10})
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("MeanBias = %v, want 3", got)
	}
	if got := MeanBias([]float64{8}, []float64{10}); got != -2 {
		t.Errorf("negative bias = %v", got)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
	if got := PercentEliminated(200, 50); got != 75 {
		t.Errorf("PercentEliminated = %v", got)
	}
	if got := PercentEliminated(100, 101); got != -1 {
		t.Errorf("negative elimination = %v", got)
	}
	if got := PercentEliminated(0, 5); got != 0 {
		t.Errorf("zero-base elimination = %v", got)
	}
}

func TestOnlineSummary(t *testing.T) {
	var o Online
	if s := o.Summary(); s != (Summary{}) {
		t.Errorf("empty Summary = %+v, want zero value", s)
	}
	for _, x := range []float64{4, -2, 10, 6} {
		o.Add(x)
	}
	s := o.Summary()
	if s.N != 4 || s.Min != -2 || s.Max != 10 {
		t.Errorf("Summary N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if math.Abs(s.Mean-4.5) > 1e-12 || math.Abs(s.Std-math.Sqrt(s.Var)) > 1e-12 {
		t.Errorf("Summary moments = %+v", s)
	}
	if s.Mean != o.Mean() || s.Var != o.Var() || s.Min != o.Min() || s.Max != o.Max() {
		t.Error("Summary disagrees with the accessors")
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var whole, a, b Online
	for i, x := range rng {
		whole.Add(x)
		if i < 5 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("Merge N/Min/Max = %d/%v/%v, want %d/%v/%v",
			a.N(), a.Min(), a.Max(), whole.N(), whole.Min(), whole.Max())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 || math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Errorf("Merge moments %v/%v, want %v/%v", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}

	// Merging an empty accumulator is a no-op in both directions.
	var empty Online
	before := a.Summary()
	a.Merge(&empty)
	if a.Summary() != before {
		t.Error("merging an empty accumulator changed the state")
	}
	empty.Merge(&a)
	if empty.Summary() != before {
		t.Error("merging into an empty accumulator did not copy")
	}
}
