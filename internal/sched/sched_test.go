package sched

import (
	"testing"

	"repro/internal/annot"
	"repro/internal/mem"
	"repro/internal/model"
)

// fixture builds a scheduler over a fake miss clock the test controls.
type fixture struct {
	s      *Scheduler
	misses []uint64
	g      *annot.Graph
	m      *model.Model
}

func newFixture(scheme model.Scheme, ncpu int, threshold float64) *fixture {
	f := &fixture{misses: make([]uint64, ncpu), g: annot.New()}
	var mdl *model.Model
	if scheme != nil {
		mdl = model.New(8192)
	}
	f.m = mdl
	f.s = New(mdl, scheme, f.g, ncpu, threshold, func(cpu int) uint64 { return f.misses[cpu] })
	return f
}

// runInterval simulates "thread tid ran on cpu and took n misses".
func (f *fixture) runInterval(t *testing.T, tid mem.ThreadID, cpu int, n uint64) {
	t.Helper()
	f.s.NoteDispatch(tid, cpu)
	f.misses[cpu] += n
	f.s.OnBlock(tid, cpu, n)
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFCFSIsFIFO(t *testing.T) {
	f := newFixture(nil, 2, 16)
	for tid := mem.ThreadID(1); tid <= 3; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}
	for want := mem.ThreadID(1); want <= 3; want++ {
		got, ok := f.s.PickNext(0)
		if !ok || got != want {
			t.Fatalf("PickNext = (%v,%v), want %v", got, ok, want)
		}
		f.s.NoteDispatch(got, 0)
	}
	if _, ok := f.s.PickNext(0); ok {
		t.Error("work appeared from nowhere")
	}
}

func TestLFFPrefersLargestFootprint(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	for tid := mem.ThreadID(1); tid <= 2; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}
	// Thread 1 runs and takes 100 misses; thread 2 then runs and takes
	// 2000 misses. Thread 2 ends with the larger footprint.
	tid, _ := f.s.PickNext(0)
	if tid != 1 {
		t.Fatalf("first dispatch = %v", tid)
	}
	f.runInterval(t, 1, 0, 100)
	f.s.MakeRunnable(1)
	f.runInterval(t, 2, 0, 2000)
	f.s.MakeRunnable(2)
	got, ok := f.s.PickNext(0)
	if !ok || got != 2 {
		t.Errorf("LFF picked %v, want 2 (largest footprint)", got)
	}
	// Sanity: the footprints the scheduler believes in.
	f1 := f.s.CurrentFootprint(1, 0)
	f2 := f.s.CurrentFootprint(2, 0)
	if f2 <= f1 {
		t.Errorf("footprints: t1 %v, t2 %v — t2 should be larger", f1, f2)
	}
}

func TestCRTPrefersFreshestBlocker(t *testing.T) {
	f := newFixture(model.CRT{}, 1, 1)
	for tid := mem.ThreadID(1); tid <= 2; tid++ {
		f.s.Register(tid)
	}
	f.s.MakeRunnable(1)
	f.s.MakeRunnable(2)
	// t1 runs big, then t2 runs small: t2 blocked most recently, so t2
	// has reload ratio 0 while t1's state decayed during t2's run.
	tid, _ := f.s.PickNext(0)
	f.s.NoteDispatch(tid, 0)
	f.misses[0] += 3000
	f.s.OnBlock(tid, 0, 3000)
	f.s.MakeRunnable(tid)
	f.runInterval(t, 2, 0, 500)
	f.s.MakeRunnable(2)
	got, _ := f.s.PickNext(0)
	if got != 2 {
		t.Errorf("CRT picked %v, want the most recent blocker 2", got)
	}
}

func TestIndependentEntriesUntouchedOnBlock(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	for tid := mem.ThreadID(1); tid <= 3; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}
	f.g.Share(1, 2, 0.5)        // 2 depends on 1; 3 is independent
	f.runInterval(t, 3, 0, 400) // give t3 some footprint
	f.s.MakeRunnable(3)
	e3 := *f.s.EntryOf(3, 0)
	e2before := f.s.EntryOf(2, 0)
	f.runInterval(t, 1, 0, 800)
	// t3 independent: S, SLast, M0 and priority must be untouched (the
	// heap index may shuffle as other entries come and go).
	got := *f.s.EntryOf(3, 0)
	if got.S != e3.S || got.SLast != e3.SLast || got.M0 != e3.M0 || got.Prio != e3.Prio {
		t.Errorf("independent entry changed: %+v -> %+v", e3, got)
	}
	// t2 dependent: entry created/updated by the switch.
	e2 := f.s.EntryOf(2, 0)
	if e2 == nil || (e2before != nil && e2.M0 == e2before.M0) {
		t.Error("dependent entry not updated")
	}
	if e2.S <= 0 {
		t.Errorf("dependent footprint = %v, want > 0", e2.S)
	}
}

func TestDependentUpdateCreatesHeapEntry(t *testing.T) {
	// The photo mechanism: a runnable thread with no cache state sits
	// in the global queue; once a sharing partner blocks, the dependent
	// gains a hot entry and is dispatched from the heap.
	f := newFixture(model.LFF{}, 1, 16)
	for tid := mem.ThreadID(1); tid <= 2; tid++ {
		f.s.Register(tid)
	}
	f.g.Share(1, 2, 0.8)
	f.s.MakeRunnable(1)
	f.s.MakeRunnable(2)
	tid, _ := f.s.PickNext(0)
	if tid != 1 {
		t.Fatalf("first pick = %v", tid)
	}
	f.runInterval(t, 1, 0, 1000)
	if f.s.HeapLen(0) != 1 {
		t.Fatalf("dependent not promoted to heap: len = %d", f.s.HeapLen(0))
	}
	got, _ := f.s.PickNext(0)
	if got != 2 {
		t.Errorf("picked %v, want promoted dependent 2", got)
	}
}

func TestThresholdDemotion(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 64)
	f.s.Register(1)
	f.s.Register(2)
	f.s.MakeRunnable(1)
	f.runInterval(t, 1, 0, 100) // footprint ~100 lines
	f.s.MakeRunnable(1)
	if f.s.HeapLen(0) != 1 {
		t.Fatalf("hot thread not in heap")
	}
	// Unrelated traffic decays t1's footprint below 64 lines:
	// 100·k^n < 64 → n > ln(100/64)/(-ln k) ≈ 3657.
	f.s.MakeRunnable(2)
	f.runInterval(t, 2, 0, 10000)
	f.s.MakeRunnable(2)
	got, ok := f.s.PickNext(0)
	if !ok {
		t.Fatal("no work")
	}
	if got != 2 {
		t.Errorf("picked %v, want 2 (t1 demoted)", got)
	}
	f.s.NoteDispatch(2, 0)
	// t1 must now be reachable via the global queue, not lost.
	got, ok = f.s.PickNext(0)
	if !ok || got != 1 {
		t.Errorf("demoted thread not in global queue: (%v, %v)", got, ok)
	}
	if f.s.Ops().Demotions == 0 {
		t.Error("no demotion counted")
	}
}

func TestStealTakesLowestPriority(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	for tid := mem.ThreadID(1); tid <= 2; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}
	// Both threads build footprints on CPU 0 (t1 large, t2 small).
	f.runInterval(t, 1, 0, 2000)
	f.s.MakeRunnable(1)
	f.runInterval(t, 2, 0, 300)
	f.s.MakeRunnable(2)
	if f.s.HeapLen(0) != 2 {
		t.Fatalf("heap len = %d", f.s.HeapLen(0))
	}
	// CPU 1 has nothing: it must steal the *smaller* footprint (t2).
	got, ok := f.s.PickNext(1)
	if !ok || got != 2 {
		t.Errorf("steal = (%v,%v), want thread 2", got, ok)
	}
	if f.s.Ops().Steals != 1 {
		t.Errorf("steals = %d", f.s.Ops().Steals)
	}
	f.s.NoteDispatch(got, 1)
	// The hot thread remains for CPU 0.
	got, _ = f.s.PickNext(0)
	if got != 1 {
		t.Errorf("CPU 0 lost its hot thread: picked %v", got)
	}
}

func TestAnnotationOfUnknownThreadIgnored(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(1)
	f.s.MakeRunnable(1)
	f.g.Share(1, 99, 0.5) // 99 was never registered (exited or bogus)
	f.runInterval(t, 1, 0, 100)
	// No panic, no entry for 99.
	if f.s.EntryOf(99, 0) != nil {
		t.Error("entry created for unknown thread")
	}
}

func TestUnregisterRemovesEverywhere(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	f.s.Register(1)
	f.s.MakeRunnable(1)
	f.runInterval(t, 1, 0, 500)
	f.s.MakeRunnable(1)
	if f.s.HeapLen(0) != 1 {
		t.Fatal("setup failed")
	}
	f.s.Unregister(1)
	if f.s.HeapLen(0) != 0 || f.s.Registered(1) {
		t.Error("unregister left state behind")
	}
	if _, ok := f.s.PickNext(0); ok {
		t.Error("exited thread still dispatchable")
	}
	f.s.Unregister(1) // idempotent
}

func TestGlobalQueueLazyDeletion(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(1)
	f.s.Register(2)
	f.s.MakeRunnable(1) // both go to global queue (no footprints)
	f.s.MakeRunnable(2)
	if f.s.GlobalLen() != 2 {
		t.Fatalf("GlobalLen = %d", f.s.GlobalLen())
	}
	// t1 gains a hot entry via a dependent update: its global-queue
	// position becomes stale and must be skipped.
	f.s.Register(3)
	f.s.MakeRunnable(3)
	f.g.Share(3, 1, 1.0)
	tid, _ := f.s.PickNext(0)
	if tid != 1 { // FIFO order
		t.Fatalf("pick = %v", tid)
	}
	f.s.NoteDispatch(1, 0)
	f.misses[0] += 100
	f.s.OnBlock(1, 0, 100)
	f.s.MakeRunnable(1)
	// Now t1 is hot (heap). Dispatch everything and count each exactly
	// once.
	seen := map[mem.ThreadID]int{}
	for {
		tid, ok := f.s.PickNext(0)
		if !ok {
			break
		}
		seen[tid]++
		f.s.NoteDispatch(tid, 0)
	}
	if seen[1] != 1 || seen[2] != 1 || seen[3] != 1 {
		t.Errorf("dispatch counts = %v, want each exactly once", seen)
	}
}

func TestMakeRunnableIdempotent(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(1)
	f.s.MakeRunnable(1)
	f.s.MakeRunnable(1)
	if f.s.GlobalLen() != 1 {
		t.Errorf("double MakeRunnable queued twice: %d", f.s.GlobalLen())
	}
	got, _ := f.s.PickNext(0)
	f.s.NoteDispatch(got, 0)
	if _, ok := f.s.PickNext(0); ok {
		t.Error("phantom runnable thread")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	f := newFixture(nil, 1, 16)
	f.s.Register(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	f.s.Register(1)
}

func TestOpsAccounting(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(1)
	f.s.MakeRunnable(1)
	f.runInterval(t, 1, 0, 100)
	ops := f.s.Ops()
	if ops.PrioUpdates == 0 || ops.QueueOps == 0 {
		t.Errorf("ops not counted: %+v", ops)
	}
	f.s.ResetOps()
	if f.s.Ops().Total() != 0 || f.s.Ops().PrioUpdates != 0 {
		t.Error("ResetOps incomplete")
	}
}

func TestPolicyNames(t *testing.T) {
	if newFixture(nil, 1, 0).s.PolicyName() != "FCFS" {
		t.Error("FCFS name")
	}
	if newFixture(model.LFF{}, 1, 0).s.PolicyName() != "LFF" {
		t.Error("LFF name")
	}
}

func TestFairnessEscapeBoundsStarvation(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.SetFairnessLimit(5)
	f.s.Register(1) // the hot monopolist
	f.s.Register(2) // the cold thread at risk of starvation
	f.s.MakeRunnable(1)
	f.s.MakeRunnable(2)
	// t1 runs first (FIFO) and builds a huge footprint; t2 sits in the
	// global queue while t1 keeps getting redispatched from the heap.
	dispatched2At := -1
	for i := 0; i < 12; i++ {
		tid, ok := f.s.PickNext(0)
		if !ok {
			t.Fatal("no work")
		}
		if tid == 2 {
			dispatched2At = i
			break
		}
		f.runInterval(t, tid, 0, 500)
		f.s.MakeRunnable(tid)
	}
	if dispatched2At < 0 {
		t.Fatal("cold thread starved beyond the fairness limit")
	}
	if dispatched2At > 7 {
		t.Errorf("cold thread waited %d dispatches, limit 5", dispatched2At)
	}
	if f.s.Escapes() == 0 {
		t.Error("no escape counted")
	}
}

func TestNoFairnessMeansStarvationPossible(t *testing.T) {
	// Without the escape, the hot thread keeps winning — documenting
	// the paper's observation that locality techniques can starve.
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(1)
	f.s.Register(2)
	f.s.MakeRunnable(1)
	f.s.MakeRunnable(2)
	for i := 0; i < 20; i++ {
		tid, ok := f.s.PickNext(0)
		if !ok {
			t.Fatal("no work")
		}
		if tid == 2 && i > 0 {
			return // dispatched eventually is fine too (FIFO start)
		}
		f.runInterval(t, tid, 0, 500)
		f.s.MakeRunnable(tid)
	}
	// t2 never ran after 20 dispatches: starvation demonstrated.
	if got := f.s.Escapes(); got != 0 {
		t.Errorf("escapes = %d without a limit", got)
	}
}

func TestSpawnStacksDisabledByDefault(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	f.s.Register(1)
	f.s.NoteSpawn(1, 0)
	if f.s.SpawnLen(0) != 0 {
		t.Error("spawn stack used without opt-in")
	}
	if f.s.GlobalLen() != 1 {
		t.Error("spawned thread not in global queue")
	}
}

func TestSpawnStackLIFOAndStealOldest(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	f.s.SetSpawnStacks(true)
	for tid := mem.ThreadID(1); tid <= 3; tid++ {
		f.s.Register(tid)
		f.s.NoteSpawn(tid, 0)
	}
	if f.s.SpawnLen(0) != 3 || f.s.GlobalLen() != 0 {
		t.Fatalf("spawn=%d global=%d", f.s.SpawnLen(0), f.s.GlobalLen())
	}
	// The owner pops newest first.
	got, ok := f.s.PickNext(0)
	if !ok || got != 3 {
		t.Errorf("owner pop = %v, want newest (3)", got)
	}
	f.s.NoteDispatch(got, 0)
	// A thief takes the oldest.
	got, ok = f.s.PickNext(1)
	if !ok || got != 1 {
		t.Errorf("steal = %v, want oldest (1)", got)
	}
	f.s.NoteDispatch(got, 1)
	if f.s.Ops().Steals != 1 {
		t.Errorf("steals = %d", f.s.Ops().Steals)
	}
	// The remaining spawn is found by either side; nothing is lost or
	// dispatched twice.
	got, ok = f.s.PickNext(0)
	if !ok || got != 2 {
		t.Errorf("final pop = %v, want 2", got)
	}
	f.s.NoteDispatch(got, 0)
	if _, ok := f.s.PickNext(0); ok {
		t.Error("phantom spawn")
	}
	if _, ok := f.s.PickNext(1); ok {
		t.Error("phantom spawn on thief")
	}
}

func TestSpawnFromUnknownCPUFallsBackToGlobal(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	f.s.SetSpawnStacks(true)
	f.s.Register(1)
	f.s.NoteSpawn(1, -1)
	if f.s.GlobalLen() != 1 {
		t.Error("cpu-less spawn not in global queue")
	}
}

func TestStealPrefersSpawnOverHotHeapSingleton(t *testing.T) {
	// A fresh spawn costs nothing to migrate; a hot heap singleton
	// costs its footprint. The thief must take the spawn.
	f := newFixture(model.LFF{}, 2, 16)
	f.s.SetSpawnStacks(true)
	f.s.Register(1)
	f.s.MakeRunnable(1)
	f.runInterval(t, 1, 0, 1000)
	f.s.MakeRunnable(1) // hot on cpu 0's heap
	f.s.Register(2)
	f.s.NoteSpawn(2, 0) // fresh on cpu 0's spawn stack
	got, ok := f.s.PickNext(1)
	if !ok || got != 2 {
		t.Errorf("thief took %v, want the fresh spawn 2", got)
	}
}

func TestThresholdBoundsHeapSize(t *testing.T) {
	// The paper: demotion exists "to bound heap sizes and keep the cost
	// of elementary heap operations low". Churn many threads through
	// one CPU: the heap must stay far below the thread count because
	// old entries decay past the threshold and are demoted at pop time.
	f := newFixture(model.LFF{}, 1, 64)
	const n = 200
	for tid := mem.ThreadID(0); tid < n; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}
	maxHeap := 0
	for round := 0; round < 3*n; round++ {
		tid, ok := f.s.PickNext(0)
		if !ok {
			break
		}
		f.s.NoteDispatch(tid, 0)
		f.misses[0] += 2000 // big interval: old footprints decay fast
		f.s.OnBlock(tid, 0, 2000)
		f.s.MakeRunnable(tid)
		if h := f.s.HeapLen(0); h > maxHeap {
			maxHeap = h
		}
	}
	// With 2000 misses per interval only a handful of recent threads
	// stay hot, so the heap stays far below the population.
	if maxHeap > n/4 {
		t.Errorf("heap grew to %d of %d threads; demotion is not bounding it", maxHeap, n)
	}
	// Force a pop-time demotion: with a hot runnable entry sitting in
	// the heap, advance the miss clock far past its decay horizon (as
	// other processors' traffic would) and ask for work. The entry
	// must be demoted to the global queue — and the thread still
	// dispatched from there, not lost.
	if f.s.HeapLen(0) == 0 {
		t.Fatal("setup: expected a hot entry in the heap")
	}
	before := f.s.Ops().Demotions
	f.misses[0] += 500_000
	got, ok := f.s.PickNext(0)
	if !ok {
		t.Fatal("work lost after decay")
	}
	if f.s.Ops().Demotions == before {
		t.Error("no demotions despite fully decayed heap entries")
	}
	f.s.NoteDispatch(got, 0)
}
