package sched

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/model"
)

// The dispatch path — PickNext, NoteDispatch, OnBlock, MakeRunnable —
// runs once per scheduling interval on every simulated CPU, so it must
// not allocate in steady state. Per-thread state lives in the dense
// tstate arena, per-(thread, CPU) entries are created once and reused,
// and the priority heaps recycle their backing arrays; after warm-up a
// full scheduling round should cost zero allocations.
func TestDispatchPathAllocFree(t *testing.T) {
	const ncpu, nthreads = 4, 8
	f := newFixture(model.LFF{}, ncpu, 16)
	for tid := mem.ThreadID(1); tid <= nthreads; tid++ {
		f.s.Register(tid)
		f.s.MakeRunnable(tid)
	}

	round := func() {
		for cpu := 0; cpu < ncpu; cpu++ {
			tid, ok := f.s.PickNext(cpu)
			if !ok {
				panic("dispatch round found no runnable thread")
			}
			f.s.NoteDispatch(tid, cpu)
			f.misses[cpu] += 64
			f.s.OnBlock(tid, cpu, 64)
			f.s.MakeRunnable(tid)
		}
	}
	// Warm up until every thread has an Entry on every CPU it can reach
	// and the heaps and queues have grown to their steady footprint.
	for i := 0; i < 8*nthreads; i++ {
		round()
	}

	if allocs := testing.AllocsPerRun(200, round); allocs > 0 {
		t.Errorf("dispatch round allocates %.1f objects, want 0", allocs)
	}
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}
}
