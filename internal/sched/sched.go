// Package sched implements the paper's Section 4 scheduling frameworks:
// priority-based locality scheduling with per-processor binary heaps, a
// footprint threshold that demotes cold threads to a single global FIFO
// queue, and work stealing of the lowest-priority thread from a
// neighbour. The priority algebra itself (LFF, CRT) lives in
// internal/model; this package owns the data structures and the O(d)
// update discipline: a context switch touches only the blocking thread's
// entry and the entries of its out-neighbours in the dependency graph —
// independent threads are never visited.
//
// The scheduler is policy-neutral: with a nil priority scheme it
// degenerates to the FCFS baseline (global queue only).
package sched

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/annot"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/snapshot"
)

// Entry is the footprint record of one (thread, processor) pair: the
// expected footprint S at the processor miss count M0 of its last
// update, the footprint SLast the thread had when it last *executed*
// there (CRT's E[F_last]), and the time-invariant inflated priority.
type Entry struct {
	Thread mem.ThreadID
	CPU    int
	S      float64
	SLast  float64
	M0     uint64
	Prio   float64

	// dispatchS/dispatchM capture the footprint at the moment the
	// thread was dispatched on this CPU, which is the S the blocking
	// update needs.
	dispatchS float64
	dispatchM uint64

	heapIdx int // index in the CPU's heap, -1 when absent
}

// tstate is the scheduler's view of one thread.
type tstate struct {
	reg      bool     // slot is a registered thread
	entries  []*Entry // indexed by CPU, nil when no footprint recorded
	runnable bool
	running  bool
	inGlobal bool // logically present in the global queue
	inSpawn  bool // logically present in a spawn stack
}

// Ops counts scheduler data-structure work since the last Reset, used by
// the runtime to charge overhead cycles (Table 5's "moderate price").
type Ops struct {
	HeapPushes  uint64
	HeapPops    uint64
	HeapFixes   uint64
	HeapRemoves uint64
	QueueOps    uint64
	Steals      uint64
	PrioUpdates uint64
	Demotions   uint64
}

// Total returns the number of heap operations (pushes, pops, fixes,
// removals) — the dominant scheduling cost per the paper.
func (o Ops) Total() uint64 {
	return o.HeapPushes + o.HeapPops + o.HeapFixes + o.HeapRemoves
}

// Scheduler is the locality scheduling framework.
type Scheduler struct {
	mdl    *model.Model
	scheme model.Scheme // nil = FCFS
	// shared is non-nil when scheme implements model.SharedScheme (the
	// shared-LLC-aware policies) AND the platform shares its LLC: model
	// updates then run on the machine-wide miss clock and the
	// co-runner-aware closed forms. Engaged once by SetSharedClock — no
	// per-update type assertion. Nil (the default) keeps every private
	// path, so a shared-aware policy on a private hierarchy behaves as
	// its embedded base scheme.
	shared model.SharedScheme
	graph  *annot.Graph
	ncpu   int

	// missCount reports a processor's cumulative E-cache miss count
	// m(t); the runtime wires it to the platform's shadow counters.
	missCount platform.MissCounter

	// threshold is the footprint (in lines) below which an entry is
	// demoted from a heap; threads demoted from every heap go to the
	// global queue.
	threshold float64

	heaps  []prioHeap
	global []globalEntry // FIFO with lazy deletion via inGlobal
	ghead  int

	// threads is a dense arena indexed by thread ID: the runtime hands
	// out small sequential IDs, so a slice replaces the old map on the
	// dispatch and blocking hot paths (no hashing, no pointer chase).
	// The reg flag marks live slots; freed slots are reused on
	// re-registration of the same ID. runnableN counts runnable
	// threads incrementally so RunnableCount is O(1).
	threads   []tstate
	runnableN int

	// spawn holds per-CPU stacks of freshly created threads, in the
	// work-first discipline of Blumofe-Leiserson work stealing (the
	// paper's citation [6] for its load balancing): the creating
	// processor pops its own spawns newest-first — keeping a child on
	// the cache that just built its inputs — while idle processors
	// steal oldest-first, taking the largest unexplored subtrees.
	// Entries are lazily invalidated via inSpawn. Only the locality
	// policies use spawn stacks; FCFS keeps the plain global FIFO.
	spawn [][]mem.ThreadID

	// spawnStacks enables the Blumofe-Leiserson work-first discipline
	// for fresh threads (see the spawn field); disabled by default so
	// creations join the global FIFO like the paper's description.
	spawnStacks bool

	// fairnessLimit, when nonzero, bounds starvation: if the oldest
	// live global-queue thread has waited more than this many
	// dispatches, it bypasses the priority heaps — the escape
	// mechanism the paper's Section 7 calls for. Zero disables it
	// (the paper's domain needs no fairness: all threads run to
	// completion).
	fairnessLimit uint64
	dispatchCount uint64
	escapes       uint64

	// quarantine marks CPUs whose miss counters the runtime's
	// sanitizer no longer trusts. On a quarantined CPU the framework
	// degrades to the paper's annotation-free baseline: no footprint
	// entries are created or updated, its heap is flushed to the
	// global FIFO, and dispatch comes from the spawn/global/steal path
	// only. Other CPUs keep full locality scheduling.
	quarantine []bool

	// obs/obsClock attach the observability layer (SetObserver). The
	// scheduler has no clock of its own, so the runtime lends it the
	// per-CPU cycle reader for event timestamps. lastDep is the size
	// of the dependent set the most recent OnBlock on each CPU
	// touched — the O(d) cost the next KSchedDecision reports.
	obs      *obs.Observer
	obsClock func(cpu int) uint64
	lastDep  []uint64
	footHist *obs.Histogram
	depHist  *obs.Histogram
	qGlobal  *obs.Gauge

	ops Ops
}

// globalEntry is one global-queue position, stamped with the dispatch
// count at enqueue time for fairness aging.
type globalEntry struct {
	tid   mem.ThreadID
	stamp uint64
}

// New constructs a scheduler. scheme may be nil for the FCFS baseline
// (mdl may then also be nil). missCount must return processor cpu's
// cumulative E-cache miss count and must be monotonic per CPU.
func New(mdl *model.Model, scheme model.Scheme, graph *annot.Graph, ncpu int, threshold float64, missCount platform.MissCounter) *Scheduler {
	if ncpu < 1 {
		// Invariant: rt.New validates the CPU count before building a
		// scheduler; reaching here is a runtime bug, not user error.
		panic("sched: need at least one CPU")
	}
	if scheme != nil && mdl == nil {
		// Invariant: rt.New always constructs a model alongside a scheme.
		panic("sched: a priority scheme requires a model")
	}
	if missCount == nil {
		missCount = func(int) uint64 { return 0 }
	}
	return &Scheduler{
		mdl:        mdl,
		scheme:     scheme,
		graph:      graph,
		ncpu:       ncpu,
		missCount:  missCount,
		threshold:  threshold,
		heaps:      make([]prioHeap, ncpu),
		spawn:      make([][]mem.ThreadID, ncpu),
		quarantine: make([]bool, ncpu),
		lastDep:    make([]uint64, ncpu),
	}
}

// SetSharedClock engages (or disengages) the shared-LLC update
// discipline: when the platform shares its last-level cache and the
// scheme is shared-aware, footprint updates switch to the machine-wide
// miss clock and the co-runner-aware closed forms. Call before the
// first dispatch; with sharedLLC false (or a scheme that is not a
// model.SharedScheme) the scheduler keeps the paper's private per-CPU
// discipline unchanged.
func (s *Scheduler) SetSharedClock(sharedLLC bool) {
	if !sharedLLC {
		s.shared = nil
		return
	}
	s.shared, _ = s.scheme.(model.SharedScheme)
}

// SetObserver attaches the observability layer: model updates and
// scheduling decisions are mirrored onto o's trace, and the
// scheduler's queue/footprint metrics register on its registry. clock
// must report a CPU's virtual cycle clock (the runtime lends the
// engine's). A nil or Off observer is a no-op and leaves every
// instrumented path at its one-nil-check disabled cost.
func (s *Scheduler) SetObserver(o *obs.Observer, clock func(cpu int) uint64) {
	if !o.MetricsOn() {
		return
	}
	if clock == nil {
		// Invariant: the runtime always lends its clock alongside a
		// live observer.
		panic("sched: SetObserver with nil clock")
	}
	s.obs, s.obsClock = o, clock
	r := o.Registry()
	s.footHist = r.Histogram("model_footprint_lines",
		[]float64{1, 4, 16, 64, 256, 1024, 4096})
	s.depHist = r.Histogram("sched_dependent_set",
		[]float64{0, 1, 2, 4, 8, 16})
	s.qGlobal = r.Gauge("sched_global_queue_len")
}

// SetQuarantine moves cpu into or out of quarantine. Entering
// quarantine flushes the CPU's priority heap into the global FIFO (in
// heap order, deterministically) so no thread is stranded behind a
// counter the runtime cannot trust; while quarantined, no footprint
// entry on that CPU is created, updated, or used for dispatch.
// Idempotent for repeated calls with the same state.
func (s *Scheduler) SetQuarantine(cpu int, on bool) {
	if s.quarantine[cpu] == on {
		return
	}
	s.quarantine[cpu] = on
	if !on {
		return
	}
	h := &s.heaps[cpu]
	for h.Len() > 0 {
		e := heap.Pop(h).(*Entry)
		s.ops.HeapPops++
		s.ops.Demotions++
		ts := s.ts(e.Thread)
		if ts != nil && ts.runnable && !s.hasHeapEntry(ts) && !ts.inGlobal {
			s.enqueueGlobal(ts, e.Thread)
		}
	}
}

// Quarantined reports whether cpu is currently quarantined.
func (s *Scheduler) Quarantined(cpu int) bool { return s.quarantine[cpu] }

// SetSpawnStacks enables per-CPU work-first spawn stacks for freshly
// created threads (a design ablation; the default is the paper's
// global FIFO).
func (s *Scheduler) SetSpawnStacks(on bool) { s.spawnStacks = on }

// SetFairnessLimit installs the starvation bound: a global-queue thread
// older than limit dispatches is dispatched ahead of any heap pick.
// Zero disables the escape.
func (s *Scheduler) SetFairnessLimit(limit uint64) { s.fairnessLimit = limit }

// Escapes returns how many dispatches the fairness escape forced.
func (s *Scheduler) Escapes() uint64 { return s.escapes }

// PolicyName returns "FCFS" or the scheme name.
func (s *Scheduler) PolicyName() string {
	if s.scheme == nil {
		return "FCFS"
	}
	return s.scheme.Name()
}

// Ops returns the operation counters accumulated since the last
// ResetOps.
func (s *Scheduler) Ops() Ops { return s.ops }

// ResetOps zeroes the operation counters.
func (s *Scheduler) ResetOps() { s.ops = Ops{} }

// clock returns the miss clock model updates run on: the processor's
// own cumulative miss count for the paper's private-cache schemes, or
// the machine-wide total for a SharedScheme — on a shared cache a
// co-runner's miss evicts a sleeping thread's lines exactly as a local
// miss does on a private cache, so the universal decay law (and the
// time-invariance of the inflated priorities) holds on the total clock.
func (s *Scheduler) clock(cpu int) uint64 {
	if s.shared == nil {
		return s.missCount(cpu)
	}
	var total uint64
	for c := 0; c < s.ncpu; c++ {
		total += s.missCount(c)
	}
	return total
}

// ts returns tid's state, or nil when tid is not registered. The
// pointer is into the thread arena: valid until the next Register
// (which may grow the backing array).
func (s *Scheduler) ts(tid mem.ThreadID) *tstate {
	if tid < 0 || int(tid) >= len(s.threads) {
		return nil
	}
	t := &s.threads[tid]
	if !t.reg {
		return nil
	}
	return t
}

// Register adds a thread to the scheduler in the not-runnable state.
func (s *Scheduler) Register(tid mem.ThreadID) {
	if tid < 0 {
		// Invariant: negative IDs are runtime sentinels (nil, sched),
		// never schedulable threads.
		panic(fmt.Sprintf("sched: Register(%v): sentinel thread ID", tid))
	}
	if n := int(tid) + 1; n > len(s.threads) {
		if n <= cap(s.threads) {
			s.threads = s.threads[:n]
		} else {
			grown := make([]tstate, n, 2*n)
			copy(grown, s.threads)
			s.threads = grown
		}
	}
	t := &s.threads[tid]
	if t.reg {
		// Invariant: the runtime assigns fresh IDs; a duplicate means
		// engine corruption, not a user mistake.
		panic(fmt.Sprintf("sched: duplicate thread %v", tid))
	}
	*t = tstate{reg: true, entries: make([]*Entry, s.ncpu)}
}

// Unregister removes an exited thread and all its entries.
func (s *Scheduler) Unregister(tid mem.ThreadID) {
	ts := s.ts(tid)
	if ts == nil {
		return
	}
	for cpu, e := range ts.entries {
		if e != nil && e.heapIdx >= 0 {
			heap.Remove(&s.heaps[cpu], e.heapIdx)
			s.ops.HeapRemoves++
		}
	}
	if ts.runnable {
		s.runnableN--
	}
	*ts = tstate{}
}

// Registered reports whether tid is known to the scheduler.
func (s *Scheduler) Registered(tid mem.ThreadID) bool {
	return s.ts(tid) != nil
}

// EntryOf returns the footprint entry of (tid, cpu), or nil. The
// returned pointer is live scheduler state; callers outside tests must
// not mutate it.
func (s *Scheduler) EntryOf(tid mem.ThreadID, cpu int) *Entry {
	ts := s.ts(tid)
	if ts == nil {
		return nil
	}
	return ts.entries[cpu]
}

// CurrentFootprint returns the scheduler's expected footprint of tid in
// cpu's cache right now (decayed to the current miss count), or 0.
func (s *Scheduler) CurrentFootprint(tid mem.ThreadID, cpu int) float64 {
	e := s.EntryOf(tid, cpu)
	if e == nil || s.mdl == nil {
		return 0
	}
	return s.mdl.Decay(e.S, e.M0, s.clock(cpu))
}

// MakeRunnable marks tid ready for dispatch: its hot footprint entries
// (at or above threshold) enter their CPUs' heaps; a thread with no hot
// entry joins the global queue. Idempotent for already-runnable threads.
func (s *Scheduler) MakeRunnable(tid mem.ThreadID) {
	ts := s.ts(tid)
	if ts == nil {
		// Invariant: callers register threads before scheduling them.
		panic(fmt.Sprintf("sched: MakeRunnable(%v): unknown thread", tid))
	}
	if ts.runnable || ts.running {
		return
	}
	ts.runnable = true
	s.runnableN++
	hot := false
	if s.scheme != nil {
		for cpu, e := range ts.entries {
			if e == nil || s.quarantine[cpu] {
				continue
			}
			if s.mdl.Decay(e.S, e.M0, s.clock(cpu)) >= s.threshold {
				s.pushHeap(cpu, e)
				hot = true
			}
		}
	}
	if !hot {
		s.enqueueGlobal(ts, tid)
	}
}

// NoteSpawn marks a freshly created thread runnable. Under a locality
// policy it goes on the creating processor's spawn stack; under FCFS
// (or when the creator is unknown, cpu < 0) it joins the global queue.
func (s *Scheduler) NoteSpawn(tid mem.ThreadID, cpu int) {
	ts := s.ts(tid)
	if ts == nil {
		// Invariant: callers register threads before scheduling them.
		panic(fmt.Sprintf("sched: NoteSpawn(%v): unknown thread", tid))
	}
	if ts.runnable || ts.running {
		return
	}
	ts.runnable = true
	s.runnableN++
	if s.scheme == nil || cpu < 0 || !s.spawnStacks {
		s.enqueueGlobal(ts, tid)
		return
	}
	ts.inSpawn = true
	s.spawn[cpu] = append(s.spawn[cpu], tid)
	s.ops.QueueOps++
}

// NoteDispatch records that tid starts executing on cpu: it leaves every
// run queue and its footprint at dispatch is captured for the eventual
// blocking update.
func (s *Scheduler) NoteDispatch(tid mem.ThreadID, cpu int) {
	ts := s.ts(tid)
	if ts == nil || !ts.runnable {
		// Invariant: the engine dispatches only threads PickNext returned.
		panic(fmt.Sprintf("sched: NoteDispatch(%v) of non-runnable thread", tid))
	}
	ts.runnable = false
	s.runnableN--
	ts.running = true
	ts.inGlobal = false
	ts.inSpawn = false
	s.dispatchCount++
	for c, e := range ts.entries {
		if e != nil && e.heapIdx >= 0 {
			heap.Remove(&s.heaps[c], e.heapIdx)
			s.ops.HeapRemoves++
		}
	}
	if s.scheme == nil || s.quarantine[cpu] {
		// Quarantined CPU: annotation-free baseline, no footprint
		// bookkeeping (the counters feeding it are untrusted).
		return
	}
	mt := s.clock(cpu)
	e := s.entry(ts, tid, cpu, mt)
	e.dispatchS = s.mdl.Decay(e.S, e.M0, mt)
	e.dispatchM = mt
}

// OnBlock performs the context-switch update for thread tid blocking (or
// yielding, or exiting) on cpu after taking n E-cache misses: case 1 for
// tid itself, case 3 for each of its out-neighbours in the dependency
// graph. Threads independent of tid are untouched — the O(d) guarantee.
func (s *Scheduler) OnBlock(tid mem.ThreadID, cpu int, n uint64) {
	ts := s.ts(tid)
	if ts == nil || !ts.running {
		// Invariant: blocks are reported only for the installed thread.
		panic(fmt.Sprintf("sched: OnBlock(%v) of non-running thread", tid))
	}
	ts.running = false
	s.lastDep[cpu] = 0
	if s.scheme == nil || s.quarantine[cpu] {
		// Quarantined CPU: the reading that produced n is untrusted;
		// skip the model update entirely (annotation-free baseline).
		return
	}
	mt := s.clock(cpu)
	if n > mt {
		// A counter fault can report more interval misses than the
		// processor's cumulative count; clamp so the dependent
		// updates' dispatch-time reference mt-n cannot underflow.
		n = mt
	}
	e := ts.entries[cpu] // created at dispatch
	if e == nil {
		// Dispatched while the CPU was quarantined and recovered
		// mid-interval: there is no dispatch snapshot to update from,
		// so this interval contributes nothing to the model.
		return
	}
	// On a shared scheme the interval window is the machine-wide miss
	// count since dispatch; the thread's own n misses are a fraction of
	// it. Both clamps guard against faulty counters: the window cannot
	// run backwards, and own misses cannot exceed the window.
	total := n
	if s.shared != nil {
		if mt > e.dispatchM {
			total = mt - e.dispatchM
		}
		if total < n {
			total = n
		}
	}
	var newS, prio float64
	if s.shared != nil {
		newS, prio = s.shared.BlockingShared(s.mdl, e.dispatchS, n, total, mt)
	} else {
		newS, prio = s.scheme.Blocking(s.mdl, e.dispatchS, n, mt)
	}
	if s.obs.Tracing() {
		s.obs.Emit(obs.Event{Time: s.obsClock(cpu), Kind: obs.KModelUpdate, CPU: int16(cpu),
			Thread: tid, Arg: uint8(model.CaseBlocking),
			X: e.dispatchS, Y: newS, B: math.Float64bits(prio)})
	}
	e.S, e.SLast, e.M0, e.Prio = newS, newS, mt, prio
	s.ops.PrioUpdates++
	if s.footHist != nil {
		s.footHist.Observe(cpu, newS)
	}

	if s.graph == nil {
		return
	}
	var deps uint64
	// Dependents are rolled forward from the blocker's dispatch instant:
	// mt-n on the private clock, mt-total on the shared one (total >= n
	// and mt >= total, so the reference never underflows).
	ref := mt - n
	if s.shared != nil {
		ref = mt - total
	}
	for _, edge := range s.graph.OutEdges(tid) {
		dts := s.ts(edge.To)
		if dts == nil {
			continue // annotation names an exited or foreign thread: ignore
		}
		de := s.entry(dts, edge.To, cpu, ref)
		sStart := s.mdl.Decay(de.S, de.M0, ref)
		var newS, prio float64
		if s.shared != nil {
			newS, prio = s.shared.DependentShared(s.mdl, sStart, de.SLast, edge.Q, n, total, mt)
		} else {
			newS, prio = s.scheme.Dependent(s.mdl, sStart, de.SLast, edge.Q, n, mt)
		}
		if s.obs.Tracing() {
			s.obs.Emit(obs.Event{Time: s.obsClock(cpu), Kind: obs.KModelUpdate, CPU: int16(cpu),
				Thread: edge.To, Arg: uint8(model.CaseDependent),
				X: sStart, Y: newS, B: math.Float64bits(prio)})
		}
		de.S, de.M0, de.Prio = newS, mt, prio
		s.ops.PrioUpdates++
		deps++
		s.reposition(dts, de)
	}
	s.lastDep[cpu] = deps
	if s.depHist != nil {
		s.depHist.Observe(cpu, float64(deps))
		s.qGlobal.Set(float64(s.GlobalLen()))
	}
}

// reposition fixes a runnable dependent's heap membership after its
// entry changed: push if newly hot, fix if present, remove if cold.
func (s *Scheduler) reposition(ts *tstate, e *Entry) {
	if !ts.runnable {
		return
	}
	hot := e.S >= s.threshold // S was just set at M0 = now, no decay yet
	switch {
	case e.heapIdx >= 0 && hot:
		heap.Fix(&s.heaps[e.CPU], e.heapIdx)
		s.ops.HeapFixes++
	case e.heapIdx >= 0 && !hot:
		heap.Remove(&s.heaps[e.CPU], e.heapIdx)
		s.ops.HeapRemoves++
		s.ops.Demotions++
		if !s.hasHeapEntry(ts) && !ts.inGlobal {
			s.enqueueGlobal(ts, e.Thread)
		}
	case e.heapIdx < 0 && hot:
		s.pushHeap(e.CPU, e)
		// The heaps now take precedence over any stale global-queue
		// position (lazy removal at pop time).
		ts.inGlobal = false
	}
}

// PickNext selects the next thread for cpu: the hottest heap entry above
// threshold, else the global queue front, else a steal of the
// lowest-priority thread from another CPU's heap. It returns false when
// no work exists anywhere.
func (s *Scheduler) PickNext(cpu int) (mem.ThreadID, bool) {
	tid, ok := s.pickNext(cpu)
	if ok && s.obs.Tracing() {
		s.obs.Emit(obs.Event{Time: s.obsClock(cpu), Kind: obs.KSchedDecision, CPU: int16(cpu),
			Thread: tid, A: s.lastDep[cpu], B: uint64(s.heaps[cpu].Len())})
	}
	return tid, ok
}

func (s *Scheduler) pickNext(cpu int) (mem.ThreadID, bool) {
	// Fairness escape: an over-aged global-queue thread preempts the
	// locality heaps.
	if s.fairnessLimit > 0 {
		if tid, ok := s.peekAgedGlobal(); ok {
			s.escapes++
			return tid, true
		}
	}
	h := &s.heaps[cpu]
	for h.Len() > 0 {
		e := (*h)[0]
		decayed := s.mdl.Decay(e.S, e.M0, s.clock(cpu))
		if decayed < s.threshold {
			if s.obs.Tracing() {
				// Case 2 (independent decay) materializes lazily: the
				// footprint is only computed when the entry is
				// inspected, and a demotion is where the decayed value
				// becomes a scheduling fact worth tracing.
				s.obs.Emit(obs.Event{Time: s.obsClock(cpu), Kind: obs.KModelUpdate, CPU: int16(cpu),
					Thread: e.Thread, Arg: uint8(model.CaseIndependent),
					X: e.S, Y: decayed, B: math.Float64bits(e.Prio)})
			}
			heap.Pop(h)
			s.ops.HeapPops++
			s.ops.Demotions++
			ts := s.ts(e.Thread)
			if !s.hasHeapEntry(ts) && !ts.inGlobal {
				s.enqueueGlobal(ts, e.Thread)
			}
			continue
		}
		return e.Thread, true
	}
	if tid, ok := s.popSpawn(cpu); ok {
		return tid, true
	}
	if tid, ok := s.popGlobal(); ok {
		return tid, true
	}
	return s.steal(cpu)
}

// popSpawn pops the newest live thread from cpu's own spawn stack.
func (s *Scheduler) popSpawn(cpu int) (mem.ThreadID, bool) {
	stack := s.spawn[cpu]
	for len(stack) > 0 {
		tid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.ops.QueueOps++
		if ts := s.ts(tid); ts != nil && ts.inSpawn && ts.runnable {
			s.spawn[cpu] = stack
			return tid, true
		}
	}
	s.spawn[cpu] = stack
	return 0, false
}

// stealSpawn takes the OLDEST live spawn from another processor's stack
// — the largest unexplored subtree, per Blumofe-Leiserson.
func (s *Scheduler) stealSpawn(cpu int) (mem.ThreadID, bool) {
	for d := 1; d < s.ncpu; d++ {
		victim := (cpu + d) % s.ncpu
		stack := s.spawn[victim]
		for i := 0; i < len(stack); i++ {
			tid := stack[i]
			if ts := s.ts(tid); ts != nil && ts.inSpawn && ts.runnable {
				s.ops.Steals++
				return tid, true
			}
		}
	}
	return 0, false
}

// HasLocalWork reports whether cpu could dispatch without stealing.
func (s *Scheduler) HasLocalWork(cpu int) bool {
	if s.heaps[cpu].Len() > 0 {
		return true
	}
	for _, tid := range s.spawn[cpu] {
		if ts := s.ts(tid); ts != nil && ts.inSpawn && ts.runnable {
			return true
		}
	}
	for i := s.ghead; i < len(s.global); i++ {
		if ts := s.ts(s.global[i].tid); ts != nil && ts.inGlobal && ts.runnable {
			return true
		}
	}
	return false
}

// RunnableCount returns the number of runnable (dispatchable) threads.
func (s *Scheduler) RunnableCount() int { return s.runnableN }

// steal scans the other CPUs in ring order and takes the *lowest*
// priority thread it can find — the thread with the least cache state
// there, hence the cheapest to migrate. Stealing is for load balance,
// so heaps with a surplus (two or more waiting threads) are preferred:
// a heap holding a single hot thread is robbed only when nobody has a
// surplus, because its own processor will dispatch it within one
// scheduling interval and migrating it trades a whole footprint for a
// moment of idleness. The fallback keeps the scheduler work-conserving.
func (s *Scheduler) steal(cpu int) (mem.ThreadID, bool) {
	// Fresh spawns first: taking the oldest unexplored subtree costs no
	// cached state at all.
	if tid, ok := s.stealSpawn(cpu); ok {
		return tid, true
	}
	for _, minLen := range []int{2, 1} {
		for d := 1; d < s.ncpu; d++ {
			victim := (cpu + d) % s.ncpu
			h := s.heaps[victim]
			if h.Len() < minLen {
				continue
			}
			low := 0
			for i := 1; i < h.Len(); i++ {
				if h[i].Prio < h[low].Prio {
					low = i
				}
			}
			s.ops.Steals++
			return h[low].Thread, true
		}
	}
	return 0, false
}

// entry returns (creating if needed) the entry of tid on cpu. A fresh
// entry starts with no footprint at miss count m0.
func (s *Scheduler) entry(ts *tstate, tid mem.ThreadID, cpu int, m0 uint64) *Entry {
	if e := ts.entries[cpu]; e != nil {
		return e
	}
	e := &Entry{Thread: tid, CPU: cpu, M0: m0, heapIdx: -1}
	e.Prio = s.scheme.Initial(s.mdl, 0, 0, m0)
	ts.entries[cpu] = e
	return e
}

func (s *Scheduler) hasHeapEntry(ts *tstate) bool {
	for _, e := range ts.entries {
		if e != nil && e.heapIdx >= 0 {
			return true
		}
	}
	return false
}

func (s *Scheduler) pushHeap(cpu int, e *Entry) {
	if e.heapIdx >= 0 {
		return
	}
	heap.Push(&s.heaps[cpu], e)
	s.ops.HeapPushes++
}

func (s *Scheduler) enqueueGlobal(ts *tstate, tid mem.ThreadID) {
	ts.inGlobal = true
	s.global = append(s.global, globalEntry{tid: tid, stamp: s.dispatchCount})
	s.ops.QueueOps++
}

// peekAgedGlobal returns the oldest live global-queue thread if it has
// waited beyond the fairness limit (without consuming queue positions:
// dispatch clears inGlobal and the stale slot is skipped later).
func (s *Scheduler) peekAgedGlobal() (mem.ThreadID, bool) {
	for i := s.ghead; i < len(s.global); i++ {
		e := s.global[i]
		ts := s.ts(e.tid)
		if ts == nil || !ts.inGlobal || !ts.runnable {
			continue
		}
		if s.dispatchCount-e.stamp > s.fairnessLimit {
			return e.tid, true
		}
		return 0, false // the oldest live entry is young enough
	}
	return 0, false
}

// popGlobal removes and returns the first live global-queue thread.
func (s *Scheduler) popGlobal() (mem.ThreadID, bool) {
	for s.ghead < len(s.global) {
		tid := s.global[s.ghead].tid
		s.ghead++
		s.ops.QueueOps++
		ts := s.ts(tid)
		if ts != nil && ts.inGlobal && ts.runnable {
			return tid, true
		}
	}
	// Compact the drained queue.
	s.global = s.global[:0]
	s.ghead = 0
	return 0, false
}

// SpawnLen returns the number of live entries in cpu's spawn stack
// (diagnostics and tests).
func (s *Scheduler) SpawnLen(cpu int) int {
	n := 0
	for _, tid := range s.spawn[cpu] {
		if ts := s.ts(tid); ts != nil && ts.inSpawn && ts.runnable {
			n++
		}
	}
	return n
}

// HeapLen returns the size of cpu's heap (diagnostics and tests).
func (s *Scheduler) HeapLen(cpu int) int { return s.heaps[cpu].Len() }

// GlobalLen returns the number of live entries in the global queue.
func (s *Scheduler) GlobalLen() int {
	n := 0
	for i := s.ghead; i < len(s.global); i++ {
		if ts := s.ts(s.global[i].tid); ts != nil && ts.inGlobal {
			n++
		}
	}
	return n
}

// ExportState captures the scheduler's complete state for a
// checkpoint: every thread's flags and footprint entries (sorted by
// thread ID — identical runs build identical states, so the canonical
// order is comparable bit-for-bit), the per-CPU heaps in array order,
// the raw global FIFO from its head cursor (stale lazily-deleted
// entries included: they are deterministic state too), the spawn
// stacks, the quarantine flags, and the work counters. Read-only: an
// export never perturbs the run.
func (s *Scheduler) ExportState() snapshot.SchedState {
	st := snapshot.SchedState{
		DispatchCount: s.dispatchCount,
		Escapes:       s.escapes,
		Ops: [8]uint64{
			s.ops.HeapPushes, s.ops.HeapPops, s.ops.HeapFixes, s.ops.HeapRemoves,
			s.ops.QueueOps, s.ops.Steals, s.ops.PrioUpdates, s.ops.Demotions,
		},
		Quarantine: append([]bool(nil), s.quarantine...),
	}
	for i := s.ghead; i < len(s.global); i++ {
		st.Global = append(st.Global, snapshot.GlobalEntry{
			Thread: int64(s.global[i].tid), Stamp: s.global[i].stamp,
		})
	}
	for _, stack := range s.spawn {
		var ids []int64
		for _, tid := range stack {
			ids = append(ids, int64(tid))
		}
		st.Spawn = append(st.Spawn, ids)
	}
	for _, h := range s.heaps {
		var ids []int64
		for _, e := range h {
			ids = append(ids, int64(e.Thread))
		}
		st.Heaps = append(st.Heaps, ids)
	}
	// The arena is indexed by thread ID, so ascending iteration yields
	// the canonical sorted order directly.
	for tid := range s.threads {
		ts := &s.threads[tid]
		if !ts.reg {
			continue
		}
		t := snapshot.SchedThread{
			ID: int64(tid), Runnable: ts.runnable, Running: ts.running,
			InGlobal: ts.inGlobal, InSpawn: ts.inSpawn,
		}
		for cpu, e := range ts.entries {
			if e == nil {
				continue
			}
			t.Entries = append(t.Entries, snapshot.SchedEntry{
				CPU: int32(cpu), S: e.S, SLast: e.SLast, M0: e.M0, Prio: e.Prio,
				DispatchS: e.dispatchS, DispatchM: e.dispatchM, HeapIdx: int32(e.heapIdx),
			})
		}
		st.Threads = append(st.Threads, t)
	}
	return st
}

// Check verifies structural invariants (heap indices consistent, no
// entry in a heap for a non-runnable thread, heap ordering valid, every
// footprint and priority finite and in range, quarantined heaps empty).
// Used by tests, including the fault-matrix suite: whatever garbage the
// counters feed in, the scheduler's state must stay within these
// bounds.
func (s *Scheduler) Check() error {
	if s.mdl != nil {
		n := float64(s.mdl.N())
		for tid := range s.threads {
			ts := &s.threads[tid]
			if !ts.reg {
				continue
			}
			for cpu, e := range ts.entries {
				if e == nil {
					continue
				}
				if math.IsNaN(e.S) || e.S < 0 || e.S > n {
					return fmt.Errorf("sched: %v on cpu %d has footprint %v outside [0, %v]", mem.ThreadID(tid), cpu, e.S, n)
				}
				if math.IsNaN(e.SLast) || math.IsInf(e.SLast, 0) {
					return fmt.Errorf("sched: %v on cpu %d has non-finite SLast %v", mem.ThreadID(tid), cpu, e.SLast)
				}
				if math.IsNaN(e.Prio) || math.IsInf(e.Prio, 0) {
					return fmt.Errorf("sched: %v on cpu %d has non-finite priority %v", mem.ThreadID(tid), cpu, e.Prio)
				}
			}
		}
	}
	for cpu := range s.heaps {
		h := s.heaps[cpu]
		if s.quarantine[cpu] && h.Len() > 0 {
			return fmt.Errorf("sched: quarantined cpu %d holds %d heap entries", cpu, h.Len())
		}
		for i, e := range h {
			if e.heapIdx != i {
				return fmt.Errorf("sched: cpu %d heap[%d] has heapIdx %d", cpu, i, e.heapIdx)
			}
			if e.CPU != cpu {
				return fmt.Errorf("sched: cpu %d heap holds entry for cpu %d", cpu, e.CPU)
			}
			ts := s.ts(e.Thread)
			if ts == nil {
				return fmt.Errorf("sched: heap entry for unregistered %v", e.Thread)
			}
			if !ts.runnable {
				return fmt.Errorf("sched: heap entry for non-runnable %v", e.Thread)
			}
			if left := 2*i + 1; left < len(h) && h[left].Prio > e.Prio {
				return fmt.Errorf("sched: cpu %d heap order violated at %d", cpu, i)
			}
			if right := 2*i + 2; right < len(h) && h[right].Prio > e.Prio {
				return fmt.Errorf("sched: cpu %d heap order violated at %d", cpu, i)
			}
		}
	}
	return nil
}

// prioHeap is a max-heap of entries by priority, with deterministic
// thread-ID tie-breaking.
type prioHeap []*Entry

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].Prio != h[j].Prio {
		return h[i].Prio > h[j].Prio
	}
	return h[i].Thread < h[j].Thread
}
func (h prioHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *prioHeap) Push(x any) {
	e := x.(*Entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	e.heapIdx = -1
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
