package sched

import (
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/model"
)

// hotThread registers tid, gives it a large footprint entry on cpu 0,
// and leaves it blocked (not runnable).
func hotThread(t *testing.T, f *fixture, tid int) {
	t.Helper()
	f.s.Register(th(tid))
	f.s.MakeRunnable(th(tid))
	got, ok := f.s.PickNext(0)
	if !ok || got != th(tid) {
		t.Fatalf("PickNext = (%v, %v), want %v", got, ok, tid)
	}
	f.runInterval(t, th(tid), 0, 5000)
}

func TestSetQuarantineFlushesHeapToGlobal(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	hotThread(t, f, 1)
	f.s.MakeRunnable(th(1))
	if f.s.HeapLen(0) != 1 {
		t.Fatalf("HeapLen = %d, want 1 (footprint should be hot)", f.s.HeapLen(0))
	}

	f.s.SetQuarantine(0, true)
	if !f.s.Quarantined(0) {
		t.Fatal("Quarantined(0) = false after SetQuarantine")
	}
	if f.s.HeapLen(0) != 0 {
		t.Errorf("quarantined heap still holds %d entries", f.s.HeapLen(0))
	}
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}
	// The flushed thread is not stranded: it is dispatchable from the
	// global queue.
	got, ok := f.s.PickNext(0)
	if !ok || got != th(1) {
		t.Fatalf("PickNext = (%v, %v) on quarantined CPU, want thread 1 via global", got, ok)
	}
	// Idempotent re-entry.
	f.s.SetQuarantine(0, true)
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantinedCPUSkipsModelUpdates(t *testing.T) {
	f := newFixture(model.LFF{}, 1, 16)
	f.s.SetQuarantine(0, true)
	f.s.Register(th(1))
	f.s.MakeRunnable(th(1))
	got, ok := f.s.PickNext(0)
	if !ok || got != th(1) {
		t.Fatalf("PickNext = (%v, %v), want thread 1", got, ok)
	}
	// A full interval on a quarantined CPU: dispatch and block with a
	// (by definition untrusted) miss count. No footprint entry may be
	// created or consulted — the annotation-free baseline.
	f.runInterval(t, th(1), 0, 123456)
	if e := f.s.EntryOf(th(1), 0); e != nil {
		t.Errorf("quarantined interval created a footprint entry: %+v", e)
	}

	// After recovery the same thread schedules with the model again.
	f.s.SetQuarantine(0, false)
	f.s.MakeRunnable(th(1))
	got, ok = f.s.PickNext(0)
	if !ok || got != th(1) {
		t.Fatalf("PickNext after recovery = (%v, %v)", got, ok)
	}
	f.runInterval(t, th(1), 0, 3000)
	e := f.s.EntryOf(th(1), 0)
	if e == nil {
		t.Fatal("no footprint entry after recovery")
	}
	if e.S <= 0 || math.IsInf(e.Prio, 0) || math.IsNaN(e.Prio) {
		t.Errorf("post-recovery entry not sane: S=%v prio=%v", e.S, e.Prio)
	}
}

func TestMakeRunnableSkipsQuarantinedHeap(t *testing.T) {
	f := newFixture(model.LFF{}, 2, 16)
	hotThread(t, f, 1)
	f.s.SetQuarantine(0, true)
	f.s.MakeRunnable(th(1))
	if f.s.HeapLen(0) != 0 {
		t.Errorf("MakeRunnable pushed onto a quarantined heap (%d entries)", f.s.HeapLen(0))
	}
	if f.s.GlobalLen() == 0 {
		t.Error("thread with only a quarantined hot entry must join the global queue")
	}
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}

	// Recovery restores locality scheduling: the surviving entry is hot
	// again and MakeRunnable uses it.
	got, ok := f.s.PickNext(1)
	if !ok || got != th(1) {
		t.Fatalf("PickNext = (%v, %v)", got, ok)
	}
	f.s.NoteDispatch(th(1), 1)
	f.s.OnBlock(th(1), 1, 0)
	f.s.SetQuarantine(0, false)
	f.s.MakeRunnable(th(1))
	if f.s.HeapLen(0) != 1 {
		t.Errorf("HeapLen(0) = %d after recovery, want 1", f.s.HeapLen(0))
	}
}

func TestOnBlockClampsImpossibleMissCounts(t *testing.T) {
	// A faulty counter can report an interval miss count that exceeds
	// the CPU's cumulative miss clock; the dependent update's dispatch
	// reference m(t)-n must not underflow into a garbage epoch.
	f := newFixture(model.LFF{}, 1, 16)
	f.s.Register(th(1))
	f.s.Register(th(2))
	f.g.Share(th(1), th(2), 0.5)
	f.s.MakeRunnable(th(1))
	f.s.MakeRunnable(th(2))
	got, ok := f.s.PickNext(0)
	if !ok {
		t.Fatal("no thread to dispatch")
	}
	f.s.NoteDispatch(got, 0)
	f.misses[0] = 100
	f.s.OnBlock(got, 0, 1<<40) // interval count far beyond the clock
	if err := f.s.Check(); err != nil {
		t.Fatal(err)
	}
	for _, tid := range []int{1, 2} {
		if e := f.s.EntryOf(th(tid), 0); e != nil {
			if math.IsNaN(e.S) || e.S < 0 || math.IsInf(e.Prio, 0) || math.IsNaN(e.Prio) {
				t.Errorf("thread %d entry corrupted by clamped reading: S=%v prio=%v", tid, e.S, e.Prio)
			}
		}
	}
}

// th converts a test-local integer ID to a thread ID.
func th(i int) mem.ThreadID { return mem.ThreadID(i) }
