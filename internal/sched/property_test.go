package sched

import (
	"testing"

	"repro/internal/annot"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/xrand"
)

// schedSim drives a Scheduler with a random but well-formed operation
// sequence — register, annotate, dispatch, run intervals, block, wake,
// exit — while checking the structural invariants after every step and
// accounting that no thread is ever lost or double-dispatched.
type schedSim struct {
	t     *testing.T
	s     *Scheduler
	g     *annot.Graph
	rng   *xrand.Source
	ncpu  int
	miss  []uint64
	next  mem.ThreadID
	state map[mem.ThreadID]string // "runnable" | "running" | "blocked"
	onCPU map[int]mem.ThreadID
}

func newSchedSim(t *testing.T, seed uint64, ncpu int, scheme model.Scheme) *schedSim {
	sim := &schedSim{
		t:     t,
		g:     annot.New(),
		rng:   xrand.New(seed),
		ncpu:  ncpu,
		miss:  make([]uint64, ncpu),
		state: make(map[mem.ThreadID]string),
		onCPU: make(map[int]mem.ThreadID),
	}
	var mdl *model.Model
	if scheme != nil {
		mdl = model.New(4096)
	}
	sim.s = New(mdl, scheme, sim.g, ncpu, 16, func(cpu int) uint64 { return sim.miss[cpu] })
	return sim
}

func (sim *schedSim) check() {
	sim.t.Helper()
	if err := sim.s.Check(); err != nil {
		sim.t.Fatal(err)
	}
	if err := sim.g.Check(); err != nil {
		sim.t.Fatal(err)
	}
}

func (sim *schedSim) step() {
	switch sim.rng.Intn(10) {
	case 0, 1: // create a thread
		tid := sim.next
		sim.next++
		sim.s.Register(tid)
		if sim.rng.Bool(0.5) {
			sim.s.NoteSpawn(tid, sim.rng.Intn(sim.ncpu))
		} else {
			sim.s.MakeRunnable(tid)
		}
		sim.state[tid] = "runnable"
	case 2, 3, 4: // dispatch on a free cpu
		cpu := sim.rng.Intn(sim.ncpu)
		if sim.onCPU[cpu] != 0 && sim.state[sim.onCPU[cpu]] == "running" {
			return
		}
		tid, ok := sim.s.PickNext(cpu)
		if !ok {
			return
		}
		if sim.state[tid] != "runnable" {
			sim.t.Fatalf("dispatched %v in state %q", tid, sim.state[tid])
		}
		sim.s.NoteDispatch(tid, cpu)
		sim.state[tid] = "running"
		sim.onCPU[cpu] = tid
	case 5, 6, 7: // the running thread on a cpu blocks or yields
		cpu := sim.rng.Intn(sim.ncpu)
		tid := sim.onCPU[cpu]
		if tid == 0 || sim.state[tid] != "running" {
			return
		}
		n := uint64(sim.rng.Intn(2000))
		sim.miss[cpu] += n
		sim.s.OnBlock(tid, cpu, n)
		sim.onCPU[cpu] = 0
		if sim.rng.Bool(0.3) { // yield: stays runnable
			sim.s.MakeRunnable(tid)
			sim.state[tid] = "runnable"
		} else {
			sim.state[tid] = "blocked"
		}
	case 8: // wake a blocked thread, annotate, or exit one
		for tid, st := range sim.state {
			if st == "blocked" {
				sim.s.MakeRunnable(tid)
				sim.state[tid] = "runnable"
				break
			}
		}
	case 9: // random annotation between live threads
		if sim.next < 2 {
			return
		}
		a := mem.ThreadID(sim.rng.Intn(int(sim.next)))
		b := mem.ThreadID(sim.rng.Intn(int(sim.next)))
		sim.g.Share(a, b, sim.rng.Float64())
	}
}

// drain dispatches and retires everything left, proving no thread was
// lost.
func (sim *schedSim) drain() {
	sim.t.Helper()
	// Unblock everyone.
	for tid, st := range sim.state {
		if st == "blocked" {
			sim.s.MakeRunnable(tid)
			sim.state[tid] = "runnable"
		}
	}
	// Finish running threads.
	for cpu, tid := range sim.onCPU {
		if tid != 0 && sim.state[tid] == "running" {
			sim.s.OnBlock(tid, cpu, 10)
			sim.g.RemoveThread(tid)
			sim.s.Unregister(tid)
			sim.state[tid] = "done"
		}
	}
	// Dispatch-and-retire the rest round-robin.
	for guard := 0; guard < int(sim.next)*4+100; guard++ {
		cpu := guard % sim.ncpu
		tid, ok := sim.s.PickNext(cpu)
		if !ok {
			continue
		}
		if sim.state[tid] != "runnable" {
			sim.t.Fatalf("drain dispatched %v in state %q", tid, sim.state[tid])
		}
		sim.s.NoteDispatch(tid, cpu)
		sim.miss[cpu] += 100
		sim.s.OnBlock(tid, cpu, 100)
		sim.g.RemoveThread(tid)
		sim.s.Unregister(tid)
		sim.state[tid] = "done"
	}
	for tid, st := range sim.state {
		if st != "done" {
			sim.t.Errorf("thread %v left in state %q", tid, st)
		}
	}
	if n := sim.s.RunnableCount(); n != 0 {
		sim.t.Errorf("%d runnable threads after drain", n)
	}
}

// TestSchedulerRandomOps drives random schedules under both schemes
// (with thread 0 reserved as a never-used sentinel because the sim uses
// 0 as "no thread on cpu").
func TestSchedulerRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, scheme := range []model.Scheme{model.LFF{}, model.CRT{}} {
			sim := newSchedSim(t, seed, 3, scheme)
			// Reserve tid 0 (sentinel): register and immediately retire.
			sim.s.Register(0)
			sim.s.MakeRunnable(0)
			tid, _ := sim.s.PickNext(0)
			sim.s.NoteDispatch(tid, 0)
			sim.s.OnBlock(tid, 0, 1)
			sim.s.Unregister(0)
			sim.next = 1
			sim.state[0] = "done"
			if sim.rng.Bool(0.5) {
				sim.s.SetSpawnStacks(true)
			}
			if sim.rng.Bool(0.3) {
				sim.s.SetFairnessLimit(uint64(5 + sim.rng.Intn(50)))
			}
			for i := 0; i < 600; i++ {
				sim.step()
				if i%50 == 0 {
					sim.check()
				}
			}
			sim.check()
			sim.drain()
			sim.check()
		}
	}
}

// TestLFFPickEqualsArgmaxFootprint checks the paper's central
// equivalence at the scheduler level: the heap's pick via inflated
// priorities must be exactly the runnable thread with the largest
// model-computed expected footprint on that processor.
func TestLFFPickEqualsArgmaxFootprint(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 40; trial++ {
		sim := newSchedSim(t, rng.Uint64(), 2, model.LFF{})
		// Build a population with varied footprints on cpu 0.
		const n = 12
		for tid := mem.ThreadID(0); tid < n; tid++ {
			sim.s.Register(tid)
			sim.s.MakeRunnable(tid)
		}
		for tid := mem.ThreadID(0); tid < n; tid++ {
			got, ok := sim.s.PickNext(0)
			if !ok {
				t.Fatal("no work")
			}
			sim.s.NoteDispatch(got, 0)
			sim.miss[0] += uint64(100 + rng.Intn(3000))
			sim.s.OnBlock(got, 0, uint64(100+rng.Intn(3000)))
			sim.s.MakeRunnable(got)
		}
		// Brute force: the runnable thread with the largest current
		// expected footprint on cpu 0 (threshold-eligible).
		best, bestF := mem.ThreadID(-1), -1.0
		for tid := mem.ThreadID(0); tid < n; tid++ {
			f := sim.s.CurrentFootprint(tid, 0)
			if f >= 16 && f > bestF {
				best, bestF = tid, f
			}
		}
		got, ok := sim.s.PickNext(0)
		if !ok {
			t.Fatal("no work at verification")
		}
		if got != best {
			t.Errorf("trial %d: picked %v (%.1f lines), argmax is %v (%.1f lines)",
				trial, got, sim.s.CurrentFootprint(got, 0), best, bestF)
		}
		sim.s.NoteDispatch(got, 0)
	}
}

// TestCRTPickEqualsArgminReloadRatio checks the CRT equivalence: the
// pick is the runnable thread with the smallest expected cache-reload
// ratio (E_last − E)/E_last on that processor.
func TestCRTPickEqualsArgminReloadRatio(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 40; trial++ {
		sim := newSchedSim(t, rng.Uint64(), 2, model.CRT{})
		const n = 10
		for tid := mem.ThreadID(0); tid < n; tid++ {
			sim.s.Register(tid)
			sim.s.MakeRunnable(tid)
		}
		for tid := mem.ThreadID(0); tid < n; tid++ {
			got, ok := sim.s.PickNext(0)
			if !ok {
				t.Fatal("no work")
			}
			sim.s.NoteDispatch(got, 0)
			nmiss := uint64(100 + rng.Intn(3000))
			sim.miss[0] += nmiss
			sim.s.OnBlock(got, 0, nmiss)
			sim.s.MakeRunnable(got)
		}
		// Brute force argmin of R = 1 − E/E_last over eligible threads.
		best, bestR := mem.ThreadID(-1), 2.0
		for tid := mem.ThreadID(0); tid < n; tid++ {
			e := sim.s.EntryOf(tid, 0)
			if e == nil || e.SLast <= 0 {
				continue
			}
			cur := sim.s.CurrentFootprint(tid, 0)
			if cur < 16 {
				continue
			}
			r := 1 - cur/e.SLast
			if r < bestR {
				best, bestR = tid, r
			}
		}
		got, ok := sim.s.PickNext(0)
		if !ok {
			t.Fatal("no work at verification")
		}
		if got != best {
			t.Errorf("trial %d: picked %v, argmin reload ratio is %v (R=%.4f)",
				trial, got, best, bestR)
		}
		sim.s.NoteDispatch(got, 0)
	}
}
