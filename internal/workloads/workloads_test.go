package workloads

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform/sim"
	"repro/internal/rt"
)

// machineOf digs the simulated machine out of a test engine.
func machineOf(e *rt.Engine) *machine.Machine { return e.Platform().(*sim.Platform).Machine() }

// runScaled executes one scheduling app at small scale and returns the
// engine for inspection.
func runScaled(t *testing.T, app SchedApp, cpus int, policy string, scale float64) *rt.Engine {
	t.Helper()
	var cfg machine.Config
	if cpus == 1 {
		cfg = machine.UltraSPARC1()
	} else {
		cfg = machine.Enterprise5000(cpus)
	}
	e, err := rt.New(sim.New(machine.New(cfg)), rt.Options{Policy: policy, Seed: 11})
	if err != nil {
		t.Fatalf("%s/%s: %v", app.Name, policy, err)
	}
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		t.Fatalf("%s/%s: %v", app.Name, policy, err)
	}
	return e
}

func TestAllSchedAppsCompleteUnderAllPolicies(t *testing.T) {
	for _, app := range SchedApps() {
		for _, policy := range []string{"FCFS", "LFF", "CRT"} {
			for _, cpus := range []int{1, 4} {
				e := runScaled(t, app, cpus, policy, 0.05)
				if _, _, misses := machineOf(e).Totals(); misses == 0 {
					t.Errorf("%s/%s/%dcpu: no misses at all?", app.Name, policy, cpus)
				}
			}
		}
	}
}

func TestSchedAppRegistry(t *testing.T) {
	apps := SchedApps()
	if len(apps) != 4 {
		t.Fatalf("app count = %d", len(apps))
	}
	names := []string{"tasks", "merge", "photo", "tsp"}
	for i, want := range names {
		if apps[i].Name != want {
			t.Errorf("app[%d] = %s, want %s", i, apps[i].Name, want)
		}
		if apps[i].Params == "" || apps[i].Threads == 0 {
			t.Errorf("%s: missing Table 4 metadata", want)
		}
		if _, err := SchedAppByName(want); err != nil {
			t.Errorf("lookup %s: %v", want, err)
		}
	}
	if _, err := SchedAppByName("nope"); err == nil {
		t.Error("bogus lookup succeeded")
	}
}

func TestTasksDisjointFootprints(t *testing.T) {
	// tasks must not create any dependency edges: its threads have
	// disjoint state and the paper notes annotations are irrelevant.
	app, _ := SchedAppByName("tasks")
	e := runScaled(t, app, 1, "LFF", 0.03)
	if e.Graph().Edges() != 0 {
		t.Errorf("tasks created %d annotation edges", e.Graph().Edges())
	}
}

func TestMergeBuildsParentChildAnnotations(t *testing.T) {
	cfg := machine.UltraSPARC1()
	e, err := rt.New(sim.New(machine.New(cfg)), rt.Options{Policy: "LFF", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	edgesSeen := 0
	SpawnMerge(e, MergeConfig{Elements: 3200, Leaf: 100})
	// Snapshot the graph mid-run is hard from outside; instead verify
	// post-conditions: all threads exited, graph empty, and the run
	// created the expected thread tree (2*leaves-1 threads).
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Graph().Edges() != 0 {
		t.Errorf("graph not cleaned up: %d edges", e.Graph().Edges())
	}
	_ = edgesSeen
	var total uint64
	for _, d := range e.Dispatches() {
		total += d
	}
	// 3200/100 = 32 leaves -> 63 threads -> >63 dispatches (joins
	// force re-dispatches of parents).
	if total < 63 {
		t.Errorf("dispatches = %d, want >= 63", total)
	}
}

func TestPhotoNeighbourSharingHelpsOnSMP(t *testing.T) {
	// The paper's headline photo result: on a multiprocessor the
	// locality policy eliminates a large share of E-misses.
	app, _ := SchedAppByName("photo")
	fcfs := runScaled(t, app, 4, "FCFS", 0.1)
	lff := runScaled(t, app, 4, "LFF", 0.1)
	_, _, mFCFS := machineOf(fcfs).Totals()
	_, _, mLFF := machineOf(lff).Totals()
	if mLFF >= mFCFS {
		t.Errorf("photo/4cpu: LFF misses %d >= FCFS %d", mLFF, mFCFS)
	}
}

func TestTSPParentPrefetchesForChildren(t *testing.T) {
	// With annotations under LFF, tsp children should find their
	// matrices warm: LFF must beat FCFS on misses on an SMP.
	app, _ := SchedAppByName("tsp")
	fcfs := runScaled(t, app, 4, "FCFS", 0.06)
	lff := runScaled(t, app, 4, "LFF", 0.06)
	_, _, mFCFS := machineOf(fcfs).Totals()
	_, _, mLFF := machineOf(lff).Totals()
	if mLFF >= mFCFS {
		t.Errorf("tsp/4cpu: LFF misses %d >= FCFS %d", mLFF, mFCFS)
	}
}

func TestStudyAppRegistry(t *testing.T) {
	apps := StudyApps()
	if len(apps) != 8 {
		t.Fatalf("study app count = %d", len(apps))
	}
	if len(Fig5Apps()) != 6 || len(Fig7Apps()) != 2 {
		t.Errorf("fig5/fig7 split = %d/%d", len(Fig5Apps()), len(Fig7Apps()))
	}
	for _, a := range apps {
		if a.StateBytes == 0 || a.Description == "" || a.Class == "" {
			t.Errorf("%s: incomplete metadata", a.Name)
		}
		if _, err := StudyAppByName(a.Name); err != nil {
			t.Errorf("lookup %s: %v", a.Name, err)
		}
	}
	for _, a := range Fig7Apps() {
		if a.Name != "typechecker" && a.Name != "raytrace" {
			t.Errorf("unexpected anomalous app %s", a.Name)
		}
	}
}

func TestStudyPatternsValid(t *testing.T) {
	// Every pattern must construct and emit within its regions.
	m := machine.New(machine.UltraSPARC1())
	for _, a := range StudyApps() {
		state := m.AllocPages(a.StateBytes)
		hot := state
		hot.Len = a.HotBytes
		pat := a.Pattern(state, hot)
		g := traceGen(t, pat)
		b, _ := g.Emit(nil, 10000)
		for _, acc := range b {
			if acc.Base < state.Base || acc.Base >= state.End() {
				t.Errorf("%s: access outside state: %+v", a.Name, acc)
			}
		}
	}
}
