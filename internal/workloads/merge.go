package workloads

import (
	"repro/internal/mem"
	"repro/internal/rt"
)

// MergeConfig parameterizes the parallel mergesort of Sections 2.3 and
// 5: the input is split recursively into halves sorted by child threads
// and merged by the parent. The paper's annotations express that each
// child's state is fully contained in its parent's state
// (at_share(child, parent, 1.0)); the speedup comes almost entirely
// from these annotations, because each thread is extremely light-weight
// but any root-to-leaf path shares substantial state.
type MergeConfig struct {
	// Elements is the input size (paper: 100,000 uniformly distributed
	// elements).
	Elements int
	// Leaf is the cutoff below which a thread switches to insertion
	// sort instead of splitting (paper: 100).
	Leaf int
	// ElemBytes is the size of one element (8-byte keys).
	ElemBytes int
}

func (c MergeConfig) withDefaults() MergeConfig {
	if c.Elements == 0 {
		c.Elements = 100_000
	}
	if c.Leaf == 0 {
		c.Leaf = 100
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	return c
}

func (c MergeConfig) scaled(s float64) MergeConfig {
	c = c.withDefaults()
	c.Elements = scaleInt(c.Elements, s, 16*c.Leaf)
	return c
}

// SpawnMerge seeds e with the parallel mergesort.
func SpawnMerge(e *rt.Engine, cfg MergeConfig) {
	cfg = cfg.withDefaults()
	e.Spawn(func(t *rt.T) {
		n := uint64(cfg.Elements * cfg.ElemBytes)
		arr := t.Alloc(n)
		tmp := t.Alloc(n)
		// Populate the input (the generation pass also warms nothing
		// useful: it far exceeds the cache).
		t.WriteRange(arr.Base, n)
		mergeSort(t, cfg, arr, tmp, 0, cfg.Elements)
	}, rt.SpawnOpts{Name: "merge-main"})
}

// mergeSort is the body shared by the root and every internal thread:
// sort [lo, hi) of arr, using tmp as merge scratch.
func mergeSort(t *rt.T, cfg MergeConfig, arr, tmp mem.Range, lo, hi int) {
	count := hi - lo
	if count <= cfg.Leaf {
		insertionSort(t, cfg, arr, lo, hi)
		return
	}
	mid := lo + count/2
	left := t.Create("merge-thread", func(c *rt.T) { mergeSort(c, cfg, arr, tmp, lo, mid) })
	right := t.Create("merge-thread", func(c *rt.T) { mergeSort(c, cfg, arr, tmp, mid, hi) })
	// The paper's annotations, verbatim: the children's state is fully
	// contained in this thread's state. The parent prefetches nothing
	// for the children, so the reverse edges are omitted.
	t.Share(left, t.ID(), 1.0)
	t.Share(right, t.ID(), 1.0)
	t.Join(left)
	t.Join(right)
	merge(t, cfg, arr, tmp, lo, mid, hi)
}

// insertionSort models the leaf work: the range is read and rewritten
// repeatedly with quadratic compare work.
func insertionSort(t *rt.T, cfg MergeConfig, arr mem.Range, lo, hi int) {
	base := arr.Base + mem.Addr(lo*cfg.ElemBytes)
	bytes := uint64((hi - lo) * cfg.ElemBytes)
	// Two passes over the data approximate insertion sort's locality
	// (the quadratic term is compares, which hit in cache).
	t.ReadRange(base, bytes)
	t.WriteRange(base, bytes)
	n := uint64(hi - lo)
	t.Compute(n * n / 4)
}

// merge models the parent's merge: read both sorted halves, write the
// merged run to tmp, and copy it back.
func merge(t *rt.T, cfg MergeConfig, arr, tmp mem.Range, lo, mid, hi int) {
	eb := cfg.ElemBytes
	t.ReadRange(arr.Base+mem.Addr(lo*eb), uint64((mid-lo)*eb))
	t.ReadRange(arr.Base+mem.Addr(mid*eb), uint64((hi-mid)*eb))
	t.WriteRange(tmp.Base+mem.Addr(lo*eb), uint64((hi-lo)*eb))
	t.ReadRange(tmp.Base+mem.Addr(lo*eb), uint64((hi-lo)*eb))
	t.WriteRange(arr.Base+mem.Addr(lo*eb), uint64((hi-lo)*eb))
	t.Compute(uint64(3 * (hi - lo)))
}
