package workloads

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform/sim"
	"repro/internal/rt"
)

// countDispatchesByName runs an app and returns per-thread-name
// dispatch counts plus the engine.
func countDispatchesByName(t *testing.T, spawn func(e *rt.Engine), policy string, cpus int) (map[string]int, *rt.Engine) {
	t.Helper()
	cfg := machine.UltraSPARC1()
	if cpus > 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	e, err := rt.New(sim.New(machine.New(cfg)), rt.Options{Policy: policy, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	seen := make(map[mem.ThreadID]bool)
	e.OnDispatch = func(cpu int, tid mem.ThreadID, name string) {
		counts[name+"/dispatch"]++
		if !seen[tid] {
			seen[tid] = true
			counts[name]++
		}
	}
	spawn(e)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	counts["threads"] = len(seen)
	return counts, e
}

func TestTasksThreadAndPeriodCounts(t *testing.T) {
	cfg := TasksConfig{Tasks: 16, FootprintLines: 20, Periods: 5}
	counts, _ := countDispatchesByName(t, func(e *rt.Engine) { SpawnTasks(e, cfg) }, "LFF", 1)
	if counts["task"] != 16 {
		t.Errorf("task threads = %d, want 16", counts["task"])
	}
	// Each task is dispatched at least once per period (every period
	// ends in a sleep).
	if counts["task/dispatch"] < 16*5 {
		t.Errorf("task dispatches = %d, want >= 80", counts["task/dispatch"])
	}
}

func TestMergeThreadTreeSize(t *testing.T) {
	// 1600 elements with leaf 100: ranges split until <= 100, giving
	// 16 leaves and 15 internal split threads... the root runs in the
	// spawning thread, so created merge-threads = 2*(leaves-1).
	cfg := MergeConfig{Elements: 1600, Leaf: 100}
	counts, e := countDispatchesByName(t, func(e *rt.Engine) { SpawnMerge(e, cfg) }, "CRT", 2)
	if got := counts["merge-thread"]; got != 30 {
		t.Errorf("merge threads = %d, want 30", got)
	}
	if e.Graph().Edges() != 0 {
		t.Errorf("annotation edges leaked: %d", e.Graph().Edges())
	}
}

func TestPhotoAllRowsEveryPass(t *testing.T) {
	cfg := PhotoConfig{Width: 256, Height: 48, Iterations: 3, BandRows: 16}
	counts, _ := countDispatchesByName(t, func(e *rt.Engine) { SpawnPhoto(e, cfg) }, "LFF", 4)
	if counts["photo-row"] != 48 {
		t.Errorf("row threads = %d, want 48", counts["photo-row"])
	}
	// Barrier semantics: every row participates in every pass, so each
	// row is dispatched at least Iterations times.
	if counts["photo-row/dispatch"] < 48*3 {
		t.Errorf("row dispatches = %d, want >= 144", counts["photo-row/dispatch"])
	}
}

func TestTSPTreeSize(t *testing.T) {
	cfg := TSPConfig{Cities: 40, Branch: 3, Depth: 3, Rounds: 2, SliceRows: 8}
	wantNodes := cfg.Threads() - 1 // the root runs in tsp-main
	counts, _ := countDispatchesByName(t, func(e *rt.Engine) { SpawnTSP(e, cfg) }, "LFF", 2)
	if got := counts["tsp-node"]; got != wantNodes {
		t.Errorf("tsp nodes = %d, want %d", got, wantNodes)
	}
}

func TestTSPThreadsFormula(t *testing.T) {
	cases := []struct {
		branch, depth, want int
	}{
		{2, 3, 15}, {3, 2, 13}, {3, 6, 1093}, {4, 1, 5},
	}
	for _, c := range cases {
		cfg := TSPConfig{Branch: c.branch, Depth: c.depth}
		if got := cfg.Threads(); got != c.want {
			t.Errorf("Threads(b=%d,d=%d) = %d, want %d", c.branch, c.depth, got, c.want)
		}
	}
}

func TestScaledConfigsStayValid(t *testing.T) {
	for _, s := range []float64{0.01, 0.1, 0.5, 1.0} {
		tc := TasksConfig{}.scaled(s)
		if tc.Tasks < 8 || tc.Periods < 4 {
			t.Errorf("tasks scaled(%v) too small: %+v", s, tc)
		}
		mc := MergeConfig{}.scaled(s)
		if mc.Elements < 16*mc.Leaf {
			t.Errorf("merge scaled(%v) below floor: %+v", s, mc)
		}
		pc := PhotoConfig{}.scaled(s)
		if pc.Width < 128 || pc.Height < 32 {
			t.Errorf("photo scaled(%v) too small: %+v", s, pc)
		}
		xc := TSPConfig{}.scaled(s)
		if xc.Threads() < 13 {
			t.Errorf("tsp scaled(%v) too small: %d threads", s, xc.Threads())
		}
	}
}

func TestWorkloadsDisjointAllocations(t *testing.T) {
	// tasks' per-thread states must not overlap (the benchmark's
	// defining property). Verify via the machine allocator bump
	// behaviour with a small run under FCFS and footprint tracking:
	// with disjoint state, no annotation edges and no accessor overlap
	// are possible — cheapest proxy: the graph stays empty.
	cfg := machine.UltraSPARC1()
	e, err := rt.New(sim.New(machine.New(cfg)), rt.Options{Policy: "LFF", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	SpawnTasks(e, TasksConfig{Tasks: 8, FootprintLines: 10, Periods: 2})
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Graph().Edges() != 0 {
		t.Errorf("tasks created %d edges", e.Graph().Edges())
	}
}
