// Package workloads implements the paper's application suite twice
// over:
//
//   - The *model-study* applications of Table 2 (four SPLASH-2-class C
//     programs and four Sather programs) as reference-stream patterns
//     whose statistical structure matches the paper's per-application
//     characterization. These drive the model-accuracy experiments
//     (Figures 5-7).
//
//   - The *scheduling* applications of Table 4 (tasks, merge, photo,
//     tsp) as real multi-threaded programs over the Active Threads
//     runtime, complete with the paper's state-sharing annotations.
//     These drive the performance experiments (Figures 8-9, Table 5).
package workloads

import (
	"fmt"

	"repro/internal/rt"
)

// SchedApp is one Section 5 application: a constructor that seeds an
// engine with the program's threads. Run the engine to completion to
// "execute" the application.
type SchedApp struct {
	// Name is the paper's application name.
	Name string
	// Params is the Table 4 input-parameter line.
	Params string
	// Threads is the approximate number of threads the run creates.
	Threads int
	// Spawn seeds the engine. scale in (0, 1] shrinks the run for
	// tests; 1 reproduces the paper's parameters.
	Spawn func(e *rt.Engine, scale float64)
}

// SchedApps returns the Section 5 suite in the paper's order.
func SchedApps() []SchedApp {
	return []SchedApp{
		{
			Name:    "tasks",
			Params:  "1024 tasks, footprints 100 lines each, 100 scheduling periods per task",
			Threads: 1024,
			Spawn:   func(e *rt.Engine, s float64) { SpawnTasks(e, TasksConfig{}.scaled(s)) },
		},
		{
			Name:    "merge",
			Params:  "100,000 uniformly distributed elements; insertion sort below 100 elements; ~1000 leaf threads",
			Threads: 1999,
			Spawn:   func(e *rt.Engine, s float64) { SpawnMerge(e, MergeConfig{}.scaled(s)) },
		},
		{
			Name:    "photo",
			Params:  "5x5 softening filter over a 2048x2048 rgb pixmap, 4 passes; one thread per row (2048 threads)",
			Threads: 2048,
			Spawn:   func(e *rt.Engine, s float64) { SpawnPhoto(e, PhotoConfig{}.scaled(s)) },
		},
		{
			Name:    "tsp",
			Params:  "branch-and-bound TSP, 100 cities, 3-way splits to depth 6; 1093 threads of equal work",
			Threads: 1093,
			Spawn:   func(e *rt.Engine, s float64) { SpawnTSP(e, TSPConfig{}.scaled(s)) },
		},
	}
}

// SchedAppByName returns the named application.
func SchedAppByName(name string) (SchedApp, error) {
	for _, a := range SchedApps() {
		if a.Name == name {
			return a, nil
		}
	}
	return SchedApp{}, fmt.Errorf("workloads: unknown application %q", name)
}

// scaleInt shrinks a paper-scale parameter, keeping at least min.
func scaleInt(v int, scale float64, min int) int {
	n := int(float64(v) * scale)
	if n < min {
		n = min
	}
	return n
}
