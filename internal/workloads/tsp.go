package workloads

import (
	"repro/internal/mem"
	"repro/internal/rt"
)

// TSPConfig parameterizes tsp, the branch-and-bound travelling-salesman
// solver: the solution space is repeatedly divided into subspaces that
// fix or exclude chosen edges. Each subspace carries its own adjacency
// matrix, allocated from a mutex-protected allocator (the paper uses
// the stock Solaris malloc under a lock) and initialized by copying the
// parent's matrix — so parents prefetch data for their children, and
// the writes that initialize fresh matrices are compulsory misses
// beyond any scheduling policy's reach. That is why the paper measures
// only ~12% of misses eliminated on one processor.
//
// tsp threads are persistent blockers: each bounding round traverses
// the partial path and part of the matrix, extends new linked
// structures, and consults the global incumbent under its lock. On one
// processor the locks are never contended, so a thread runs to
// completion with its state warm under any policy; on the SMP, FCFS
// resumes a blocked thread on whatever processor frees next, reloading
// its matrix and path on every round, while the locality policies keep
// it where its footprint is — "speedup mostly due to preserving the
// locality within a thread" (Section 5), 73% of misses eliminated on
// the E5000.
//
// tsp is non-deterministic in the paper, so equal "work" was recorded
// and replayed across policies; here the split tree is a fixed-shape
// deterministic tree of equal work, which is exactly that protocol.
type TSPConfig struct {
	// Cities is the problem size (paper: 100); the adjacency matrix is
	// Cities*Cities 4-byte distances (40KB for 100 cities).
	Cities int
	// Branch is how many subspaces one split produces.
	Branch int
	// Depth is the split-tree depth: (Branch^(Depth+1)-1)/(Branch-1)
	// threads in total (branch 3, depth 6 => 1093 threads, the paper's
	// ~1000).
	Depth int
	// Rounds is the number of bounding rounds per thread; each round
	// traverses the partial path and a slice of the matrix, extends
	// the path, and consults the incumbent (a blocking point).
	Rounds int
	// SliceRows is how many matrix rows one bounding round reads.
	SliceRows int
}

func (c TSPConfig) withDefaults() TSPConfig {
	if c.Cities == 0 {
		c.Cities = 100
	}
	if c.Branch == 0 {
		c.Branch = 3
	}
	if c.Depth == 0 {
		c.Depth = 6
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.SliceRows == 0 {
		c.SliceRows = 100
	}
	return c
}

// Threads returns the total thread count of the configured tree.
func (c TSPConfig) Threads() int {
	c = c.withDefaults()
	n, level := 0, 1
	for d := 0; d <= c.Depth; d++ {
		n += level
		level *= c.Branch
	}
	return n
}

func (c TSPConfig) scaled(s float64) TSPConfig {
	c = c.withDefaults()
	if s < 1 {
		want := scaleInt(c.Threads(), s, 13)
		d := 1
		for {
			c.Depth = d
			if c.Threads() >= want || d > 12 {
				break
			}
			d++
		}
	}
	return c
}

// tspShared is the state common to every tsp thread.
type tspShared struct {
	cfg     TSPConfig
	allocMu *rt.Mutex // the malloc lock
	bestMu  *rt.Mutex // guards the incumbent tour
	best    mem.Range
	root    mem.Range // the original distance matrix, read-shared by all
}

// SpawnTSP seeds e with the tsp program.
func SpawnTSP(e *rt.Engine, cfg TSPConfig) {
	cfg = cfg.withDefaults()
	sh := &tspShared{
		cfg:     cfg,
		allocMu: rt.NewMutex("malloc"),
		bestMu:  rt.NewMutex("best"),
	}
	e.Spawn(func(t *rt.T) {
		sh.best = t.Alloc(2048)
		t.WriteRange(sh.best.Base, 2048)
		matrixBytes := uint64(cfg.Cities*cfg.Cities) * 4
		sh.root = t.Alloc(matrixBytes)
		t.WriteRange(sh.root.Base, matrixBytes)
		rootDelta := t.Alloc(4096)
		t.WriteRange(rootDelta.Base, 4096)
		solve(t, sh, rootDelta, 0)
	}, rt.SpawnOpts{Name: "tsp-main"})
}

// solve is the per-thread body: materialize this subspace's distance
// matrix from the read-shared root matrix and the parent's edge delta,
// divide eagerly (children are created before this node's bounding
// rounds, so the solver tree coexists and the machine always has far
// more runnable threads than processors — the paper's fine-grained
// regime), then bound the subspace across many blocking rounds.
func solve(t *rt.T, sh *tspShared, delta mem.Range, depth int) {
	cfg := sh.cfg
	matrixBytes := uint64(cfg.Cities*cfg.Cities) * 4
	sliceBytes := uint64(cfg.SliceRows*cfg.Cities) * 4

	// Materialize the subspace matrix: the root matrix is read by every
	// thread and stays resident in every processor's cache (clean
	// sharing); the fresh matrix writes are compulsory misses no
	// scheduling policy can remove. The parent's delta is the small
	// prefetched part.
	t.Lock(sh.allocMu)
	matrix := t.Alloc(matrixBytes)
	path := t.Alloc(4096)
	t.Unlock(sh.allocMu)
	t.ReadRange(delta.Base, delta.Len)
	t.ReadRange(sh.root.Base, matrixBytes)
	t.WriteRange(matrix.Base, matrixBytes)
	t.WriteRange(path.Base, 512)

	var kids []mem.ThreadID
	if depth < cfg.Depth {
		// Divide: each child subspace is described by a small edge
		// delta written by this thread — the only state a child
		// actually inherits.
		for i := 0; i < cfg.Branch; i++ {
			t.Lock(sh.allocMu)
			childDelta := t.Alloc(4096)
			t.Unlock(sh.allocMu)
			t.ReadRange(delta.Base, delta.Len)
			t.WriteRange(childDelta.Base, 4096)
			kid := t.Create("tsp-node", func(c *rt.T) { solve(c, sh, childDelta, depth+1) })
			// The annotation reflects the prefetch honestly: the child
			// inherits only the small delta, a tiny fraction of the
			// parent's state. The paper notes tsp's speedup comes from
			// within-thread locality and "adding annotations does not
			// improve performance much further".
			t.Share(t.ID(), kid, 0.05)
			kids = append(kids, kid)
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Traverse the partial path built so far and re-scan the
		// bound's matrix rows (the row minima are recomputed against
		// the same rows every round as the path grows).
		t.ReadRange(path.Base, 512+uint64(round)*256)
		t.ReadRange(matrix.Base, sliceBytes)
		t.Compute(uint64(cfg.Cities * cfg.SliceRows))
		// Extend the path with fresh nodes (compulsory writes).
		t.WriteRange(path.Base+mem.Addr(512+uint64(round)*256), 256)
		// Consult the incumbent tour structure and fold this round's
		// bound into it — the blocking point every bounding round
		// passes through. On the SMP the lock is contended and the
		// incumbent lines ping between caches; on one processor it is
		// always free.
		t.Lock(sh.bestMu)
		t.ReadRange(sh.best.Base, sh.best.Len)
		t.Compute(128)
		t.WriteRange(sh.best.Base, 256)
		t.Unlock(sh.bestMu)
	}

	for _, k := range kids {
		t.Join(k)
	}
}
