package workloads

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rt"
	"repro/internal/trace"
)

// StudyApp is one Table 2 application for the model-accuracy
// experiments: a reference-stream pattern plus the geometry of its
// state. The pattern parameters encode the per-application behaviour
// the paper reports: C programs cluster references more than the
// model's independence assumption expects (slight overestimation), the
// OO programs' linked structures are closer to independent, and
// typechecker/raytrace concentrate misses on few sets (Figure 7's
// strong overestimation).
type StudyApp struct {
	// Name is the application name from Table 2.
	Name string
	// Class is "SPLASH-2 (C)" or "Sather".
	Class string
	// Description summarizes what the program does (Table 2).
	Description string
	// StateBytes is the size of the "work" thread's data set.
	StateBytes uint64
	// HotBytes is the size of the heavily reused core (0 = none).
	HotBytes uint64
	// Anomalous marks the Figure 7 applications whose footprints the
	// model substantially overestimates.
	Anomalous bool
	// Pattern builds the reference pattern over the allocated state
	// and hot regions (hot is a prefix of state).
	Pattern func(state, hot mem.Range) trace.Pattern
}

// pageStride is the conflict-walk stride: one line per 8KB page, which
// concentrates misses on (colors × 1) cache sets.
const pageStride = 8192

// StudyApps returns the eight Table 2 applications. The first four are
// the SPLASH-2 suite members (used unmodified by the paper through an
// Active Threads PARMACS layer); the last four are the Sather
// applications.
func StudyApps() []StudyApp {
	return []StudyApp{
		{
			Name:        "barnes",
			Class:       "SPLASH-2 (C)",
			Description: "Barnes-Hut hierarchical N-body simulation; octree walks over particle and cell arrays",
			StateBytes:  3 << 20,
			HotBytes:    192 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, MeanRunWords: 6,
					Hot: hot, PHot: 0.35,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.06,
					// Body and cell records are pool-allocated with a
					// little per-arena slack.
					UsablePerPage: 7168,
					WriteFrac:     0.25, ComputePerRef: 5,
				}
			},
		},
		{
			Name:        "fmm",
			Class:       "SPLASH-2 (C)",
			Description: "N-body simulation using the adaptive Fast Multipole Method",
			StateBytes:  2500 << 10,
			HotBytes:    160 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, MeanRunWords: 8,
					Hot: hot, PHot: 0.3,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.08,
					UsablePerPage: 7168,
					WriteFrac:     0.3, ComputePerRef: 7,
				}
			},
		},
		{
			Name:        "ocean",
			Class:       "SPLASH-2 (C)",
			Description: "ocean current simulation over regular grids; long row sweeps",
			StateBytes:  4 << 20,
			HotBytes:    96 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, Sequential: true, MeanRunWords: 24,
					Hot: hot, PHot: 0.15,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.05,
					// Grid rows are padded to a power of two, so only
					// three quarters of each page holds live data —
					// the classic source of the slight overprediction
					// the paper reports for the C codes.
					UsablePerPage: 6144,
					WriteFrac:     0.35, ComputePerRef: 3,
				}
			},
		},
		{
			Name:        "raytrace",
			Class:       "SPLASH-2 (C)",
			Description: "ray tracer; between short bursts most misses are conflict misses that do not grow the footprint",
			StateBytes:  2 << 20,
			HotBytes:    128 << 10,
			Anomalous:   true,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, MeanRunWords: 4,
					Hot: hot, PHot: 0.40,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.45,
					// Scene structures cluster at the low half of their
					// pages, concentrating the conflict misses.
					UsablePerPage: 4096,
					WriteFrac:     0.1, ComputePerRef: 9,
				}
			},
		},
		{
			Name:        "merge",
			Class:       "Sather",
			Description: "parallel mergesort of 100,000 elements (Section 2.3)",
			StateBytes:  1600 << 10, // the array plus merge scratch
			HotBytes:    64 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, MeanRunWords: 10,
					Hot: hot, PHot: 0.1,
					WriteFrac: 0.45, ComputePerRef: 4,
				}
			},
		},
		{
			Name:        "photo",
			Class:       "Sather",
			Description: "softening filter over a 2048x2048 rgb pixmap; per-row threads read neighbouring rows",
			StateBytes:  3 << 20, // a work thread's slice of the pixmap
			HotBytes:    32 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, Sequential: true, MeanRunWords: 20,
					Hot: hot, PHot: 0.08,
					// A 2048-pixel rgb row is 6144 bytes laid out on
					// 8KB page strides.
					UsablePerPage: 6144,
					WriteFrac:     0.3, ComputePerRef: 5,
				}
			},
		},
		{
			Name:        "typechecker",
			Class:       "Sather",
			Description: "Sather compiler typechecker compiling the compiler itself; walks a large type graph in creation order (long runs, high clustering)",
			StateBytes:  4 << 20,
			HotBytes:    64 << 10,
			Anomalous:   true,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, Sequential: true, MeanRunWords: 48,
					Hot: hot, PHot: 0.25,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.55,
					// Type-graph nodes are pool-allocated at the head
					// of 8KB arenas, so the creation-order walk keeps
					// revisiting the same quarter of the cache sets.
					UsablePerPage: 2048,
					WriteFrac:     0.1, ComputePerRef: 11,
				}
			},
		},
		{
			Name:        "tsp",
			Class:       "Sather",
			Description: "branch-and-bound travelling salesman; linked partial paths and adjacency matrices",
			StateBytes:  1500 << 10,
			HotBytes:    96 << 10,
			Pattern: func(state, hot mem.Range) trace.Pattern {
				return trace.Pattern{
					Fresh: state, MeanRunWords: 3,
					Hot: hot, PHot: 0.3,
					ConflictStride: pageStride, ConflictSpan: state.Len, PConflict: 0.02,
					WriteFrac: 0.25, ComputePerRef: 5,
				}
			},
		},
	}
}

// StudyAppByName returns the named study application.
func StudyAppByName(name string) (StudyApp, error) {
	for _, a := range StudyApps() {
		if a.Name == name {
			return a, nil
		}
	}
	return StudyApp{}, fmt.Errorf("workloads: unknown study application %q", name)
}

// Fig5Apps returns the six applications whose footprints Figure 5
// reports (the non-anomalous ones); Fig7Apps returns the two whose
// overestimation Figure 7 shows.
func Fig5Apps() []StudyApp {
	var out []StudyApp
	for _, a := range StudyApps() {
		if !a.Anomalous {
			out = append(out, a)
		}
	}
	return out
}

// Fig7Apps returns typechecker and raytrace.
func Fig7Apps() []StudyApp {
	var out []StudyApp
	for _, a := range StudyApps() {
		if a.Anomalous {
			out = append(out, a)
		}
	}
	return out
}

// SpawnCoarse runs a study application the way the paper ran the
// SPLASH-2 programs themselves: coarse-grained, one long-lived thread
// per processor, each working a private partition of the data with
// barrier-synchronized phases. The paper excludes this regime from its
// scheduling evaluation because such programs "do not exemplify the
// thread programming model: they are coarse-grained with the number of
// threads matching the number of processors; often explicitly tuned for
// locality" — SpawnCoarse exists to demonstrate that exclusion is
// justified: locality policies neither help nor hurt here.
func SpawnCoarse(e *rt.Engine, app StudyApp, threads, phases, refsPerPhase int) {
	e.Spawn(func(t *rt.T) {
		phase := rt.NewBarrier(app.Name+"-phase", threads)
		kids := make([]mem.ThreadID, threads)
		part := app.StateBytes / uint64(threads)
		for i := 0; i < threads; i++ {
			i := i
			kids[i] = t.Create(app.Name+"-worker", func(c *rt.T) {
				// Each worker owns a partition and streams its own
				// pattern over it.
				state := c.Alloc(part)
				hotLen := app.HotBytes / uint64(threads)
				if hotLen > part {
					hotLen = part
				}
				hot := mem.Range{Base: state.Base, Len: hotLen}
				gen := trace.NewGen(app.Pattern(state, hot), uint64(1000+i))
				var batch mem.Batch
				for p := 0; p < phases; p++ {
					batch = batch[:0]
					var compute uint64
					batch, compute = gen.Emit(batch, refsPerPhase)
					for _, a := range batch {
						c.Access(a)
					}
					c.Compute(compute)
					c.BarrierWait(phase)
				}
			})
		}
		for _, k := range kids {
			t.Join(k)
		}
	}, rt.SpawnOpts{Name: app.Name + "-main"})
}

// StreamRun drives one study application's reference stream on a
// dedicated machine for a fixed reference budget — the shared harness
// behind the mapping, breakdown and TLB studies (the footprint studies
// need finer control and keep their own loop).
func StreamRun(app StudyApp, mcfg machine.Config, seed uint64, budget int) *machine.Machine {
	m := machine.New(mcfg)
	state := m.AllocPages(app.StateBytes)
	hot := mem.Range{Base: state.Base, Len: app.HotBytes}
	gen := trace.NewGen(app.Pattern(state, hot), seed)
	var batch mem.Batch
	for refs := 0; refs < budget; refs += 8192 {
		batch = batch[:0]
		var compute uint64
		batch, compute = gen.Emit(batch, 8192)
		m.Apply(0, 0, batch)
		m.Advance(0, compute)
	}
	return m
}
