package workloads

import (
	"repro/internal/mem"
	"repro/internal/rt"
)

// PhotoConfig parameterizes photo, the Sather image retouching program:
// a "softening" (blur) filter applied to an RGB pixmap, one thread per
// row of pixels. Each row thread reads its own row and its neighbours,
// so threads working on nearby rows share most of their state. The
// annotations say exactly that: the closer two row numbers, the more
// prefetched state is reused (q = 0.5 at distance 1, 0.25 at distance
// 2).
//
// On one processor plain FCFS already visits the rows in creation
// order, which is the optimal order — the paper measures the locality
// policies slightly *losing* there (0.97x) from their own overhead. On
// the 8-processor machine FCFS scatters neighbouring rows across
// processors and the locality policies win by over 2x.
type PhotoConfig struct {
	// Width and Height are the pixmap dimensions in pixels (paper:
	// 2048x2048).
	Width, Height int
	// BytesPerPixel is 3 for rgb.
	BytesPerPixel int
	// FilterInstrs is the per-pixel compute cost of the softening
	// kernel.
	FilterInstrs int
	// Radius is the kernel radius in rows: the filter reads rows
	// r-Radius..r+Radius to compute output row r (a 5x5 softening
	// kernel has radius 2).
	Radius int
	// ShareWindow is how far, in rows, the sharing annotations reach;
	// the coefficient decays with distance, as the paper describes
	// ("the closer the corresponding row numbers, the more prefetched
	// state is reused").
	ShareWindow int
	// Iterations is the number of filter passes; the softening filter
	// is applied repeatedly, with a barrier between passes. Repeated
	// passes are what give affinity scheduling its leverage: a row
	// thread that wakes for the next pass wants the processor that
	// still caches its rows, and the annotations pull neighbouring
	// rows to the same place.
	Iterations int
	// Strips is how many pieces one row's filter step is split into;
	// after each strip the thread posts shared progress, a blocking
	// point mid-row (fine-grained Sather threads synchronize often).
	Strips int
	// BandRows groups rows into bands of this many rows; each band's
	// descriptor (histogram, clamp statistics) is guarded by a mutex
	// that a row thread holds while filtering. Rows of a band
	// therefore execute one at a time in lock-queue order — the row
	// threads are *blocking* threads, the programming model the paper
	// targets — while different bands run in parallel.
	BandRows int
}

func (c PhotoConfig) withDefaults() PhotoConfig {
	if c.Width == 0 {
		c.Width = 2048
	}
	if c.Height == 0 {
		c.Height = 2048
	}
	if c.BytesPerPixel == 0 {
		c.BytesPerPixel = 3
	}
	if c.FilterInstrs == 0 {
		c.FilterInstrs = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.Radius == 0 {
		c.Radius = 2
	}
	if c.ShareWindow == 0 {
		c.ShareWindow = 8
	}
	if c.BandRows == 0 {
		c.BandRows = 64
	}
	if c.Strips == 0 {
		c.Strips = 4
	}
	return c
}

func (c PhotoConfig) scaled(s float64) PhotoConfig {
	c = c.withDefaults()
	c.Width = scaleInt(c.Width, s, 128)
	c.Height = scaleInt(c.Height, s, 32)
	return c
}

// SpawnPhoto seeds e with the photo program.
func SpawnPhoto(e *rt.Engine, cfg PhotoConfig) {
	cfg = cfg.withDefaults()
	e.Spawn(func(t *rt.T) {
		rowBytes := uint64(cfg.Width * cfg.BytesPerPixel)
		in := t.Alloc(rowBytes * uint64(cfg.Height))
		out := t.Alloc(rowBytes * uint64(cfg.Height))
		row := func(r int) mem.Addr { return in.Base + mem.Addr(uint64(r)*rowBytes) }

		pass := rt.NewBarrier("photo-pass", cfg.Height)
		progressMu := rt.NewMutex("photo-progress")
		progress := t.Alloc(64)
		nbands := (cfg.Height + cfg.BandRows - 1) / cfg.BandRows
		bands := make([]*rt.Mutex, nbands)
		bandStats := make([]mem.Range, nbands)
		for b := range bands {
			bands[b] = rt.NewMutex("photo-band")
			bandStats[b] = t.Alloc(256)
		}
		kids := make([]mem.ThreadID, cfg.Height)
		for r := 0; r < cfg.Height; r++ {
			r := r
			band := r / cfg.BandRows
			kids[r] = t.Create("photo-row", func(c *rt.T) {
				stripBytes := rowBytes / uint64(cfg.Strips)
				for it := 0; it < cfg.Iterations; it++ {
					// The band descriptor (shared clamp/histogram
					// statistics) is held across the filter step, so
					// rows of a band run one at a time in lock-queue
					// order while the 32 bands proceed in parallel.
					c.Lock(bands[band])
					for st := 0; st < cfg.Strips; st++ {
						off := mem.Addr(uint64(st) * stripBytes)
						for dr := -cfg.Radius; dr <= cfg.Radius; dr++ {
							src := r + dr
							if src < 0 || src >= cfg.Height {
								continue
							}
							c.ReadRange(row(src)+off, stripBytes)
						}
						// The per-strip filter cost varies with the
						// image content (softening short-circuits on
						// flat regions), so rows take unequal time.
						work := uint64(cfg.Width * cfg.FilterInstrs / cfg.Strips)
						c.Compute(work/2 + c.Rand().Uint64n(work))
						c.WriteRange(out.Base+mem.Addr(uint64(r)*rowBytes)+off, stripBytes)
						// Post per-strip progress — a blocking point
						// in the middle of the row's working set, so
						// the counters alone (no annotations) can see
						// and preserve the thread's state.
						c.Lock(progressMu)
						c.Write(progress.Base, 1, 0)
						c.Unlock(progressMu)
					}
					c.ReadRange(bandStats[band].Base, 256)
					c.WriteRange(bandStats[band].Base, 256)
					c.Unlock(bands[band])
					c.BarrierWait(pass)
				}
			})
			// Distance-weighted sharing annotations between nearby row
			// threads, recorded as soon as both threads exist: the
			// kernel rows overlap by 2·Radius+1−d rows at distance d,
			// and the annotation coefficient decays accordingly out to
			// ShareWindow (generous hints are harmless).
			span := 2*cfg.Radius + 2 // input rows + output row
			for d := 1; d <= cfg.ShareWindow && d <= r; d++ {
				overlap := 2*cfg.Radius + 1 - d
				q := float64(overlap) / float64(span)
				if q <= 0 {
					q = 0.5 / float64(span) / float64(d-2*cfg.Radius)
				}
				t.Share(kids[r], kids[r-d], q)
				t.Share(kids[r-d], kids[r], q)
			}
		}
		for _, k := range kids {
			t.Join(k)
		}
	}, rt.SpawnOpts{Name: "photo-main"})
}
