package workloads

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// emitStats summarizes an app's reference stream: mean run length,
// write fraction, distinct-page coverage and conflict-line reuse.
type emitStats struct {
	refs      int64
	runs      int64
	writes    int64
	pages     map[uint64]bool
	lineFreq  map[mem.Addr]int64
	stateBase mem.Addr
}

func collect(t *testing.T, app StudyApp, budget int) *emitStats {
	t.Helper()
	m := machine.New(machine.UltraSPARC1())
	state := m.AllocPages(app.StateBytes)
	hot := mem.Range{Base: state.Base, Len: app.HotBytes}
	g := trace.NewGen(app.Pattern(state, hot), 7)
	st := &emitStats{
		pages:     make(map[uint64]bool),
		lineFreq:  make(map[mem.Addr]int64),
		stateBase: state.Base,
	}
	var batch mem.Batch
	for st.refs < int64(budget) {
		batch = batch[:0]
		batch, _ = g.Emit(batch, 8192)
		for _, a := range batch {
			st.runs++
			st.refs += a.Refs()
			if a.Write {
				st.writes++
			}
			st.pages[uint64(a.Base-state.Base)/8192] = true
			st.lineFreq[mem.LineAddr(a.Base, 64)]++
		}
	}
	return st
}

// TestPatternStatistics verifies each study application's stream has
// the statistical signature its Table 2 characterization promises.
func TestPatternStatistics(t *testing.T) {
	stats := make(map[string]*emitStats)
	for _, app := range StudyApps() {
		stats[app.Name] = collect(t, app, 300_000)
	}
	meanRun := func(name string) float64 {
		s := stats[name]
		return float64(s.refs) / float64(s.runs)
	}
	// Long-run-length apps vs linked-structure apps: typechecker and
	// ocean must have much longer runs than tsp (the paper: OO
	// programs show less clustering).
	if meanRun("typechecker") < 3*meanRun("tsp") {
		t.Errorf("typechecker runs (%.1f) not much longer than tsp (%.1f)",
			meanRun("typechecker"), meanRun("tsp"))
	}
	if meanRun("ocean") < 2*meanRun("tsp") {
		t.Errorf("ocean runs (%.1f) not much longer than tsp (%.1f)",
			meanRun("ocean"), meanRun("tsp"))
	}
	// Write fractions are in sane bounds everywhere.
	for name, s := range stats {
		w := float64(s.writes) / float64(s.runs)
		if w < 0.02 || w > 0.7 {
			t.Errorf("%s write fraction %.2f out of bounds", name, w)
		}
	}
	// The conflict-heavy anomalies re-reference their most popular
	// lines far more often than the well-behaved apps (page-stride
	// conflict traffic concentrates on few lines).
	maxFreq := func(name string) int64 {
		var max int64
		for _, f := range stats[name].lineFreq {
			if f > max {
				max = f
			}
		}
		return max
	}
	if maxFreq("raytrace") < 4*maxFreq("merge") {
		t.Errorf("raytrace hottest line (%d) not much hotter than merge's (%d)",
			maxFreq("raytrace"), maxFreq("merge"))
	}
}

// TestPatternsCoverTheirState: every app's stream must roam most of its
// declared state (the footprint studies depend on it).
func TestPatternsCoverTheirState(t *testing.T) {
	for _, app := range StudyApps() {
		s := collect(t, app, 600_000)
		totalPages := int(app.StateBytes / 8192)
		if len(s.pages) < totalPages/2 {
			t.Errorf("%s: stream touched %d of %d pages", app.Name, len(s.pages), totalPages)
		}
	}
}
