package workloads

import (
	"repro/internal/mem"
	"repro/internal/rt"
)

// TasksConfig parameterizes the tasks benchmark — the synthetic workload
// Squillante and Lazowska used to study processor-cache affinity, as
// re-run by the paper: a fixed number of identical threads with equal,
// disjoint footprints that repeatedly wake up, touch their state, and
// block for the same duration they were active. With disjoint state,
// user annotations are irrelevant; all locality benefit comes from the
// counter-driven footprint model alone.
type TasksConfig struct {
	// Tasks is the number of threads (paper: 1024).
	Tasks int
	// FootprintLines is each task's state size in cache lines
	// (paper: 100).
	FootprintLines int
	// Periods is the number of wake-touch-block cycles per task
	// (paper: 100).
	Periods int
	// LineSize is the cache line size in bytes (64 on UltraSPARC).
	LineSize int
}

func (c TasksConfig) withDefaults() TasksConfig {
	if c.Tasks == 0 {
		c.Tasks = 1024
	}
	if c.FootprintLines == 0 {
		c.FootprintLines = 100
	}
	if c.Periods == 0 {
		c.Periods = 100
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	return c
}

func (c TasksConfig) scaled(s float64) TasksConfig {
	c = c.withDefaults()
	c.Tasks = scaleInt(c.Tasks, s, 8)
	c.Periods = scaleInt(c.Periods, s, 4)
	return c
}

// SpawnTasks seeds e with the tasks benchmark.
func SpawnTasks(e *rt.Engine, cfg TasksConfig) {
	cfg = cfg.withDefaults()
	e.Spawn(func(t *rt.T) {
		stateBytes := uint64(cfg.FootprintLines * cfg.LineSize)
		kids := make([]mem.ThreadID, 0, cfg.Tasks)
		for i := 0; i < cfg.Tasks; i++ {
			// Disjoint, line-aligned state per task.
			state := t.AllocAligned(stateBytes, uint64(cfg.LineSize))
			kids = append(kids, t.Create("task", func(c *rt.T) {
				for p := 0; p < cfg.Periods; p++ {
					start := c.Now()
					c.Touch(state)
					// Per-line work sized so that memory stall is
					// roughly 60% of a cold period, matching the
					// paper's 2.38x best-case speedup at ~92% miss
					// elimination.
					c.Compute(uint64(25 * cfg.FootprintLines))
					active := c.Now() - start
					if active == 0 {
						active = 1
					}
					c.Sleep(active)
				}
			}))
		}
		for _, k := range kids {
			t.Join(k)
		}
	}, rt.SpawnOpts{Name: "tasks-main"})
}
