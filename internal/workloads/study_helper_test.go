package workloads

import (
	"testing"

	"repro/internal/trace"
)

// traceGen builds a generator, failing the test on invalid patterns.
func traceGen(t *testing.T, pat trace.Pattern) *trace.Gen {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("pattern rejected: %v", r)
		}
	}()
	return trace.NewGen(pat, 1)
}
