package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLoadSnapshot pins the contract that Load never panics: any byte
// stream — corrupted, truncated, version-skewed, or hostile — either
// decodes to a State that re-encodes cleanly or fails with an error.
// Mirrors internal/trace's FuzzLoadRecording. ci.sh runs this as a
// short smoke.
func FuzzLoadSnapshot(f *testing.F) {
	// Valid snapshots, full and empty.
	var buf bytes.Buffer
	if err := sampleState().Save(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	buf.Reset()
	if err := (&State{}).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	// Truncations at interesting boundaries.
	for _, n := range []int{0, 7, 8, 12, 20, 27, 28, len(good) / 2, len(good) - 1} {
		if n <= len(good) {
			f.Add(append([]byte(nil), good[:n]...))
		}
	}
	// Version skew with a valid CRC.
	skew := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(skew[8:12], Version+7)
	f.Add(skew)
	// Bit flips in header and payload.
	for _, off := range []int{3, 15, 23, 40, len(good) - 2} {
		flip := append([]byte(nil), good...)
		flip[off] ^= 0x80
		f.Add(flip)
	}
	// Hostile element count behind a valid header+CRC.
	payload := binary.AppendUvarint(nil, 1<<50)
	hostile := make([]byte, 28)
	copy(hostile, good[:8])
	binary.LittleEndian.PutUint32(hostile[8:12], Version)
	binary.LittleEndian.PutUint64(hostile[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hostile[20:28], crcOf(payload))
	f.Add(append(hostile, payload...))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot that loads must re-encode and round-trip exactly.
		var out bytes.Buffer
		if err := st.Save(&out); err != nil {
			t.Fatalf("loaded snapshot failed to save: %v", err)
		}
		st2, err := Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to load: %v", err)
		}
		if !Equal(st, st2) {
			t.Fatalf("re-encode round trip diverged: %v", Diff(st, st2))
		}
	})
}
