package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleState builds a fully-populated State exercising every section
// of the format, including float bit patterns that a sloppy codec
// would normalize away (negative zero, subnormals).
func sampleState() *State {
	return &State{
		Config: []KV{{"app", "fig8"}, {"cpus", "4"}, {"policy", "affinity"}},
		Policy: "affinity", NCPU: 4, CacheLines: 8192, Seed: 42,
		CheckpointEvery: 100000, NextCheckpoint: 300000,
		Steps: 1234, Now: 250001, NextID: 9, Live: 5, TimerSeq: 3,
		EngineRNG: 0xdeadbeefcafef00d,
		CPUs: []CPUState{
			{Clock: 250001, Misses: 777, Refs: 4000000000, Hits: 12, BaseRefs: 3999999999, BaseHits: 7, Idle: 5, Dispatches: 40, Parked: false, Running: 3},
			{Clock: 249000, Misses: 12, Refs: 1, Hits: 1, Idle: 9000, Dispatches: 2, Parked: true, Running: -1},
		},
		Timers: []TimerState{{WakeAt: 260000, Seq: 1, Thread: 4}, {WakeAt: 260000, Seq: 2, Thread: 7}},
		Threads: []ThreadState{
			{ID: 1, Name: "main", Status: 2, BlockedOn: "join t3", CPU: -1, Cycles: 100, DispatchClock: 90, DispatchCount: 4, DispatchMisses: 700, ReadyClock: 88, RNG: 17, Joiners: nil},
			{ID: 3, Name: "worker", Status: 1, CPU: 0, Cycles: 5000, RNG: 99, Joiners: []int64{1}},
		},
		Sched: SchedState{
			DispatchCount: 42, Escapes: 1,
			Ops:        [8]uint64{1, 2, 3, 4, 5, 6, 7, 8},
			Quarantine: []bool{false, true, false, false},
			Global:     []GlobalEntry{{Thread: 7, Stamp: 11}, {Thread: -1, Stamp: 12}},
			Spawn:      [][]int64{{5, 6}, nil, {8}, nil},
			Heaps:      [][]int64{{3}, nil, nil, nil},
			Threads: []SchedThread{
				{ID: 3, Running: true, Entries: []SchedEntry{
					{CPU: 0, S: 12.5, SLast: math.Copysign(0, -1), M0: 700, Prio: 0.25, DispatchS: 5e-310, DispatchM: 690, HeapIdx: -1},
				}},
				{ID: 7, Runnable: true, InGlobal: true},
			},
		},
		Graph: []GraphEdge{{From: 3, To: 7, Q: 0.5}, {From: 7, To: 3, Q: 1}},
		Health: []HealthState{
			{OK: 40, Suspect: 2, Rejected: 1, Quarantines: 1, Recoveries: 0, StreakRejected: 0, StreakClean: 3, Frozen: 1, Quarantined: true},
			{OK: 44},
		},
		ModelFLOPs: 123456,
		ObsDigest:  0x1122334455667788,
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleState()
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !Equal(want, got) {
		t.Fatalf("round trip diverged: %v", Diff(want, got))
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprints differ after round trip")
	}
	// Empty state must round-trip too.
	var empty State
	buf.Reset()
	if err := empty.Save(&buf); err != nil {
		t.Fatalf("Save empty: %v", err)
	}
	got2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if !Equal(&empty, got2) {
		t.Fatalf("empty state did not round trip: %v", Diff(&empty, got2))
	}
}

func TestFingerprintSensitive(t *testing.T) {
	a := sampleState()
	b := sampleState()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical states have different fingerprints")
	}
	b.Sched.Threads[0].Entries[0].S += 1e-9
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("fingerprint ignored an S perturbation")
	}
}

func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleState().Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func TestLoadRejectsCorruption(t *testing.T) {
	good := encodeSample(t)

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		_, err := Load(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b[8:12], Version+1)
		_, err := Load(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-1] ^= 0x40 // flip a payload bit
		_, err := Load(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("want checksum error, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		_, err := Load(bytes.NewReader(good[:10]))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("want truncation error, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, err := Load(bytes.NewReader(good[:len(good)-5]))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("want truncation error, got %v", err)
		}
	})
	t.Run("trailing garbage inside declared length", func(t *testing.T) {
		// Append bytes to the payload and fix up length+CRC: the
		// decoder must notice it did not consume everything.
		payload := append(append([]byte(nil), good[28:]...), 0, 0, 0)
		b := append([]byte(nil), good[:28]...)
		binary.LittleEndian.PutUint64(b[12:20], uint64(len(payload)))
		sum := crcOf(payload)
		binary.LittleEndian.PutUint64(b[20:28], sum)
		b = append(b, payload...)
		_, err := Load(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("want trailing-bytes error, got %v", err)
		}
	})
	t.Run("hostile count", func(t *testing.T) {
		// A payload that is just a huge element count must be rejected
		// before allocation, not OOM.
		payload := binary.AppendUvarint(nil, 1<<40)
		b := make([]byte, 28)
		copy(b, good[:8])
		binary.LittleEndian.PutUint32(b[8:12], Version)
		binary.LittleEndian.PutUint64(b[12:20], uint64(len(payload)))
		binary.LittleEndian.PutUint64(b[20:28], crcOf(payload))
		b = append(b, payload...)
		_, err := Load(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "count") {
			t.Fatalf("want count error, got %v", err)
		}
	})
}

func crcOf(p []byte) uint64 {
	return crc64.Checksum(p, crc64.MakeTable(crc64.ECMA))
}

func TestDiffNamesFirstDivergence(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*State)
		want   string
	}{
		{"config", func(s *State) { s.Config[1].V = "8" }, "config"},
		{"seed", func(s *State) { s.Seed++ }, "seed"},
		{"clock", func(s *State) { s.Now++ }, "virtual clock"},
		{"cpu", func(s *State) { s.CPUs[1].Misses++ }, "cpu 1"},
		{"thread", func(s *State) { s.Threads[1].Cycles++ }, "thread t3"},
		{"joiner", func(s *State) { s.Threads[1].Joiners[0] = 2 }, "joiner"},
		{"sched entry", func(s *State) { s.Sched.Threads[0].Entries[0].S = 13 }, "sched entry"},
		{"heap", func(s *State) { s.Sched.Heaps[0][0] = 7 }, "heap"},
		{"graph", func(s *State) { s.Graph[0].Q = 0.75 }, "graph edge"},
		{"health", func(s *State) { s.Health[0].Rejected++ }, "health"},
		{"obs", func(s *State) { s.ObsDigest++ }, "obs digest"},
		{"negzero", func(s *State) { s.Sched.Threads[0].Entries[0].SLast = 0 }, "sched entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := sampleState(), sampleState()
			if err := Diff(a, b); err != nil {
				t.Fatalf("equal states diffed: %v", err)
			}
			tc.mutate(b)
			err := Diff(a, b)
			if err == nil {
				t.Fatalf("mutation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diff %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := sampleState()
	if err := s.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !Equal(s, got) {
		t.Fatalf("file round trip diverged: %v", Diff(s, got))
	}
	// Overwrite with a different state: the file must end up as
	// exactly the new snapshot and no temp files may linger.
	s2 := sampleState()
	s2.Steps = 999999
	if err := s2.WriteFile(path); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile after overwrite: %v", err)
	}
	if got2.Steps != 999999 {
		t.Fatalf("overwrite not visible: steps=%d", got2.Steps)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "run.ckpt" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after atomic writes: %v", names)
	}
}

func TestConfigValue(t *testing.T) {
	s := sampleState()
	if got := s.ConfigValue("policy"); got != "affinity" {
		t.Fatalf("ConfigValue(policy) = %q", got)
	}
	if got := s.ConfigValue("absent"); got != "" {
		t.Fatalf("ConfigValue(absent) = %q", got)
	}
}
