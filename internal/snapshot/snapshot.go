// Package snapshot defines the versioned, checksummed on-disk format
// for engine checkpoints: one State value is a bit-exact capture of
// the complete locality-runtime state at a virtual-cycle boundary —
// the thread table and run states, the scheduler's footprint entries
// S/SLast/M0/priority and queue structures, the dependency graph G
// with its q weights, the counter sanitizer and quarantine state, the
// per-CPU virtual clocks, counters and pending timers, every RNG
// stream, and a digest of the observability registries.
//
// The engine is a deterministic sequential simulation, so a snapshot
// does not need to serialize thread stacks (which live on Go
// goroutines and cannot be captured): a resumed run re-executes
// deterministically from the start, and when it reaches the snapshot's
// step cursor the live state is compared against the capture
// bit-for-bit. A match proves the resumed run is the same run — every
// later golden, trace and export is then byte-identical to an
// uninterrupted run by construction — while any divergence (different
// binary, different flags, corrupted file) fails loudly with a
// field-level diff instead of silently producing different science.
// docs/SNAPSHOT.md is the format reference.
//
// Files are written atomically (temp file + fsync + rename, via
// internal/fsatomic), so a process killed mid-checkpoint leaves either
// the previous complete snapshot or the new one — never a torn file.
// Load validates the magic, version, length and CRC before decoding,
// decodes with bounds checks everywhere, and returns descriptive
// errors — it never panics on malformed input (FuzzLoadSnapshot pins
// this, mirroring the internal/trace fuzz pattern).
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"

	"repro/internal/fsatomic"
)

// Version is the current snapshot format version. Bump it on any
// change to the payload layout; Load refuses other versions with a
// descriptive error (see docs/SNAPSHOT.md for the compatibility
// policy: snapshots are re-creatable from the run config, so there is
// no cross-version migration — a version skew means "re-run").
const Version = 1

// magic identifies a snapshot file. The trailing \r\n catches ASCII
// transfer mangling, as PNG's magic does.
var magic = [8]byte{'A', 'T', 'S', 'N', 'A', 'P', '\r', '\n'}

// crcTable is the ECMA polynomial table used for the payload checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// maxStringLen bounds any decoded string (names, config values,
// diagnostics) so a hostile length prefix cannot drive a huge
// allocation.
const maxStringLen = 1 << 20

// KV is one runner-level configuration pair recorded in the snapshot
// (application name, policy, scale, fault spec, ...). The engine
// treats it as opaque; resume compares it so a snapshot cannot be
// silently applied to a differently-configured run.
type KV struct {
	K, V string
}

// CPUState is one processor's captured state.
type CPUState struct {
	// Clock is the CPU's virtual cycle clock.
	Clock uint64
	// Misses is the cumulative 64-bit E-cache miss count m(t).
	Misses uint64
	// Refs/Hits are the wrapped 32-bit PIC readings at capture.
	Refs, Hits uint32
	// BaseRefs/BaseHits are the PIC readings at the last dispatch on
	// this CPU (the engine's picBase — the open interval's start).
	BaseRefs, BaseHits uint32
	// Idle is the accumulated parked cycles; Dispatches the
	// context-switch count.
	Idle, Dispatches uint64
	// Parked reports whether the CPU is idle-parked.
	Parked bool
	// Running is the thread installed on the CPU, or -1.
	Running int64
}

// TimerState is one pending sleep deadline.
type TimerState struct {
	WakeAt, Seq uint64
	Thread      int64
}

// ThreadState is one thread's engine-level state. The thread's stack
// is not captured (resume re-executes the body); everything the engine
// tracks about it is.
type ThreadState struct {
	ID     int64
	Name   string
	Status uint8
	// BlockedOn names what a blocked thread waits for ("" otherwise) —
	// it captures the wait-for relationships the sync objects hold.
	BlockedOn string
	CPU       int32
	Cycles    uint64
	// DispatchClock/DispatchCount/DispatchMisses/ReadyClock mirror the
	// engine's per-thread accounting fields of the same names.
	DispatchClock  uint64
	DispatchCount  uint64
	DispatchMisses uint64
	ReadyClock     uint64
	// RNG is the thread's SplitMix64 stream state.
	RNG uint64
	// Joiners are the threads blocked in Join on this one.
	Joiners []int64
}

// SchedEntry is one (thread, CPU) footprint record of the scheduler.
// Floats are compared bit-exactly by Diff.
type SchedEntry struct {
	CPU       int32
	S         float64
	SLast     float64
	M0        uint64
	Prio      float64
	DispatchS float64
	DispatchM uint64
	HeapIdx   int32
}

// SchedThread is the scheduler's view of one thread.
type SchedThread struct {
	ID       int64
	Runnable bool
	Running  bool
	InGlobal bool
	InSpawn  bool
	Entries  []SchedEntry
}

// GlobalEntry is one global-FIFO position (including lazily deleted
// ones — the raw queue is deterministic and is captured as stored).
type GlobalEntry struct {
	Thread int64
	Stamp  uint64
}

// SchedState is the complete scheduler capture.
type SchedState struct {
	DispatchCount uint64
	Escapes       uint64
	// Ops are the data-structure work counters in declaration order:
	// pushes, pops, fixes, removes, queue ops, steals, prio updates,
	// demotions.
	Ops [8]uint64
	// Quarantine is the per-CPU quarantine flag (mirrors Health but is
	// the scheduler's own view; the two must agree).
	Quarantine []bool
	// Global is the global FIFO from its head cursor onward.
	Global []GlobalEntry
	// Spawn is each CPU's spawn stack (raw, oldest first).
	Spawn [][]int64
	// Heaps is each CPU's priority heap in array order.
	Heaps [][]int64
	// Threads is sorted by ID.
	Threads []SchedThread
}

// GraphEdge is one dependency edge with its sharing coefficient.
type GraphEdge struct {
	From, To int64
	Q        float64
}

// HealthState is one CPU's sanitizer/quarantine state machine capture.
type HealthState struct {
	OK, Suspect, Rejected   uint64
	Quarantines, Recoveries uint64
	StreakRejected          int64
	StreakClean             int64
	Frozen                  int64
	Quarantined             bool
}

// State is one complete engine capture. All fields participate in the
// canonical encoding; two States are "the same state" exactly when
// their Encode bytes are equal.
type State struct {
	// Config is the runner-level run configuration, sorted by key.
	Config []KV
	// Policy/NCPU/CacheLines/Seed pin the engine geometry a resume
	// must reproduce.
	Policy     string
	NCPU       int32
	CacheLines int64
	Seed       uint64

	// CheckpointEvery is the virtual-cycle checkpoint interval the run
	// was using; NextCheckpoint the boundary after this one. Resume
	// inherits both so a resumed run writes the same later
	// checkpoints an uninterrupted run would.
	CheckpointEvery uint64
	NextCheckpoint  uint64

	// Steps is the engine-step cursor the capture was taken at (top of
	// the run loop, before the step executes); Now the engine's global
	// virtual clock there.
	Steps uint64
	Now   uint64

	NextID   int64
	Live     int32
	TimerSeq uint64
	// EngineRNG is the engine's own SplitMix64 state.
	EngineRNG uint64

	CPUs    []CPUState
	Timers  []TimerState
	Threads []ThreadState
	Sched   SchedState
	Graph   []GraphEdge
	Health  []HealthState

	// ModelFLOPs is the model's floating-point operation count.
	ModelFLOPs uint64
	// ObsDigest is a 64-bit FNV-1a digest of the observability state
	// (metric registries and event rings), or 0 when observability is
	// off.
	ObsDigest uint64
}

// ConfigValue returns the value of config key k, or "".
func (s *State) ConfigValue(k string) string {
	for _, kv := range s.Config {
		if kv.K == k {
			return kv.V
		}
	}
	return ""
}

// Fingerprint is the CRC64 of the canonical encoding — a compact
// identity for "this exact state" (the soak harness compares final
// fingerprints across kill/resume schedules).
func (s *State) Fingerprint() uint64 {
	return crc64.Checksum(s.encodePayload(), crcTable)
}

// Save writes the snapshot to w: magic, version, payload length,
// payload CRC64, payload.
func (s *State) Save(w io.Writer) error {
	payload := s.encodePayload()
	var hdr [28]byte
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[20:28], crc64.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	return nil
}

// WriteFile atomically writes the snapshot to path (temp + fsync +
// rename): a kill at any instant leaves either the previous complete
// snapshot or this one.
func (s *State) WriteFile(path string) error {
	return fsatomic.WriteFile(path, func(w io.Writer) error { return s.Save(w) })
}

// Load reads and validates a snapshot. Errors are descriptive
// (truncation offsets, version skew, checksum mismatch); malformed
// input never panics.
func Load(r io.Reader) (*State, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: header: %w (file truncated or not a snapshot)", err)
	}
	if !bytes.Equal(hdr[0:8], magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a snapshot file)", hdr[0:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != Version {
		return nil, fmt.Errorf("snapshot: format version %d; this binary reads version %d — re-run from the original configuration instead of resuming", version, Version)
	}
	size := binary.LittleEndian.Uint64(hdr[12:20])
	const maxPayload = 1 << 31
	if size > maxPayload {
		return nil, fmt.Errorf("snapshot: payload length %d exceeds the %d-byte bound", size, maxPayload)
	}
	payload := make([]byte, size)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("snapshot: payload truncated at byte %d of %d: %w", n, size, err)
	}
	want := binary.LittleEndian.Uint64(hdr[20:28])
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (stored %016x, computed %016x): file corrupted", want, got)
	}
	d := &decoder{buf: payload}
	st := d.state()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after state at offset %d", len(d.buf)-d.off, d.off)
	}
	return st, nil
}

// LoadFile loads a snapshot from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	st, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return st, nil
}

// ---- encoding ----
//
// The payload is a flat little-endian stream: fixed-width integers,
// float64 as IEEE bits, strings and slices with uvarint length
// prefixes. Field order is the State declaration order; the encoding
// is canonical (one State value has exactly one encoding), which is
// what lets verification compare encoded bytes.

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool)   { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) count(n int)   { e.buf = binary.AppendUvarint(e.buf, uint64(n)) }
func (e *encoder) str(s string) {
	e.count(len(s))
	e.buf = append(e.buf, s...)
}

func (s *State) encodePayload() []byte {
	e := &encoder{buf: make([]byte, 0, 4096)}
	e.count(len(s.Config))
	for _, kv := range s.Config {
		e.str(kv.K)
		e.str(kv.V)
	}
	e.str(s.Policy)
	e.i32(s.NCPU)
	e.i64(s.CacheLines)
	e.u64(s.Seed)
	e.u64(s.CheckpointEvery)
	e.u64(s.NextCheckpoint)
	e.u64(s.Steps)
	e.u64(s.Now)
	e.i64(s.NextID)
	e.i32(s.Live)
	e.u64(s.TimerSeq)
	e.u64(s.EngineRNG)
	e.count(len(s.CPUs))
	for _, c := range s.CPUs {
		e.u64(c.Clock)
		e.u64(c.Misses)
		e.u32(c.Refs)
		e.u32(c.Hits)
		e.u32(c.BaseRefs)
		e.u32(c.BaseHits)
		e.u64(c.Idle)
		e.u64(c.Dispatches)
		e.bool(c.Parked)
		e.i64(c.Running)
	}
	e.count(len(s.Timers))
	for _, t := range s.Timers {
		e.u64(t.WakeAt)
		e.u64(t.Seq)
		e.i64(t.Thread)
	}
	e.count(len(s.Threads))
	for _, t := range s.Threads {
		e.i64(t.ID)
		e.str(t.Name)
		e.u8(t.Status)
		e.str(t.BlockedOn)
		e.i32(t.CPU)
		e.u64(t.Cycles)
		e.u64(t.DispatchClock)
		e.u64(t.DispatchCount)
		e.u64(t.DispatchMisses)
		e.u64(t.ReadyClock)
		e.u64(t.RNG)
		e.count(len(t.Joiners))
		for _, j := range t.Joiners {
			e.i64(j)
		}
	}
	e.u64(s.Sched.DispatchCount)
	e.u64(s.Sched.Escapes)
	for _, op := range s.Sched.Ops {
		e.u64(op)
	}
	e.count(len(s.Sched.Quarantine))
	for _, q := range s.Sched.Quarantine {
		e.bool(q)
	}
	e.count(len(s.Sched.Global))
	for _, g := range s.Sched.Global {
		e.i64(g.Thread)
		e.u64(g.Stamp)
	}
	e.count(len(s.Sched.Spawn))
	for _, stack := range s.Sched.Spawn {
		e.count(len(stack))
		for _, tid := range stack {
			e.i64(tid)
		}
	}
	e.count(len(s.Sched.Heaps))
	for _, h := range s.Sched.Heaps {
		e.count(len(h))
		for _, tid := range h {
			e.i64(tid)
		}
	}
	e.count(len(s.Sched.Threads))
	for _, t := range s.Sched.Threads {
		e.i64(t.ID)
		e.bool(t.Runnable)
		e.bool(t.Running)
		e.bool(t.InGlobal)
		e.bool(t.InSpawn)
		e.count(len(t.Entries))
		for _, en := range t.Entries {
			e.i32(en.CPU)
			e.f64(en.S)
			e.f64(en.SLast)
			e.u64(en.M0)
			e.f64(en.Prio)
			e.f64(en.DispatchS)
			e.u64(en.DispatchM)
			e.i32(en.HeapIdx)
		}
	}
	e.count(len(s.Graph))
	for _, g := range s.Graph {
		e.i64(g.From)
		e.i64(g.To)
		e.f64(g.Q)
	}
	e.count(len(s.Health))
	for _, h := range s.Health {
		e.u64(h.OK)
		e.u64(h.Suspect)
		e.u64(h.Rejected)
		e.u64(h.Quarantines)
		e.u64(h.Recoveries)
		e.i64(h.StreakRejected)
		e.i64(h.StreakClean)
		e.i64(h.Frozen)
		e.bool(h.Quarantined)
	}
	e.u64(s.ModelFLOPs)
	e.u64(s.ObsDigest)
	return e.buf
}

// ---- decoding ----

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format+" (payload offset %d)", append(args, d.off)...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("need %d bytes, %d remain", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool {
	switch v := d.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte %d", v)
		return false
	}
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a uvarint element count and bounds it: each element of
// the section needs at least elemSize payload bytes, so a count larger
// than remaining/elemSize is provably corrupt and is rejected before
// any allocation.
func (d *decoder) count(elemSize int) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint count")
		return 0
	}
	d.off += n
	if remain := len(d.buf) - d.off; v > uint64(remain/elemSize) {
		d.fail("count %d exceeds remaining payload (%d bytes)", v, remain)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count(1)
	if n > maxStringLen {
		d.fail("string length %d exceeds %d", n, maxStringLen)
		return ""
	}
	b := d.take(n)
	return string(b)
}

func (d *decoder) state() *State {
	s := &State{}
	for i, n := 0, d.count(2); i < n && d.err == nil; i++ {
		s.Config = append(s.Config, KV{K: d.str(), V: d.str()})
	}
	s.Policy = d.str()
	s.NCPU = d.i32()
	s.CacheLines = d.i64()
	s.Seed = d.u64()
	s.CheckpointEvery = d.u64()
	s.NextCheckpoint = d.u64()
	s.Steps = d.u64()
	s.Now = d.u64()
	s.NextID = d.i64()
	s.Live = d.i32()
	s.TimerSeq = d.u64()
	s.EngineRNG = d.u64()
	for i, n := 0, d.count(49); i < n && d.err == nil; i++ {
		s.CPUs = append(s.CPUs, CPUState{
			Clock: d.u64(), Misses: d.u64(),
			Refs: d.u32(), Hits: d.u32(), BaseRefs: d.u32(), BaseHits: d.u32(),
			Idle: d.u64(), Dispatches: d.u64(), Parked: d.bool(), Running: d.i64(),
		})
	}
	for i, n := 0, d.count(24); i < n && d.err == nil; i++ {
		s.Timers = append(s.Timers, TimerState{WakeAt: d.u64(), Seq: d.u64(), Thread: d.i64()})
	}
	for i, n := 0, d.count(64); i < n && d.err == nil; i++ {
		t := ThreadState{
			ID: d.i64(), Name: d.str(), Status: d.u8(), BlockedOn: d.str(),
			CPU: d.i32(), Cycles: d.u64(), DispatchClock: d.u64(),
			DispatchCount: d.u64(), DispatchMisses: d.u64(), ReadyClock: d.u64(),
			RNG: d.u64(),
		}
		for j, m := 0, d.count(8); j < m && d.err == nil; j++ {
			t.Joiners = append(t.Joiners, d.i64())
		}
		s.Threads = append(s.Threads, t)
	}
	s.Sched.DispatchCount = d.u64()
	s.Sched.Escapes = d.u64()
	for i := range s.Sched.Ops {
		s.Sched.Ops[i] = d.u64()
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		s.Sched.Quarantine = append(s.Sched.Quarantine, d.bool())
	}
	for i, n := 0, d.count(16); i < n && d.err == nil; i++ {
		s.Sched.Global = append(s.Sched.Global, GlobalEntry{Thread: d.i64(), Stamp: d.u64()})
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		var stack []int64
		for j, m := 0, d.count(8); j < m && d.err == nil; j++ {
			stack = append(stack, d.i64())
		}
		s.Sched.Spawn = append(s.Sched.Spawn, stack)
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		var h []int64
		for j, m := 0, d.count(8); j < m && d.err == nil; j++ {
			h = append(h, d.i64())
		}
		s.Sched.Heaps = append(s.Sched.Heaps, h)
	}
	for i, n := 0, d.count(13); i < n && d.err == nil; i++ {
		t := SchedThread{
			ID: d.i64(), Runnable: d.bool(), Running: d.bool(),
			InGlobal: d.bool(), InSpawn: d.bool(),
		}
		for j, m := 0, d.count(48); j < m && d.err == nil; j++ {
			t.Entries = append(t.Entries, SchedEntry{
				CPU: d.i32(), S: d.f64(), SLast: d.f64(), M0: d.u64(),
				Prio: d.f64(), DispatchS: d.f64(), DispatchM: d.u64(), HeapIdx: d.i32(),
			})
		}
		s.Sched.Threads = append(s.Sched.Threads, t)
	}
	for i, n := 0, d.count(24); i < n && d.err == nil; i++ {
		s.Graph = append(s.Graph, GraphEdge{From: d.i64(), To: d.i64(), Q: d.f64()})
	}
	for i, n := 0, d.count(65); i < n && d.err == nil; i++ {
		s.Health = append(s.Health, HealthState{
			OK: d.u64(), Suspect: d.u64(), Rejected: d.u64(),
			Quarantines: d.u64(), Recoveries: d.u64(),
			StreakRejected: d.i64(), StreakClean: d.i64(), Frozen: d.i64(),
			Quarantined: d.bool(),
		})
	}
	s.ModelFLOPs = d.u64()
	s.ObsDigest = d.u64()
	return s
}

// ---- comparison ----

// Equal reports whether a and b are the same state (canonical
// encodings are byte-equal; floats compare as bits).
func Equal(a, b *State) bool {
	return bytes.Equal(a.encodePayload(), b.encodePayload())
}

// Diff returns nil when the states are equal, or a descriptive error
// naming the first field-level divergence. It is the message behind
// resume-verification failures, so it favours precision: which
// section, which CPU or thread, stored vs live value.
func Diff(stored, live *State) error {
	if Equal(stored, live) {
		return nil
	}
	if d := diffConfig(stored, live); d != nil {
		return d
	}
	if stored.Policy != live.Policy {
		return fmt.Errorf("snapshot: policy %q != live %q", stored.Policy, live.Policy)
	}
	if stored.NCPU != live.NCPU {
		return fmt.Errorf("snapshot: ncpu %d != live %d", stored.NCPU, live.NCPU)
	}
	if stored.CacheLines != live.CacheLines {
		return fmt.Errorf("snapshot: cache lines %d != live %d", stored.CacheLines, live.CacheLines)
	}
	if stored.Seed != live.Seed {
		return fmt.Errorf("snapshot: seed %d != live %d", stored.Seed, live.Seed)
	}
	if stored.Steps != live.Steps {
		return fmt.Errorf("snapshot: step cursor %d != live %d", stored.Steps, live.Steps)
	}
	if stored.Now != live.Now {
		return fmt.Errorf("snapshot: virtual clock %d != live %d", stored.Now, live.Now)
	}
	if stored.NextID != live.NextID || stored.Live != live.Live {
		return fmt.Errorf("snapshot: thread census (next id %d, live %d) != live (%d, %d)",
			stored.NextID, stored.Live, live.NextID, live.Live)
	}
	if stored.TimerSeq != live.TimerSeq || len(stored.Timers) != len(live.Timers) {
		return fmt.Errorf("snapshot: timers (seq %d, %d pending) != live (seq %d, %d pending)",
			stored.TimerSeq, len(stored.Timers), live.TimerSeq, len(live.Timers))
	}
	if stored.EngineRNG != live.EngineRNG {
		return fmt.Errorf("snapshot: engine rng %#x != live %#x", stored.EngineRNG, live.EngineRNG)
	}
	for i := range stored.Timers {
		if stored.Timers[i] != live.Timers[i] {
			return fmt.Errorf("snapshot: timer %d %+v != live %+v", i, stored.Timers[i], live.Timers[i])
		}
	}
	for i := range stored.CPUs {
		if i < len(live.CPUs) && stored.CPUs[i] != live.CPUs[i] {
			return fmt.Errorf("snapshot: cpu %d %+v != live %+v", i, stored.CPUs[i], live.CPUs[i])
		}
	}
	if d := diffThreads(stored.Threads, live.Threads); d != nil {
		return d
	}
	if d := diffSched(&stored.Sched, &live.Sched); d != nil {
		return d
	}
	if len(stored.Graph) != len(live.Graph) {
		return fmt.Errorf("snapshot: graph has %d edges, live %d", len(stored.Graph), len(live.Graph))
	}
	for i := range stored.Graph {
		a, b := stored.Graph[i], live.Graph[i]
		if a.From != b.From || a.To != b.To || math.Float64bits(a.Q) != math.Float64bits(b.Q) {
			return fmt.Errorf("snapshot: graph edge %d (%d->%d q=%v) != live (%d->%d q=%v)",
				i, a.From, a.To, a.Q, b.From, b.To, b.Q)
		}
	}
	for i := range stored.Health {
		if i < len(live.Health) && stored.Health[i] != live.Health[i] {
			return fmt.Errorf("snapshot: cpu %d health %+v != live %+v", i, stored.Health[i], live.Health[i])
		}
	}
	if len(stored.Health) != len(live.Health) {
		return fmt.Errorf("snapshot: health records %d != live %d", len(stored.Health), len(live.Health))
	}
	if stored.ModelFLOPs != live.ModelFLOPs {
		return fmt.Errorf("snapshot: model flops %d != live %d", stored.ModelFLOPs, live.ModelFLOPs)
	}
	if stored.ObsDigest != live.ObsDigest {
		return fmt.Errorf("snapshot: obs digest %016x != live %016x", stored.ObsDigest, live.ObsDigest)
	}
	if stored.CheckpointEvery != live.CheckpointEvery || stored.NextCheckpoint != live.NextCheckpoint {
		return fmt.Errorf("snapshot: checkpoint schedule (every %d, next %d) != live (every %d, next %d)",
			stored.CheckpointEvery, stored.NextCheckpoint, live.CheckpointEvery, live.NextCheckpoint)
	}
	return fmt.Errorf("snapshot: states differ (encoding mismatch not attributed to a named field)")
}

func diffConfig(stored, live *State) error {
	if len(stored.Config) != len(live.Config) {
		return fmt.Errorf("snapshot: config has %d keys, live run %d", len(stored.Config), len(live.Config))
	}
	for i := range stored.Config {
		if stored.Config[i] != live.Config[i] {
			return fmt.Errorf("snapshot: config %s=%q, live run %s=%q",
				stored.Config[i].K, stored.Config[i].V, live.Config[i].K, live.Config[i].V)
		}
	}
	return nil
}

func diffThreads(stored, live []ThreadState) error {
	if len(stored) != len(live) {
		return fmt.Errorf("snapshot: %d threads, live %d", len(stored), len(live))
	}
	for i := range stored {
		a, b := stored[i], live[i]
		if a.ID != b.ID || a.Name != b.Name || a.Status != b.Status ||
			a.BlockedOn != b.BlockedOn || a.CPU != b.CPU || a.Cycles != b.Cycles ||
			a.DispatchClock != b.DispatchClock || a.DispatchCount != b.DispatchCount ||
			a.DispatchMisses != b.DispatchMisses || a.ReadyClock != b.ReadyClock ||
			a.RNG != b.RNG {
			return fmt.Errorf("snapshot: thread t%d %+v != live %+v", a.ID, a, b)
		}
		if !int64sEqual(a.Joiners, b.Joiners) {
			return fmt.Errorf("snapshot: thread t%d joiner list %v != live %v", a.ID, a.Joiners, b.Joiners)
		}
	}
	return nil
}

func diffSched(stored, live *SchedState) error {
	if stored.DispatchCount != live.DispatchCount || stored.Escapes != live.Escapes {
		return fmt.Errorf("snapshot: sched dispatches/escapes (%d, %d) != live (%d, %d)",
			stored.DispatchCount, stored.Escapes, live.DispatchCount, live.Escapes)
	}
	if stored.Ops != live.Ops {
		return fmt.Errorf("snapshot: sched ops %v != live %v", stored.Ops, live.Ops)
	}
	if len(stored.Threads) != len(live.Threads) {
		return fmt.Errorf("snapshot: sched tracks %d threads, live %d", len(stored.Threads), len(live.Threads))
	}
	for i := range stored.Threads {
		a, b := stored.Threads[i], live.Threads[i]
		if a.ID != b.ID || a.Runnable != b.Runnable || a.Running != b.Running ||
			a.InGlobal != b.InGlobal || a.InSpawn != b.InSpawn || len(a.Entries) != len(b.Entries) {
			return fmt.Errorf("snapshot: sched thread t%d flags %+v != live %+v", a.ID, a, b)
		}
		for j := range a.Entries {
			ea, eb := a.Entries[j], b.Entries[j]
			if ea.CPU != eb.CPU || ea.M0 != eb.M0 || ea.DispatchM != eb.DispatchM || ea.HeapIdx != eb.HeapIdx ||
				math.Float64bits(ea.S) != math.Float64bits(eb.S) ||
				math.Float64bits(ea.SLast) != math.Float64bits(eb.SLast) ||
				math.Float64bits(ea.Prio) != math.Float64bits(eb.Prio) ||
				math.Float64bits(ea.DispatchS) != math.Float64bits(eb.DispatchS) {
				return fmt.Errorf("snapshot: sched entry (t%d, cpu%d) %+v != live %+v", a.ID, ea.CPU, ea, eb)
			}
		}
	}
	for cpu := range stored.Heaps {
		if cpu < len(live.Heaps) && !int64sEqual(stored.Heaps[cpu], live.Heaps[cpu]) {
			return fmt.Errorf("snapshot: cpu %d heap %v != live %v", cpu, stored.Heaps[cpu], live.Heaps[cpu])
		}
	}
	for cpu := range stored.Spawn {
		if cpu < len(live.Spawn) && !int64sEqual(stored.Spawn[cpu], live.Spawn[cpu]) {
			return fmt.Errorf("snapshot: cpu %d spawn stack %v != live %v", cpu, stored.Spawn[cpu], live.Spawn[cpu])
		}
	}
	if len(stored.Global) != len(live.Global) {
		return fmt.Errorf("snapshot: global queue holds %d entries, live %d", len(stored.Global), len(live.Global))
	}
	for i := range stored.Global {
		if stored.Global[i] != live.Global[i] {
			return fmt.Errorf("snapshot: global queue entry %d %+v != live %+v", i, stored.Global[i], live.Global[i])
		}
	}
	for cpu := range stored.Quarantine {
		if cpu < len(live.Quarantine) && stored.Quarantine[cpu] != live.Quarantine[cpu] {
			return fmt.Errorf("snapshot: cpu %d quarantine %v != live %v", cpu, stored.Quarantine[cpu], live.Quarantine[cpu])
		}
	}
	return nil
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
