// Package xrand provides a small, fast, deterministic random number
// generator for the simulator. Everything in the reproduction that needs
// randomness draws from an explicitly seeded xrand.Source so that every
// experiment is exactly repeatable; nothing uses math/rand global state
// or other ambient nondeterminism.
//
// The generator is SplitMix64 (Steele, Lea & Flood), which has excellent
// statistical quality for simulation workloads and a trivially seedable
// 64-bit state.
package xrand

import "math/bits"

// Source is a deterministic 64-bit PRNG. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value. Equal seeds produce
// equal streams.
func New(seed uint64) *Source { return &Source{state: seed} }

// State returns the generator's current internal state. Two Sources
// with equal states produce equal future streams; checkpointing
// captures it so a resumed run can verify its RNG position bit-exactly.
func (s *Source) State() uint64 { return s.state }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		// Invariant: a zero bound is a programming error at the call site.
		panic("xrand: Uint64n with n == 0")
	}
	// Multiply-shift bound (Lemire). The bias for simulation-sized n
	// (far below 2^64) is negligible, and determinism matters more
	// than perfect uniformity here.
	hi, _ := bits.Mul64(s.Uint64(), n)
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		// Invariant: a non-positive bound is a programming error.
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Geometric returns a sample from a geometric distribution with mean m
// (number of trials until first success, minimum 1). It is used to draw
// run lengths for clustered reference streams.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function, as math/rand.Shuffle does.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new Source whose stream is independent of the
// receiver's future output. It is used to give each simulated thread or
// generator its own stream so that adding one consumer does not perturb
// the draws seen by another.
func (s *Source) Split() *Source { return New(s.Uint64() ^ 0xa5a5a5a5deadbeef) }
