package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds matched on %d of 1000 draws", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(1)
	for _, n := range []uint64{1, 2, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 16 buckets over 160k draws should each
	// hold close to 10k.
	s := New(99)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[s.Intn(16)]++
	}
	for b, c := range buckets {
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d has %d draws, want ~10000", b, c)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(5)
	const n = 200000
	for _, mean := range []float64{1, 2, 6, 20} {
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Geometric(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05 {
			t.Errorf("Geometric(%v) mean = %v", mean, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(3)
	child := s.Split()
	// The child stream must not replicate the parent's next draws.
	match := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == child.Uint64() {
			match++
		}
	}
	if match > 0 {
		t.Errorf("split stream matched parent on %d draws", match)
	}
}

func TestShuffle(t *testing.T) {
	s := New(17)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 10)
	moved := false
	for i, x := range v {
		seen[x] = true
		if x != i {
			moved = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
	if !moved {
		t.Error("shuffle left slice identical (astronomically unlikely)")
	}
}
