package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("content = %q", b)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content after overwrite = %q", b)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "intact")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "torn prefix that must never land")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "intact" {
		t.Fatalf("failed write clobbered the file: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp files left behind after failure: %v", ents)
	}
}

func TestWriteFileBadDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
