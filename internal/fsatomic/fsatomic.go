// Package fsatomic writes files atomically: content goes to a
// temporary file in the destination directory, is fsynced, and is
// renamed over the target only when complete. A reader (or a process
// resuming after a crash) therefore sees either the previous complete
// file or the new complete file — never a torn prefix. Every on-disk
// artifact a run may need to survive a kill — snapshots, trace
// exports, metrics exports — goes through this package.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Fault-injection seams. Production code never reassigns these; the
// fault tests swap them to simulate ENOSPC, short writes, a failing
// fsync, and a failing rename at each step of the protocol, and assert
// the destination is never torn or missing its old content.
var (
	createTemp = os.CreateTemp
	syncFile   = (*os.File).Sync
	renameFile = os.Rename
)

// WriteFile atomically replaces path with whatever write produces. The
// temporary file lives in path's directory (rename must not cross
// filesystems) and is removed on any failure. The data is fsynced
// before the rename so a crash immediately after WriteFile returns
// cannot lose it; the directory is fsynced afterwards (best effort —
// some filesystems refuse directory syncs) so the rename itself is
// durable too.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := createTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsatomic: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := syncFile(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: %s: %w", path, err)
	}
	if err := renameFile(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Failures are ignored: not every filesystem supports it, and the
// rename's atomicity (the property the exporters rely on) holds
// regardless.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
