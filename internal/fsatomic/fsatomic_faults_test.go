package fsatomic

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/retry"
)

// swapHooks installs fault hooks for one test and restores the real
// implementations afterwards. The fault tests run sequentially (no
// t.Parallel) because the seams are package globals.
func swapHooks(t *testing.T, create func(string, string) (*os.File, error),
	sync func(*os.File) error, rename func(string, string) error) {
	t.Helper()
	prevCreate, prevSync, prevRename := createTemp, syncFile, renameFile
	if create != nil {
		createTemp = create
	}
	if sync != nil {
		syncFile = sync
	}
	if rename != nil {
		renameFile = rename
	}
	t.Cleanup(func() {
		createTemp, syncFile, renameFile = prevCreate, prevSync, prevRename
	})
}

// checkIntact asserts the core atomicity property after a failed
// WriteFile: the destination either holds exactly its previous content
// or (if it never existed) is still absent — never a torn or empty
// intermediate — and no temp litter is left behind.
func checkIntact(t *testing.T, path, wantOld string) {
	t.Helper()
	data, err := os.ReadFile(path)
	switch {
	case wantOld == "" && err == nil:
		t.Fatalf("destination %s exists after failed write to a fresh path: %q", path, data)
	case wantOld == "" && !errors.Is(err, os.ErrNotExist):
		t.Fatalf("reading %s: %v", path, err)
	case wantOld != "" && err != nil:
		t.Fatalf("destination %s lost its old content after failed write: %v", path, err)
	case wantOld != "" && string(data) != wantOld:
		t.Fatalf("destination %s torn after failed write: got %q, want %q", path, data, wantOld)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("listing %s: %v", filepath.Dir(path), err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after failed write", e.Name())
		}
	}
}

// faultCases enumerates one injected failure per protocol step. Each
// returns the hooks (nil = real implementation) and the payload writer.
var faultCases = []struct {
	name   string
	create func(string, string) (*os.File, error)
	sync   func(*os.File) error
	rename func(string, string) error
	write  func(io.Writer) error
}{
	{
		name:   "create ENOSPC",
		create: func(string, string) (*os.File, error) { return nil, syscall.ENOSPC },
		write:  func(w io.Writer) error { _, err := io.WriteString(w, "new"); return err },
	},
	{
		name: "write ENOSPC after partial payload",
		write: func(w io.Writer) error {
			// A short write: half the payload lands in the temp file,
			// then the disk fills.
			if _, err := io.WriteString(w, "ne"); err != nil {
				return err
			}
			return syscall.ENOSPC
		},
	},
	{
		name:  "fsync failure",
		sync:  func(*os.File) error { return syscall.EIO },
		write: func(w io.Writer) error { _, err := io.WriteString(w, "new"); return err },
	},
	{
		name:   "rename failure",
		rename: func(string, string) error { return syscall.EXDEV },
		write:  func(w io.Writer) error { _, err := io.WriteString(w, "new"); return err },
	},
}

// TestWriteFileFaultsPreserveOldContent injects a failure at every step
// of the write protocol against a destination that already has content
// and asserts the old bytes survive untouched.
func TestWriteFileFaultsPreserveOldContent(t *testing.T) {
	for _, tc := range faultCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "intent.json")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			swapHooks(t, tc.create, tc.sync, tc.rename)
			if err := WriteFile(path, tc.write); err == nil {
				t.Fatalf("WriteFile succeeded with %s injected", tc.name)
			}
			checkIntact(t, path, "old")
		})
	}
}

// TestWriteFileFaultsLeaveFreshPathAbsent is the same matrix against a
// path that does not exist yet: a failed write must not create it.
func TestWriteFileFaultsLeaveFreshPathAbsent(t *testing.T) {
	for _, tc := range faultCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "intent.json")
			swapHooks(t, tc.create, tc.sync, tc.rename)
			if err := WriteFile(path, tc.write); err == nil {
				t.Fatalf("WriteFile succeeded with %s injected", tc.name)
			}
			checkIntact(t, path, "")
		})
	}
}

// TestWriteFileTransientFaultThenRetrySucceeds pins the composition the
// migration intent record leans on: fsatomic.WriteFile under retry.Do
// rides out transient faults, and once a write finally lands the
// destination holds exactly the new content.
func TestWriteFileTransientFaultThenRetrySucceeds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "intent.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	fails := 2
	swapHooks(t, nil, func(f *os.File) error {
		if fails > 0 {
			fails--
			return syscall.EIO
		}
		return f.Sync()
	}, nil)
	pol := retry.Policy{Attempts: 5, Base: time.Millisecond, Cap: time.Millisecond, Jitter: retry.NoJitter}
	err := retry.Do(context.Background(), pol, func() error {
		return WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, "new")
			return err
		})
	})
	if err != nil {
		t.Fatalf("retried WriteFile = %v, want nil", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("destination = %q, %v; want \"new\"", data, err)
	}
}

// TestWriteFileManyInjectedFailuresNeverTear hammers the same
// destination with a deterministic mix of every fault and occasional
// successes, checking after every call that the destination only ever
// holds a complete generation's content.
func TestWriteFileManyInjectedFailuresNeverTear(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	step := 0
	swapHooks(t,
		func(d, pat string) (*os.File, error) {
			if step%5 == 3 {
				return nil, syscall.ENOSPC
			}
			return os.CreateTemp(d, pat)
		},
		func(f *os.File) error {
			if step%7 == 2 {
				return syscall.EIO
			}
			return f.Sync()
		},
		func(o, n string) error {
			if step%3 == 1 {
				return syscall.EXDEV
			}
			return os.Rename(o, n)
		})
	last := "" // last successfully committed content
	for step = 0; step < 60; step++ {
		content := fmt.Sprintf("generation-%04d", step)
		werr := WriteFile(path, func(w io.Writer) error {
			if step%11 == 5 { // payload-side short write
				if _, err := io.WriteString(w, content[:4]); err != nil {
					return err
				}
				return syscall.ENOSPC
			}
			_, err := io.WriteString(w, content)
			return err
		})
		if werr == nil {
			last = content
		}
		data, rerr := os.ReadFile(path)
		if last == "" {
			if rerr == nil {
				t.Fatalf("step %d: destination exists before any successful write: %q", step, data)
			}
			continue
		}
		if rerr != nil {
			t.Fatalf("step %d: destination missing after successful write: %v", step, rerr)
		}
		if string(data) != last {
			t.Fatalf("step %d: destination = %q, want last committed %q (write err: %v)", step, data, last, werr)
		}
	}
	if last == "" {
		t.Fatal("no write ever succeeded; fault mix too dense")
	}
}
