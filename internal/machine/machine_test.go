package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/xrand"
)

// smallConfig shrinks the caches so eviction behaviour is testable.
func smallConfig(cpus int) Config {
	c := Enterprise5000(cpus)
	c.L1I.Size = 512
	c.L1D.Size = 512
	c.L2.Size = 4096 // 64 lines
	c.PageSize = 1024
	return c
}

func TestUltraSPARC1Parameters(t *testing.T) {
	c := UltraSPARC1()
	if c.CPUs != 1 || c.MissCycles != 42 {
		t.Errorf("Ultra-1 config wrong: %+v", c)
	}
	if c.L2.Lines() != 8192 {
		t.Errorf("E-cache lines = %d, want 8192", c.L2.Lines())
	}
	if c.L1I.Assoc != 2 || c.L1D.Assoc != 1 || c.L2.Assoc != 1 {
		t.Error("associativities do not match Table 1")
	}
	e := Enterprise5000(8)
	if e.CPUs != 8 || e.MissCycles != 50 || e.MissCyclesRemote != 80 {
		t.Errorf("E5000 config wrong: %+v", e)
	}
}

func TestApplyCountsAndCycles(t *testing.T) {
	m := New(UltraSPARC1())
	r := m.Alloc(1024, 0)
	// 16 sequential 64-byte-spaced reads: all cold misses.
	misses := m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 16, 64, 8)})
	if misses != 16 {
		t.Errorf("cold misses = %d, want 16", misses)
	}
	cpu := m.CPU(0)
	if cpu.ERefs != 16 || cpu.EMisses != 16 || cpu.EHits != 0 {
		t.Errorf("counters: refs %d hits %d misses %d", cpu.ERefs, cpu.EHits, cpu.EMisses)
	}
	if cpu.Cycles != 16*42 {
		t.Errorf("cycles = %d, want %d", cpu.Cycles, 16*42)
	}
	if cpu.Instrs != 16 {
		t.Errorf("instrs = %d", cpu.Instrs)
	}
	// Re-read: L1D has 16-byte lines, so the same 16 addresses now hit
	// in L1D.
	if got := m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 16, 64, 8)}); got != 0 {
		t.Errorf("warm misses = %d", got)
	}
	if cpu.Cycles != 16*42+16*1 {
		t.Errorf("warm cycles = %d", cpu.Cycles)
	}
}

func TestPICProtocol(t *testing.T) {
	// The runtime's protocol: snapshot PICs, run, snapshot, derive
	// misses — must agree with the shadow counters.
	m := New(UltraSPARC1())
	r := m.Alloc(64*1024, 0)
	cpu := m.CPU(0)
	base := cpu.PMU.Read()
	m.Apply(0, 1, mem.Batch{mem.ReadRange(r.Base, 32*1024)})
	got := perfctr.MissesSince(cpu.PMU.Read(), base)
	if got != cpu.EMisses {
		t.Errorf("PIC-derived misses %d != shadow %d", got, cpu.EMisses)
	}
	if got != 32*1024/64 {
		t.Errorf("sequential sweep misses = %d, want %d", got, 32*1024/64)
	}
}

func TestStraddlingReferenceCostsTwoProbes(t *testing.T) {
	m := New(UltraSPARC1())
	r := m.Alloc(1024, 64)
	// An 8-byte read at offset 12 crosses the 16-byte L1D line.
	m.Apply(0, 1, mem.Batch{{Base: r.Base + 12, Count: 1, Stride: 0, Size: 8}})
	cpu := m.CPU(0)
	// Both halves land in the same 64-byte L2 line: 1 miss + 1 hit.
	if cpu.ERefs != 2 || cpu.EMisses != 1 || cpu.EHits != 1 {
		t.Errorf("straddle: refs %d hits %d misses %d", cpu.ERefs, cpu.EHits, cpu.EMisses)
	}
}

func TestAdvance(t *testing.T) {
	m := New(UltraSPARC1())
	m.Advance(0, 500)
	m.AdvanceCycles(0, 42)
	cpu := m.CPU(0)
	if cpu.Cycles != 542 || cpu.Instrs != 500 {
		t.Errorf("cycles %d instrs %d", cpu.Cycles, cpu.Instrs)
	}
}

func TestTouchCode(t *testing.T) {
	m := New(UltraSPARC1())
	code := m.Alloc(1024, 64) // 32 I-lines, 16 L2 lines
	m.TouchCode(0, 1, code)
	cpu := m.CPU(0)
	if cpu.EMisses != 16 {
		t.Errorf("code reload misses = %d, want 16", cpu.EMisses)
	}
	// Second touch: everything hits in L1I.
	before := cpu.Cycles
	m.TouchCode(0, 1, code)
	if cpu.EMisses != 16 {
		t.Errorf("warm code fetch missed: %d", cpu.EMisses)
	}
	if cpu.Cycles-before != 32 {
		t.Errorf("warm code fetch cost %d cycles, want 32", cpu.Cycles-before)
	}
	m.TouchCode(0, 1, mem.Range{}) // empty region: no-op
}

func TestCodeSharedBetweenThreads(t *testing.T) {
	// Two threads running the same code region: the second dispatch
	// finds the text resident — shared text needs no reload.
	m := New(UltraSPARC1())
	code := m.Alloc(2048, 64)
	m.TouchCode(0, 1, code)
	missesBefore := m.CPU(0).EMisses
	m.TouchCode(0, 2, code)
	if m.CPU(0).EMisses != missesBefore {
		t.Error("second thread reloaded shared text")
	}
}

func TestRemoteDirtyPenalty(t *testing.T) {
	m := New(smallConfig(2))
	r := m.Alloc(64, 64)
	// CPU 0 writes the line (dirty in its E-cache).
	m.Apply(0, 1, mem.Batch{mem.Write(r.Base, 1, 0, 8)})
	c1Before := m.CPU(1).Cycles
	// CPU 1 reads it: remote-dirty fill, 80 cycles.
	m.Apply(1, 2, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if got := m.CPU(1).Cycles - c1Before; got != 80 {
		t.Errorf("remote-dirty fill cost %d cycles, want 80", got)
	}
	// A third CPU-1 read hits locally now.
	c1Before = m.CPU(1).Cycles
	m.Apply(1, 2, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if got := m.CPU(1).Cycles - c1Before; got != 1 {
		t.Errorf("local re-read cost %d cycles, want 1 (L1D hit)", got)
	}
}

func TestCleanMissPenalty(t *testing.T) {
	m := New(smallConfig(2))
	r := m.Alloc(64, 64)
	m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 1, 0, 8)}) // clean copy on CPU 0
	c1Before := m.CPU(1).Cycles
	m.Apply(1, 2, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if got := m.CPU(1).Cycles - c1Before; got != 50 {
		t.Errorf("clean shared fill cost %d cycles, want 50", got)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	m := New(smallConfig(2))
	r := m.Alloc(64, 64)
	m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	m.Apply(1, 2, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	// Both cache the line shared. CPU 1 writes: CPU 0's copy must die.
	m.Apply(1, 2, mem.Batch{mem.Write(r.Base, 1, 0, 8)})
	pa := m.Mapper().Translate(r.Base)
	if m.CPU(0).Hier.L2.Contains(pa) {
		t.Error("remote copy survived a write")
	}
	if !m.CPU(1).Hier.L2.IsDirty(pa) {
		t.Error("writer's copy not dirty")
	}
	// CPU 0 re-reads: remote-dirty penalty.
	before := m.CPU(0).Cycles
	m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if got := m.CPU(0).Cycles - before; got != 80 {
		t.Errorf("read-after-remote-write cost %d, want 80", got)
	}
}

func TestWriteMissInvalidates(t *testing.T) {
	m := New(smallConfig(2))
	r := m.Alloc(64, 64)
	m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	// CPU 1 write-misses the line: CPU 0's copy must be invalidated.
	m.Apply(1, 2, mem.Batch{mem.Write(r.Base, 1, 0, 8)})
	pa := m.Mapper().Translate(r.Base)
	if m.CPU(0).Hier.L2.Contains(pa) {
		t.Error("copy survived a remote write miss")
	}
}

func TestEvictionReleasesDirectoryEntry(t *testing.T) {
	m := New(smallConfig(2))
	// Fill CPU 0's tiny L2 far beyond capacity so early lines evict.
	big := m.Alloc(64*1024, 64)
	m.Apply(0, 1, mem.Batch{mem.ReadRange(big.Base, 64*1024)})
	// The directory should track at most the lines actually resident
	// somewhere (64 per CPU).
	entries := 0
	m.dir.forEach(func(mem.Addr, dirEntry) { entries++ })
	if entries > 2*m.Config().L2.Lines() {
		t.Errorf("directory leaked: %d entries for %d-line caches", entries, m.Config().L2.Lines())
	}
}

func TestFootprintTracking(t *testing.T) {
	cfg := UltraSPARC1()
	cfg.TrackFootprints = true
	m := New(cfg)
	state := m.AllocPages(64 * 100) // 100 lines
	m.RegisterState(7, state)
	m.Apply(0, 7, mem.Batch{mem.ReadRange(state.Base, 64*100)})
	if got := m.Footprint(0, 7); got != 100 {
		t.Errorf("footprint = %d, want 100", got)
	}
	m.FlushCaches()
	if got := m.Footprint(0, 7); got != 0 {
		t.Errorf("footprint after flush = %d", got)
	}
}

func TestFootprintWithoutTrackingPanics(t *testing.T) {
	m := New(UltraSPARC1())
	defer func() {
		if recover() == nil {
			t.Error("Footprint without tracking did not panic")
		}
	}()
	m.Footprint(0, 1)
}

func TestAllocDisjointAndAligned(t *testing.T) {
	m := New(UltraSPARC1())
	a := m.Alloc(100, 0)
	b := m.Alloc(100, 256)
	if a.End() > b.Base {
		t.Error("allocations overlap")
	}
	if uint64(b.Base)%256 != 0 {
		t.Error("alignment not honoured")
	}
	p := m.AllocPages(100)
	if uint64(p.Base)%m.Config().PageSize != 0 || p.Len != m.Config().PageSize {
		t.Errorf("AllocPages: %+v", p)
	}
}

func TestTotals(t *testing.T) {
	m := New(smallConfig(2))
	r := m.Alloc(4096, 64)
	m.Apply(0, 1, mem.Batch{mem.ReadRange(r.Base, 2048)})
	m.Apply(1, 2, mem.Batch{mem.ReadRange(r.Base+2048, 2048)})
	refs, hits, misses := m.Totals()
	if refs != hits+misses {
		t.Errorf("refs %d != hits %d + misses %d", refs, hits, misses)
	}
	if m.TotalInstrs() != 512 { // 4096 bytes / 8-byte refs
		t.Errorf("TotalInstrs = %d", m.TotalInstrs())
	}
	if m.MaxCycles() == 0 {
		t.Error("MaxCycles = 0")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(Enterprise5000(4))
		r := m.Alloc(1<<20, 0)
		for cpu := 0; cpu < 4; cpu++ {
			m.Apply(cpu, mem.ThreadID(cpu), mem.Batch{mem.ReadRange(r.Base+mem.Addr(cpu*1024), 256*1024)})
		}
		_, _, misses := m.Totals()
		return misses, m.MaxCycles()
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("nondeterministic machine: (%d,%d) vs (%d,%d)", m1, c1, m2, c2)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, breakIt := range []func(*Config){
		func(c *Config) { c.CPUs = 0 },
		func(c *Config) { c.CPUs = 257 },
		func(c *Config) { c.MissCycles = 0 },
		func(c *Config) { c.PageSize = 1000 },
		func(c *Config) { c.PageSize = 16 }, // smaller than L2 line
	} {
		cfg := UltraSPARC1()
		breakIt(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// TestCoherenceInvariantsUnderRandomTraffic drives mixed read/write
// traffic from four CPUs over a small shared region and checks the
// write-invalidate invariants throughout.
func TestCoherenceInvariantsUnderRandomTraffic(t *testing.T) {
	m := New(smallConfig(4))
	region := m.Alloc(16*1024, 64)
	rng := newTestRNG(77)
	for step := 0; step < 4000; step++ {
		cpu := int(rng.Uint64n(4))
		off := rng.Uint64n(region.Len) &^ 7
		write := rng.Uint64n(3) == 0
		a := mem.Access{Base: region.Base + mem.Addr(off), Count: 1, Size: 8, Write: write}
		m.Apply(cpu, mem.ThreadID(cpu), mem.Batch{a})
		if step%200 == 0 {
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceUniprocessorTrivial: no directory, always coherent.
func TestCoherenceUniprocessorTrivial(t *testing.T) {
	m := New(UltraSPARC1())
	r := m.Alloc(4096, 64)
	m.Apply(0, 1, mem.Batch{mem.WriteRange(r.Base, 4096)})
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// newTestRNG avoids importing xrand at the top of the existing test
// file's import block.
func newTestRNG(seed uint64) *xrand.Source { return xrand.New(seed) }

func TestTLBOffByDefault(t *testing.T) {
	m := New(UltraSPARC1())
	r := m.Alloc(1<<20, 0)
	m.Apply(0, 1, mem.Batch{mem.ReadRange(r.Base, 1<<20)})
	if m.CPU(0).TLBMisses != 0 {
		t.Errorf("TLB misses counted without TLBEntries: %d", m.CPU(0).TLBMisses)
	}
}

func TestTLBMissesAndPenalty(t *testing.T) {
	cfg := UltraSPARC1()
	cfg.TLBEntries = 64
	cfg.TLBMissCycles = 28
	m := New(cfg)
	// Touch 128 distinct pages twice: a 64-entry direct-mapped TLB
	// thrashes (pages 0..127 alias pairwise), so every page touch is a
	// TLB miss on both passes.
	base := m.AllocPages(128 * 8192)
	var batch mem.Batch
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < 128; p++ {
			batch = append(batch, mem.Access{Base: base.Base + mem.Addr(p*8192), Count: 1, Size: 8})
		}
	}
	before := m.CPU(0).Cycles
	m.Apply(0, 1, batch)
	if got := m.CPU(0).TLBMisses; got != 256 {
		t.Errorf("TLB misses = %d, want 256", got)
	}
	// The penalty is visible in the clock: at least 256*28 cycles on
	// top of the memory traffic.
	if got := m.CPU(0).Cycles - before; got < 256*28 {
		t.Errorf("cycles = %d, want >= %d of TLB stall alone", got, 256*28)
	}
}

func TestTLBLocalityHits(t *testing.T) {
	cfg := UltraSPARC1()
	cfg.TLBEntries = 64
	m := New(cfg)
	page := m.AllocPages(8192)
	// 100 references within one page: one TLB miss.
	m.Apply(0, 1, mem.Batch{mem.Read(page.Base, 100, 8, 8)})
	if got := m.CPU(0).TLBMisses; got != 1 {
		t.Errorf("TLB misses = %d, want 1", got)
	}
}

func TestTLBPerCPU(t *testing.T) {
	cfg := Enterprise5000(2)
	cfg.TLBEntries = 64
	m := New(cfg)
	page := m.AllocPages(8192)
	m.Apply(0, 1, mem.Batch{mem.Read(page.Base, 1, 0, 8)})
	m.Apply(1, 2, mem.Batch{mem.Read(page.Base, 1, 0, 8)})
	if m.CPU(0).TLBMisses != 1 || m.CPU(1).TLBMisses != 1 {
		t.Errorf("per-CPU TLB misses = %d/%d, want 1/1",
			m.CPU(0).TLBMisses, m.CPU(1).TLBMisses)
	}
}

func TestTLBValidation(t *testing.T) {
	cfg := UltraSPARC1()
	cfg.TLBEntries = 48
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two TLB accepted")
		}
	}()
	New(cfg)
}

func TestMemoryTraffic(t *testing.T) {
	m := New(UltraSPARC1())
	r := m.Alloc(64*1024, 64)
	// Fill 1024 lines by writing them: 64KB of fills, and once the
	// cache evicts (it won't here: 64KB < 512KB), write-backs.
	m.Apply(0, 1, mem.Batch{mem.WriteRange(r.Base, 64*1024)})
	tr := m.MemoryTraffic()
	if tr.FillBytes != 64*1024 {
		t.Errorf("fill bytes = %d, want %d", tr.FillBytes, 64*1024)
	}
	if tr.WritebackBytes != 0 {
		t.Errorf("writeback bytes = %d before any eviction", tr.WritebackBytes)
	}
	// Sweep 1MB of reads: the dirty 64KB must wash out as write-backs.
	big := m.Alloc(1<<20, 64)
	m.Apply(0, 1, mem.Batch{mem.ReadRange(big.Base, 1<<20)})
	tr = m.MemoryTraffic()
	if tr.WritebackBytes != 64*1024 {
		t.Errorf("writeback bytes = %d, want %d", tr.WritebackBytes, 64*1024)
	}
	if tr.Total() != tr.FillBytes+tr.WritebackBytes {
		t.Error("Total inconsistent")
	}
}

func TestCoherenceThreeCPUChain(t *testing.T) {
	// Write on 0, read on 1 (downgrade), read on 2 (clean share), write
	// on 2 (invalidate 0 and 1), read on 0 (remote dirty).
	m := New(smallConfig(3))
	r := m.Alloc(64, 64)
	pa := m.Mapper().Translate(r.Base)
	m.Apply(0, 1, mem.Batch{mem.Write(r.Base, 1, 0, 8)})
	m.Apply(1, 2, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if m.CPU(0).Hier.L2.IsDirty(pa) {
		t.Error("owner still dirty after downgrade intervention")
	}
	m.Apply(2, 3, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	for i := 0; i < 3; i++ {
		if !m.CPU(i).Hier.L2.Contains(pa) {
			t.Fatalf("cpu %d lost its shared copy", i)
		}
		if !m.CPU(i).Hier.L2.IsShared(pa) {
			t.Errorf("cpu %d copy not marked shared", i)
		}
	}
	m.Apply(2, 3, mem.Batch{mem.Write(r.Base, 1, 0, 8)})
	if m.CPU(0).Hier.L2.Contains(pa) || m.CPU(1).Hier.L2.Contains(pa) {
		t.Error("stale copies survive the upgrade write")
	}
	if !m.CPU(2).Hier.L2.IsDirty(pa) {
		t.Error("writer's copy not dirty after upgrade")
	}
	before := m.CPU(0).Cycles
	m.Apply(0, 1, mem.Batch{mem.Read(r.Base, 1, 0, 8)})
	if got := m.CPU(0).Cycles - before; got != uint64(m.Config().MissCyclesRemote) {
		t.Errorf("remote-dirty refetch cost %d, want %d", got, m.Config().MissCyclesRemote)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
