package machine

import (
	"testing"

	"repro/internal/mem"
)

// The fused sweep path (cachesim.SweepDM via applySweep) must be
// event-for-event identical to the per-reference dataRef loop: same
// miss counts, same PIC values, same cycle charges, same cache line
// states and owners. These differentials drive the same access stream
// through a fused machine and a noFastApply machine and compare the
// full counter fingerprints. They are the safety net for every fast
// path layered into the sweep: the dense lane (contiguous power-of-two
// sweeps), the load hit-streak inside it, the L1/L2 carry memos, and
// the group straddle shapes.

// applyBoth issues batch on both machines and fails if the returned
// miss counts differ.
func applyBoth(t *testing.T, fast, slow *Machine, cpu int, tid mem.ThreadID, batch mem.Batch) {
	t.Helper()
	fm := fast.Apply(cpu, tid, batch)
	sm := slow.Apply(cpu, tid, batch)
	if fm != sm {
		t.Fatalf("Apply(cpu=%d, %+v): fused %d misses, per-ref %d", cpu, batch, fm, sm)
	}
}

func comparePair(t *testing.T, fast, slow *Machine, cpus int, when string) {
	t.Helper()
	got, want := cpuFingerprint(fast, cpus), cpuFingerprint(slow, cpus)
	if got != want {
		t.Fatalf("%s: counters diverged:\nfused:\n%s\nper-ref:\n%s", when, got, want)
	}
}

func newPair(t *testing.T, cfg Config, ws uint64) (fast, slow *Machine, span mem.Range) {
	t.Helper()
	fast, slow = New(cfg), New(cfg)
	slow.noFastApply = true
	span = fast.Alloc(ws, 0)
	if s2 := slow.Alloc(ws, 0); s2 != span {
		t.Fatal("allocators diverged")
	}
	return fast, slow, span
}

// TestFastApplyHitStreak pins the dense-lane load hit-streak: a
// contiguous 8-byte sweep is issued twice, so the first pass exercises
// the miss/fill lane and the second pass is all L1D hits — exactly the
// shape the streak loop collapses into counter arithmetic.
func TestFastApplyHitStreak(t *testing.T) {
	for _, ws := range []uint64{4 << 10, 64 << 10} { // fits L1 / spills to L2
		fast, slow, span := newPair(t, Enterprise5000(2), ws)
		sweep := mem.Batch{{Base: span.Base, Count: int32(ws / 8), Stride: 8, Size: 8}}
		for pass := 0; pass < 3; pass++ {
			applyBoth(t, fast, slow, 0, 1, sweep)
		}
		// A store run from the second CPU breaks ownership mid-buffer,
		// then a reload must stop the streak at the invalidated lines.
		store := mem.Batch{{Base: span.Base + mem.Addr(ws/4), Count: 64, Stride: 8, Size: 8, Write: true}}
		applyBoth(t, fast, slow, 1, 2, store)
		applyBoth(t, fast, slow, 0, 1, sweep)
		comparePair(t, fast, slow, 2, "hit-streak")
	}
}

// TestFastApplyMatchesPerReference fuzzes the fused sweep against the
// per-reference loop with a deterministic stream of mixed shapes:
// dense power-of-two sweeps (size==stride), sub-line strides, straddle
// groups (stride not a multiple of the reference size), large strides,
// loads and stores, from several CPUs and threads so coherence events
// (shared fills, invalidations, dirty writebacks) land inside sweeps.
func TestFastApplyMatchesPerReference(t *testing.T) {
	for _, cpus := range []int{1, 4} {
		cfg := smallConfig(cpus)
		cfg.TLBEntries = 8
		fast, slow, span := newPair(t, cfg, 64<<10)

		rng := refLCG(987654321)
		for step := 0; step < 6000; step++ {
			cpu := int(rng.next()) % cpus
			tid := mem.ThreadID(rng.next() % 6)
			var a mem.Access
			switch rng.next() % 4 {
			case 0:
				// Dense lane shape: contiguous power-of-two sweep.
				size := uint64(1) << (rng.next()%4 + 1) // 2..16
				a = mem.Access{
					Base:   span.Base + mem.Addr((rng.next()%span.Len)&^(size-1)),
					Count:  int32(rng.next()%512) + 1,
					Stride: int32(size),
					Size:   uint16(size),
					Write:  rng.next()%4 == 0,
				}
			case 1:
				// Straddle-heavy: stride misaligned with size.
				a = mem.Access{
					Base:   span.Base + mem.Addr(rng.next()%span.Len),
					Count:  int32(rng.next()%64) + 1,
					Stride: int32(rng.next()%48) + 1,
					Size:   uint16(1 << (rng.next() % 4)),
					Write:  rng.next()%3 == 0,
				}
			case 2:
				// Large stride: one probe per reference, page crossings.
				a = mem.Access{
					Base:   span.Base + mem.Addr(rng.next()%span.Len),
					Count:  int32(rng.next()%24) + 1,
					Stride: int32(rng.next()%2048) + 32,
					Size:   8,
					Write:  rng.next()%3 == 0,
				}
			default:
				// Revisit the start of the buffer so later dense sweeps
				// hit resident lines (streak shape) or invalidated ones.
				a = mem.Access{
					Base:   span.Base + mem.Addr((rng.next()%4096)&^7),
					Count:  int32(rng.next()%256) + 1,
					Stride: 8,
					Size:   8,
					Write:  rng.next()%2 == 0,
				}
			}
			end := uint64(a.Base) + uint64(a.Count)*uint64(a.Stride) + uint64(a.Size)
			if end >= uint64(span.Base)+span.Len {
				continue
			}
			applyBoth(t, fast, slow, cpu, tid, mem.Batch{a})
		}
		comparePair(t, fast, slow, cpus, "fuzz")
		if err := fast.CheckCoherence(); err != nil {
			t.Fatalf("fused machine incoherent after fuzz: %v", err)
		}
	}
}
