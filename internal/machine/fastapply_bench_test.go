package machine

import (
	"testing"

	"repro/internal/mem"
)

// benchApply measures the raw Apply throughput of a sequential
// read+write sweep over a working set of wsBytes, with and without the
// fused run path. Small sets exercise the hit paths, sets beyond the
// E-cache the miss/fill paths.
func benchApply(b *testing.B, slow bool, wsBytes uint64) {
	m := New(Enterprise5000(2))
	m.noFastApply = slow
	r := m.Alloc(wsBytes, 0)
	n := int32(wsBytes / 8)
	batch := mem.Batch{
		{Base: r.Base, Count: n, Stride: 8, Size: 8, Write: false},
		{Base: r.Base, Count: n, Stride: 8, Size: 8, Write: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(0, 1, batch)
	}
	b.SetBytes(int64(2 * wsBytes))
}

func BenchmarkApplySweepL1Fused(b *testing.B)  { benchApply(b, false, 8<<10) }
func BenchmarkApplySweepL1Slow(b *testing.B)   { benchApply(b, true, 8<<10) }
func BenchmarkApplySweepL2Fused(b *testing.B)  { benchApply(b, false, 256<<10) }
func BenchmarkApplySweepL2Slow(b *testing.B)   { benchApply(b, true, 256<<10) }
func BenchmarkApplySweepMemFused(b *testing.B) { benchApply(b, false, 1<<20) }
func BenchmarkApplySweepMemSlow(b *testing.B)  { benchApply(b, true, 1<<20) }
