// Package machine simulates the hardware platforms of the paper's
// evaluation: a single-processor UltraSPARC-1 workstation and an
// Enterprise-5000-class SMP. Each simulated CPU owns an UltraSPARC-style
// cache hierarchy (internal/cachesim), a performance monitoring unit
// (internal/perfctr) and a cycle clock; the machine owns the shared
// virtual address space (internal/vm) and a write-invalidate coherence
// directory across the per-CPU external caches.
//
// The machine is the substrate substitution for the paper's hardware
// (see DESIGN.md §2): everything the paper's runtime observes —
// per-interval E-cache miss counts from the PICs, cycle costs of hits,
// clean misses and dirty-remote misses, and scheduling overhead — is
// produced here deterministically.
package machine

import (
	"fmt"
	"math/bits"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/vm"
)

// Config describes a simulated platform.
type Config struct {
	// Name labels the platform in reports ("Ultra-1", "E5000").
	Name string
	// CPUs is the processor count (1..256).
	CPUs int
	// L1I, L1D, L2 are the cache geometries. L1s are always per-CPU;
	// the L2 is per-CPU on the private topology and one machine-wide
	// cache on the shared topologies (whose associativity Topology may
	// rewrite — see cachesim.Topology.L2Config).
	L1I, L1D, L2 cachesim.Config
	// Topology selects the cache organisation. The zero value is the
	// paper's private per-CPU direct-mapped hierarchy with a
	// write-invalidate directory; the shared variants give every CPU
	// one L2 and resolve coherence in-cache (see internal/cachesim's
	// topology layer).
	Topology cachesim.Topology
	// MissCycles is the memory latency of an E-cache miss whose line is
	// not dirty in another processor's cache.
	MissCycles int
	// MissCyclesRemote is the latency when the line is dirty in another
	// processor's cache (80 vs 50 cycles on the Enterprise 5000). For a
	// uniprocessor it is never used.
	MissCyclesRemote int
	// CtxSwitchCycles is the basic thread context switch cost (the
	// paper reports on the order of 100 instructions for Active
	// Threads).
	CtxSwitchCycles int
	// PageSize and PagePolicy configure virtual-to-physical mapping.
	PageSize   uint64
	PagePolicy vm.Policy
	// TrackFootprints attaches a footprint tracker to every CPU's L2
	// (model-evaluation experiments only; it costs time per fill).
	TrackFootprints bool
	// TLBEntries, when nonzero, models a per-CPU direct-mapped data
	// TLB of that many entries (the UltraSPARC-1 dTLB has 64); each
	// miss costs TLBMissCycles. Zero models a perfect TLB, the
	// default, so the paper-calibrated cycle counts are unchanged
	// unless a study opts in.
	TLBEntries int
	// TLBMissCycles is the software-refill cost of a TLB miss
	// (default 28 when TLBEntries is set).
	TLBMissCycles int
	// ClassifyMisses labels every E-cache miss with Hill's three C's
	// (compulsory/capacity/conflict) against a fully-associative
	// shadow. Diagnostic runs only; it costs a map operation per
	// reference.
	ClassifyMisses bool
	// Seed fixes all machine-level pseudo-randomness (page placement).
	Seed uint64
}

// UltraSPARC1 returns the paper's Table 1 uniprocessor: 16KB 2-way L1I
// (32B lines), 16KB direct-mapped L1D (16B lines), 512KB direct-mapped
// unified E-cache (64B lines, 3-cycle hit, 42-cycle miss), 8KB pages
// with careful mapping.
func UltraSPARC1() Config {
	return Config{
		Name:             "Ultra-1",
		CPUs:             1,
		L1I:              cachesim.Config{Name: "L1I", Size: 16 * 1024, LineSize: 32, Assoc: 2, HitCycles: 1},
		L1D:              cachesim.Config{Name: "L1D", Size: 16 * 1024, LineSize: 16, Assoc: 1, HitCycles: 1},
		L2:               cachesim.Config{Name: "E", Size: 512 * 1024, LineSize: 64, Assoc: 1, HitCycles: 3},
		MissCycles:       42,
		MissCyclesRemote: 42,
		CtxSwitchCycles:  100,
		PageSize:         8192,
		PagePolicy:       vm.Careful,
		Seed:             1,
	}
}

// Enterprise5000 returns the paper's 8-processor (or n-processor) SMP:
// the same per-CPU hierarchy as the Ultra-1 but with 50-cycle clean
// misses and 80-cycle misses to lines dirty in another processor's
// cache, connected by a write-invalidate Gigaplane-style interconnect.
func Enterprise5000(cpus int) Config {
	c := UltraSPARC1()
	c.Name = "E5000"
	c.CPUs = cpus
	c.MissCycles = 50
	c.MissCyclesRemote = 80
	return c
}

// Validate reports whether the configuration describes a buildable
// machine. User-facing layers (the public Config, cmd/atsim) call this
// before New so a bad geometry surfaces as an error, not a panic.
func (c Config) Validate() error {
	if c.CPUs < 1 || c.CPUs > maxCPUs {
		return fmt.Errorf("machine: %d CPUs outside [1,%d] (directory sharer mask is %d bits wide)", c.CPUs, maxCPUs, maxCPUs)
	}
	if c.MissCycles <= 0 || c.MissCyclesRemote <= 0 {
		return fmt.Errorf("machine: miss penalties must be positive")
	}
	if !mem.IsPow2(c.PageSize) || c.PageSize < uint64(c.L2.LineSize) {
		return fmt.Errorf("machine: page size must be a power of two not smaller than the L2 line")
	}
	if c.TLBEntries != 0 && !mem.IsPow2(uint64(c.TLBEntries)) {
		return fmt.Errorf("machine: TLB entries must be a power of two")
	}
	if err := c.Topology.Validate(c.L2); err != nil {
		return err
	}
	return nil
}

func (c Config) validate() {
	if err := c.Validate(); err != nil {
		// Invariant at this layer: callers that accept user input
		// (threadlocality.New, cmd/atsim) run Validate first; internal
		// experiment code constructs configs from vetted presets.
		panic(err)
	}
}

// CPU is one simulated processor.
type CPU struct {
	// ID is the processor number, 0-based.
	ID int
	// Hier is the processor's private cache hierarchy.
	Hier *cachesim.Hierarchy
	// PMU is the performance monitoring unit the runtime reads at
	// context switches.
	PMU *perfctr.Unit

	// Cycles is the processor's cycle clock.
	Cycles uint64
	// Instrs counts instructions executed.
	Instrs uint64
	// ERefs, EHits, EMisses are 64-bit shadow totals of the E-cache
	// events (the runtime uses these for m(t); the 32-bit PICs wrap).
	ERefs, EHits, EMisses uint64
	// Tracker observes per-thread footprints in this CPU's E-cache
	// when Config.TrackFootprints is set; nil otherwise.
	Tracker *cachesim.Tracker
	// TLBMisses counts data-TLB misses (with Config.TLBEntries set).
	TLBMisses uint64
	// tlb is the per-CPU direct-mapped TLB tag array (vpage+1; 0 is
	// empty).
	tlb []uint64
}

// maxCPUs is the largest processor count the coherence directory can
// track: a cpuMask holds one bit per CPU.
const maxCPUs = 256

// cpuMask is a set of CPU IDs, sized for the directory's 256-CPU cap.
// The zero value is the empty set.
type cpuMask [4]uint64

func (m *cpuMask) set(i int)      { m[uint(i)>>6] |= 1 << (uint(i) & 63) }
func (m *cpuMask) clear(i int)    { m[uint(i)>>6] &^= 1 << (uint(i) & 63) }
func (m *cpuMask) has(i int) bool { return m[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }
func (m *cpuMask) empty() bool    { return m[0]|m[1]|m[2]|m[3] == 0 }

// count returns the number of members.
func (m *cpuMask) count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1]) +
		bits.OnesCount64(m[2]) + bits.OnesCount64(m[3])
}

// covers reports whether every member of o is also in m.
func (m *cpuMask) covers(o *cpuMask) bool {
	return o[0]&^m[0] == 0 && o[1]&^m[1] == 0 && o[2]&^m[2] == 0 && o[3]&^m[3] == 0
}

// minus returns m with o's members removed.
func (m cpuMask) minus(o *cpuMask) cpuMask {
	return cpuMask{m[0] &^ o[0], m[1] &^ o[1], m[2] &^ o[2], m[3] &^ o[3]}
}

// forEach calls fn for every member in ascending order.
func (m *cpuMask) forEach(fn func(i int)) {
	for w, word := range m {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// String renders the set as a hex mask (the historic single-word
// diagnostic format, extended with word separators past 64 CPUs).
func (m cpuMask) String() string {
	if m[1]|m[2]|m[3] == 0 {
		return fmt.Sprintf("%#x", m[0])
	}
	return fmt.Sprintf("%#x:%#x:%#x:%#x", m[3], m[2], m[1], m[0])
}

// dirEntry is a materialized view of one line's coherence directory
// state — which CPUs cache it and which, if any, holds it dirty — used
// by the cold inspection paths (forEach, CheckCoherence). An entry with
// no sharers is equivalent to an absent one and keeps dirtyOwner = -1.
type dirEntry struct {
	sharers    cpuMask
	dirtyOwner int16 // -1 when clean everywhere
}

// directory is the coherence directory: a two-level table indexed by
// physical page, then by line within the page. The page mapper
// synthesizes frames densely (color + colors·ordinal), so a paged array
// stays compact while replacing the former hash map — directory lookups
// sit on the store hot path (setDirty per write hit), where two indexed
// loads beat hashing by a wide margin.
//
// Storage is sized to the machine, not the 256-CPU cap: each line's
// sharer set is nw = ceil(CPUs/64) words, so an 8-CPU machine pays one
// word per line. Dirty owners are stored as cpuID+1 (0 = none), which
// makes a freshly allocated page valid all-zero — no initialization
// pass over new pages.
type directory struct {
	pageShift uint
	pageMask  uint64
	lineShift uint
	nw        int        // sharer-mask words per entry
	words     [][]uint64 // per page: entries × nw sharer words
	owners    [][]int16  // per page: entries × (dirty owner + 1)
}

func newDirectory(pageShift uint, pageMask uint64, l2LineSize uint64, ncpu int) *directory {
	return &directory{
		pageShift: pageShift,
		pageMask:  pageMask,
		lineShift: mem.Log2(l2LineSize),
		nw:        (ncpu + 63) / 64,
	}
}

// entry returns the line's sharer words and dirty-owner slot,
// allocating the page on demand. The slices stay valid until the next
// entry() call (peek never moves storage).
func (d *directory) entry(line mem.Addr) ([]uint64, *int16) {
	p := uint64(line) >> d.pageShift
	if p >= uint64(len(d.words)) {
		grownW := make([][]uint64, p+1+p/2)
		copy(grownW, d.words)
		d.words = grownW
		grownO := make([][]int16, p+1+p/2)
		copy(grownO, d.owners)
		d.owners = grownO
	}
	w := d.words[p]
	if w == nil {
		n := int((d.pageMask + 1) >> d.lineShift)
		w = make([]uint64, n*d.nw)
		d.words[p] = w
		d.owners[p] = make([]int16, n)
	}
	i := int((uint64(line) & d.pageMask) >> d.lineShift)
	return w[i*d.nw : (i+1)*d.nw : (i+1)*d.nw], &d.owners[p][i]
}

// peek returns the line's sharer words and owner slot without
// allocating, or (nil, nil) when the page has never held directory
// state.
func (d *directory) peek(line mem.Addr) ([]uint64, *int16) {
	p := uint64(line) >> d.pageShift
	if p >= uint64(len(d.words)) || d.words[p] == nil {
		return nil, nil
	}
	i := int((uint64(line) & d.pageMask) >> d.lineShift)
	return d.words[p][i*d.nw : (i+1)*d.nw : (i+1)*d.nw], &d.owners[p][i]
}

// maskEmpty reports whether no sharer bit is set.
func maskEmpty(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

// lookup materializes the line's entry for the cold inspection paths,
// reporting false when the line has no directory state.
func (d *directory) lookup(line mem.Addr) (dirEntry, bool) {
	w, o := d.peek(line)
	if w == nil {
		return dirEntry{dirtyOwner: -1}, false
	}
	var e dirEntry
	copy(e.sharers[:], w)
	e.dirtyOwner = *o - 1
	return e, true
}

// forEach visits every entry with a non-empty sharer set.
func (d *directory) forEach(fn func(line mem.Addr, e dirEntry)) {
	epp := int((d.pageMask + 1) >> d.lineShift)
	for p, w := range d.words {
		if w == nil {
			continue
		}
		for i := 0; i < epp; i++ {
			var e dirEntry
			empty := true
			for k := 0; k < d.nw; k++ {
				e.sharers[k] = w[i*d.nw+k]
				if e.sharers[k] != 0 {
					empty = false
				}
			}
			if empty {
				continue
			}
			e.dirtyOwner = d.owners[p][i] - 1
			line := mem.Addr(uint64(p)<<d.pageShift | uint64(i)<<d.lineShift)
			fn(line, e)
		}
	}
}

// reset drops every entry but keeps the allocated pages for reuse.
func (d *directory) reset() {
	for _, w := range d.words {
		for i := range w {
			w[i] = 0
		}
	}
	for _, o := range d.owners {
		for i := range o {
			o[i] = 0
		}
	}
}

// Machine is a configured simulated platform.
type Machine struct {
	cfg    Config
	cpus   []*CPU
	mapper *vm.Mapper
	dir    *directory
	// shared is the machine-wide L2 on the shared topologies; nil on
	// the private default. Exactly one of dir (private, CPUs > 1) and
	// shared is non-nil on a multiprocessor — the shared cache resolves
	// coherence in-cache, so it needs no directory.
	shared *cachesim.SharedL2

	// Tiny software structure memoizing recent translations so that
	// the per-reference fast path avoids the page-table map.
	tlb [tlbEntries]tlbEntry

	// MissHook, when non-nil, observes every data E-cache miss with
	// the accessing thread and virtual address. The runtime uses it to
	// feed the sharing-inference monitor (the software Cache Miss
	// Lookaside buffer); keep the hook O(1).
	MissHook func(tid mem.ThreadID, va mem.Addr)

	// Bump allocator for the simulated virtual address space.
	allocNext mem.Addr

	// env is the reusable machine-to-cachesim adapter for the fused
	// sweep path (see sweepEnv); kept on the Machine so taking its
	// address never allocates.
	env sweepEnv

	// noFastApply disables the fused run path so the differential
	// tests can drive the per-reference reference implementation on
	// the same geometry and compare. Test-only; never set outside
	// this package's tests.
	noFastApply bool

	l2LineSize  uint64
	l1dLineSize uint64
	// pageShift/pageMask are the shift-and-mask form of the (power of
	// two) page size, so the per-reference translation fast path never
	// pays a hardware divide.
	pageShift uint
	pageMask  uint64
}

const tlbEntries = 1024

// tlbEntry keeps a translation's tag and value adjacent so a TLB hit
// touches a single cache line.
type tlbEntry struct {
	tag uint64   // vpage+1 (0 = empty)
	val mem.Addr // physical base minus page offset
}

// allocBase leaves the low addresses unused so that address 0 stays a
// sentinel and tiny constants never alias allocated state.
const allocBase mem.Addr = 1 << 20

// New constructs a machine.
func New(cfg Config) *Machine {
	cfg.validate()
	m := &Machine{
		cfg:         cfg,
		mapper:      vm.New(cfg.PagePolicy, cfg.PageSize, uint64(cfg.L2.Size), cfg.Seed),
		allocNext:   allocBase,
		l2LineSize:  uint64(cfg.L2.LineSize),
		l1dLineSize: uint64(cfg.L1D.LineSize),
		pageShift:   mem.Log2(cfg.PageSize),
		pageMask:    cfg.PageSize - 1,
	}
	m.env.m = m
	if cfg.Topology.Shared() {
		m.shared = cachesim.NewSharedL2(cfg.Topology.L2Config(cfg.L2), cfg.CPUs)
		if cfg.ClassifyMisses {
			m.shared.Cache().EnableClassification()
		}
	} else if cfg.CPUs > 1 {
		m.dir = newDirectory(m.pageShift, m.pageMask, m.l2LineSize, cfg.CPUs)
	}
	// One tracker observes the one shared cache; every CPU aliases it so
	// Footprint works regardless of the CPU asked.
	var sharedTracker *cachesim.Tracker
	if m.shared != nil && cfg.TrackFootprints {
		sharedTracker = cachesim.NewTracker(m.l2LineSize, cfg.PageSize)
		m.shared.Cache().SetListener(sharedTracker)
	}
	for i := 0; i < cfg.CPUs; i++ {
		cpu := &CPU{
			ID:  i,
			PMU: perfctr.NewUnit(perfctr.DefaultPCR()),
		}
		if m.shared != nil {
			cpu.Hier = cachesim.NewHierarchyShared(cfg.L1I, cfg.L1D, m.shared, i)
			cpu.Tracker = sharedTracker
		} else {
			cpu.Hier = cachesim.NewHierarchy(cfg.L1I, cfg.L1D, cfg.L2)
			if cfg.TrackFootprints {
				cpu.Tracker = cachesim.NewTracker(m.l2LineSize, cfg.PageSize)
				cpu.Hier.L2.SetListener(cpu.Tracker)
			}
			if cfg.ClassifyMisses {
				cpu.Hier.L2.EnableClassification()
			}
		}
		if cfg.TLBEntries > 0 {
			cpu.tlb = make([]uint64, cfg.TLBEntries)
			if m.cfg.TLBMissCycles == 0 {
				m.cfg.TLBMissCycles = 28
			}
		}
		m.cpus = append(m.cpus, cpu)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NCPU returns the processor count.
func (m *Machine) NCPU() int { return m.cfg.CPUs }

// CPU returns processor i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// Mapper exposes the page mapper (for experiments that need physical
// addresses, e.g. footprint registration).
func (m *Machine) Mapper() *vm.Mapper { return m.mapper }

// Alloc reserves size bytes of fresh virtual address space aligned to
// align (a power of two; 0 means line alignment). Allocations are
// eternal — the simulation never frees address space, mirroring the
// paper's measurement windows.
func (m *Machine) Alloc(size uint64, align uint64) mem.Range {
	if align == 0 {
		align = m.l2LineSize
	}
	if !mem.IsPow2(align) {
		// Invariant: the engine validates Alloc alignment (user-reachable)
		// before forwarding; direct callers are internal code.
		panic(fmt.Sprintf("machine: Alloc alignment %d not a power of two", align))
	}
	base := (uint64(m.allocNext) + align - 1) &^ (align - 1)
	m.allocNext = mem.Addr(base + size)
	return mem.Range{Base: mem.Addr(base), Len: size}
}

// AllocPages reserves size bytes rounded up to whole pages, page
// aligned. Used for thread state regions that footprint trackers watch.
func (m *Machine) AllocPages(size uint64) mem.Range {
	ps := m.cfg.PageSize
	r := m.Alloc((size+ps-1)&^(ps-1), ps)
	return r
}

// translate maps a virtual address through the TLB fast path. The hit
// path is small enough to inline into dataRef; misses take the outlined
// page-table walk.
func (m *Machine) translate(v mem.Addr) mem.Addr {
	if pa, ok := m.tlbLookup(v); ok {
		return pa
	}
	return m.translateMiss(v)
}

// tlbLookup is the TLB hit path alone: small enough to inline into the
// per-reference loops, so a hit costs one predicted branch and one
// cache-line load with no call.
func (m *Machine) tlbLookup(v mem.Addr) (mem.Addr, bool) {
	vpage := uint64(v) >> m.pageShift
	e := &m.tlb[vpage&(tlbEntries-1)]
	if e.tag != vpage+1 {
		return 0, false
	}
	return e.val + mem.Addr(uint64(v)&m.pageMask), true
}

// translateMiss walks the page table and refills the TLB entry.
func (m *Machine) translateMiss(v mem.Addr) mem.Addr {
	vpage := uint64(v) >> m.pageShift
	p := m.mapper.Translate(v)
	m.tlb[vpage&(tlbEntries-1)] = tlbEntry{
		tag: vpage + 1,
		val: p - mem.Addr(uint64(v)&m.pageMask),
	}
	return p
}

// Apply performs a batch of data references by thread tid on the given
// CPU, advancing its clock, instruction count, counters and caches. It
// returns the number of E-cache misses the batch took (the same
// information the PICs accumulate, returned for convenience).
func (m *Machine) Apply(cpuID int, tid mem.ThreadID, batch mem.Batch) uint64 {
	cpu := m.cpus[cpuID]
	startMisses := cpu.EMisses
	fast := !m.noFastApply && cpu.Hier.FastData()
	for _, a := range batch {
		base := a.Base
		if fast && a.Stride > 0 && a.Count > 0 {
			// On the direct-mapped geometry any forward-strided access
			// folds into one fused hierarchy sweep (see applySweep):
			// small strides batch into same-line runs, strides at or
			// beyond the L1D line degenerate to one probe per
			// reference, and straddles probe their two endpoint lines
			// — all event-for-event identical to the loops below.
			m.applySweep(cpu, tid, a)
		} else if a.Count > 1 && a.Stride > 0 && uint64(a.Stride) < m.l1dLineSize {
			// Small-stride accesses revisit the same L1D line several
			// times in a row; batch each same-line run into one probe
			// plus replayed hits (see applyRuns).
			m.applyRuns(cpu, tid, a)
		} else {
			for i := int32(0); i < a.Count; i++ {
				va := base + mem.Addr(int64(i)*int64(a.Stride))
				m.dataRef(cpu, tid, va, a.Write)
				// A reference straddling an L1D line boundary costs a
				// second probe (rare: unaligned or large references).
				if uint64(va)&(m.l1dLineSize-1)+uint64(a.Size) > m.l1dLineSize {
					m.dataRef(cpu, tid, va+mem.Addr(a.Size-1), a.Write)
				}
			}
		}
		// One instruction per reference; the PIC accumulation is
		// additive mod 2^32, so batching the whole access here is
		// event-for-event identical to recording inside the loop.
		if a.Count > 0 {
			cpu.Instrs += uint64(a.Count)
			cpu.PMU.Record(perfctr.EventInstructions, uint64(a.Count))
		}
	}
	return cpu.EMisses - startMisses
}

// applyRuns issues a small-stride access as same-line runs: the first
// reference of each L1D line probes the full hierarchy, and the run's
// remaining references are replayed arithmetically, because their
// outcome is fully determined once the first reference completes:
//
//   - Loads allocate in L1D whichever level satisfies them, so repeat
//     loads are L1D hits: no PMU events, just the hit statistics,
//     ownership and the hit-cycle charge.
//   - Stores are non-allocating in the write-through L1D and
//     write-allocate in the L2, so across a store run the L1D outcome
//     is frozen (hit if the line was already resident, miss otherwise)
//     and every repeat is an L2 hit on the now-dirty line. The repeat
//     coherence check is a no-op (the first store already cleared the
//     shared state) and setDirty is idempotent, so one call covers the
//     run.
//
// Repeat references are also machine-TLB hits (same page, entry
// installed by the first reference) and per-CPU-TLB no-ops. The golden
// experiment fingerprints pin this path counter-for-counter against
// the per-reference loop.
func (m *Machine) applyRuns(cpu *CPU, tid mem.ThreadID, a mem.Access) {
	ls := m.l1dLineSize
	stride := uint64(a.Stride)
	count := int(a.Count)
	size := uint64(a.Size)
	if size == 0 {
		// A zero-size reference touches just its base byte's line; the
		// run arithmetic below treats it as one byte.
		size = 1
	}
	// Traces overwhelmingly walk with power-of-two strides; turn the
	// per-run division into a shift for them.
	strideShift := -1
	if stride&(stride-1) == 0 {
		strideShift = bits.TrailingZeros64(stride)
	}
	for i := 0; i < count; {
		va := a.Base + mem.Addr(uint64(i)*stride)
		off := uint64(va) & (ls - 1)
		if off+uint64(a.Size) > ls {
			// Straddling reference: probe both lines, advance one.
			m.dataRef(cpu, tid, va, a.Write)
			m.dataRef(cpu, tid, va+mem.Addr(a.Size-1), a.Write)
			i++
			continue
		}
		// Run length: references i..i+k-1 stay on va's line without
		// straddling.
		var k int
		if strideShift >= 0 {
			k = int((ls-size-off)>>strideShift) + 1
		} else {
			k = int((ls-size-off)/stride) + 1
		}
		if k > count-i {
			k = count - i
		}
		m.dataRef(cpu, tid, va, a.Write)
		if k > 1 {
			pa, ok := m.tlbLookup(va)
			if !ok {
				pa = m.translateMiss(va)
			}
			m.repeatRefs(cpu, tid, pa, a.Write, k-1)
		}
		i += k
	}
}

// sweepEnv adapts the Machine to cachesim.SweepEnv for the fused
// sweep path: translation, coherence and miss hooks called back from
// inside the cachesim loop. One value lives on the Machine and is
// re-pointed per Apply call, so taking the interface never allocates.
type sweepEnv struct {
	m   *Machine
	cpu *CPU
	tid mem.ThreadID
}

// TranslatePage charges the modelled per-CPU TLB once for va's page
// (the charge is idempotent for the page's later references, so one
// probe is event-identical to the per-reference path's) and returns
// the translation.
func (s *sweepEnv) TranslatePage(va mem.Addr) mem.Addr {
	m := s.m
	m.tlbProbe(s.cpu, va)
	pa, ok := m.tlbLookup(va)
	if !ok {
		pa = m.translateMiss(va)
	}
	return pa
}

// LineMiss runs the directory side of an L2 miss — fill, victim
// drop — and the miss hook, reporting the remote-dirty penalty class.
func (s *sweepEnv) LineMiss(va, line mem.Addr, write bool, victim cachesim.Victim) bool {
	m := s.m
	remote := false
	if m.dir != nil {
		remote = m.fill(line, s.cpu, write)
		if victim.Valid {
			m.dropSharer(victim.Line, s.cpu.ID)
		}
	}
	if m.MissHook != nil {
		m.MissHook(s.tid, va)
	}
	return remote
}

// SharedStore invalidates the other copies of a line the local CPU
// just stored to (the sweep already cleared the local shared mark).
func (s *sweepEnv) SharedStore(line mem.Addr) { s.m.invalidateOthers(line, s.cpu.ID) }

// DirtyStore records the local CPU as the line's dirty owner.
func (s *sweepEnv) DirtyStore(line mem.Addr) { s.m.setDirty(line, s.cpu.ID) }

// applySweep is applyRuns for the direct-mapped geometry: the whole
// access runs as one fused cachesim sweep (see cachesim.SweepDM), and
// the aggregate outcome converts to cycles, shadow counters and PIC
// events in one batch — every charge is additive, so the batch total
// is event-for-event identical to the per-reference loop, which the
// differential tests in fastapply_test.go pin.
func (m *Machine) applySweep(cpu *CPU, tid mem.ThreadID, a mem.Access) {
	m.env.cpu = cpu
	m.env.tid = tid
	out := cpu.Hier.SweepDM(&m.env, tid, a, m.pageShift, m.dir != nil)
	misses := out.CleanMisses + out.RemoteMisses
	eRefs := out.L2HitRefs + misses
	cpu.Cycles += out.L1Refs*uint64(m.cfg.L1D.HitCycles) +
		out.L2HitRefs*uint64(m.cfg.L2.HitCycles) +
		out.CleanMisses*uint64(m.cfg.MissCycles) +
		out.RemoteMisses*uint64(m.cfg.MissCyclesRemote)
	cpu.ERefs += eRefs
	cpu.EHits += out.L2HitRefs
	cpu.EMisses += misses
	if eRefs > 0 {
		cpu.PMU.Record(perfctr.EventECacheRefs, eRefs)
	}
	if out.L2HitRefs > 0 {
		cpu.PMU.Record(perfctr.EventECacheHits, out.L2HitRefs)
	}
}

// repeatRefs applies the bookkeeping of k further same-line references
// following a completed first reference (see applyRuns for why their
// outcome is fixed).
func (m *Machine) repeatRefs(cpu *CPU, tid mem.ThreadID, pa mem.Addr, write bool, k int) {
	if !write {
		// Loads allocate at whichever level satisfied the first
		// reference, so the line is L1D-resident for every repeat.
		cpu.Hier.L1D.RepeatHit(tid, pa, false, k)
		cpu.Cycles += uint64(k) * uint64(m.cfg.L1D.HitCycles)
		return
	}
	// Data probes the L1D with write=false even for stores (the dirty
	// bit lives in the L2); the L1D replay hits or misses per the
	// frozen residency (stores do not allocate there, so the outcome
	// must be re-probed), and every repeat is a guaranteed L2 hit on
	// the now-dirty line.
	cpu.Hier.L1D.Repeat(tid, pa, false, k)
	cpu.Hier.L2.RepeatHit(tid, pa, true, k)
	cpu.Cycles += uint64(k) * uint64(m.cfg.L2.HitCycles)
	cpu.ERefs += uint64(k)
	cpu.EHits += uint64(k)
	cpu.PMU.Record(perfctr.EventECacheRefs, uint64(k))
	cpu.PMU.Record(perfctr.EventECacheHits, uint64(k))
	if m.dir != nil {
		m.setDirty(mem.LineAddr(pa, m.l2LineSize), cpu.ID)
	}
}

// tlbProbe charges a TLB miss when the per-CPU TLB is modelled and the
// page is not resident in it.
func (m *Machine) tlbProbe(cpu *CPU, va mem.Addr) {
	if cpu.tlb == nil {
		return
	}
	vpage := uint64(va) >> m.pageShift
	idx := vpage & uint64(len(cpu.tlb)-1)
	if cpu.tlb[idx] != vpage+1 {
		cpu.tlb[idx] = vpage + 1
		cpu.TLBMisses++
		cpu.Cycles += uint64(m.cfg.TLBMissCycles)
	}
}

// dataRef performs one data reference at virtual address va.
func (m *Machine) dataRef(cpu *CPU, tid mem.ThreadID, va mem.Addr, write bool) {
	m.tlbProbe(cpu, va)
	pa, ok := m.tlbLookup(va)
	if !ok {
		pa = m.translateMiss(va)
	}

	// Coherence, part 1: a store to a line we cache shared must
	// invalidate the other copies before proceeding. The shared flag of
	// a fresh fill is set by fill() below once the directory is known,
	// so the hierarchy is always entered with shared=false. The line
	// address is only needed by the directory branches, so the
	// uniprocessor hot path never computes it.
	if m.dir != nil && write && cpu.Hier.L2.IsShared(pa) {
		line := mem.LineAddr(pa, m.l2LineSize)
		m.invalidateOthers(line, cpu.ID)
		cpu.Hier.L2.SetShared(pa, false)
		m.setDirty(line, cpu.ID)
	}

	res := cpu.Hier.Data(tid, pa, write, false)
	switch res.Level {
	case cachesim.LevelL1:
		cpu.Cycles += uint64(m.cfg.L1D.HitCycles)
	case cachesim.LevelL2:
		cpu.Cycles += uint64(m.cfg.L2.HitCycles)
		cpu.ERefs++
		cpu.EHits++
		cpu.PMU.Record(perfctr.EventECacheRefs, 1)
		cpu.PMU.Record(perfctr.EventECacheHits, 1)
		if m.dir != nil && write {
			m.setDirty(mem.LineAddr(pa, m.l2LineSize), cpu.ID)
		}
	case cachesim.LevelMemory:
		penalty := uint64(m.cfg.MissCycles)
		if m.dir != nil {
			if m.fill(mem.LineAddr(pa, m.l2LineSize), cpu, write) {
				penalty = uint64(m.cfg.MissCyclesRemote)
			}
			if res.Victim.Valid {
				m.dropSharer(res.Victim.Line, cpu.ID)
			}
		}
		cpu.Cycles += penalty
		cpu.ERefs++
		cpu.EMisses++
		cpu.PMU.Record(perfctr.EventECacheRefs, 1)
		if m.MissHook != nil {
			m.MissHook(tid, va)
		}
	}
}

// TouchCode simulates the instruction-fetch side of dispatching thread
// tid: the lines of its code region are fetched through L1I and the
// unified E-cache once. Between scheduling points instruction fetch is
// assumed to hit (the loop body is resident); this captures the code
// component of the reload transient and code sharing between threads
// without per-instruction cost.
func (m *Machine) TouchCode(cpuID int, tid mem.ThreadID, code mem.Range) {
	if code.Len == 0 {
		return
	}
	cpu := m.cpus[cpuID]
	lineI := uint64(m.cfg.L1I.LineSize)
	for va := code.Base; va < code.End(); va += mem.Addr(lineI) {
		m.tlbProbe(cpu, va)
		pa := m.translate(va)
		res := cpu.Hier.Inst(tid, pa, false)
		switch res.Level {
		case cachesim.LevelL1:
			cpu.Cycles += uint64(m.cfg.L1I.HitCycles)
		case cachesim.LevelL2:
			cpu.Cycles += uint64(m.cfg.L2.HitCycles)
			cpu.ERefs++
			cpu.EHits++
			cpu.PMU.Record(perfctr.EventECacheRefs, 1)
			cpu.PMU.Record(perfctr.EventECacheHits, 1)
		case cachesim.LevelMemory:
			line := mem.LineAddr(pa, m.l2LineSize)
			penalty := uint64(m.cfg.MissCycles)
			if m.dir != nil {
				if m.fill(line, cpu, false) {
					penalty = uint64(m.cfg.MissCyclesRemote)
				}
				if res.Victim.Valid {
					m.dropSharer(res.Victim.Line, cpu.ID)
				}
			}
			cpu.Cycles += penalty
			cpu.ERefs++
			cpu.EMisses++
			cpu.PMU.Record(perfctr.EventECacheRefs, 1)
		}
	}
}

// Advance charges compute work to a CPU: instrs instructions at one
// cycle each (the UltraSPARC-1 is modelled as a 1-IPC machine for
// non-memory work).
func (m *Machine) Advance(cpuID int, instrs uint64) {
	cpu := m.cpus[cpuID]
	cpu.Cycles += instrs
	cpu.Instrs += instrs
	cpu.PMU.Record(perfctr.EventInstructions, instrs)
}

// AdvanceCycles charges cycles (no instructions) to a CPU — scheduler
// bookkeeping, context switch latency, bus stalls.
func (m *Machine) AdvanceCycles(cpuID int, cycles uint64) {
	m.cpus[cpuID].Cycles += cycles
}

// fill updates the directory for a fresh fill of line on cpu, marking
// the line shared in the local cache when other copies exist. It
// reports whether the line was dirty in some other CPU's cache (the
// remote-dirty penalty case).
func (m *Machine) fill(line mem.Addr, cpu *CPU, write bool) (remoteDirty bool) {
	w, o := m.dir.entry(line)
	owner := int(*o) - 1
	remoteDirty = owner >= 0 && owner != cpu.ID
	selfWord, selfBit := uint(cpu.ID)>>6, uint64(1)<<(uint(cpu.ID)&63)
	if write {
		// Write miss: invalidate every other copy, own it dirty.
		m.invalidateOthers(line, cpu.ID)
		for i := range w {
			w[i] = 0
		}
		w[selfWord] = selfBit
		*o = int16(cpu.ID + 1)
		return remoteDirty
	}
	// Read miss: join the sharers; a remote dirty copy is downgraded to
	// clean (the intervention writes the data back to memory on the
	// owner's behalf).
	if remoteDirty {
		m.cpus[owner].Hier.L2.ClearDirty(line)
		*o = 0
	} else if owner == cpu.ID {
		// Refetching a line we own dirty cannot happen (it would be a
		// hit); defensive clear.
		*o = 0
	}
	w[selfWord] |= selfBit
	// Any copy besides ours? Then every copy is shared, including ours
	// (the hierarchy fill already inserted; set the flag now), visiting
	// the other sharers in ascending CPU order.
	hasOthers := false
	for wi, word := range w {
		if uint(wi) == selfWord {
			word &^= selfBit
		}
		if word != 0 {
			hasOthers = true
			break
		}
	}
	if hasOthers {
		cpu.Hier.L2.SetShared(line, true)
		for wi, word := range w {
			if uint(wi) == selfWord {
				word &^= selfBit
			}
			for word != 0 {
				i := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				m.cpus[i].Hier.L2.SetShared(line, true)
			}
		}
	}
	return remoteDirty
}

// setDirty records that cpu now holds line dirty (write hit).
func (m *Machine) setDirty(line mem.Addr, cpuID int) {
	w, o := m.dir.entry(line)
	*o = int16(cpuID + 1)
	w[uint(cpuID)>>6] |= 1 << (uint(cpuID) & 63)
}

// invalidateOthers removes every copy of line except cpuID's.
func (m *Machine) invalidateOthers(line mem.Addr, cpuID int) {
	w, o := m.dir.peek(line)
	if w == nil || maskEmpty(w) {
		return
	}
	selfWord, selfBit := uint(cpuID)>>6, uint64(1)<<(uint(cpuID)&63)
	for wi, word := range w {
		if uint(wi) == selfWord {
			word &^= selfBit
			w[wi] &= selfBit
		} else {
			w[wi] = 0
		}
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			m.cpus[i].Hier.InvalidateLine(line)
		}
	}
	if owner := int(*o) - 1; owner >= 0 && owner != cpuID {
		*o = 0
	}
	if w[selfWord]&selfBit == 0 {
		*o = 0
	}
}

// dropSharer records that cpuID no longer caches line (local eviction).
func (m *Machine) dropSharer(line mem.Addr, cpuID int) {
	w, o := m.dir.peek(line)
	if w == nil || maskEmpty(w) {
		return
	}
	w[uint(cpuID)>>6] &^= 1 << (uint(cpuID) & 63)
	if int(*o)-1 == cpuID {
		*o = 0
	}
	if maskEmpty(w) {
		*o = 0
	}
}

// RegisterState registers virtual byte ranges as thread tid's state with
// every CPU's footprint tracker (no-op unless TrackFootprints). The
// ranges are translated page by page, since contiguous virtual ranges
// scatter across physical pages.
func (m *Machine) RegisterState(tid mem.ThreadID, ranges ...mem.Range) {
	if !m.cfg.TrackFootprints {
		return
	}
	var phys []mem.Range
	ps := m.cfg.PageSize
	for _, r := range ranges {
		for base := r.Base; base < r.End(); {
			pageEnd := mem.Addr((uint64(base)/ps + 1) * ps)
			hi := r.End()
			if pageEnd < hi {
				hi = pageEnd
			}
			phys = append(phys, mem.Range{Base: m.translate(base), Len: uint64(hi - base)})
			base = hi
		}
	}
	if m.shared != nil {
		// Every CPU aliases the one shared-cache tracker; register and
		// rebuild once.
		tr := m.cpus[0].Tracker
		tr.Register(tid, phys...)
		tr.Rebuild(m.shared.Cache())
		return
	}
	for _, cpu := range m.cpus {
		cpu.Tracker.Register(tid, phys...)
		cpu.Tracker.Rebuild(cpu.Hier.L2)
	}
}

// Footprint returns the observed footprint of tid in cpu's E-cache, in
// lines. It requires TrackFootprints.
func (m *Machine) Footprint(cpuID int, tid mem.ThreadID) int64 {
	cpu := m.cpus[cpuID]
	if cpu.Tracker == nil {
		// Invariant: experiment code enables TrackFootprints before asking.
		panic("machine: Footprint without TrackFootprints")
	}
	return cpu.Tracker.Footprint(tid)
}

// FlushCaches empties every CPU's hierarchy and the coherence
// directory — the paper flushes the cache before measuring reload
// transients.
func (m *Machine) FlushCaches() {
	for _, cpu := range m.cpus {
		cpu.Hier.Flush()
	}
	if m.dir != nil {
		m.dir.reset()
	}
}

// MaxCycles returns the largest per-CPU clock — the parallel completion
// time of the run.
func (m *Machine) MaxCycles() uint64 {
	var max uint64
	for _, cpu := range m.cpus {
		if cpu.Cycles > max {
			max = cpu.Cycles
		}
	}
	return max
}

// Traffic summarizes memory-bus traffic in bytes: line fills (reads
// from memory) and write-backs of dirty lines, aggregated over the
// per-CPU E-caches.
type Traffic struct {
	// FillBytes is data read from memory (E-cache misses × line size).
	FillBytes uint64
	// WritebackBytes is dirty data written back to memory.
	WritebackBytes uint64
}

// Total returns the total bus traffic in bytes.
func (t Traffic) Total() uint64 { return t.FillBytes + t.WritebackBytes }

// MemoryTraffic aggregates bus traffic across the machine.
func (m *Machine) MemoryTraffic() Traffic {
	line := uint64(m.cfg.L2.LineSize)
	var t Traffic
	if m.shared != nil {
		// One machine-wide cache: read its stats once, not per CPU
		// (every hierarchy's L2 field aliases it).
		st := m.shared.Cache().Stats()
		t.FillBytes = st.Misses * line
		t.WritebackBytes = st.Writebacks * line
		return t
	}
	for _, cpu := range m.cpus {
		st := cpu.Hier.L2.Stats()
		t.FillBytes += st.Misses * line
		t.WritebackBytes += st.Writebacks * line
	}
	return t
}

// Totals sums the E-cache shadow counters across CPUs.
func (m *Machine) Totals() (refs, hits, misses uint64) {
	for _, cpu := range m.cpus {
		refs += cpu.ERefs
		hits += cpu.EHits
		misses += cpu.EMisses
	}
	return refs, hits, misses
}

// TotalInstrs sums instructions executed across CPUs.
func (m *Machine) TotalInstrs() uint64 {
	var n uint64
	for _, cpu := range m.cpus {
		n += cpu.Instrs
	}
	return n
}

// CheckCoherence verifies the write-invalidate invariants across the
// per-CPU E-caches and the directory (diagnostics and property tests):
//
//   - a line is dirty in at most one cache, and nowhere else at all;
//   - every resident copy is recorded in the directory's sharer set;
//   - every directory sharer bit corresponds to a resident copy;
//   - a line resident in two or more caches is marked shared in each.
//
// It returns a descriptive error for the first violation found.
//
// On a shared topology the directory does not exist; the corresponding
// invariants live in the shared cache and its sharer sets, checked by
// checkSharedCoherence.
func (m *Machine) CheckCoherence() error {
	if m.shared != nil {
		return m.checkSharedCoherence()
	}
	if m.dir == nil {
		return nil // uniprocessor: nothing to check
	}
	// Residency per line from the caches themselves.
	type residency struct {
		sharers cpuMask
		dirty   []int
	}
	lines := make(map[mem.Addr]*residency)
	for _, cpu := range m.cpus {
		id := cpu.ID
		cpu.Hier.L2.ForEachValidLine(func(line mem.Addr, _ mem.ThreadID) {
			r := lines[line]
			if r == nil {
				r = &residency{}
				lines[line] = r
			}
			r.sharers.set(id)
			if cpu.Hier.L2.IsDirty(line) {
				r.dirty = append(r.dirty, id)
			}
		})
	}
	for line, r := range lines {
		if len(r.dirty) > 1 {
			return fmt.Errorf("machine: line %#x dirty in caches %v", uint64(line), r.dirty)
		}
		if len(r.dirty) == 1 && !(r.sharers.count() == 1 && r.sharers.has(r.dirty[0])) {
			return fmt.Errorf("machine: line %#x dirty in cache %d but cached by mask %v",
				uint64(line), r.dirty[0], r.sharers)
		}
		e, ok := m.dir.lookup(line)
		if !ok || e.sharers.empty() {
			return fmt.Errorf("machine: line %#x resident (mask %v) but absent from directory", uint64(line), r.sharers)
		}
		if !e.sharers.covers(&r.sharers) {
			return fmt.Errorf("machine: line %#x resident mask %v not covered by directory mask %v",
				uint64(line), r.sharers, e.sharers)
		}
		if r.sharers.count() > 1 {
			var shareErr error
			r.sharers.forEach(func(i int) {
				if shareErr == nil && !m.cpus[i].Hier.L2.IsShared(line) {
					shareErr = fmt.Errorf("machine: line %#x cached by mask %v but unmarked shared on cpu %d",
						uint64(line), r.sharers, i)
				}
			})
			if shareErr != nil {
				return shareErr
			}
		}
	}
	// Directory entries must not claim residency that does not exist.
	var claimErr error
	m.dir.forEach(func(line mem.Addr, e dirEntry) {
		if claimErr != nil {
			return
		}
		var actual cpuMask
		if r := lines[line]; r != nil {
			actual = r.sharers
		}
		if !actual.covers(&e.sharers) {
			claimErr = fmt.Errorf("machine: directory claims mask %v for line %#x, resident mask %v",
				e.sharers, uint64(line), actual)
		}
	})
	return claimErr
}

// checkSharedCoherence verifies the shared-topology invariants:
//
//   - every resident shared-L2 line records at least one sharer, all of
//     them real CPUs;
//   - a line is marked shared exactly when its sharer set has two or
//     more members;
//   - every valid L1 line is covered by a resident shared-L2 line
//     (inclusion) whose sharer set includes the holding CPU — the
//     sharer sets are conservative supersets of L1 residency, so
//     coverage must never be violated in this direction.
func (m *Machine) checkSharedCoherence() error {
	sc := m.shared.Cache()
	var err error
	sc.ForEachValidLine(func(line mem.Addr, _ mem.ThreadID) {
		if err != nil {
			return
		}
		mask, _ := m.shared.Sharers(line)
		cm := cpuMask(mask)
		n := cm.count()
		if n == 0 {
			err = fmt.Errorf("machine: shared line %#x resident with an empty sharer set", uint64(line))
			return
		}
		bad := -1
		cm.forEach(func(i int) {
			if i >= m.cfg.CPUs {
				bad = i
			}
		})
		if bad >= 0 {
			err = fmt.Errorf("machine: shared line %#x records sharer %d beyond the %d-CPU machine",
				uint64(line), bad, m.cfg.CPUs)
			return
		}
		if sc.IsShared(line) != (n > 1) {
			err = fmt.Errorf("machine: shared line %#x has %d sharers but shared mark %v",
				uint64(line), n, sc.IsShared(line))
		}
	})
	if err != nil {
		return err
	}
	for _, cpu := range m.cpus {
		for _, l1 := range []*cachesim.Cache{cpu.Hier.L1I, cpu.Hier.L1D} {
			id, name := cpu.ID, l1.Config().Name
			l1.ForEachValidLine(func(l1line mem.Addr, _ mem.ThreadID) {
				if err != nil {
					return
				}
				if !sc.Contains(l1line) {
					err = fmt.Errorf("machine: cpu %d holds %#x in %s without a shared-L2 copy (inclusion)",
						id, uint64(l1line), name)
					return
				}
				mask, _ := m.shared.Sharers(l1line)
				cm := cpuMask(mask)
				if !cm.has(id) {
					err = fmt.Errorf("machine: cpu %d holds %#x in %s but is absent from sharer set %v",
						id, uint64(l1line), name, cm)
				}
			})
		}
	}
	return err
}
