package machine

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/mem"
)

// The shared topologies must be proven no-ops in their degenerate
// configurations: a shared LLC filled by a single CPU, and a 1-way
// "set-associative" shared cache, are both exactly the paper's private
// direct-mapped hierarchy. These differentials drive fuzzed access
// streams through a shared-topology machine and a private one and
// demand identical counters after every Apply — the same safety net
// fastapply_test.go gives the fused sweep, aimed at the topology seam.

// topoPair builds a shared-topology machine and its private reference
// with identical allocations.
func topoPair(t *testing.T, cfg Config, topo cachesim.Topology, ws uint64) (shared, private *Machine, span mem.Range) {
	t.Helper()
	scfg := cfg
	scfg.Topology = topo
	shared, private = New(scfg), New(cfg)
	span = shared.Alloc(ws, 0)
	if s2 := private.Alloc(ws, 0); s2 != span {
		t.Fatal("allocators diverged")
	}
	return shared, private, span
}

// fuzzStream issues steps fuzzed accesses on both machines, comparing
// miss counts per Apply and full counter fingerprints at the end.
func fuzzStream(t *testing.T, a, b *Machine, span mem.Range, seed uint64, steps int) {
	t.Helper()
	rng := refLCG(seed)
	for step := 0; step < steps; step++ {
		tid := mem.ThreadID(rng.next()%4 + 1)
		acc := mem.Access{
			Base:   span.Base + mem.Addr(rng.next()%span.Len),
			Count:  int32(rng.next()%96) + 1,
			Stride: int32(rng.next() % 40),
			Size:   uint16(1 << (rng.next() % 4)),
			Write:  rng.next()%3 == 0,
		}
		if uint64(acc.Base)+uint64(acc.Count)*uint64(acc.Stride)+uint64(acc.Size) >= uint64(span.Base)+span.Len {
			continue
		}
		am := a.Apply(0, tid, mem.Batch{acc})
		bm := b.Apply(0, tid, mem.Batch{acc})
		if am != bm {
			t.Fatalf("step %d: Apply(%+v): %d misses vs %d", step, acc, am, bm)
		}
		if rng.next()%64 == 0 {
			code := mem.Range{Base: span.Base + mem.Addr((rng.next()%4096)&^7), Len: 512}
			a.TouchCode(0, tid, code)
			b.TouchCode(0, tid, code)
		}
	}
	if got, want := cpuFingerprint(a, 1), cpuFingerprint(b, 1); got != want {
		t.Fatalf("counters diverged:\nshared:\n%s\nprivate:\n%s", got, want)
	}
}

func TestSharedDegeneratesToPrivate(t *testing.T) {
	topos := []cachesim.Topology{
		{Kind: cachesim.TopoSharedLLC},
		{Kind: cachesim.TopoSharedAssoc, Ways: 1},
	}
	for _, topo := range topos {
		t.Run(topo.String(), func(t *testing.T) {
			cfg := smallConfig(1)
			cfg.TLBEntries = 8
			shared, private, span := topoPair(t, cfg, topo, 32<<10)
			fuzzStream(t, shared, private, span, 314159, 4000)
			if err := shared.CheckCoherence(); err != nil {
				t.Fatalf("shared machine incoherent: %v", err)
			}
			if err := private.CheckCoherence(); err != nil {
				t.Fatalf("private machine incoherent: %v", err)
			}
		})
	}
}

// TestSharedDegenerateFootprints extends the equivalence to the
// tracker: registered-state footprints must agree between the shared
// cache's single tracker and the private per-CPU one.
func TestSharedDegenerateFootprints(t *testing.T) {
	cfg := smallConfig(1)
	cfg.TrackFootprints = true
	shared, private, span := topoPair(t, cfg, cachesim.Topology{Kind: cachesim.TopoSharedLLC}, 16<<10)
	reg := mem.Range{Base: span.Base, Len: span.Len / 2}
	shared.RegisterState(1, reg)
	private.RegisterState(1, reg)
	fuzzStream(t, shared, private, span, 271828, 2000)
	if got, want := shared.Footprint(0, 1), private.Footprint(0, 1); got != want {
		t.Fatalf("footprint diverged: shared %d, private %d", got, want)
	}
}

// TestSharedMultiCPUCoherence fuzzes multi-CPU traffic over every
// shared topology and checks the machine's coherence invariants
// (inclusion, sharer supersets, shared-mark consistency) along the way.
func TestSharedMultiCPUCoherence(t *testing.T) {
	topos := []cachesim.Topology{
		{Kind: cachesim.TopoSharedLLC},
		{Kind: cachesim.TopoSharedAssoc, Ways: 4},
		{Kind: cachesim.TopoSharedFA},
	}
	for _, topo := range topos {
		t.Run(topo.String(), func(t *testing.T) {
			cfg := smallConfig(4)
			cfg.Topology = topo
			cfg.TrackFootprints = true
			m := New(cfg)
			span := m.Alloc(32<<10, 0)
			m.RegisterState(1, mem.Range{Base: span.Base, Len: 8 << 10})
			rng := refLCG(161803)
			for step := 0; step < 3000; step++ {
				cpu := int(rng.next() % 4)
				tid := mem.ThreadID(rng.next()%4 + 1)
				acc := mem.Access{
					Base:   span.Base + mem.Addr(rng.next()%span.Len),
					Count:  int32(rng.next()%64) + 1,
					Stride: int32(rng.next() % 48),
					Size:   uint16(1 << (rng.next() % 4)),
					Write:  rng.next()%3 == 0,
				}
				if uint64(acc.Base)+uint64(acc.Count)*uint64(acc.Stride)+uint64(acc.Size) >= uint64(span.Base)+span.Len {
					continue
				}
				m.Apply(cpu, tid, mem.Batch{acc})
				if step%500 == 499 {
					if err := m.CheckCoherence(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("final: %v", err)
			}
			// A flush must clear every residency structure coherently.
			m.FlushCaches()
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("after flush: %v", err)
			}
			if got := m.Footprint(0, 1); got != 0 {
				t.Fatalf("footprint %d after flush, want 0", got)
			}
		})
	}
}
