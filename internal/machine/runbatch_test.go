package machine

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// The same-line run batching in Apply (applyRuns/repeatRefs) must be
// counter-for-counter identical to the per-reference loop. Count==1
// accesses always take the per-reference path, so issuing an access as
// Count separate single-reference accesses is the reference behaviour
// to differ against.

// refLCG mirrors the deterministic stream generator used by the
// cachesim differential tests.
type refLCG uint64

func (l *refLCG) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 11
}

func cpuFingerprint(m *Machine, cpus int) string {
	var s string
	for i := 0; i < cpus; i++ {
		c := m.CPU(i)
		s += fmt.Sprintf("cpu%d: cycles=%d instrs=%d erefs=%d ehits=%d emisses=%d tlb=%d pics=%v\n",
			i, c.Cycles, c.Instrs, c.ERefs, c.EHits, c.EMisses, c.TLBMisses, c.PMU.Read())
		l1d, l2 := c.Hier.L1D.Stats(), c.Hier.L2.Stats()
		s += fmt.Sprintf("  l1d=%+v\n  l2=%+v\n", l1d, l2)
		s += fmt.Sprintf("  l1dvalid=%d l2valid=%d\n", c.Hier.L1D.ValidLines(), c.Hier.L2.ValidLines())
	}
	return s
}

func TestApplyRunBatchingMatchesPerReference(t *testing.T) {
	for _, cpus := range []int{1, 2} {
		cfg := smallConfig(cpus)
		cfg.TLBEntries = 8
		batched := New(cfg)
		single := New(cfg)
		span := batched.Alloc(32*1024, 0)
		if s2 := single.Alloc(32*1024, 0); s2 != span {
			t.Fatal("allocators diverged")
		}

		rng := refLCG(424242)
		for step := 0; step < 4000; step++ {
			cpu := int(rng.next()) % cpus
			tid := mem.ThreadID(rng.next() % 4)
			a := mem.Access{
				Base:   span.Base + mem.Addr(rng.next()%span.Len),
				Count:  int32(rng.next()%40) + 1,
				Stride: int32(rng.next() % 24), // includes 0 and sub-line strides
				Size:   uint16(1 << (rng.next() % 4)),
				Write:  rng.next()%3 == 0,
			}
			if uint64(a.Base)+uint64(a.Count)*uint64(a.Stride)+uint64(a.Size) >= uint64(span.Base)+span.Len {
				continue // stay inside the allocation
			}
			got := batched.Apply(cpu, tid, mem.Batch{a})
			// Decompose into Count single-reference accesses, which
			// never take the batching path.
			var want uint64
			for i := int32(0); i < a.Count; i++ {
				one := mem.Access{
					Base:   a.Base + mem.Addr(int64(i)*int64(a.Stride)),
					Count:  1,
					Stride: 0,
					Size:   a.Size,
					Write:  a.Write,
				}
				want += single.Apply(cpu, tid, mem.Batch{one})
			}
			if got != want {
				t.Fatalf("step %d: Apply(%+v) returned %d misses, per-ref loop %d", step, a, got, want)
			}
		}
		got, want := cpuFingerprint(batched, cpus), cpuFingerprint(single, cpus)
		if got != want {
			t.Fatalf("cpus=%d: counters diverged:\nbatched:\n%s\nper-ref:\n%s", cpus, got, want)
		}
	}
}
