package experiments

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workloads"
)

// BreakdownRow is one application's steady-state E-cache miss
// composition by Hill's three C's.
type BreakdownRow struct {
	App      string
	Class    string
	Stats    cachesim.ClassifyStats
	Conflict float64 // conflict fraction of all misses
}

// BreakdownResult classifies the study applications' misses. It
// substantiates the Figure 7 diagnosis quantitatively: for raytrace and
// typechecker "the majority of misses are conflict misses that do not
// significantly increase the footprint", while the well-predicted
// applications are dominated by capacity and compulsory misses that do
// grow the footprint the way the model expects.
type BreakdownResult struct {
	Rows []BreakdownRow
}

// MissBreakdown runs each study application's stream on a classifying
// uniprocessor for a fixed reference budget.
func MissBreakdown(cfg StudyConfig) *BreakdownResult {
	cfg = cfg.withDefaults(40000)
	res := &BreakdownResult{}
	for _, app := range workloads.StudyApps() {
		mcfg := machine.UltraSPARC1()
		mcfg.ClassifyMisses = true
		m := workloads.StreamRun(app, mcfg, cfg.Seed, 1_200_000)
		st := m.CPU(0).Hier.L2.ClassifyStats()
		row := BreakdownRow{App: app.Name, Class: app.Class, Stats: st}
		if t := st.Total(); t > 0 {
			row.Conflict = float64(st.Conflict) / float64(t)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ConflictFraction returns the conflict-miss fraction for one app.
func (r *BreakdownResult) ConflictFraction(app string) float64 {
	for _, row := range r.Rows {
		if row.App == app {
			return row.Conflict
		}
	}
	return 0
}

// Render produces the breakdown table.
func (r *BreakdownResult) Render() string {
	tbl := report.NewTable("E-cache miss breakdown (Hill's three C's), per study application",
		"app", "class", "compulsory", "capacity", "conflict", "conflict %")
	for _, row := range r.Rows {
		tbl.AddRow(row.App, row.Class,
			fmt.Sprint(row.Stats.Compulsory),
			fmt.Sprint(row.Stats.Capacity),
			fmt.Sprint(row.Stats.Conflict),
			fmt.Sprintf("%.0f%%", 100*row.Conflict))
	}
	tbl.Note("the Figure 7 anomalies (raytrace, typechecker) are conflict-dominated — misses that grow the miss count but not the footprint")
	return tbl.String()
}
