package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// Pinned fingerprints of the quick-scale Figure 9 grid at 8 and 64
// simulated CPUs. These exist to catch silent behavioural drift from
// hot-path rewrites (the flat scheduler arena, the dense sweep lane and
// its hit-streak, the runtime-sized coherence directory, the CPU clock
// heap): any of those may change *performance* freely, but the rendered
// experiment output must stay byte-identical. If a change is *meant* to
// alter results, update the constants with the values from the failure
// message and say why in the commit.
var fig9Fingerprints = map[int]string{
	8:  "5a59b150b5310562a79fb995fa0c8c8186c6dba7a5807285cc7bcfc2059a777f",
	64: "ad09f7f733c6b787a23269b54865c11362ff9a2da2680f3969747897c70183b9",
}

// Pinned fingerprints of the shared-LLC report: the co-runner accuracy
// study and the policy matrix on both topologies. The private-dm column
// doubles as a degeneracy golden — it must keep hashing the same as the
// shared-aware policies keep degrading to their bases there. Same update
// rule as fig9Fingerprints: intentional result changes re-pin with an
// explanation in the commit.
var (
	sharedAccuracyFingerprint = "eaae2b65691cb74e6c9fa88b03d61afd28508924171fdc5fc672a80b2ba2e057"
	sharedMatrixFingerprints  = map[string]string{
		"shared-llc": "2f510928d0ac45e43322cdfe4c018cf75aec77274083c5ac00df8cf5e40859d5",
		"private-dm": "6cc88a2286066f566a11287fae73a9330e8fca96b309a9f3c572e77c2ef5812c",
	}
)

// TestFig9FingerprintsAcrossJobs pins the quick Fig9 output at 8 and
// 64 CPUs and verifies the parallel cell driver is invisible: the same
// grid computed with -j1 and -j8 must hash to the same pinned value.
func TestFig9FingerprintsAcrossJobs(t *testing.T) {
	for _, ncpu := range []int{8, 64} {
		for _, jobs := range []int{1, 8} {
			cfg := quickSched
			cfg.CPUs = ncpu
			cfg.Jobs = jobs
			r, err := Fig9(cfg)
			if err != nil {
				t.Fatalf("Fig9 ncpu=%d jobs=%d: %v", ncpu, jobs, err)
			}
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(r.Render())))
			if want := fig9Fingerprints[ncpu]; got != want {
				t.Errorf("Fig9 ncpu=%d jobs=%d fingerprint = %s, want %s",
					ncpu, jobs, got, want)
			}
		}
	}
}

// TestSharedLLCFingerprints pins the shared-LLC accuracy study and the
// topology policy matrix (both topologies, serial and parallel cell
// drivers) byte-for-byte.
func TestSharedLLCFingerprints(t *testing.T) {
	acc := SharedLLC(StudyConfig{})
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(acc.Render()))); got != sharedAccuracyFingerprint {
		t.Errorf("accuracy study fingerprint = %s, want %s", got, sharedAccuracyFingerprint)
	}
	for topo, want := range sharedMatrixFingerprints {
		for _, jobs := range []int{1, 8} {
			cfg := sharedQuick
			cfg.Jobs = jobs
			cfg.Topology = topo
			r, err := SharedLLCSched(cfg)
			if err != nil {
				t.Fatalf("SharedLLCSched %s jobs=%d: %v", topo, jobs, err)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256([]byte(r.Render()))); got != want {
				t.Errorf("matrix %s jobs=%d fingerprint = %s, want %s", topo, jobs, got, want)
			}
		}
	}
}
