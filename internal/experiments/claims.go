package experiments

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/report"
)

// Claim is one testable statement from the paper with its measured
// verdict.
type Claim struct {
	ID        string
	Statement string
	Holds     bool
	Evidence  string
}

// ValidateResult is the conformance suite: every qualitative claim the
// paper makes, checked in one run at the given scale.
type ValidateResult struct {
	Claims []Claim
}

// Passed counts holding claims.
func (v *ValidateResult) Passed() (ok, total int) {
	for _, c := range v.Claims {
		if c.Holds {
			ok++
		}
	}
	return ok, len(v.Claims)
}

// Validate runs the conformance suite. With cfg.Scale = 1 it takes
// about a minute; the reduced scales weaken some margins but every
// claim below is chosen to be scale-robust above ~0.25.
func Validate(cfg SchedConfig, study StudyConfig) (*ValidateResult, error) {
	cfg = cfg.withDefaults()
	study = study.withDefaults(40000)
	v := &ValidateResult{}
	add := func(id, statement string, holds bool, evidence string, args ...any) {
		v.Claims = append(v.Claims, Claim{
			ID: id, Statement: statement, Holds: holds,
			Evidence: fmt.Sprintf(evidence, args...),
		})
	}

	// --- Model claims (Sections 2-3) ---------------------------------
	mdl := model.New(8192)
	mk := model.NewMarkov(128, 0.4)
	chain, closed := mk.Expected(32, 200), model.New(128).ExpectDep(32, 0.4, 200)
	add("markov", "the appendix Markov chain yields the case-3 closed form",
		abs(chain-closed) < 1e-6, "chain %.6f vs closed %.6f", chain, closed)

	q1 := abs(mdl.ExpectDep(100, 1, 500)-mdl.ExpectSelf(100, 500)) < 1e-9
	q0 := abs(mdl.ExpectDep(100, 0, 500)-mdl.ExpectIndep(100, 500)) < 1e-9
	add("limits", "case 3 reduces to case 1 at q=1 and case 2 at q=0",
		q1 && q0, "q=1 match %v, q=0 match %v", q1, q0)

	fig4 := Fig4(study)
	add("fig4", "random-walk footprints match the model (excellent correspondence)",
		fig4.MaxRelError() < 0.08, "worst mean relative error %.3f", fig4.MaxRelError())

	fig5 := Fig5(study)
	cOver, sGood := true, true
	for _, r := range fig5 {
		if r.App.Class == "SPLASH-2 (C)" && r.Bias < 0 {
			cOver = false
		}
		if (r.App.Name == "merge" || r.App.Name == "tsp") && r.RelErr > 0.10 {
			sGood = false
		}
	}
	add("fig5", "C applications slightly overpredicted; merge/tsp in good agreement",
		cOver && sGood, "C overestimated: %v, Sather close: %v", cOver, sGood)

	fig7 := Fig7(study)
	over := 0
	for _, r := range fig7 {
		if r.Overestimated() {
			over++
		}
	}
	add("fig7", "typechecker and raytrace footprints substantially overestimated",
		over == 2, "%d of 2 anomalies overestimated", over)

	breakdown := MissBreakdown(study)
	ray := breakdown.ConflictFraction("raytrace")
	add("conflict", "raytrace's misses are majority conflict misses",
		ray > 0.5, "raytrace conflict fraction %.2f", ray)

	// --- Priority framework claims (Section 4) -----------------------
	t3 := Table3()
	indepZero, boundedCost := true, true
	for _, r := range t3.Rows {
		if r.Class == "independent thread" && r.FLOPs != 0 {
			indepZero = false
		}
		if r.FLOPs > 10 {
			boundedCost = false
		}
	}
	add("table3", "priority updates cost a few FP instructions; independent threads cost zero",
		indepZero && boundedCost, "independent zero: %v, all <= 10 FLOPs: %v", indepZero, boundedCost)

	// --- Scheduling claims (Section 5) -------------------------------
	uni, err := Fig8(cfg)
	if err != nil {
		return nil, err
	}
	smpCfg := cfg
	smpCfg.CPUs = 8
	smp, err := Fig9(smpCfg)
	if err != nil {
		return nil, err
	}

	add("tasks", "tasks: locality policies eliminate most misses and run >2x on one CPU (counters only, no annotations)",
		uni.Eliminated("tasks", "CRT") > 80 && uni.Speedup("tasks", "CRT") > 1.8,
		"eliminated %.0f%%, speedup %.2f", uni.Eliminated("tasks", "CRT"), uni.Speedup("tasks", "CRT"))

	photoUni := uni.Speedup("photo", "LFF")
	add("photo-uni", "photo: FCFS is already near-optimal on one CPU; locality policies pay a small overhead (~0.97x)",
		photoUni >= 0.93 && photoUni <= 1.02 && uni.Eliminated("photo", "LFF") < 5,
		"speedup %.2f, eliminated %.1f%%", photoUni, uni.Eliminated("photo", "LFF"))

	add("photo-smp", "photo flips on the SMP: locality policies eliminate a large share of misses and win clearly",
		smp.Eliminated("photo", "LFF") > 35 && smp.Speedup("photo", "LFF") > 1.1,
		"eliminated %.0f%%, speedup %.2f", smp.Eliminated("photo", "LFF"), smp.Speedup("photo", "LFF"))

	add("tsp", "tsp: compulsory misses cap the uniprocessor win; the SMP win is several times larger",
		uni.Eliminated("tsp", "LFF") < 15 &&
			smp.Eliminated("tsp", "LFF") > 2*max0(uni.Eliminated("tsp", "LFF")),
		"1cpu %.1f%%, 8cpu %.1f%%", uni.Eliminated("tsp", "LFF"), smp.Eliminated("tsp", "LFF"))

	add("merge", "merge: locality policies win via the parent/child annotations on both platforms",
		uni.Eliminated("merge", "LFF") > 10 && smp.Eliminated("merge", "LFF") > 10,
		"1cpu %.1f%%, 8cpu %.1f%%", uni.Eliminated("merge", "LFF"), smp.Eliminated("merge", "LFF"))

	lffCrtClose := true
	for _, app := range smp.Apps {
		if abs(smp.Eliminated(app, "LFF")-smp.Eliminated(app, "CRT")) > 25 {
			lffCrtClose = false
		}
	}
	add("lff-crt", "LFF and CRT perform quite similarly",
		lffCrtClose, "max elimination gap within 25 points on the SMP")

	src, err := SourcesStudy(smpCfg)
	if err != nil {
		return nil, err
	}
	tasksRow := src.Row("tasks")
	add("src-tasks", "tasks' benefit comes from the cache feedback exclusively (annotations irrelevant for disjoint state)",
		tasksRow.CounterShare > 0.9,
		"counters provide %.0f%% of the elimination", 100*tasksRow.CounterShare)
	mergeRow := src.Row("merge")
	add("src-merge", "merge's speedup comes almost entirely through the user annotations",
		mergeRow.ElimFull > 10 && mergeRow.CounterShare < 0.35,
		"counters alone %.1f%% of %.1f%% (share %.0f%%)", mergeRow.ElimCounters, mergeRow.ElimFull, 100*mergeRow.CounterShare)
	tspRow := src.Row("tsp")
	add("src-tsp", "tsp's speedup is mostly due to preserving locality within a thread (counters; annotations add little)",
		tspRow.CounterShare > 0.6,
		"counters provide %.0f%% of the elimination", 100*tspRow.CounterShare)

	abl, err := AblationPhoto(smpCfg)
	if err != nil {
		return nil, err
	}
	add("annotations", "annotations strictly add benefit on photo (the ablation keeps a remainder, annotations keep more)",
		abl.ElimFull > abl.ElimNoAnno && abl.ElimNoAnno > -5,
		"with %.1f%%, without %.1f%%", abl.ElimFull, abl.ElimNoAnno)

	// --- Extension claims (Section 7 / stated limitations) -----------
	assoc := AssocStudy(2, StudyConfig{MaxMisses: study.MaxMisses / 2, Seed: study.Seed})
	ae, de := assoc.Errors()
	add("assoc", "the model extends to the associative cache case (Section 2.1): the per-set extension fits a 2-way LRU cache far better than the direct-mapped form",
		ae < de/3, "assoc RMSE %.0f vs direct-mapped %.0f", ae, de)

	inval := model.New(8192)
	iv := inval.ExpectDepInval(0, 0.6, 0.3, 1<<22)
	add("inval", "invalidation pressure (the Section 3.4 limitation) lowers the dependent plateau to qN/(1+v)",
		abs(iv-0.6*8192/1.3) < 1, "plateau %.0f vs qN/(1+v) %.0f", iv, 0.6*8192/1.3)

	inf, err := InferenceStudy("photo", smpCfg)
	if err != nil {
		return nil, err
	}
	add("infer", "some sharing patterns can be inferred without user intervention (Section 7): CML-style inference beats no-information scheduling on photo",
		inf.Inferred.EMisses < inf.None.EMisses && inf.Inferred.EMisses > inf.Annotated.EMisses,
		"annotated %d < inferred %d < none %d misses", inf.Annotated.EMisses, inf.Inferred.EMisses, inf.None.EMisses)

	mapping := PageMapping(StudyConfig{Seed: study.Seed})
	wins := 0
	for _, row := range mapping.Rows {
		if row.Percent > 0 {
			wins++
		}
	}
	add("mapping", "careful page mapping performs better than naive placement (Kessler & Hill, adopted by the paper's simulator)",
		wins >= len(mapping.Rows)/2+1, "careful wins on %d of %d streams", wins, len(mapping.Rows))

	return v, nil
}

// Render produces the conformance report.
func (v *ValidateResult) Render() string {
	var b strings.Builder
	tbl := report.NewTable("Paper-claim conformance suite", "claim", "verdict", "evidence", "statement")
	for _, c := range v.Claims {
		verdict := "PASS"
		if !c.Holds {
			verdict = "FAIL"
		}
		tbl.AddRow(c.ID, verdict, c.Evidence, c.Statement)
	}
	ok, total := v.Passed()
	tbl.Note("%d of %d claims hold at this scale", ok, total)
	tbl.WriteTo(&b)
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max0(x float64) float64 {
	if x < 0.5 {
		return 0.5 // avoid a trivial 2x bound when the 1cpu win is ~0
	}
	return x
}
