package experiments

// Driver-level crash-safety tests: checkpointing must be invisible in
// the results, resume must reproduce the straight run exactly, and a
// multi-cell experiment must resume per cell for any worker count.

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointInvisibleInResults(t *testing.T) {
	base := SchedConfig{CPUs: 2, Scale: 0.1, Seed: 11}
	plain, err := RunSched("tasks", "LFF", base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ck := base
	ck.CheckpointEvery = 20000
	ck.CheckpointDir = dir
	withCkpt, err := RunSched("tasks", "LFF", ck)
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCkpt {
		t.Errorf("checkpointing changed the result:\nplain: %+v\nckpt:  %+v", plain, withCkpt)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one snapshot file in %s, got %v (%v)", dir, ents, err)
	}
	if name := ents[0].Name(); filepath.Ext(name) != ".snap" {
		t.Errorf("snapshot file %q lacks .snap extension", name)
	}

	// Resuming the completed run re-executes, verifies against the last
	// boundary, and lands on identical counters.
	ck.Resume = true
	resumed, err := RunSched("tasks", "LFF", ck)
	if err != nil {
		t.Fatal(err)
	}
	if plain != resumed {
		t.Errorf("resumed run differs:\nplain:   %+v\nresumed: %+v", plain, resumed)
	}

	// Resume with no snapshot present starts fresh rather than failing —
	// the property that lets an interrupted sweep restart wholesale.
	ck.CheckpointDir = t.TempDir()
	fresh, err := RunSched("tasks", "LFF", ck)
	if err != nil {
		t.Fatal(err)
	}
	if plain != fresh {
		t.Errorf("fresh-start resume differs: %+v vs %+v", plain, fresh)
	}
}

func TestCheckpointResumeAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	seq := quickSched
	seq.Jobs = 1
	seq.CheckpointEvery = 20000
	seq.CheckpointDir = dir

	a, err := Fig8(seq)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no per-cell snapshots written: %v (%v)", ents, err)
	}

	// Every cell resumes from its own snapshot, fanned across workers;
	// the rendered table must be byte-identical.
	par := seq
	par.Jobs = 8
	par.Resume = true
	b, err := Fig8(par)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Render(), a.Render(); got != want {
		t.Fatalf("-j8 resumed output differs from -j1 straight:\nresumed:\n%s\nstraight:\n%s", got, want)
	}
}
