package experiments

import (
	"fmt"
	"strings"

	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig89Result holds the Figure 8 / Figure 9 measurements: total E-cache
// misses and overall performance for every application under every
// policy on one platform.
type Fig89Result struct {
	Figure string // "Figure 8" or "Figure 9"
	CPUs   int
	// Runs[app][policy]
	Runs map[string]map[string]PolicyRun
	Apps []string
}

// Fig8 reproduces Figure 8: the performance impact of locality
// scheduling on the single-processor Ultra-1.
func Fig8(cfg SchedConfig) (*Fig89Result, error) {
	cfg.CPUs = 1
	return fig89("Figure 8", cfg)
}

// Fig9 reproduces Figure 9: the performance impact on the 8-CPU
// Enterprise 5000.
func Fig9(cfg SchedConfig) (*Fig89Result, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	return fig89("Figure 9", cfg)
}

func fig89(figure string, cfg SchedConfig) (*Fig89Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig89Result{
		Figure: figure,
		CPUs:   cfg.CPUs,
		Runs:   make(map[string]map[string]PolicyRun),
	}
	// The (app × policy) cells are independent — each owns its machine
	// and RNG stream — so fan them across workers and collect by index.
	type cell struct{ app, policy string }
	var cells []cell
	for _, app := range workloads.SchedApps() {
		res.Apps = append(res.Apps, app.Name)
		for _, policy := range Policies {
			cells = append(cells, cell{app.Name, policy})
		}
	}
	runs, err := parallel.Map(cfg.Jobs, len(cells), func(i int) (PolicyRun, error) {
		return RunSched(cells[i].app, cells[i].policy, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if res.Runs[c.app] == nil {
			res.Runs[c.app] = make(map[string]PolicyRun)
		}
		res.Runs[c.app][c.policy] = runs[i]
	}
	return res, nil
}

// Eliminated returns the percentage of FCFS E-misses the policy
// eliminated for app.
func (r *Fig89Result) Eliminated(app, policy string) float64 {
	base := r.Runs[app]["FCFS"]
	run := r.Runs[app][policy]
	return stats.PercentEliminated(float64(base.EMisses), float64(run.EMisses))
}

// Speedup returns the relative performance of the policy vs FCFS for
// app (FCFS cycles / policy cycles).
func (r *Fig89Result) Speedup(app, policy string) float64 {
	base := r.Runs[app]["FCFS"]
	run := r.Runs[app][policy]
	return stats.Ratio(float64(base.Cycles), float64(run.Cycles))
}

// Render produces the two panels of the figure: total E-cache misses
// (normalized to FCFS) and relative performance.
func (r *Fig89Result) Render() string {
	var b strings.Builder
	platform := "1-CPU Ultra-1"
	if r.CPUs > 1 {
		platform = fmt.Sprintf("%d-CPU E5000", r.CPUs)
	}

	misses := report.NewTable(
		fmt.Sprintf("%s — Total E-cache misses, %s (normalized to FCFS; absolute in parentheses)", r.Figure, platform),
		"app", "FCFS", "LFF", "CRT", "LFF elim%", "CRT elim%")
	for _, app := range r.Apps {
		base := r.Runs[app]["FCFS"]
		norm := func(p string) string {
			run := r.Runs[app][p]
			return fmt.Sprintf("%.3f (%d)", stats.Ratio(float64(run.EMisses), float64(base.EMisses)), run.EMisses)
		}
		misses.AddRow(app, norm("FCFS"), norm("LFF"), norm("CRT"),
			fmt.Sprintf("%.1f", r.Eliminated(app, "LFF")),
			fmt.Sprintf("%.1f", r.Eliminated(app, "CRT")))
	}
	misses.WriteTo(&b)
	b.WriteString("\n")

	perf := report.NewTable(
		fmt.Sprintf("%s — Performance relative to FCFS, %s (higher is better)", r.Figure, platform),
		"app", "FCFS", "LFF", "CRT", "FCFS cycles")
	for _, app := range r.Apps {
		perf.AddRow(app, "1.00",
			fmt.Sprintf("%.2f", r.Speedup(app, "LFF")),
			fmt.Sprintf("%.2f", r.Speedup(app, "CRT")),
			fmt.Sprintf("%d", r.Runs[app]["FCFS"].Cycles))
	}
	perf.WriteTo(&b)
	return b.String()
}

// Table5Result summarizes CRT relative to FCFS on both platforms, as the
// paper's Table 5 does (LFF numbers are quite similar, and are included
// for completeness).
type Table5Result struct {
	Uni *Fig89Result
	SMP *Fig89Result
}

// Table5 reproduces Table 5 from fresh Figure 8 and Figure 9 runs.
func Table5(cfg SchedConfig) (*Table5Result, error) {
	uni, err := Fig8(cfg)
	if err != nil {
		return nil, err
	}
	cfg.CPUs = 8
	smp, err := Fig9(cfg)
	if err != nil {
		return nil, err
	}
	return &Table5Result{Uni: uni, SMP: smp}, nil
}

// Render produces the Table 5 rows.
func (t *Table5Result) Render() string {
	tbl := report.NewTable("Table 5 — CRT relative to FCFS",
		"app",
		"E-misses eliminated% (1cpu Ultra-1)", "E-misses eliminated% (8cpu E5000)",
		"Relative perf (1cpu Ultra-1)", "Relative perf (8cpu E5000)")
	for _, app := range t.Uni.Apps {
		tbl.AddRow(app,
			fmt.Sprintf("%.0f%%", t.Uni.Eliminated(app, "CRT")),
			fmt.Sprintf("%.0f%%", t.SMP.Eliminated(app, "CRT")),
			fmt.Sprintf("%.2f", t.Uni.Speedup(app, "CRT")),
			fmt.Sprintf("%.2f", t.SMP.Speedup(app, "CRT")))
	}
	tbl.Note("paper: tasks 92%%/64%%, 2.38/1.45; merge 57%%/77%%, 1.59/1.50; photo -1%%/71%%, 0.97/2.12; tsp 12%%/73%%, 1.04/1.51")
	lff := report.NewTable("LFF relative to FCFS (the paper notes LFF is quite similar to CRT)",
		"app", "elim% (1cpu)", "elim% (8cpu)", "perf (1cpu)", "perf (8cpu)")
	for _, app := range t.Uni.Apps {
		lff.AddRow(app,
			fmt.Sprintf("%.0f%%", t.Uni.Eliminated(app, "LFF")),
			fmt.Sprintf("%.0f%%", t.SMP.Eliminated(app, "LFF")),
			fmt.Sprintf("%.2f", t.Uni.Speedup(app, "LFF")),
			fmt.Sprintf("%.2f", t.SMP.Speedup(app, "LFF")))
	}
	return tbl.String() + "\n" + lff.String()
}

// AblationResult is the Section 5 annotation ablation: how much of
// photo's LFF benefit survives without user annotations (the paper:
// 41% of the eliminated misses, 53% of the speedup).
type AblationResult struct {
	CPUs                 int
	FCFS, Full, NoAnnot  PolicyRun
	ElimFull, ElimNoAnno float64
	SpeedFull, SpeedNo   float64
}

// AblationPhoto runs photo on the SMP under FCFS, LFF, and LFF with
// annotations disabled.
func AblationPhoto(cfg SchedConfig) (*AblationResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()
	noCfg := cfg
	noCfg.DisableAnnotations = true
	variants := []struct {
		policy string
		cfg    SchedConfig
	}{{"FCFS", cfg}, {"LFF", cfg}, {"LFF", noCfg}}
	runs, err := parallel.Map(cfg.Jobs, len(variants), func(i int) (PolicyRun, error) {
		return RunSched("photo", variants[i].policy, variants[i].cfg)
	})
	if err != nil {
		return nil, err
	}
	fcfs, full, noAnnot := runs[0], runs[1], runs[2]
	res := &AblationResult{
		CPUs: cfg.CPUs, FCFS: fcfs, Full: full, NoAnnot: noAnnot,
		ElimFull:   stats.PercentEliminated(float64(fcfs.EMisses), float64(full.EMisses)),
		ElimNoAnno: stats.PercentEliminated(float64(fcfs.EMisses), float64(noAnnot.EMisses)),
		SpeedFull:  stats.Ratio(float64(fcfs.Cycles), float64(full.Cycles)),
		SpeedNo:    stats.Ratio(float64(fcfs.Cycles), float64(noAnnot.Cycles)),
	}
	return res, nil
}

// ElimRetained returns the share of the fully-annotated miss
// elimination that survives without annotations (paper: 41%).
func (a *AblationResult) ElimRetained() float64 {
	if a.ElimFull <= 0 {
		return 0
	}
	return 100 * a.ElimNoAnno / a.ElimFull
}

// SpeedupRetained returns the share of the fully-annotated speedup gain
// that survives without annotations (paper: 53%).
func (a *AblationResult) SpeedupRetained() float64 {
	if a.SpeedFull <= 1 {
		return 0
	}
	return 100 * (a.SpeedNo - 1) / (a.SpeedFull - 1)
}

// Render produces the ablation summary.
func (a *AblationResult) Render() string {
	tbl := report.NewTable(
		fmt.Sprintf("Annotation ablation — photo, LFF, %d CPUs", a.CPUs),
		"variant", "E-misses", "eliminated%", "relative perf")
	tbl.AddRow("FCFS", fmt.Sprint(a.FCFS.EMisses), "-", "1.00")
	tbl.AddRow("LFF (annotations)", fmt.Sprint(a.Full.EMisses),
		fmt.Sprintf("%.1f", a.ElimFull), fmt.Sprintf("%.2f", a.SpeedFull))
	tbl.AddRow("LFF (no annotations)", fmt.Sprint(a.NoAnnot.EMisses),
		fmt.Sprintf("%.1f", a.ElimNoAnno), fmt.Sprintf("%.2f", a.SpeedNo))
	tbl.Note("without annotations LFF retains %.0f%% of the miss elimination and %.0f%% of the speedup (paper: 41%% and 53%%)",
		a.ElimRetained(), a.SpeedupRetained())
	return tbl.String()
}
