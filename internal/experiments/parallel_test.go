package experiments

import (
	"testing"

	"repro/internal/workloads"
)

// The parallel experiment driver must be invisible in the results:
// every cell runs on its own machine with its own generator, cells are
// enumerated in a fixed order, and collection is index-addressed, so
// the rendered output is byte-identical for any worker count. These
// tests pin that contract (and, under -race, exercise the fan-out for
// data races).

func TestFig8ParallelDeterminism(t *testing.T) {
	seq := quickSched
	seq.Jobs = 1
	par := quickSched
	par.Jobs = 8

	a, err := Fig8(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(par)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Render(), a.Render(); got != want {
		t.Fatalf("-j8 output differs from -j1:\n-j8:\n%s\n-j1:\n%s", got, want)
	}
}

func TestAblationParallelDeterminism(t *testing.T) {
	seq := quickSched
	seq.Scale = 0.1
	seq.CPUs = 4
	seq.Jobs = 1
	par := seq
	par.Jobs = 8

	a, err := AblationPhoto(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AblationPhoto(par)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Render(), a.Render(); got != want {
		t.Fatalf("-j8 output differs from -j1:\n-j8:\n%s\n-j1:\n%s", got, want)
	}
}

func TestStudyAllParallelDeterminism(t *testing.T) {
	seq := StudyConfig{Seed: 7, MaxMisses: 4000, Jobs: 1}
	par := seq
	par.Jobs = 8

	a := StudyAll(workloads.Fig5Apps(), seq)
	b := StudyAll(workloads.Fig5Apps(), par)
	if got, want := RenderFootprints("study", b), RenderFootprints("study", a); got != want {
		t.Fatalf("-j8 output differs from -j1:\n-j8:\n%s\n-j1:\n%s", got, want)
	}
}
