package experiments

// The shared-LLC study: the model-vs-simulator accuracy experiment for
// the co-runner-aware closed forms (mirroring the Figure 4–7
// methodology on a shared last-level cache), and the policy matrix
// comparing the shared-aware LFF/CRT variants against the paper's
// policies and FCFS under the same topology.

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// SharedPolicies are the policies the shared-LLC matrix compares:
// the paper's three plus the shared-cache-aware variants.
var SharedPolicies = []string{"FCFS", "LFF", "CRT", "LFF-SH", "CRT-SH"}

// SharedLLCResult holds the shared-LLC accuracy panels: two random
// walkers co-running on a 2-CPU shared-llc E5000, with the model's
// shared-cache forms predicting observed footprints in the one cache.
type SharedLLCResult struct {
	N int // shared-cache size in lines
	// A: the executing walker under co-runner eviction pressure, one
	// curve per pressure ratio / initial footprint:
	// E = pN − (pN−S)k^M, p = own/total.
	A []*Curve
	// B: a sleeping independent thread decaying under the *total* miss
	// clock (both walkers pressing): E = S·k^M.
	B []*Curve
	// C: a sleeping thread sharing q=0.5 of the co-runner's region,
	// with the diluted coefficient: E = q·(own₁/M)·N·(1−k^M) + S·k^M.
	C []*Curve
}

// sharedRig is the apparatus: a 2-CPU shared-llc machine with one
// random walker per CPU over disjoint regions, each much larger than
// the cache so misses distribute uniformly over the sets.
type sharedRig struct {
	cfg          StudyConfig
	mach         *machine.Machine
	mdl          *model.Model
	rng          *xrand.Source
	walk0, walk1 mem.Range
}

const (
	sharedWalker0TID mem.ThreadID = 0
	sharedWalker1TID mem.ThreadID = 1
	sharedFirstTID   mem.ThreadID = 2
)

func newSharedRig(cfg StudyConfig) *sharedRig {
	mcfg := machine.Enterprise5000(2)
	mcfg.Topology = cachesim.Topology{Kind: cachesim.TopoSharedLLC}
	mcfg.TrackFootprints = true
	m := machine.New(mcfg)
	r := &sharedRig{
		cfg:  cfg,
		mach: m,
		mdl:  model.New(mcfg.L2.Lines()),
		rng:  xrand.New(cfg.Seed),
		// Disjoint walk regions, each 64x the cache, for the same
		// reason as the Figure 4 rig: misses must sample the sets
		// uniformly for the closed forms' independence assumption.
		walk0: m.AllocPages(uint64(64 * mcfg.L2.Size)),
		walk1: m.AllocPages(uint64(64 * mcfg.L2.Size)),
	}
	m.RegisterState(sharedWalker0TID, r.walk0)
	m.RegisterState(sharedWalker1TID, r.walk1)
	return r
}

func (r *sharedRig) lineSize() uint64 { return uint64(r.mach.Config().L2.LineSize) }

// preload touches lines distinct random lines of region on behalf of
// tid (on CPU 0; the cache is shared, so the filling CPU is
// immaterial to residency).
func (r *sharedRig) preload(tid mem.ThreadID, region mem.Range, lines int) {
	total := int(region.Lines(r.lineSize()))
	if lines > total {
		lines = total
	}
	perm := r.rng.Perm(total)
	batch := make(mem.Batch, 0, lines)
	for _, li := range perm[:lines] {
		batch = append(batch, mem.Access{
			Base: region.Base + mem.Addr(uint64(li)*r.lineSize()), Count: 1, Size: 8,
		})
	}
	r.mach.Apply(0, tid, batch)
}

// run co-runs the walkers — walker 0 on CPU 0, walker 1 on CPU 1,
// coRatio batches of walker 1 per batch of walker 0 (0 = walker 0
// alone) — sampling the observed footprint of watch every checkpoint
// of the *total* miss clock until MaxMisses. predict supplies the
// model value from the actual per-walker and total miss counts at the
// sample instant.
func (r *sharedRig) run(watch mem.ThreadID, coRatio int, predict func(own0, own1, total uint64) float64) *Curve {
	gen0 := trace.NewGen(trace.Uniform(r.walk0), r.rng.Uint64())
	gen1 := trace.NewGen(trace.Uniform(r.walk1), r.rng.Uint64())
	cpu0, cpu1 := r.mach.CPU(0), r.mach.CPU(1)
	m0, m1 := cpu0.EMisses, cpu1.EMisses
	next := r.cfg.Checkpoint
	curve := &Curve{}
	record := func(own0, own1, total uint64) {
		curve.Misses = append(curve.Misses, float64(total))
		curve.Observed = append(curve.Observed, float64(r.mach.Footprint(0, watch)))
		curve.Predicted = append(curve.Predicted, predict(own0, own1, total))
	}
	record(0, 0, 0)
	var batch mem.Batch
	emit := func(gen *trace.Gen, cpu int, tid mem.ThreadID) {
		batch = batch[:0]
		batch, _ = gen.Emit(batch, 128)
		r.mach.Apply(cpu, tid, batch)
	}
	for {
		emit(gen0, 0, sharedWalker0TID)
		for i := 0; i < coRatio; i++ {
			emit(gen1, 1, sharedWalker1TID)
		}
		own0, own1 := cpu0.EMisses-m0, cpu1.EMisses-m1
		total := own0 + own1
		if total >= next {
			// Sample at the actual totals, not the checkpoint label
			// (see the Figure 4 rig).
			record(own0, own1, total)
			for next <= total {
				next += r.cfg.Checkpoint
			}
		}
		if total >= r.cfg.MaxMisses {
			return curve
		}
	}
}

// SharedLLC runs the shared-cache accuracy panels.
func SharedLLC(cfg StudyConfig) *SharedLLCResult {
	cfg = cfg.withDefaults(20000)
	r := newSharedRig(cfg)
	N := r.mdl.N()
	res := &SharedLLCResult{N: N}

	// Panel a: the executing walker under 0, 1 and 3 co-runner batches
	// per own batch, plus one fully preloaded case. The fixed point is
	// pN with p the walker's actual share of the miss stream; ratio 0
	// degenerates to the private case 1 (own == total).
	type aCase struct {
		ratio int
		s0    int
	}
	for _, c := range []aCase{{0, 0}, {1, 0}, {3, 0}, {1, N}} {
		r.mach.FlushCaches()
		r.preload(sharedWalker0TID, r.walk0, c.s0)
		s0obs := float64(r.mach.Footprint(0, sharedWalker0TID))
		curve := r.run(sharedWalker0TID, c.ratio, func(own0, _, total uint64) float64 {
			return r.mdl.ExpectSharedSelf(s0obs, own0, total)
		})
		curve.Label = fmt.Sprintf("co=%d S0=%d", c.ratio, c.s0)
		res.A = append(res.A, curve)
	}

	// Panel b: a sleeping thread with state disjoint from both walkers
	// decays under the total clock: every miss in the machine is
	// eviction pressure, E = S·k^M.
	indepRegion := r.mach.AllocPages(uint64(r.mach.Config().L2.Size))
	r.mach.RegisterState(sharedFirstTID, indepRegion)
	for _, s0 := range []int{N / 2, N} {
		r.mach.FlushCaches()
		r.preload(sharedFirstTID, indepRegion, s0)
		s0obs := float64(r.mach.Footprint(0, sharedFirstTID))
		curve := r.run(sharedFirstTID, 1, func(_, _, total uint64) float64 {
			return r.mdl.ExpectIndep(s0obs, total)
		})
		curve.Label = fmt.Sprintf("S0=%d", s0)
		res.B = append(res.B, curve)
	}

	// Panel c: a sleeping thread whose region is the first half of the
	// co-runner's walk (q = 0.5): only the co-runner's own misses can
	// install its lines, so the effective coefficient dilutes by the
	// co-runner's share of the miss stream.
	const qc = 0.5
	depTID := sharedFirstTID + 1
	half := mem.Range{Base: r.walk1.Base, Len: uint64(float64(r.walk1.Len) * qc)}
	r.mach.RegisterState(depTID, half)
	for _, s0 := range []int{0, N / 2} {
		r.mach.FlushCaches()
		r.preload(depTID, half, s0)
		s0obs := float64(r.mach.Footprint(0, depTID))
		curve := r.run(depTID, 1, func(_, own1, total uint64) float64 {
			return r.mdl.ExpectSharedDep(s0obs, qc, own1, total)
		})
		curve.Label = fmt.Sprintf("S0=%d", s0)
		res.C = append(res.C, curve)
	}
	return res
}

// MaxRelError returns the worst mean relative error across the panels
// (same floor as the Figure 4 study: N/50 lines).
func (r *SharedLLCResult) MaxRelError() float64 {
	worst := 0.0
	for _, set := range [][]*Curve{r.A, r.B, r.C} {
		for _, c := range set {
			if e := stats.MeanRelError(c.Predicted, c.Observed, float64(r.N)/50); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Render produces the three panels as plots plus an accuracy table.
func (r *SharedLLCResult) Render() string {
	var b strings.Builder
	panels := []struct {
		name   string
		curves []*Curve
	}{
		{"a) Executing walker under co-runner pressure", r.A},
		{"b) Sleeping independent thread (total-clock decay)", r.B},
		{"c) Sleeping dependent thread (q=0.5, diluted)", r.C},
	}
	acc := report.NewTable("Shared LLC — co-runner-aware model accuracy (2-CPU shared-llc E5000)",
		"panel", "curve", "final observed", "final predicted", "RMSE", "bias")
	for _, panel := range panels {
		plot := &report.Plot{
			Title:  "Shared LLC " + panel.name + " (footprint in lines vs total E-cache misses)",
			XLabel: "total E-cache misses",
			YLabel: "lines",
		}
		for _, c := range panel.curves {
			obs, pred := c.series()
			plot.Series = append(plot.Series, obs, pred)
			acc.AddRow(panel.name[:2], c.Label,
				fmt.Sprintf("%.0f", c.Observed[len(c.Observed)-1]),
				fmt.Sprintf("%.0f", c.Predicted[len(c.Predicted)-1]),
				fmt.Sprintf("%.1f", c.RMSE()),
				fmt.Sprintf("%+.1f", c.Bias()))
		}
		plot.WriteTo(&b)
		b.WriteString("\n")
	}
	acc.WriteTo(&b)
	return b.String()
}

// SharedSchedResult holds the shared-topology policy matrix: every
// Section 5 application under FCFS, the paper's policies and the
// shared-aware variants, all on one cache topology.
type SharedSchedResult struct {
	Topology string
	CPUs     int
	// Runs[app][policy]
	Runs map[string]map[string]PolicyRun
	Apps []string
}

// SharedLLCSched runs the policy matrix. cfg.Topology defaults to
// shared-llc; pass "private-dm" to measure the same matrix on the
// paper's topology (the shared-aware variants then degrade to their
// base policies' clocks but keep the registry dispatch path).
func SharedLLCSched(cfg SchedConfig) (*SharedSchedResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	if cfg.Topology == "" {
		cfg.Topology = "shared-llc"
	}
	cfg = cfg.withDefaults()
	topo, err := cachesim.ParseTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	res := &SharedSchedResult{
		Topology: topo.String(),
		CPUs:     cfg.CPUs,
		Runs:     make(map[string]map[string]PolicyRun),
	}
	type cell struct{ app, policy string }
	var cells []cell
	for _, app := range workloads.SchedApps() {
		res.Apps = append(res.Apps, app.Name)
		for _, policy := range SharedPolicies {
			cells = append(cells, cell{app.Name, policy})
		}
	}
	runs, err := parallel.Map(cfg.Jobs, len(cells), func(i int) (PolicyRun, error) {
		return RunSched(cells[i].app, cells[i].policy, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if res.Runs[c.app] == nil {
			res.Runs[c.app] = make(map[string]PolicyRun)
		}
		res.Runs[c.app][c.policy] = runs[i]
	}
	return res, nil
}

// Eliminated returns the percentage of FCFS E-misses the policy
// eliminated for app.
func (r *SharedSchedResult) Eliminated(app, policy string) float64 {
	base := r.Runs[app]["FCFS"]
	run := r.Runs[app][policy]
	return stats.PercentEliminated(float64(base.EMisses), float64(run.EMisses))
}

// Speedup returns relative performance vs FCFS for app.
func (r *SharedSchedResult) Speedup(app, policy string) float64 {
	base := r.Runs[app]["FCFS"]
	run := r.Runs[app][policy]
	return stats.Ratio(float64(base.Cycles), float64(run.Cycles))
}

// TotalMisses sums a policy's E-misses over every application.
func (r *SharedSchedResult) TotalMisses(policy string) uint64 {
	var n uint64
	for _, app := range r.Apps {
		n += r.Runs[app][policy].EMisses
	}
	return n
}

// Render produces the two matrix panels: total E-cache misses
// (normalized to FCFS) and relative performance.
func (r *SharedSchedResult) Render() string {
	var b strings.Builder
	platform := fmt.Sprintf("%d-CPU E5000, %s", r.CPUs, r.Topology)

	misses := report.NewTable(
		fmt.Sprintf("Shared LLC — Total E-cache misses, %s (normalized to FCFS; absolute in parentheses)", platform),
		"app", "FCFS", "LFF", "CRT", "LFF-SH", "CRT-SH")
	for _, app := range r.Apps {
		base := r.Runs[app]["FCFS"]
		norm := func(p string) string {
			run := r.Runs[app][p]
			return fmt.Sprintf("%.3f (%d)", stats.Ratio(float64(run.EMisses), float64(base.EMisses)), run.EMisses)
		}
		misses.AddRow(app, norm("FCFS"), norm("LFF"), norm("CRT"), norm("LFF-SH"), norm("CRT-SH"))
	}
	misses.Note("aggregate misses: FCFS %d, LFF %d, CRT %d, LFF-SH %d, CRT-SH %d",
		r.TotalMisses("FCFS"), r.TotalMisses("LFF"), r.TotalMisses("CRT"),
		r.TotalMisses("LFF-SH"), r.TotalMisses("CRT-SH"))
	misses.WriteTo(&b)
	b.WriteString("\n")

	perf := report.NewTable(
		fmt.Sprintf("Shared LLC — Performance relative to FCFS, %s (higher is better)", platform),
		"app", "LFF", "CRT", "LFF-SH", "CRT-SH", "FCFS cycles")
	for _, app := range r.Apps {
		perf.AddRow(app,
			fmt.Sprintf("%.2f", r.Speedup(app, "LFF")),
			fmt.Sprintf("%.2f", r.Speedup(app, "CRT")),
			fmt.Sprintf("%.2f", r.Speedup(app, "LFF-SH")),
			fmt.Sprintf("%.2f", r.Speedup(app, "CRT-SH")),
			fmt.Sprintf("%d", r.Runs[app]["FCFS"].Cycles))
	}
	perf.WriteTo(&b)
	return b.String()
}
