package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// runObsCells fans a small app×policy grid across the given worker
// count with a tracing session attached and returns every export
// format's bytes.
func runObsCells(t *testing.T, jobs int) (trace, metrics, csv []byte) {
	t.Helper()
	session := obs.NewSession(obs.Trace, 0)
	cfg := SchedConfig{CPUs: 2, Scale: 0.02, Seed: 7, Jobs: jobs, Obs: session}
	type cell struct{ app, policy string }
	cells := []cell{
		{"tasks", "FCFS"}, {"tasks", "LFF"},
		{"merge", "LFF"}, {"merge", "CRT"},
	}
	if _, err := parallel.Map(jobs, len(cells), func(i int) (PolicyRun, error) {
		return RunSched(cells[i].app, cells[i].policy, cfg)
	}); err != nil {
		t.Fatalf("RunSched grid (jobs=%d): %v", jobs, err)
	}
	if got := len(session.Cells()); got != len(cells) {
		t.Fatalf("session has %d cells, want %d", got, len(cells))
	}
	var tb, mb, cb bytes.Buffer
	if err := obs.WriteChromeTrace(&tb, session.Cells()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := obs.WritePrometheus(&mb, session.MergedSnapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := obs.WriteCSVTimeline(&cb, session.Cells()); err != nil {
		t.Fatalf("WriteCSVTimeline: %v", err)
	}
	return tb.Bytes(), mb.Bytes(), cb.Bytes()
}

// TestExportsDeterministicAcrossWorkers is the telemetry determinism
// gate: every exporter must produce byte-identical output whether the
// experiment cells ran sequentially or fanned across four workers.
// Cells are keyed by run configuration and exported in sorted key
// order, so worker scheduling can never reorder them.
func TestExportsDeterministicAcrossWorkers(t *testing.T) {
	t1, m1, c1 := runObsCells(t, 1)
	t4, m4, c4 := runObsCells(t, 4)
	if len(t1) == 0 || len(m1) == 0 || len(c1) == 0 {
		t.Fatal("sequential run exported no bytes")
	}
	if !bytes.Equal(t1, t4) {
		t.Errorf("Chrome trace differs between -j1 (%d bytes) and -j4 (%d bytes)", len(t1), len(t4))
	}
	if !bytes.Equal(m1, m4) {
		t.Errorf("Prometheus dump differs between -j1 (%d bytes) and -j4 (%d bytes)", len(m1), len(m4))
	}
	if !bytes.Equal(c1, c4) {
		t.Errorf("CSV timeline differs between -j1 (%d bytes) and -j4 (%d bytes)", len(c1), len(c4))
	}
}
