package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// MappingRow is one application's miss count under each page-placement
// policy.
type MappingRow struct {
	App     string
	Refs    uint64
	Misses  map[vm.Policy]uint64
	Percent float64 // % extra misses of naive over careful
}

// MappingResult is the page-placement ablation: the paper's simulator
// uses Kessler and Hill's careful-mapping policy because it "was shown
// to perform better than a naive (arbitrary) page placement"; this
// experiment measures that choice on our workloads.
type MappingResult struct {
	Rows []MappingRow
}

// mappingPolicies are compared in this order.
var mappingPolicies = []vm.Policy{vm.Careful, vm.Naive}

// PageMapping runs a fixed reference budget of each study application's
// stream through machines that differ only in page placement.
func PageMapping(cfg StudyConfig) *MappingResult {
	cfg = cfg.withDefaults(40000)
	res := &MappingResult{}
	// Naive placement is randomized, so it is averaged over a few
	// placement seeds; careful mapping is deterministic.
	const naiveTrials = 3
	for _, app := range workloads.StudyApps() {
		row := MappingRow{App: app.Name, Misses: make(map[vm.Policy]uint64)}
		for _, policy := range mappingPolicies {
			trials := 1
			if policy == vm.Naive {
				trials = naiveTrials
			}
			var total uint64
			for trial := 0; trial < trials; trial++ {
				mcfg := machine.UltraSPARC1()
				mcfg.PagePolicy = policy
				mcfg.Seed = cfg.Seed + uint64(trial)*7919
				m := workloads.StreamRun(app, mcfg, cfg.Seed, 1_500_000)
				row.Refs = m.CPU(0).ERefs
				total += m.CPU(0).EMisses
			}
			row.Misses[policy] = total / uint64(trials)
		}
		careful, naive := row.Misses[vm.Careful], row.Misses[vm.Naive]
		if careful > 0 {
			row.Percent = 100 * (float64(naive) - float64(careful)) / float64(careful)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render produces the comparison table.
func (r *MappingResult) Render() string {
	tbl := report.NewTable(
		"Page placement — Kessler-Hill careful mapping vs naive (arbitrary) placement, E-cache misses",
		"app", "careful", "naive", "naive overhead")
	for _, row := range r.Rows {
		tbl.AddRow(row.App,
			fmt.Sprint(row.Misses[vm.Careful]),
			fmt.Sprint(row.Misses[vm.Naive]),
			fmt.Sprintf("%+.1f%%", row.Percent))
	}
	tbl.Note("the paper's simulator adopts careful mapping citing Kessler & Hill [13]; positive overhead confirms the choice on these streams")
	return tbl.String()
}
