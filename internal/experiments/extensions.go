package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/platform/sim"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// AssocResult validates the set-associative model extension (Section
// 2.1's "can be extended to the associative cache case") end to end: a
// random walk on a machine whose E-cache is W-way LRU, with the
// observed footprint compared against both the per-set Poisson model
// and the direct-mapped closed form.
type AssocResult struct {
	Ways      int
	Misses    []float64
	Observed  []float64
	AssocPred []float64
	DMPred    []float64
}

// AssocStudy runs the associative random-walk study.
func AssocStudy(ways int, cfg StudyConfig) *AssocResult {
	cfg = cfg.withDefaults(20000)
	mcfg := machine.UltraSPARC1()
	mcfg.L2.Assoc = ways
	mcfg.TrackFootprints = true
	m := machine.New(mcfg)
	am := model.NewAssocModel(mcfg.L2.Sets(), ways)

	const walker mem.ThreadID = 0
	walk := m.AllocPages(uint64(64 * mcfg.L2.Size))
	m.RegisterState(walker, walk)
	// A sleeper initially fills the cache so the walker always evicts
	// foreign lines, matching the model's setup.
	const sleeper mem.ThreadID = 1
	fill := m.AllocPages(uint64(mcfg.L2.Size))
	m.RegisterState(sleeper, fill)
	m.Apply(0, sleeper, mem.Batch{{Base: fill.Base, Count: int32(mcfg.L2.Lines()),
		Stride: int32(mcfg.L2.LineSize), Size: 8}})

	gen := trace.NewGen(trace.Uniform(walk), cfg.Seed)
	cpu := m.CPU(0)
	m0 := cpu.EMisses
	res := &AssocResult{Ways: ways}
	next := cfg.Checkpoint
	var batch mem.Batch
	for {
		batch = batch[:0]
		batch, _ = gen.Emit(batch, 128)
		m.Apply(0, walker, batch)
		n := cpu.EMisses - m0
		if n >= next {
			res.Misses = append(res.Misses, float64(n))
			res.Observed = append(res.Observed, float64(m.Footprint(0, walker)))
			res.AssocPred = append(res.AssocPred, am.ExpectSelf(n))
			res.DMPred = append(res.DMPred, am.DirectMappedSelf(n))
			for next <= n {
				next += cfg.Checkpoint
			}
		}
		if n >= cfg.MaxMisses {
			break
		}
	}
	return res
}

// Errors returns the RMSE of the associative and direct-mapped
// predictions against the observation.
func (r *AssocResult) Errors() (assoc, dm float64) {
	return stats.RMSE(r.AssocPred, r.Observed), stats.RMSE(r.DMPred, r.Observed)
}

// Render produces the comparison.
func (r *AssocResult) Render() string {
	var b strings.Builder
	plot := &report.Plot{
		Title:  fmt.Sprintf("%d-way LRU E-cache: observed vs associative and direct-mapped models", r.Ways),
		XLabel: "E-cache misses",
		YLabel: "lines",
		Series: []*stats.Series{
			{Label: "observed", X: r.Misses, Y: r.Observed},
			{Label: "assoc model", X: r.Misses, Y: r.AssocPred},
			{Label: "direct-mapped model", X: r.Misses, Y: r.DMPred},
		},
	}
	plot.WriteTo(&b)
	ae, de := r.Errors()
	tbl := report.NewTable("Model accuracy on the associative cache", "model", "RMSE (lines)")
	tbl.AddRow("per-set Poisson (extension)", fmt.Sprintf("%.1f", ae))
	tbl.AddRow("direct-mapped closed form", fmt.Sprintf("%.1f", de))
	tbl.Note("LRU protects the runner's fresh lines, so the direct-mapped form underestimates; the extension tracks it")
	b.WriteString("\n")
	tbl.WriteTo(&b)
	return b.String()
}

// ScalingResult sweeps the processor count for every application: the
// Figure 8→9 transition as a curve rather than two points.
type ScalingResult struct {
	CPUs []int
	// Elim[app][i] is LFF's miss elimination % at CPUs[i];
	// Speedup[app][i] the relative performance; Util[app][i] LFF's
	// machine utilization.
	Elim    map[string][]float64
	Speedup map[string][]float64
	Util    map[string][]float64
	Apps    []string
}

// ScalingStudy runs FCFS and LFF for each application across machine
// sizes.
func ScalingStudy(cfg SchedConfig, cpus []int) (*ScalingResult, error) {
	if len(cpus) == 0 {
		cpus = []int{1, 2, 4, 8, 16}
	}
	res := &ScalingResult{
		CPUs:    cpus,
		Elim:    make(map[string][]float64),
		Speedup: make(map[string][]float64),
		Util:    make(map[string][]float64),
		Apps:    []string{"tasks", "merge", "photo", "tsp"},
	}
	// One cell per (app, CPU count); each cell runs its FCFS/LFF pair.
	type pair struct{ fcfs, lff PolicyRun }
	cells, err := parallel.Map(cfg.Jobs, len(res.Apps)*len(cpus), func(i int) (pair, error) {
		c := cfg
		c.CPUs = cpus[i%len(cpus)]
		app := res.Apps[i/len(cpus)]
		fcfs, err := RunSched(app, "FCFS", c)
		if err != nil {
			return pair{}, err
		}
		lff, err := RunSched(app, "LFF", c)
		if err != nil {
			return pair{}, err
		}
		return pair{fcfs, lff}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		app := res.Apps[i/len(cpus)]
		res.Elim[app] = append(res.Elim[app],
			stats.PercentEliminated(float64(cell.fcfs.EMisses), float64(cell.lff.EMisses)))
		res.Speedup[app] = append(res.Speedup[app],
			stats.Ratio(float64(cell.fcfs.Cycles), float64(cell.lff.Cycles)))
		res.Util[app] = append(res.Util[app], cell.lff.Utilization())
	}
	return res, nil
}

// Render produces the scaling tables.
func (r *ScalingResult) Render() string {
	cols := []string{"app"}
	for _, n := range r.CPUs {
		cols = append(cols, fmt.Sprintf("%d cpu", n))
	}
	elim := report.NewTable("LFF miss elimination % vs processor count", cols...)
	perf := report.NewTable("LFF relative performance vs processor count", cols...)
	util := report.NewTable("LFF machine utilization vs processor count", cols...)
	for _, app := range r.Apps {
		er := []string{app}
		pr := []string{app}
		ur := []string{app}
		for i := range r.CPUs {
			er = append(er, fmt.Sprintf("%.1f", r.Elim[app][i]))
			pr = append(pr, fmt.Sprintf("%.2f", r.Speedup[app][i]))
			ur = append(ur, fmt.Sprintf("%.0f%%", 100*r.Util[app][i]))
		}
		elim.AddRow(er...)
		perf.AddRow(pr...)
		util.AddRow(ur...)
	}
	return elim.String() + "\n" + perf.String() + "\n" + util.String()
}

// ThresholdResult sweeps the heap demotion threshold — the one free
// parameter of the Section 4 framework ("threads whose footprints drop
// below a certain threshold... are removed from that heap").
type ThresholdResult struct {
	Thresholds []float64
	// Elim[app][i] is LFF elimination % at Thresholds[i].
	Elim map[string][]float64
	Apps []string
}

// ThresholdStudy measures LFF's sensitivity to the demotion threshold.
func ThresholdStudy(cfg SchedConfig, thresholds []float64) (*ThresholdResult, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{4, 16, 64, 256}
	}
	res := &ThresholdResult{
		Thresholds: thresholds,
		Elim:       make(map[string][]float64),
		Apps:       []string{"tasks", "photo", "tsp"},
	}
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	// One cell per (app, threshold) LFF run plus one FCFS baseline per
	// app, all independent.
	baselines, err := parallel.Map(cfg.Jobs, len(res.Apps), func(i int) (PolicyRun, error) {
		return RunSched(res.Apps[i], "FCFS", cfg)
	})
	if err != nil {
		return nil, err
	}
	runs, err := parallel.Map(cfg.Jobs, len(res.Apps)*len(thresholds), func(i int) (PolicyRun, error) {
		c := cfg
		c.Threshold = thresholds[i%len(thresholds)]
		return RunSched(res.Apps[i/len(thresholds)], "LFF", c)
	})
	if err != nil {
		return nil, err
	}
	for i, lff := range runs {
		app := res.Apps[i/len(thresholds)]
		fcfs := baselines[i/len(thresholds)]
		res.Elim[app] = append(res.Elim[app],
			stats.PercentEliminated(float64(fcfs.EMisses), float64(lff.EMisses)))
	}
	return res, nil
}

// Render produces the threshold table.
func (r *ThresholdResult) Render() string {
	cols := []string{"app"}
	for _, th := range r.Thresholds {
		cols = append(cols, fmt.Sprintf("th=%.0f", th))
	}
	tbl := report.NewTable("LFF miss elimination % vs heap demotion threshold (lines), 8 CPUs", cols...)
	for _, app := range r.Apps {
		row := []string{app}
		for i := range r.Thresholds {
			row = append(row, fmt.Sprintf("%.1f", r.Elim[app][i]))
		}
		tbl.AddRow(row...)
	}
	tbl.Note("too high a threshold demotes live footprints (tsp's per-round state); too low keeps stale entries in the heaps")
	return tbl.String()
}

// SpawnStackResult is the work-first spawn-stack design ablation: the
// paper describes a single global queue for cold threads, while its
// load-balancing citation (Blumofe-Leiserson) suggests per-CPU LIFO
// spawn stacks with oldest-first stealing. This study measures both
// disciplines under LFF.
type SpawnStackResult struct {
	CPUs int
	// Global[app] and Stacks[app] are LFF miss eliminations vs FCFS.
	Global, Stacks map[string]float64
	Apps           []string
}

// SpawnStackStudy runs the ablation on the SMP.
func SpawnStackStudy(cfg SchedConfig) (*SpawnStackResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()
	res := &SpawnStackResult{
		CPUs:   cfg.CPUs,
		Global: make(map[string]float64),
		Stacks: make(map[string]float64),
		Apps:   []string{"tasks", "merge", "photo", "tsp"},
	}
	// Three independent runs per app, flattened into one cell matrix.
	stacked := cfg
	stacked.SpawnStacks = true
	variants := []struct {
		policy string
		cfg    SchedConfig
	}{{"FCFS", cfg}, {"LFF", cfg}, {"LFF", stacked}}
	runs, err := parallel.Map(cfg.Jobs, len(res.Apps)*len(variants), func(i int) (PolicyRun, error) {
		v := variants[i%len(variants)]
		return RunSched(res.Apps[i/len(variants)], v.policy, v.cfg)
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(res.Apps); i++ {
		app := res.Apps[i]
		fcfs, lff, lffS := runs[3*i], runs[3*i+1], runs[3*i+2]
		res.Global[app] = stats.PercentEliminated(float64(fcfs.EMisses), float64(lff.EMisses))
		res.Stacks[app] = stats.PercentEliminated(float64(fcfs.EMisses), float64(lffS.EMisses))
	}
	return res, nil
}

// Render produces the ablation table.
func (r *SpawnStackResult) Render() string {
	tbl := report.NewTable(
		fmt.Sprintf("Spawn discipline ablation — LFF miss elimination %%, %d CPUs", r.CPUs),
		"app", "global FIFO (paper)", "work-first spawn stacks")
	for _, app := range r.Apps {
		tbl.AddRow(app,
			fmt.Sprintf("%.1f", r.Global[app]),
			fmt.Sprintf("%.1f", r.Stacks[app]))
	}
	tbl.Note("spawn stacks trade queue locality for subtree depth-first order; on these workloads the paper's global FIFO is competitive")
	return tbl.String()
}

// TLBRow is one application's cost with and without the data-TLB model.
type TLBRow struct {
	App          string
	CyclesPerf   uint64 // cycles with a perfect TLB (the default model)
	CyclesTLB    uint64 // cycles with the 64-entry UltraSPARC dTLB
	TLBMisses    uint64
	SlowdownPct  float64
	MissesPerRef float64
}

// TLBResult quantifies the fidelity knob the TLB model adds: how much
// of each study application's time the default perfect-TLB assumption
// hides.
type TLBResult struct {
	Rows []TLBRow
}

// TLBStudy runs each study stream with and without the TLB model.
func TLBStudy(cfg StudyConfig) *TLBResult {
	cfg = cfg.withDefaults(40000)
	apps := workloads.StudyApps()
	rows, _ := parallel.Map(cfg.Jobs, len(apps), func(i int) (TLBRow, error) {
		app := apps[i]
		row := TLBRow{App: app.Name}
		const budget = 800_000
		for _, entries := range []int{0, 64} {
			mcfg := machine.UltraSPARC1()
			mcfg.TLBEntries = entries
			m := workloads.StreamRun(app, mcfg, cfg.Seed, budget)
			cpu := m.CPU(0)
			if entries == 0 {
				row.CyclesPerf = cpu.Cycles
			} else {
				row.CyclesTLB = cpu.Cycles
				row.TLBMisses = cpu.TLBMisses
				row.MissesPerRef = float64(cpu.TLBMisses) / float64(budget)
			}
		}
		row.SlowdownPct = 100 * (float64(row.CyclesTLB) - float64(row.CyclesPerf)) / float64(row.CyclesPerf)
		return row, nil
	})
	return &TLBResult{Rows: rows}
}

// Render produces the TLB sensitivity table.
func (r *TLBResult) Render() string {
	tbl := report.NewTable("Data-TLB sensitivity (64-entry UltraSPARC dTLB vs perfect TLB)",
		"app", "TLB misses", "per ref", "slowdown")
	for _, row := range r.Rows {
		tbl.AddRow(row.App,
			fmt.Sprint(row.TLBMisses),
			fmt.Sprintf("%.4f", row.MissesPerRef),
			fmt.Sprintf("%+.1f%%", row.SlowdownPct))
	}
	tbl.Note("the reproduction's default is a perfect TLB (the paper's model and measurements do not include TLB effects); this quantifies what that assumption hides")
	return tbl.String()
}

// CoarseRow is one coarse-grained SPLASH-style run compared across
// policies.
type CoarseRow struct {
	App      string
	FCFS     uint64
	LFF      uint64
	ElimPct  float64
	SpeedPct float64
}

// CoarseResult examines the SPLASH regime the paper excludes from its
// scheduling study (one long-lived thread per processor, barrier
// phases). The paper's point is that such programs do not exemplify
// fine-grained threading; this control shows what locality scheduling
// still contributes there: the only decision left is putting each
// worker back on its own cache after every barrier, which the
// footprint model gets right and an affinity-free FCFS baseline
// shuffles away.
type CoarseResult struct {
	CPUs int
	Rows []CoarseRow
}

// CoarseStudy runs two representative study applications coarse-grained
// on the SMP under FCFS and LFF.
func CoarseStudy(cfg SchedConfig) (*CoarseResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()
	res := &CoarseResult{CPUs: cfg.CPUs}
	names := []string{"barnes", "ocean"}
	rows, err := parallel.Map(cfg.Jobs, len(names), func(i int) (CoarseRow, error) {
		name := names[i]
		app, err := workloads.StudyAppByName(name)
		if err != nil {
			return CoarseRow{}, err
		}
		var misses [2]uint64
		var cycles [2]uint64
		for j, policy := range []string{"FCFS", "LFF"} {
			m := machine.New(platform(cfg.CPUs, cachesim.Topology{}))
			e, err := rt.New(sim.New(m), rt.Options{Policy: policy, Seed: cfg.Seed})
			if err != nil {
				return CoarseRow{}, err
			}
			workloads.SpawnCoarse(e, app, cfg.CPUs, 6, int(100_000*cfg.Scale)+10_000)
			if err := e.Run(context.Background()); err != nil {
				return CoarseRow{}, err
			}
			_, _, misses[j] = m.Totals()
			cycles[j] = m.MaxCycles()
		}
		return CoarseRow{
			App: name, FCFS: misses[0], LFF: misses[1],
			ElimPct:  stats.PercentEliminated(float64(misses[0]), float64(misses[1])),
			SpeedPct: 100 * (float64(cycles[0])/float64(cycles[1]) - 1),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render produces the coarse-grained control table.
func (r *CoarseResult) Render() string {
	tbl := report.NewTable(
		fmt.Sprintf("Coarse-grained control — one thread per CPU, %d CPUs (the SPLASH regime)", r.CPUs),
		"app", "FCFS misses", "LFF misses", "eliminated", "perf delta")
	for _, row := range r.Rows {
		tbl.AddRow(row.App, fmt.Sprint(row.FCFS), fmt.Sprint(row.LFF),
			fmt.Sprintf("%+.1f%%", row.ElimPct), fmt.Sprintf("%+.1f%%", row.SpeedPct))
	}
	tbl.Note("the only decision left in this regime is barrier-wake affinity: the footprint model pins each worker to its partition's cache, while affinity-free FCFS shuffles workers across processors every phase")
	return tbl.String()
}
