package experiments

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// paperTable5 is the paper's Table 5 (CRT relative to FCFS), the
// reference values this reproduction is compared against.
var paperTable5 = map[string]struct {
	elim1, elim8   float64 // E-misses eliminated %, 1 and 8 CPUs
	perf1, perf8   float64 // relative performance
	shapeStatement string
}{
	"tasks": {92, 64, 2.38, 1.45, "counters alone recover affinity; >2x on one CPU"},
	"merge": {57, 77, 1.59, 1.50, "annotation-driven wins on both platforms"},
	"photo": {-1, 71, 0.97, 2.12, "loses slightly on 1 CPU, flips to a large SMP win"},
	"tsp":   {12, 73, 1.04, 1.51, "small 1-CPU win (compulsory misses), larger SMP win"},
}

// CompareResult is the side-by-side paper-vs-measured summary generated
// from fresh runs.
type CompareResult struct {
	T5 *Table5Result
}

// Compare runs Table 5 and pairs it with the paper's numbers.
func Compare(cfg SchedConfig) (*CompareResult, error) {
	t5, err := Table5(cfg)
	if err != nil {
		return nil, err
	}
	return &CompareResult{T5: t5}, nil
}

// ShapeHolds reports whether the qualitative shape of one application's
// result matches the paper: same winner on each platform (within a
// ±3-point / ±0.05x dead band around "no change") and the SMP/uni
// ordering of the win preserved.
func (c *CompareResult) ShapeHolds(app string) bool {
	p := paperTable5[app]
	e1 := c.T5.Uni.Eliminated(app, "CRT")
	e8 := c.T5.SMP.Eliminated(app, "CRT")
	sameSign := func(a, b float64) bool {
		band := func(v float64) int {
			switch {
			case v > 3:
				return 1
			case v < -3:
				return -1
			default:
				return 0
			}
		}
		return band(a) == band(b) || band(a) == 0 || band(b) == 0
	}
	if !sameSign(e1, p.elim1) || !sameSign(e8, p.elim8) {
		return false
	}
	// Ordering: if the paper's SMP win clearly exceeds its uni win, so
	// must ours (and vice versa).
	if p.elim8 > p.elim1+5 && e8 < e1-5 {
		return false
	}
	if p.elim1 > p.elim8+5 && e1 < e8-5 {
		return false
	}
	return true
}

// Render produces the comparison table.
func (c *CompareResult) Render() string {
	var b strings.Builder
	tbl := report.NewTable("Paper vs measured — Table 5 (CRT relative to FCFS)",
		"app",
		"elim% 1cpu (paper/ours)", "elim% 8cpu (paper/ours)",
		"perf 1cpu (paper/ours)", "perf 8cpu (paper/ours)",
		"shape")
	for _, app := range c.T5.Uni.Apps {
		p := paperTable5[app]
		shape := "HOLDS"
		if !c.ShapeHolds(app) {
			shape = "DIVERGES"
		}
		tbl.AddRow(app,
			fmt.Sprintf("%.0f / %.0f", p.elim1, c.T5.Uni.Eliminated(app, "CRT")),
			fmt.Sprintf("%.0f / %.0f", p.elim8, c.T5.SMP.Eliminated(app, "CRT")),
			fmt.Sprintf("%.2f / %.2f", p.perf1, c.T5.Uni.Speedup(app, "CRT")),
			fmt.Sprintf("%.2f / %.2f", p.perf8, c.T5.SMP.Speedup(app, "CRT")),
			shape+" — "+p.shapeStatement)
	}
	tbl.Note("shape = same winner per platform and the same uni/SMP ordering; magnitudes differ because the substrate is a simulator and the workloads are synthetic (see EXPERIMENTS.md)")
	tbl.WriteTo(&b)
	return b.String()
}
