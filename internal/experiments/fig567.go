package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// AppStudyResult is one application's footprint study: the observed and
// predicted footprints of the unblocked "work" thread as a function of
// its E-cache misses (Figures 5 and 7) and its E-cache misses per 1000
// instructions over time (Figure 6).
type AppStudyResult struct {
	App       workloads.StudyApp
	N         int
	Footprint Curve
	MPI       stats.Series
	// RelErr is the mean relative prediction error; Bias is mean
	// (predicted − observed), strongly positive for the Figure 7
	// anomalies.
	RelErr float64
	Bias   float64
}

// Overestimated reports whether the model substantially overpredicts
// this application's footprint (the Figure 7 signature): the mean bias
// exceeds a quarter of the cache.
func (a *AppStudyResult) Overestimated() bool {
	return a.Bias > float64(a.N)/4
}

// StudyFootprint runs one Table 2 application's reference stream on the
// tracked uniprocessor and samples footprint and MPI, following the
// paper's protocol: the work thread runs an initialization stage, its
// state is flushed from the cache (the thread "blocked during the
// computation stage"), and the reload is monitored after it resumes.
func StudyFootprint(app workloads.StudyApp, cfg StudyConfig) *AppStudyResult {
	cfg = cfg.withDefaults(40000)
	mcfg := machine.UltraSPARC1()
	mcfg.TrackFootprints = true
	m := machine.New(mcfg)
	mdl := model.New(mcfg.L2.Lines())

	state := m.AllocPages(app.StateBytes)
	hot := mem.Range{Base: state.Base, Len: app.HotBytes}
	const workTID mem.ThreadID = 0
	m.RegisterState(workTID, state)
	gen := trace.NewGen(app.Pattern(state, hot), cfg.Seed)

	// Initialization stage: build up the application state.
	var batch mem.Batch
	for refs := 0; refs < 1_500_000; refs += 8192 {
		batch = batch[:0]
		batch, compute := gen.Emit(batch, 8192)
		m.Apply(0, workTID, batch)
		m.Advance(0, compute)
	}

	// The work thread blocks and its state is flushed; monitor the
	// reload transient as it resumes.
	m.FlushCaches()
	cpu := m.CPU(0)
	m0, i0 := cpu.EMisses, cpu.Instrs

	res := &AppStudyResult{App: app, N: mdl.N()}
	res.Footprint.Label = app.Name
	res.MPI.Label = app.Name

	next := cfg.Checkpoint
	record := func(n uint64) {
		res.Footprint.Misses = append(res.Footprint.Misses, float64(n))
		res.Footprint.Observed = append(res.Footprint.Observed, float64(m.Footprint(0, workTID)))
		res.Footprint.Predicted = append(res.Footprint.Predicted, mdl.ExpectSelf(0, n))
	}
	record(0)
	winStartM, winStartI := m0, i0
	for {
		batch = batch[:0]
		batch, compute := gen.Emit(batch, 512)
		m.Apply(0, workTID, batch)
		m.Advance(0, compute)
		n := cpu.EMisses - m0
		if n >= next {
			// Sample at the actual miss count (a batch may overshoot
			// the checkpoint).
			record(n)
			for next <= n {
				next += cfg.Checkpoint
			}
		}
		if di := cpu.Instrs - winStartI; di >= cfg.MPIWindow {
			dm := cpu.EMisses - winStartM
			res.MPI.Append(float64(cpu.Instrs-i0)/1e6, float64(dm)/(float64(di)/1000))
			winStartM, winStartI = cpu.EMisses, cpu.Instrs
		}
		if n >= cfg.MaxMisses {
			break
		}
	}
	res.RelErr = stats.MeanRelError(res.Footprint.Predicted, res.Footprint.Observed, float64(res.N)/50)
	res.Bias = res.Footprint.Bias()
	return res
}

// StudyAll runs the footprint study for the given applications, fanning
// the per-application cells across cfg.Jobs workers (each study owns
// its machine and generator, so results are order-independent and
// collected by index).
func StudyAll(apps []workloads.StudyApp, cfg StudyConfig) []*AppStudyResult {
	out, _ := parallel.Map(cfg.Jobs, len(apps), func(i int) (*AppStudyResult, error) {
		return StudyFootprint(apps[i], cfg), nil
	})
	return out
}

// Fig5 reproduces Figure 5: observed vs predicted footprints for the
// six well-predicted applications.
func Fig5(cfg StudyConfig) []*AppStudyResult {
	return StudyAll(workloads.Fig5Apps(), cfg)
}

// Fig7 reproduces Figure 7: the two applications whose footprints the
// model substantially overestimates (typechecker and raytrace).
func Fig7(cfg StudyConfig) []*AppStudyResult {
	return StudyAll(workloads.Fig7Apps(), cfg)
}

// Fig6 reproduces Figure 6: average E-cache misses per 1000
// instructions as the computations unfold, for all eight applications.
// MPI needs longer runs than the footprint studies, so unset limits
// default higher here.
func Fig6(cfg StudyConfig) []*AppStudyResult {
	if cfg.MaxMisses == 0 {
		cfg.MaxMisses = 120_000
	}
	if cfg.MPIWindow == 0 {
		cfg.MPIWindow = 250_000
	}
	return StudyAll(workloads.StudyApps(), cfg)
}

// RenderFootprints renders Figure 5/7 results: one plot per application
// plus the accuracy summary.
func RenderFootprints(title string, results []*AppStudyResult) string {
	var b strings.Builder
	acc := report.NewTable(title+" — model accuracy",
		"app", "class", "final observed", "final predicted", "rel err", "bias", "verdict")
	for _, r := range results {
		obs, pred := r.Footprint.series()
		plot := &report.Plot{
			Title:  fmt.Sprintf("%s: thread cache footprint (%s)", r.App.Name, title),
			XLabel: "E-cache misses",
			YLabel: "lines",
			Series: []*stats.Series{obs, pred},
		}
		plot.WriteTo(&b)
		b.WriteString("\n")
		verdict := "good agreement"
		if r.Overestimated() {
			verdict = "OVERESTIMATED (fig 7)"
		} else if r.Bias > 0 {
			verdict = "slight overestimate"
		}
		acc.AddRow(r.App.Name, r.App.Class,
			fmt.Sprintf("%.0f", r.Footprint.Observed[len(r.Footprint.Observed)-1]),
			fmt.Sprintf("%.0f", r.Footprint.Predicted[len(r.Footprint.Predicted)-1]),
			fmt.Sprintf("%.2f", r.RelErr),
			fmt.Sprintf("%+.0f", r.Bias),
			verdict)
	}
	acc.WriteTo(&b)
	return b.String()
}

// RenderMPI renders Figure 6: the MPI trajectories.
func RenderMPI(results []*AppStudyResult) string {
	var b strings.Builder
	plot := &report.Plot{
		Title:  "Figure 6 — Average E-cache misses per 1000 instructions",
		XLabel: "instructions executed (millions)",
		YLabel: "MPI",
		Height: 18,
		Width:  70,
	}
	tbl := report.NewTable("Figure 6 — reload transient and steady state",
		"app", "peak MPI", "final MPI", "windows")
	for _, r := range results {
		s := r.MPI
		plot.Series = append(plot.Series, &s)
		peak, last := 0.0, 0.0
		for _, y := range s.Y {
			if y > peak {
				peak = y
			}
		}
		if len(s.Y) > 0 {
			last = s.Y[len(s.Y)-1]
		}
		tbl.AddRow(r.App.Name, fmt.Sprintf("%.2f", peak), fmt.Sprintf("%.2f", last),
			fmt.Sprint(s.Len()))
	}
	plot.WriteTo(&b)
	b.WriteString("\n")
	tbl.WriteTo(&b)
	return b.String()
}
