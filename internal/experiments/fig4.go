package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// StudyConfig parameterizes the model-evaluation experiments.
type StudyConfig struct {
	// MaxMisses is how far the x-axis runs (paper Figure 4: ~20k).
	MaxMisses uint64
	// Checkpoint is the miss interval between samples.
	Checkpoint uint64
	// MPIWindow is the Figure 6 sampling window in instructions
	// (default 2M, reduced automatically for short studies).
	MPIWindow uint64
	// Seed fixes the walk.
	Seed uint64
	// Jobs is the number of worker threads used to fan independent
	// per-application studies across CPUs: 0 uses every processor, 1
	// runs sequentially. Results are bit-identical for any value.
	Jobs int
}

func (c StudyConfig) withDefaults(maxMisses uint64) StudyConfig {
	if c.MaxMisses == 0 {
		c.MaxMisses = maxMisses
	}
	if c.Checkpoint == 0 {
		c.Checkpoint = c.MaxMisses / 80
		if c.Checkpoint == 0 {
			c.Checkpoint = 1
		}
	}
	if c.MPIWindow == 0 {
		c.MPIWindow = 2_000_000
		if c.MaxMisses < 30000 {
			c.MPIWindow = 250_000
		}
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Curve is one predicted-vs-observed footprint trajectory.
type Curve struct {
	Label     string
	Misses    []float64
	Observed  []float64
	Predicted []float64
}

// RMSE returns the root-mean-square prediction error of the curve.
func (c *Curve) RMSE() float64 { return stats.RMSE(c.Predicted, c.Observed) }

// Bias returns the mean of (predicted − observed): positive means the
// model overestimates.
func (c *Curve) Bias() float64 { return stats.MeanBias(c.Predicted, c.Observed) }

// series converts the curve into plottable series.
func (c *Curve) series() (obs, pred *stats.Series) {
	obs = &stats.Series{Label: c.Label + " observed", X: c.Misses, Y: c.Observed}
	pred = &stats.Series{Label: c.Label + " predicted", X: c.Misses, Y: c.Predicted}
	return obs, pred
}

// Fig4Result holds the four microbenchmark panels of Figure 4.
type Fig4Result struct {
	N int // E-cache size in lines
	// A: the executing (random-walk) thread, one curve per initial
	// footprint.
	A []*Curve
	// B: sleeping independent threads decaying, one curve per initial
	// footprint.
	B []*Curve
	// C: a sleeping dependent thread with q = 0.5, one curve per
	// initial footprint (converging to qN from both sides).
	C []*Curve
	// D: sleeping dependent threads with varying sharing coefficients.
	D []*Curve
}

// fig4Rig is the shared apparatus: a tracked uniprocessor whose main
// thread performs a uniformly distributed random walk, plus helpers to
// preload footprints and to sample observed-vs-predicted trajectories.
type fig4Rig struct {
	cfg  StudyConfig
	mach *machine.Machine
	mdl  *model.Model
	rng  *xrand.Source
	walk mem.Range // the walking thread's state, 2x the cache
}

const (
	fig4WalkerTID mem.ThreadID = 0
	fig4FirstTID  mem.ThreadID = 1
)

func newFig4Rig(cfg StudyConfig) *fig4Rig {
	mcfg := machine.UltraSPARC1()
	mcfg.TrackFootprints = true
	m := machine.New(mcfg)
	r := &fig4Rig{
		cfg:  cfg,
		mach: m,
		mdl:  model.New(mcfg.L2.Lines()),
		rng:  xrand.New(cfg.Seed),
		// The walk region is much larger than the cache so that the
		// addresses that MISS are (nearly) uniformly distributed over
		// the sets — the model's independence assumption. With a small
		// region, resident lines filter themselves out of the miss
		// stream and misses preferentially fill empty sets.
		walk: m.AllocPages(uint64(64 * mcfg.L2.Size)),
	}
	m.RegisterState(fig4WalkerTID, r.walk)
	return r
}

// lineSize returns the E-cache line size.
func (r *fig4Rig) lineSize() uint64 { return uint64(r.mach.Config().L2.LineSize) }

// preload touches `lines` distinct random lines of region on behalf of
// tid, establishing an initial footprint, and returns nothing — callers
// read the observed footprint from the tracker.
func (r *fig4Rig) preload(tid mem.ThreadID, region mem.Range, lines int) {
	total := int(region.Lines(r.lineSize()))
	if lines > total {
		lines = total
	}
	perm := r.rng.Perm(total)
	batch := make(mem.Batch, 0, lines)
	for _, li := range perm[:lines] {
		batch = append(batch, mem.Access{
			Base: region.Base + mem.Addr(uint64(li)*r.lineSize()), Count: 1, Size: 8,
		})
	}
	r.mach.Apply(0, tid, batch)
}

// run performs the random walk, sampling the observed footprint of
// `watch` every checkpoint until MaxMisses, with predict supplying the
// model value for a given miss count.
func (r *fig4Rig) run(watch mem.ThreadID, predict func(n uint64) float64) *Curve {
	gen := trace.NewGen(trace.Uniform(r.walk), r.rng.Uint64())
	cpu := r.mach.CPU(0)
	m0 := cpu.EMisses
	next := r.cfg.Checkpoint
	curve := &Curve{}
	record := func(n uint64) {
		curve.Misses = append(curve.Misses, float64(n))
		curve.Observed = append(curve.Observed, float64(r.mach.Footprint(0, watch)))
		curve.Predicted = append(curve.Predicted, predict(n))
	}
	record(0)
	var batch mem.Batch
	for {
		batch = batch[:0]
		batch, _ = gen.Emit(batch, 128)
		r.mach.Apply(0, fig4WalkerTID, batch)
		n := cpu.EMisses - m0
		if n >= next {
			// Sample at the actual miss count, not the checkpoint
			// label: a batch may overshoot the checkpoint and the
			// footprint must be compared against the prediction for
			// the same n.
			record(n)
			for next <= n {
				next += r.cfg.Checkpoint
			}
		}
		if n >= r.cfg.MaxMisses {
			return curve
		}
	}
}

// Fig4 reproduces the four random-memory-walk panels.
func Fig4(cfg StudyConfig) *Fig4Result {
	cfg = cfg.withDefaults(20000)
	r := newFig4Rig(cfg)
	N := r.mdl.N()
	res := &Fig4Result{N: N}

	// Panel a: the executing thread itself, from several initial
	// footprints. E[F] = N − (N−S0)kⁿ.
	for _, s0 := range []int{0, N / 4, N / 2, N} {
		r.mach.FlushCaches()
		r.preload(fig4WalkerTID, r.walk, s0)
		s0obs := float64(r.mach.Footprint(0, fig4WalkerTID))
		c := r.run(fig4WalkerTID, func(n uint64) float64 { return r.mdl.ExpectSelf(s0obs, n) })
		c.Label = fmt.Sprintf("S0=%d", s0)
		res.A = append(res.A, c)
	}

	// Panel b: sleeping independent threads with disjoint state decay
	// as E[F] = S0·kⁿ.
	indepRegion := r.mach.AllocPages(uint64(r.mach.Config().L2.Size))
	r.mach.RegisterState(fig4FirstTID, indepRegion)
	for _, s0 := range []int{N / 4, N / 2, N} {
		r.mach.FlushCaches()
		r.preload(fig4FirstTID, indepRegion, s0)
		s0obs := float64(r.mach.Footprint(0, fig4FirstTID))
		c := r.run(fig4FirstTID, func(n uint64) float64 { return r.mdl.ExpectIndep(s0obs, n) })
		c.Label = fmt.Sprintf("S0=%d", s0)
		res.B = append(res.B, c)
	}

	// Panel c: a sleeping dependent thread sharing half its state with
	// the walker (its region is the first half of the walk region), so
	// each walker miss lands on shared state with probability 0.5.
	// E[F] = qN − (qN−S0)kⁿ: the footprint grows or decays toward qN.
	const qc = 0.5
	halfTID := fig4FirstTID + 1
	half := mem.Range{Base: r.walk.Base, Len: uint64(float64(r.walk.Len) * qc)}
	r.mach.RegisterState(halfTID, half)
	for _, s0 := range []int{0, N / 4, N / 2, N} {
		r.mach.FlushCaches()
		r.preload(halfTID, half, s0)
		s0obs := float64(r.mach.Footprint(0, halfTID))
		c := r.run(halfTID, func(n uint64) float64 { return r.mdl.ExpectDep(s0obs, qc, n) })
		c.Label = fmt.Sprintf("S0=%d", s0)
		res.C = append(res.C, c)
	}

	// Panel d: sleeping dependent threads with different sharing
	// coefficients, same initial footprint: each converges to its own
	// qN.
	qTID := halfTID + 1
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		region := mem.Range{Base: r.walk.Base, Len: uint64(float64(r.walk.Len) * q)}
		r.mach.RegisterState(qTID, region)
		r.mach.FlushCaches()
		s0 := N / 8
		r.preload(qTID, region, s0)
		s0obs := float64(r.mach.Footprint(0, qTID))
		q := q
		c := r.run(qTID, func(n uint64) float64 { return r.mdl.ExpectDep(s0obs, q, n) })
		c.Label = fmt.Sprintf("q=%.1f", q)
		res.D = append(res.D, c)
		qTID++
	}
	return res
}

// MaxRelError returns the worst mean relative error across all panels —
// the microbenchmark satisfies the model's assumptions, so this should
// be small (a few percent).
func (r *Fig4Result) MaxRelError() float64 {
	worst := 0.0
	for _, set := range [][]*Curve{r.A, r.B, r.C, r.D} {
		for _, c := range set {
			if e := stats.MeanRelError(c.Predicted, c.Observed, float64(r.N)/50); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Render produces the four panels as plots plus an accuracy table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	panels := []struct {
		name   string
		curves []*Curve
	}{
		{"a) Executing thread", r.A},
		{"b) Sleeping independent threads", r.B},
		{"c) Sleeping dependent thread (q=0.5)", r.C},
		{"d) Sleeping vs. different sharing coefficients", r.D},
	}
	acc := report.NewTable("Figure 4 — Random memory walk: model accuracy",
		"panel", "curve", "final observed", "final predicted", "RMSE", "bias")
	for _, panel := range panels {
		plot := &report.Plot{
			Title:  "Figure 4 " + panel.name + " (footprint in lines vs E-cache misses)",
			XLabel: "E-cache misses",
			YLabel: "lines",
		}
		for _, c := range panel.curves {
			obs, pred := c.series()
			plot.Series = append(plot.Series, obs, pred)
			acc.AddRow(panel.name[:2], c.Label,
				fmt.Sprintf("%.0f", c.Observed[len(c.Observed)-1]),
				fmt.Sprintf("%.0f", c.Predicted[len(c.Predicted)-1]),
				fmt.Sprintf("%.1f", c.RMSE()),
				fmt.Sprintf("%+.1f", c.Bias()))
		}
		plot.WriteTo(&b)
		b.WriteString("\n")
	}
	acc.WriteTo(&b)
	return b.String()
}
