package experiments

import (
	"strings"
	"testing"
)

// sharedQuick is the shared-LLC matrix scale used by tests, goldens and
// the CI smoke. 0.15 is the smallest scale at which tsp's schedule is
// long enough for the policy differences to dominate startup effects.
var sharedQuick = SchedConfig{Scale: 0.15, Seed: 11, Jobs: 8}

// TestSharedLLCAccuracy mirrors the Figure 4 acceptance bar on the
// shared cache: the co-runner-aware closed forms must track the
// simulator within a few percent of cache capacity on every panel.
func TestSharedLLCAccuracy(t *testing.T) {
	res := SharedLLC(StudyConfig{})
	if got := res.MaxRelError(); got > 0.06 {
		t.Errorf("worst panel mean relative error %.3f, want <= 0.06", got)
	}
	for _, set := range [][]*Curve{res.A, res.B, res.C} {
		for _, c := range set {
			if len(c.Misses) < 10 {
				t.Errorf("curve %q has only %d samples", c.Label, len(c.Misses))
			}
		}
	}
	// Panel a's co=0 curve is the degenerate private case and must be
	// essentially exact (it is the Figure 4a experiment on the shared
	// rig).
	if rmse := res.A[0].RMSE(); rmse > float64(res.N)/100 {
		t.Errorf("degenerate co=0 curve RMSE %.1f, want < N/100", rmse)
	}
}

// TestSharedPoliciesBeatFCFS is the paper's Section 5 claim carried to
// the shared LLC: the shared-aware locality policies eliminate misses
// relative to FCFS on the aggregate workload.
func TestSharedPoliciesBeatFCFS(t *testing.T) {
	res, err := SharedLLCSched(sharedQuick)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := res.TotalMisses("FCFS")
	for _, policy := range []string{"LFF-SH", "CRT-SH"} {
		if got := res.TotalMisses(policy); got >= fcfs {
			t.Errorf("%s total E-misses %d did not beat FCFS %d", policy, got, fcfs)
		}
	}
	// The shared-aware variants must not lose to their base policies in
	// aggregate either — the machine-wide clock and co-runner forms are
	// the point of the exercise.
	if lffsh, crt := res.TotalMisses("LFF-SH"), res.TotalMisses("CRT"); lffsh >= crt {
		t.Errorf("LFF-SH total %d did not beat CRT %d", lffsh, crt)
	}
	if res.Topology != "shared-llc" {
		t.Errorf("default topology %q, want shared-llc", res.Topology)
	}
	out := res.Render()
	for _, want := range []string{"LFF-SH", "CRT-SH", "shared-llc", "aggregate misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestSharedAwareDegradesOnPrivate pins the no-op guarantee of the
// scheduler's topology gate: a shared-aware policy on the paper's
// private hierarchy must produce counter-for-counter the run of its
// base policy (the embedded scheme, private clocks).
func TestSharedAwareDegradesOnPrivate(t *testing.T) {
	cfg := quickSched
	cfg.CPUs = 8
	for _, pair := range [][2]string{{"LFF-SH", "LFF"}, {"CRT-SH", "CRT"}} {
		shared, err := RunSched("tasks", pair[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := RunSched("tasks", pair[1], cfg)
		if err != nil {
			t.Fatal(err)
		}
		shared.Policy = base.Policy
		if shared != base {
			t.Errorf("%s on private-dm diverged from %s:\n%+v\n%+v",
				pair[0], pair[1], shared, base)
		}
	}
}

// TestSharedTopologyMatrixOnPrivate runs the matrix driver on the
// private topology — the cross-check column for the shared-LLC report.
func TestSharedTopologyMatrixOnPrivate(t *testing.T) {
	cfg := sharedQuick
	cfg.Scale = 0.08
	cfg.Topology = "private-dm"
	res, err := SharedLLCSched(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != "private-dm" {
		t.Fatalf("topology %q", res.Topology)
	}
	for _, app := range res.Apps {
		if res.Runs[app]["LFF-SH"].EMisses != res.Runs[app]["LFF"].EMisses {
			t.Errorf("%s: LFF-SH misses %d != LFF %d on private-dm",
				app, res.Runs[app]["LFF-SH"].EMisses, res.Runs[app]["LFF"].EMisses)
		}
	}
}

// TestRunSchedRejectsBadTopology pins the fail-fast contract.
func TestRunSchedRejectsBadTopology(t *testing.T) {
	cfg := quickSched
	cfg.Topology = "shared-assoc:nope"
	if _, err := RunSched("tasks", "LFF", cfg); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("err = %v, want a descriptive topology error", err)
	}
}
