package experiments

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// SourceRow attributes one application's LFF benefit to its two
// information sources: the counter-driven footprint model alone
// (annotations disabled) versus the full system.
type SourceRow struct {
	App string
	// ElimFull is LFF's miss elimination vs FCFS with annotations;
	// ElimCounters with annotations disabled (the model alone).
	ElimFull, ElimCounters float64
	// CounterShare is ElimCounters/ElimFull (clamped to [0,1] for
	// presentation), the fraction of the benefit the counters alone
	// provide.
	CounterShare float64
}

// SourcesResult reproduces the paper's Section 5 attribution
// discussion: "for different applications, speedup comes from different
// sources" — tasks from the cache-performance feedback exclusively,
// merge almost entirely from the annotations, tsp mostly from
// within-thread locality (counters), photo from both.
type SourcesResult struct {
	CPUs int
	Rows []SourceRow
}

// SourcesStudy measures the attribution for every application on the
// SMP.
func SourcesStudy(cfg SchedConfig) (*SourcesResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()
	res := &SourcesResult{CPUs: cfg.CPUs}
	noAnn := cfg
	noAnn.DisableAnnotations = true
	variants := []struct {
		policy string
		cfg    SchedConfig
	}{{"FCFS", cfg}, {"LFF", cfg}, {"LFF", noAnn}}
	apps := workloads.SchedApps()
	runs, err := parallel.Map(cfg.Jobs, len(apps)*len(variants), func(i int) (PolicyRun, error) {
		v := variants[i%len(variants)]
		return RunSched(apps[i/len(variants)].Name, v.policy, v.cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		fcfs, full, counters := runs[3*i], runs[3*i+1], runs[3*i+2]
		row := SourceRow{
			App:          app.Name,
			ElimFull:     stats.PercentEliminated(float64(fcfs.EMisses), float64(full.EMisses)),
			ElimCounters: stats.PercentEliminated(float64(fcfs.EMisses), float64(counters.EMisses)),
		}
		if row.ElimFull > 1 {
			row.CounterShare = row.ElimCounters / row.ElimFull
			if row.CounterShare < 0 {
				row.CounterShare = 0
			} else if row.CounterShare > 1 {
				row.CounterShare = 1
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the named application's attribution.
func (r *SourcesResult) Row(app string) SourceRow {
	for _, row := range r.Rows {
		if row.App == app {
			return row
		}
	}
	return SourceRow{}
}

// Render produces the attribution table.
func (r *SourcesResult) Render() string {
	tbl := report.NewTable(
		fmt.Sprintf("Where the speedup comes from — LFF miss elimination %%, %d CPUs", r.CPUs),
		"app", "full (counters + annotations)", "counters only", "counters' share", "paper's attribution")
	attribution := map[string]string{
		"tasks": "cache feedback exclusively (disjoint state)",
		"merge": "almost entirely the annotations",
		"photo": "both kinds of information critical",
		"tsp":   "mostly locality within a thread (counters)",
	}
	for _, row := range r.Rows {
		tbl.AddRow(row.App,
			fmt.Sprintf("%.1f", row.ElimFull),
			fmt.Sprintf("%.1f", row.ElimCounters),
			fmt.Sprintf("%.0f%%", 100*row.CounterShare),
			attribution[row.App])
	}
	return tbl.String()
}
