package experiments

import (
	"context"
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform/sim"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// InferenceResult compares, for one application on the SMP, the three
// ways of obtaining sharing information the paper discusses: explicit
// user annotations (Section 2.3), no information at all (the ablation),
// and purely runtime inference from a software Cache Miss Lookaside
// buffer (the Section 7 extension implemented in internal/inference).
type InferenceResult struct {
	App  string
	CPUs int

	FCFS      PolicyRun
	Annotated PolicyRun
	None      PolicyRun
	Inferred  PolicyRun
}

// InferenceStudy runs the comparison for one application under LFF.
func InferenceStudy(appName string, cfg SchedConfig) (*InferenceResult, error) {
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()
	res := &InferenceResult{App: appName, CPUs: cfg.CPUs}

	var err error
	if res.FCFS, err = RunSched(appName, "FCFS", cfg); err != nil {
		return nil, err
	}
	if res.Annotated, err = RunSched(appName, "LFF", cfg); err != nil {
		return nil, err
	}
	none := cfg
	none.DisableAnnotations = true
	if res.None, err = RunSched(appName, "LFF", none); err != nil {
		return nil, err
	}
	inferred := none
	inferred.InferSharing = true
	if res.Inferred, err = RunSched(appName, "LFF", inferred); err != nil {
		return nil, err
	}
	return res, nil
}

// Eliminated returns the miss elimination of a variant vs FCFS.
func (r *InferenceResult) Eliminated(run PolicyRun) float64 {
	return stats.PercentEliminated(float64(r.FCFS.EMisses), float64(run.EMisses))
}

// Speedup returns the relative performance of a variant vs FCFS.
func (r *InferenceResult) Speedup(run PolicyRun) float64 {
	return stats.Ratio(float64(r.FCFS.Cycles), float64(run.Cycles))
}

// InferredRecovery returns how much of the annotated miss elimination
// the inference recovers, in percent.
func (r *InferenceResult) InferredRecovery() float64 {
	full := r.Eliminated(r.Annotated)
	if full <= 0 {
		return 0
	}
	return 100 * r.Eliminated(r.Inferred) / full
}

// Render produces the comparison table.
func (r *InferenceResult) Render() string {
	tbl := report.NewTable(
		fmt.Sprintf("Sharing-information sources — %s, LFF, %d CPUs (Section 7 extension)", r.App, r.CPUs),
		"variant", "E-misses", "eliminated%", "relative perf")
	row := func(name string, run PolicyRun) {
		elim := "-"
		if name != "FCFS baseline" {
			elim = fmt.Sprintf("%.1f", r.Eliminated(run))
		}
		tbl.AddRow(name, fmt.Sprint(run.EMisses), elim, fmt.Sprintf("%.2f", r.Speedup(run)))
	}
	row("FCFS baseline", r.FCFS)
	row("LFF, user annotations", r.Annotated)
	row("LFF, no sharing info", r.None)
	row("LFF, inferred (CML)", r.Inferred)
	tbl.Note("inference recovers %.0f%% of the annotated miss elimination with zero user annotations", r.InferredRecovery())
	return tbl.String()
}

// ProfiledResult extends the inference study with the paper's other
// Section 7 proposal: "repeated trial runs... may be another viable
// alternative for identifying shared pages". Because the simulation is
// deterministic, thread IDs are stable across runs, so a profiling run
// can harvest its full co-access evidence and a second run can start
// with those edges pre-installed — inference without any warm-up lag.
type ProfiledResult struct {
	Inference *InferenceResult
	// Profiled is the LFF run that starts with the profiling run's
	// harvested annotations (and inference off).
	Profiled PolicyRun
	// Edges is how many annotations the profile produced.
	Edges int
}

// ProfiledStudy runs the base inference comparison plus the two-run
// profile-then-annotate protocol for one application.
func ProfiledStudy(appName string, cfg SchedConfig) (*ProfiledResult, error) {
	base, err := InferenceStudy(appName, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CPUs <= 1 {
		cfg.CPUs = 8
	}
	cfg = cfg.withDefaults()

	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return nil, err
	}
	// Trial run: profile with the monitor, keeping history.
	profMach := machine.New(platform(cfg.CPUs, cachesim.Topology{}))
	prof, err := rt.New(sim.New(profMach), rt.Options{
		Policy: "LFF", Seed: cfg.Seed,
		DisableAnnotations: true, InferSharing: true, KeepInferenceHistory: true,
	})
	if err != nil {
		return nil, err
	}
	app.Spawn(prof, cfg.Scale)
	if err := prof.Run(context.Background()); err != nil {
		return nil, err
	}

	// Production run: the harvested edges become static annotations
	// (thread IDs are stable across runs by determinism).
	runMach := machine.New(platform(cfg.CPUs, cachesim.Topology{}))
	run, err := rt.New(sim.New(runMach), rt.Options{
		Policy: "LFF", Seed: cfg.Seed, DisableAnnotations: true,
	})
	if err != nil {
		return nil, err
	}
	edges := 0
	monitor := prof.Monitor()
	for tid := mem.ThreadID(0); tid < 1<<16; tid++ {
		if monitor.Pages(tid) == 0 {
			continue
		}
		for _, e := range monitor.EdgesFor(tid, 0.1, 8) {
			run.Graph().Share(tid, e.To, e.Q)
			edges++
		}
	}
	app.Spawn(run, cfg.Scale)
	if err := run.Run(context.Background()); err != nil {
		return nil, err
	}
	refs, _, misses := runMach.Totals()
	return &ProfiledResult{
		Inference: base,
		Edges:     edges,
		Profiled: PolicyRun{
			App: appName, Policy: "LFF(profiled)", CPUs: cfg.CPUs,
			EMisses: misses, ERefs: refs, Cycles: runMach.MaxCycles(),
		},
	}, nil
}

// Render produces the extended comparison.
func (p *ProfiledResult) Render() string {
	r := p.Inference
	tbl := report.NewTable(
		fmt.Sprintf("Sharing-information sources incl. profile-then-annotate — %s, LFF, %d CPUs", r.App, r.CPUs),
		"variant", "E-misses", "eliminated%", "relative perf")
	row := func(name string, run PolicyRun) {
		elim := "-"
		if name != "FCFS baseline" {
			elim = fmt.Sprintf("%.1f", r.Eliminated(run))
		}
		tbl.AddRow(name, fmt.Sprint(run.EMisses), elim, fmt.Sprintf("%.2f", r.Speedup(run)))
	}
	row("FCFS baseline", r.FCFS)
	row("LFF, user annotations", r.Annotated)
	row("LFF, no sharing info", r.None)
	row("LFF, inferred online (CML)", r.Inferred)
	row("LFF, profiled trial run", p.Profiled)
	tbl.Note("the trial run installed %d inferred edges before the production run started", p.Edges)
	return tbl.String()
}
