// Package experiments implements one driver per table and figure of the
// paper's evaluation. Each driver returns a typed result whose Render
// method produces the rows/series the paper reports; cmd/repro prints
// them and bench_test.go regenerates them under `go test -bench`.
//
// The per-experiment index lives in DESIGN.md; the paper-vs-measured
// record lives in EXPERIMENTS.md.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// Policies are the scheduling policies of Section 5, baseline first.
var Policies = []string{"FCFS", "LFF", "CRT"}

// PolicyRun is the outcome of one application run under one policy.
type PolicyRun struct {
	App      string
	Policy   string
	CPUs     int
	EMisses  uint64
	ERefs    uint64
	Cycles   uint64
	Instrs   uint64
	Steals   uint64
	HeapOps  uint64
	Dispatch uint64
	// IdleCycles is the summed per-CPU idle time; utilization is
	// 1 − Idle/(Cycles·CPUs).
	IdleCycles uint64
}

// Utilization returns the machine utilization of the run in [0, 1].
func (r PolicyRun) Utilization() float64 {
	total := float64(r.Cycles) * float64(r.CPUs)
	if total == 0 {
		return 0
	}
	u := 1 - float64(r.IdleCycles)/total
	if u < 0 {
		return 0
	}
	return u
}

// MissRatio returns EMisses/ERefs.
func (r PolicyRun) MissRatio() float64 {
	if r.ERefs == 0 {
		return 0
	}
	return float64(r.EMisses) / float64(r.ERefs)
}

// SchedConfig parameterizes a Section 5 style run.
type SchedConfig struct {
	// CPUs selects the platform: 1 = Ultra-1 (42-cycle miss), >1 =
	// Enterprise 5000 (50/80-cycle miss).
	CPUs int
	// Scale shrinks the workload for fast runs; 1.0 reproduces the
	// paper's Table 4 parameters.
	Scale float64
	// Seed fixes all run randomness.
	Seed uint64
	// DisableAnnotations runs the annotation ablation.
	DisableAnnotations bool
	// InferSharing replaces user annotations with runtime inference
	// (the Section 7 extension).
	InferSharing bool
	// Threshold overrides the heap demotion threshold in lines (0 =
	// the runtime default).
	Threshold float64
	// SpawnStacks enables the work-first spawn-stack ablation.
	SpawnStacks bool
	// Jobs is the number of worker threads used to fan independent
	// cells (app × policy runs) of a multi-cell experiment across CPUs:
	// 0 uses every processor, 1 runs sequentially. Results are
	// bit-identical for any value — every cell owns its machine and
	// RNG stream and is collected by index (see internal/parallel).
	Jobs int
	// Obs, when non-nil, attaches an observability session: every cell
	// run registers an observer under a key derived purely from the
	// cell's configuration, so session exports are byte-identical for
	// any Jobs value.
	Obs *obs.Session
	// CheckpointEvery enables crash-safe checkpointing: every run
	// writes a verified-resumable snapshot each time its virtual clock
	// crosses a boundary (0 disables). Requires CheckpointPath or
	// CheckpointDir. Checkpoint capture is read-only, so results are
	// bit-identical with and without it.
	CheckpointEvery uint64
	// CheckpointPath is the snapshot file of a single run. For
	// multi-cell experiments use CheckpointDir instead: each cell's
	// file is derived from its cell key, so results stay independent
	// of Jobs.
	CheckpointPath string
	// CheckpointDir places each cell's snapshot at
	// <dir>/<sanitized cell key>.snap.
	CheckpointDir string
	// Resume loads each run's snapshot file (from CheckpointPath or
	// CheckpointDir) if one exists, re-executes deterministically to
	// its cursor, verifies bit-exact agreement and continues; runs
	// whose file does not exist start fresh, so an interrupted
	// multi-cell sweep resumes exactly where each cell left off.
	Resume bool
	// StallTimeout arms the engine's stall watchdog (see rt.Options).
	StallTimeout time.Duration
	// Topology selects the cache organisation ("" or "private-dm" for
	// the paper's private hierarchy; "shared-llc", "shared-assoc:W",
	// "shared-fa" for the shared variants — see cachesim.ParseTopology).
	Topology string
}

// cellKey names one run's observer cell. It must be a pure function of
// the run configuration (obs.Cell.Key documents why).
func (c SchedConfig) cellKey(app, policy string) string {
	key := fmt.Sprintf("%s/%s/%dcpu", app, policy, c.CPUs)
	if c.DisableAnnotations {
		key += "/noannot"
	}
	if c.InferSharing {
		key += "/infer"
	}
	if c.SpawnStacks {
		key += "/spawnstacks"
	}
	if topo, err := cachesim.ParseTopology(c.Topology); err == nil && topo.Shared() {
		key += "/" + topo.String()
	}
	return key
}

// configKV renders the run parameters the engine cannot verify itself
// (it checks policy, CPU count and seed natively) as the snapshot's
// config record, so a checkpoint can never be resumed under a
// different application or scale.
func (c SchedConfig) configKV(app string) []snapshot.KV {
	return []snapshot.KV{
		{K: "app", V: app},
		{K: "scale", V: strconv.FormatFloat(c.Scale, 'g', -1, 64)},
		{K: "noannot", V: strconv.FormatBool(c.DisableAnnotations)},
		{K: "infer", V: strconv.FormatBool(c.InferSharing)},
		{K: "threshold", V: strconv.FormatFloat(c.Threshold, 'g', -1, 64)},
		{K: "spawnstacks", V: strconv.FormatBool(c.SpawnStacks)},
		{K: "topology", V: c.topology().String()},
	}
}

// topology parses the configured spec, falling back to the private
// default on garbage — RunSched rejects the garbage before any
// snapshot is written, so the fallback is never persisted.
func (c SchedConfig) topology() cachesim.Topology {
	topo, _ := cachesim.ParseTopology(c.Topology)
	return topo
}

// checkpointConfig resolves the run's snapshot path and, when resuming,
// loads the stored snapshot. A Resume with no snapshot file present
// starts fresh — that is what lets a killed multi-cell sweep restart
// with every cell picking up from its own last boundary.
func (c SchedConfig) checkpointConfig(app, policy string) (rt.CheckpointConfig, error) {
	cfg := rt.CheckpointConfig{Every: c.CheckpointEvery, Path: c.CheckpointPath}
	if cfg.Path == "" && c.CheckpointDir != "" {
		cfg.Path = filepath.Join(c.CheckpointDir,
			strings.NewReplacer("/", "_", " ", "_").Replace(c.cellKey(app, policy))+".snap")
	}
	if cfg.Every == 0 && cfg.Path == "" && !c.Resume {
		return rt.CheckpointConfig{}, nil
	}
	cfg.Config = c.configKV(app)
	if c.Resume && cfg.Path != "" {
		st, err := snapshot.LoadFile(cfg.Path)
		switch {
		case err == nil:
			cfg.Resume = st
		case errors.Is(err, os.ErrNotExist):
			// fresh start
		default:
			return rt.CheckpointConfig{}, err
		}
	}
	return cfg, nil
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// platform builds the machine for a CPU count and topology.
func platform(cpus int, topo cachesim.Topology) machine.Config {
	cfg := machine.UltraSPARC1()
	if cpus != 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	cfg.Topology = topo
	return cfg
}

// RunSched executes one application under one policy and returns its
// counters. It is the primitive behind Figures 8 and 9, Table 5 and the
// annotation ablation.
func RunSched(appName, policy string, cfg SchedConfig) (PolicyRun, error) {
	cfg = cfg.withDefaults()
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return PolicyRun{}, err
	}
	topo, err := cachesim.ParseTopology(cfg.Topology)
	if err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	ckpt, err := cfg.checkpointConfig(appName, policy)
	if err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	m := machine.New(platform(cfg.CPUs, topo))
	e, err := rt.New(sim.New(m), rt.Options{
		Policy:             policy,
		Seed:               cfg.Seed,
		DisableAnnotations: cfg.DisableAnnotations,
		InferSharing:       cfg.InferSharing,
		ThresholdLines:     cfg.Threshold,
		SpawnStacks:        cfg.SpawnStacks,
		Obs:                cfg.Obs.Observer(cfg.cellKey(appName, policy), cfg.CPUs),
		Checkpoint:         ckpt,
		StallTimeout:       cfg.StallTimeout,
	})
	if err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	app.Spawn(e, cfg.Scale)
	if err := e.Run(context.Background()); err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	refs, _, misses := m.Totals()
	snap := e.Snapshot()
	var idle uint64
	for _, ic := range snap.IdleCycles {
		idle += ic
	}
	return PolicyRun{
		App:        appName,
		Policy:     policy,
		CPUs:       cfg.CPUs,
		EMisses:    misses,
		ERefs:      refs,
		Cycles:     m.MaxCycles(),
		Instrs:     m.TotalInstrs(),
		Steals:     snap.SchedOps.Steals,
		HeapOps:    snap.SchedOps.Total(),
		Dispatch:   snap.TotalDispatches(),
		IdleCycles: idle,
	}, nil
}
