// Package experiments implements one driver per table and figure of the
// paper's evaluation. Each driver returns a typed result whose Render
// method produces the rows/series the paper reports; cmd/repro prints
// them and bench_test.go regenerates them under `go test -bench`.
//
// The per-experiment index lives in DESIGN.md; the paper-vs-measured
// record lives in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/workloads"
)

// Policies are the scheduling policies of Section 5, baseline first.
var Policies = []string{"FCFS", "LFF", "CRT"}

// PolicyRun is the outcome of one application run under one policy.
type PolicyRun struct {
	App      string
	Policy   string
	CPUs     int
	EMisses  uint64
	ERefs    uint64
	Cycles   uint64
	Instrs   uint64
	Steals   uint64
	HeapOps  uint64
	Dispatch uint64
	// IdleCycles is the summed per-CPU idle time; utilization is
	// 1 − Idle/(Cycles·CPUs).
	IdleCycles uint64
}

// Utilization returns the machine utilization of the run in [0, 1].
func (r PolicyRun) Utilization() float64 {
	total := float64(r.Cycles) * float64(r.CPUs)
	if total == 0 {
		return 0
	}
	u := 1 - float64(r.IdleCycles)/total
	if u < 0 {
		return 0
	}
	return u
}

// MissRatio returns EMisses/ERefs.
func (r PolicyRun) MissRatio() float64 {
	if r.ERefs == 0 {
		return 0
	}
	return float64(r.EMisses) / float64(r.ERefs)
}

// SchedConfig parameterizes a Section 5 style run.
type SchedConfig struct {
	// CPUs selects the platform: 1 = Ultra-1 (42-cycle miss), >1 =
	// Enterprise 5000 (50/80-cycle miss).
	CPUs int
	// Scale shrinks the workload for fast runs; 1.0 reproduces the
	// paper's Table 4 parameters.
	Scale float64
	// Seed fixes all run randomness.
	Seed uint64
	// DisableAnnotations runs the annotation ablation.
	DisableAnnotations bool
	// InferSharing replaces user annotations with runtime inference
	// (the Section 7 extension).
	InferSharing bool
	// Threshold overrides the heap demotion threshold in lines (0 =
	// the runtime default).
	Threshold float64
	// SpawnStacks enables the work-first spawn-stack ablation.
	SpawnStacks bool
	// Jobs is the number of worker threads used to fan independent
	// cells (app × policy runs) of a multi-cell experiment across CPUs:
	// 0 uses every processor, 1 runs sequentially. Results are
	// bit-identical for any value — every cell owns its machine and
	// RNG stream and is collected by index (see internal/parallel).
	Jobs int
	// Obs, when non-nil, attaches an observability session: every cell
	// run registers an observer under a key derived purely from the
	// cell's configuration, so session exports are byte-identical for
	// any Jobs value.
	Obs *obs.Session
}

// cellKey names one run's observer cell. It must be a pure function of
// the run configuration (obs.Cell.Key documents why).
func (c SchedConfig) cellKey(app, policy string) string {
	key := fmt.Sprintf("%s/%s/%dcpu", app, policy, c.CPUs)
	if c.DisableAnnotations {
		key += "/noannot"
	}
	if c.InferSharing {
		key += "/infer"
	}
	if c.SpawnStacks {
		key += "/spawnstacks"
	}
	return key
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// platform builds the machine for a CPU count.
func platform(cpus int) machine.Config {
	if cpus == 1 {
		return machine.UltraSPARC1()
	}
	return machine.Enterprise5000(cpus)
}

// RunSched executes one application under one policy and returns its
// counters. It is the primitive behind Figures 8 and 9, Table 5 and the
// annotation ablation.
func RunSched(appName, policy string, cfg SchedConfig) (PolicyRun, error) {
	cfg = cfg.withDefaults()
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return PolicyRun{}, err
	}
	m := machine.New(platform(cfg.CPUs))
	e, err := rt.New(sim.New(m), rt.Options{
		Policy:             policy,
		Seed:               cfg.Seed,
		DisableAnnotations: cfg.DisableAnnotations,
		InferSharing:       cfg.InferSharing,
		ThresholdLines:     cfg.Threshold,
		SpawnStacks:        cfg.SpawnStacks,
		Obs:                cfg.Obs.Observer(cfg.cellKey(appName, policy), cfg.CPUs),
	})
	if err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	app.Spawn(e, cfg.Scale)
	if err := e.Run(context.Background()); err != nil {
		return PolicyRun{}, fmt.Errorf("experiments: %s/%s/%dcpu: %w", appName, policy, cfg.CPUs, err)
	}
	refs, _, misses := m.Totals()
	snap := e.Snapshot()
	var idle uint64
	for _, ic := range snap.IdleCycles {
		idle += ic
	}
	return PolicyRun{
		App:        appName,
		Policy:     policy,
		CPUs:       cfg.CPUs,
		EMisses:    misses,
		ERefs:      refs,
		Cycles:     m.MaxCycles(),
		Instrs:     m.TotalInstrs(),
		Steals:     snap.SchedOps.Steals,
		HeapOps:    snap.SchedOps.Total(),
		Dispatch:   snap.TotalDispatches(),
		IdleCycles: idle,
	}, nil
}
