package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Table1 renders the simulated UltraSPARC-1 memory hierarchy (and the
// Enterprise 5000 variant).
func Table1() string {
	u := machine.UltraSPARC1()
	e := machine.Enterprise5000(8)
	t := report.NewTable("Table 1 — Simulated UltraSPARC-1 memory hierarchy",
		"cache", "size", "line", "assoc", "policy", "latency")
	t.AddRow("D-cache (L1)", kb(u.L1D.Size), fmt.Sprintf("%dB", u.L1D.LineSize),
		way(u.L1D.Assoc), "write-through, no write-allocate",
		fmt.Sprintf("hit %d cy", u.L1D.HitCycles))
	t.AddRow("I-cache (L1)", kb(u.L1I.Size), fmt.Sprintf("%dB", u.L1I.LineSize),
		way(u.L1I.Assoc), "read-allocate",
		fmt.Sprintf("hit %d cy", u.L1I.HitCycles))
	t.AddRow("E-cache (L2)", kb(u.L2.Size), fmt.Sprintf("%dB", u.L2.LineSize),
		way(u.L2.Assoc), "unified, write-back, inclusion of both L1s",
		fmt.Sprintf("hit %d cy, miss %d cy", u.L2.HitCycles, u.MissCycles))
	t.Note("Enterprise 5000: E-cache miss %d cycles, or %d if the line is dirty in another processor's cache",
		e.MissCycles, e.MissCyclesRemote)
	t.Note("virtual memory: %dKB pages, Kessler-Hill careful page mapping", u.PageSize/1024)
	return t.String()
}

// Table2 renders the simulated workloads of the model study.
func Table2() string {
	t := report.NewTable("Table 2 — Simulated workloads",
		"app", "class", "state", "description")
	for _, a := range workloads.StudyApps() {
		t.AddRow(a.Name, a.Class, kb(int64(a.StateBytes)), a.Description)
	}
	return t.String()
}

// Table3Result holds the measured priority-update costs.
type Table3Result struct {
	// FLOPs[policy][class] in floating-point operations per update.
	Rows []Table3Row
}

// Table3Row is one policy/thread-class cost.
type Table3Row struct {
	Policy string
	Class  string
	FLOPs  uint64
}

// Table3 measures the cost of priority updates per thread class by
// running each update once against an instrumented model and counting
// its floating-point operations, exactly the quantity the paper's
// Table 3 reports. The headline properties: every class is O(1), and
// the independent class costs zero.
func Table3() *Table3Result {
	mdl := model.New(8192)
	res := &Table3Result{}
	count := func(policy, class string, op func()) {
		mdl.ResetFLOPs()
		op()
		res.Rows = append(res.Rows, Table3Row{Policy: policy, Class: class, FLOPs: mdl.FLOPs()})
	}
	count("LFF", "blocking thread", func() { (model.LFF{}).Blocking(mdl, 100, 50, 1000) })
	count("LFF", "dependent thread", func() { (model.LFF{}).Dependent(mdl, 100, 0, 0.5, 50, 1000) })
	count("LFF", "independent thread", func() {}) // no update at all
	count("CRT", "blocking thread", func() { (model.CRT{}).Blocking(mdl, 100, 50, 1000) })
	count("CRT", "dependent thread", func() { (model.CRT{}).Dependent(mdl, 100, 120, 0.5, 50, 1000) })
	count("CRT", "independent thread", func() {})
	return res
}

// Render produces the Table 3 rows.
func (t *Table3Result) Render() string {
	tbl := report.NewTable("Table 3 — The costs of priority updates (floating-point instructions per thread)",
		"policy", "thread class", "FP instructions")
	for _, r := range t.Rows {
		tbl.AddRow(r.Policy, r.Class, fmt.Sprint(r.FLOPs))
	}
	tbl.Note("kⁿ and log(F) come from pre-computed tables and cost no FP instructions")
	tbl.Note("independent threads require no update at all — the inflated priorities are time-invariant")
	return tbl.String()
}

// Table4 renders the input parameters of the Section 5 application
// runs.
func Table4() string {
	t := report.NewTable("Table 4 — Input parameters for application runs",
		"app", "threads", "parameters")
	for _, a := range workloads.SchedApps() {
		t.AddRow(a.Name, fmt.Sprint(a.Threads), a.Params)
	}
	return t.String()
}

func kb(bytes int64) string {
	if bytes%1024 == 0 {
		return fmt.Sprintf("%dKB", bytes/1024)
	}
	return fmt.Sprintf("%dB", bytes)
}

func way(assoc int) string {
	if assoc == 1 {
		return "direct"
	}
	return fmt.Sprintf("%d-way", assoc)
}

// AllTables renders tables 1-4 (Table 5 needs runs; see Table5).
func AllTables() string {
	var b strings.Builder
	b.WriteString(Table1())
	b.WriteString("\n")
	b.WriteString(Table2())
	b.WriteString("\n")
	b.WriteString(Table3().Render())
	b.WriteString("\n")
	b.WriteString(Table4())
	return b.String()
}
