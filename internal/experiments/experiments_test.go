package experiments

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// quickSched is a small-scale scheduling config for tests.
var quickSched = SchedConfig{Scale: 0.08, Seed: 11}

func TestRunSchedBasics(t *testing.T) {
	run, err := RunSched("tasks", "LFF", quickSched)
	if err != nil {
		t.Fatal(err)
	}
	if run.EMisses == 0 || run.Cycles == 0 || run.Dispatch == 0 {
		t.Errorf("empty counters: %+v", run)
	}
	if run.App != "tasks" || run.Policy != "LFF" || run.CPUs != 1 {
		t.Errorf("metadata wrong: %+v", run)
	}
	if _, err := RunSched("nope", "LFF", quickSched); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunSchedDeterministic(t *testing.T) {
	a, err := RunSched("merge", "CRT", quickSched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSched("merge", "CRT", quickSched)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestFig4ModelAccuracy(t *testing.T) {
	res := Fig4(StudyConfig{MaxMisses: 4000, Seed: 7})
	// The microbenchmark satisfies the model's assumptions: every
	// panel must agree within a few percent of the cache size.
	if worst := res.MaxRelError(); worst > 0.10 {
		t.Errorf("worst relative error = %.3f, want < 0.10", worst)
	}
	// Panel a grows toward N; panel b decays toward 0.
	for _, c := range res.A {
		first, last := c.Observed[0], c.Observed[len(c.Observed)-1]
		if last <= first {
			t.Errorf("executing thread footprint did not grow: %v -> %v", first, last)
		}
	}
	for _, c := range res.B {
		first, last := c.Observed[0], c.Observed[len(c.Observed)-1]
		if last >= first {
			t.Errorf("independent sleeper footprint did not decay: %v -> %v", first, last)
		}
	}
	// Panel c: curves from below qN grow, curves from above decay.
	qn := 0.5 * float64(res.N)
	for _, c := range res.C {
		first, last := c.Observed[0], c.Observed[len(c.Observed)-1]
		if first < qn*0.8 && last <= first {
			t.Errorf("dependent sleeper below qN did not grow: %v -> %v", first, last)
		}
		if first > qn*1.2 && last >= first {
			t.Errorf("dependent sleeper above qN did not decay: %v -> %v", first, last)
		}
	}
	// Panel d: higher q must end with a larger footprint.
	prev := -1.0
	for _, c := range res.D {
		last := c.Observed[len(c.Observed)-1]
		if last <= prev {
			t.Errorf("footprints not ordered by q: %v after %v", last, prev)
		}
		prev = last
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFig5GoodAgreementAndFig7Overestimation(t *testing.T) {
	cfg := StudyConfig{MaxMisses: 25000, Seed: 7}
	for _, r := range Fig5(cfg) {
		if r.Overestimated() {
			t.Errorf("%s: substantially overestimated (bias %+.0f) — should be a Figure 7 app", r.App.Name, r.Bias)
		}
	}
	for _, r := range Fig7(cfg) {
		if !r.Overestimated() {
			t.Errorf("%s: bias %+.0f, expected substantial overestimation", r.App.Name, r.Bias)
		}
		// The observed footprint must saturate well below the cache.
		last := r.Footprint.Observed[len(r.Footprint.Observed)-1]
		if last > 0.8*float64(r.N) {
			t.Errorf("%s: observed footprint %v did not plateau below the cache", r.App.Name, last)
		}
	}
}

func TestFig6ReloadTransient(t *testing.T) {
	cfg := StudyConfig{MaxMisses: 20000, MPIWindow: 80_000, Seed: 7}
	// A representative subset keeps the test fast: one clustered C
	// app, one sequential app, one anomaly.
	apps := []workloads.StudyApp{}
	for _, name := range []string{"barnes", "ocean", "typechecker"} {
		a, err := workloads.StudyAppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	results := StudyAll(apps, cfg)
	for _, r := range results {
		if r.MPI.Len() < 3 {
			t.Fatalf("%s: only %d MPI windows", r.App.Name, r.MPI.Len())
		}
		// The reload transient: the first window's MPI must exceed the
		// last (burst then stable period).
		first, last := r.MPI.Y[0], r.MPI.Y[r.MPI.Len()-1]
		if first <= last {
			t.Errorf("%s: no reload transient: first MPI %.2f <= last %.2f", r.App.Name, first, last)
		}
	}
	if !strings.Contains(RenderMPI(results), "Figure 6") {
		t.Error("render missing title")
	}
}

func TestFig89Shapes(t *testing.T) {
	// Small-scale smoke: the policies must complete on both platforms
	// and the render must include every app.
	uni, err := Fig8(quickSched)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := Fig9(quickSched)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Fig89Result{uni, smp} {
		out := r.Render()
		for _, app := range r.Apps {
			if !strings.Contains(out, app) {
				t.Errorf("%s render missing %s", r.Figure, app)
			}
		}
	}
	// tasks is the robust headline once its aggregate state exceeds
	// the cache; that needs a bit more scale than the smoke runs.
	bigger := quickSched
	bigger.Scale = 0.25
	big, err := Fig8(bigger)
	if err != nil {
		t.Fatal(err)
	}
	if e := big.Eliminated("tasks", "LFF"); e < 60 {
		t.Errorf("tasks/LFF eliminated only %.1f%% on 1 CPU", e)
	}
}

func TestTable5AndRender(t *testing.T) {
	res, err := Table5(quickSched)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "tasks") {
		t.Error("Table 5 render incomplete")
	}
}

func TestAblation(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.25 // photo needs some size for annotations to matter
	cfg.CPUs = 4
	res, err := AblationPhoto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "no annotations") {
		t.Error("ablation render incomplete")
	}
}

func TestStaticTables(t *testing.T) {
	if !strings.Contains(Table1(), "E-cache") || !strings.Contains(Table1(), "512KB") {
		t.Error("Table 1 incomplete")
	}
	if !strings.Contains(Table2(), "typechecker") {
		t.Error("Table 2 incomplete")
	}
	if !strings.Contains(Table4(), "1024 tasks") {
		t.Error("Table 4 incomplete")
	}
}

func TestTable3Properties(t *testing.T) {
	res := Table3()
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Class == "independent thread" && r.FLOPs != 0 {
			t.Errorf("%s independent update cost %d FLOPs, want 0", r.Policy, r.FLOPs)
		}
		if r.Class != "independent thread" && (r.FLOPs == 0 || r.FLOPs > 10) {
			t.Errorf("%s %s cost %d FLOPs, want small nonzero", r.Policy, r.Class, r.FLOPs)
		}
	}
	// CRT's blocking update is the cheapest nonzero update (the paper:
	// "just two (or even one) floating point instructions" for the
	// priority itself; our count includes the footprint bookkeeping).
	var crtBlock, lffBlock uint64
	for _, r := range res.Rows {
		if r.Class == "blocking thread" {
			if r.Policy == "CRT" {
				crtBlock = r.FLOPs
			} else {
				lffBlock = r.FLOPs
			}
		}
	}
	if crtBlock >= lffBlock {
		t.Errorf("CRT blocking (%d) should be cheaper than LFF blocking (%d)", crtBlock, lffBlock)
	}
}

func TestInferenceStudy(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.5 // inference needs page-scale structure to observe
	res, err := InferenceStudy("photo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inference must strictly beat "no sharing info" on photo (it
	// discovers the neighbour-row relations) and never beat the exact
	// user annotations.
	if res.Inferred.EMisses >= res.None.EMisses {
		t.Errorf("inference did not help: inferred %d >= none %d", res.Inferred.EMisses, res.None.EMisses)
	}
	if res.Inferred.EMisses < res.Annotated.EMisses {
		t.Errorf("inference beat exact annotations: %d < %d", res.Inferred.EMisses, res.Annotated.EMisses)
	}
	if !strings.Contains(res.Render(), "inferred") {
		t.Error("render incomplete")
	}
}

func TestAssocStudyExtensionBeatsDirectMapped(t *testing.T) {
	res := AssocStudy(2, StudyConfig{MaxMisses: 6000, Seed: 7})
	assocErr, dmErr := res.Errors()
	if assocErr >= dmErr {
		t.Errorf("associative model RMSE %v >= direct-mapped %v", assocErr, dmErr)
	}
	if assocErr > 200 {
		t.Errorf("associative model RMSE %v too large", assocErr)
	}
	if !strings.Contains(res.Render(), "2-way") {
		t.Error("render incomplete")
	}
}

func TestScalingStudy(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.25 // tasks needs its aggregate state to exceed the cache
	res, err := ScalingStudy(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPUs) != 2 || len(res.Elim["tasks"]) != 2 {
		t.Fatalf("shape wrong: %+v", res.CPUs)
	}
	// tasks dominates at every size.
	for i, e := range res.Elim["tasks"] {
		if e < 50 {
			t.Errorf("tasks elimination at %d cpus = %.1f", res.CPUs[i], e)
		}
	}
	if !strings.Contains(res.Render(), "4 cpu") {
		t.Error("render incomplete")
	}
}

func TestThresholdStudy(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.2
	cfg.CPUs = 4
	res, err := ThresholdStudy(cfg, []float64{16, 4096})
	if err != nil {
		t.Fatal(err)
	}
	// An absurd threshold (half the cache) must hurt tasks: 100-line
	// footprints never qualify for the heaps.
	tasks := res.Elim["tasks"]
	if tasks[0] < 50 {
		t.Errorf("tasks at threshold 16: %.1f%%", tasks[0])
	}
	if tasks[1] > tasks[0]/2 {
		t.Errorf("tasks at threshold 4096 (%.1f%%) should collapse vs 16 (%.1f%%)", tasks[1], tasks[0])
	}
	if !strings.Contains(res.Render(), "th=16") {
		t.Error("render incomplete")
	}
}

func TestMissBreakdownShapes(t *testing.T) {
	res := MissBreakdown(StudyConfig{Seed: 7})
	// raytrace must be the most conflict-bound stream, and
	// substantially so.
	ray := res.ConflictFraction("raytrace")
	if ray < 0.5 {
		t.Errorf("raytrace conflict fraction = %.2f, want majority", ray)
	}
	for _, row := range res.Rows {
		if row.App != "raytrace" && row.Conflict > ray {
			t.Errorf("%s conflict fraction %.2f exceeds raytrace %.2f", row.App, row.Conflict, ray)
		}
	}
	if !strings.Contains(res.Render(), "conflict") {
		t.Error("render incomplete")
	}
}

func TestPageMappingFavorsCareful(t *testing.T) {
	res := PageMapping(StudyConfig{Seed: 7})
	wins := 0
	for _, row := range res.Rows {
		if row.Percent > 0 {
			wins++
		}
	}
	if wins < len(res.Rows)/2 {
		t.Errorf("careful mapping won only %d of %d streams", wins, len(res.Rows))
	}
	if !strings.Contains(res.Render(), "careful") {
		t.Error("render incomplete")
	}
}

func TestSpawnStackStudy(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.2
	cfg.CPUs = 4
	res, err := SpawnStackStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both disciplines must preserve the tasks headline.
	if res.Global["tasks"] < 50 || res.Stacks["tasks"] < 50 {
		t.Errorf("tasks eliminations: global %.1f, stacks %.1f", res.Global["tasks"], res.Stacks["tasks"])
	}
	if !strings.Contains(res.Render(), "spawn stacks") {
		t.Error("render incomplete")
	}
}

func TestValidateConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite is minute-scale")
	}
	// Moderate scale: the model/study claims run at their full study
	// length regardless; the scheduling claims lose some margin, so
	// the bar is "nearly all" rather than all.
	res, err := Validate(SchedConfig{Scale: 0.5, Seed: 11}, StudyConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ok, total := res.Passed()
	if total != 21 {
		t.Errorf("claim count = %d, want 21", total)
	}
	if ok < total-3 {
		t.Errorf("only %d of %d claims hold at scale 0.5:\n%s", ok, total, res.Render())
	}
	// The scale-independent model claims must all hold.
	for _, c := range res.Claims {
		switch c.ID {
		case "markov", "limits", "fig4", "table3":
			if !c.Holds {
				t.Errorf("scale-independent claim %s failed: %s", c.ID, c.Evidence)
			}
		}
	}
}

func TestSourcesAttribution(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.5
	cfg.CPUs = 8
	res, err := SourcesStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// tasks: the counters do everything.
	if got := res.Row("tasks").CounterShare; got < 0.9 {
		t.Errorf("tasks counter share = %.2f, want ~1", got)
	}
	// merge: the annotations do nearly everything.
	if got := res.Row("merge").CounterShare; got > 0.5 {
		t.Errorf("merge counter share = %.2f, want small", got)
	}
	// tsp: counters dominate.
	if got := res.Row("tsp").CounterShare; got < 0.5 {
		t.Errorf("tsp counter share = %.2f, want large", got)
	}
	if !strings.Contains(res.Render(), "counters only") {
		t.Error("render incomplete")
	}
}

func TestTLBStudy(t *testing.T) {
	res := TLBStudy(StudyConfig{Seed: 7})
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var photo, tsp TLBRow
	for _, row := range res.Rows {
		if row.TLBMisses == 0 {
			t.Errorf("%s: no TLB misses recorded", row.App)
		}
		if row.SlowdownPct < 0 {
			t.Errorf("%s: TLB made the run faster (%.1f%%)", row.App, row.SlowdownPct)
		}
		switch row.App {
		case "photo":
			photo = row
		case "tsp":
			tsp = row
		}
	}
	// Sequential sweeps barely miss the TLB; pointer-chasing pays.
	if photo.MissesPerRef >= tsp.MissesPerRef {
		t.Errorf("photo TLB rate %.4f >= tsp %.4f", photo.MissesPerRef, tsp.MissesPerRef)
	}
	if !strings.Contains(res.Render(), "dTLB") {
		t.Error("render incomplete")
	}
}

func TestProfiledStudy(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.5
	res, err := ProfiledStudy("photo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges == 0 {
		t.Fatal("profiling produced no edges")
	}
	// The profiled run starts with the full evidence, so it must do at
	// least as well as cold online inference on misses.
	if res.Profiled.EMisses > res.Inference.Inferred.EMisses {
		t.Errorf("profiled run (%d misses) worse than online inference (%d)",
			res.Profiled.EMisses, res.Inference.Inferred.EMisses)
	}
	if !strings.Contains(res.Render(), "profiled trial run") {
		t.Error("render incomplete")
	}
}

func TestCoarseStudyAffinity(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.3
	cfg.CPUs = 4
	res, err := CoarseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// The footprint model must at minimum not lose: barrier-wake
		// affinity is the one decision left in this regime.
		if row.LFF > row.FCFS {
			t.Errorf("%s: LFF misses %d > FCFS %d in the coarse regime", row.App, row.LFF, row.FCFS)
		}
	}
	if !strings.Contains(res.Render(), "Coarse-grained control") {
		t.Error("render incomplete")
	}
}

func TestCompareShapes(t *testing.T) {
	cfg := quickSched
	cfg.Scale = 0.5
	res, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// tasks, photo and tsp hold the paper's shape; merge's uni/SMP
	// ordering is the documented divergence (EXPERIMENTS.md).
	for _, app := range []string{"tasks", "photo", "tsp"} {
		if !res.ShapeHolds(app) {
			t.Errorf("%s: shape diverges at scale 0.5", app)
		}
	}
	if res.ShapeHolds("merge") {
		t.Log("note: merge shape holds at this scale (documented as divergent at full scale)")
	}
	out := res.Render()
	if !strings.Contains(out, "HOLDS") || !strings.Contains(out, "Paper vs measured") {
		t.Error("render incomplete")
	}
}
