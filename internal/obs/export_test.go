package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestChromeTraceIsValidJSONAndDeterministic(t *testing.T) {
	cells := []*Cell{{Key: "tasks/LFF", Obs: fillObserver()}}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same cells differ")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		if n, ok := ev["name"].(string); ok {
			names[n]++
		}
	}
	// The fill has an exec slice, instants, counters and metadata.
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace (phases: %v)", ph, phases)
		}
	}
	if names["process_name"] != 1 || names["E[F] main"] == 0 {
		t.Errorf("missing expected tracks: %v", names)
	}
	// The dispatch/block pair must render as one slice with the right
	// duration.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "main" {
			if ev["ts"].(float64) != 12 || ev["dur"].(float64) != 28 {
				t.Errorf("exec slice ts/dur = %v/%v, want 12/28", ev["ts"], ev["dur"])
			}
		}
	}
}

func TestChromeTraceMultiCellOrder(t *testing.T) {
	s := NewSession(Trace, 16)
	for _, key := range []string{"b", "a"} {
		o := s.Observer(key, 1)
		o.Emit(Event{Time: 1, Kind: KWake, CPU: 0, Thread: 0})
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s.Cells()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, `"a"`), strings.Index(out, `"b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("cells not exported in sorted key order (a@%d, b@%d)", ia, ib)
	}
}

func TestChromeTraceOpenIntervalAndOverflow(t *testing.T) {
	o := New(1, Options{Level: Trace, RingSize: 4})
	for i := 0; i < 9; i++ {
		o.Emit(Event{Time: uint64(i), Kind: KWake, CPU: 0, Thread: 1})
	}
	o.Emit(Event{Time: 20, Kind: KDispatch, CPU: 0, Thread: 1})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Cell{{Key: "k", Obs: o}}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "ring_overflow") {
		t.Error("overflow not reported")
	}
	if !strings.Contains(buf.String(), `"reason":"running"`) {
		t.Error("open interval not rendered")
	}
}

func TestPrometheusFormat(t *testing.T) {
	o := fillObserver()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, o.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rt_dispatches_total counter",
		`rt_dispatches_total{cpu="0"} 3`,
		`rt_dispatches_total{cpu="1"} 2`,
		"# TYPE sched_global_queue_len gauge",
		"sched_global_queue_len 1",
		"# TYPE rt_interval_cycles histogram",
		`rt_interval_cycles_bucket{le="100"} 1`,
		`rt_interval_cycles_bucket{le="1000"} 1`,
		`rt_interval_cycles_bucket{le="+Inf"} 2`,
		"rt_interval_cycles_sum 5050",
		"rt_interval_cycles_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var a bytes.Buffer
	if err := WritePrometheus(&a, o.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != out {
		t.Error("prometheus export is nondeterministic")
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":  "ok_name",
		"has-dash": "has_dash",
		"9lead":    "_lead",
		"":         "_",
		"a.b/c":    "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVTimeline(t *testing.T) {
	o := fillObserver()
	var buf bytes.Buffer
	if err := WriteCSVTimeline(&buf, []*Cell{{Key: "tasks,LFF", Obs: o}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cell,time,cpu,kind,thread,a,b,x,y,arg" {
		t.Fatalf("header: %s", lines[0])
	}
	// 9 events were emitted across both rings.
	if len(lines) != 10 {
		t.Fatalf("got %d rows, want 9 (+header):\n%s", len(lines)-1, buf.String())
	}
	if !strings.HasPrefix(lines[1], `"tasks,LFF",`) {
		t.Errorf("cell key with comma not quoted: %s", lines[1])
	}
	joined := buf.String()
	for _, want := range []string{",block,", ",lock", ",interval,", ",ok", ",model_update,", ",blocking"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in timeline:\n%s", want, joined)
		}
	}
}

func TestFootprintSeries(t *testing.T) {
	o := fillObserver()
	series := FootprintSeries(o)
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	s := series[0]
	if s.Label != "main" || s.Len() != 1 || s.Y[0] != 12.5 {
		t.Errorf("series: %+v", s)
	}
	if FootprintSeries(nil) != nil {
		t.Error("nil observer produced series")
	}
}
