package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/mem"
)

// FuzzChromeTrace feeds arbitrary event payloads — including kinds the
// schema does not define, NaN floats, out-of-range enum args and
// adversarial thread names — through the Chrome trace encoder. The
// encoder must never panic and must always produce valid JSON: a trace
// file that chrome://tracing refuses to load is a broken observability
// feature even when every individual event looked reasonable.
func FuzzChromeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// One well-formed event of every kind.
	var seed []byte
	for k := byte(1); k <= 10; k++ {
		seed = append(seed, k, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)
	}
	f.Add(seed)
	f.Add([]byte("\"}{\\name with json metachars\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		o := New(2, Options{Level: Trace, RingSize: 32})
		// Adversarial thread names, including JSON metacharacters.
		o.NameThread(0, string(data))
		o.NameThread(1, "quote\"back\\slash\nnewline")
		for len(data) >= 19 {
			ev := Event{
				Kind:   Kind(data[0]),
				CPU:    int16(data[1] % 2),
				Thread: int32ToThread(binary.LittleEndian.Uint32(data[2:6])),
				Time:   uint64(binary.LittleEndian.Uint32(data[6:10])),
				A:      uint64(data[10]) << uint(data[11]%64),
				B:      binary.LittleEndian.Uint64(data[10:18]),
				X:      math.Float64frombits(binary.LittleEndian.Uint64(data[2:10])),
				Y:      math.Float64frombits(binary.LittleEndian.Uint64(data[10:18])),
				Arg:    data[18],
			}
			o.Emit(ev)
			data = data[19:]
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []*Cell{{Key: string(data), Obs: o}}); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("encoder produced invalid JSON:\n%s", buf.String())
		}
		// The CSV path shares the arg/float formatting helpers; exercise
		// it on the same stream (no panic, header intact).
		var csv bytes.Buffer
		if err := WriteCSVTimeline(&csv, []*Cell{{Key: "k", Obs: o}}); err != nil {
			t.Fatalf("WriteCSVTimeline: %v", err)
		}
	})
}

func int32ToThread(v uint32) mem.ThreadID { return mem.ThreadID(int32(v)) }
