// Package obs is the runtime's observability subsystem: a per-CPU
// ring-buffer event tracer keyed to the simulator's virtual clock, a
// typed metrics registry with per-CPU shards, and exporters (Chrome
// trace-event JSON for Perfetto, Prometheus text format, CSV timelines
// for internal/report).
//
// The package is always compiled in; observability is an *engine
// option*, not a build tag. The engine pays for a disabled observer
// with exactly one nil-check per emission site (Tracing/MetricsOn are
// nil-safe and inlinable), so the disabled path is indistinguishable
// from a build without observability. When enabled, every timestamp is
// a virtual cycle count — never wall time — so traces from the same
// seed are bit-identical run to run and across `-j` worker counts: the
// engine is a sequential discrete-event simulation and each experiment
// cell owns its observer, so nothing about host scheduling can leak
// into the recorded stream.
//
// Concurrency model: one Observer belongs to one engine and is written
// only by that engine's goroutine (rings and histogram shards are
// single-writer; counters and gauges use atomics so a debug HTTP
// handler may scrape mid-run). A Session aggregates the observers of
// many engines — the parallel experiment driver's cells — and exports
// them in sorted-key order, which is what keeps multi-cell trace bytes
// independent of worker count.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
)

// Level selects how much the observer records.
type Level uint8

const (
	// Off records nothing. A nil *Observer behaves as Off everywhere.
	Off Level = iota
	// Metrics maintains the metrics registry but records no events.
	Metrics
	// Trace maintains the registry and the per-CPU event rings.
	Trace
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Metrics:
		return "metrics"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// ParseLevel parses an -obs flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return Off, nil
	case "metrics":
		return Metrics, nil
	case "trace":
		return Trace, nil
	default:
		return Off, fmt.Errorf("obs: unknown level %q (want off, metrics or trace)", s)
	}
}

// DefaultRingSize is the default per-CPU event-ring capacity. At ~64
// bytes per event this is ~1MB per CPU; long runs overwrite the oldest
// events and the exporters report how many were dropped.
const DefaultRingSize = 1 << 14

// Options configures an Observer.
type Options struct {
	// Level selects what is recorded (default Off — use New only when
	// you want at least Metrics).
	Level Level
	// RingSize is the per-CPU event-ring capacity, rounded up to a
	// power of two; 0 means DefaultRingSize. Ignored below Trace.
	RingSize int
	// StreamSize, when > 0 at Trace level, additionally tees every
	// emitted event into one global ring in emission order — the
	// canonical sequence behind the NDJSON stream exporters. The engine
	// is a sequential simulation, so emission order is deterministic
	// (a pure function of config and seed), which is what lets a live
	// consumer draining the stream incrementally see byte-identical
	// output to a post-hoc export of the same run.
	StreamSize int
}

// Observer is one engine's observability state: per-CPU event rings, a
// metrics registry, and the thread-name table the exporters label
// tracks with. A nil Observer is valid and means "off".
type Observer struct {
	level Level
	rings []*Ring
	reg   *Registry
	// stream is the optional global emission-order ring (Options.
	// StreamSize). It is a derived tee of the per-CPU rings — the same
	// events in the order Emit saw them — and is deliberately excluded
	// from StateDigest: resume verification already pins the per-CPU
	// rings, and the stream's consumers track their own cursors.
	stream *Ring

	// names maps thread IDs to their spawn names. Written by the engine
	// goroutine; read by exporters after the run.
	names map[mem.ThreadID]string
}

// New builds an observer for an engine with ncpu processors.
func New(ncpu int, opts Options) *Observer {
	if ncpu < 1 {
		// Invariant: callers size the observer from a validated
		// platform.
		panic(fmt.Sprintf("obs: observer for %d CPUs", ncpu))
	}
	o := &Observer{
		level: opts.Level,
		reg:   NewRegistry(ncpu),
		names: make(map[mem.ThreadID]string),
	}
	if opts.Level >= Trace {
		size := opts.RingSize
		if size <= 0 {
			size = DefaultRingSize
		}
		o.rings = make([]*Ring, ncpu)
		for i := range o.rings {
			o.rings[i] = NewRing(size)
		}
		if opts.StreamSize > 0 {
			o.stream = NewRing(opts.StreamSize)
		}
	}
	return o
}

// Tracing reports whether event emission is on. Nil-safe: the engine's
// hot paths guard every Emit with it, and a nil observer costs exactly
// this branch.
func (o *Observer) Tracing() bool { return o != nil && o.level >= Trace }

// MetricsOn reports whether the metrics registry is live. Nil-safe.
func (o *Observer) MetricsOn() bool { return o != nil && o.level >= Metrics }

// Level returns the observer's level (Off for nil).
func (o *Observer) Level() Level {
	if o == nil {
		return Off
	}
	return o.level
}

// Registry returns the metrics registry, or nil when o is nil.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// NCPU returns the processor count the observer was built for.
func (o *Observer) NCPU() int { return o.reg.ncpu }

// Emit appends one event to its CPU's ring (and to the global stream
// ring when configured). Callers must guard with Tracing(); the
// event's CPU must be in range.
func (o *Observer) Emit(ev Event) {
	o.rings[ev.CPU].Append(ev)
	if o.stream != nil {
		o.stream.Append(ev)
	}
}

// Stream returns the global emission-order ring, or nil when the
// observer was built without one (StreamSize 0, level below Trace, or
// o nil).
func (o *Observer) Stream() *Ring {
	if o == nil {
		return nil
	}
	return o.stream
}

// Ring returns cpu's event ring (nil below Trace level).
func (o *Observer) Ring(cpu int) *Ring {
	if o == nil || o.rings == nil {
		return nil
	}
	return o.rings[cpu]
}

// NameThread records a thread's name for the exporters. Empty names
// are kept empty; exporters fall back to "t<id>".
func (o *Observer) NameThread(tid mem.ThreadID, name string) {
	if o == nil {
		return
	}
	o.names[tid] = name
}

// ThreadName returns the recorded name of tid, or "t<id>".
func (o *Observer) ThreadName(tid mem.ThreadID) string {
	if o != nil {
		if n := o.names[tid]; n != "" {
			return n
		}
	}
	return fmt.Sprintf("t%d", int32(tid))
}

// Cell is one named observer inside a Session — one experiment cell
// (or the only cell of a single atsim run).
type Cell struct {
	// Key identifies the cell; export order sorts by it. Keys must be
	// a pure function of the run's configuration (never of worker
	// timing), so that multi-cell exports are byte-identical for any
	// -j. Two cells MAY share a key only if their runs are identical
	// (same config ⇒ same deterministic run ⇒ same bytes), in which
	// case their export order is immaterial.
	Key string
	Obs *Observer
}

// Session collects the observers of a set of runs — the cells of a
// parallel experiment sweep — and exports them deterministically.
// Observer registration is the only synchronized operation (cells are
// created from -j worker goroutines); everything else happens after
// the runs complete.
type Session struct {
	level Level
	ring  int

	mu    sync.Mutex
	cells []*Cell
}

// NewSession builds a session whose observers record at the given
// level with the given per-CPU ring capacity (0 = DefaultRingSize).
func NewSession(level Level, ringSize int) *Session {
	return &Session{level: level, ring: ringSize}
}

// Level returns the level session observers record at.
func (s *Session) Level() Level {
	if s == nil {
		return Off
	}
	return s.level
}

// Observer creates and registers a new observer for a cell. Safe for
// concurrent use by worker goroutines. Returns nil (recording nothing)
// when s is nil or the session level is Off, so callers can wire it
// unconditionally.
func (s *Session) Observer(key string, ncpu int) *Observer {
	if s == nil || s.level == Off {
		return nil
	}
	o := New(ncpu, Options{Level: s.level, RingSize: s.ring})
	s.mu.Lock()
	s.cells = append(s.cells, &Cell{Key: key, Obs: o})
	s.mu.Unlock()
	return o
}

// Cells returns the registered cells sorted by key. Cells with equal
// keys came from identical runs (see Cell.Key), so the residual order
// among them cannot affect exported bytes.
func (s *Session) Cells() []*Cell {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Cell(nil), s.cells...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MergedSnapshot merges every cell's metrics registry in sorted-key
// order into one deterministic snapshot.
func (s *Session) MergedSnapshot() Snapshot {
	var merged Snapshot
	for _, c := range s.Cells() {
		merged = MergeSnapshots(merged, c.Obs.Registry().Snapshot())
	}
	return merged
}
