package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

var publishOnce sync.Once

// StartDebugServer binds addr (e.g. "localhost:6060") and serves the
// standard net/http/pprof and expvar debug endpoints in the background,
// plus /metrics rendering the session's merged snapshot in Prometheus
// format on demand. It returns the bound address (useful with ":0") and
// never blocks; the listener lives until the process exits. The debug
// endpoints are process-global, so only the first session that calls
// this is exported through them.
func (s *Session) StartDebugServer(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("obs_metrics", expvar.Func(func() any {
			return s.MergedSnapshot()
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			WritePrometheus(w, s.MergedSnapshot())
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}
