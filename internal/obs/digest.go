package obs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// StateDigest folds the observer's complete recorded state — level,
// every metric's name and shard values, every ring's events — into one
// 64-bit FNV-1a digest. A checkpoint stores it instead of the full
// telemetry (rings alone can hold megabytes), and resume verification
// compares digests: equal digests mean the resumed run recorded the
// same telemetry the original run had at the boundary, so the eventual
// exports are byte-identical too. Deterministic by construction: the
// registry snapshot is name-sorted, ring events are ordered by the
// virtual clock, and nothing here reads wall time. Nil-safe (a nil or
// Off observer digests to 0).
func (o *Observer) StateDigest() uint64 {
	if o == nil || o.level == Off {
		return 0
	}
	h := fnv.New64a()
	var w digestWriter
	w.h = h
	w.u64(uint64(o.level))

	snap := o.reg.Snapshot()
	for _, c := range snap.Counters {
		w.str(c.Name)
		for _, v := range c.PerCPU {
			w.u64(v)
		}
	}
	for _, g := range snap.Gauges {
		w.str(g.Name)
		w.f64(g.Value)
	}
	for _, hs := range snap.Histograms {
		w.str(hs.Name)
		for _, b := range hs.Bounds {
			w.f64(b)
		}
		for _, b := range hs.Buckets {
			w.u64(b)
		}
		w.u64(uint64(hs.Summary.N))
		w.f64(hs.Summary.Mean)
		w.f64(hs.Summary.Var)
		w.f64(hs.Summary.Min)
		w.f64(hs.Summary.Max)
	}
	for cpu, r := range o.rings {
		w.u64(uint64(cpu))
		w.u64(r.Total())
		for _, ev := range r.Events() {
			w.u64(ev.Time)
			w.u64(ev.A)
			w.u64(ev.B)
			w.f64(ev.X)
			w.f64(ev.Y)
			w.u64(uint64(uint32(ev.Thread)))
			w.u64(uint64(uint16(ev.CPU)))
			w.u64(uint64(ev.Kind))
			w.u64(uint64(ev.Arg))
		}
	}
	return h.Sum64()
}

// digestWriter feeds fixed-width values into a hash without per-call
// allocation.
type digestWriter struct {
	h   interface{ Write([]byte) (int, error) }
	buf [8]byte
}

func (w *digestWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *digestWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *digestWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}
