package obs

// Prometheus text-format exporter (exposition format version 0.0.4).
// Counters export one sample per CPU shard with a cpu label, gauges one
// unlabeled sample, histograms the conventional _bucket/_sum/_count
// family with cumulative le buckets. Snapshots are sorted by name and
// shards are in CPU order, so the output bytes are deterministic.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for cpu, v := range c.PerCPU {
			fmt.Fprintf(bw, "%s{cpu=\"%d\"} %d\n", name, cpu, v)
		}
		if len(c.PerCPU) == 0 {
			fmt.Fprintf(bw, "%s %d\n", name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		fmt.Fprintf(bw, "%s %s\n", name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, b := range h.Buckets {
			cum += b
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.Summary.Mean*float64(h.Summary.N)))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Summary.N)
	}
	return bw.Flush()
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float deterministically for the text format.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
