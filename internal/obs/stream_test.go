package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingSinceWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Time: uint64(i), Kind: KDispatch})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Time != want {
			t.Fatalf("Events()[%d].Time = %d, want %d", i, ev.Time, want)
		}
	}

	// Cursor before the retained window: everything retained comes
	// back, plus the exact count of what was lost.
	got, dropped := r.Since(2)
	if dropped != 4 {
		t.Fatalf("Since(2) dropped = %d, want 4", dropped)
	}
	if len(got) != 4 || got[0].Time != 6 {
		t.Fatalf("Since(2) = %d events starting at t=%d, want 4 starting at 6", len(got), got[0].Time)
	}

	// Cursor inside the window: an exact incremental drain, no loss.
	got, dropped = r.Since(8)
	if dropped != 0 || len(got) != 2 || got[0].Time != 8 || got[1].Time != 9 {
		t.Fatalf("Since(8) = %v events (dropped %d), want t=8,9 with 0 dropped", len(got), dropped)
	}

	// Cursor at and past the head: nothing new, nothing dropped.
	if got, dropped = r.Since(10); len(got) != 0 || dropped != 0 {
		t.Fatalf("Since(head) = %d events, %d dropped; want 0, 0", len(got), dropped)
	}
	if got, dropped = r.Since(99); len(got) != 0 || dropped != 0 {
		t.Fatalf("Since(past head) = %d events, %d dropped; want 0, 0", len(got), dropped)
	}
}

func TestStreamTee(t *testing.T) {
	o := New(2, Options{Level: Trace, RingSize: 8, StreamSize: 8})
	events := []Event{
		{Time: 1, CPU: 0, Kind: KDispatch, Thread: 1},
		{Time: 2, CPU: 1, Kind: KDispatch, Thread: 2},
		{Time: 3, CPU: 0, Kind: KBlock, Thread: 1, Arg: uint8(ReasonYield)},
	}
	for _, ev := range events {
		o.Emit(ev)
	}
	if o.Ring(0).Total() != 2 || o.Ring(1).Total() != 1 {
		t.Fatalf("per-CPU totals = %d,%d, want 2,1", o.Ring(0).Total(), o.Ring(1).Total())
	}
	got := o.Stream().Events()
	if len(got) != 3 {
		t.Fatalf("stream holds %d events, want 3", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("stream[%d] = %+v, want %+v (emission order)", i, got[i], events[i])
		}
	}

	// The stream is a derived tee: it must not perturb the resume
	// digest, which pins the per-CPU rings.
	plain := New(2, Options{Level: Trace, RingSize: 8})
	for _, ev := range events {
		plain.Emit(ev)
	}
	if a, b := o.StateDigest(), plain.StateDigest(); a != b {
		t.Fatalf("StateDigest differs with stream ring attached: %x vs %x", a, b)
	}

	if plain.Stream() != nil {
		t.Fatal("Stream() != nil without StreamSize")
	}
	var nilObs *Observer
	if nilObs.Stream() != nil {
		t.Fatal("nil observer Stream() != nil")
	}
}

// streamEvents builds a representative mix of every event kind.
func streamEvents() []Event {
	return []Event{
		{Time: 10, CPU: 0, Kind: KSpawn, Thread: 1, A: 3},
		{Time: 11, CPU: 0, Kind: KWake, Thread: 1},
		{Time: 12, CPU: 0, Kind: KDispatch, Thread: 1, A: 2},
		{Time: 40, CPU: 0, Kind: KInterval, Thread: 1, A: 7, B: 7, Arg: VerdictOK},
		{Time: 40, CPU: 0, Kind: KModelUpdate, Thread: 1, Arg: 1, X: 1.5, Y: 2.25, B: 4608308318706860032},
		{Time: 40, CPU: 0, Kind: KBlock, Thread: 1, A: 28, Arg: uint8(ReasonYield)},
		{Time: 41, CPU: 0, Kind: KSchedDecision, Thread: InvalidThread, A: 4, B: 2},
		{Time: 50, CPU: 1, Kind: KQuarantine, Thread: InvalidThread},
		{Time: 60, CPU: 1, Kind: KRecover, Thread: InvalidThread},
		{Time: 70, CPU: 0, Kind: KExit, Thread: 1},
		{Time: 80, CPU: 0, Kind: KStall, Thread: InvalidThread, A: 12, B: 99},
	}
}

func TestStreamNDJSONSchema(t *testing.T) {
	var buf []byte
	for i, ev := range streamEvents() {
		buf = AppendEventNDJSON(buf, uint64(i+1), ev)
	}
	buf = AppendGapNDJSON(buf, 5)
	lines := strings.Split(strings.TrimSuffix(string(buf), "\n"), "\n")
	if len(lines) != len(streamEvents())+1 {
		t.Fatalf("%d lines, want %d", len(lines), len(streamEvents())+1)
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if i < len(streamEvents()) {
			if m["seq"] != float64(i+1) {
				t.Fatalf("line %d seq = %v, want %d", i, m["seq"], i+1)
			}
			if _, ok := m["kind"].(string); !ok {
				t.Fatalf("line %d has no kind: %s", i, line)
			}
		} else {
			if m["kind"] != "gap" || m["dropped"] != float64(5) {
				t.Fatalf("gap line = %s", line)
			}
			if _, ok := m["seq"]; ok {
				t.Fatalf("gap line carries a seq: %s", line)
			}
		}
	}
	// Spot-check one payload rendering end to end.
	var mu struct {
		Kind  string  `json:"kind"`
		Case  string  `json:"case"`
		Prior float64 `json:"prior"`
		EF    float64 `json:"ef"`
		Prio  float64 `json:"prio"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &mu); err != nil {
		t.Fatal(err)
	}
	if mu.Kind != "model_update" || mu.Case != "blocking" || mu.Prior != 1.5 || mu.EF != 2.25 || mu.Prio != 1.25 {
		t.Fatalf("model_update rendering: %+v from %s", mu, lines[4])
	}
}

// TestStreamFollowEqualsBatch is the library-level form of the live
// determinism property: a consumer draining the stream ring
// incrementally (arbitrary chop points, cursor-based) accumulates
// byte-identical NDJSON to the one-shot post-hoc export.
func TestStreamFollowEqualsBatch(t *testing.T) {
	for _, overflow := range []bool{false, true} {
		size := 64
		if overflow {
			size = 4
		}
		o := New(2, Options{Level: Trace, RingSize: 64, StreamSize: size})
		var followed []byte
		var cursor uint64
		drain := func() {
			evs, dropped := o.Stream().Since(cursor)
			if dropped > 0 {
				followed = AppendGapNDJSON(followed, dropped)
				cursor += dropped
			}
			for _, ev := range evs {
				cursor++
				followed = AppendEventNDJSON(followed, cursor, ev)
			}
		}
		for i, ev := range streamEvents() {
			o.Emit(ev)
			if i%3 == 0 && !overflow {
				drain() // irregular chop points
			}
		}
		drain()

		var batch bytes.Buffer
		if err := WriteStreamNDJSON(&batch, o); err != nil {
			t.Fatal(err)
		}
		if overflow {
			// The batch export lost the overwritten prefix; the
			// incremental consumer in this variant drained only at the
			// end, so both saw the same loss.
			if !strings.HasPrefix(batch.String(), `{"kind":"gap","dropped":7}`) {
				t.Fatalf("overflow batch export does not lead with the gap record:\n%s", batch.String())
			}
		}
		if !bytes.Equal(followed, batch.Bytes()) {
			t.Fatalf("incremental drain != batch export (overflow=%v):\n--- follow ---\n%s--- batch ---\n%s",
				overflow, followed, batch.Bytes())
		}
	}
}
