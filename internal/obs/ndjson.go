package obs

// NDJSON event-stream exporter. One line per recorded event, rendered
// from the observer's global emission-order stream ring (Options.
// StreamSize). This is the wire format of atsimd's live /obs endpoint
// AND of the post-hoc export of the same run — the two are byte-equal
// by construction, because both render the same canonical sequence
// with the same code:
//
//	{"seq":12,"t":400210,"kind":"dispatch","cpu":1,"thread":3,"wait":90}
//	{"kind":"gap","dropped":128}
//
// Every event line carries a 1-based "seq" — the event's position in
// the run's emission order, stable across evictions, resumes and
// process restarts (deterministic re-execution re-emits the same
// sequence). Consumers resume with the last seq they saw; a "gap" line
// is the explicit record that the events between the consumer's cursor
// and the next line's seq were lost to a bounded buffer — loss is
// always accounted, never silent. Gap lines carry no seq of their own:
// cursors only advance on real events.
//
// All values are rendered with the same deterministic primitives as
// the Chrome exporter (integers via strconv, floats shortest-round-
// trip, NaN/Inf degraded to 0), and the kind/reason/verdict/case
// strings are fixed identifiers needing no JSON escaping — the bytes
// are a pure function of the recorded events.

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// AppendEventNDJSON renders one stream event (with its 1-based
// sequence number) as a single newline-terminated NDJSON line appended
// to dst.
func AppendEventNDJSON(dst []byte, seq uint64, ev Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendUint(dst, ev.Time, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, `","cpu":`...)
	dst = strconv.AppendInt(dst, int64(ev.CPU), 10)
	dst = append(dst, `,"thread":`...)
	dst = strconv.AppendInt(dst, int64(int32(ev.Thread)), 10)
	switch ev.Kind {
	case KDispatch:
		dst = appendUintField(dst, "wait", ev.A)
	case KBlock:
		dst = appendNameField(dst, "reason", BlockReason(ev.Arg).String())
		dst = appendUintField(dst, "interval", ev.A)
	case KWake, KExit, KQuarantine, KRecover:
		// Common fields only.
	case KSpawn:
		dst = appendUintField(dst, "ws", ev.A)
	case KInterval:
		dst = appendUintField(dst, "raw", ev.A)
		dst = appendUintField(dst, "sanitized", ev.B)
		dst = appendNameField(dst, "verdict", VerdictString(ev.Arg))
	case KModelUpdate:
		dst = appendNameField(dst, "case", updateCaseName(ev.Arg))
		dst = appendFloatField(dst, "prior", ev.X)
		dst = appendFloatField(dst, "ef", ev.Y)
		dst = appendFloatField(dst, "prio", math.Float64frombits(ev.B))
	case KSchedDecision:
		dst = appendUintField(dst, "dependents", ev.A)
		dst = appendUintField(dst, "heap", ev.B)
	default:
		// KStall and any future kinds: raw payloads, so nothing
		// recorded is silently dropped.
		dst = appendUintField(dst, "a", ev.A)
		dst = appendUintField(dst, "b", ev.B)
	}
	return append(dst, "}\n"...)
}

// AppendGapNDJSON renders the explicit record of dropped events as one
// newline-terminated NDJSON line appended to dst.
func AppendGapNDJSON(dst []byte, dropped uint64) []byte {
	dst = append(dst, `{"kind":"gap","dropped":`...)
	dst = strconv.AppendUint(dst, dropped, 10)
	return append(dst, "}\n"...)
}

// appendNameField appends ,"key":"val" for a fixed identifier value
// (kind, reason, verdict and case names contain no characters needing
// JSON escaping).
func appendNameField(dst []byte, key, val string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, `":"`...)
	dst = append(dst, val...)
	return append(dst, '"')
}

func appendUintField(dst []byte, key string, v uint64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendUint(dst, v, 10)
}

func appendFloatField(dst []byte, key string, v float64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, '0')
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// WriteStreamNDJSON writes the observer's full retained stream as
// NDJSON: a leading gap line when the stream ring overflowed, then
// every retained event with its global sequence number. This is the
// post-hoc form of the live stream — for the same run (and no more
// loss on one side than the other) the bytes are identical to what a
// follower of the live endpoint accumulated.
func WriteStreamNDJSON(w io.Writer, o *Observer) error {
	r := o.Stream()
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	evs, dropped := r.Since(0)
	var buf []byte
	if dropped > 0 {
		buf = AppendGapNDJSON(buf, dropped)
	}
	seq := dropped
	for _, ev := range evs {
		seq++
		buf = AppendEventNDJSON(buf, seq, ev)
		if len(buf) >= 32<<10 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}
