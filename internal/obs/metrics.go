package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// The registry is handle-based: instrumentation sites call
// Registry.Counter/Gauge/Histogram once at setup and keep the returned
// handle, so the hot path is an atomic add on a per-CPU shard — no map
// lookups, no locks on counters. Histograms take one uncontended mutex
// per observation because stats.Online is not atomically updatable;
// the mutex exists only so a -debug-addr scrape mid-run is race-free,
// and the engine goroutine is its only regular customer.
//
// Snapshots merge the per-CPU shards in fixed CPU order (and sessions
// merge cells in sorted-key order), so snapshot bytes are deterministic
// even though floating-point merging is order-sensitive.

// Registry holds one engine's metrics. Register metrics before the run
// starts; registration is not synchronized with updates. The metric
// slices are kept sorted by name, so registration lookups are binary
// searches and Snapshot emits in canonical order without sorting.
type Registry struct {
	ncpu   int
	counts []*Counter
	gauges []*Gauge
	hists  []*Histogram
}

// NewRegistry builds an empty registry sharded ncpu ways.
func NewRegistry(ncpu int) *Registry {
	return &Registry{ncpu: ncpu}
}

// Counter registers (or returns the existing) monotonically increasing
// counter with per-CPU shards.
func (r *Registry) Counter(name string) *Counter {
	i := sort.Search(len(r.counts), func(i int) bool { return r.counts[i].name >= name })
	if i < len(r.counts) && r.counts[i].name == name {
		return r.counts[i]
	}
	c := &Counter{name: name, shards: make([]counterShard, r.ncpu)}
	r.counts = append(r.counts, nil)
	copy(r.counts[i+1:], r.counts[i:])
	r.counts[i] = c
	return c
}

// Gauge registers (or returns the existing) scalar gauge.
func (r *Registry) Gauge(name string) *Gauge {
	i := sort.Search(len(r.gauges), func(i int) bool { return r.gauges[i].name >= name })
	if i < len(r.gauges) && r.gauges[i].name == name {
		return r.gauges[i]
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, nil)
	copy(r.gauges[i+1:], r.gauges[i:])
	r.gauges[i] = g
	return g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// bounds are the inclusive upper bucket bounds in ascending order; an
// implicit +Inf bucket is always present. Re-registering with different
// bounds keeps the original ones.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	i := sort.Search(len(r.hists), func(i int) bool { return r.hists[i].name >= name })
	if i < len(r.hists) && r.hists[i].name == name {
		return r.hists[i]
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, r.ncpu),
	}
	for j := range h.shards {
		h.shards[j].buckets = make([]uint64, len(bounds)+1)
	}
	r.hists = append(r.hists, nil)
	copy(r.hists[i+1:], r.hists[i:])
	r.hists[i] = h
	return h
}

// counterShard is one CPU's slot, padded out to a cache line so
// write-hot neighbouring shards never false-share (the leanstore
// pattern): at 256 simulated CPUs the adds all land on distinct lines.
type counterShard struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter with one cache-padded
// shard per CPU. Adds are atomic so a debug scrape mid-run is
// race-free.
type Counter struct {
	name   string
	shards []counterShard
}

// Add increments cpu's shard by n.
func (c *Counter) Add(cpu int, n uint64) { c.shards[cpu].v.Add(n) }

// Inc increments cpu's shard by one.
func (c *Counter) Inc(cpu int) { c.shards[cpu].v.Add(1) }

// Value returns the sum over all shards — an *approximate* global
// read: each shard is loaded atomically but the shards are not read at
// one instant, so a mid-run Value may miss adds that race with the
// scan. After the run (or at any engine quiescent point) it is exact.
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.shards {
		v += c.shards[i].v.Load()
	}
	return v
}

// Gauge is a scalar last-value-wins metric (queue depths, model
// parameters). Stored as float bits so Set/Load are atomic.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type histShard struct {
	mu      sync.Mutex
	online  stats.Online
	buckets []uint64 // len(bounds)+1; last is +Inf
}

// Histogram is a fixed-bucket histogram with a stats.Online moment
// accumulator per CPU shard.
type Histogram struct {
	name   string
	bounds []float64
	shards []histShard
}

// Observe folds one observation into cpu's shard.
func (h *Histogram) Observe(cpu int, v float64) {
	s := &h.shards[cpu]
	s.mu.Lock()
	s.online.Add(v)
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (bounds are inclusive)
	s.buckets[i]++
	s.mu.Unlock()
}

// CounterSnap is one counter's merged value plus its per-CPU shards.
type CounterSnap struct {
	Name   string
	Value  uint64
	PerCPU []uint64
}

// GaugeSnap is one gauge's value.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistSnap is one histogram's shards merged in CPU order.
type HistSnap struct {
	Name    string
	Bounds  []float64
	Buckets []uint64 // cumulative by bucket index is NOT applied; raw counts, +Inf last
	Summary stats.Summary
}

// Snapshot is a point-in-time copy of a registry (or a merge of
// several), each section sorted by metric name.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
}

// Snapshot copies the registry. Safe to call while the engine is
// running (counters and gauges are atomic, histogram shards lock), in
// which case the result is a consistent-enough live view; for
// deterministic export call it after the run.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	for _, c := range r.counts {
		cs := CounterSnap{Name: c.name, PerCPU: make([]uint64, len(c.shards))}
		for i := range c.shards {
			cs.PerCPU[i] = c.shards[i].v.Load()
			cs.Value += cs.PerCPU[i]
		}
		s.Counters = append(s.Counters, cs)
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
	}
	for _, h := range r.hists {
		hs := HistSnap{Name: h.name, Bounds: append([]float64(nil), h.bounds...)}
		var merged stats.Online
		for i := range h.shards {
			sh := &h.shards[i]
			sh.mu.Lock()
			if hs.Buckets == nil {
				hs.Buckets = make([]uint64, len(sh.buckets))
			}
			for j, b := range sh.buckets {
				hs.Buckets[j] += b
			}
			o := sh.online
			sh.mu.Unlock()
			merged.Merge(&o)
		}
		hs.Summary = merged.Summary()
		s.Histograms = append(s.Histograms, hs)
	}
	// The registry slices are sorted at registration, so the snapshot
	// is already in canonical name order.
	return s
}

// MergeSnapshots combines two snapshots name-wise: counters and
// histogram buckets add (per-CPU shards add index-wise up to the
// shorter length), gauges keep b's value (last write wins), histogram
// summaries re-merge via stats.Online semantics on the moments we
// have. Merge order must be fixed by the caller for deterministic
// floats — Session.MergedSnapshot merges cells in sorted-key order.
// Both inputs are in canonical name order (Snapshot emits them that
// way), so the merge is a linear join — no scratch maps.
func MergeSnapshots(a, b Snapshot) Snapshot {
	out := Snapshot{}
	// Counters.
	for i, j := 0, 0; i < len(a.Counters) || j < len(b.Counters); {
		switch {
		case j >= len(b.Counters) || (i < len(a.Counters) && a.Counters[i].Name < b.Counters[j].Name):
			c := a.Counters[i]
			c.PerCPU = append([]uint64(nil), c.PerCPU...)
			out.Counters = append(out.Counters, c)
			i++
		case i >= len(a.Counters) || b.Counters[j].Name < a.Counters[i].Name:
			c := b.Counters[j]
			c.PerCPU = append([]uint64(nil), c.PerCPU...)
			out.Counters = append(out.Counters, c)
			j++
		default:
			c := CounterSnap{Name: a.Counters[i].Name, Value: a.Counters[i].Value + b.Counters[j].Value,
				PerCPU: append([]uint64(nil), a.Counters[i].PerCPU...)}
			for k := 0; k < len(c.PerCPU) && k < len(b.Counters[j].PerCPU); k++ {
				c.PerCPU[k] += b.Counters[j].PerCPU[k]
			}
			out.Counters = append(out.Counters, c)
			i++
			j++
		}
	}
	// Gauges: last write wins.
	for i, j := 0, 0; i < len(a.Gauges) || j < len(b.Gauges); {
		switch {
		case j >= len(b.Gauges) || (i < len(a.Gauges) && a.Gauges[i].Name < b.Gauges[j].Name):
			out.Gauges = append(out.Gauges, a.Gauges[i])
			i++
		case i >= len(a.Gauges) || b.Gauges[j].Name < a.Gauges[i].Name:
			out.Gauges = append(out.Gauges, b.Gauges[j])
			j++
		default:
			out.Gauges = append(out.Gauges, b.Gauges[j])
			i++
			j++
		}
	}
	// Histograms: buckets add; summaries combine with the Chan et al.
	// formulas reconstructed from the summary moments.
	for i, j := 0, 0; i < len(a.Histograms) || j < len(b.Histograms); {
		switch {
		case j >= len(b.Histograms) || (i < len(a.Histograms) && a.Histograms[i].Name < b.Histograms[j].Name):
			out.Histograms = append(out.Histograms, copyHist(a.Histograms[i]))
			i++
		case i >= len(a.Histograms) || b.Histograms[j].Name < a.Histograms[i].Name:
			out.Histograms = append(out.Histograms, copyHist(b.Histograms[j]))
			j++
		default:
			h := copyHist(a.Histograms[i])
			for k := 0; k < len(h.Buckets) && k < len(b.Histograms[j].Buckets); k++ {
				h.Buckets[k] += b.Histograms[j].Buckets[k]
			}
			h.Summary = mergeSummaries(h.Summary, b.Histograms[j].Summary)
			out.Histograms = append(out.Histograms, h)
			i++
			j++
		}
	}
	return out
}

func copyHist(h HistSnap) HistSnap {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Buckets = append([]uint64(nil), h.Buckets...)
	return h
}

func mergeSummaries(a, b stats.Summary) stats.Summary {
	if b.N == 0 {
		return a
	}
	if a.N == 0 {
		return b
	}
	out := stats.Summary{N: a.N + b.N, Min: a.Min, Max: a.Max}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	d := b.Mean - a.Mean
	n := float64(out.N)
	m2 := a.Var*float64(a.N) + b.Var*float64(b.N) + d*d*float64(a.N)*float64(b.N)/n
	out.Mean = a.Mean + d*float64(b.N)/n
	out.Var = m2 / n
	out.Std = math.Sqrt(out.Var)
	return out
}

// String renders a snapshot compactly for debugging.
func (s Snapshot) String() string {
	return fmt.Sprintf("snapshot{%d counters, %d gauges, %d histograms}",
		len(s.Counters), len(s.Gauges), len(s.Histograms))
}
