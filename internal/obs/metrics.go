package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// The registry is handle-based: instrumentation sites call
// Registry.Counter/Gauge/Histogram once at setup and keep the returned
// handle, so the hot path is an atomic add on a per-CPU shard — no map
// lookups, no locks on counters. Histograms take one uncontended mutex
// per observation because stats.Online is not atomically updatable;
// the mutex exists only so a -debug-addr scrape mid-run is race-free,
// and the engine goroutine is its only regular customer.
//
// Snapshots merge the per-CPU shards in fixed CPU order (and sessions
// merge cells in sorted-key order), so snapshot bytes are deterministic
// even though floating-point merging is order-sensitive.

// Registry holds one engine's metrics. Register metrics before the run
// starts; registration is not synchronized with updates.
type Registry struct {
	ncpu   int
	counts []*Counter
	gauges []*Gauge
	hists  []*Histogram
}

// NewRegistry builds an empty registry sharded ncpu ways.
func NewRegistry(ncpu int) *Registry {
	return &Registry{ncpu: ncpu}
}

// Counter registers (or returns the existing) monotonically increasing
// counter with per-CPU shards.
func (r *Registry) Counter(name string) *Counter {
	for _, c := range r.counts {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name, shards: make([]atomic.Uint64, r.ncpu)}
	r.counts = append(r.counts, c)
	return c
}

// Gauge registers (or returns the existing) scalar gauge.
func (r *Registry) Gauge(name string) *Gauge {
	for _, g := range r.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// bounds are the inclusive upper bucket bounds in ascending order; an
// implicit +Inf bucket is always present. Re-registering with different
// bounds keeps the original ones.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, r.ncpu),
	}
	for i := range h.shards {
		h.shards[i].buckets = make([]uint64, len(bounds)+1)
	}
	r.hists = append(r.hists, h)
	return h
}

// Counter is a monotonically increasing counter with one shard per
// CPU. Adds are atomic so a debug scrape mid-run is race-free.
type Counter struct {
	name   string
	shards []atomic.Uint64
}

// Add increments cpu's shard by n.
func (c *Counter) Add(cpu int, n uint64) { c.shards[cpu].Add(n) }

// Inc increments cpu's shard by one.
func (c *Counter) Inc(cpu int) { c.shards[cpu].Add(1) }

// Value returns the sum over all shards.
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.shards {
		v += c.shards[i].Load()
	}
	return v
}

// Gauge is a scalar last-value-wins metric (queue depths, model
// parameters). Stored as float bits so Set/Load are atomic.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type histShard struct {
	mu      sync.Mutex
	online  stats.Online
	buckets []uint64 // len(bounds)+1; last is +Inf
}

// Histogram is a fixed-bucket histogram with a stats.Online moment
// accumulator per CPU shard.
type Histogram struct {
	name   string
	bounds []float64
	shards []histShard
}

// Observe folds one observation into cpu's shard.
func (h *Histogram) Observe(cpu int, v float64) {
	s := &h.shards[cpu]
	s.mu.Lock()
	s.online.Add(v)
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (bounds are inclusive)
	s.buckets[i]++
	s.mu.Unlock()
}

// CounterSnap is one counter's merged value plus its per-CPU shards.
type CounterSnap struct {
	Name   string
	Value  uint64
	PerCPU []uint64
}

// GaugeSnap is one gauge's value.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistSnap is one histogram's shards merged in CPU order.
type HistSnap struct {
	Name    string
	Bounds  []float64
	Buckets []uint64 // cumulative by bucket index is NOT applied; raw counts, +Inf last
	Summary stats.Summary
}

// Snapshot is a point-in-time copy of a registry (or a merge of
// several), each section sorted by metric name.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
}

// Snapshot copies the registry. Safe to call while the engine is
// running (counters and gauges are atomic, histogram shards lock), in
// which case the result is a consistent-enough live view; for
// deterministic export call it after the run.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	for _, c := range r.counts {
		cs := CounterSnap{Name: c.name, PerCPU: make([]uint64, len(c.shards))}
		for i := range c.shards {
			cs.PerCPU[i] = c.shards[i].Load()
			cs.Value += cs.PerCPU[i]
		}
		s.Counters = append(s.Counters, cs)
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
	}
	for _, h := range r.hists {
		hs := HistSnap{Name: h.name, Bounds: append([]float64(nil), h.bounds...)}
		var merged stats.Online
		for i := range h.shards {
			sh := &h.shards[i]
			sh.mu.Lock()
			if hs.Buckets == nil {
				hs.Buckets = make([]uint64, len(sh.buckets))
			}
			for j, b := range sh.buckets {
				hs.Buckets[j] += b
			}
			o := sh.online
			sh.mu.Unlock()
			merged.Merge(&o)
		}
		hs.Summary = merged.Summary()
		s.Histograms = append(s.Histograms, hs)
	}
	sortSnapshot(&s)
	return s
}

func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// MergeSnapshots combines two snapshots name-wise: counters and
// histogram buckets add (per-CPU shards add index-wise up to the
// shorter length), gauges keep b's value (last write wins), histogram
// summaries re-merge via stats.Online semantics on the moments we
// have. Merge order must be fixed by the caller for deterministic
// floats — Session.MergedSnapshot merges cells in sorted-key order.
func MergeSnapshots(a, b Snapshot) Snapshot {
	out := Snapshot{}
	// Counters.
	cm := map[string]*CounterSnap{}
	for _, src := range [][]CounterSnap{a.Counters, b.Counters} {
		for _, c := range src {
			if dst, ok := cm[c.Name]; ok {
				dst.Value += c.Value
				for i := 0; i < len(dst.PerCPU) && i < len(c.PerCPU); i++ {
					dst.PerCPU[i] += c.PerCPU[i]
				}
			} else {
				cc := CounterSnap{Name: c.Name, Value: c.Value, PerCPU: append([]uint64(nil), c.PerCPU...)}
				cm[c.Name] = &cc
			}
		}
	}
	for _, c := range cm {
		out.Counters = append(out.Counters, *c)
	}
	// Gauges: last write wins.
	gm := map[string]float64{}
	for _, src := range [][]GaugeSnap{a.Gauges, b.Gauges} {
		for _, g := range src {
			gm[g.Name] = g.Value
		}
	}
	for name, v := range gm {
		out.Gauges = append(out.Gauges, GaugeSnap{Name: name, Value: v})
	}
	// Histograms: buckets add; summaries combine with the Chan et al.
	// formulas reconstructed from the summary moments.
	hm := map[string]*HistSnap{}
	for _, src := range [][]HistSnap{a.Histograms, b.Histograms} {
		for _, h := range src {
			if dst, ok := hm[h.Name]; ok {
				for i := 0; i < len(dst.Buckets) && i < len(h.Buckets); i++ {
					dst.Buckets[i] += h.Buckets[i]
				}
				dst.Summary = mergeSummaries(dst.Summary, h.Summary)
			} else {
				hh := HistSnap{
					Name:    h.Name,
					Bounds:  append([]float64(nil), h.Bounds...),
					Buckets: append([]uint64(nil), h.Buckets...),
					Summary: h.Summary,
				}
				hm[h.Name] = &hh
			}
		}
	}
	for _, h := range hm {
		out.Histograms = append(out.Histograms, *h)
	}
	sortSnapshot(&out)
	return out
}

func mergeSummaries(a, b stats.Summary) stats.Summary {
	if b.N == 0 {
		return a
	}
	if a.N == 0 {
		return b
	}
	out := stats.Summary{N: a.N + b.N, Min: a.Min, Max: a.Max}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	d := b.Mean - a.Mean
	n := float64(out.N)
	m2 := a.Var*float64(a.N) + b.Var*float64(b.N) + d*d*float64(a.N)*float64(b.N)/n
	out.Mean = a.Mean + d*float64(b.N)/n
	out.Var = m2 / n
	out.Std = math.Sqrt(out.Var)
	return out
}

// String renders a snapshot compactly for debugging.
func (s Snapshot) String() string {
	return fmt.Sprintf("snapshot{%d counters, %d gauges, %d histograms}",
		len(s.Counters), len(s.Gauges), len(s.Histograms))
}
