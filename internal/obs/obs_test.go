package obs

import (
	"math"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"": Off, "off": Off, "OFF": Off, " metrics ": Metrics, "trace": Trace, "Trace": Trace,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("ParseLevel(bogus) succeeded")
	}
	for _, l := range []Level{Off, Metrics, Trace} {
		if l.String() == "" {
			t.Errorf("Level %d has empty String", l)
		}
	}
}

func TestNilObserverIsOff(t *testing.T) {
	var o *Observer
	if o.Tracing() || o.MetricsOn() || o.Level() != Off {
		t.Error("nil observer is not fully off")
	}
	if o.Registry() != nil || o.Ring(0) != nil {
		t.Error("nil observer exposes state")
	}
	o.NameThread(3, "x") // must not panic
	if got := o.ThreadName(3); got != "t3" {
		t.Errorf("nil ThreadName = %q", got)
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Time: uint64(i)})
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len/total/dropped = %d/%d/%d", r.Len(), r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Time != want {
			t.Errorf("event %d has time %d, want %d", i, ev.Time, want)
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	for size, want := range map[int]int{0: 1, 1: 1, 3: 4, 4: 4, 5: 8} {
		if got := len(NewRing(size).buf); got != want {
			t.Errorf("NewRing(%d) capacity %d, want %d", size, got, want)
		}
	}
}

func TestRegistryCountersShardAndSum(t *testing.T) {
	r := NewRegistry(3)
	c := r.Counter("x_total")
	c.Inc(0)
	c.Add(2, 5)
	if c.Value() != 6 {
		t.Fatalf("Value = %d", c.Value())
	}
	if again := r.Counter("x_total"); again != c {
		t.Error("re-registering returned a different counter")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 6 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	if got := snap.Counters[0].PerCPU; got[0] != 1 || got[1] != 0 || got[2] != 5 {
		t.Errorf("per-cpu shards: %v", got)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat", []float64{1, 10})
	for cpu, vals := range [][]float64{{0.5, 2}, {100}} {
		for _, v := range vals {
			h.Observe(cpu, v)
		}
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	if hs.Buckets[0] != 1 || hs.Buckets[1] != 1 || hs.Buckets[2] != 1 {
		t.Errorf("buckets: %v", hs.Buckets)
	}
	if hs.Summary.N != 3 || hs.Summary.Min != 0.5 || hs.Summary.Max != 100 {
		t.Errorf("summary: %+v", hs.Summary)
	}
	wantMean := (0.5 + 2 + 100) / 3
	if math.Abs(hs.Summary.Mean-wantMean) > 1e-9 {
		t.Errorf("merged mean %v, want %v", hs.Summary.Mean, wantMean)
	}
}

func TestSnapshotSortedAndMerge(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry(1)
		r.Counter("b_total").Add(0, 2)
		r.Counter("a_total").Add(0, 1)
		r.Gauge("g").Set(4)
		r.Histogram("h", []float64{1}).Observe(0, 0.5)
		return r.Snapshot()
	}
	s := build()
	if s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	m := MergeSnapshots(s, build())
	if m.Counters[0].Value != 2 || m.Counters[1].Value != 4 {
		t.Errorf("merged counters: %+v", m.Counters)
	}
	if m.Gauges[0].Value != 4 {
		t.Errorf("merged gauge: %+v", m.Gauges)
	}
	h := m.Histograms[0]
	if h.Summary.N != 2 || h.Buckets[0] != 2 {
		t.Errorf("merged histogram: %+v", h)
	}
}

func TestObserverLevels(t *testing.T) {
	m := New(2, Options{Level: Metrics})
	if m.Tracing() || !m.MetricsOn() {
		t.Error("metrics level wrong")
	}
	if m.Ring(0) != nil {
		t.Error("metrics level allocated rings")
	}
	tr := New(2, Options{Level: Trace, RingSize: 8})
	if !tr.Tracing() || !tr.MetricsOn() {
		t.Error("trace level wrong")
	}
	tr.Emit(Event{Kind: KWake, CPU: 1, Thread: 5})
	if tr.Ring(1).Len() != 1 || tr.Ring(0).Len() != 0 {
		t.Error("Emit landed on the wrong ring")
	}
	tr.NameThread(5, "worker")
	if tr.ThreadName(5) != "worker" || tr.ThreadName(6) != "t6" {
		t.Error("thread naming wrong")
	}
}

func TestSessionSortsCellsAndMerges(t *testing.T) {
	s := NewSession(Metrics, 0)
	for _, key := range []string{"zz", "aa", "mm"} {
		o := s.Observer(key, 1)
		o.Registry().Counter("n_total").Inc(0)
	}
	cells := s.Cells()
	if len(cells) != 3 || cells[0].Key != "aa" || cells[2].Key != "zz" {
		t.Fatalf("cells: %+v", cells)
	}
	if v := s.MergedSnapshot().Counters[0].Value; v != 3 {
		t.Errorf("merged counter = %d", v)
	}
	var nilSession *Session
	if nilSession.Observer("x", 1) != nil || nilSession.Level() != Off {
		t.Error("nil session not off")
	}
	off := NewSession(Off, 0)
	if off.Observer("x", 1) != nil {
		t.Error("off session returned an observer")
	}
}

func TestVerdictAndKindStrings(t *testing.T) {
	for k := KDispatch; k <= KRecover; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("unknown kind misnamed")
	}
	for v, want := range map[uint8]string{VerdictOK: "ok", VerdictSuspect: "suspect", VerdictRejected: "rejected", 9: "unknown"} {
		if got := VerdictString(v); got != want {
			t.Errorf("VerdictString(%d) = %q", v, got)
		}
	}
}

// fillObserver records a small deterministic event mix for the export
// tests.
func fillObserver() *Observer {
	o := New(2, Options{Level: Trace, RingSize: 64})
	o.NameThread(0, "main")
	o.NameThread(1, "worker")
	o.Registry().Counter("rt_dispatches_total").Add(0, 3)
	o.Registry().Counter("rt_dispatches_total").Add(1, 2)
	o.Registry().Gauge("sched_global_queue_len").Set(1)
	h := o.Registry().Histogram("rt_interval_cycles", []float64{100, 1000})
	h.Observe(0, 50)
	h.Observe(1, 5000)
	o.Emit(Event{Time: 10, Kind: KSpawn, CPU: 0, Thread: 0})
	o.Emit(Event{Time: 12, Kind: KDispatch, CPU: 0, Thread: 0, A: 2})
	o.Emit(Event{Time: 40, Kind: KModelUpdate, CPU: 0, Thread: 0, Arg: 1, X: 0, Y: 12.5, B: math.Float64bits(3.25)})
	o.Emit(Event{Time: 40, Kind: KInterval, CPU: 0, Thread: 0, A: 7, B: 7, Arg: VerdictOK})
	o.Emit(Event{Time: 40, Kind: KBlock, CPU: 0, Thread: 0, A: 28, Arg: uint8(ReasonLock)})
	o.Emit(Event{Time: 41, Kind: KSchedDecision, CPU: 0, Thread: 1, A: 1, B: 0})
	o.Emit(Event{Time: 15, Kind: KWake, CPU: 1, Thread: 1})
	o.Emit(Event{Time: 60, Kind: KQuarantine, CPU: 1, Thread: InvalidThread})
	o.Emit(Event{Time: 90, Kind: KRecover, CPU: 1, Thread: InvalidThread})
	return o
}
