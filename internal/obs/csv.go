package obs

// CSV exporters: a flat event timeline (one row per ring event, for
// spreadsheets and ad-hoc scripts) and per-thread footprint series in
// the stats.Series shape internal/report renders as CSV columns or SVG
// curves. Row order is fixed — cells in slice order, CPUs ascending,
// ring order within a CPU — so the bytes are deterministic.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/mem"
	"repro/internal/stats"
)

// WriteCSVTimeline writes every recorded event of every cell as CSV
// with the header
//
//	cell,time,cpu,kind,thread,a,b,x,y,arg
//
// where a/b/x/y/arg are the kind-specific payloads of the event schema
// (docs/OBSERVABILITY.md).
func WriteCSVTimeline(w io.Writer, cells []*Cell) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "cell,time,cpu,kind,thread,a,b,x,y,arg")
	for _, c := range cells {
		if c.Obs == nil {
			continue
		}
		for cpu := 0; cpu < c.Obs.NCPU(); cpu++ {
			r := c.Obs.Ring(cpu)
			if r == nil {
				continue
			}
			for _, ev := range r.Events() {
				fmt.Fprintf(bw, "%s,%d,%d,%s,%d,%d,%d,%s,%s,%s\n",
					csvField(c.Key), ev.Time, cpu, ev.Kind, int32(ev.Thread),
					ev.A, ev.B, csvFloat(ev.X), csvFloat(ev.Y), argString(ev))
			}
		}
	}
	return bw.Flush()
}

// argString renders an event's Arg in its kind's vocabulary.
func argString(ev Event) string {
	switch ev.Kind {
	case KBlock:
		return BlockReason(ev.Arg).String()
	case KInterval:
		return VerdictString(ev.Arg)
	case KModelUpdate:
		return updateCaseName(ev.Arg)
	default:
		return strconv.Itoa(int(ev.Arg))
	}
}

// csvField quotes a field only when it needs it.
func csvField(s string) string {
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' || r == '\r' {
			return strconv.Quote(s)
		}
	}
	return s
}

// csvFloat renders a float compactly ("0" for zero payloads).
func csvFloat(v float64) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FootprintSeries extracts one stats.Series per thread from the
// observer's KModelUpdate events: X = virtual time of the update, Y =
// the model's new expected footprint E[F] in lines. Series are sorted
// by thread ID and labelled with the thread's name, ready for
// report.CSV or report.SVGPlot.
func FootprintSeries(o *Observer) []*stats.Series {
	if o == nil {
		return nil
	}
	byThread := make(map[mem.ThreadID]*stats.Series)
	var ids []mem.ThreadID
	for cpu := 0; cpu < o.NCPU(); cpu++ {
		r := o.Ring(cpu)
		if r == nil {
			continue
		}
		for _, ev := range r.Events() {
			if ev.Kind != KModelUpdate {
				continue
			}
			s := byThread[ev.Thread]
			if s == nil {
				s = &stats.Series{Label: o.ThreadName(ev.Thread)}
				byThread[ev.Thread] = s
				ids = append(ids, ev.Thread)
			}
			s.Append(float64(ev.Time), ev.Y)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*stats.Series, 0, len(ids))
	for _, id := range ids {
		s := byThread[id]
		// Rings interleave CPUs; updates for one thread must be in time
		// order for plotting.
		sortSeriesByX(s)
		out = append(out, s)
	}
	return out
}

// sortSeriesByX stably sorts a series' parallel slices by X.
func sortSeriesByX(s *stats.Series) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(idx))
	y := make([]float64, len(idx))
	for i, j := range idx {
		x[i], y[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = x, y
}
