package obs

import "repro/internal/mem"

// Kind discriminates trace events. The numeric values are part of the
// exported trace schema (docs/OBSERVABILITY.md) — append new kinds, do
// not renumber.
type Kind uint8

const (
	// KDispatch: a thread starts running on a CPU.
	// A = cycles the thread waited runnable before dispatch (0 when it
	// was never enqueued, e.g. the bootstrap dispatch).
	KDispatch Kind = iota + 1
	// KBlock: the running thread leaves the CPU. Arg = BlockReason.
	// A = cycles of the just-ended execution interval.
	KBlock
	// KWake: a thread becomes runnable (unblock, timer fire, spawn
	// enqueue). CPU is the processor whose engine-step performed the
	// wake, not where the thread will run.
	KWake
	// KSpawn: a thread is created. A = entry count of its annotation
	// working set (0 when annotations are disabled).
	KSpawn
	// KExit: a thread terminates.
	KExit
	// KInterval: the sanitized per-interval counter reading taken at a
	// context switch. A = raw miss delta as read from the counter,
	// B = sanitized miss count actually fed to the model,
	// Arg = sanitizer verdict (VerdictOK/Suspect/Rejected).
	KInterval
	// KModelUpdate: the model recomputed a thread's expected footprint.
	// Arg = model.UpdateCase (1 blocking, 2 independent decay,
	// 3 dependent), X = prior S, Y = new expected footprint E[F],
	// B = math.Float64bits of the resulting priority.
	KModelUpdate
	// KSchedDecision: the scheduler picked the next thread for a CPU.
	// Thread = the chosen thread (InvalidThread when the CPU idles),
	// A = size of the dependent set touched by the preceding O(d)
	// update, B = local heap length after the pick.
	KSchedDecision
	// KQuarantine: a CPU's miss counter entered quarantine; the
	// scheduler degrades to the annotation-free baseline there.
	KQuarantine
	// KRecover: a quarantined counter passed the clean-streak
	// hysteresis and the CPU resumed locality scheduling.
	KRecover
	// KStall: the stall watchdog fired — no dispatch progress within
	// the configured wall-clock deadline. A = total dispatches at the
	// moment the watchdog gave up, B = engine steps. Emitted on CPU 0
	// alongside the diagnostic error Engine.Run returns.
	KStall
)

func (k Kind) String() string {
	switch k {
	case KDispatch:
		return "dispatch"
	case KBlock:
		return "block"
	case KWake:
		return "wake"
	case KSpawn:
		return "spawn"
	case KExit:
		return "exit"
	case KInterval:
		return "interval"
	case KModelUpdate:
		return "model_update"
	case KSchedDecision:
		return "sched_decision"
	case KQuarantine:
		return "quarantine"
	case KRecover:
		return "recover"
	case KStall:
		return "stall"
	default:
		return "unknown"
	}
}

// BlockReason says why a thread left its CPU (KBlock's Arg).
type BlockReason uint8

const (
	ReasonPreempt BlockReason = iota + 1
	ReasonYield
	ReasonSleep
	ReasonJoin
	ReasonLock
	ReasonSem
	ReasonBarrier
	ReasonCond
	ReasonExit
)

func (r BlockReason) String() string {
	switch r {
	case ReasonPreempt:
		return "preempt"
	case ReasonYield:
		return "yield"
	case ReasonSleep:
		return "sleep"
	case ReasonJoin:
		return "join"
	case ReasonLock:
		return "lock"
	case ReasonSem:
		return "sem"
	case ReasonBarrier:
		return "barrier"
	case ReasonCond:
		return "cond"
	case ReasonExit:
		return "exit"
	default:
		return "unknown"
	}
}

// Sanitizer verdicts (KInterval's Arg). The values mirror
// rt.ReadingClass (OK=0, Suspect=1, Rejected=2); obs cannot import rt
// without a cycle, and rt's health test asserts the correspondence.
const (
	VerdictOK       uint8 = 0
	VerdictSuspect  uint8 = 1
	VerdictRejected uint8 = 2
)

// VerdictString names a KInterval verdict.
func VerdictString(v uint8) string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictSuspect:
		return "suspect"
	case VerdictRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// InvalidThread marks events with no thread subject (idle
// KSchedDecision, KQuarantine/KRecover).
const InvalidThread mem.ThreadID = -1

// Event is one fixed-size trace record. Time is always the emitting
// CPU's virtual cycle clock — never wall time — which is what makes
// traces bit-deterministic. The meaning of A, B, X, Y and Arg depends
// on Kind (see the Kind constants).
type Event struct {
	// Time is the virtual clock of the emitting CPU, in cycles.
	Time uint64
	// A and B are kind-specific integer payloads.
	A, B uint64
	// X and Y are kind-specific float payloads (model S values).
	X, Y float64
	// Thread is the subject thread, or InvalidThread.
	Thread mem.ThreadID
	// CPU is the processor the event was emitted on.
	CPU int16
	// Kind discriminates the payload.
	Kind Kind
	// Arg is a small kind-specific enum (BlockReason, verdict,
	// model.UpdateCase).
	Arg uint8
}
