package obs

// Ring is a fixed-capacity event buffer that overwrites its oldest
// entries. It is single-writer: exactly one goroutine (the engine that
// owns the CPU) appends, and readers only run after the engine stops.
// That discipline is what makes it lock-free — there is nothing to
// contend on — while the power-of-two capacity turns the index
// computation into a mask.
//
// The head counter is total events ever appended, so Dropped is simply
// head − len: exporters can say exactly how much of a long run the
// ring no longer holds.
type Ring struct {
	buf  []Event
	mask uint64
	head uint64 // total appends ever; next write goes to buf[head&mask]
}

// NewRing builds a ring holding at least size events (rounded up to a
// power of two, minimum 1).
func NewRing(size int) *Ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n), mask: uint64(n) - 1}
}

// Append records one event, overwriting the oldest when full.
func (r *Ring) Append(ev Event) {
	r.buf[r.head&r.mask] = ev
	r.head++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r.head < uint64(len(r.buf)) {
		return int(r.head)
	}
	return len(r.buf)
}

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 { return r.head }

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 { return r.head - uint64(r.Len()) }

// Events returns the held events oldest-first. The slice is freshly
// allocated; the ring can keep appending afterwards.
func (r *Ring) Events() []Event {
	n := r.Len()
	out := make([]Event, n)
	start := r.head - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+uint64(i))&r.mask]
	}
	return out
}

// Since returns the retained events whose global append index (0-based:
// the i-th event ever appended has index i) is >= cursor, oldest-first,
// plus how many events in [cursor, Total()) were already overwritten.
// Since(0) is Events() plus Dropped(): the full retained tail with
// exact loss accounting. It is the incremental-drain primitive behind
// the live event stream — a consumer that remembers the last index it
// saw gets exactly the new events, and an explicit count (never a
// guess) of any it lost to overwrite. Reader rules are the ring's own:
// call only from the writer goroutine or after the writer stops.
func (r *Ring) Since(cursor uint64) ([]Event, uint64) {
	if cursor > r.head {
		cursor = r.head
	}
	start := r.head - uint64(r.Len())
	var dropped uint64
	if cursor < start {
		dropped = start - cursor
		cursor = start
	}
	n := int(r.head - cursor)
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(cursor+uint64(i))&r.mask]
	}
	return out, dropped
}
