package obs

import (
	"fmt"
	"io"

	"repro/internal/fsatomic"
)

// WriteTraceFile exports every cell of the session as one Chrome
// trace-event file at path (load it at ui.perfetto.dev or
// chrome://tracing). The file is written atomically (temp file + fsync
// + rename), so a process killed mid-export leaves either the previous
// complete file or the new one — never a torn JSON prefix. It is a
// no-op returning nil when the session never recorded events (level
// below Trace).
func (s *Session) WriteTraceFile(path string) error {
	if s.Level() < Trace {
		return nil
	}
	err := fsatomic.WriteFile(path, func(w io.Writer) error {
		return WriteChromeTrace(w, s.Cells())
	})
	if err != nil {
		return fmt.Errorf("obs: trace %s: %w", path, err)
	}
	return nil
}

// WriteMetricsFile exports the session's merged metrics in Prometheus
// text exposition format at path, atomically (see WriteTraceFile). It
// is a no-op returning nil when the session kept no metrics (level
// Off).
func (s *Session) WriteMetricsFile(path string) error {
	if s.Level() < Metrics {
		return nil
	}
	err := fsatomic.WriteFile(path, func(w io.Writer) error {
		return WritePrometheus(w, s.MergedSnapshot())
	})
	if err != nil {
		return fmt.Errorf("obs: metrics %s: %w", path, err)
	}
	return nil
}
