package obs

import (
	"fmt"
	"os"
)

// WriteTraceFile exports every cell of the session as one Chrome
// trace-event file at path (load it at ui.perfetto.dev or
// chrome://tracing). It is a no-op returning nil when the session never
// recorded events (level below Trace).
func (s *Session) WriteTraceFile(path string) error {
	if s.Level() < Trace {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, s.Cells()); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace %s: %w", path, err)
	}
	return f.Close()
}

// WriteMetricsFile exports the session's merged metrics in Prometheus
// text exposition format at path. It is a no-op returning nil when the
// session kept no metrics (level Off).
func (s *Session) WriteMetricsFile(path string) error {
	if s.Level() < Metrics {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePrometheus(f, s.MergedSnapshot()); err != nil {
		f.Close()
		return fmt.Errorf("obs: metrics %s: %w", path, err)
	}
	return f.Close()
}
