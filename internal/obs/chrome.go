package obs

// Chrome trace-event exporter. The output is the Trace Event Format's
// "JSON Object Format" ({"traceEvents": [...]}) understood by Perfetto
// and chrome://tracing: one process per cell, one track (tid) per CPU
// carrying complete ("X") slices for execution intervals, instant
// events for the scheduling edges (wake, spawn, exit, quarantine), and
// counter ("C") tracks for each thread's expected footprint E[F] and
// each CPU's per-interval miss counts.
//
// Timestamps are the simulator's virtual cycle counts written directly
// into the "ts" microsecond field (1 cycle renders as 1 µs — the unit
// label is cosmetic; the shapes and orderings are exact). Everything is
// emitted in a fixed order — cells in the given order, CPUs ascending,
// ring events oldest-first — and floats are formatted with strconv
// shortest-round-trip, so the bytes are a pure function of the recorded
// events: runs of the same seed export identical files regardless of
// `-j` worker count or host timing.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteChromeTrace writes the cells as one Chrome trace-event JSON
// document. Cells become processes in slice order (Session.Cells
// returns them sorted by key, which is what keeps multi-cell exports
// deterministic); pass a single-element slice for one run.
func WriteChromeTrace(w io.Writer, cells []*Cell) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}
	cw.raw(`{"displayTimeUnit":"ns","traceEvents":[`)
	for i, c := range cells {
		cw.cell(i+1, c)
	}
	cw.raw("\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// chromeWriter accumulates trace events with explicit comma handling
// and sticky error reporting.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (c *chromeWriter) raw(s string) {
	if c.err == nil {
		_, c.err = c.w.WriteString(s)
	}
}

// event emits one pre-rendered JSON object body (without braces).
func (c *chromeWriter) event(body string) {
	if c.first {
		c.raw(",")
	}
	c.first = true
	c.raw("\n{")
	c.raw(body)
	c.raw("}")
}

// jstr renders s as a JSON string (with quotes).
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Invariant: marshalling a Go string cannot fail.
		panic(err)
	}
	return string(b)
}

// jfloat renders a float deterministically; NaN/Inf (impossible for
// sanitized model state, but the encoder must never emit invalid JSON)
// degrade to 0.
func jfloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// cell emits one observer as one trace process.
func (c *chromeWriter) cell(pid int, cell *Cell) {
	o := cell.Obs
	name := cell.Key
	if name == "" {
		name = fmt.Sprintf("cell %d", pid)
	}
	c.event(fmt.Sprintf(`"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}`,
		pid, jstr(name)))
	if o == nil {
		return
	}
	for cpu := 0; cpu < o.NCPU(); cpu++ {
		c.event(fmt.Sprintf(`"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"cpu%d"}`,
			pid, cpu, cpu))
		c.event(fmt.Sprintf(`"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}`,
			pid, cpu, cpu))
		r := o.Ring(cpu)
		if r == nil {
			continue
		}
		if d := r.Dropped(); d > 0 {
			c.event(fmt.Sprintf(`"name":"ring_overflow","ph":"i","s":"t","ts":0,"pid":%d,"tid":%d,"args":{"dropped":%d,"total":%d}`,
				pid, cpu, d, r.Total()))
		}
		c.cpuEvents(pid, cpu, o, r.Events())
	}
}

// cpuEvents renders one CPU's ring, pairing dispatch/block into slices.
func (c *chromeWriter) cpuEvents(pid, cpu int, o *Observer, evs []Event) {
	var open *Event // pending dispatch awaiting its block
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case KDispatch:
			open = ev
		case KBlock:
			// A ring that overwrote the dispatch still renders the
			// block-terminated tail as a zero-length slice at ts.
			start := ev.Time
			tname := o.ThreadName(ev.Thread)
			if open != nil && open.Thread == ev.Thread && open.Time <= ev.Time {
				start = open.Time
			}
			c.event(fmt.Sprintf(`"name":%s,"cat":"exec","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"thread":%d,"reason":%s,"interval_cycles":%d}`,
				jstr(tname), start, ev.Time-start, pid, cpu, int32(ev.Thread),
				jstr(BlockReason(ev.Arg).String()), ev.A))
			open = nil
		case KWake, KSpawn, KExit:
			c.event(fmt.Sprintf(`"name":%s,"cat":"sched","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"thread":%d}`,
				jstr(ev.Kind.String()+" "+o.ThreadName(ev.Thread)), ev.Time, pid, cpu, int32(ev.Thread)))
		case KInterval:
			c.event(fmt.Sprintf(`"name":"misses cpu%d","ph":"C","ts":%d,"pid":%d,"args":{"raw":%d,"sanitized":%d}`,
				cpu, ev.Time, pid, ev.A, ev.B))
			if ev.Arg != VerdictOK {
				c.event(fmt.Sprintf(`"name":%s,"cat":"health","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"thread":%d,"raw":%d,"sanitized":%d}`,
					jstr("reading "+VerdictString(ev.Arg)), ev.Time, pid, cpu, int32(ev.Thread), ev.A, ev.B))
			}
		case KModelUpdate:
			c.event(fmt.Sprintf(`"name":%s,"ph":"C","ts":%d,"pid":%d,"args":{"lines":%s}`,
				jstr("E[F] "+o.ThreadName(ev.Thread)), ev.Time, pid, jfloat(ev.Y)))
			c.event(fmt.Sprintf(`"name":%s,"cat":"model","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"thread":%d,"case":%s,"prior":%s,"expected":%s,"prio":%s}`,
				jstr("model "+o.ThreadName(ev.Thread)), ev.Time, pid, cpu, int32(ev.Thread),
				jstr(updateCaseName(ev.Arg)), jfloat(ev.X), jfloat(ev.Y),
				jfloat(math.Float64frombits(ev.B))))
		case KSchedDecision:
			c.event(fmt.Sprintf(`"name":%s,"cat":"sched","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"thread":%d,"dependents":%d,"heap":%d}`,
				jstr("pick "+o.ThreadName(ev.Thread)), ev.Time, pid, cpu, int32(ev.Thread), ev.A, ev.B))
		case KQuarantine, KRecover:
			c.event(fmt.Sprintf(`"name":%s,"cat":"health","ph":"i","s":"p","ts":%d,"pid":%d,"tid":%d,"args":{}`,
				jstr(ev.Kind.String()), ev.Time, pid, cpu))
		default:
			// Unknown kinds (a newer schema read by an older exporter)
			// still render, so nothing recorded is silently dropped.
			c.event(fmt.Sprintf(`"name":"event kind %d","cat":"unknown","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d}`,
				ev.Kind, ev.Time, pid, cpu, ev.A, ev.B))
		}
	}
	if open != nil {
		// A thread still running when the trace was cut: render the
		// open interval as a zero-duration slice so it stays visible.
		c.event(fmt.Sprintf(`"name":%s,"cat":"exec","ph":"X","ts":%d,"dur":0,"pid":%d,"tid":%d,"args":{"thread":%d,"reason":"running"}`,
			jstr(o.ThreadName(open.Thread)), open.Time, pid, cpu, int32(open.Thread)))
	}
}

// updateCaseName names a KModelUpdate Arg. The values mirror
// model.UpdateCase (obs stays dependency-light and does not import the
// model); the correspondence is pinned by TestUpdateCaseMirrorsModel in
// internal/model.
func updateCaseName(arg uint8) string {
	switch arg {
	case 1:
		return "blocking"
	case 2:
		return "independent"
	case 3:
		return "dependent"
	default:
		return "unknown"
	}
}
