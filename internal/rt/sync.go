package rt

// Synchronization objects of the Active Threads API. These are plain
// data manipulated exclusively by the engine while handling requests, so
// they need no internal locking: the simulation is sequential by
// construction. Create them with the constructors below and share the
// pointers freely between thread bodies.

// Mutex is a blocking mutual-exclusion lock with FIFO waiters.
type Mutex struct {
	name    string
	owner   *T
	waiters []*T
}

// NewMutex returns an unlocked mutex. The name appears in diagnostics.
func NewMutex(name string) *Mutex { return &Mutex{name: name} }

// Locked reports whether some thread holds the mutex (diagnostics).
func (m *Mutex) Locked() bool { return m.owner != nil }

// Semaphore is a counting semaphore with FIFO waiters.
type Semaphore struct {
	name    string
	value   int
	waiters []*T
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(name string, initial int) *Semaphore {
	if initial < 0 {
		// Invariant: constructor misuse outside any run — fail loudly at
		// build time rather than mid-simulation.
		panic("rt: negative initial semaphore value")
	}
	return &Semaphore{name: name, value: initial}
}

// Value returns the current count (diagnostics).
func (s *Semaphore) Value() int { return s.value }

// Barrier blocks threads until a fixed number of parties arrive, then
// releases them all and resets.
type Barrier struct {
	name    string
	parties int
	arrived int
	waiters []*T
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		// Invariant: constructor misuse outside any run.
		panic("rt: barrier needs at least one party")
	}
	return &Barrier{name: name, parties: parties}
}

// condWaiter pairs a waiting thread with the mutex it must reacquire.
type condWaiter struct {
	t  *T
	mu *Mutex
}

// Cond is a condition variable used with a Mutex.
type Cond struct {
	name    string
	waiters []condWaiter
}

// NewCond returns a condition variable.
func NewCond(name string) *Cond { return &Cond{name: name} }
