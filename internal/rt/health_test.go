package rt

import (
	"testing"

	"repro/internal/platform"
)

func snap(refs, hits uint32) platform.CounterSnapshot {
	return platform.CounterSnapshot{Refs: refs, Hits: hits}
}

func TestSanitizeCleanReadingIsTransparent(t *testing.T) {
	h := newHealthTracker(HealthConfig{}, 1)
	n, class := h.sanitize(0, snap(100, 40), snap(1100, 640), 5000)
	if class != ReadingOK {
		t.Errorf("class = %v, want ok", class)
	}
	if n != 400 { // 1000 refs - 600 hits
		t.Errorf("n = %d, want 400", n)
	}
	if got := h.cpus[0].OK; got != 1 {
		t.Errorf("OK count = %d, want 1", got)
	}
}

func TestSanitizeHandles32BitWrap(t *testing.T) {
	// A legitimate 2^32 wrap mid-interval: modular arithmetic must see
	// the true delta, not garbage.
	h := newHealthTracker(HealthConfig{}, 1)
	n, class := h.sanitize(0, snap(1<<32-50, 1<<32-100), snap(150, 50), 5000)
	if class != ReadingOK {
		t.Errorf("class = %v, want ok", class)
	}
	if n != 50 { // 200 refs - 150 hits across the wrap
		t.Errorf("n = %d, want 50", n)
	}
}

func TestSanitizeRejectsNegativeMissCount(t *testing.T) {
	h := newHealthTracker(HealthConfig{}, 1)
	n, class := h.sanitize(0, snap(100, 100), snap(150, 400), 5000)
	if class != ReadingRejected {
		t.Errorf("class = %v, want rejected", class)
	}
	if n != 0 {
		t.Errorf("n = %d, want 0 (rejected readings carry no information)", n)
	}
}

func TestSanitizeRejectsImpossibleRate(t *testing.T) {
	h := newHealthTracker(HealthConfig{}, 1)
	// 1M misses in a 1000-cycle window breaks the >= 1 cycle/miss bound.
	n, class := h.sanitize(0, snap(0, 0), snap(1_000_000, 0), 1000)
	if class != ReadingRejected || n != 0 {
		t.Errorf("(n, class) = (%d, %v), want (0, rejected)", n, class)
	}
	// The same delta over a wide window is fine.
	n, class = h.sanitize(0, snap(0, 0), snap(1_000_000, 0), 2_000_000)
	if class != ReadingOK || n != 1_000_000 {
		t.Errorf("(n, class) = (%d, %v), want (1000000, ok)", n, class)
	}
}

func TestSanitizeStuckCounterEscalates(t *testing.T) {
	cfg := HealthConfig{StuckIntervals: 3, StuckMinCycles: 1000}
	h := newHealthTracker(cfg, 1)
	s := snap(500, 100)
	// Short frozen intervals are not even suspicious: compute bursts
	// legitimately touch no memory.
	if _, class := h.sanitize(0, s, s, 500); class != ReadingOK {
		t.Fatalf("short frozen interval classified %v, want ok", class)
	}
	// Long frozen intervals turn Suspect, then Rejected once the
	// counter has been flat for StuckIntervals of them.
	if _, class := h.sanitize(0, s, s, 5000); class != ReadingSuspect {
		t.Fatalf("1st long frozen interval classified %v, want suspect", class)
	}
	if _, class := h.sanitize(0, s, s, 5000); class != ReadingSuspect {
		t.Fatalf("2nd long frozen interval classified %v, want suspect", class)
	}
	if _, class := h.sanitize(0, s, s, 5000); class != ReadingRejected {
		t.Fatalf("3rd long frozen interval classified %v, want rejected", class)
	}
	// Any movement resets the stuck window.
	if _, class := h.sanitize(0, s, snap(600, 120), 5000); class != ReadingOK {
		t.Fatalf("moving counter classified %v, want ok", class)
	}
	if _, class := h.sanitize(0, s, s, 5000); class != ReadingSuspect {
		t.Fatalf("frozen window did not reset after movement")
	}
}

func TestQuarantineAndRecoveryHysteresis(t *testing.T) {
	cfg := HealthConfig{QuarantineAfter: 3, RecoverAfter: 4}
	h := newHealthTracker(cfg, 2)
	bad := func() (uint64, ReadingClass) { return h.sanitize(0, snap(0, 0), snap(10, 20), 100) }
	good := func() (uint64, ReadingClass) { return h.sanitize(0, snap(0, 0), snap(20, 10), 100) }

	bad()
	bad()
	if h.quarantined(0) {
		t.Fatal("quarantined before QuarantineAfter rejections")
	}
	bad()
	if !h.quarantined(0) {
		t.Fatal("not quarantined after 3 consecutive rejections")
	}
	if h.quarantined(1) {
		t.Fatal("quarantine leaked to another CPU")
	}
	// Recovery needs RecoverAfter consecutive clean readings; a single
	// rejection restarts the count.
	good()
	good()
	good()
	bad()
	good()
	good()
	good()
	if h.quarantined(0) != true {
		t.Fatal("recovered early: rejection must reset the clean streak")
	}
	good()
	if h.quarantined(0) {
		t.Fatal("still quarantined after RecoverAfter clean readings")
	}
	hs := h.snapshot()[0]
	if hs.Quarantines != 1 || hs.Recoveries != 1 {
		t.Errorf("transitions = %d/%d, want 1/1", hs.Quarantines, hs.Recoveries)
	}
}

func TestSuspectInterruptsBothStreaks(t *testing.T) {
	cfg := HealthConfig{QuarantineAfter: 2, StuckIntervals: 10, StuckMinCycles: 100}
	h := newHealthTracker(cfg, 1)
	frozen := snap(500, 100)
	h.sanitize(0, snap(0, 0), snap(10, 20), 100) // rejected
	h.sanitize(0, frozen, frozen, 5000)          // suspect
	h.sanitize(0, snap(0, 0), snap(10, 20), 100) // rejected
	if h.quarantined(0) {
		t.Error("suspect reading did not break the rejection streak")
	}
	hs := h.snapshot()[0]
	if hs.OK != 0 || hs.Suspect != 1 || hs.Rejected != 2 {
		t.Errorf("counts = %d/%d/%d, want 0/1/2", hs.OK, hs.Suspect, hs.Rejected)
	}
}

func TestHealthConfigValidate(t *testing.T) {
	for _, bad := range []HealthConfig{
		{MaxMissesPerCycle: -1},
		{StuckIntervals: -1},
		{QuarantineAfter: -2},
		{RecoverAfter: -3},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("validate(%+v) = nil, want error", bad)
		}
	}
	if err := (HealthConfig{}).validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	d := HealthConfig{}.withDefaults()
	if d.MaxMissesPerCycle != 1.0 || d.StuckIntervals != 8 || d.StuckMinCycles != 4096 ||
		d.QuarantineAfter != 4 || d.RecoverAfter != 16 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestReadingClassString(t *testing.T) {
	for class, want := range map[ReadingClass]string{
		ReadingOK: "ok", ReadingSuspect: "suspect", ReadingRejected: "rejected",
		ReadingClass(9): "ReadingClass(9)",
	} {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint8(class), got, want)
		}
	}
}
