package rt

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform/sim"
	"repro/internal/xrand"
)

// stressProgram builds a random but deadlock-free thread program: a
// tree of threads (bounded fan-out and depth) whose bodies interleave
// accesses, compute, yields, sleeps, annotations and properly paired
// lock/unlock sections, with all children joined. Every operation the
// runtime offers is exercised; the generated program always terminates.
type stressProgram struct {
	seed    uint64
	mutexes []*Mutex
	sems    []*Semaphore
	barrier *Barrier
	created int
	maxThr  int
}

func (sp *stressProgram) body(depth int, rng *xrand.Source) func(*T) {
	return func(t *T) {
		var kids []mem.ThreadID
		steps := 3 + rng.Intn(6)
		region := t.Alloc(uint64(1024 + rng.Intn(64*1024)))
		for i := 0; i < steps; i++ {
			switch rng.Intn(8) {
			case 0:
				t.ReadRange(region.Base, region.Len)
			case 1:
				t.WriteRange(region.Base, region.Len/2+8)
			case 2:
				t.Compute(uint64(50 + rng.Intn(2000)))
			case 3:
				t.Yield()
			case 4:
				t.Sleep(uint64(100 + rng.Intn(5000)))
			case 5:
				mu := sp.mutexes[rng.Intn(len(sp.mutexes))]
				t.Lock(mu)
				t.Compute(uint64(10 + rng.Intn(200)))
				t.Unlock(mu)
			case 6:
				sem := sp.sems[rng.Intn(len(sp.sems))]
				t.SemPost(sem) // post-before-wait order keeps it safe
				t.SemWait(sem)
			case 7:
				if depth < 3 && sp.created < sp.maxThr {
					sp.created++
					childRNG := xrand.New(rng.Uint64())
					kid := t.Create(fmt.Sprintf("d%d", depth+1), sp.body(depth+1, childRNG))
					t.Share(kid, t.ID(), rng.Float64())
					t.Share(t.ID(), kid, rng.Float64())
					kids = append(kids, kid)
				}
			}
		}
		for _, k := range kids {
			t.Join(k)
		}
	}
}

// runStress executes one random program and returns its fingerprint.
func runStress(t *testing.T, seed uint64, policy string, cpus int) string {
	t.Helper()
	cfg := machine.UltraSPARC1()
	if cpus > 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	e, err := New(sim.New(machine.New(cfg)), Options{Policy: policy, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sp := &stressProgram{seed: seed, maxThr: 60, barrier: NewBarrier("b", 1)}
	for i := 0; i < 3; i++ {
		sp.mutexes = append(sp.mutexes, NewMutex(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < 2; i++ {
		sp.sems = append(sp.sems, NewSemaphore(fmt.Sprintf("s%d", i), 1))
	}
	e.Spawn(sp.body(0, xrand.New(seed)), SpawnOpts{Name: "root"})
	if err := e.Run(context.Background()); err != nil {
		t.Fatalf("seed %d %s/%d: %v", seed, policy, cpus, err)
	}
	refs, hits, misses := machineOf(e).Totals()
	return fmt.Sprintf("r%d h%d m%d c%d", refs, hits, misses, machineOf(e).MaxCycles())
}

// TestStressRandomPrograms runs a battery of random programs under all
// policies and processor counts: everything must terminate cleanly, and
// identical seeds must give identical fingerprints.
func TestStressRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for _, policy := range []string{"FCFS", "LFF", "CRT"} {
			for _, cpus := range []int{1, 3, 8} {
				a := runStress(t, seed, policy, cpus)
				b := runStress(t, seed, policy, cpus)
				if a != b {
					t.Errorf("seed %d %s/%dcpu nondeterministic: %s vs %s", seed, policy, cpus, a, b)
				}
			}
		}
	}
}

// TestStressWithAllFeatures turns every optional knob on at once.
func TestStressWithAllFeatures(t *testing.T) {
	for seed := uint64(20); seed <= 24; seed++ {
		cfg := machine.Enterprise5000(4)
		cfg.TLBEntries = 64
		cfg.ClassifyMisses = true
		e, err := New(sim.New(machine.New(cfg)), Options{
			Policy:        "LFF",
			Seed:          seed,
			InferSharing:  true,
			FairnessLimit: 64,
			SpawnStacks:   true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sp := &stressProgram{seed: seed, maxThr: 40}
		for i := 0; i < 2; i++ {
			sp.mutexes = append(sp.mutexes, NewMutex("m"))
			sp.sems = append(sp.sems, NewSemaphore("s", 1))
		}
		e.Spawn(sp.body(0, xrand.New(seed)), SpawnOpts{Name: "root"})
		if err := e.Run(context.Background()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := machineOf(e).CheckCoherence(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
