package rt

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform/sim"
)

// machineOf digs the simulated machine out of a test engine's platform.
func machineOf(e *Engine) *machine.Machine { return e.plat.(*sim.Platform).Machine() }

// newEngine builds an engine on a default Ultra-1 with the given policy.
func newEngine(t *testing.T, cpus int, policy string) *Engine {
	t.Helper()
	var cfg machine.Config
	if cpus == 1 {
		cfg = machine.UltraSPARC1()
	} else {
		cfg = machine.Enterprise5000(cpus)
	}
	e, err := New(sim.New(machine.New(cfg)), Options{Policy: policy, Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func mustRun(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSingleThreadRuns(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	ran := false
	var r mem.Range
	e.Spawn(func(th *T) {
		r = th.Alloc(4096)
		th.ReadRange(r.Base, 4096)
		th.Compute(100)
		ran = true
	}, SpawnOpts{Name: "solo"})
	mustRun(t, e)
	if !ran {
		t.Fatal("body did not run")
	}
	cpu := machineOf(e).CPU(0)
	// 64 data misses plus the code-region reload (2048/64 = 32 lines)
	// plus a few scheduler-structure misses.
	if cpu.EMisses < 4096/64 || cpu.EMisses > 4096/64+40 {
		t.Errorf("misses = %d, want 64 data + ~32 code + scheduler noise", cpu.EMisses)
	}
	if cpu.Instrs < 100+4096/8 {
		t.Errorf("instrs = %d", cpu.Instrs)
	}
}

func TestCreateAndJoin(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	var order []string
	e.Spawn(func(th *T) {
		child := th.Create("child", func(c *T) {
			c.Compute(50)
			order = append(order, "child")
		})
		th.Join(child)
		order = append(order, "parent")
		// Joining an exited thread returns immediately.
		th.Join(child)
	}, SpawnOpts{Name: "parent"})
	mustRun(t, e)
	if len(order) != 2 || order[0] != "child" || order[1] != "parent" {
		t.Errorf("order = %v", order)
	}
}

func TestManyThreadsAllRun(t *testing.T) {
	e := newEngine(t, 4, "LFF")
	const n = 200
	done := make([]bool, n)
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < n; i++ {
			i := i
			kids = append(kids, th.Create("w", func(c *T) {
				r := c.Alloc(1024)
				c.ReadRange(r.Base, 1024)
				done[i] = true
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{Name: "main"})
	mustRun(t, e)
	for i, d := range done {
		if !d {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	e := newEngine(t, 2, "FCFS")
	mu := NewMutex("m")
	depth := 0
	maxDepth := 0
	var order []int
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 8; i++ {
			i := i
			kids = append(kids, th.Create("locker", func(c *T) {
				c.Lock(mu)
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
				order = append(order, i)
				c.Compute(1000)
				depth--
				c.Unlock(mu)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if maxDepth != 1 {
		t.Errorf("mutual exclusion violated: depth %d", maxDepth)
	}
	if len(order) != 8 {
		t.Errorf("only %d lockers ran", len(order))
	}
	if mu.Locked() {
		t.Error("mutex still held at exit")
	}
}

func TestUnlockNotHeldFails(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("m")
	e.Spawn(func(th *T) { th.Unlock(mu) }, SpawnOpts{Name: "bad"})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "not held") {
		t.Errorf("err = %v", err)
	}
}

func TestSemaphore(t *testing.T) {
	e := newEngine(t, 2, "FCFS")
	sem := NewSemaphore("s", 2)
	inside, maxInside := 0, 0
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 6; i++ {
			kids = append(kids, th.Create("w", func(c *T) {
				c.SemWait(sem)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				c.Compute(500)
				c.Yield() // force interleaving inside the section
				inside--
				c.SemPost(sem)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if maxInside > 2 {
		t.Errorf("semaphore admitted %d threads, cap 2", maxInside)
	}
	if maxInside < 2 {
		t.Errorf("semaphore never reached its capacity (max %d)", maxInside)
	}
	if sem.Value() != 2 {
		t.Errorf("final value = %d", sem.Value())
	}
}

func TestBarrier(t *testing.T) {
	e := newEngine(t, 4, "FCFS")
	b := NewBarrier("b", 4)
	const rounds = 3
	counts := make([]int, rounds)
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 4; i++ {
			kids = append(kids, th.Create("p", func(c *T) {
				for r := 0; r < rounds; r++ {
					counts[r]++
					c.BarrierWait(b)
					// After the barrier, every party must have
					// contributed to this round.
					if counts[r] != 4 {
						panic("barrier released early")
					}
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	for r, c := range counts {
		if c != 4 {
			t.Errorf("round %d count = %d", r, c)
		}
	}
}

func TestCondVar(t *testing.T) {
	e := newEngine(t, 2, "FCFS")
	mu := NewMutex("m")
	cond := NewCond("c")
	queue := 0
	consumed := 0
	e.Spawn(func(th *T) {
		consumer := th.Create("consumer", func(c *T) {
			for consumed < 5 {
				c.Lock(mu)
				for queue == 0 {
					c.CondWait(cond, mu)
				}
				queue--
				consumed++
				c.Unlock(mu)
			}
		})
		producer := th.Create("producer", func(c *T) {
			for i := 0; i < 5; i++ {
				c.Lock(mu)
				queue++
				c.CondSignal(cond)
				c.Unlock(mu)
				c.Sleep(1000)
			}
		})
		th.Join(consumer)
		th.Join(producer)
	}, SpawnOpts{})
	mustRun(t, e)
	if consumed != 5 || queue != 0 {
		t.Errorf("consumed %d, queue %d", consumed, queue)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("m")
	cond := NewCond("c")
	released := 0
	go_ := false
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 3; i++ {
			kids = append(kids, th.Create("waiter", func(c *T) {
				c.Lock(mu)
				for !go_ {
					c.CondWait(cond, mu)
				}
				released++
				c.Unlock(mu)
			}))
		}
		th.Sleep(10000) // let the waiters block
		th.Lock(mu)
		go_ = true
		th.CondBroadcast(cond)
		th.Unlock(mu)
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if released != 3 {
		t.Errorf("released = %d, want 3", released)
	}
}

func TestCondWaitWithoutMutexFails(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("m")
	cond := NewCond("c")
	e.Spawn(func(th *T) { th.CondWait(cond, mu) }, SpawnOpts{})
	if err := e.Run(context.Background()); err == nil {
		t.Error("CondWait without mutex did not fail")
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	e.Spawn(func(th *T) {
		th.Sleep(1_000_000)
	}, SpawnOpts{})
	mustRun(t, e)
	if got := machineOf(e).CPU(0).Cycles; got < 1_000_000 {
		t.Errorf("clock after sleep = %d", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("m")
	e.Spawn(func(th *T) {
		th.Lock(mu)
		th.Lock(mu) // self-deadlock
	}, SpawnOpts{Name: "victim"})
	err := e.Run(context.Background())
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "victim") {
		t.Errorf("deadlock report does not name the thread: %v", err)
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	e.Spawn(func(th *T) { panic("boom") }, SpawnOpts{Name: "bomb"})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestYieldIsFairUnderFCFS(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	var order []int
	e.Spawn(func(th *T) {
		a := th.Create("a", func(c *T) {
			for i := 0; i < 3; i++ {
				order = append(order, 0)
				c.Yield()
			}
		})
		b := th.Create("b", func(c *T) {
			for i := 0; i < 3; i++ {
				order = append(order, 1)
				c.Yield()
			}
		})
		th.Join(a)
		th.Join(b)
	}, SpawnOpts{})
	mustRun(t, e)
	// FCFS with yields must alternate: 0 1 0 1 0 1.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("FCFS yield order not alternating: %v", order)
		}
	}
}

func TestShareBuildsGraph(t *testing.T) {
	e := newEngine(t, 1, "LFF")
	e.Spawn(func(th *T) {
		c := th.Create("c", func(*T) {})
		th.Share(c, th.ID(), 1.0)
		if got := e.Graph().Coefficient(c, th.ID()); got != 1.0 {
			panic("annotation not recorded")
		}
		th.Join(c)
	}, SpawnOpts{})
	mustRun(t, e)
	// After both exited the graph must be empty.
	if e.Graph().Edges() != 0 {
		t.Errorf("graph has %d edges after exit", e.Graph().Edges())
	}
}

func TestDisableAnnotations(t *testing.T) {
	m := machine.New(machine.UltraSPARC1())
	e, err := New(sim.New(m), Options{Policy: "LFF", DisableAnnotations: true, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Spawn(func(th *T) {
		c := th.Create("c", func(*T) {})
		th.Share(c, th.ID(), 1.0)
		if e.Graph().Edges() != 0 {
			panic("annotation recorded despite ablation")
		}
		th.Join(c)
	}, SpawnOpts{})
	mustRun(t, e)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(policy string) (uint64, uint64, uint64) {
		e := newEngine(t, 4, policy)
		e.Spawn(func(th *T) {
			var kids []mem.ThreadID
			for i := 0; i < 50; i++ {
				kids = append(kids, th.Create("w", func(c *T) {
					r := c.Alloc(8192)
					for j := 0; j < 5; j++ {
						c.ReadRange(r.Base, 8192)
						c.Sleep(uint64(1000 + c.Rand().Intn(1000)))
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		}, SpawnOpts{})
		mustRun(t, e)
		_, _, misses := machineOf(e).Totals()
		return misses, machineOf(e).MaxCycles(), machineOf(e).TotalInstrs()
	}
	for _, policy := range []string{"FCFS", "LFF", "CRT"} {
		m1, c1, i1 := run(policy)
		m2, c2, i2 := run(policy)
		if m1 != m2 || c1 != c2 || i1 != i2 {
			t.Errorf("%s nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", policy, m1, c1, i1, m2, c2, i2)
		}
	}
}

func TestMultiCPUParallelism(t *testing.T) {
	// Two CPU-bound threads on two CPUs should finish in about half the
	// serial time.
	serial := func(cpus int) uint64 {
		e := newEngine(t, cpus, "FCFS")
		e.Spawn(func(th *T) {
			a := th.Create("a", func(c *T) { c.Compute(1_000_000) })
			b := th.Create("b", func(c *T) { c.Compute(1_000_000) })
			th.Join(a)
			th.Join(b)
		}, SpawnOpts{})
		mustRun(t, e)
		return machineOf(e).MaxCycles()
	}
	t1, t2 := serial(1), serial(2)
	if t2 >= t1 {
		t.Errorf("2 CPUs (%d cycles) not faster than 1 (%d)", t2, t1)
	}
	if float64(t1)/float64(t2) < 1.8 {
		t.Errorf("speedup %v, want ~2", float64(t1)/float64(t2))
	}
}

func TestLocalityPolicyReducesMisses(t *testing.T) {
	// The core end-to-end claim on a miniature tasks benchmark: threads
	// with disjoint working sets, far more state than the cache, each
	// waking repeatedly. LFF must take substantially fewer E-misses
	// than FCFS.
	run := func(policy string) uint64 {
		cfg := machine.UltraSPARC1()
		cfg.L2.Size = 64 * 1024 // 1024 lines: holds ~5 of 40 footprints
		m := machine.New(cfg)
		e, err := New(sim.New(m), Options{Policy: policy, Seed: 7})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		e.Spawn(func(th *T) {
			var kids []mem.ThreadID
			for i := 0; i < 40; i++ {
				kids = append(kids, th.Create("task", func(c *T) {
					state := c.Alloc(200 * 64) // 200 lines
					for p := 0; p < 20; p++ {
						c.Touch(state)
						c.Sleep(3000)
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		}, SpawnOpts{})
		mustRun(t, e)
		_, _, misses := m.Totals()
		return misses
	}
	fcfs, lff := run("FCFS"), run("LFF")
	if lff >= fcfs {
		t.Fatalf("LFF misses %d >= FCFS %d", lff, fcfs)
	}
	if elim := 100 * float64(fcfs-lff) / float64(fcfs); elim < 30 {
		t.Errorf("LFF eliminated only %.1f%% of misses", elim)
	}
}

func TestNoGoroutineLeakAfterFailure(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("m")
	e.Spawn(func(th *T) {
		for i := 0; i < 10; i++ {
			th.Create("waiter", func(c *T) {
				c.Lock(mu)
			})
		}
		th.Lock(mu)
		// Exit while holding: the waiters deadlock.
	}, SpawnOpts{})
	err := e.Run(context.Background())
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	// killRemaining must have unwound the parked goroutines; nothing to
	// assert directly without runtime introspection, but a second Run
	// must not hang or double-kill.
	if e.live != 0 {
		t.Errorf("live = %d after teardown", e.live)
	}
}

func TestUnknownPolicyErrors(t *testing.T) {
	_, err := New(sim.New(machine.New(machine.UltraSPARC1())), Options{Policy: "WEIRD"})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "WEIRD") {
		t.Errorf("err = %v, want it to name the bad policy", err)
	}
}

func TestDispatchCounts(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	e.Spawn(func(th *T) {
		for i := 0; i < 5; i++ {
			th.Yield()
		}
	}, SpawnOpts{})
	mustRun(t, e)
	d := e.Dispatches()
	if d[0] < 6 { // initial dispatch + one per yield
		t.Errorf("dispatches = %v", d)
	}
}
