package rt

// The stall watchdog guards long unattended runs against silent
// livelock: a workload spinning through engine steps without ever
// reaching a scheduling point (a thread computing forever, a
// yield-storm that dispatches nobody new) makes wall-clock progress
// indistinguishable from useful work. The watchdog samples dispatch
// progress on a wall-clock ticker from its own goroutine; when a full
// deadline passes with no dispatch it raises a flag, and the engine
// loop — which keeps spinning in exactly the stalled scenarios the
// watchdog exists for — turns the flag into a diagnostic error: the
// per-CPU clocks and installed threads, every blocked thread with what
// it waits on, the runnable count, and quarantine state, plus a KStall
// event and an rt_stalls_total bump on the observer. Wall time never
// touches the simulation: the watchdog only reads the progress
// counter, so goldens are identical with it armed.
//
// Limitation, by design: a thread body stuck inside host code (an
// infinite Go loop that never issues an engine request) freezes the
// engine goroutine in the coroutine rendezvous, where no flag check
// runs. Only the step-spinning class of stalls is recoverable from
// inside the process; the chaos harness's external kill covers the
// rest.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
)

// watchdog watches a progress counter from a side goroutine.
type watchdog struct {
	timeout  time.Duration
	progress atomic.Uint64
	stalled  atomic.Bool
	done     chan struct{}
}

func newWatchdog(timeout time.Duration) *watchdog {
	return &watchdog{timeout: timeout, done: make(chan struct{})}
}

// start launches the sampling goroutine. A stall is declared when the
// progress counter stays unchanged across a full timeout window (so
// detection latency is between one and two timeouts).
func (w *watchdog) start() {
	go func() {
		tick := time.NewTicker(w.timeout)
		defer tick.Stop()
		last := w.progress.Load()
		for {
			select {
			case <-w.done:
				return
			case <-tick.C:
				cur := w.progress.Load()
				if cur == last {
					w.stalled.Store(true)
					return
				}
				last = cur
			}
		}
	}()
}

// stop terminates the sampling goroutine (idempotent per watchdog; the
// engine creates a fresh watchdog per Run).
func (w *watchdog) stop() { close(w.done) }

// noteProgress is bumped once per dispatch — the engine's definition
// of forward progress.
func (w *watchdog) noteProgress() { w.progress.Add(1) }

// tripped reports whether the deadline passed without progress.
// Nil-safe so the run loop pays one nil-check when the watchdog is
// off.
func (w *watchdog) tripped() bool { return w != nil && w.stalled.Load() }

// Heartbeat feeds the stall watchdog one unit of forward progress
// without dispatching anything. It exists for host callbacks — a
// session server's checkpoint gate — that intentionally park the
// engine inside OnCheckpoint for longer than the stall timeout: an
// idle gated session is waiting, not stalled, and must not trip the
// watchdog. Call it from the blocked callback at a period shorter
// than StallTimeout. Safe (and a no-op) when no watchdog is armed;
// wall time never feeds the simulation, so heartbeats cannot perturb
// a run.
func (e *Engine) Heartbeat() {
	if e.wd != nil {
		e.wd.noteProgress()
	}
}

// stallError emits the stall diagnostics on the observer and builds
// the descriptive error Run returns: a dump of exactly the state
// needed to see WHY nothing dispatches.
func (e *Engine) stallError() error {
	if e.om.stalls != nil {
		e.om.stalls.Inc(0)
	}
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{Time: e.now, Kind: obs.KStall, CPU: 0,
			Thread: obs.InvalidThread, A: e.totalDispatches(), B: e.steps})
	}
	var b strings.Builder
	for p := range e.cpus {
		state := "idle"
		if e.parked[p] {
			state = "parked"
		}
		if t := e.running[p]; t != nil {
			state = fmt.Sprintf("running %v(%s)", t.id, t.name)
		}
		if e.health.quarantined(p) {
			state += ", quarantined"
		}
		fmt.Fprintf(&b, "  cpu %d: clock %d, %s\n", p, e.cpus[p].Cycles(), state)
	}
	ids := make([]int, 0, len(e.threads))
	for id := range e.threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	blocked := 0
	for _, id := range ids {
		if t := e.threads[mem.ThreadID(id)]; t.status == statusBlocked {
			fmt.Fprintf(&b, "  %v(%s) blocked on %s\n", t.id, t.name, t.blockedOn)
			blocked++
		}
	}
	fmt.Fprintf(&b, "  %d live threads, %d blocked, %d runnable, %d timers pending",
		e.live, blocked, e.sched.RunnableCount(), e.timers.Len())
	return fmt.Errorf("rt: stalled: no dispatch in %v of wall time (step %d, cycle %d, %d dispatches so far); state:\n%s",
		e.opts.StallTimeout, e.steps, e.now, e.totalDispatches(), b.String())
}
