package rt

// Annotation-boundary validation: a malformed at_share reaching the
// engine fails the run with a descriptive error naming the offender,
// instead of feeding NaN/Inf into the footprint model or silently
// dropping the hint.

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestBadShareFailsRun(t *testing.T) {
	cases := []struct {
		name string
		q    float64
		self bool
		want string
	}{
		{"nan", math.NaN(), false, "non-finite"},
		{"inf", math.Inf(1), false, "non-finite"},
		{"negative", -0.5, false, "negative"},
		{"self", 0.5, true, "self-edge"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := newEngine(t, 1, "LFF")
			e.Spawn(func(th *T) {
				other := th.Create("other", func(o *T) { o.Compute(10) })
				if c.self {
					th.Share(other, other, c.q)
				} else {
					th.ShareWith(other, c.q)
				}
				th.Join(other)
			}, SpawnOpts{Name: "main"})
			err := e.Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want error containing %q", err, c.want)
			}
			if !strings.Contains(err.Error(), "main") {
				t.Errorf("error %q does not name the annotating thread", err)
			}
		})
	}
}

// TestValidShareStillWorks guards against the validator rejecting the
// paper's legitimate patterns: q of 0 (remove), q above 1 (lazy
// over-estimate, clamped), and annotations with DisableAnnotations on
// (validated, then ignored).
func TestValidShareStillWorks(t *testing.T) {
	for _, disable := range []bool{false, true} {
		e := newEngine(t, 1, "LFF")
		e.opts.DisableAnnotations = disable
		e.Spawn(func(th *T) {
			a := th.Create("a", func(o *T) { o.Compute(10) })
			b := th.Create("b", func(o *T) { o.Compute(10) })
			th.ShareWith(a, 2.0) // clamped, not an error
			th.Share(a, b, 0.5)
			th.Share(a, b, 0) // removes the edge
			th.Join(a)
			th.Join(b)
		}, SpawnOpts{Name: "main"})
		if err := e.Run(context.Background()); err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
	}
}
