package rt

// This file is the runtime's defence against untrusted performance
// counters. On real hardware the user-level PIC reads the paper relies
// on are fragile: counters wrap at whatever width the chip provides,
// multiplexing can steal them for whole intervals, reads can stall and
// return frozen values, and cross-CPU skew corrupts the cycle windows.
// One garbage interval fed raw into the footprint model poisons S and
// the inflated priorities forever, so every interval's reading passes
// through a sanitizer that (1) clamps impossible values, (2) classifies
// the reading OK / Suspect / Rejected, and (3) drives a per-CPU health
// state machine with hysteresis: after QuarantineAfter consecutive
// rejected readings the counter is quarantined — the scheduler degrades
// to the paper's annotation-free baseline on that CPU — and after
// RecoverAfter consecutive clean readings it is trusted again.
//
// On a healthy substrate (the sim backend, or a faulty backend with no
// faults configured) every reading classifies OK with its value
// unchanged, so the sanitizer is bit-transparent: golden fingerprints
// are identical with it in the loop. The differential test pins this.

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/stats"
)

// ReadingClass classifies one scheduling interval's counter reading.
type ReadingClass uint8

// Reading classifications, from trusted to untrusted.
const (
	// ReadingOK: the reading is plausible and used as-is.
	ReadingOK ReadingClass = iota
	// ReadingSuspect: the reading is odd (e.g. a frozen snapshot over
	// a long interval) but not provably wrong; it is used as-is and
	// counted, and it interrupts both the rejected and the clean
	// streaks of the health state machine.
	ReadingSuspect
	// ReadingRejected: the reading is impossible (negative miss count,
	// a miss rate beyond the per-cycle bound, a counter frozen past
	// the stuck window); the sanitized miss count is 0 — a rejected
	// reading carries no information — and the rejection streak grows.
	ReadingRejected
)

func (c ReadingClass) String() string {
	switch c {
	case ReadingOK:
		return "ok"
	case ReadingSuspect:
		return "suspect"
	case ReadingRejected:
		return "rejected"
	default:
		return fmt.Sprintf("ReadingClass(%d)", uint8(c))
	}
}

// HealthConfig tunes the counter sanitizer and the quarantine state
// machine. The zero value selects the defaults documented on each
// field.
type HealthConfig struct {
	// MaxMissesPerCycle is the plausibility bound on an interval's
	// miss rate: a cache miss costs at least one cycle, so a reading
	// claiming more than MaxMissesPerCycle × window misses is
	// physically impossible and is rejected. Default 1.0 (the loosest
	// physical bound; the simulated machines run well below it).
	MaxMissesPerCycle float64
	// StuckIntervals is the number of consecutive frozen counter
	// snapshots (no movement at all across an interval of at least
	// StuckMinCycles) before a stuck counter is declared and readings
	// become Rejected; shorter frozen runs are merely Suspect.
	// Default 8.
	StuckIntervals int
	// StuckMinCycles is the minimum interval length (in cycles) for a
	// frozen snapshot to count toward StuckIntervals — short compute
	// bursts legitimately touch no memory. Default 4096.
	StuckMinCycles uint64
	// QuarantineAfter is M: consecutive Rejected readings before the
	// CPU's counter enters quarantine. Default 4.
	QuarantineAfter int
	// RecoverAfter is K: consecutive OK readings, while quarantined,
	// before the counter is trusted again (hysteresis — one clean
	// probe proves nothing). Default 16.
	RecoverAfter int
}

// withDefaults fills zero fields with the documented defaults.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.MaxMissesPerCycle == 0 {
		c.MaxMissesPerCycle = 1.0
	}
	if c.StuckIntervals == 0 {
		c.StuckIntervals = 8
	}
	if c.StuckMinCycles == 0 {
		c.StuckMinCycles = 4096
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 4
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 16
	}
	return c
}

// validate rejects nonsensical configurations.
func (c HealthConfig) validate() error {
	if c.MaxMissesPerCycle < 0 {
		return fmt.Errorf("rt: negative MaxMissesPerCycle %v", c.MaxMissesPerCycle)
	}
	if c.StuckIntervals < 0 || c.QuarantineAfter < 0 || c.RecoverAfter < 0 {
		return fmt.Errorf("rt: negative health thresholds (stuck %d, quarantine %d, recover %d)",
			c.StuckIntervals, c.QuarantineAfter, c.RecoverAfter)
	}
	return nil
}

// healthTracker is the per-engine sanitizer state: one record per CPU.
type healthTracker struct {
	cfg  HealthConfig
	cpus []cpuHealth
}

// cpuHealth is one CPU's sanitizer state: the public accounting plus
// the frozen-snapshot window.
type cpuHealth struct {
	stats.CounterHealth
	frozen int // consecutive frozen snapshots (stuck-counter window)
}

// newHealthTracker builds a tracker for ncpu processors.
func newHealthTracker(cfg HealthConfig, ncpu int) *healthTracker {
	h := &healthTracker{cfg: cfg.withDefaults(), cpus: make([]cpuHealth, ncpu)}
	for i := range h.cpus {
		h.cpus[i].CPU = i
	}
	return h
}

// sanitize validates one interval's counter reading on cpu: start and
// end are the wrapped PIC snapshots at the interval's ends and cycles
// is the interval's cycle window. It returns the miss count the
// scheduler should consume — the raw modular delta when the reading is
// trustworthy, a clamped value otherwise — and the classification, and
// it advances the CPU's health state machine.
func (h *healthTracker) sanitize(cpu int, start, end platform.CounterSnapshot, cycles uint64) (uint64, ReadingClass) {
	c := &h.cpus[cpu]
	refs := uint64(end.Refs - start.Refs)
	hits := uint64(end.Hits - start.Hits)

	n := uint64(0)
	class := ReadingOK
	if hits > refs {
		// Negative miss count: impossible unless the counters were
		// reprogrammed or corrupted mid-interval. Clamp to zero.
		class = ReadingRejected
	} else {
		n = refs - hits
		// Physical rate bound: a miss occupies the processor for at
		// least a cycle, so n beyond the bound means the counter
		// wrapped at an unexpected width or the read was corrupted.
		if float64(n) > h.cfg.MaxMissesPerCycle*float64(cycles) {
			class = ReadingRejected
		}
	}

	// Stuck-counter window: a snapshot that does not move at all over
	// a long interval is suspicious; one that stays frozen for
	// StuckIntervals such intervals in a row is a dead counter.
	if end == start && cycles >= h.cfg.StuckMinCycles {
		c.frozen++
		if c.frozen >= h.cfg.StuckIntervals {
			class = ReadingRejected
		} else if class == ReadingOK {
			class = ReadingSuspect
		}
	} else if end != start {
		c.frozen = 0
	}

	if class == ReadingRejected {
		// A rejected reading carries no information: the scheduler
		// sees zero interval misses (footprints neither grow nor take
		// a poisoned hit; processor-count decay still applies).
		n = 0
	}
	h.transition(c, class)
	return n, class
}

// transition advances one CPU's state machine for a classified reading.
func (h *healthTracker) transition(c *cpuHealth, class ReadingClass) {
	switch class {
	case ReadingOK:
		c.OK++
		c.StreakRejected = 0
		c.StreakClean++
		if c.Quarantined && c.StreakClean >= h.cfg.RecoverAfter {
			c.Quarantined = false
			c.Recoveries++
			c.StreakClean = 0
		}
	case ReadingSuspect:
		c.Suspect++
		c.StreakRejected = 0
		c.StreakClean = 0
	case ReadingRejected:
		c.Rejected++
		c.StreakClean = 0
		c.StreakRejected++
		if !c.Quarantined && c.StreakRejected >= h.cfg.QuarantineAfter {
			c.Quarantined = true
			c.Quarantines++
			c.StreakRejected = 0
		}
	}
}

// quarantined reports cpu's current quarantine state.
func (h *healthTracker) quarantined(cpu int) bool { return h.cpus[cpu].Quarantined }

// snapshot copies the public per-CPU health records.
func (h *healthTracker) snapshot() []stats.CounterHealth {
	out := make([]stats.CounterHealth, len(h.cpus))
	for i := range h.cpus {
		out[i] = h.cpus[i].CounterHealth
	}
	return out
}
