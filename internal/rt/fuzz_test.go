package rt

import (
	"encoding/binary"
	"testing"

	"repro/internal/platform"
)

// FuzzSanitizeStream feeds arbitrary byte streams to the counter
// sanitizer as a sequence of (refs, hits, cycles) interval readings on
// one CPU. Whatever garbage the instrumentation produces, the sanitizer
// must never panic, must zero every rejected reading, must agree with
// the modular delta on every accepted one, and must keep its accounting
// consistent with the number of readings fed.
func FuzzSanitizeStream(f *testing.F) {
	// Seeds: a clean stream, a counter wrap, a negative delta, an
	// impossible rate, and a frozen counter.
	clean := make([]byte, 0, 36)
	for _, w := range []uint32{1000, 600, 5000, 2000, 1100, 5000, 3000, 1500, 5000} {
		clean = binary.LittleEndian.AppendUint32(clean, w)
	}
	f.Add(clean)
	f.Add(binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(
			binary.LittleEndian.AppendUint32(nil, 0xffffff00), 50), 4096))
	f.Add(binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(
			binary.LittleEndian.AppendUint32(nil, 10), 20000), 100))
	f.Add(binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(
			binary.LittleEndian.AppendUint32(nil, 0xf0000000), 0), 3))
	frozen := make([]byte, 0, 120)
	for i := 0; i < 10; i++ {
		for _, w := range []uint32{500, 100, 9000} {
			frozen = binary.LittleEndian.AppendUint32(frozen, w)
		}
	}
	f.Add(frozen)

	f.Fuzz(func(t *testing.T, data []byte) {
		h := newHealthTracker(HealthConfig{}, 1)
		prev := platform.CounterSnapshot{}
		readings := uint64(0)
		for len(data) >= 12 {
			cur := platform.CounterSnapshot{
				Refs: binary.LittleEndian.Uint32(data[0:4]),
				Hits: binary.LittleEndian.Uint32(data[4:8]),
			}
			cycles := uint64(binary.LittleEndian.Uint32(data[8:12]))
			data = data[12:]

			n, class := h.sanitize(0, prev, cur, cycles)
			switch class {
			case ReadingOK, ReadingSuspect:
				if want := platform.MissesSince(cur, prev); n != want {
					t.Fatalf("accepted reading altered: n=%d, modular delta %d", n, want)
				}
				if float64(n) > float64(cycles) {
					t.Fatalf("accepted n=%d beyond the rate bound for %d cycles", n, cycles)
				}
			case ReadingRejected:
				if n != 0 {
					t.Fatalf("rejected reading leaked n=%d", n)
				}
			default:
				t.Fatalf("impossible classification %v", class)
			}
			prev = cur
			readings++
		}
		hs := h.snapshot()[0]
		if hs.Total() != readings {
			t.Fatalf("accounting lost readings: %d classified, %d fed", hs.Total(), readings)
		}
		if hs.Quarantined != h.quarantined(0) {
			t.Fatal("snapshot and quarantined() disagree")
		}
		if hs.Quarantined && hs.Quarantines == 0 {
			t.Fatal("quarantined with no recorded transition")
		}
	})
}
