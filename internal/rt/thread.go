package rt

import (
	"repro/internal/mem"
	"repro/internal/xrand"
)

// status is the engine's view of a thread's lifecycle.
type status int

const (
	statusReady status = iota
	statusRunning
	statusBlocked
	statusDead
)

func (s status) String() string {
	switch s {
	case statusReady:
		return "ready"
	case statusRunning:
		return "running"
	case statusBlocked:
		return "blocked"
	default:
		return "dead"
	}
}

// reqKind enumerates the services a thread can request from the engine.
type reqKind int

const (
	reqAccess reqKind = iota
	reqCompute
	reqShare
	reqAlloc
	reqCreate
	reqYield
	reqSleep
	reqJoin
	reqExit
	reqPanic
	reqLock
	reqUnlock
	reqSemWait
	reqSemPost
	reqBarrier
	reqCondWait
	reqCondSignal
	reqCondBroadcast
)

// request carries one thread-to-engine call. A single request value per
// thread is reused for every call; only the engine reads it, and only
// while the thread is parked.
type request struct {
	kind  reqKind
	batch mem.Batch
	n     uint64
	tid   mem.ThreadID
	body  func(*T)
	name  string
	code  mem.Range
	from  mem.ThreadID
	to    mem.ThreadID
	q     float64
	size  uint64
	align uint64
	mu    *Mutex
	sem   *Semaphore
	bar   *Barrier
	cond  *Cond
	err   any
}

// response carries engine-to-thread results, delivered on resume.
type response struct {
	tid mem.ThreadID
	r   mem.Range
}

// killedSentinel unwinds a thread goroutine during engine teardown.
type killedSentinel struct{}

// accessBufferCap bounds the number of buffered accesses before an
// automatic flush — one engine rendezvous per this many access
// descriptors.
const accessBufferCap = 512

// T is the thread handle passed to every thread body: the Active
// Threads API surface. All methods must be called from the thread's own
// body function (they synchronize with the engine); the zero value is
// not usable.
type T struct {
	id   mem.ThreadID
	name string
	eng  *Engine
	body func(*T)
	code mem.Range

	toThread chan struct{}
	toEngine chan struct{}
	req      request
	resp     response
	die      bool

	status status
	cpu    int
	// blockedOn names what a blocked thread is waiting for (deadlock
	// diagnostics).
	blockedOn string
	joiners   []*T
	rng       *xrand.Source
	// retryLock is set while the thread has been woken to re-attempt a
	// mutex acquisition (barging semantics; see Engine.unlock).
	retryLock *Mutex
	// cycles/dispatchClock/dispatchCount implement per-thread CPU-time
	// accounting (see Engine.ThreadTimes).
	cycles        uint64
	dispatchClock uint64
	dispatchCount uint64
	// dispatchMisses is the processor's 64-bit miss count at the last
	// NoteDispatch — the decay reference the interval record carries.
	dispatchMisses uint64
	// readyClock is the virtual clock at which the thread last became
	// runnable — the reference for the observability layer's dispatch
	// latency.
	readyClock uint64

	pending mem.Batch // buffered accesses, flushed lazily
}

// run is the thread goroutine: wait for first dispatch, execute the
// body, convert its completion (or panic) into a final request.
func (t *T) run() {
	<-t.toThread
	if t.die {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, killed := r.(killedSentinel); killed {
				return
			}
			t.req = request{kind: reqPanic, err: r}
			t.toEngine <- struct{}{}
			return
		}
		// Normal completion. The final flush is itself a rendezvous, so
		// a teardown kill can land inside it; swallow only the kill.
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killedSentinel); !killed {
					panic(r) // user panic: re-raise for the engine to report
				}
			}
		}()
		t.flush()
		t.req = request{kind: reqExit}
		t.toEngine <- struct{}{}
	}()
	t.body(t)
}

// call hands the prepared request to the engine and parks until
// resumed.
func (t *T) call() {
	t.toEngine <- struct{}{}
	<-t.toThread
	if t.die {
		// Teardown: unwind this coroutine; recovered by the body wrapper.
		panic(killedSentinel{})
	}
}

// resume restarts the parked thread and waits for its next request.
// Called only by the engine.
func (t *T) resume() *request {
	t.toThread <- struct{}{}
	<-t.toEngine
	return &t.req
}

// kill unwinds a parked (or not-yet-started) thread goroutine. Called
// only by the engine during teardown.
func (t *T) kill() {
	t.die = true
	t.toThread <- struct{}{}
}

// ID returns the thread's identifier (at_self in Active Threads).
func (t *T) ID() mem.ThreadID { return t.id }

// Name returns the thread's diagnostic label.
func (t *T) Name() string { return t.name }

// Rand returns the thread's private deterministic random stream.
func (t *T) Rand() *xrand.Source { return t.rng }

// Now returns the current cycle count of the thread's processor, after
// flushing any buffered accesses so the reading reflects them. Reading
// the clock is free (the real runtime reads the TICK register).
func (t *T) Now() uint64 {
	t.flush()
	return t.eng.cpus[t.cpu].Cycles()
}

// flush sends any buffered accesses to the machine.
func (t *T) flush() {
	if len(t.pending) == 0 {
		return
	}
	t.req = request{kind: reqAccess, batch: t.pending}
	t.call()
	t.pending = t.pending[:0]
}

// Access queues one access descriptor; descriptors are applied in order
// and flushed automatically (or at the next scheduling point).
func (t *T) Access(a mem.Access) {
	if a.Count <= 0 {
		return
	}
	t.pending = append(t.pending, a)
	if len(t.pending) >= accessBufferCap {
		t.flush()
	}
}

// ReadRange reads [base, base+n) sequentially in 8-byte words.
func (t *T) ReadRange(base mem.Addr, n uint64) { t.Access(mem.ReadRange(base, int64(n))) }

// WriteRange writes [base, base+n) sequentially in 8-byte words.
func (t *T) WriteRange(base mem.Addr, n uint64) { t.Access(mem.WriteRange(base, int64(n))) }

// Read performs count 8-byte reads starting at base with the given byte
// stride.
func (t *T) Read(base mem.Addr, count, stride int32) { t.Access(mem.Read(base, count, stride, 8)) }

// Write performs count 8-byte writes starting at base with the given
// byte stride.
func (t *T) Write(base mem.Addr, count, stride int32) { t.Access(mem.Write(base, count, stride, 8)) }

// Touch reads one word from each cache line of r — the cheapest way for
// a thread to establish a region in its working set.
func (t *T) Touch(r mem.Range) {
	lineSize := int32(t.eng.plat.LineBytes())
	lines := int32(r.Lines(uint64(lineSize)))
	t.Access(mem.Access{Base: r.Base, Count: lines, Stride: lineSize, Size: 8})
}

// Compute charges n instructions of pure computation (no memory
// traffic beyond what the caches already hold).
func (t *T) Compute(n uint64) {
	if n == 0 {
		return
	}
	t.flush()
	t.req = request{kind: reqCompute, n: n}
	t.call()
}

// Alloc reserves size bytes of simulated address space (line-aligned).
func (t *T) Alloc(size uint64) mem.Range { return t.AllocAligned(size, 0) }

// AllocAligned reserves size bytes with the given alignment.
func (t *T) AllocAligned(size, align uint64) mem.Range {
	t.flush()
	t.req = request{kind: reqAlloc, size: size, align: align}
	t.call()
	return t.resp.r
}

// Share records the at_share(from, to, q) annotation: a fraction q of
// thread from's state is shared with thread to. Annotations are hints;
// they never affect program correctness.
func (t *T) Share(from, to mem.ThreadID, q float64) {
	t.flush()
	t.req = request{kind: reqShare, from: from, to: to, q: q}
	t.call()
}

// ShareWith annotates that a fraction q of t's own state is shared with
// thread other (at_share(self, other, q)).
func (t *T) ShareWith(other mem.ThreadID, q float64) { t.Share(t.id, other, q) }

// Create spawns a child thread running body (at_create). The child
// becomes runnable immediately; the parent continues without a
// scheduling point, exactly as in Active Threads.
func (t *T) Create(name string, body func(*T)) mem.ThreadID {
	return t.CreateOpts(name, body, SpawnOpts{})
}

// CreateOpts spawns a child with explicit options.
func (t *T) CreateOpts(name string, body func(*T), opts SpawnOpts) mem.ThreadID {
	t.flush()
	code := opts.Code
	if code.Len == 0 {
		code = t.code // children inherit the parent's text by default
	}
	t.req = request{kind: reqCreate, body: body, name: name, code: code}
	t.call()
	return t.resp.tid
}

// Yield releases the processor voluntarily; the thread stays runnable.
func (t *T) Yield() {
	t.flush()
	t.req = request{kind: reqYield}
	t.call()
}

// Sleep blocks the thread for the given number of cycles.
func (t *T) Sleep(cycles uint64) {
	t.flush()
	t.req = request{kind: reqSleep, n: cycles}
	t.call()
}

// Join blocks until the target thread exits. Joining an already-exited
// (or never-existing) thread returns immediately; joining yourself is a
// programming error that aborts the run.
func (t *T) Join(tid mem.ThreadID) {
	t.flush()
	t.req = request{kind: reqJoin, tid: tid}
	t.call()
}

// Lock acquires mu, blocking while another thread holds it. Waiters are
// served FIFO.
func (t *T) Lock(mu *Mutex) {
	t.flush()
	t.req = request{kind: reqLock, mu: mu}
	t.call()
}

// Unlock releases mu. Unlocking a mutex the thread does not hold is a
// programming error that aborts the run.
func (t *T) Unlock(mu *Mutex) {
	t.flush()
	t.req = request{kind: reqUnlock, mu: mu}
	t.call()
}

// SemWait performs P(sem), blocking while the count is zero.
func (t *T) SemWait(sem *Semaphore) {
	t.flush()
	t.req = request{kind: reqSemWait, sem: sem}
	t.call()
}

// SemPost performs V(sem), waking the oldest waiter if any.
func (t *T) SemPost(sem *Semaphore) {
	t.flush()
	t.req = request{kind: reqSemPost, sem: sem}
	t.call()
}

// BarrierWait blocks until all parties have arrived at the barrier; the
// barrier then resets for reuse.
func (t *T) BarrierWait(b *Barrier) {
	t.flush()
	t.req = request{kind: reqBarrier, bar: b}
	t.call()
}

// CondWait atomically releases mu and blocks on c; on wakeup the thread
// again holds mu.
func (t *T) CondWait(c *Cond, mu *Mutex) {
	t.flush()
	t.req = request{kind: reqCondWait, cond: c, mu: mu}
	t.call()
}

// CondSignal wakes the oldest waiter on c, if any.
func (t *T) CondSignal(c *Cond) {
	t.flush()
	t.req = request{kind: reqCondSignal, cond: c}
	t.call()
}

// CondBroadcast wakes every waiter on c.
func (t *T) CondBroadcast(c *Cond) {
	t.flush()
	t.req = request{kind: reqCondBroadcast, cond: c}
	t.call()
}
