package rt

// Stall watchdog tests: a workload spinning through engine steps
// without ever dispatching is detected within roughly two timeout
// windows and aborted with a diagnostic dump, while a healthy run is
// never disturbed by an armed watchdog.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/snapshot"
)

func TestWatchdogCatchesStepSpin(t *testing.T) {
	o := obs.New(1, obs.Options{Level: obs.Trace})
	e, err := New(sim.New(machine.New(machine.UltraSPARC1())),
		Options{Policy: "FCFS", Seed: 1, StallTimeout: 25 * time.Millisecond, Obs: o})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Spawn(func(th *T) {
		// A thread computing forever: the engine keeps stepping it (so
		// MaxSteps is the only other way out, at 4e9 steps) but never
		// dispatches anything again after the first install.
		for {
			th.Compute(1)
		}
	}, SpawnOpts{Name: "spinner"})
	// A blocked bystander so the diagnostic dump has someone to list.
	e.Spawn(func(th *T) { th.Sleep(1 << 40) }, SpawnOpts{Name: "sleeper"})

	err = e.Run(context.Background())
	if err == nil {
		t.Fatal("run of an infinite spinner returned nil")
	}
	msg := err.Error()
	for _, want := range []string{"rt: stalled", "no dispatch", "running", "blocked", "timers pending"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stall error %q lacks %q", msg, want)
		}
	}
	// The abort is observable: the metric bumped and the event traced.
	var stalls uint64
	for _, c := range o.Registry().Snapshot().Counters {
		if c.Name == "rt_stalls_total" {
			for _, v := range c.PerCPU {
				stalls += v
			}
		}
	}
	if stalls != 1 {
		t.Errorf("rt_stalls_total = %d, want 1", stalls)
	}
	found := false
	for _, ev := range o.Ring(0).Events() {
		if ev.Kind == obs.KStall {
			found = true
		}
	}
	if !found {
		t.Error("no KStall event recorded")
	}
	// The partial state of the aborted run is still snapshottable.
	if st := e.CaptureState(); st == nil || st.Steps == 0 {
		t.Error("aborted run not capturable")
	}
}

func TestWatchdogSilentOnHealthyRun(t *testing.T) {
	e, err := New(sim.New(machine.New(machine.Enterprise5000(2))),
		Options{Policy: "LFF", Seed: 42, StallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ckptWorkload(e)
	mustRun(t, e)

	// And the armed watchdog changed nothing: wall time never touches
	// the simulation.
	bare, err := New(sim.New(machine.New(machine.Enterprise5000(2))),
		Options{Policy: "LFF", Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ckptWorkload(bare)
	mustRun(t, bare)
	if err := snapshot.Diff(bare.CaptureState(), e.CaptureState()); err != nil {
		t.Errorf("watchdog perturbed the run: %v", err)
	}
}

func TestNegativeStallTimeoutRejected(t *testing.T) {
	_, err := New(sim.New(machine.New(machine.UltraSPARC1())),
		Options{StallTimeout: -time.Second})
	if err == nil || !strings.Contains(err.Error(), "negative stall timeout") {
		t.Fatalf("err = %v", err)
	}
}
