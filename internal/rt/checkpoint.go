package rt

// Crash safety. A checkpoint is a complete bit-exact capture of the
// engine's state at a virtual-cycle boundary — thread table, scheduler
// footprints and queues, sharing graph, sanitizer state, per-CPU
// clocks/counters/timers, RNG streams, and an obs digest — written
// atomically to disk on a fixed virtual-cycle schedule.
//
// Resume works by verified deterministic fast-forward. Thread bodies
// live on Go goroutine stacks, which cannot be serialized; what CAN be
// relied on is that the engine is a sequential deterministic
// simulation, so re-executing the same workload reproduces the same
// state. A resumed engine therefore runs the workload from step 0
// with checkpoint writing suppressed; when it reaches the snapshot's
// step cursor it captures its live state and compares it against the
// stored capture field by field, bit for bit. A match proves the
// resumed run IS the interrupted run — every subsequent golden, trace
// and export is byte-identical to an uninterrupted run's by
// construction — and checkpoint writing then continues on the
// original boundary schedule. Any divergence (different binary, flags,
// seed, or a corrupted file that still passed its CRC) aborts with a
// field-level diff instead of silently producing different results.
// The capture itself is read-only, so enabling checkpoints never
// perturbs a run: goldens with and without -checkpoint-every are
// identical, which is also what makes the fast-forward exact.

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/snapshot"
)

// CheckpointConfig wires crash-safe checkpointing into an engine.
type CheckpointConfig struct {
	// Every is the checkpoint interval in virtual cycles; 0 disables
	// checkpoint writing (a Resume-only engine verifies and continues
	// without writing new checkpoints unless the snapshot carries an
	// interval and a destination is set).
	Every uint64
	// Path is the snapshot file, rewritten atomically at every
	// boundary (a kill at any instant leaves the previous complete
	// snapshot or the new one).
	Path string
	// Config is the runner-level run configuration (app, scale, fault
	// spec, ...), recorded in every snapshot and compared on resume so
	// a snapshot cannot be applied to a differently-configured run.
	// Order is irrelevant; the engine canonicalizes by key.
	Config []snapshot.KV
	// Resume is a previously written snapshot to resume from. The
	// engine re-executes deterministically to the snapshot's step
	// cursor, verifies bit-exact agreement, and continues.
	Resume *snapshot.State
	// OnCheckpoint, when non-nil, observes every checkpoint capture
	// after it is written (the soak harness prints boundary markers
	// from it). Returning an error aborts the run. It must not call
	// back into the engine.
	OnCheckpoint func(*snapshot.State) error
}

// ckptState is the engine's internal checkpoint cursor.
type ckptState struct {
	every   uint64
	next    uint64
	path    string
	config  []snapshot.KV
	onWrite func(*snapshot.State) error
	// resume holds the snapshot awaiting fast-forward verification;
	// nil once verified (or when not resuming). While non-nil no
	// checkpoint is written: the boundaries being replayed were
	// already written by the interrupted run.
	resume *snapshot.State
}

// initCheckpoint validates cfg against the engine under construction
// and installs the cursor. Called from New after the scheduler exists
// (the policy name check needs it).
func (e *Engine) initCheckpoint(cfg CheckpointConfig) error {
	c := ckptState{
		every:   cfg.Every,
		path:    cfg.Path,
		onWrite: cfg.OnCheckpoint,
		resume:  cfg.Resume,
		config:  append([]snapshot.KV(nil), cfg.Config...),
	}
	sort.Slice(c.config, func(i, j int) bool { return c.config[i].K < c.config[j].K })
	hasDest := c.path != "" || c.onWrite != nil
	if r := cfg.Resume; r != nil {
		if cfg.Every != 0 && cfg.Every != r.CheckpointEvery {
			return fmt.Errorf("rt: resume with checkpoint interval %d, but the snapshot was written every %d cycles — the boundary schedules would diverge", cfg.Every, r.CheckpointEvery)
		}
		if c.every == 0 && hasDest {
			c.every = r.CheckpointEvery
		}
		if got, want := e.sched.PolicyName(), r.Policy; got != want {
			return fmt.Errorf("rt: resume snapshot is for policy %q, engine runs %q", want, got)
		}
		if got, want := len(e.cpus), int(r.NCPU); got != want {
			return fmt.Errorf("rt: resume snapshot is for %d CPUs, platform has %d", want, got)
		}
		if got, want := int64(e.plat.CacheLines()), r.CacheLines; got != want {
			return fmt.Errorf("rt: resume snapshot is for a %d-line cache, platform has %d", want, got)
		}
		if got, want := e.opts.Seed, r.Seed; got != want {
			return fmt.Errorf("rt: resume snapshot was seeded %d, engine is seeded %d", want, got)
		}
		if err := sameConfig(r.Config, c.config); err != nil {
			return err
		}
		c.next = r.NextCheckpoint
	} else {
		c.next = c.every // first boundary one interval in
	}
	if c.every > 0 && !hasDest {
		return fmt.Errorf("rt: checkpointing every %d cycles with neither a path nor an OnCheckpoint callback", c.every)
	}
	e.ckpt = c
	return nil
}

// sameConfig compares two sorted KV listings and names the first
// mismatched key.
func sameConfig(stored, live []snapshot.KV) error {
	for i := 0; i < len(stored) || i < len(live); i++ {
		var s, l snapshot.KV
		if i < len(stored) {
			s = stored[i]
		}
		if i < len(live) {
			l = live[i]
		}
		if s != l {
			return fmt.Errorf("rt: resume snapshot was written under config %s=%q, this run has %s=%q", s.K, s.V, l.K, l.V)
		}
	}
	return nil
}

// Resuming reports whether the engine is still fast-forwarding toward
// an unverified resume snapshot.
func (e *Engine) Resuming() bool { return e.ckpt.resume != nil }

// CaptureState captures the engine's complete state as a snapshot. It
// is strictly read-only — capturing never perturbs the run — and valid
// at any engine-loop boundary, including after a cancelled run (the
// partial state of an interrupted run is itself snapshottable).
func (e *Engine) CaptureState() *snapshot.State {
	st := &snapshot.State{
		Config:          append([]snapshot.KV(nil), e.ckpt.config...),
		Policy:          e.sched.PolicyName(),
		NCPU:            int32(len(e.cpus)),
		CacheLines:      int64(e.plat.CacheLines()),
		Seed:            e.opts.Seed,
		CheckpointEvery: e.ckpt.every,
		NextCheckpoint:  e.ckpt.next,
		Steps:           e.steps,
		Now:             e.now,
		NextID:          int64(e.nextID),
		Live:            int32(e.live),
		TimerSeq:        e.timerSeq,
		EngineRNG:       e.rng.State(),
		Sched:           e.sched.ExportState(),
		ObsDigest:       e.obs.StateDigest(),
	}
	for p, cpu := range e.cpus {
		snap := cpu.ReadCounters()
		c := snapshot.CPUState{
			Clock: cpu.Cycles(), Misses: cpu.Misses(),
			Refs: snap.Refs, Hits: snap.Hits,
			BaseRefs: e.picBase[p].Refs, BaseHits: e.picBase[p].Hits,
			Idle: e.idleCycles[p], Dispatches: e.dispatches[p],
			Parked: e.parked[p], Running: -1,
		}
		if t := e.running[p]; t != nil {
			c.Running = int64(t.id)
		}
		st.CPUs = append(st.CPUs, c)
	}
	for _, tm := range e.timers {
		st.Timers = append(st.Timers, snapshot.TimerState{
			WakeAt: tm.wakeAt, Seq: tm.seq, Thread: int64(tm.tid),
		})
	}
	ids := make([]int, 0, len(e.threads))
	for id := range e.threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.threads[mem.ThreadID(id)]
		ts := snapshot.ThreadState{
			ID: int64(t.id), Name: t.name, Status: uint8(t.status),
			BlockedOn: t.blockedOn, CPU: int32(t.cpu), Cycles: t.cycles,
			DispatchClock: t.dispatchClock, DispatchCount: t.dispatchCount,
			DispatchMisses: t.dispatchMisses, ReadyClock: t.readyClock,
			RNG: t.rng.State(),
		}
		for _, j := range t.joiners {
			ts.Joiners = append(ts.Joiners, int64(j.id))
		}
		st.Threads = append(st.Threads, ts)
	}
	for _, edge := range e.graph.Export() {
		st.Graph = append(st.Graph, snapshot.GraphEdge{
			From: int64(edge.From), To: int64(edge.To), Q: edge.Q,
		})
	}
	for i := range e.health.cpus {
		h := &e.health.cpus[i]
		st.Health = append(st.Health, snapshot.HealthState{
			OK: h.OK, Suspect: h.Suspect, Rejected: h.Rejected,
			Quarantines: h.Quarantines, Recoveries: h.Recoveries,
			StreakRejected: int64(h.StreakRejected), StreakClean: int64(h.StreakClean),
			Frozen: int64(h.frozen), Quarantined: h.Quarantined,
		})
	}
	if e.mdl != nil {
		st.ModelFLOPs = e.mdl.FLOPs()
	}
	return st
}

// writeCheckpoint advances the boundary cursor and writes the capture.
// Called from the run loop when e.now crosses the pending boundary.
// The cursor moves first so the stored NextCheckpoint names the
// boundary a resumed run must write next.
func (e *Engine) writeCheckpoint() error {
	e.ckpt.next = (e.now/e.ckpt.every + 1) * e.ckpt.every
	st := e.CaptureState()
	if e.ckpt.path != "" {
		if err := st.WriteFile(e.ckpt.path); err != nil {
			return fmt.Errorf("rt: checkpoint at cycle %d: %w", e.now, err)
		}
	}
	if e.ckpt.onWrite != nil {
		if err := e.ckpt.onWrite(st); err != nil {
			return fmt.Errorf("rt: checkpoint callback at cycle %d: %w", e.now, err)
		}
	}
	return nil
}

// verifyResume compares the live fast-forwarded state against the
// resume snapshot at its step cursor. On a match the engine leaves
// fast-forward mode and checkpoint writing resumes on the stored
// boundary schedule.
func (e *Engine) verifyResume() error {
	stored := e.ckpt.resume
	live := e.CaptureState()
	// The boundary schedule is metadata of the *writing* run, not
	// simulation state: a verify-only resume (no destination, Every 0)
	// must still match a snapshot written with checkpointing on.
	live.CheckpointEvery = stored.CheckpointEvery
	live.NextCheckpoint = stored.NextCheckpoint
	if err := snapshot.Diff(stored, live); err != nil {
		return fmt.Errorf("rt: resume verification failed at step %d (cycle %d): the re-executed run diverged from the snapshot — different binary, workload, flags, or a corrupted snapshot: %w",
			e.steps, e.now, err)
	}
	e.ckpt.resume = nil
	return nil
}
