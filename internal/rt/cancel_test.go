package rt

// Context cancellation tests: Run observes a cancelled context within
// one scheduling interval (every dispatch re-checks, plus the
// periodic step check), and the partial state of a cancelled run is
// still snapshottable — the property checkpointing and the soak
// harness's kill-anywhere recovery rest on.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform/sim"
)

func TestCancelObservedAtDispatch(t *testing.T) {
	e, err := New(sim.New(machine.New(machine.Enterprise5000(2))),
		Options{Policy: "LFF", Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dispatched := 0
	e.Spawn(func(th *T) {
		for i := 0; i < 64; i++ {
			k := th.Create("w", func(c *T) {
				dispatched++
				cancel() // first worker to run pulls the plug
				c.Compute(100)
			})
			th.Join(k)
		}
	}, SpawnOpts{Name: "main"})

	err = e.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error %q does not say the run was cancelled", err)
	}
	// The cancel was seen promptly: after the worker that called
	// cancel, at most a handful of threads (already mid-flight on the
	// other CPU, or released by the 1024-step fallback) ran — not the
	// remaining dozens.
	if dispatched > 4 {
		t.Errorf("%d workers ran after cancellation, want prompt stop", dispatched)
	}

	// The interrupted run's partial state still captures cleanly.
	st := e.CaptureState()
	if st.Steps == 0 {
		t.Errorf("partial capture implausible: steps=%d", st.Steps)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Errorf("partial capture does not encode: %v", err)
	}
}

func TestCancelBeforeRun(t *testing.T) {
	e, err := New(sim.New(machine.New(machine.UltraSPARC1())),
		Options{Policy: "FCFS", Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ran := false
	e.Spawn(func(th *T) {
		for i := 0; i < 100000; i++ {
			th.Compute(10)
			th.Yield()
		}
		ran = true
	}, SpawnOpts{Name: "w"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("workload ran to completion under a pre-cancelled context")
	}
}
