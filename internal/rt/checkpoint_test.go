package rt

// Tests for crash-safe checkpoint/restore: capture purity (enabling
// checkpoints never changes a run), the kill-resume differential
// (resuming from any checkpoint reproduces the uninterrupted run bit
// for bit, including telemetry and under injected counter faults), and
// the descriptive rejection of snapshots that do not belong to the
// run being resumed.

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/platform/faulty"
	"repro/internal/platform/sim"
	"repro/internal/snapshot"
)

// ckptWorkload spawns a deterministic multi-thread program exercising
// dispatch, blocking (locks, sleeps, joins), annotations, and enough
// virtual time to cross many checkpoint boundaries.
func ckptWorkload(e *Engine) {
	mu := NewMutex("m")
	worker := func(th *T) {
		r := th.Alloc(8192)
		for i := 0; i < 6; i++ {
			th.ReadRange(r.Base, 8192)
			th.Lock(mu)
			th.Compute(700)
			th.Unlock(mu)
			th.Yield()
		}
	}
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 6; i++ {
			kids = append(kids, th.Create("w", worker))
		}
		th.Share(kids[0], kids[1], 0.5)
		th.ShareWith(kids[2], 0.25)
		th.Sleep(3000)
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{Name: "main"})
}

// ckptEngine builds a 2-CPU engine with the given extra options
// applied on top of the workload's fixed policy and seed.
func ckptEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	return ckptEngineOn(t, sim.New(machine.New(machine.Enterprise5000(2))), opts)
}

func ckptEngineOn(t *testing.T, p platform.Platform, opts Options) *Engine {
	t.Helper()
	opts.Policy = "LFF"
	opts.Seed = 42
	e, err := New(p, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ckptWorkload(e)
	return e
}

func TestCheckpointCaptureIsPure(t *testing.T) {
	bare := ckptEngine(t, Options{})
	mustRun(t, bare)

	var n int
	ck := ckptEngine(t, Options{Checkpoint: CheckpointConfig{
		Every: 5000,
		OnCheckpoint: func(*snapshot.State) error {
			n++
			return nil
		},
	}})
	mustRun(t, ck)
	if n < 3 {
		t.Fatalf("only %d checkpoints; the workload is too short to test anything", n)
	}

	a, b := bare.Snapshot(), ck.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("checkpointing perturbed the run:\nbare: %+v\nckpt: %+v", a, b)
	}
	// The full captures agree too, once the writer-schedule metadata
	// (the only intended difference) is masked off.
	sa, sb := bare.CaptureState(), ck.CaptureState()
	sa.CheckpointEvery, sa.NextCheckpoint = sb.CheckpointEvery, sb.NextCheckpoint
	if err := snapshot.Diff(sa, sb); err != nil {
		t.Errorf("final captures diverge: %v", err)
	}
}

// runStraight runs a fresh engine to completion collecting every
// checkpoint, and returns the stored states plus the final capture.
func runStraight(t *testing.T, build func(Options) *Engine, every uint64) ([]*snapshot.State, *snapshot.State) {
	t.Helper()
	var states []*snapshot.State
	e := build(Options{Checkpoint: CheckpointConfig{
		Every: every,
		OnCheckpoint: func(st *snapshot.State) error {
			states = append(states, st)
			return nil
		},
	}})
	mustRun(t, e)
	if len(states) < 3 {
		t.Fatalf("only %d checkpoints written", len(states))
	}
	return states, e.CaptureState()
}

// resumeFrom re-executes the same workload from the stored snapshot
// and returns the checkpoints written after the resume point plus the
// final capture.
func resumeFrom(t *testing.T, build func(Options) *Engine, st *snapshot.State) ([]*snapshot.State, *snapshot.State) {
	t.Helper()
	var states []*snapshot.State
	e := build(Options{Checkpoint: CheckpointConfig{
		Resume: st,
		OnCheckpoint: func(s *snapshot.State) error {
			states = append(states, s)
			return nil
		},
	}})
	if !e.Resuming() {
		t.Fatal("engine not in fast-forward mode before Run")
	}
	mustRun(t, e)
	if e.Resuming() {
		t.Fatal("resume never verified")
	}
	return states, e.CaptureState()
}

// TestKillResumeByteIdentical is the core differential: a run killed
// at any checkpoint and resumed from the stored snapshot produces the
// same remaining checkpoints and the same final state, bit for bit,
// as the uninterrupted run.
func TestKillResumeByteIdentical(t *testing.T) {
	build := func(opts Options) *Engine { return ckptEngine(t, opts) }
	states, final := runStraight(t, build, 5000)

	for _, k := range []int{0, len(states) / 2, len(states) - 1} {
		rest, rfinal := resumeFrom(t, build, states[k])
		if want := states[k+1:]; len(rest) != len(want) {
			t.Fatalf("resume from #%d: %d later checkpoints, straight run wrote %d", k, len(rest), len(want))
		} else {
			for i := range rest {
				if !snapshot.Equal(rest[i], want[i]) {
					t.Errorf("resume from #%d: checkpoint %d diverges: %v",
						k, k+1+i, snapshot.Diff(want[i], rest[i]))
				}
			}
		}
		if !snapshot.Equal(final, rfinal) {
			t.Errorf("resume from #%d: final state diverges: %v", k, snapshot.Diff(final, rfinal))
		}
	}
}

// TestKillResumeWithObservability repeats the differential with full
// tracing and metrics attached: the resumed run's recorded telemetry
// digests identically, so exports are byte-identical too.
func TestKillResumeWithObservability(t *testing.T) {
	var straightObs, resumedObs *obs.Observer
	straight := func(opts Options) *Engine {
		straightObs = obs.New(2, obs.Options{Level: obs.Trace})
		opts.Obs = straightObs
		return ckptEngine(t, opts)
	}
	states, final := runStraight(t, straight, 5000)

	resumed := func(opts Options) *Engine {
		resumedObs = obs.New(2, obs.Options{Level: obs.Trace})
		opts.Obs = resumedObs
		return ckptEngine(t, opts)
	}
	_, rfinal := resumeFrom(t, resumed, states[1])
	if !snapshot.Equal(final, rfinal) {
		t.Fatalf("final state diverges: %v", snapshot.Diff(final, rfinal))
	}
	if a, b := straightObs.StateDigest(), resumedObs.StateDigest(); a != b {
		t.Errorf("telemetry digests diverge: straight %#x, resumed %#x", a, b)
	}
}

// TestKillResumeUnderFaults repeats the differential on the fault
// injection platform: corrupted counters are part of the simulated
// machine, so they replay deterministically too.
func TestKillResumeUnderFaults(t *testing.T) {
	cfg, err := faulty.ParseSpec("stuck=100@1000,spike=4096@3000,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts Options) *Engine {
		f, err := faulty.New(sim.New(machine.New(machine.Enterprise5000(2))), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ckptEngineOn(t, f, opts)
	}
	states, final := runStraight(t, build, 5000)
	_, rfinal := resumeFrom(t, build, states[len(states)/2])
	if !snapshot.Equal(final, rfinal) {
		t.Errorf("final state under faults diverges: %v", snapshot.Diff(final, rfinal))
	}
}

// TestCheckpointFileRoundTrip drives the on-disk path: checkpoints
// land in a file, the file loads, and the loaded snapshot resumes.
func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.snap")
	e := ckptEngine(t, Options{Checkpoint: CheckpointConfig{Every: 5000, Path: path}})
	mustRun(t, e)
	final := e.CaptureState()

	st, err := snapshot.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	// The file holds the LAST checkpoint; resuming it (verify-only, no
	// new destination) must converge on the same final state.
	r := ckptEngine(t, Options{Checkpoint: CheckpointConfig{Resume: st}})
	mustRun(t, r)
	rfinal := r.CaptureState()
	final.CheckpointEvery, final.NextCheckpoint = rfinal.CheckpointEvery, rfinal.NextCheckpoint
	if err := snapshot.Diff(final, rfinal); err != nil {
		t.Errorf("resume from file diverges: %v", err)
	}
}

// TestResumeRejectsForeignSnapshots pins the descriptive errors for
// snapshots that do not belong to the engine being built.
func TestResumeRejectsForeignSnapshots(t *testing.T) {
	var states []*snapshot.State
	e := ckptEngine(t, Options{Checkpoint: CheckpointConfig{
		Every:  5000,
		Config: []snapshot.KV{{K: "app", V: "ckpt-test"}},
		OnCheckpoint: func(st *snapshot.State) error {
			states = append(states, st)
			return nil
		},
	}})
	mustRun(t, e)
	st := states[0]

	newWith := func(opts Options) error {
		if opts.Policy == "" {
			opts.Policy = "LFF"
		}
		opts.Seed = 42
		_, err := New(sim.New(machine.New(machine.Enterprise5000(2))), opts)
		return err
	}
	// Wrong seed.
	{
		o := Options{Checkpoint: CheckpointConfig{Resume: st, Config: st.Config}}
		o.Policy = "LFF"
		o.Seed = 99
		_, err := New(sim.New(machine.New(machine.Enterprise5000(2))), o)
		if err == nil || !strings.Contains(err.Error(), "seeded") {
			t.Errorf("wrong seed: err = %v", err)
		}
	}
	// Wrong policy.
	if err := newWith(Options{Policy: "FCFS", Checkpoint: CheckpointConfig{Resume: st, Config: st.Config}}); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Errorf("wrong policy: err = %v", err)
	}
	// Wrong CPU count.
	{
		o := Options{Policy: "LFF", Seed: 42, Checkpoint: CheckpointConfig{Resume: st, Config: st.Config}}
		_, err := New(sim.New(machine.New(machine.Enterprise5000(4))), o)
		if err == nil || !strings.Contains(err.Error(), "CPUs") {
			t.Errorf("wrong ncpu: err = %v", err)
		}
	}
	// Wrong run config.
	if err := newWith(Options{Checkpoint: CheckpointConfig{Resume: st, Config: []snapshot.KV{{K: "app", V: "other"}}}}); err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("wrong config: err = %v", err)
	}
	// Conflicting interval.
	if err := newWith(Options{Checkpoint: CheckpointConfig{Resume: st, Config: st.Config, Every: 1234, OnCheckpoint: func(*snapshot.State) error { return nil }}}); err == nil || !strings.Contains(err.Error(), "interval") {
		t.Errorf("conflicting interval: err = %v", err)
	}
	// Checkpointing with nowhere to write.
	if err := newWith(Options{Checkpoint: CheckpointConfig{Every: 100}}); err == nil || !strings.Contains(err.Error(), "neither a path nor") {
		t.Errorf("no destination: err = %v", err)
	}
}

// TestResumeDetectsDivergence corrupts a stored snapshot in a way
// that survives the CRC (we mutate the in-memory state) and checks
// the fast-forward verification catches it with a field-level diff.
func TestResumeDetectsDivergence(t *testing.T) {
	build := func(opts Options) *Engine { return ckptEngine(t, opts) }
	states, _ := runStraight(t, build, 5000)

	bad := *states[1]
	bad.Now++ // pretend the snapshot was taken one cycle later
	e := build(Options{Checkpoint: CheckpointConfig{Resume: &bad}})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "resume verification failed") {
		t.Fatalf("err = %v, want resume verification failure", err)
	}
}

// TestResumeCursorNeverReached: a snapshot claiming more steps than
// the workload has is reported, not silently ignored.
func TestResumeCursorNeverReached(t *testing.T) {
	build := func(opts Options) *Engine { return ckptEngine(t, opts) }
	states, _ := runStraight(t, build, 5000)

	bad := *states[0]
	bad.Steps = 1 << 40
	e := build(Options{Checkpoint: CheckpointConfig{Resume: &bad}})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "step cursor") {
		t.Fatalf("err = %v, want step-cursor error", err)
	}
}
