package rt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform/sim"
)

// TestMutexBarging: a running thread grabs a freed lock ahead of a
// woken waiter; the waiter re-blocks and still eventually acquires
// (no lost wakeups, no starvation in a finite program).
func TestMutexBarging(t *testing.T) {
	e := newEngine(t, 2, "FCFS")
	mu := NewMutex("m")
	acquisitions := 0
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 6; i++ {
			kids = append(kids, th.Create("w", func(c *T) {
				for r := 0; r < 10; r++ {
					c.Lock(mu)
					acquisitions++
					c.Compute(200)
					c.Unlock(mu)
					c.Compute(100)
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if acquisitions != 60 {
		t.Errorf("acquisitions = %d, want 60", acquisitions)
	}
	if mu.Locked() {
		t.Error("mutex left held")
	}
}

// TestRetryLockReblock drives the dispatch-time re-block path: with
// heavy contention on a short critical section, some woken waiters must
// find the lock barged and re-block without running.
func TestRetryLockReblock(t *testing.T) {
	e := newEngine(t, 4, "LFF")
	mu := NewMutex("hot")
	counter := 0
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		for i := 0; i < 16; i++ {
			kids = append(kids, th.Create("w", func(c *T) {
				for r := 0; r < 25; r++ {
					c.Lock(mu)
					counter++
					c.Unlock(mu)
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if counter != 400 {
		t.Errorf("critical sections = %d, want 400", counter)
	}
}

// TestFairnessLimitViaOptions: with a fairness limit, a cold compute
// thread completes even while hot cache-heavy threads keep the heap
// busy.
func TestFairnessLimitViaOptions(t *testing.T) {
	m := machine.New(machine.UltraSPARC1())
	e, err := New(sim.New(m), Options{Policy: "LFF", Seed: 1, FairnessLimit: 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	coldRan := false
	e.Spawn(func(th *T) {
		state := th.Alloc(4096 * 64)
		hot := th.Create("hot", func(c *T) {
			for i := 0; i < 50; i++ {
				c.Touch(state)
				c.Yield()
			}
		})
		cold := th.Create("cold", func(c *T) {
			c.Compute(10)
			coldRan = true
		})
		th.Join(cold)
		th.Join(hot)
	}, SpawnOpts{})
	mustRun(t, e)
	if !coldRan {
		t.Fatal("cold thread never ran")
	}
}

// TestInferSharingBuildsGraph: with inference on and no annotations,
// co-accessing threads end up connected in the dependency graph.
func TestInferSharingBuildsGraph(t *testing.T) {
	// FCFS so the yielding readers alternate (LFF would rightly run
	// the hot reader to completion); the subject here is the monitor.
	m := machine.New(machine.UltraSPARC1())
	e, err := New(sim.New(m), Options{Policy: "FCFS", Seed: 1, DisableAnnotations: true, InferSharing: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sawEdge := false
	e.Spawn(func(th *T) {
		// Larger than the E-cache, so both readers keep missing on the
		// shared pages — the monitor only sees misses, like the CML.
		shared := th.Alloc(2 << 20)
		var kids []mem.ThreadID
		for i := 0; i < 2; i++ {
			kids = append(kids, th.Create("reader", func(c *T) {
				for r := 0; r < 4; r++ {
					c.ReadRange(shared.Base, shared.Len)
					c.Yield()
				}
				// By now both readers have missed on the same pages.
				if e.Monitor().Coefficient(kids[0], kids[1]) > 0.3 ||
					e.Monitor().Coefficient(kids[1], kids[0]) > 0.3 {
					sawEdge = true
				}
			}))
		}
		th.Join(kids[0])
		th.Join(kids[1])
	}, SpawnOpts{})
	mustRun(t, e)
	if !sawEdge {
		t.Error("inference never connected the co-accessing readers")
	}
	if e.Monitor().Touches() == 0 {
		t.Error("monitor saw no misses")
	}
}

// TestMonitorNilWithoutOption: inference off means no monitor and no
// per-miss hook cost.
func TestMonitorNilWithoutOption(t *testing.T) {
	e := newEngine(t, 1, "LFF")
	if e.Monitor() != nil {
		t.Error("monitor exists without InferSharing")
	}
}

// TestSemaphoreAsJoinCounter: the common completion-semaphore idiom.
func TestSemaphoreAsJoinCounter(t *testing.T) {
	e := newEngine(t, 4, "FCFS")
	done := NewSemaphore("done", 0)
	e.Spawn(func(th *T) {
		const n = 20
		for i := 0; i < n; i++ {
			th.Create("w", func(c *T) {
				c.Compute(100)
				c.SemPost(done)
			})
		}
		for i := 0; i < n; i++ {
			th.SemWait(done)
		}
	}, SpawnOpts{})
	mustRun(t, e)
}

// TestTimersFireInOrder: staggered sleepers wake in deadline order even
// when enqueued out of order.
func TestTimersFireInOrder(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	var order []int
	e.Spawn(func(th *T) {
		var kids []mem.ThreadID
		delays := []uint64{50_000, 10_000, 30_000}
		for i, d := range delays {
			i, d := i, d
			kids = append(kids, th.Create("sleeper", func(c *T) {
				c.Sleep(d)
				order = append(order, i)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("wake order = %v, want [1 2 3] by deadline", order)
	}
}

// TestZeroLengthOpsAreNoops: degenerate arguments must not wedge the
// engine.
func TestZeroLengthOpsAreNoops(t *testing.T) {
	e := newEngine(t, 1, "LFF")
	e.Spawn(func(th *T) {
		th.Compute(0)
		th.ReadRange(0x1000, 0)
		th.Access(mem.Access{})
		th.Touch(mem.Range{})
		th.Sleep(0)
	}, SpawnOpts{})
	mustRun(t, e)
}

// TestCreateInsideDeepNesting: thread-creating threads several levels
// deep (the merge/tsp shape) with joins at every level.
func TestCreateInsideDeepNesting(t *testing.T) {
	e := newEngine(t, 2, "CRT")
	leaves := 0
	var spawn func(c *T, depth int)
	spawn = func(c *T, depth int) {
		if depth == 0 {
			leaves++
			return
		}
		a := c.Create("n", func(c2 *T) { spawn(c2, depth-1) })
		b := c.Create("n", func(c2 *T) { spawn(c2, depth-1) })
		c.Join(a)
		c.Join(b)
	}
	e.Spawn(func(th *T) { spawn(th, 5) }, SpawnOpts{})
	mustRun(t, e)
	if leaves != 32 {
		t.Errorf("leaves = %d, want 32", leaves)
	}
}

func TestThreadTimes(t *testing.T) {
	e := newEngine(t, 2, "FCFS")
	e.Spawn(func(th *T) {
		big := th.Create("big", func(c *T) { c.Compute(500_000) })
		small := th.Create("small", func(c *T) { c.Compute(5_000) })
		th.Join(big)
		th.Join(small)
	}, SpawnOpts{Name: "main"})
	mustRun(t, e)
	times := e.ThreadTimes()
	if len(times) != 3 {
		t.Fatalf("threads = %d", len(times))
	}
	if times[0].Name != "big" {
		t.Errorf("top consumer = %s, want big", times[0].Name)
	}
	var big, small uint64
	for _, tt := range times {
		if tt.Dispatches == 0 {
			t.Errorf("%s never dispatched", tt.Name)
		}
		switch tt.Name {
		case "big":
			big = tt.Cycles
		case "small":
			small = tt.Cycles
		}
	}
	if big < 90*small {
		t.Errorf("big (%d) not ~100x small (%d)", big, small)
	}
}

func TestMaxStepsWatchdog(t *testing.T) {
	m := machine.New(machine.UltraSPARC1())
	e, err := New(sim.New(m), Options{Policy: "FCFS", Seed: 1, MaxSteps: 500})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Spawn(func(th *T) {
		for { // spins forever: the watchdog must abort the run
			th.Yield()
		}
	}, SpawnOpts{Name: "spinner"})
	err = e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("watchdog err = %v", err)
	}
}

func TestSignalNoWaitersIsNoop(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	c := NewCond("c")
	sem := NewSemaphore("s", 0)
	e.Spawn(func(th *T) {
		th.CondSignal(c)
		th.CondBroadcast(c)
		th.SemPost(sem)
		th.SemWait(sem) // consumes the post
	}, SpawnOpts{})
	mustRun(t, e)
}

func TestBarrierSingleParty(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	b := NewBarrier("solo", 1)
	rounds := 0
	e.Spawn(func(th *T) {
		for i := 0; i < 5; i++ {
			th.BarrierWait(b) // sole party: never blocks
			rounds++
		}
	}, SpawnOpts{})
	mustRun(t, e)
	if rounds != 5 {
		t.Errorf("rounds = %d", rounds)
	}
}

func TestDeadlockNamesTheResource(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	mu := NewMutex("hotlock")
	e.Spawn(func(th *T) {
		th.Lock(mu)
		th.Lock(mu)
	}, SpawnOpts{Name: "victim"})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "mutex hotlock") {
		t.Errorf("deadlock report lacks the resource: %v", err)
	}
}

func TestDeadlockNamesBarrierProgress(t *testing.T) {
	e := newEngine(t, 1, "FCFS")
	b := NewBarrier("phase", 3)
	e.Spawn(func(th *T) {
		a := th.Create("a", func(c *T) { c.BarrierWait(b) })
		th.Join(a) // only 1 of 3 parties ever arrives
	}, SpawnOpts{Name: "main"})
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "barrier phase (1/3 arrived)") {
		t.Errorf("deadlock report lacks barrier progress: %v", err)
	}
}
