// Package rt is the reproduction's Active Threads runtime: a
// deterministic green-thread system running over a platform backend
// (internal/platform — the simulated SMP of internal/machine via
// platform/sim, or any other substrate exposing per-CPU clocks and
// miss counters), scheduled by the locality framework of
// internal/sched.
//
// Simulated threads are ordinary Go functions executed on goroutines,
// but the goroutines are used strictly as coroutines: exactly one
// simulated thread runs at a time, hand-off is a synchronous channel
// rendezvous, and every scheduling decision is made by this engine —
// never by the Go scheduler (the reproduction hint warns that the
// goroutine scheduler is opaque; here it has no influence at all).
// Running any program twice produces identical cycle counts, miss
// counts and schedules.
//
// The engine is a sequential discrete-event simulation with one cycle
// clock per CPU: it always advances the CPU with the smallest clock, so
// cross-CPU event ordering is conservative and total.
package rt

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/annot"
	"repro/internal/inference"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Options configures an engine.
type Options struct {
	// Policy selects the scheduling policy: "FCFS", "LFF", "CRT", or
	// any scheme added with model.RegisterScheme. Empty means FCFS.
	Policy string
	// ThresholdLines is the footprint below which a heap entry is
	// demoted (default 16 lines).
	ThresholdLines float64
	// DisableAnnotations makes Share a no-op — the paper's ablation of
	// user annotations (Section 5: photo/LFF without annotations).
	DisableAnnotations bool
	// SpawnStacks places freshly created threads on per-CPU LIFO spawn
	// stacks stolen oldest-first (Blumofe-Leiserson work-first), a
	// design ablation; the default keeps the paper's global FIFO.
	SpawnStacks bool
	// FairnessLimit bounds starvation: a runnable thread waiting in
	// the global queue longer than this many dispatches bypasses the
	// locality heaps (the Section 7 escape mechanism). Zero disables
	// fairness, the paper's default domain.
	FairnessLimit uint64
	// KeepInferenceHistory prevents the inference monitor from
	// forgetting exited threads, so a profiling run's full co-access
	// evidence can be harvested afterwards (the paper's "repeated
	// trial runs" alternative). Requires InferSharing.
	KeepInferenceHistory bool
	// InferSharing turns on runtime sharing inference (the paper's
	// Section 7 future work): a software Cache Miss Lookaside buffer
	// watches page-granularity miss co-access and synthesizes
	// at_share coefficients with no user annotations. Usually combined
	// with DisableAnnotations to schedule unannotated programs.
	InferSharing bool
	// DefaultCodeBytes is the size of the shared default code region a
	// thread's dispatch touches (default 2048).
	DefaultCodeBytes uint64
	// Overhead configures the cycle and memory cost of the scheduler
	// itself.
	Overhead OverheadConfig
	// Health tunes the counter-reading sanitizer and the quarantine
	// state machine (see HealthConfig). The zero value selects the
	// documented defaults; the sanitizer is always on, and is
	// bit-transparent on healthy counters.
	Health HealthConfig
	// Obs attaches an observability observer (internal/obs): event
	// tracing and metrics for this engine. Nil means off; the engine
	// then pays one nil-check per emission site and nothing else, and
	// — because every recorded value derives from virtual clocks and
	// counters the engine already computes — an attached observer
	// never perturbs the simulation itself (the golden tests pin
	// this).
	Obs *obs.Observer
	// Seed fixes the engine's pseudo-randomness (per-thread RNG
	// streams).
	Seed uint64
	// MaxSteps aborts runs that exceed this many engine steps (safety
	// valve for buggy workloads; 0 means 4e9).
	MaxSteps uint64
	// Checkpoint enables crash-safe checkpoint/resume (see
	// CheckpointConfig and checkpoint.go). The zero value disables it.
	Checkpoint CheckpointConfig
	// StallTimeout arms the stall watchdog: a run making no dispatch
	// progress for this much wall time aborts with a diagnostic state
	// dump instead of spinning forever (see watchdog.go). Zero
	// disables it. Wall time never feeds the simulation, so goldens
	// are unaffected.
	StallTimeout time.Duration
}

// Engine runs threads on a platform backend.
type Engine struct {
	plat platform.Platform
	// cpus caches the per-CPU handles (Platform.CPU returns stable
	// handles; caching keeps clock reads off the hot path's map/bounds
	// checks).
	cpus  []platform.CPU
	mdl   *model.Model
	graph *annot.Graph
	sched *sched.Scheduler
	opts  Options

	threads map[mem.ThreadID]*T
	nextID  mem.ThreadID
	live    int

	running []*T
	parked  []bool
	// clockHeap orders unparked CPUs by (clock, ID) so nextCPU is
	// O(log n) instead of a linear scan — the scan is invisible at 8
	// CPUs but dominates the pick at 256. Entries re-key lazily: the
	// stepped CPU's entry goes stale when its clock advances and is
	// sifted back into place on the next pick. inClockHeap caps the
	// heap at one entry per CPU across park/unpark cycles.
	clockHeap   []cpuClockEnt
	inClockHeap []bool
	// idleCycles accumulates, per CPU, clock advanced while parked —
	// the utilization accounting behind Stats.
	idleCycles []uint64
	picBase    []platform.CounterSnapshot
	// dispatches counts context switches per CPU (diagnostics).
	dispatches []uint64

	timers   timerQueue
	timerSeq uint64

	overhead overheadState
	rng      *xrand.Source
	monitor  *inference.Monitor
	// obs is the attached observer (nil = off); om caches its metric
	// handles so instrumented paths cost one nil-check when disabled
	// and one atomic add when enabled — never a registry lookup.
	obs *obs.Observer
	om  obsHandles
	// health sanitizes every interval's counter reading and tracks
	// per-CPU quarantine state (see health.go).
	health *healthTracker
	// ckpt is the checkpoint cursor (see checkpoint.go); wd is the
	// stall watchdog, created per Run when StallTimeout is set.
	ckpt ckptState
	wd   *watchdog

	defaultCode mem.Range
	steps       uint64
	// now is the clock of the CPU currently being processed; it is the
	// engine's notion of global time (nondecreasing because the engine
	// always processes the minimum-clock CPU).
	now     uint64
	failure error

	// OnDispatch, when non-nil, observes every context switch (after
	// the thread is installed). For tests and diagnostics only; it
	// must not call back into the engine.
	OnDispatch func(cpu int, tid mem.ThreadID, name string)
	// OnEvent, when non-nil, observes the scheduling-relevant event
	// stream — thread spawns and exits, sharing-graph writes, and one
	// interval record per context switch. trace.Recorder consumes it to
	// capture runs for the replay backend. It must not call back into
	// the engine.
	OnEvent func(ev trace.Event)
}

// debugPark is a test/diagnostic hook observing park decisions.
var debugPark func(cpu, spawn0 int)

// SetDebugPark installs the park hook (diagnostics only).
func SetDebugPark(fn func(cpu, spawn0 int)) { debugPark = fn }

// ErrDeadlock is returned by Run when live threads remain but none can
// ever become runnable again.
var ErrDeadlock = errors.New("rt: deadlock: blocked threads with no wake source")

// New builds an engine over a platform backend. It returns an error —
// not a panic — for user-reachable configuration mistakes: an unknown
// policy name, a negative threshold, or a platform whose geometry the
// model cannot host.
func New(p platform.Platform, opts Options) (*Engine, error) {
	if opts.Policy == "" {
		opts.Policy = "FCFS"
	}
	if opts.ThresholdLines == 0 {
		opts.ThresholdLines = 16
	}
	if opts.ThresholdLines < 0 {
		return nil, fmt.Errorf("rt: negative demotion threshold %v", opts.ThresholdLines)
	}
	if opts.DefaultCodeBytes == 0 {
		opts.DefaultCodeBytes = 2048
	}
	opts.Overhead = opts.Overhead.withDefaults()
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 4e9
	}
	if opts.KeepInferenceHistory && !opts.InferSharing {
		return nil, fmt.Errorf("rt: KeepInferenceHistory requires InferSharing")
	}
	if err := opts.Health.validate(); err != nil {
		return nil, err
	}
	scheme, err := model.SchemeFor(opts.Policy)
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	ncpu := p.NCPU()
	if ncpu < 1 {
		return nil, fmt.Errorf("rt: platform reports %d CPUs", ncpu)
	}
	if scheme != nil && p.CacheLines() < 2 {
		return nil, fmt.Errorf("rt: platform cache of %d lines cannot host the footprint model", p.CacheLines())
	}
	e := &Engine{
		plat:       p,
		graph:      annot.New(),
		opts:       opts,
		threads:    make(map[mem.ThreadID]*T),
		running:    make([]*T, ncpu),
		parked:     make([]bool, ncpu),
		idleCycles: make([]uint64, ncpu),
		picBase:    make([]platform.CounterSnapshot, ncpu),
		dispatches: make([]uint64, ncpu),
		rng:        xrand.New(opts.Seed ^ 0x7d3),
		health:     newHealthTracker(opts.Health, ncpu),
	}
	for i := 0; i < ncpu; i++ {
		e.cpus = append(e.cpus, p.CPU(i))
	}
	if scheme != nil {
		e.mdl = model.New(p.CacheLines())
	}
	e.sched = sched.New(e.mdl, scheme, e.graph, ncpu, opts.ThresholdLines,
		platform.MissCounterOf(p))
	e.sched.SetSharedClock(p.SharedLLC())
	e.sched.SetFairnessLimit(opts.FairnessLimit)
	e.sched.SetSpawnStacks(opts.SpawnStacks)
	e.obs = opts.Obs
	e.om.init(e.obs)
	e.sched.SetObserver(e.obs, func(cpu int) uint64 { return e.cpus[cpu].Cycles() })
	if opts.StallTimeout < 0 {
		return nil, fmt.Errorf("rt: negative stall timeout %v", opts.StallTimeout)
	}
	if err := e.initCheckpoint(opts.Checkpoint); err != nil {
		return nil, err
	}
	e.overhead.init(p, opts.Overhead)
	e.defaultCode = p.Alloc(opts.DefaultCodeBytes, 64)
	if opts.InferSharing {
		e.monitor = inference.NewMonitor(p.PageBytes())
		p.SetMissHook(e.monitor.Touch)
	}
	return e, nil
}

// Monitor returns the sharing-inference monitor, or nil when inference
// is off.
func (e *Engine) Monitor() *inference.Monitor { return e.monitor }

// Platform returns the engine's platform backend.
func (e *Engine) Platform() platform.Platform { return e.plat }

// Scheduler exposes the scheduler (stats, diagnostics).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Graph exposes the shared-state dependency graph.
func (e *Engine) Graph() *annot.Graph { return e.graph }

// Observer returns the attached observability observer, or nil.
func (e *Engine) Observer() *obs.Observer { return e.obs }

// IdleCycles returns the per-CPU cycles spent parked with nothing to
// run.
//
// Deprecated: use Snapshot, which returns every accounting view in one
// consistent copy. Kept for compatibility.
func (e *Engine) IdleCycles() []uint64 { return append([]uint64(nil), e.idleCycles...) }

// Dispatches returns the per-CPU context-switch counts.
//
// Deprecated: use Snapshot. Kept for compatibility.
func (e *Engine) Dispatches() []uint64 { return append([]uint64(nil), e.dispatches...) }

// CounterHealth returns the per-CPU counter-health accounting: how
// every interval reading was classified and every quarantine/recovery
// transition. On a healthy substrate every reading is OK and no CPU is
// ever quarantined.
//
// Deprecated: use Snapshot. Kept for compatibility.
func (e *Engine) CounterHealth() []stats.CounterHealth { return e.health.snapshot() }

// totalDispatches sums the per-CPU dispatch counts.
func (e *Engine) totalDispatches() uint64 {
	var n uint64
	for _, d := range e.dispatches {
		n += d
	}
	return n
}

// SpawnOpts configures thread creation.
type SpawnOpts struct {
	// Name labels the thread in diagnostics.
	Name string
	// Code is the thread's code region; the zero Range means the
	// engine-wide shared default region (threads running the same
	// function share text).
	Code mem.Range
}

// Spawn creates a thread executing body and makes it runnable. It may
// be called before Run (to seed the program) or from inside thread
// bodies via T.Create.
func (e *Engine) Spawn(body func(*T), opts SpawnOpts) mem.ThreadID {
	t := e.newThread(body, opts)
	e.sched.Register(t.id)
	if e.OnEvent != nil {
		e.OnEvent(trace.Event{Kind: trace.EvSpawn, Thread: t.id})
	}
	e.noteSpawned(t, e.now, 0)
	e.sched.MakeRunnable(t.id)
	e.unparkAll(e.now)
	return t.id
}

// noteSpawned stamps a fresh thread's ready clock and records its spawn
// on the trace (cpu is the ring the event lands in: the creator for
// T.Create, CPU 0 for pre-run Spawn).
func (e *Engine) noteSpawned(t *T, now uint64, cpu int) {
	t.readyClock = now
	if e.obs.Tracing() {
		e.obs.NameThread(t.id, t.name)
		e.obs.Emit(obs.Event{Time: now, Kind: obs.KSpawn, CPU: int16(cpu), Thread: t.id,
			A: uint64(len(e.graph.OutEdges(t.id)))})
	}
}

func (e *Engine) newThread(body func(*T), opts SpawnOpts) *T {
	id := e.nextID
	e.nextID++
	code := opts.Code
	if code.Len == 0 {
		code = e.defaultCode
	}
	t := &T{
		id:       id,
		name:     opts.Name,
		eng:      e,
		body:     body,
		code:     code,
		toThread: make(chan struct{}),
		toEngine: make(chan struct{}),
		rng:      xrand.New(e.opts.Seed ^ (0x9e1 * (uint64(id) + 1))),
		status:   statusReady,
	}
	e.threads[id] = t
	e.live++
	go t.run()
	return t
}

// Run drives the simulation until every thread has exited. It returns
// ErrDeadlock if blocked threads remain with nothing to wake them, the
// recovered error if a thread body panicked, or the context's error if
// ctx is cancelled mid-run (checked at every dispatch and every few
// thousand steps, so cancellation is observed within one scheduling
// interval while the hot loop stays branch-cheap). With checkpointing
// configured it writes a snapshot whenever the virtual clock crosses a
// boundary, and with a resume snapshot it first fast-forwards to the
// snapshot's step cursor and verifies bit-exact agreement (see
// checkpoint.go). With a stall watchdog armed it aborts with a
// diagnostic state dump when no dispatch happens for StallTimeout of
// wall time.
func (e *Engine) Run(ctx context.Context) error {
	defer e.killRemaining()
	if e.opts.StallTimeout > 0 {
		e.wd = newWatchdog(e.opts.StallTimeout)
		e.wd.start()
		defer e.wd.stop()
	}
	for e.live > 0 {
		if e.failure != nil {
			return e.failure
		}
		if e.wd.tripped() {
			return e.stallError()
		}
		if e.ckpt.resume != nil && e.steps == e.ckpt.resume.Steps {
			if err := e.verifyResume(); err != nil {
				return err
			}
		}
		if e.ckpt.every > 0 && e.ckpt.resume == nil && e.now >= e.ckpt.next {
			if err := e.writeCheckpoint(); err != nil {
				return err
			}
		}
		e.steps++
		if e.steps > e.opts.MaxSteps {
			return fmt.Errorf("rt: exceeded %d engine steps (runaway workload?)", e.opts.MaxSteps)
		}
		if e.steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("rt: run cancelled after %d steps: %w", e.steps, err)
			}
		}
		p := e.nextCPU()
		if p < 0 {
			if !e.advanceToTimer() {
				return e.describeDeadlock()
			}
			continue
		}
		if c := e.cpus[p].Cycles(); c > e.now {
			e.now = c
		}
		e.fireTimers(e.now, p)
		if t := e.running[p]; t != nil {
			e.step(p, t)
			continue
		}
		if tid, ok := e.sched.PickNext(p); ok {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("rt: run cancelled after %d steps: %w", e.steps, err)
			}
			e.dispatch(p, tid)
			continue
		}
		if debugPark != nil {
			debugPark(p, e.sched.SpawnLen(0))
		}
		e.parked[p] = true
	}
	if e.ckpt.resume != nil {
		return fmt.Errorf("rt: run completed after %d steps without reaching the resume snapshot's step cursor %d — the snapshot is not from this workload and configuration",
			e.steps, e.ckpt.resume.Steps)
	}
	return e.failure
}

// nextCPU returns the unparked CPU with the smallest clock (lowest ID on
// ties), or -1 when all are parked.
func (e *Engine) nextCPU() int {
	if e.clockHeap == nil {
		e.clockHeap = make([]cpuClockEnt, 0, len(e.cpus))
		e.inClockHeap = make([]bool, len(e.cpus))
		for p := range e.cpus {
			if !e.parked[p] {
				e.pushCPUClock(e.cpus[p].Cycles(), int32(p))
			}
		}
	}
	for len(e.clockHeap) > 0 {
		top := e.clockHeap[0]
		p := int(top.cpu)
		if e.parked[p] {
			e.popCPUClock()
			continue
		}
		if c := e.cpus[p].Cycles(); c != top.clock {
			// Stale key (the CPU ran, or idled forward): re-key in
			// place and restore heap order. Clocks only move forward,
			// so a stored key is always a lower bound and the heap
			// minimum is exact once its top is fresh.
			e.clockHeap[0].clock = c
			e.siftDownCPUClock(0)
			continue
		}
		// Fresh minimum; the entry stays and re-keys lazily after this
		// CPU's clock advances.
		return p
	}
	return -1
}

// cpuClockEnt is one clock-heap entry; ordering is (clock, CPU ID) so
// equal clocks resolve to the lowest ID, matching the old linear scan.
type cpuClockEnt struct {
	clock uint64
	cpu   int32
}

func (e *Engine) cpuClockLess(a, b cpuClockEnt) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.cpu < b.cpu)
}

// pushCPUClock inserts cpu with the given clock key unless it already
// has a live entry (which is then a valid lower bound: clocks are
// monotonic, so the stale entry re-keys correctly when popped).
func (e *Engine) pushCPUClock(clock uint64, cpu int32) {
	if e.inClockHeap == nil || e.inClockHeap[cpu] {
		return
	}
	e.inClockHeap[cpu] = true
	e.clockHeap = append(e.clockHeap, cpuClockEnt{clock: clock, cpu: cpu})
	i := len(e.clockHeap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.cpuClockLess(e.clockHeap[i], e.clockHeap[parent]) {
			break
		}
		e.clockHeap[i], e.clockHeap[parent] = e.clockHeap[parent], e.clockHeap[i]
		i = parent
	}
}

// popCPUClock removes the heap top.
func (e *Engine) popCPUClock() {
	h := e.clockHeap
	e.inClockHeap[h[0].cpu] = false
	last := len(h) - 1
	h[0] = h[last]
	e.clockHeap = h[:last]
	if last > 0 {
		e.siftDownCPUClock(0)
	}
}

func (e *Engine) siftDownCPUClock(i int) {
	h := e.clockHeap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && e.cpuClockLess(h[right], h[left]) {
			min = right
		}
		if !e.cpuClockLess(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// unparkAll wakes idle CPUs because new work appeared; their clocks jump
// to at least now (they were idling), and the jump is accounted as idle
// time.
func (e *Engine) unparkAll(now uint64) {
	for p := range e.parked {
		if !e.parked[p] {
			continue
		}
		e.parked[p] = false
		if c := e.cpus[p].Cycles(); c < now {
			e.idleCycles[p] += now - c
			if e.om.idleCycles != nil {
				e.om.idleCycles.Add(p, now-c)
			}
			e.cpus[p].SetCycles(now)
		}
		e.pushCPUClock(e.cpus[p].Cycles(), int32(p))
	}
}

// advanceToTimer is called when every CPU is parked: if a timer is
// pending, idle the machine forward to it and fire; otherwise the
// system is deadlocked.
func (e *Engine) advanceToTimer() bool {
	if e.timers.Len() == 0 {
		return false
	}
	wake := e.timers[0].wakeAt
	e.unparkAll(wake)
	e.fireTimers(wake, 0)
	return true
}

// fireTimers wakes every sleeper whose deadline has passed. cpu is the
// processor whose engine-step fired the timers (CPU 0 when the whole
// machine was parked); it only places trace events.
func (e *Engine) fireTimers(now uint64, cpu int) {
	woke := false
	for e.timers.Len() > 0 && e.timers[0].wakeAt <= now {
		tm := heap.Pop(&e.timers).(timerEntry)
		t := e.threads[tm.tid]
		if t == nil || t.status != statusBlocked {
			continue
		}
		t.status = statusReady
		e.markReady(t, now, cpu)
		e.sched.MakeRunnable(t.id)
		woke = true
	}
	if woke {
		e.unparkAll(now)
	}
}

// dispatch installs thread tid on CPU p and charges the context-switch
// cost: the base switch latency, the scheduler's data-structure work
// since the last charge (cycles and cache traffic), and the thread's
// code reload.
func (e *Engine) dispatch(p int, tid mem.ThreadID) {
	t := e.threads[tid]
	if t == nil || t.status != statusReady {
		// Invariant: the scheduler only hands out registered, runnable
		// threads — a violation is engine corruption, not user error.
		panic(fmt.Sprintf("rt: dispatch of thread %v in status %v", tid, t.status))
	}
	e.sched.NoteDispatch(tid, p)
	if e.wd != nil {
		e.wd.noteProgress()
	}
	// The 64-bit miss count the scheduler's decay reference just read;
	// the interval record replays must carry the same value.
	t.dispatchMisses = e.cpus[p].Misses()
	e.dispatches[p]++
	if e.om.dispatches != nil {
		e.om.dispatches.Inc(p)
	}
	if e.monitor != nil && e.totalDispatches()%4096 == 0 {
		// Age out stale co-access evidence so phase changes do not
		// leave fossil coefficients behind.
		e.monitor.Decay()
	}
	e.plat.AdvanceCycles(p, uint64(e.opts.Overhead.CtxSwitchCycles))
	e.overhead.charge(e, p)
	// A thread woken to retry a mutex may find that someone barged in
	// while it travelled; it then re-blocks at the front of the queue
	// without running (the dispatch cost was still paid, as on real
	// hardware).
	if mu := t.retryLock; mu != nil {
		if mu.owner != nil {
			blockMisses := e.cpus[p].Misses()
			e.sched.OnBlock(tid, p, 0)
			if e.obs.Tracing() {
				// The zero-length occupancy still renders: a dispatch
				// immediately re-blocked on the barged lock.
				clock := e.cpus[p].Cycles()
				e.obs.Emit(obs.Event{Time: clock, Kind: obs.KDispatch, CPU: int16(p), Thread: tid,
					A: waitedCycles(clock, t.readyClock)})
				e.obs.Emit(obs.Event{Time: clock, Kind: obs.KBlock, CPU: int16(p), Thread: tid,
					Arg: uint8(obs.ReasonLock)})
			}
			if e.OnEvent != nil {
				// A zero-length interval: the thread occupied the CPU
				// but never ran, so both snapshots are the current read.
				snap := e.cpus[p].ReadCounters()
				clock := e.cpus[p].Cycles()
				e.OnEvent(trace.Event{Kind: trace.EvInterval, Interval: trace.Interval{
					CPU: p, Thread: tid,
					DispatchMisses: t.dispatchMisses, BlockMisses: blockMisses,
					StartRefs: snap.Refs, StartHits: snap.Hits,
					EndRefs: snap.Refs, EndHits: snap.Hits,
					StartCycles: clock, EndCycles: clock,
				}})
			}
			t.status = statusBlocked
			t.blockedOn = "mutex " + mu.name + " (barged)"
			mu.waiters = append([]*T{t}, mu.waiters...)
			return
		}
		mu.owner = t
		t.retryLock = nil
	}
	e.plat.TouchCode(p, tid, t.code)
	e.picBase[p] = e.cpus[p].ReadCounters()
	t.cpu = p
	t.dispatchClock = e.cpus[p].Cycles()
	t.dispatchCount++
	t.status = statusRunning
	e.running[p] = t
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{Time: t.dispatchClock, Kind: obs.KDispatch, CPU: int16(p), Thread: tid,
			A: waitedCycles(t.dispatchClock, t.readyClock)})
	}
	if e.om.waitCycles != nil {
		e.om.waitCycles.Observe(p, float64(waitedCycles(t.dispatchClock, t.readyClock)))
	}
	if e.OnDispatch != nil {
		e.OnDispatch(p, tid, t.name)
	}
}

// waitedCycles is the dispatch latency: cycles between a thread
// becoming runnable and being installed. The clamp covers the
// bootstrap dispatch, whose ready stamp can postdate the dispatching
// CPU's clock.
func waitedCycles(dispatchClock, readyClock uint64) uint64 {
	if dispatchClock <= readyClock {
		return 0
	}
	return dispatchClock - readyClock
}

// step resumes the thread running on p for one request and handles it.
func (e *Engine) step(p int, t *T) {
	req := t.resume()
	e.handle(p, t, req)
}

// ThreadTime is one thread's accumulated execution accounting.
type ThreadTime struct {
	ID         mem.ThreadID
	Name       string
	Cycles     uint64 // processor cycles while dispatched
	Dispatches uint64
}

// ThreadTimes returns per-thread execution accounting for every thread
// ever created, sorted by descending cycles (ties by ID). The engine
// charges each thread the cycles its processor's clock advanced between
// its dispatch and its block — the same interval the PICs cover.
//
// Deprecated: use Snapshot. Kept for compatibility.
func (e *Engine) ThreadTimes() []ThreadTime {
	out := make([]ThreadTime, 0, len(e.threads))
	for _, t := range e.threads {
		out = append(out, ThreadTime{ID: t.id, Name: t.name, Cycles: t.cycles, Dispatches: t.dispatchCount})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// blockCurrent performs the scheduling-point bookkeeping when the thread
// running on p leaves the processor: the PICs are read, the reading is
// sanitized (clamped and classified; a rejected reading feeds the
// scheduler nothing and advances the CPU toward quarantine), inferred
// sharing edges (if inference is on) are refreshed for the blocking
// thread, the model updates the blocking thread's and its dependents'
// footprint entries (O(d)), and the CPU becomes free.
func (e *Engine) blockCurrent(p int, t *T, reason obs.BlockReason) {
	endClock := e.cpus[p].Cycles()
	interval := endClock - t.dispatchClock
	t.cycles += interval
	cur := e.cpus[p].ReadCounters()
	wasQuarantined := e.health.quarantined(p)
	n, class := e.health.sanitize(p, e.picBase[p], cur, interval)
	// Propagate any quarantine transition before the scheduler update,
	// so a freshly distrusted CPU skips this interval's model update
	// too (SetQuarantine is idempotent on no change).
	e.sched.SetQuarantine(p, e.health.quarantined(p))
	refsDelta := uint64(cur.Refs - e.picBase[p].Refs)
	hitsDelta := uint64(cur.Hits - e.picBase[p].Hits)
	if e.obs.Tracing() {
		// The interval record goes on the ring before the scheduler
		// update so the trace reads causally: counter reading → model
		// updates → block. The raw delta keeps the modular arithmetic
		// (a reading with hits > refs renders as the huge wrapped value
		// the sanitizer rejected — that is the evidence).
		e.obs.Emit(obs.Event{Time: endClock, Kind: obs.KInterval, CPU: int16(p), Thread: t.id,
			A: refsDelta - hitsDelta, B: n, Arg: uint8(class)})
	}
	if e.monitor != nil {
		// Refresh the blocking thread's out-edges from the inferred
		// coefficients before the dependent updates read them. The
		// edge count is capped so the O(d) switch cost bound holds.
		for _, edge := range e.monitor.EdgesFor(t.id, 0.1, 8) {
			e.noteShare(t.id, edge.To, edge.Q)
		}
	}
	blockMisses := e.cpus[p].Misses()
	e.sched.OnBlock(t.id, p, n)
	if e.OnEvent != nil {
		e.OnEvent(trace.Event{Kind: trace.EvInterval, Interval: trace.Interval{
			CPU: p, Thread: t.id,
			DispatchMisses: t.dispatchMisses, BlockMisses: blockMisses,
			StartRefs: e.picBase[p].Refs, StartHits: e.picBase[p].Hits,
			EndRefs: cur.Refs, EndHits: cur.Hits,
			StartCycles: t.dispatchClock, EndCycles: endClock,
		}})
	}
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{Time: endClock, Kind: obs.KBlock, CPU: int16(p), Thread: t.id,
			A: interval, Arg: uint8(reason)})
	}
	if nowQuarantined := e.health.quarantined(p); nowQuarantined != wasQuarantined {
		kind, counter := obs.KRecover, e.om.recoveries
		if nowQuarantined {
			kind, counter = obs.KQuarantine, e.om.quarantines
		}
		if counter != nil {
			counter.Inc(p)
		}
		if e.obs.Tracing() {
			e.obs.Emit(obs.Event{Time: endClock, Kind: kind, CPU: int16(p), Thread: obs.InvalidThread})
		}
	}
	if e.om.runCycles != nil {
		e.om.runCycles.Observe(p, float64(interval))
		e.om.runMisses.Observe(p, float64(n))
		e.om.cacheRefs.Add(p, refsDelta)
		e.om.cacheHits.Add(p, hitsDelta)
		switch class {
		case ReadingOK:
			e.om.intervalsOK.Inc(p)
		case ReadingSuspect:
			e.om.intervalsSuspect.Inc(p)
		default:
			e.om.intervalsRejected.Inc(p)
		}
	}
	e.overhead.charge(e, p)
	e.running[p] = nil
}

// noteShare writes one sharing edge and mirrors it onto the event
// stream so a recording can rebuild the graph during replay.
func (e *Engine) noteShare(from, to mem.ThreadID, q float64) {
	e.graph.Share(from, to, q)
	if e.OnEvent != nil {
		e.OnEvent(trace.Event{Kind: trace.EvShare, From: from, To: to, Q: q})
	}
}

// handle processes one request from the running thread on p.
func (e *Engine) handle(p int, t *T, req *request) {
	switch req.kind {
	case reqAccess:
		e.plat.Apply(p, t.id, req.batch)

	case reqCompute:
		e.plat.Advance(p, req.n)

	case reqShare:
		if err := annot.CheckAnnotation(req.from, req.to, req.q); err != nil {
			e.fail(p, t, err.Error())
			return
		}
		if !e.opts.DisableAnnotations {
			e.noteShare(req.from, req.to, req.q)
		}
		e.plat.Advance(p, 4)

	case reqAlloc:
		if req.align != 0 && req.align&(req.align-1) != 0 {
			e.fail(p, t, fmt.Sprintf("Alloc with non-power-of-two alignment %d", req.align))
			return
		}
		t.resp.r = e.plat.Alloc(req.size, req.align)
		e.plat.Advance(p, uint64(e.opts.Overhead.AllocInstrs))

	case reqCreate:
		child := e.newThread(req.body, SpawnOpts{Name: req.name, Code: req.code})
		e.sched.Register(child.id)
		if e.OnEvent != nil {
			e.OnEvent(trace.Event{Kind: trace.EvSpawn, Thread: child.id})
		}
		e.noteSpawned(child, e.cpus[p].Cycles(), p)
		e.sched.NoteSpawn(child.id, p)
		e.plat.Advance(p, uint64(e.opts.Overhead.CreateInstrs))
		t.resp.tid = child.id
		e.unparkAll(e.cpus[p].Cycles())

	case reqYield:
		e.blockCurrent(p, t, obs.ReasonYield)
		t.status = statusReady
		e.markReady(t, e.cpus[p].Cycles(), p)
		e.sched.MakeRunnable(t.id)
		e.unparkAll(e.cpus[p].Cycles())

	case reqSleep:
		e.blockCurrent(p, t, obs.ReasonSleep)
		t.status = statusBlocked
		t.blockedOn = "sleep"
		e.timerSeq++
		heap.Push(&e.timers, timerEntry{wakeAt: e.cpus[p].Cycles() + req.n, seq: e.timerSeq, tid: t.id})

	case reqJoin:
		if req.tid == t.id {
			e.fail(p, t, "Join of self would deadlock")
			return
		}
		target := e.threads[req.tid]
		if target == nil || target.status == statusDead {
			e.plat.Advance(p, 4) // join of a finished thread: cheap
			return
		}
		e.blockCurrent(p, t, obs.ReasonJoin)
		t.status = statusBlocked
		t.blockedOn = "join " + target.id.String()
		target.joiners = append(target.joiners, t)

	case reqExit:
		e.blockCurrent(p, t, obs.ReasonExit)
		t.status = statusDead
		e.live--
		for _, j := range t.joiners {
			e.wake(p, j)
		}
		t.joiners = nil
		e.graph.RemoveThread(t.id)
		if e.monitor != nil && !e.opts.KeepInferenceHistory {
			e.monitor.Forget(t.id)
		}
		e.sched.Unregister(t.id)
		if e.OnEvent != nil {
			e.OnEvent(trace.Event{Kind: trace.EvExit, Thread: t.id})
		}
		if e.obs.Tracing() {
			e.obs.Emit(obs.Event{Time: e.cpus[p].Cycles(), Kind: obs.KExit, CPU: int16(p), Thread: t.id})
		}
		e.unparkAll(e.cpus[p].Cycles())

	case reqPanic:
		// The thread goroutine is gone; record and stop the world.
		e.running[p] = nil
		t.status = statusDead
		e.sched.Unregister(t.id)
		e.live--
		if e.failure == nil {
			e.failure = fmt.Errorf("rt: thread %v (%s) panicked: %v", t.id, t.name, req.err)
		}

	case reqLock:
		mu := req.mu
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		// Barging semantics, like real mutexes: a running thread takes
		// a free lock immediately even when woken waiters are still on
		// their way back to a processor. This prevents lock convoys in
		// which an undispatched waiter effectively holds the lock.
		if mu.owner == nil {
			mu.owner = t
			return
		}
		e.blockCurrent(p, t, obs.ReasonLock)
		t.status = statusBlocked
		t.blockedOn = "mutex " + mu.name
		mu.waiters = append(mu.waiters, t)

	case reqUnlock:
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.unlock(p, t, req.mu)

	case reqSemWait:
		s := req.sem
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		if s.value > 0 {
			s.value--
			return
		}
		e.blockCurrent(p, t, obs.ReasonSem)
		t.status = statusBlocked
		t.blockedOn = "semaphore " + s.name
		s.waiters = append(s.waiters, t)

	case reqSemPost:
		s := req.sem
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		if len(s.waiters) > 0 {
			w := s.waiters[0]
			s.waiters = s.waiters[1:]
			e.wake(p, w)
		} else {
			s.value++
		}

	case reqBarrier:
		b := req.bar
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		b.arrived++
		if b.arrived == b.parties {
			b.arrived = 0
			for _, w := range b.waiters {
				e.wake(p, w)
			}
			b.waiters = b.waiters[:0]
			return // the last arrival does not block
		}
		e.blockCurrent(p, t, obs.ReasonBarrier)
		t.status = statusBlocked
		t.blockedOn = fmt.Sprintf("barrier %s (%d/%d arrived)", b.name, b.arrived, b.parties)
		b.waiters = append(b.waiters, t)

	case reqCondWait:
		c, mu := req.cond, req.mu
		if mu.owner != t {
			e.fail(p, t, "CondWait without holding the mutex")
			return
		}
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.blockCurrent(p, t, obs.ReasonCond)
		t.status = statusBlocked
		t.blockedOn = "cond " + c.name
		c.waiters = append(c.waiters, condWaiter{t: t, mu: mu})
		e.unlock(p, nil, mu) // owner already validated

	case reqCondSignal:
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.signalOne(p, req.cond)

	case reqCondBroadcast:
		e.plat.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		for len(req.cond.waiters) > 0 {
			e.signalOne(p, req.cond)
		}

	default:
		// Invariant: the request enum is closed; the thread API builds
		// every request.
		panic(fmt.Sprintf("rt: unknown request kind %d", req.kind))
	}
}

// unlock releases mu on behalf of t (t may be nil when the owner was
// already validated, as in CondWait). The lock becomes free and the
// oldest waiter is woken to retry; ownership is not handed off, so a
// running thread can barge in while the waiter travels back to a
// processor (the waiter then re-blocks at the front of the queue).
func (e *Engine) unlock(p int, t *T, mu *Mutex) {
	if t != nil && mu.owner != t {
		e.fail(p, t, "Unlock of a mutex not held")
		return
	}
	mu.owner = nil
	if len(mu.waiters) > 0 {
		next := mu.waiters[0]
		mu.waiters = mu.waiters[1:]
		next.retryLock = mu
		e.wake(p, next)
	}
}

// signalOne moves the oldest cond waiter toward running: it either
// reacquires the mutex immediately or queues on it.
func (e *Engine) signalOne(p int, c *Cond) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	if w.mu.owner == nil {
		// Same barging discipline as unlock: the thread is woken to
		// retry the acquisition rather than granted a lock it cannot
		// use until dispatched.
		w.t.retryLock = w.mu
		e.wake(p, w.t)
	} else {
		w.mu.waiters = append(w.mu.waiters, w.t)
	}
}

// wake marks a blocked thread runnable. p is the CPU whose engine-step
// performed the wake (trace ring placement only — the thread may run
// anywhere).
func (e *Engine) wake(p int, t *T) {
	if t.status != statusBlocked {
		// Invariant: sync objects only enqueue blocked threads.
		panic(fmt.Sprintf("rt: waking thread %v in status %v", t.id, t.status))
	}
	t.status = statusReady
	e.markReady(t, e.now, p)
	e.sched.MakeRunnable(t.id)
	e.unparkAll(e.now)
}

// markReady stamps the moment a thread became runnable (the dispatch
// latency reference) and mirrors it onto the trace.
func (e *Engine) markReady(t *T, now uint64, cpu int) {
	t.readyClock = now
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{Time: now, Kind: obs.KWake, CPU: int16(cpu), Thread: t.id})
	}
}

// fail records a programming error detected inside a request (the
// simulated program misused a primitive) and stops the run.
func (e *Engine) fail(p int, t *T, msg string) {
	name := "?"
	var id mem.ThreadID = -1
	if t != nil {
		name, id = t.name, t.id
	}
	if e.failure == nil {
		e.failure = fmt.Errorf("rt: thread %v (%s): %s", id, name, msg)
	}
	_ = p
}

// describeDeadlock builds the diagnostic for a deadlocked system.
func (e *Engine) describeDeadlock() error {
	var blocked []string
	ids := make([]int, 0, len(e.threads))
	for id := range e.threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.threads[mem.ThreadID(id)]
		if t.status == statusBlocked {
			blocked = append(blocked, fmt.Sprintf("%v(%s) waiting on %s", t.id, t.name, t.blockedOn))
		}
	}
	return fmt.Errorf("%w: %v", ErrDeadlock, blocked)
}

// killRemaining unwinds every live thread goroutine after Run finishes
// (normally or on error) so the process leaks nothing.
func (e *Engine) killRemaining() {
	for _, t := range e.threads {
		if t.status == statusDead {
			continue
		}
		t.kill()
		t.status = statusDead
	}
	e.live = 0
}

// timerEntry is one pending sleep deadline.
type timerEntry struct {
	wakeAt uint64
	seq    uint64 // FIFO among equal deadlines, for determinism
	tid    mem.ThreadID
}

type timerQueue []timerEntry

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].wakeAt != q[j].wakeAt {
		return q[i].wakeAt < q[j].wakeAt
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *timerQueue) Push(x any)   { *q = append(*q, x.(timerEntry)) }
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
