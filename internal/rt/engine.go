// Package rt is the reproduction's Active Threads runtime: a
// deterministic green-thread system running over the simulated SMP of
// internal/machine, scheduled by the locality framework of
// internal/sched.
//
// Simulated threads are ordinary Go functions executed on goroutines,
// but the goroutines are used strictly as coroutines: exactly one
// simulated thread runs at a time, hand-off is a synchronous channel
// rendezvous, and every scheduling decision is made by this engine —
// never by the Go scheduler (the reproduction hint warns that the
// goroutine scheduler is opaque; here it has no influence at all).
// Running any program twice produces identical cycle counts, miss
// counts and schedules.
//
// The engine is a sequential discrete-event simulation with one cycle
// clock per CPU: it always advances the CPU with the smallest clock, so
// cross-CPU event ordering is conservative and total.
package rt

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/annot"
	"repro/internal/inference"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/perfctr"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Options configures an engine.
type Options struct {
	// Policy selects the scheduling policy: "FCFS", "LFF" or "CRT".
	Policy string
	// ThresholdLines is the footprint below which a heap entry is
	// demoted (default 16 lines).
	ThresholdLines float64
	// DisableAnnotations makes Share a no-op — the paper's ablation of
	// user annotations (Section 5: photo/LFF without annotations).
	DisableAnnotations bool
	// SpawnStacks places freshly created threads on per-CPU LIFO spawn
	// stacks stolen oldest-first (Blumofe-Leiserson work-first), a
	// design ablation; the default keeps the paper's global FIFO.
	SpawnStacks bool
	// FairnessLimit bounds starvation: a runnable thread waiting in
	// the global queue longer than this many dispatches bypasses the
	// locality heaps (the Section 7 escape mechanism). Zero disables
	// fairness, the paper's default domain.
	FairnessLimit uint64
	// KeepInferenceHistory prevents the inference monitor from
	// forgetting exited threads, so a profiling run's full co-access
	// evidence can be harvested afterwards (the paper's "repeated
	// trial runs" alternative). Requires InferSharing.
	KeepInferenceHistory bool
	// InferSharing turns on runtime sharing inference (the paper's
	// Section 7 future work): a software Cache Miss Lookaside buffer
	// watches page-granularity miss co-access and synthesizes
	// at_share coefficients with no user annotations. Usually combined
	// with DisableAnnotations to schedule unannotated programs.
	InferSharing bool
	// DefaultCodeBytes is the size of the shared default code region a
	// thread's dispatch touches (default 2048).
	DefaultCodeBytes uint64
	// Overhead configures the cycle and memory cost of the scheduler
	// itself.
	Overhead OverheadConfig
	// Seed fixes the engine's pseudo-randomness (per-thread RNG
	// streams).
	Seed uint64
	// MaxSteps aborts runs that exceed this many engine steps (safety
	// valve for buggy workloads; 0 means 4e9).
	MaxSteps uint64
}

// Engine runs simulated threads on a simulated machine.
type Engine struct {
	mach  *machine.Machine
	mdl   *model.Model
	graph *annot.Graph
	sched *sched.Scheduler
	opts  Options

	threads map[mem.ThreadID]*T
	nextID  mem.ThreadID
	live    int

	running []*T
	parked  []bool
	// idleCycles accumulates, per CPU, clock advanced while parked —
	// the utilization accounting behind Stats.
	idleCycles []uint64
	picBase    []perfctr.Snapshot
	// dispatches counts context switches per CPU (diagnostics).
	dispatches []uint64

	timers   timerQueue
	timerSeq uint64

	overhead overheadState
	rng      *xrand.Source
	monitor  *inference.Monitor

	defaultCode mem.Range
	steps       uint64
	// now is the clock of the CPU currently being processed; it is the
	// engine's notion of global time (nondecreasing because the engine
	// always processes the minimum-clock CPU).
	now     uint64
	failure error

	// OnDispatch, when non-nil, observes every context switch (after
	// the thread is installed). For tests and diagnostics only; it
	// must not call back into the engine.
	OnDispatch func(cpu int, tid mem.ThreadID, name string)
}

// debugPark is a test/diagnostic hook observing park decisions.
var debugPark func(cpu, spawn0 int)

// SetDebugPark installs the park hook (diagnostics only).
func SetDebugPark(fn func(cpu, spawn0 int)) { debugPark = fn }

// ErrDeadlock is returned by Run when live threads remain but none can
// ever become runnable again.
var ErrDeadlock = errors.New("rt: deadlock: blocked threads with no wake source")

// New builds an engine over a machine.
func New(m *machine.Machine, opts Options) *Engine {
	if opts.Policy == "" {
		opts.Policy = "FCFS"
	}
	if opts.ThresholdLines == 0 {
		opts.ThresholdLines = 16
	}
	if opts.DefaultCodeBytes == 0 {
		opts.DefaultCodeBytes = 2048
	}
	opts.Overhead = opts.Overhead.withDefaults()
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 4e9
	}
	scheme := model.SchemeByName(opts.Policy)
	if scheme == nil && opts.Policy != "FCFS" {
		panic(fmt.Sprintf("rt: unknown policy %q", opts.Policy))
	}
	e := &Engine{
		mach:       m,
		graph:      annot.New(),
		opts:       opts,
		threads:    make(map[mem.ThreadID]*T),
		running:    make([]*T, m.NCPU()),
		parked:     make([]bool, m.NCPU()),
		idleCycles: make([]uint64, m.NCPU()),
		picBase:    make([]perfctr.Snapshot, m.NCPU()),
		dispatches: make([]uint64, m.NCPU()),
		rng:        xrand.New(opts.Seed ^ 0x7d3),
	}
	if scheme != nil {
		e.mdl = model.New(m.Config().L2.Lines())
	}
	e.sched = sched.New(e.mdl, scheme, e.graph, m.NCPU(), opts.ThresholdLines,
		func(cpu int) uint64 { return m.CPU(cpu).EMisses })
	e.sched.SetFairnessLimit(opts.FairnessLimit)
	e.sched.SetSpawnStacks(opts.SpawnStacks)
	e.overhead.init(m, opts.Overhead)
	e.defaultCode = m.Alloc(opts.DefaultCodeBytes, 64)
	if opts.InferSharing {
		e.monitor = inference.NewMonitor(m.Config().PageSize)
		m.MissHook = e.monitor.Touch
	}
	return e
}

// Monitor returns the sharing-inference monitor, or nil when inference
// is off.
func (e *Engine) Monitor() *inference.Monitor { return e.monitor }

// Machine returns the engine's machine.
func (e *Engine) Machine() *machine.Machine { return e.mach }

// Scheduler exposes the scheduler (stats, diagnostics).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Graph exposes the shared-state dependency graph.
func (e *Engine) Graph() *annot.Graph { return e.graph }

// IdleCycles returns the per-CPU cycles spent parked with nothing to
// run.
func (e *Engine) IdleCycles() []uint64 { return append([]uint64(nil), e.idleCycles...) }

// Dispatches returns the per-CPU context-switch counts.
func (e *Engine) Dispatches() []uint64 { return append([]uint64(nil), e.dispatches...) }

// totalDispatches sums the per-CPU dispatch counts.
func (e *Engine) totalDispatches() uint64 {
	var n uint64
	for _, d := range e.dispatches {
		n += d
	}
	return n
}

// SpawnOpts configures thread creation.
type SpawnOpts struct {
	// Name labels the thread in diagnostics.
	Name string
	// Code is the thread's code region; the zero Range means the
	// engine-wide shared default region (threads running the same
	// function share text).
	Code mem.Range
}

// Spawn creates a thread executing body and makes it runnable. It may
// be called before Run (to seed the program) or from inside thread
// bodies via T.Create.
func (e *Engine) Spawn(body func(*T), opts SpawnOpts) mem.ThreadID {
	t := e.newThread(body, opts)
	e.sched.Register(t.id)
	e.sched.MakeRunnable(t.id)
	e.unparkAll(e.now)
	return t.id
}

func (e *Engine) newThread(body func(*T), opts SpawnOpts) *T {
	id := e.nextID
	e.nextID++
	code := opts.Code
	if code.Len == 0 {
		code = e.defaultCode
	}
	t := &T{
		id:       id,
		name:     opts.Name,
		eng:      e,
		body:     body,
		code:     code,
		toThread: make(chan struct{}),
		toEngine: make(chan struct{}),
		rng:      xrand.New(e.opts.Seed ^ (0x9e1 * (uint64(id) + 1))),
		status:   statusReady,
	}
	e.threads[id] = t
	e.live++
	go t.run()
	return t
}

// Run drives the simulation until every thread has exited. It returns
// ErrDeadlock if blocked threads remain with nothing to wake them, or
// the recovered error if a thread body panicked.
func (e *Engine) Run() error {
	defer e.killRemaining()
	for e.live > 0 {
		if e.failure != nil {
			return e.failure
		}
		e.steps++
		if e.steps > e.opts.MaxSteps {
			return fmt.Errorf("rt: exceeded %d engine steps (runaway workload?)", e.opts.MaxSteps)
		}
		p := e.nextCPU()
		if p < 0 {
			if !e.advanceToTimer() {
				return e.describeDeadlock()
			}
			continue
		}
		if c := e.mach.CPU(p).Cycles; c > e.now {
			e.now = c
		}
		e.fireTimers(e.now)
		if t := e.running[p]; t != nil {
			e.step(p, t)
			continue
		}
		if tid, ok := e.sched.PickNext(p); ok {
			e.dispatch(p, tid)
			continue
		}
		if debugPark != nil {
			debugPark(p, e.sched.SpawnLen(0))
		}
		e.parked[p] = true
	}
	return e.failure
}

// nextCPU returns the unparked CPU with the smallest clock (lowest ID on
// ties), or -1 when all are parked.
func (e *Engine) nextCPU() int {
	best := -1
	var bestClock uint64
	for p := 0; p < len(e.running); p++ {
		if e.parked[p] {
			continue
		}
		c := e.mach.CPU(p).Cycles
		if best < 0 || c < bestClock {
			best, bestClock = p, c
		}
	}
	return best
}

// unparkAll wakes idle CPUs because new work appeared; their clocks jump
// to at least now (they were idling), and the jump is accounted as idle
// time.
func (e *Engine) unparkAll(now uint64) {
	for p := range e.parked {
		if !e.parked[p] {
			continue
		}
		e.parked[p] = false
		if cpu := e.mach.CPU(p); cpu.Cycles < now {
			e.idleCycles[p] += now - cpu.Cycles
			cpu.Cycles = now
		}
	}
}

// advanceToTimer is called when every CPU is parked: if a timer is
// pending, idle the machine forward to it and fire; otherwise the
// system is deadlocked.
func (e *Engine) advanceToTimer() bool {
	if e.timers.Len() == 0 {
		return false
	}
	wake := e.timers[0].wakeAt
	e.unparkAll(wake)
	e.fireTimers(wake)
	return true
}

// fireTimers wakes every sleeper whose deadline has passed.
func (e *Engine) fireTimers(now uint64) {
	woke := false
	for e.timers.Len() > 0 && e.timers[0].wakeAt <= now {
		tm := heap.Pop(&e.timers).(timerEntry)
		t := e.threads[tm.tid]
		if t == nil || t.status != statusBlocked {
			continue
		}
		t.status = statusReady
		e.sched.MakeRunnable(t.id)
		woke = true
	}
	if woke {
		e.unparkAll(now)
	}
}

// dispatch installs thread tid on CPU p and charges the context-switch
// cost: the base switch latency, the scheduler's data-structure work
// since the last charge (cycles and cache traffic), and the thread's
// code reload.
func (e *Engine) dispatch(p int, tid mem.ThreadID) {
	t := e.threads[tid]
	if t == nil || t.status != statusReady {
		panic(fmt.Sprintf("rt: dispatch of thread %v in status %v", tid, t.status))
	}
	e.sched.NoteDispatch(tid, p)
	e.dispatches[p]++
	if e.monitor != nil && e.totalDispatches()%4096 == 0 {
		// Age out stale co-access evidence so phase changes do not
		// leave fossil coefficients behind.
		e.monitor.Decay()
	}
	e.mach.AdvanceCycles(p, uint64(e.opts.Overhead.CtxSwitchCycles))
	e.overhead.charge(e, p)
	// A thread woken to retry a mutex may find that someone barged in
	// while it travelled; it then re-blocks at the front of the queue
	// without running (the dispatch cost was still paid, as on real
	// hardware).
	if mu := t.retryLock; mu != nil {
		if mu.owner != nil {
			e.sched.OnBlock(tid, p, 0)
			t.status = statusBlocked
			t.blockedOn = "mutex " + mu.name + " (barged)"
			mu.waiters = append([]*T{t}, mu.waiters...)
			return
		}
		mu.owner = t
		t.retryLock = nil
	}
	e.mach.TouchCode(p, tid, t.code)
	e.picBase[p] = e.mach.CPU(p).PMU.Read()
	t.cpu = p
	t.dispatchClock = e.mach.CPU(p).Cycles
	t.dispatchCount++
	t.status = statusRunning
	e.running[p] = t
	if e.OnDispatch != nil {
		e.OnDispatch(p, tid, t.name)
	}
}

// step resumes the thread running on p for one request and handles it.
func (e *Engine) step(p int, t *T) {
	req := t.resume()
	e.handle(p, t, req)
}

// ThreadTime is one thread's accumulated execution accounting.
type ThreadTime struct {
	ID         mem.ThreadID
	Name       string
	Cycles     uint64 // processor cycles while dispatched
	Dispatches uint64
}

// ThreadTimes returns per-thread execution accounting for every thread
// ever created, sorted by descending cycles (ties by ID). The engine
// charges each thread the cycles its processor's clock advanced between
// its dispatch and its block — the same interval the PICs cover.
func (e *Engine) ThreadTimes() []ThreadTime {
	out := make([]ThreadTime, 0, len(e.threads))
	for _, t := range e.threads {
		out = append(out, ThreadTime{ID: t.id, Name: t.name, Cycles: t.cycles, Dispatches: t.dispatchCount})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// blockCurrent performs the scheduling-point bookkeeping when the thread
// running on p leaves the processor: the PICs are read, inferred
// sharing edges (if inference is on) are refreshed for the blocking
// thread, the model updates the blocking thread's and its dependents'
// footprint entries (O(d)), and the CPU becomes free.
func (e *Engine) blockCurrent(p int, t *T) {
	t.cycles += e.mach.CPU(p).Cycles - t.dispatchClock
	n := perfctr.MissesSince(e.mach.CPU(p).PMU.Read(), e.picBase[p])
	if e.monitor != nil {
		// Refresh the blocking thread's out-edges from the inferred
		// coefficients before the dependent updates read them. The
		// edge count is capped so the O(d) switch cost bound holds.
		for _, edge := range e.monitor.EdgesFor(t.id, 0.1, 8) {
			e.graph.Share(t.id, edge.To, edge.Q)
		}
	}
	e.sched.OnBlock(t.id, p, n)
	e.overhead.charge(e, p)
	e.running[p] = nil
}

// handle processes one request from the running thread on p.
func (e *Engine) handle(p int, t *T, req *request) {
	switch req.kind {
	case reqAccess:
		e.mach.Apply(p, t.id, req.batch)

	case reqCompute:
		e.mach.Advance(p, req.n)

	case reqShare:
		if !e.opts.DisableAnnotations {
			e.graph.Share(req.from, req.to, req.q)
		}
		e.mach.Advance(p, 4)

	case reqAlloc:
		t.resp.r = e.mach.Alloc(req.size, req.align)
		e.mach.Advance(p, uint64(e.opts.Overhead.AllocInstrs))

	case reqCreate:
		child := e.newThread(req.body, SpawnOpts{Name: req.name, Code: req.code})
		e.sched.Register(child.id)
		e.sched.NoteSpawn(child.id, p)
		e.mach.Advance(p, uint64(e.opts.Overhead.CreateInstrs))
		t.resp.tid = child.id
		e.unparkAll(e.mach.CPU(p).Cycles)

	case reqYield:
		e.blockCurrent(p, t)
		t.status = statusReady
		e.sched.MakeRunnable(t.id)
		e.unparkAll(e.mach.CPU(p).Cycles)

	case reqSleep:
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = "sleep"
		e.timerSeq++
		heap.Push(&e.timers, timerEntry{wakeAt: e.mach.CPU(p).Cycles + req.n, seq: e.timerSeq, tid: t.id})

	case reqJoin:
		target := e.threads[req.tid]
		if target == nil || target.status == statusDead {
			e.mach.Advance(p, 4) // join of a finished thread: cheap
			return
		}
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = "join " + target.id.String()
		target.joiners = append(target.joiners, t)

	case reqExit:
		e.blockCurrent(p, t)
		t.status = statusDead
		e.live--
		for _, j := range t.joiners {
			e.wake(j)
		}
		t.joiners = nil
		e.graph.RemoveThread(t.id)
		if e.monitor != nil && !e.opts.KeepInferenceHistory {
			e.monitor.Forget(t.id)
		}
		e.sched.Unregister(t.id)
		e.unparkAll(e.mach.CPU(p).Cycles)

	case reqPanic:
		// The thread goroutine is gone; record and stop the world.
		e.running[p] = nil
		t.status = statusDead
		e.sched.Unregister(t.id)
		e.live--
		if e.failure == nil {
			e.failure = fmt.Errorf("rt: thread %v (%s) panicked: %v", t.id, t.name, req.err)
		}

	case reqLock:
		mu := req.mu
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		// Barging semantics, like real mutexes: a running thread takes
		// a free lock immediately even when woken waiters are still on
		// their way back to a processor. This prevents lock convoys in
		// which an undispatched waiter effectively holds the lock.
		if mu.owner == nil {
			mu.owner = t
			return
		}
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = "mutex " + mu.name
		mu.waiters = append(mu.waiters, t)

	case reqUnlock:
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.unlock(p, t, req.mu)

	case reqSemWait:
		s := req.sem
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		if s.value > 0 {
			s.value--
			return
		}
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = "semaphore " + s.name
		s.waiters = append(s.waiters, t)

	case reqSemPost:
		s := req.sem
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		if len(s.waiters) > 0 {
			w := s.waiters[0]
			s.waiters = s.waiters[1:]
			e.wake(w)
		} else {
			s.value++
		}

	case reqBarrier:
		b := req.bar
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		b.arrived++
		if b.arrived == b.parties {
			b.arrived = 0
			for _, w := range b.waiters {
				e.wake(w)
			}
			b.waiters = b.waiters[:0]
			return // the last arrival does not block
		}
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = fmt.Sprintf("barrier %s (%d/%d arrived)", b.name, b.arrived, b.parties)
		b.waiters = append(b.waiters, t)

	case reqCondWait:
		c, mu := req.cond, req.mu
		if mu.owner != t {
			e.fail(p, t, "CondWait without holding the mutex")
			return
		}
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.blockCurrent(p, t)
		t.status = statusBlocked
		t.blockedOn = "cond " + c.name
		c.waiters = append(c.waiters, condWaiter{t: t, mu: mu})
		e.unlock(p, nil, mu) // owner already validated

	case reqCondSignal:
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		e.signalOne(req.cond)

	case reqCondBroadcast:
		e.mach.Advance(p, uint64(e.opts.Overhead.SyncInstrs))
		for len(req.cond.waiters) > 0 {
			e.signalOne(req.cond)
		}

	default:
		panic(fmt.Sprintf("rt: unknown request kind %d", req.kind))
	}
}

// unlock releases mu on behalf of t (t may be nil when the owner was
// already validated, as in CondWait). The lock becomes free and the
// oldest waiter is woken to retry; ownership is not handed off, so a
// running thread can barge in while the waiter travels back to a
// processor (the waiter then re-blocks at the front of the queue).
func (e *Engine) unlock(p int, t *T, mu *Mutex) {
	if t != nil && mu.owner != t {
		e.fail(p, t, "Unlock of a mutex not held")
		return
	}
	mu.owner = nil
	if len(mu.waiters) > 0 {
		next := mu.waiters[0]
		mu.waiters = mu.waiters[1:]
		next.retryLock = mu
		e.wake(next)
	}
}

// signalOne moves the oldest cond waiter toward running: it either
// reacquires the mutex immediately or queues on it.
func (e *Engine) signalOne(c *Cond) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	if w.mu.owner == nil {
		// Same barging discipline as unlock: the thread is woken to
		// retry the acquisition rather than granted a lock it cannot
		// use until dispatched.
		w.t.retryLock = w.mu
		e.wake(w.t)
	} else {
		w.mu.waiters = append(w.mu.waiters, w.t)
	}
}

// wake marks a blocked thread runnable.
func (e *Engine) wake(t *T) {
	if t.status != statusBlocked {
		panic(fmt.Sprintf("rt: waking thread %v in status %v", t.id, t.status))
	}
	t.status = statusReady
	e.sched.MakeRunnable(t.id)
	e.unparkAll(e.now)
}

// fail records a programming error detected inside a request (the
// simulated program misused a primitive) and stops the run.
func (e *Engine) fail(p int, t *T, msg string) {
	name := "?"
	var id mem.ThreadID = -1
	if t != nil {
		name, id = t.name, t.id
	}
	if e.failure == nil {
		e.failure = fmt.Errorf("rt: thread %v (%s): %s", id, name, msg)
	}
	_ = p
}

// describeDeadlock builds the diagnostic for a deadlocked system.
func (e *Engine) describeDeadlock() error {
	var blocked []string
	ids := make([]int, 0, len(e.threads))
	for id := range e.threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.threads[mem.ThreadID(id)]
		if t.status == statusBlocked {
			blocked = append(blocked, fmt.Sprintf("%v(%s) waiting on %s", t.id, t.name, t.blockedOn))
		}
	}
	return fmt.Errorf("%w: %v", ErrDeadlock, blocked)
}

// killRemaining unwinds every live thread goroutine after Run finishes
// (normally or on error) so the process leaks nothing.
func (e *Engine) killRemaining() {
	for _, t := range e.threads {
		if t.status == statusDead {
			continue
		}
		t.kill()
		t.status = statusDead
	}
	e.live = 0
}

// timerEntry is one pending sleep deadline.
type timerEntry struct {
	wakeAt uint64
	seq    uint64 // FIFO among equal deadlines, for determinism
	tid    mem.ThreadID
}

type timerQueue []timerEntry

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].wakeAt != q[j].wakeAt {
		return q[i].wakeAt < q[j].wakeAt
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *timerQueue) Push(x any)   { *q = append(*q, x.(timerEntry)) }
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
