package rt

// Tests for the engine ↔ observability wiring: the numeric schema
// correspondences obs documents but cannot import, the invariant that
// an attached observer never perturbs the simulation, and the
// consistency of the consolidated Snapshot with the accounting it
// replaces.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/platform/sim"
)

// TestVerdictMirrorsReadingClass pins the numeric correspondence the
// obs package documents: KInterval's Arg is a ReadingClass value, and
// obs cannot import rt to say so in types.
func TestVerdictMirrorsReadingClass(t *testing.T) {
	if uint8(ReadingOK) != obs.VerdictOK ||
		uint8(ReadingSuspect) != obs.VerdictSuspect ||
		uint8(ReadingRejected) != obs.VerdictRejected {
		t.Fatalf("ReadingClass values (%d,%d,%d) no longer mirror obs verdicts (%d,%d,%d)",
			ReadingOK, ReadingSuspect, ReadingRejected,
			obs.VerdictOK, obs.VerdictSuspect, obs.VerdictRejected)
	}
	for _, c := range []ReadingClass{ReadingOK, ReadingSuspect, ReadingRejected} {
		if c.String() != obs.VerdictString(uint8(c)) {
			t.Errorf("class %d: rt name %q != obs name %q", c, c.String(), obs.VerdictString(uint8(c)))
		}
	}
}

// obsWorkload runs a small multi-CPU program exercising every emission
// site: spawn, dispatch, block (yield/sleep/lock/sem/barrier/join),
// wake, model updates with dependents, and exit.
func obsWorkload(t *testing.T, o *obs.Observer) *Engine {
	t.Helper()
	e, err := New(sim.New(machine.New(machine.Enterprise5000(2))),
		Options{Policy: "LFF", Seed: 42, Obs: o})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mu := NewMutex("m")
	bar := NewBarrier("b", 2)
	sem := NewSemaphore("s", 0)
	worker := func(th *T) {
		r := th.Alloc(8192)
		for i := 0; i < 3; i++ {
			th.ReadRange(r.Base, 8192)
			th.Lock(mu)
			th.Compute(200)
			th.Unlock(mu)
			th.Yield()
		}
		th.BarrierWait(bar)
		th.SemPost(sem)
	}
	e.Spawn(func(th *T) {
		// Hold the mutex across a sleep so the workers' first Lock is
		// guaranteed to block (ReasonLock must appear in the trace).
		th.Lock(mu)
		a := th.Create("w0", worker)
		b := th.Create("w1", worker)
		th.ShareWith(a, 0.5)
		th.Share(a, b, 0.25)
		th.Sleep(2000)
		th.Unlock(mu)
		// A sleeper that outlives everything else, so Join blocks.
		lazy := th.Create("lazy", func(th *T) { th.Sleep(50000) })
		th.SemWait(sem)
		th.SemWait(sem)
		th.Join(lazy)
	}, SpawnOpts{Name: "main"})
	return e
}

func TestObserverDoesNotPerturbRun(t *testing.T) {
	bare := obsWorkload(t, nil)
	mustRun(t, bare)
	traced := obsWorkload(t, obs.New(2, obs.Options{Level: obs.Trace}))
	mustRun(t, traced)

	a, b := bare.Snapshot(), traced.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observer perturbed the run:\nbare:   %+v\ntraced: %+v", a, b)
	}
	for p := 0; p < 2; p++ {
		ca, cb := machineOf(bare).CPU(p), machineOf(traced).CPU(p)
		if ca.Cycles != cb.Cycles || ca.EMisses != cb.EMisses {
			t.Errorf("cpu %d diverged: cycles %d/%d misses %d/%d",
				p, ca.Cycles, cb.Cycles, ca.EMisses, cb.EMisses)
		}
	}
}

func TestObsWiringEndToEnd(t *testing.T) {
	o := obs.New(2, obs.Options{Level: obs.Trace})
	e := obsWorkload(t, o)
	mustRun(t, e)

	// Every kind the workload can produce must have been recorded.
	seen := map[obs.Kind]int{}
	reasons := map[obs.BlockReason]int{}
	for cpu := 0; cpu < 2; cpu++ {
		for _, ev := range o.Ring(cpu).Events() {
			seen[ev.Kind]++
			if int(ev.CPU) != cpu {
				t.Fatalf("event on ring %d claims CPU %d", cpu, ev.CPU)
			}
			if ev.Kind == obs.KBlock {
				reasons[obs.BlockReason(ev.Arg)]++
			}
		}
	}
	for _, k := range []obs.Kind{obs.KDispatch, obs.KBlock, obs.KWake, obs.KSpawn,
		obs.KExit, obs.KInterval, obs.KModelUpdate, obs.KSchedDecision} {
		if seen[k] == 0 {
			t.Errorf("no %v events recorded (saw %v)", k, seen)
		}
	}
	for _, r := range []obs.BlockReason{obs.ReasonYield, obs.ReasonSleep, obs.ReasonJoin,
		obs.ReasonLock, obs.ReasonSem, obs.ReasonBarrier, obs.ReasonExit} {
		if reasons[r] == 0 {
			t.Errorf("no blocks with reason %v (saw %v)", r, reasons)
		}
	}
	if o.ThreadName(0) != "main" {
		t.Errorf("thread 0 named %q, want main", o.ThreadName(0))
	}

	// Metrics agree with the engine's own accounting.
	snap := o.Registry().Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	es := e.Snapshot()
	if counters["rt_dispatches_total"] != es.TotalDispatches() {
		t.Errorf("rt_dispatches_total %d != engine dispatches %d",
			counters["rt_dispatches_total"], es.TotalDispatches())
	}
	var idle, ok uint64
	for _, v := range es.IdleCycles {
		idle += v
	}
	for _, h := range es.Health {
		ok += h.OK
	}
	if counters["rt_idle_cycles_total"] != idle {
		t.Errorf("rt_idle_cycles_total %d != engine idle %d", counters["rt_idle_cycles_total"], idle)
	}
	if counters["rt_intervals_ok_total"] != ok {
		t.Errorf("rt_intervals_ok_total %d != health OK %d", counters["rt_intervals_ok_total"], ok)
	}
	if counters["rt_quarantines_total"] != 0 || counters["rt_intervals_rejected_total"] != 0 {
		t.Errorf("healthy substrate reported faults: %v", counters)
	}

	// Interval events carry OK verdicts and sanitized == raw on the
	// healthy substrate (bit transparency, seen from the trace side).
	for cpu := 0; cpu < 2; cpu++ {
		for _, ev := range o.Ring(cpu).Events() {
			if ev.Kind == obs.KInterval && (ev.Arg != obs.VerdictOK || ev.A != ev.B) {
				t.Fatalf("healthy interval event %+v not bit-transparent", ev)
			}
		}
	}

	// The whole run exports as valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, []*obs.Cell{{Key: "wiring", Obs: o}}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
}

func TestSnapshotMatchesAccessors(t *testing.T) {
	e := obsWorkload(t, nil)
	mustRun(t, e)
	s := e.Snapshot()
	if s.Policy != "LFF" || s.NCPU != 2 || s.Steps == 0 {
		t.Errorf("snapshot header: %+v", s)
	}
	if !reflect.DeepEqual(s.Dispatches, e.Dispatches()) ||
		!reflect.DeepEqual(s.IdleCycles, e.IdleCycles()) ||
		!reflect.DeepEqual(s.Threads, e.ThreadTimes()) ||
		!reflect.DeepEqual(s.Health, e.CounterHealth()) {
		t.Error("snapshot disagrees with the accessors it consolidates")
	}
	if s.SchedOps != e.Scheduler().Ops() || s.Escapes != e.Scheduler().Escapes() {
		t.Error("snapshot scheduler stats disagree")
	}
	if s.TotalDispatches() != e.totalDispatches() {
		t.Error("TotalDispatches disagrees")
	}
}
