package rt

import (
	"repro/internal/mem"
	"repro/internal/sched"
)

// OverheadConfig models the cost of the runtime itself. The paper's
// Section 5 measures this price directly: on a uniprocessor where FCFS
// is already optimal (photo), the locality policies' heap maintenance
// costs about 3% of runtime and 1% extra E-cache misses. Reproducing
// that requires the scheduler to spend cycles *and* touch memory.
type OverheadConfig struct {
	// CtxSwitchCycles is the base context-switch latency (register
	// save/restore, thread control block) charged per dispatch.
	CtxSwitchCycles int
	// HeapOpCycles is charged per binary-heap push/pop/fix/remove.
	HeapOpCycles int
	// PrioUpdateCycles is charged per priority update (a handful of
	// floating-point instructions, per Table 3).
	PrioUpdateCycles int
	// QueueOpCycles is charged per global-queue operation.
	QueueOpCycles int
	// StealCycles is charged per work-steal scan.
	StealCycles int
	// CreateInstrs, SyncInstrs, AllocInstrs price thread creation,
	// synchronization fast paths and address-space allocation.
	CreateInstrs int
	SyncInstrs   int
	AllocInstrs  int
	// TouchMemory makes scheduler data-structure work issue real
	// references against per-CPU heap regions and the shared thread
	// table, polluting the caches like the real runtime does. Disable
	// only in unit tests that need exact miss counts.
	TouchMemory bool
	// noTouchMemory is the internal normalized form (zero value of
	// TouchMemory must mean "on" after withDefaults).
	noTouchMemory bool
}

// DefaultOverhead returns the calibrated defaults.
func DefaultOverhead() OverheadConfig {
	return OverheadConfig{
		CtxSwitchCycles:  100,
		HeapOpCycles:     14,
		PrioUpdateCycles: 4,
		QueueOpCycles:    6,
		StealCycles:      40,
		CreateInstrs:     120,
		SyncInstrs:       20,
		AllocInstrs:      60,
		TouchMemory:      true,
	}
}

// withDefaults fills zero fields with the calibrated defaults. A fully
// zero OverheadConfig becomes DefaultOverhead; setting any field keeps
// the others at their defaults. TouchMemory=false in a non-zero config
// is honoured via NoTouchMemory.
func (o OverheadConfig) withDefaults() OverheadConfig {
	d := DefaultOverhead()
	if o == (OverheadConfig{}) {
		return d
	}
	pick := func(v, def int) int {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0 // explicit "free"
		}
		return v
	}
	o.CtxSwitchCycles = pick(o.CtxSwitchCycles, d.CtxSwitchCycles)
	o.HeapOpCycles = pick(o.HeapOpCycles, d.HeapOpCycles)
	o.PrioUpdateCycles = pick(o.PrioUpdateCycles, d.PrioUpdateCycles)
	o.QueueOpCycles = pick(o.QueueOpCycles, d.QueueOpCycles)
	o.StealCycles = pick(o.StealCycles, d.StealCycles)
	o.CreateInstrs = pick(o.CreateInstrs, d.CreateInstrs)
	o.SyncInstrs = pick(o.SyncInstrs, d.SyncInstrs)
	o.AllocInstrs = pick(o.AllocInstrs, d.AllocInstrs)
	if !o.TouchMemory {
		o.noTouchMemory = true
	}
	o.TouchMemory = true
	return o
}

// overheadState charges scheduler work to CPUs: cycles proportional to
// the scheduler's data-structure operations since the last charge, plus
// cache traffic against the runtime's own memory (per-CPU heap arrays
// and the shared thread table).
type overheadState struct {
	cfg        OverheadConfig
	lastOps    sched.Ops
	heapRegion []mem.Range // per CPU
	table      mem.Range   // shared thread table / global queue
	rot        []uint64    // per-CPU rotation through the heap region
	batch      mem.Batch   // scratch, reused across charges (25 cap max)
}

func (s *overheadState) init(p platformAPI, cfg OverheadConfig) {
	s.cfg = cfg
	s.table = p.Alloc(16*1024, 64)
	for i := 0; i < p.NCPU(); i++ {
		s.heapRegion = append(s.heapRegion, p.Alloc(8*1024, 64))
	}
	s.rot = make([]uint64, p.NCPU())
}

// platformAPI is the slice of platform.Platform the overhead model
// needs (an interface keeps overhead testable in isolation).
type platformAPI interface {
	Alloc(size, align uint64) mem.Range
	NCPU() int
}

// charge prices the scheduler operations performed since the previous
// charge and attributes them to CPU p — the processor on whose context
// switch the work happened.
func (s *overheadState) charge(e *Engine, p int) {
	ops := e.sched.Ops()
	d := sched.Ops{
		HeapPushes:  ops.HeapPushes - s.lastOps.HeapPushes,
		HeapPops:    ops.HeapPops - s.lastOps.HeapPops,
		HeapFixes:   ops.HeapFixes - s.lastOps.HeapFixes,
		HeapRemoves: ops.HeapRemoves - s.lastOps.HeapRemoves,
		QueueOps:    ops.QueueOps - s.lastOps.QueueOps,
		Steals:      ops.Steals - s.lastOps.Steals,
		PrioUpdates: ops.PrioUpdates - s.lastOps.PrioUpdates,
	}
	s.lastOps = ops

	cycles := d.Total()*uint64(s.cfg.HeapOpCycles) +
		d.QueueOps*uint64(s.cfg.QueueOpCycles) +
		d.Steals*uint64(s.cfg.StealCycles) +
		d.PrioUpdates*uint64(s.cfg.PrioUpdateCycles)
	if cycles > 0 {
		e.plat.AdvanceCycles(p, cycles)
	}
	if s.cfg.noTouchMemory {
		return
	}

	// Cache traffic: each heap operation walks a log-ish number of heap
	// array lines; priority updates touch thread-table entries; queue
	// operations touch the queue head line. Touches are capped so a
	// steal storm cannot dominate a switch.
	lines := d.Total()*2 + d.PrioUpdates + d.QueueOps
	if lines == 0 {
		return
	}
	if lines > 24 {
		lines = 24
	}
	region := s.heapRegion[p]
	regionLines := region.Len / 64
	batch := s.batch[:0]
	for i := uint64(0); i < lines; i++ {
		off := (s.rot[p] + i) % regionLines
		batch = append(batch, mem.Access{Base: region.Base + mem.Addr(off*64), Count: 1, Size: 8, Write: i%3 == 0})
	}
	s.rot[p] = (s.rot[p] + lines) % regionLines
	if d.QueueOps > 0 {
		batch = append(batch, mem.Access{Base: s.table.Base, Count: 1, Size: 8, Write: true})
	}
	s.batch = batch
	e.plat.Apply(p, mem.SchedThread, batch)
}
