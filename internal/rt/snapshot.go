package rt

// This file is the engine's consolidated accounting surface. The
// scattered per-view accessors (IdleCycles, Dispatches, ThreadTimes,
// CounterHealth) grew one PR at a time and force callers into four
// calls for one report; Snapshot returns every view in a single
// consistent copy and is what the facade, the experiment driver and
// the observability exporters consume. The old accessors remain for
// compatibility but are deprecated.

import (
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Snapshot is one consistent copy of the engine's run accounting. All
// slices are copies; mutating them does not touch the engine.
type Snapshot struct {
	// Policy is the scheduling policy name ("FCFS", "LFF", "CRT", ...).
	Policy string
	// NCPU is the machine's processor count.
	NCPU int
	// Steps is the number of engine steps executed.
	Steps uint64
	// Dispatches is the per-CPU context-switch count.
	Dispatches []uint64
	// IdleCycles is the per-CPU cycles spent parked with nothing to
	// run.
	IdleCycles []uint64
	// Threads is the per-thread execution accounting, sorted by
	// descending cycles (ties by ID).
	Threads []ThreadTime
	// Health is the per-CPU counter-health accounting (sanitizer
	// verdict counts and quarantine transitions).
	Health []stats.CounterHealth
	// SchedOps is the scheduler's data-structure work since its last
	// ResetOps.
	SchedOps sched.Ops
	// Escapes is the number of fairness-escape dispatches.
	Escapes uint64
}

// TotalDispatches sums the per-CPU dispatch counts.
func (s Snapshot) TotalDispatches() uint64 {
	var n uint64
	for _, d := range s.Dispatches {
		n += d
	}
	return n
}

// Snapshot returns the engine's consolidated run accounting. Valid at
// any point (mid-run it reflects the story so far); typically read
// after Run returns.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Policy:     e.sched.PolicyName(),
		NCPU:       len(e.cpus),
		Steps:      e.steps,
		Dispatches: append([]uint64(nil), e.dispatches...),
		IdleCycles: append([]uint64(nil), e.idleCycles...),
		Threads:    e.ThreadTimes(),
		Health:     e.health.snapshot(),
		SchedOps:   e.sched.Ops(),
		Escapes:    e.sched.Escapes(),
	}
}

// obsHandles caches the engine's metric instruments. Registering once
// at engine construction keeps registry lookups out of every
// instrumented path: when metrics are off every handle is nil and each
// site costs one nil-check; when on, a counter bump is one atomic add
// on the CPU's shard.
type obsHandles struct {
	dispatches        *obs.Counter
	idleCycles        *obs.Counter
	cacheRefs         *obs.Counter
	cacheHits         *obs.Counter
	intervalsOK       *obs.Counter
	intervalsSuspect  *obs.Counter
	intervalsRejected *obs.Counter
	quarantines       *obs.Counter
	recoveries        *obs.Counter
	stalls            *obs.Counter
	waitCycles        *obs.Histogram
	runCycles         *obs.Histogram
	runMisses         *obs.Histogram
}

// init registers the engine's metrics on o's registry (no-op when
// metrics are off, leaving every handle nil).
func (h *obsHandles) init(o *obs.Observer) {
	if !o.MetricsOn() {
		return
	}
	r := o.Registry()
	h.dispatches = r.Counter("rt_dispatches_total")
	h.idleCycles = r.Counter("rt_idle_cycles_total")
	h.cacheRefs = r.Counter("cache_refs_total")
	h.cacheHits = r.Counter("cache_hits_total")
	h.intervalsOK = r.Counter("rt_intervals_ok_total")
	h.intervalsSuspect = r.Counter("rt_intervals_suspect_total")
	h.intervalsRejected = r.Counter("rt_intervals_rejected_total")
	h.quarantines = r.Counter("rt_quarantines_total")
	h.recoveries = r.Counter("rt_recoveries_total")
	h.stalls = r.Counter("rt_stalls_total")
	h.waitCycles = r.Histogram("rt_dispatch_wait_cycles",
		[]float64{64, 256, 1024, 4096, 16384, 65536, 262144})
	h.runCycles = r.Histogram("rt_interval_cycles",
		[]float64{256, 1024, 4096, 16384, 65536, 262144, 1048576})
	h.runMisses = r.Histogram("rt_interval_misses",
		[]float64{1, 8, 64, 512, 4096, 32768})
}
