package cachesim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// trackedCache returns an 8-line cache with an attached tracker.
func trackedCache() (*Cache, *Tracker) {
	c := New(Config{Name: "T", Size: 512, LineSize: 64, Assoc: 1, HitCycles: 1})
	tr := NewTracker(64, 4096)
	c.SetListener(tr)
	return c, tr
}

func TestTrackerCountsOwnLines(t *testing.T) {
	c, tr := trackedCache()
	tr.Register(1, mem.Range{Base: 0x000, Len: 128}) // two lines
	c.Insert(1, 0x000, false, false)
	if tr.Footprint(1) != 1 {
		t.Errorf("footprint after one fill = %d", tr.Footprint(1))
	}
	c.Insert(1, 0x040, false, false)
	if tr.Footprint(1) != 2 {
		t.Errorf("footprint after two fills = %d", tr.Footprint(1))
	}
	// A line outside the registered range does not count.
	c.Insert(1, 0x080, false, false)
	if tr.Footprint(1) != 2 {
		t.Errorf("unregistered line counted: %d", tr.Footprint(1))
	}
}

func TestTrackerSharedStateAttributedToBoth(t *testing.T) {
	// The essence of the paper's Figure 4c/d: a line of shared state
	// brought in by thread A also grows sleeping thread C's footprint.
	c, tr := trackedCache()
	tr.Register(1, mem.Range{Base: 0x000, Len: 256})
	tr.Register(2, mem.Range{Base: 0x080, Len: 256}) // overlaps lines 2,3 of t1
	c.Insert(1, 0x080, false, false)                 // filled *by* t1
	if tr.Footprint(1) != 1 || tr.Footprint(2) != 1 {
		t.Errorf("shared line footprints = %d/%d, want 1/1", tr.Footprint(1), tr.Footprint(2))
	}
	c.Insert(1, 0x000, false, false) // t1-only line
	if tr.Footprint(1) != 2 || tr.Footprint(2) != 1 {
		t.Errorf("after private fill = %d/%d, want 2/1", tr.Footprint(1), tr.Footprint(2))
	}
}

func TestTrackerEvictionDecrements(t *testing.T) {
	c, tr := trackedCache()
	tr.Register(1, mem.Range{Base: 0x000, Len: 64})
	c.Insert(1, 0x000, false, false)
	c.Insert(2, 0x200, false, false) // conflicts in an 8-line DM cache
	if tr.Footprint(1) != 0 {
		t.Errorf("footprint after eviction = %d", tr.Footprint(1))
	}
}

func TestTrackerInvalidationAndFlush(t *testing.T) {
	c, tr := trackedCache()
	tr.Register(1, mem.Range{Base: 0x000, Len: 256})
	for a := mem.Addr(0); a < 0x100; a += 64 {
		c.Insert(1, a, false, false)
	}
	if tr.Footprint(1) != 4 {
		t.Fatalf("footprint = %d", tr.Footprint(1))
	}
	c.Invalidate(0x040)
	if tr.Footprint(1) != 3 {
		t.Errorf("after invalidation = %d", tr.Footprint(1))
	}
	c.Flush()
	if tr.Footprint(1) != 0 {
		t.Errorf("after flush = %d", tr.Footprint(1))
	}
}

func TestTrackerPartialLineOverlap(t *testing.T) {
	c, tr := trackedCache()
	// Register only 8 bytes in the middle of a line: the whole line
	// still holds the thread's state.
	tr.Register(1, mem.Range{Base: 0x020, Len: 8})
	c.Insert(1, 0x000, false, false)
	if tr.Footprint(1) != 1 {
		t.Errorf("partial-overlap line not counted: %d", tr.Footprint(1))
	}
}

func TestTrackerPageStraddlingRange(t *testing.T) {
	c, tr := trackedCache()
	// Range crossing a 4KB tracking-page boundary must be indexed on
	// both pages.
	tr.Register(1, mem.Range{Base: 0xFC0, Len: 128}) // 0xFC0..0x1040
	c.Insert(1, 0xFC0, false, false)
	c.Insert(1, 0x1000, false, false)
	if tr.Footprint(1) != 2 {
		t.Errorf("straddling range footprint = %d, want 2", tr.Footprint(1))
	}
}

func TestTrackerMultipleSpansSameLineCountOnce(t *testing.T) {
	c, tr := trackedCache()
	// Two disjoint 8-byte fragments of the same thread inside one line:
	// the line is one unit of footprint, not two.
	tr.Register(1, mem.Range{Base: 0x000, Len: 8}, mem.Range{Base: 0x010, Len: 8})
	c.Insert(1, 0x000, false, false)
	if tr.Footprint(1) != 1 {
		t.Errorf("one line counted %d times", tr.Footprint(1))
	}
}

func TestTrackerUnregister(t *testing.T) {
	c, tr := trackedCache()
	tr.Register(1, mem.Range{Base: 0x000, Len: 64})
	tr.Register(2, mem.Range{Base: 0x040, Len: 64})
	c.Insert(1, 0x000, false, false)
	tr.Unregister(1)
	if tr.Tracked(1) {
		t.Error("still tracked after unregister")
	}
	if tr.Footprint(1) != 0 {
		t.Error("footprint survives unregister")
	}
	// Later events must not resurrect the thread.
	c.Insert(1, 0x000, false, false) // refresh: no event
	c.Invalidate(0x000)
	if tr.Footprint(1) != 0 {
		t.Error("unregistered thread counted again")
	}
	if got := tr.Threads(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Threads() = %v", got)
	}
}

func TestTrackerRebuild(t *testing.T) {
	c, tr := trackedCache()
	// Fill before registering, then rebuild.
	c.Insert(7, 0x000, false, false)
	c.Insert(7, 0x040, false, false)
	tr.Register(7, mem.Range{Base: 0x000, Len: 128})
	if tr.Footprint(7) != 0 {
		t.Fatal("registration alone should not count resident lines")
	}
	tr.Rebuild(c)
	if tr.Footprint(7) != 2 {
		t.Errorf("rebuilt footprint = %d, want 2", tr.Footprint(7))
	}
}

// TestTrackerMatchesBruteForce drives random traffic and compares the
// tracker's incremental counts against a from-scratch recount.
func TestTrackerMatchesBruteForce(t *testing.T) {
	c := New(Config{Name: "T", Size: 2048, LineSize: 64, Assoc: 2, HitCycles: 1})
	tr := NewTracker(64, 4096)
	c.SetListener(tr)
	ranges := map[mem.ThreadID][]mem.Range{
		1: {{Base: 0x0000, Len: 0x400}},
		2: {{Base: 0x0200, Len: 0x400}}, // overlaps t1
		3: {{Base: 0x0F80, Len: 0x100}}, // crosses a page
		4: {{Base: 0x0000, Len: 0x40}, {Base: 0x1000, Len: 0x40}},
	}
	for tid, rs := range ranges {
		tr.Register(tid, rs...)
	}
	rng := xrand.New(99)
	for i := 0; i < 5000; i++ {
		a := mem.Addr(rng.Uint64n(0x1800))
		if rng.Bool(0.1) {
			c.Invalidate(a)
		} else if !c.Lookup(5, a, false) {
			c.Insert(5, a, false, false)
		}
		if i%500 != 0 {
			continue
		}
		for tid, rs := range ranges {
			want := int64(0)
			c.ForEachValidLine(func(line mem.Addr, _ mem.ThreadID) {
				for _, r := range rs {
					if line < r.End() && r.Base < line+64 {
						want++
						return
					}
				}
			})
			if got := tr.Footprint(tid); got != want {
				t.Fatalf("step %d: footprint(%v) = %d, brute force %d", i, tid, got, want)
			}
		}
	}
}

func TestTrackerGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTracker(0, 4096) },
		func() { NewTracker(48, 4096) },
		func() { NewTracker(64, 32) }, // page smaller than line
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad tracker geometry accepted")
				}
			}()
			fn()
		}()
	}
}
