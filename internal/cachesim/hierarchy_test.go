package cachesim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// smallHierarchy builds a miniature UltraSPARC-shaped hierarchy:
// 256B L1D (16B lines), 256B 2-way L1I (32B lines), 2KB unified L2
// (64B lines).
func smallHierarchy() *Hierarchy {
	return NewHierarchy(
		Config{Name: "L1I", Size: 256, LineSize: 32, Assoc: 2, HitCycles: 1},
		Config{Name: "L1D", Size: 256, LineSize: 16, Assoc: 1, HitCycles: 1},
		Config{Name: "E", Size: 2048, LineSize: 64, Assoc: 1, HitCycles: 3},
	)
}

func TestDataLoadPath(t *testing.T) {
	h := smallHierarchy()
	if r := h.Data(1, 0x100, false, false); r.Level != LevelMemory {
		t.Fatalf("first load satisfied at %v", r.Level)
	}
	if r := h.Data(1, 0x100, false, false); r.Level != LevelL1 {
		t.Fatalf("second load satisfied at %v, want L1", r.Level)
	}
	// A different L1D line within the same 64-byte L2 line: L1 miss,
	// L2 hit.
	if r := h.Data(1, 0x110, false, false); r.Level != LevelL2 {
		t.Fatalf("same-L2-line load satisfied at %v, want L2", r.Level)
	}
}

func TestStoreIsWriteThroughNonAllocating(t *testing.T) {
	h := smallHierarchy()
	// A store miss allocates in L2 but not in L1D.
	if r := h.Data(1, 0x200, true, false); r.Level != LevelMemory {
		t.Fatalf("store miss at %v", r.Level)
	}
	if h.L1D.Contains(0x200) {
		t.Error("store allocated in L1D")
	}
	if !h.L2.Contains(0x200) {
		t.Error("store did not allocate in L2")
	}
	if !h.L2.IsDirty(0x200) {
		t.Error("stored L2 line not dirty")
	}
	// A store to an L1D-resident line still reaches the L2 (write
	// through) and reports the L2 level.
	h.Data(1, 0x300, false, false) // load-allocate L1D
	if r := h.Data(1, 0x300, true, false); r.Level != LevelL2 {
		t.Errorf("store hit reported %v, want L2 (write-through)", r.Level)
	}
	if h.L1D.IsDirty(0x300) {
		t.Error("write-through L1D line marked dirty")
	}
	if !h.L2.IsDirty(0x300) {
		t.Error("L2 line clean after write-through store")
	}
}

func TestInstFetchPath(t *testing.T) {
	h := smallHierarchy()
	if r := h.Inst(1, 0x400, false); r.Level != LevelMemory {
		t.Fatalf("first fetch at %v", r.Level)
	}
	if r := h.Inst(1, 0x400, false); r.Level != LevelL1 {
		t.Fatalf("second fetch at %v", r.Level)
	}
	if !h.L1I.Contains(0x400) || !h.L2.Contains(0x400) {
		t.Error("fetch did not allocate in L1I and L2")
	}
	// Instructions and data share the unified L2.
	if r := h.Data(1, 0x420, false, false); r.Level != LevelL2 {
		t.Errorf("data load of fetched line at %v, want L2", r.Level)
	}
}

func TestInclusionOnL2Eviction(t *testing.T) {
	h := smallHierarchy()
	// L2 has 32 sets... 2048/64 = 32 lines, direct-mapped. Addresses
	// 2048 apart collide.
	h.Data(1, 0x000, false, false)
	if !h.L1D.Contains(0x000) {
		t.Fatal("load did not allocate L1D")
	}
	// Conflict evicts L2 line 0x000; inclusion must purge L1D.
	h.Data(1, 0x800, false, false)
	if h.L2.Contains(0x000) {
		t.Fatal("L2 conflict did not evict")
	}
	if h.L1D.Contains(0x000) {
		t.Error("inclusion violated: L1D kept a line the L2 evicted")
	}
	if _, ok := h.CheckInclusion(); !ok {
		t.Error("CheckInclusion failed")
	}
}

func TestInclusionPropertyUnderRandomTraffic(t *testing.T) {
	h := smallHierarchy()
	rng := xrand.New(123)
	for i := 0; i < 20000; i++ {
		a := mem.Addr(rng.Uint64n(1 << 13))
		switch rng.Intn(3) {
		case 0:
			h.Data(1, a, false, false)
		case 1:
			h.Data(1, a, true, false)
		case 2:
			h.Inst(1, a, false)
		}
	}
	if addr, ok := h.CheckInclusion(); !ok {
		t.Errorf("inclusion violated at %#x after random traffic", uint64(addr))
	}
}

func TestInvalidateLine(t *testing.T) {
	h := smallHierarchy()
	h.Data(1, 0x100, false, false)
	h.Data(1, 0x100, true, false)
	present, dirty := h.InvalidateLine(0x100)
	if !present || !dirty {
		t.Errorf("InvalidateLine = (%v,%v), want (true,true)", present, dirty)
	}
	if h.L1D.Contains(0x100) || h.L2.Contains(0x100) {
		t.Error("line survived coherence invalidation")
	}
	present, _ = h.InvalidateLine(0x100)
	if present {
		t.Error("re-invalidation reported present")
	}
}

func TestVictimPropagation(t *testing.T) {
	h := smallHierarchy()
	h.Data(1, 0x000, true, false) // dirty line in L2
	r := h.Data(1, 0x800, false, false)
	if !r.Victim.Valid || r.Victim.Line != 0x000 || !r.Victim.Dirty {
		t.Errorf("victim = %+v, want dirty line 0x000", r.Victim)
	}
}

func TestFlushHierarchy(t *testing.T) {
	h := smallHierarchy()
	h.Data(1, 0x000, false, false)
	h.Inst(1, 0x100, false)
	h.Flush()
	if h.L1I.ValidLines()+h.L1D.ValidLines()+h.L2.ValidLines() != 0 {
		t.Error("flush left lines resident")
	}
}

func TestSharedFlagOnFill(t *testing.T) {
	h := smallHierarchy()
	h.Data(1, 0x100, false, true)
	if !h.L2.IsShared(0x100) {
		t.Error("shared fill lost coherence mark")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMemory.String() != "memory" {
		t.Error("level names wrong")
	}
}

func TestMismatchedLinesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for L2 line smaller than L1 line")
		}
	}()
	NewHierarchy(
		Config{Name: "L1I", Size: 256, LineSize: 32, Assoc: 2, HitCycles: 1},
		Config{Name: "L1D", Size: 256, LineSize: 16, Assoc: 1, HitCycles: 1},
		Config{Name: "E", Size: 2048, LineSize: 8, Assoc: 1, HitCycles: 3},
	)
}
