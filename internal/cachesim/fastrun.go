package cachesim

import (
	"math/bits"

	"repro/internal/mem"
)

// This file is the hierarchy-level sweep fast lane: one call that
// carries a whole strided access through the direct-mapped data
// path. The per-reference path (Data → lookupDM/insertDM) pays a call,
// a slot load, a dispatch branch and several statistics updates per
// cache per reference; a sequential sweep revisits the same L1D line
// several times in a row and the same L2 line for several consecutive
// L1D lines, so almost all of that work is recomputation. SweepDM
// keeps the whole loop — run decomposition, both probes, fills and
// statistics — in one function with the counters in locals, and calls
// back into the machine layer only at the events the machine must
// see: page translation, L2 misses (coherence + penalty class), and
// stores that touch directory state. The differential tests in
// machine/fastapply_test.go and the golden experiment fingerprints pin
// this path event-for-event against the per-reference loop.

// SweepEnv is the set of machine-layer services a swept access needs,
// kept behind an interface so cachesim stays below the machine layer.
// Calls are rare relative to references: one TranslatePage per virtual
// page entered, one LineMiss per L2 miss, and one
// SharedStore/DirtyStore per store span on a resident line.
type SweepEnv interface {
	// TranslatePage translates va, charging any modelled TLB costs.
	// The returned delta (pa - va) is valid for va's whole page.
	TranslatePage(va mem.Addr) mem.Addr
	// LineMiss observes an L2 miss at line (the fill has already been
	// performed, displacing victim), reporting whether the line was
	// dirty in a remote cache — the slow-miss penalty class. va is the
	// missing reference's virtual address (for miss hooks).
	LineMiss(va, line mem.Addr, write bool, victim Victim) (remoteDirty bool)
	// SharedStore observes a store hitting a resident line whose copy
	// carried the coherence "shared" mark (the sweep has already
	// cleared the local mark; the machine invalidates the other
	// copies).
	SharedStore(line mem.Addr)
	// DirtyStore observes a store span hitting a resident line: the
	// directory must record the local cache as the dirty owner.
	DirtyStore(line mem.Addr)
}

// SweepOutcome aggregates a swept access's charges by penalty class;
// the machine converts them into cycles, shadow counters and PIC
// events (all additive, so one batched conversion is event-for-event
// identical to per-reference charging).
type SweepOutcome struct {
	// L1Refs is the number of references satisfied at the L1D hit
	// latency (L1D load hits plus the replayed repeats of load runs).
	L1Refs uint64
	// L2HitRefs is the number of E-cache references that hit (charged
	// the L2 hit latency).
	L2HitRefs uint64
	// CleanMisses and RemoteMisses split the E-cache misses by whether
	// the fill found the line dirty in a remote cache.
	CleanMisses, RemoteMisses uint64
}

// FastData reports whether the hierarchy's data path runs on the
// direct-mapped fast lanes (both data-side caches one-way and not
// forced generic). Callers use it to gate SweepDM.
func (h *Hierarchy) FastData() bool {
	return h.dmData && !h.L1D.forceGeneric && !h.L2.forceGeneric
}

// SweepDM performs a whole positive-stride access (a.Stride > 0, any
// magnitude) through the direct-mapped data path. It is the fused
// equivalent of the machine's run batching: references are grouped
// into same-L1D-line runs whose outcome is frozen by their first
// reference (loads allocate in L1D, so repeats are L1D hits; stores
// leave the non-allocating write-through L1D unchanged and repeat as
// L2 hits on the line the first store made dirty), and consecutive
// runs inside one L2 line carry the line's residency and ownership
// forward, so only the first run that reaches the L2 pays the probe.
// Strides at or beyond the L1D line degenerate to k=1 runs (every
// reference probes), and a reference straddling an L1D line boundary
// becomes two k=1 probes of its endpoint lines — exactly the two
// references the per-reference path issues for it. pageShift is the
// machine's page geometry; coherent gates the directory callbacks so
// a uniprocessor sweep never virtual-calls.
//
// Statistics, classifier shadow transitions, ownership, dirtiness,
// victim and listener events are event-for-event identical to issuing
// every reference through Data; both data-side caches must be
// direct-mapped (FastData).
func (h *Hierarchy) SweepDM(env SweepEnv, tid mem.ThreadID, a mem.Access, pageShift uint, coherent bool) SweepOutcome {
	d, e := h.L1D, h.L2
	ls := uint64(d.cfg.LineSize)
	stride := uint64(a.Stride)
	count := int(a.Count)
	size := uint64(a.Size)
	if size == 0 {
		// A zero-size reference touches just its base byte's line; the
		// run arithmetic below treats it as one byte.
		size = 1
	}
	// Traces overwhelmingly walk with power-of-two strides; turn the
	// per-run division into a shift for them.
	strideShift := -1
	if stride&(stride-1) == 0 {
		strideShift = bits.TrailingZeros64(stride)
	}
	write := a.Write
	// Dense lane: a contiguous power-of-two sweep (size == stride ≤
	// line) tiles every full line with exactly ls/stride references in
	// a fixed offset pattern, so whole lines can be processed in one
	// fused iteration (see the dense block inside the loop). The lane
	// needs the slim L1D fill (no listener) and skips classifier
	// bookkeeping, so it only engages when both are off.
	dense := size == stride && strideShift >= 0 && stride <= ls &&
		d.classify == nil && e.classify == nil && d.listener == nil
	var denseRB uint64
	densePerLine := 0
	if dense {
		// denseRB is the base offset within the stride grid: nonzero
		// means the last reference of every full line straddles into
		// the next (its start offset denseRB+ls-stride leaves fewer
		// than size bytes in the line).
		denseRB = uint64(a.Base) & (stride - 1)
		densePerLine = int(ls >> uint(strideShift))
	}
	var (
		out                   SweepOutcome
		dRefs, dHits, dMisses uint64
		eRefs, eHits, eMisses uint64
		// Per-page translation memo: page mappings are immutable, so
		// the virtual-to-physical delta holds for the whole page.
		curVPage  = ^uint64(0)
		pageDelta mem.Addr
		// Current L2-line span: carryOK marks curLine2 as the span the
		// previous run belonged to, l2Resident that some run of the
		// span actually probed or filled the line (a span opened by
		// L1D hits never touches the L2).
		curLine2   mem.Addr
		carryOK    bool
		l2Resident bool
		// L1D line carry: the last run's line and its post-run L1D
		// residency, replayed when the next run lands on the same line
		// (the common shape of unaligned sweeps, whose straddle
		// segments and following runs alternate over the same lines).
		// The carry always describes the most recent run's line, and a
		// run cannot invalidate its own line's outcome: a load run
		// leaves its line resident (hits stay, misses fill last), and a
		// store run leaves the non-allocating write-through L1D outcome
		// frozen — its L2 fill's inclusion invalidation only clears
		// slots holding *other* tags (the store-missed line was not
		// resident), and by inclusion a store-hit line's L2 probe can
		// never miss. So replaying the carried outcome is
		// state-identical to re-probing.
		curLine1   mem.Addr
		l1Carry    bool
		l1CarryHit bool
	)
	for i := 0; i < count; {
		va := a.Base + mem.Addr(uint64(i)*stride)
		off := uint64(va) & (ls - 1)
		// Dense lane: at a line-group boundary (off == denseRB marks
		// the first reference of a full line) with at least one whole
		// line of references left, process complete lines in a fused
		// loop — one probe per line instead of one body per run.
		//
		// Group shape per line L, in the body loop's own program order:
		// the aligned case (denseRB == 0) is one run of n = ls/stride
		// references probing L; the unaligned case is [run of n-1
		// references on L, straddle seg0 on L, straddle seg1 probing
		// L+1], where the first two replay L's carried outcome (the
		// generic loop's L1D carry, same justification) and only seg1
		// probes. The unaligned groups therefore need the carry primed
		// for L — the generic body that processed the previous
		// straddle did exactly that, and the entry check verifies it.
		// Statistics, fills, victim and env events are those of the
		// equivalent generic bodies, which the differential tests pin.
		if dense && off == denseRB && count-i >= densePerLine {
			primed := denseRB == 0
			if !primed && l1Carry && uint64(va)>>pageShift == curVPage {
				primed = (va+pageDelta)>>d.lineShift<<d.lineShift == curLine1
			}
			if primed {
				groups := (count - i) / densePerLine
				un := uint64(densePerLine)
				// References charged to the one probe body: the whole
				// run when aligned, just the straddle's tail otherwise.
				puk := un
				probeOff := mem.Addr(0)
				if denseRB != 0 {
					puk = 1
					probeOff = mem.Addr(ls - 1)
				}
				// Per-group reference total in the all-hit load case:
				// the probed run when aligned, the replayed run plus
				// the straddle tail otherwise.
				gk := un
				if denseRB != 0 {
					gk = un + 1
				}
				pageSize := uint64(1) << pageShift
				for g := 0; g < groups; {
					// Load hit streak: while consecutive probes hit the
					// L1D, the only effects are counters and owner
					// updates, so a tight loop walks the direct-mapped
					// slots with an incrementing index. Bounded to the
					// probe's page so the translation memo stays valid;
					// span and carry state are reconciled once at the
					// end (L1 hits never touch the L2, so only the
					// final span matters — line order is monotonic).
					if !write {
						pva := va + probeOff
						if vp := uint64(pva) >> pageShift; vp != curVPage {
							pageDelta = env.TranslatePage(pva) - pva
							curVPage = vp
						}
						pa := pva + pageDelta
						line1 := pa >> d.lineShift << d.lineShift
						idx := uint64(line1>>d.lineShift) & d.setMask
						m := 0
						if s1 := &d.slots[idx]; s1.flags&flagValid != 0 && s1.tag == line1 {
							// First probe hits: bound the streak to this
							// page (the limit division is only paid when a
							// streak actually starts) and walk.
							limit := g + int((pageSize-1-(uint64(pva)&(pageSize-1)))>>d.lineShift) + 1
							if limit > groups {
								limit = groups
							}
							for g+m < limit {
								s1 = &d.slots[idx]
								if s1.flags&flagValid == 0 || s1.tag != line1 {
									break
								}
								s1.owner = tid
								line1 += mem.Addr(ls)
								idx = (idx + 1) & d.setMask
								m++
							}
						}
						if m > 0 {
							n := uint64(m) * gk
							dRefs += n
							dHits += n
							out.L1Refs += n
							lastLine2 := (pa + mem.Addr(uint64(m-1)*ls)) >> e.lineShift << e.lineShift
							if !carryOK || lastLine2 != curLine2 {
								curLine2, carryOK, l2Resident = lastLine2, true, false
							}
							curLine1, l1Carry, l1CarryHit = line1-mem.Addr(ls), true, true
							va += mem.Addr(uint64(m) * ls)
							i += m * densePerLine
							g += m
							continue
						}
					}
					if denseRB != 0 {
						// Replay the carried line's run and straddle
						// seg0 (n references in all). A load carry is
						// always a hit (misses fill); a store carry
						// replays the frozen outcome, and its L2 span
						// was probed when the line was, so the span
						// carry below still holds.
						dRefs += un
						if !write {
							dHits += un
							out.L1Refs += un
						} else {
							if l1CarryHit {
								dHits += un
							} else {
								dMisses += un
							}
							eRefs += un
							eHits += un
							out.L2HitRefs += un
						}
					}
					pva := va + probeOff
					if vp := uint64(pva) >> pageShift; vp != curVPage {
						pageDelta = env.TranslatePage(pva) - pva
						curVPage = vp
					}
					pa := pva + pageDelta
					line1 := pa >> d.lineShift << d.lineShift
					line2 := pa >> e.lineShift << e.lineShift
					if !carryOK || line2 != curLine2 {
						curLine2, carryOK, l2Resident = line2, true, false
					}
					dRefs += puk
					s1 := &d.slots[uint64(line1>>d.lineShift)&d.setMask]
					curLine1, l1Carry = line1, true
					if !write {
						l1CarryHit = true
						if s1.flags&flagValid != 0 && s1.tag == line1 {
							dHits += puk
							s1.owner = tid
							out.L1Refs += puk
						} else {
							dMisses++
							dHits += puk - 1
							out.L1Refs += puk - 1
							eRefs++
							if l2Resident {
								eHits++
								out.L2HitRefs++
							} else {
								s2 := &e.slots[uint64(line2>>e.lineShift)&e.setMask]
								if s2.flags&flagValid != 0 && s2.tag == line2 {
									eHits++
									out.L2HitRefs++
									s2.owner = tid
								} else {
									eMisses++
									victim := e.fillMissedDM(s2, line2, tid, false, false)
									if victim.Valid {
										span := uint64(e.cfg.LineSize)
										h.L1I.InvalidateSpan(victim.Line, span)
										h.L1D.InvalidateSpan(victim.Line, span)
									}
									if env.LineMiss(pva, line2, false, victim) {
										out.RemoteMisses++
									} else {
										out.CleanMisses++
									}
								}
								l2Resident = true
							}
							if s1.flags&flagValid != 0 {
								d.stats.Evictions++
								if s1.flags&flagDirty != 0 {
									d.stats.Writebacks++
								}
							} else {
								d.valid++
							}
							s1.tag, s1.flags, s1.owner = line1, flagValid, tid
						}
					} else {
						l1hit := s1.flags&flagValid != 0 && s1.tag == line1
						l1CarryHit = l1hit
						if l1hit {
							dHits += puk
							s1.owner = tid
						} else {
							dMisses += puk
						}
						eRefs += puk
						if l2Resident {
							eHits += puk
							out.L2HitRefs += puk
						} else {
							s2 := &e.slots[uint64(line2>>e.lineShift)&e.setMask]
							if s2.flags&flagValid != 0 && s2.tag == line2 {
								eHits += puk
								out.L2HitRefs += puk
								if s2.flags&flagShared != 0 {
									s2.flags &^= flagShared
									if coherent {
										env.SharedStore(line2)
									}
								}
								s2.flags |= flagDirty
								s2.owner = tid
								if coherent {
									env.DirtyStore(line2)
								}
							} else {
								eMisses++
								eHits += puk - 1
								out.L2HitRefs += puk - 1
								victim := e.fillMissedDM(s2, line2, tid, true, false)
								if victim.Valid {
									span := uint64(e.cfg.LineSize)
									h.L1I.InvalidateSpan(victim.Line, span)
									h.L1D.InvalidateSpan(victim.Line, span)
								}
								if env.LineMiss(pva, line2, true, victim) {
									out.RemoteMisses++
								} else {
									out.CleanMisses++
								}
							}
							l2Resident = true
						}
					}
					va += mem.Addr(ls)
					i += densePerLine
					g++
				}
				continue
			}
		}
		// Run length: references i..i+k-1 stay on va's line without
		// straddling. A straddling reference (unaligned or large) is
		// one reference probing two lines: it runs the body below twice
		// with k=1, once for each endpoint's line — the same two probes
		// the per-reference path issues, so statistics, fills and
		// events are identical, and the L2 span carry stays valid (the
		// segments are just more k=1 runs in monotonic line order).
		var k int
		nseg := 1
		if off+uint64(a.Size) > ls {
			k = 1
			nseg = 2
		} else if strideShift >= 0 {
			k = int((ls-size-off)>>strideShift) + 1
		} else {
			k = int((ls-size-off)/stride) + 1
		}
		if k > count-i {
			k = count - i
		}
		uk := uint64(k)
		i += k
		for seg := 0; seg < nseg; seg++ {
			if seg == 1 {
				// Second half of a straddle: probe the endpoint's line
				// (which may sit on the next virtual page — the page memo
				// re-translates).
				va += mem.Addr(a.Size - 1)
			}
			vpage := uint64(va) >> pageShift
			if vpage != curVPage {
				pageDelta = env.TranslatePage(va) - va
				curVPage = vpage
			}
			pa := va + pageDelta
			line2 := pa >> e.lineShift << e.lineShift
			if !carryOK || line2 != curLine2 {
				curLine2, carryOK, l2Resident = line2, true, false
			}
			line1 := pa >> d.lineShift << d.lineShift
			dRefs += uk

			if !write {
				if l1Carry && line1 == curLine1 {
					// Carried: this sweep's previous run left line1
					// resident and owned by tid, so the probe's outcome
					// is known without loading the slot.
					dHits += uk
					if d.classify != nil {
						d.classify.touch(line1)
					}
					out.L1Refs += uk
					continue
				}
				curLine1, l1Carry, l1CarryHit = line1, true, true
				s1 := &d.slots[uint64(line1>>d.lineShift)&d.setMask]
				if s1.flags&flagValid != 0 && s1.tag == line1 {
					// Load run satisfied by the L1D: k hits, no L2 traffic.
					dHits += uk
					s1.owner = tid
					if d.classify != nil {
						d.classify.touch(line1)
					}
					out.L1Refs += uk
					continue
				}
				// Load run that missed the L1D: one L2 access, then the
				// line fills into L1D and the k-1 repeats hit there.
				dMisses++
				dHits += uk - 1
				out.L1Refs += uk - 1
				if d.classify != nil {
					d.classify.classify(line1)
					d.classify.touch(line1)
				}
				eRefs++
				if l2Resident {
					// Span carry: the line is resident with tid's ownership
					// already attributed by this span's earlier runs.
					eHits++
					out.L2HitRefs++
					if e.classify != nil {
						e.classify.touch(line2)
					}
				} else {
					s2 := &e.slots[uint64(line2>>e.lineShift)&e.setMask]
					if s2.flags&flagValid != 0 && s2.tag == line2 {
						eHits++
						out.L2HitRefs++
						s2.owner = tid
						if e.classify != nil {
							e.classify.touch(line2)
						}
					} else {
						eMisses++
						if e.classify != nil {
							e.classify.classify(line2)
							e.classify.touch(line2)
						}
						victim := e.fillMissedDM(s2, line2, tid, false, false)
						if victim.Valid {
							// Inclusion: invalidate the victim's span from
							// both L1s BEFORE filling our line into L1D —
							// the victim shares the L2 set with our line,
							// so its L1D sublines occupy the very slots the
							// fill below is about to claim.
							span := uint64(e.cfg.LineSize)
							h.L1I.InvalidateSpan(victim.Line, span)
							h.L1D.InvalidateSpan(victim.Line, span)
						}
						if env.LineMiss(va, line2, false, victim) {
							out.RemoteMisses++
						} else {
							out.CleanMisses++
						}
					}
					l2Resident = true
				}
				// Fill the L1D last, matching the per-reference order (the
				// inclusion invalidation above may have cleared this very
				// slot; the probe's miss outcome still stands, but the
				// victim must be read from the slot's state now). With no
				// listener attached (the machine only listens on the L2)
				// the fill inlines to the slot update and its statistics
				// — exactly what fillMissedDM plus fillSlot would do,
				// minus their calls and the victim value nobody consumes.
				if d.listener == nil {
					if s1.flags&flagValid != 0 {
						d.stats.Evictions++
						if s1.flags&flagDirty != 0 {
							d.stats.Writebacks++
						}
					} else {
						d.valid++
					}
					s1.tag = line1
					s1.flags = flagValid
					s1.owner = tid
				} else {
					d.fillMissedDM(s1, line1, tid, false, false)
				}
				continue
			}

			// Store run. The write-through L1D is probed with write=false
			// (the dirty bit lives in the L2) and never allocates on
			// stores, so the whole run repeats the first reference's
			// hit-or-miss outcome; every reference proceeds to the L2.
			// A carried line replays the frozen outcome without
			// re-loading the slot (a hit's owner is already tid).
			var l1hit bool
			if l1Carry && line1 == curLine1 {
				l1hit = l1CarryHit
				if l1hit {
					dHits += uk
					if d.classify != nil {
						d.classify.touch(line1)
					}
				} else {
					dMisses += uk
					if d.classify != nil {
						for j := 0; j < k; j++ {
							d.classify.classify(line1)
							d.classify.touch(line1)
						}
					}
				}
			} else {
				s1 := &d.slots[uint64(line1>>d.lineShift)&d.setMask]
				l1hit = s1.flags&flagValid != 0 && s1.tag == line1
				curLine1, l1Carry, l1CarryHit = line1, true, l1hit
				if l1hit {
					dHits += uk
					s1.owner = tid
					if d.classify != nil {
						d.classify.touch(line1)
					}
				} else {
					dMisses += uk
					if d.classify != nil {
						// Each replayed miss classifies, exactly as k Lookup
						// calls would (after the first, the line is in the
						// shadow, so repeats classify as conflict).
						for j := 0; j < k; j++ {
							d.classify.classify(line1)
							d.classify.touch(line1)
						}
					}
				}
			}
			eRefs += uk
			if l2Resident {
				// Span carry: dirtiness and ownership were attributed when
				// the span's first store touched the line.
				eHits += uk
				out.L2HitRefs += uk
				if e.classify != nil {
					e.classify.touch(line2)
				}
				continue
			}
			s2 := &e.slots[uint64(line2>>e.lineShift)&e.setMask]
			if s2.flags&flagValid != 0 && s2.tag == line2 {
				eHits += uk
				out.L2HitRefs += uk
				if s2.flags&flagShared != 0 {
					// Store to a line cached shared: clear the local mark
					// and have the machine invalidate the other copies (the
					// per-reference path does this before its probe; the
					// two orders touch disjoint state and commute).
					s2.flags &^= flagShared
					if coherent {
						env.SharedStore(line2)
					}
				}
				s2.flags |= flagDirty
				s2.owner = tid
				if e.classify != nil {
					e.classify.touch(line2)
				}
				if coherent {
					// One directory update covers the span: the
					// per-reference path's per-run setDirty is idempotent.
					env.DirtyStore(line2)
				}
			} else {
				// Store miss: the first reference write-allocates the line
				// dirty (the machine's fill owns it in the directory, so no
				// DirtyStore is needed); the k-1 repeats hit it.
				eMisses++
				eHits += uk - 1
				out.L2HitRefs += uk - 1
				if e.classify != nil {
					e.classify.classify(line2)
					e.classify.touch(line2)
				}
				victim := e.fillMissedDM(s2, line2, tid, true, false)
				if victim.Valid {
					span := uint64(e.cfg.LineSize)
					h.L1I.InvalidateSpan(victim.Line, span)
					h.L1D.InvalidateSpan(victim.Line, span)
				}
				if env.LineMiss(va, line2, true, victim) {
					out.RemoteMisses++
				} else {
					out.CleanMisses++
				}
			}
			l2Resident = true
		}
	}
	d.stats.Refs += dRefs
	d.stats.Hits += dHits
	d.stats.Misses += dMisses
	e.stats.Refs += eRefs
	e.stats.Hits += eHits
	e.stats.Misses += eMisses
	return out
}

// fillMissedDM fills line into the probed slot s of a direct-mapped
// cache, under the caller's guarantee that s does not currently hold
// line (the probe just missed). It is insertDM minus the resident
// check and the slot re-derivation, returning the displaced victim if
// s held another valid line.
func (c *Cache) fillMissedDM(s *slot, line mem.Addr, tid mem.ThreadID, dirty, shared bool) Victim {
	if s.flags&flagValid != 0 {
		victim := Victim{
			Valid: true,
			Line:  s.tag,
			Dirty: s.flags&flagDirty != 0,
			Owner: s.owner,
		}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
		c.valid--
		if c.listener != nil {
			c.listener.Evicted(victim.Line, victim.Dirty)
		}
		c.fillSlot(s, line, tid, dirty, shared)
		return victim
	}
	c.fillSlot(s, line, tid, dirty, shared)
	return Victim{}
}
