package cachesim

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// The direct-mapped fast lanes (lookupDM, insertDM, the inlined probe in
// Repeat, and Hierarchy.dataDM) must be observationally identical to the
// generic way-scan paths on an Assoc==1 geometry. These tests drive both
// implementations — forceGeneric pins a cache to the generic path — with
// the same pseudo-random operation stream and require every observable
// to match: statistics, return values, listener event order, residency,
// dirty/shared/owner state, and classification.

// lcg is a tiny deterministic generator so the differential streams are
// reproducible without seeding the global rand.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 11
}

// eventRec records listener callbacks in order.
type eventRec struct {
	events []string
}

func (e *eventRec) Filled(line mem.Addr, tid mem.ThreadID) {
	e.events = append(e.events, fmt.Sprintf("fill %x by %d", line, tid))
}

func (e *eventRec) Evicted(line mem.Addr, dirty bool) {
	e.events = append(e.events, fmt.Sprintf("evict %x dirty=%v", line, dirty))
}

func dmConfig() Config {
	return Config{Name: "DM", Size: 4096, LineSize: 64, Assoc: 1, HitCycles: 1}
}

// snapshot captures every externally observable piece of cache state.
func snapshot(c *Cache) string {
	var s string
	st := c.Stats()
	s += fmt.Sprintf("stats=%+v valid=%d classify=%+v\n", st, c.ValidLines(), c.ClassifyStats())
	c.ForEachValidLine(func(line mem.Addr, owner mem.ThreadID) {
		s += fmt.Sprintf("line %x owner=%d dirty=%v shared=%v\n",
			line, owner, c.IsDirty(line), c.IsShared(line))
	})
	return s
}

func TestDirectMappedFastLaneDifferential(t *testing.T) {
	fast := New(dmConfig())
	slow := New(dmConfig())
	slow.forceGeneric = true
	if fast.direct != true || slow.direct != true {
		t.Fatal("both caches should report a direct-mapped geometry")
	}
	fast.EnableClassification()
	slow.EnableClassification()
	fastEv, slowEv := &eventRec{}, &eventRec{}
	fast.SetListener(fastEv)
	slow.SetListener(slowEv)

	rng := lcg(12345)
	const span = 64 * 1024 // 16× the cache: plenty of conflicts
	for step := 0; step < 20000; step++ {
		op := rng.next() % 100
		a := mem.Addr(rng.next() % span)
		tid := mem.ThreadID(rng.next() % 4)
		write := rng.next()%2 == 0
		switch {
		case op < 45: // lookup
			got, want := fast.Lookup(tid, a, write), slow.Lookup(tid, a, write)
			if got != want {
				t.Fatalf("step %d: Lookup(%d, %x, %v) fast=%v generic=%v", step, tid, a, write, got, want)
			}
		case op < 75: // insert
			shared := rng.next()%8 == 0
			v1 := fast.Insert(tid, a, write, shared)
			v2 := slow.Insert(tid, a, write, shared)
			if v1 != v2 {
				t.Fatalf("step %d: Insert(%d, %x, %v, %v) fast=%+v generic=%+v", step, tid, a, write, shared, v1, v2)
			}
		case op < 80: // repeat replay after a priming lookup
			k := int(rng.next()%6) + 1
			hit, hitSlow := fast.Lookup(tid, a, write), slow.Lookup(tid, a, write)
			if hit != hitSlow {
				t.Fatalf("step %d: priming Lookup(%d, %x, %v) fast=%v generic=%v", step, tid, a, write, hit, hitSlow)
			}
			if hit {
				// Resident: the stronger RepeatHit contract applies.
				fast.RepeatHit(tid, a, write, k)
				slow.RepeatHit(tid, a, write, k)
			} else {
				fast.Repeat(tid, a, write, k)
				slow.Repeat(tid, a, write, k)
			}
		case op < 88: // invalidate
			p1, d1 := fast.Invalidate(a)
			p2, d2 := slow.Invalidate(a)
			if p1 != p2 || d1 != d2 {
				t.Fatalf("step %d: Invalidate(%x) fast=(%v,%v) generic=(%v,%v)", step, a, p1, d1, p2, d2)
			}
		case op < 92: // span invalidate
			n1 := fast.InvalidateSpan(a, 256)
			n2 := slow.InvalidateSpan(a, 256)
			if n1 != n2 {
				t.Fatalf("step %d: InvalidateSpan(%x) fast=%d generic=%d", step, a, n1, n2)
			}
		case op < 95:
			fast.ClearDirty(a)
			slow.ClearDirty(a)
		case op < 98:
			sh := rng.next()%2 == 0
			fast.SetShared(a, sh)
			slow.SetShared(a, sh)
		default:
			fast.Flush()
			slow.Flush()
		}
		if fast.Contains(a) != slow.Contains(a) {
			t.Fatalf("step %d: residency of %x diverged", step, a)
		}
	}
	if got, want := snapshot(fast), snapshot(slow); got != want {
		t.Fatalf("final state diverged:\nfast:\n%s\ngeneric:\n%s", got, want)
	}
	if len(fastEv.events) != len(slowEv.events) {
		t.Fatalf("event counts diverged: fast=%d generic=%d", len(fastEv.events), len(slowEv.events))
	}
	for i := range fastEv.events {
		if fastEv.events[i] != slowEv.events[i] {
			t.Fatalf("event %d diverged: fast=%q generic=%q", i, fastEv.events[i], slowEv.events[i])
		}
	}
	if fast.Stats().Refs == 0 || fast.Stats().Evictions == 0 {
		t.Fatal("stream exercised no traffic or no evictions; widen it")
	}
}

// TestDirectMappedInsertVictims pins the Insert return value (victim
// identity, dirtiness, owner) across the two paths with a dedicated
// stream, since the main differential test cannot compare draws made
// inside the case arm.
func TestDirectMappedInsertVictims(t *testing.T) {
	fast := New(dmConfig())
	slow := New(dmConfig())
	slow.forceGeneric = true
	rng := lcg(99)
	for step := 0; step < 8000; step++ {
		a := mem.Addr(rng.next() % (32 * 1024))
		tid := mem.ThreadID(rng.next() % 3)
		dirty := rng.next()%2 == 0
		shared := rng.next()%8 == 0
		v1 := fast.Insert(tid, a, dirty, shared)
		v2 := slow.Insert(tid, a, dirty, shared)
		if v1 != v2 {
			t.Fatalf("step %d: Insert(%d, %x, %v, %v) victims diverged: fast=%+v generic=%+v",
				step, tid, a, dirty, shared, v1, v2)
		}
	}
	if fast.Stats() != slow.Stats() {
		t.Fatalf("stats diverged: fast=%+v generic=%+v", fast.Stats(), slow.Stats())
	}
}

// TestHierarchyDataDMDifferential drives the fused hierarchy data lane
// against the generic dispatch on the UltraSPARC-like geometry (both
// L1D and L2 direct-mapped) and compares results and per-cache stats.
func TestHierarchyDataDMDifferential(t *testing.T) {
	mk := func() *Hierarchy {
		return NewHierarchy(
			Config{Name: "L1I", Size: 16 << 10, LineSize: 32, Assoc: 2, HitCycles: 1},
			Config{Name: "L1D", Size: 16 << 10, LineSize: 32, Assoc: 1, HitCycles: 1},
			Config{Name: "E", Size: 256 << 10, LineSize: 64, Assoc: 1, HitCycles: 6},
		)
	}
	fast := mk()
	slow := mk()
	slow.L1D.forceGeneric = true
	slow.L2.forceGeneric = true
	if !fast.dmData {
		t.Fatal("geometry should enable the data fast lane")
	}

	rng := lcg(2718)
	const span = 2 << 20
	for step := 0; step < 60000; step++ {
		a := mem.Addr(rng.next() % span)
		tid := mem.ThreadID(rng.next() % 4)
		write := rng.next()%3 == 0
		shared := rng.next()%16 == 0
		r1 := fast.Data(tid, a, write, shared)
		r2 := slow.Data(tid, a, write, shared)
		if r1 != r2 {
			t.Fatalf("step %d: Data(%d, %x, %v, %v) fast=%+v generic=%+v", step, tid, a, write, shared, r1, r2)
		}
		if rng.next()%64 == 0 {
			p1, d1 := fast.InvalidateLine(a)
			p2, d2 := slow.InvalidateLine(a)
			if p1 != p2 || d1 != d2 {
				t.Fatalf("step %d: InvalidateLine diverged", step)
			}
		}
	}
	for _, pair := range []struct {
		name string
		f, s *Cache
	}{{"L1I", fast.L1I, slow.L1I}, {"L1D", fast.L1D, slow.L1D}, {"L2", fast.L2, slow.L2}} {
		if pair.f.Stats() != pair.s.Stats() {
			t.Fatalf("%s stats diverged:\nfast:    %+v\ngeneric: %+v", pair.name, pair.f.Stats(), pair.s.Stats())
		}
	}
	if v, ok := fast.CheckInclusion(); !ok {
		t.Fatalf("fast hierarchy violates inclusion at %x", v)
	}
	if fast.L2.Stats().Misses == 0 {
		t.Fatal("stream took no L2 misses; widen it")
	}
}
