package cachesim

import (
	"testing"

	"repro/internal/mem"
)

// classifying cache: 8 lines, direct-mapped, 64B lines.
func classifyCache() *Cache {
	c := New(Config{Name: "C", Size: 512, LineSize: 64, Assoc: 1, HitCycles: 1})
	c.EnableClassification()
	return c
}

// miss drives the fill-on-miss contract the classifier assumes.
func miss(c *Cache, a mem.Addr) {
	if !c.Lookup(1, a, false) {
		c.Insert(1, a, false, false)
	}
}

func TestFirstTouchIsCompulsory(t *testing.T) {
	c := classifyCache()
	for i := mem.Addr(0); i < 8; i++ {
		miss(c, i*64)
	}
	st := c.ClassifyStats()
	if st.Compulsory != 8 || st.Capacity != 0 || st.Conflict != 0 {
		t.Errorf("stats = %+v, want 8 compulsory", st)
	}
}

func TestConflictMiss(t *testing.T) {
	// Two lines mapping to the same set of the 8-line cache, but a
	// fully-associative cache of 8 lines would hold both: alternating
	// accesses are conflict misses after the compulsory pair.
	c := classifyCache()
	for i := 0; i < 10; i++ {
		miss(c, 0x000)
		miss(c, 0x200)
	}
	st := c.ClassifyStats()
	if st.Compulsory != 2 {
		t.Errorf("compulsory = %d, want 2", st.Compulsory)
	}
	if st.Conflict != 18 {
		t.Errorf("conflict = %d, want 18", st.Conflict)
	}
	if st.Capacity != 0 {
		t.Errorf("capacity = %d, want 0", st.Capacity)
	}
}

func TestCapacityMiss(t *testing.T) {
	// A circular sweep over 16 distinct lines through an 8-line cache:
	// after the compulsory pass, every miss is a capacity miss (the
	// fully-associative shadow also evicted the line).
	c := classifyCache()
	for round := 0; round < 4; round++ {
		for i := mem.Addr(0); i < 16; i++ {
			miss(c, i*64)
		}
	}
	st := c.ClassifyStats()
	if st.Compulsory != 16 {
		t.Errorf("compulsory = %d, want 16", st.Compulsory)
	}
	if st.Capacity != 48 {
		t.Errorf("capacity = %d, want 48", st.Capacity)
	}
	if st.Conflict != 0 {
		t.Errorf("conflict = %d, want 0 for a uniform sweep", st.Conflict)
	}
}

func TestClassifiedTotalsMatchMisses(t *testing.T) {
	c := classifyCache()
	for i := 0; i < 5000; i++ {
		miss(c, mem.Addr((i*7919)%4096)*64%(1<<14))
	}
	if got, want := c.ClassifyStats().Total(), c.Stats().Misses; got != want {
		t.Errorf("classified %d of %d misses", got, want)
	}
}

func TestClassificationOffByDefault(t *testing.T) {
	c := New(Config{Name: "C", Size: 512, LineSize: 64, Assoc: 1, HitCycles: 1})
	miss(c, 0)
	if c.ClassifyStats() != (ClassifyStats{}) {
		t.Error("stats nonzero without EnableClassification")
	}
}

func TestMissKindString(t *testing.T) {
	if MissCompulsory.String() != "compulsory" || MissCapacity.String() != "capacity" ||
		MissConflict.String() != "conflict" || MissKind(9).String() != "unknown" {
		t.Error("names wrong")
	}
}
