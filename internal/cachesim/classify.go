package cachesim

import (
	"container/list"

	"repro/internal/mem"
)

// Miss classification (Hill's three C's): a miss is *compulsory* if the
// line was never resident before, *capacity* if even a fully-associative
// LRU cache of the same size would have missed, and *conflict*
// otherwise (the line was evicted only because of set mapping). The
// paper leans on this taxonomy twice: raytrace's "majority of misses
// are conflict misses that do not significantly increase the footprint"
// (Figure 7) and tsp's compulsory initialization misses that no
// scheduling policy can remove (Section 5).
//
// Classification is optional (EnableClassification) because the
// fully-associative shadow costs a map operation per reference.

// MissKind labels a classified miss.
type MissKind int

// The three C's.
const (
	MissCompulsory MissKind = iota
	MissCapacity
	MissConflict
)

func (k MissKind) String() string {
	switch k {
	case MissCompulsory:
		return "compulsory"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// ClassifyStats holds the per-kind miss counts.
type ClassifyStats struct {
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// Total returns the classified miss count.
func (c ClassifyStats) Total() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// classifier is the optional fully-associative LRU shadow plus the
// ever-seen set.
type classifier struct {
	capacity int
	seen     map[mem.Addr]struct{}
	order    *list.List // front = most recent; values are line addresses
	index    map[mem.Addr]*list.Element
	stats    ClassifyStats
}

func newClassifier(capacity int) *classifier {
	return &classifier{
		capacity: capacity,
		seen:     make(map[mem.Addr]struct{}),
		order:    list.New(),
		index:    make(map[mem.Addr]*list.Element),
	}
}

// touch records a reference to line in the shadow (hit-or-fill), with
// LRU eviction at capacity.
func (c *classifier) touch(line mem.Addr) {
	if el, ok := c.index[line]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.index[line] = c.order.PushFront(line)
	if c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(mem.Addr))
	}
}

// classify labels a miss on line, updates the stats, and marks the line
// seen. Call before touch.
func (c *classifier) classify(line mem.Addr) MissKind {
	if _, ok := c.seen[line]; !ok {
		c.seen[line] = struct{}{}
		c.stats.Compulsory++
		return MissCompulsory
	}
	if _, resident := c.index[line]; resident {
		// The fully-associative shadow still holds it: only the set
		// mapping evicted it.
		c.stats.Conflict++
		return MissConflict
	}
	c.stats.Capacity++
	return MissCapacity
}

// EnableClassification turns on miss classification for this cache.
// Call before issuing traffic; enabling mid-stream classifies only
// subsequent misses.
func (c *Cache) EnableClassification() {
	if c.classify == nil {
		c.classify = newClassifier(c.cfg.Lines())
	}
}

// ClassifyStats returns the per-kind miss counts (zero if
// classification is off).
func (c *Cache) ClassifyStats() ClassifyStats {
	if c.classify == nil {
		return ClassifyStats{}
	}
	return c.classify.stats
}
