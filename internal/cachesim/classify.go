package cachesim

import (
	"math/bits"

	"repro/internal/mem"
)

// Miss classification (Hill's three C's): a miss is *compulsory* if the
// line was never resident before, *capacity* if even a fully-associative
// LRU cache of the same size would have missed, and *conflict*
// otherwise (the line was evicted only because of set mapping). The
// paper leans on this taxonomy twice: raytrace's "majority of misses
// are conflict misses that do not significantly increase the footprint"
// (Figure 7) and tsp's compulsory initialization misses that no
// scheduling policy can remove (Section 5).
//
// Classification is optional (EnableClassification) because the
// fully-associative shadow costs an index operation per reference.

// MissKind labels a classified miss.
type MissKind int

// The three C's.
const (
	MissCompulsory MissKind = iota
	MissCapacity
	MissConflict
)

func (k MissKind) String() string {
	switch k {
	case MissCompulsory:
		return "compulsory"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// ClassifyStats holds the per-kind miss counts.
type ClassifyStats struct {
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// Total returns the classified miss count.
func (c ClassifyStats) Total() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// cnode is one shadow-resident line: an arena slot threaded onto both
// the intrusive LRU list and its hash bucket's chain.
type cnode struct {
	line  mem.Addr
	prev  int32 // towards MRU; -1 at head
	next  int32 // towards LRU; -1 at tail
	hnext int32 // next node in the same hash bucket; -1 at chain end
}

// classifier is the optional fully-associative LRU shadow plus the
// ever-seen set. Both structures are arena-backed: the shadow is a
// fixed node arena (at most capacity lines are ever resident) with an
// intrusive doubly-linked LRU order and a chained hash index over
// bucket heads, and the seen set is an insert-only open-addressed
// table. Neither allocates per reference, and eviction recycles the
// arena slot in place — no container/list, no map churn.
type classifier struct {
	capacity int
	stats    ClassifyStats

	// Shadow LRU.
	nodes      []cnode
	head, tail int32   // MRU / LRU arena indices, -1 when empty
	table      []int32 // hash bucket heads (arena indices), -1 empty
	shift      uint    // multiplicative-hash shift for table's size

	// Ever-seen set: open addressing, line+1 stored so the zero value
	// marks an empty slot; insert-only, grown at 3/4 load.
	seen  []uint64
	seenN int
}

func newClassifier(capacity int) *classifier {
	c := &classifier{capacity: capacity, head: -1, tail: -1}
	size := 16
	for size < 2*capacity {
		size *= 2
	}
	c.table = make([]int32, size)
	for i := range c.table {
		c.table[i] = -1
	}
	c.shift = uint(64 - bits.TrailingZeros(uint(size)))
	c.nodes = make([]cnode, 0, capacity)
	c.seen = make([]uint64, 1024)
	return c
}

// hashLine spreads line-aligned addresses over [0, len(table)).
func (c *classifier) hashLine(line mem.Addr) int {
	return int((uint64(line) * 0x9E3779B97F4A7C15) >> c.shift)
}

// lookup returns the arena index of line's shadow node, or -1.
func (c *classifier) lookup(line mem.Addr) int32 {
	for i := c.table[c.hashLine(line)]; i >= 0; i = c.nodes[i].hnext {
		if c.nodes[i].line == line {
			return i
		}
	}
	return -1
}

// unhash removes node i from its hash bucket's chain.
func (c *classifier) unhash(i int32) {
	b := c.hashLine(c.nodes[i].line)
	if c.table[b] == i {
		c.table[b] = c.nodes[i].hnext
		return
	}
	for p := c.table[b]; p >= 0; p = c.nodes[p].hnext {
		if c.nodes[p].hnext == i {
			c.nodes[p].hnext = c.nodes[i].hnext
			return
		}
	}
}

// moveToFront makes node i the MRU end of the LRU list.
func (c *classifier) moveToFront(i int32) {
	if c.head == i {
		return
	}
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	}
	if c.tail == i {
		c.tail = n.prev
	}
	n.prev, n.next = -1, c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// touch records a reference to line in the shadow (hit-or-fill), with
// LRU eviction at capacity.
func (c *classifier) touch(line mem.Addr) {
	if c.capacity == 0 {
		return
	}
	if i := c.lookup(line); i >= 0 {
		c.moveToFront(i)
		return
	}
	var i int32
	if len(c.nodes) < c.capacity {
		c.nodes = append(c.nodes, cnode{})
		i = int32(len(c.nodes) - 1)
	} else {
		// Recycle the LRU node in place.
		i = c.tail
		c.unhash(i)
		c.tail = c.nodes[i].prev
		if c.tail >= 0 {
			c.nodes[c.tail].next = -1
		} else {
			c.head = -1
		}
	}
	n := &c.nodes[i]
	n.line = line
	n.prev, n.next = -1, c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
	b := c.hashLine(line)
	n.hnext = c.table[b]
	c.table[b] = i
}

// seenHas reports whether line was ever inserted, inserting it if not
// (one probe sequence serves both).
func (c *classifier) seenInsert(line mem.Addr) (added bool) {
	key := uint64(line) + 1
	mask := uint64(len(c.seen) - 1)
	h := (uint64(line) * 0x9E3779B97F4A7C15) & mask
	for {
		switch c.seen[h] {
		case key:
			return false
		case 0:
			c.seen[h] = key
			c.seenN++
			if 4*c.seenN >= 3*len(c.seen) {
				c.growSeen()
			}
			return true
		}
		h = (h + 1) & mask
	}
}

func (c *classifier) growSeen() {
	old := c.seen
	c.seen = make([]uint64, 2*len(old))
	mask := uint64(len(c.seen) - 1)
	for _, key := range old {
		if key == 0 {
			continue
		}
		h := ((key - 1) * 0x9E3779B97F4A7C15) & mask
		for c.seen[h] != 0 {
			h = (h + 1) & mask
		}
		c.seen[h] = key
	}
}

// classify labels a miss on line, updates the stats, and marks the line
// seen. Call before touch.
func (c *classifier) classify(line mem.Addr) MissKind {
	if c.seenInsert(line) {
		c.stats.Compulsory++
		return MissCompulsory
	}
	if c.lookup(line) >= 0 {
		// The fully-associative shadow still holds it: only the set
		// mapping evicted it.
		c.stats.Conflict++
		return MissConflict
	}
	c.stats.Capacity++
	return MissCapacity
}

// EnableClassification turns on miss classification for this cache.
// Call before issuing traffic; enabling mid-stream classifies only
// subsequent misses.
func (c *Cache) EnableClassification() {
	if c.classify == nil {
		c.classify = newClassifier(c.cfg.Lines())
	}
}

// ClassifyStats returns the per-kind miss counts (zero if
// classification is off).
func (c *Cache) ClassifyStats() ClassifyStats {
	if c.classify == nil {
		return ClassifyStats{}
	}
	return c.classify.stats
}
