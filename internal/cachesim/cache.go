// Package cachesim implements the cache simulator the reproduction uses
// in place of the paper's Shade-based simulator. It provides a generic
// set-associative cache with LRU replacement, a three-cache UltraSPARC-1
// style hierarchy (L1 instruction, L1 data, unified external L2) with
// inclusion, and a footprint tracker that observes, per thread, how many
// of the thread's state lines are resident — the quantity the paper's
// analytical model predicts.
//
// All addresses handled by this package are physical; virtual-to-
// physical translation happens in the machine layer (see internal/vm and
// internal/machine).
package cachesim

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes one cache.
type Config struct {
	// Name identifies the cache in stats output ("L1D", "E").
	Name string
	// Size is the capacity in bytes (a power of two).
	Size int64
	// LineSize is the line size in bytes (a power of two).
	LineSize int
	// Assoc is the associativity; 1 means direct-mapped.
	Assoc int
	// HitCycles is the access latency charged on a hit in this cache.
	HitCycles int
}

// Lines returns the cache capacity in lines.
func (c Config) Lines() int { return int(c.Size) / c.LineSize }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

func (c Config) String() string {
	return fmt.Sprintf("%s: %dKB, %dB line, %d-way, hit %d cy",
		c.Name, c.Size/1024, c.LineSize, c.Assoc, c.HitCycles)
}

func (c Config) validate() {
	if !mem.IsPow2(uint64(c.Size)) || !mem.IsPow2(uint64(c.LineSize)) {
		// Invariant: geometry comes from machine.Config presets/Validate.
		panic(fmt.Sprintf("cachesim: %s size %d / line %d must be powers of two", c.Name, c.Size, c.LineSize))
	}
	if c.Assoc < 1 || c.Lines()%c.Assoc != 0 {
		// Invariant: associativity comes from the same validated config.
		panic(fmt.Sprintf("cachesim: %s bad associativity %d", c.Name, c.Assoc))
	}
}

// Victim describes a line displaced by an insertion.
type Victim struct {
	// Valid reports whether a line was actually displaced (false when
	// the fill landed in an empty way).
	Valid bool
	// Line is the line-aligned physical address of the displaced line.
	Line mem.Addr
	// Dirty reports whether the displaced line had been written and a
	// write-back is due.
	Dirty bool
	// Owner is the thread that last accessed the displaced line.
	Owner mem.ThreadID
}

// Stats accumulates per-cache event counts.
type Stats struct {
	Refs          uint64 // lookups
	Hits          uint64
	Misses        uint64
	Evictions     uint64 // valid lines displaced by fills
	Writebacks    uint64 // dirty lines displaced or invalidated
	Invalidations uint64 // lines removed by coherence or inclusion
}

// MissRate returns misses/refs, or 0 with no references.
func (s Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

// Listener observes line-level cache events. It is used by the footprint
// tracker; the machine layer tracks coherence through return values
// instead, so the hot path pays for a listener only when one is set.
type Listener interface {
	// Filled reports that line (line-aligned physical address) became
	// resident, brought in by thread tid.
	Filled(line mem.Addr, tid mem.ThreadID)
	// Evicted reports that line left the cache (displacement or
	// invalidation).
	Evicted(line mem.Addr, dirty bool)
}

// line flag bits.
const (
	flagValid  = 1 << 0
	flagDirty  = 1 << 1
	flagShared = 1 << 2 // cached by another CPU (coherence state)
)

// slot is one cache line's bookkeeping. Tag, flags and owner share one
// 16-byte struct (and therefore one hardware cache line per probe) —
// the simulator's hottest loads — rather than living in parallel
// arrays. LRU recency lives in a separate side array because the
// direct-mapped fast lanes never read it; keeping it out of slot makes
// the hot array a third smaller.
type slot struct {
	tag   mem.Addr // line-aligned physical address
	owner mem.ThreadID
	flags uint8
}

// Cache is a single set-associative cache. The zero value is unusable;
// construct with New. Cache is not safe for concurrent use.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	sets      int
	ways      int
	// direct marks the Assoc==1 fast lane: set index == slot index, no
	// way scan and no LRU bookkeeping (recency is meaningless with one
	// way). The E-cache every experiment hammers is direct-mapped, so
	// this is the simulator's single hottest specialization.
	direct bool
	// forceGeneric disables the fast lane so the differential tests can
	// drive the generic way-scan path on an Assoc==1 geometry and
	// compare. Test-only; never set outside this package.
	forceGeneric bool

	// Slot i of set s lives at index s*ways+i.
	slots []slot
	// lastUse[i] is slot i's LRU timestamp; only the generic
	// (associative) paths read or write it.
	lastUse []uint64

	useClock uint64
	valid    int // number of valid lines
	stats    Stats

	listener Listener
	// classify, when non-nil, labels every miss with Hill's three C's
	// against a fully-associative LRU shadow (see classify.go). It
	// assumes fill-on-miss, which holds for the E-cache.
	classify *classifier
}

// New constructs a cache from its configuration.
func New(cfg Config) *Cache {
	cfg.validate()
	c := &Cache{
		cfg:       cfg,
		lineShift: mem.Log2(uint64(cfg.LineSize)),
		setMask:   uint64(cfg.Sets() - 1),
		sets:      cfg.Sets(),
		ways:      cfg.Assoc,
		direct:    cfg.Assoc == 1,
		slots:     make([]slot, cfg.Lines()),
		lastUse:   make([]uint64, cfg.Lines()),
	}
	for i := range c.slots {
		c.slots[i].owner = mem.NilThread
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetListener installs (or clears, with nil) the line event listener.
func (c *Cache) SetListener(l Listener) { c.listener = l }

// ValidLines returns the number of currently valid lines.
func (c *Cache) ValidLines() int { return c.valid }

// LineOf returns the line-aligned address containing a.
func (c *Cache) LineOf(a mem.Addr) mem.Addr { return a >> c.lineShift << c.lineShift }

func (c *Cache) setOf(line mem.Addr) int {
	return int(uint64(line>>c.lineShift) & c.setMask)
}

// find returns the slot index holding line, or -1.
func (c *Cache) find(line mem.Addr) int {
	if c.direct && !c.forceGeneric {
		i := c.setOf(line)
		if s := &c.slots[i]; s.flags&flagValid != 0 && s.tag == line {
			return i
		}
		return -1
	}
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if s := &c.slots[i]; s.flags&flagValid != 0 && s.tag == line {
			return i
		}
	}
	return -1
}

// Lookup probes the cache for the line containing a. On a hit it updates
// recency, attributes the line to tid, and marks it dirty when write is
// set. It reports whether the probe hit. Lookup counts one reference.
func (c *Cache) Lookup(tid mem.ThreadID, a mem.Addr, write bool) bool {
	if c.direct && !c.forceGeneric {
		return c.lookupDM(tid, a, write)
	}
	c.stats.Refs++
	line := c.LineOf(a)
	i := c.find(line)
	if i < 0 {
		c.stats.Misses++
		if c.classify != nil {
			c.classify.classify(line)
			c.classify.touch(line)
		}
		return false
	}
	c.stats.Hits++
	if c.classify != nil {
		c.classify.touch(line)
	}
	c.useClock++
	c.lastUse[i] = c.useClock
	s := &c.slots[i]
	s.owner = tid
	if write {
		s.flags |= flagDirty
	}
	return true
}

// lookupDM is the direct-mapped Lookup fast lane: the set index IS the
// slot index, so the probe is one tag compare, and the LRU clock is
// never advanced (recency cannot influence victim choice in a one-way
// set). Statistics, classification and ownership attribution are
// identical to the generic path — the differential tests in
// cache_fastpath_test.go pin that equivalence.
func (c *Cache) lookupDM(tid mem.ThreadID, a mem.Addr, write bool) bool {
	c.stats.Refs++
	line := a >> c.lineShift << c.lineShift
	s := &c.slots[uint64(line>>c.lineShift)&c.setMask]
	if s.flags&flagValid == 0 || s.tag != line {
		c.stats.Misses++
		if c.classify != nil {
			c.classify.classify(line)
			c.classify.touch(line)
		}
		return false
	}
	c.stats.Hits++
	if c.classify != nil {
		c.classify.touch(line)
	}
	s.owner = tid
	if write {
		s.flags |= flagDirty
	}
	return true
}

// Repeat replays the bookkeeping of k further Lookup calls for the
// line containing a, under the caller's guarantee that the outcome is
// frozen: no fill or eviction can happen between the replayed
// references, so they all hit if the line is resident now and all miss
// otherwise (the machine's same-line run batching — repeat loads hit
// the line the first reference left resident; repeat stores see the
// non-allocating write-through L1D unchanged). Event-for-event
// identical to k Lookups: statistics; the classifier shadow (k touches
// of one line leave the LRU stack exactly as one; k misses classify
// each time, as Lookup would); ownership and dirty marking on hits;
// and — on the generic path — the recency clock, which advances once
// per hit.
func (c *Cache) Repeat(tid mem.ThreadID, a mem.Addr, write bool, k int) {
	if k <= 0 {
		return
	}
	line := c.LineOf(a)
	var i int
	if c.direct && !c.forceGeneric {
		i = int(uint64(line>>c.lineShift) & c.setMask)
		if s := &c.slots[i]; s.flags&flagValid == 0 || s.tag != line {
			i = -1
		}
	} else {
		i = c.find(line)
	}
	c.stats.Refs += uint64(k)
	if i < 0 {
		c.stats.Misses += uint64(k)
		if c.classify != nil {
			for ; k > 0; k-- {
				c.classify.classify(line)
				c.classify.touch(line)
			}
		}
		return
	}
	c.stats.Hits += uint64(k)
	if c.classify != nil {
		c.classify.touch(line)
	}
	if !c.direct || c.forceGeneric {
		c.useClock += uint64(k)
		c.lastUse[i] = c.useClock
	}
	s := &c.slots[i]
	s.owner = tid
	if write {
		s.flags |= flagDirty
	}
}

// RepeatHit is Repeat under the caller's stronger guarantee that the
// line is resident: the same reference was issued immediately before
// and nothing can have evicted the line since, so its slot already
// carries tid's ownership (and dirtiness, for writes). The
// direct-mapped lane then skips the probe and the slot write entirely —
// pure statistics — which matters because the slot load is the one
// memory access Repeat would otherwise take. The generic lane falls
// back to Repeat: its LRU clock must still advance per replayed
// reference.
func (c *Cache) RepeatHit(tid mem.ThreadID, a mem.Addr, write bool, k int) {
	if c.direct && !c.forceGeneric {
		if k <= 0 {
			return
		}
		c.stats.Refs += uint64(k)
		c.stats.Hits += uint64(k)
		if c.classify != nil {
			c.classify.touch(c.LineOf(a))
		}
		return
	}
	c.Repeat(tid, a, write, k)
}

// Contains reports whether the line containing a is resident, without
// any side effects (no stats, no recency update). For tests and
// diagnostics.
func (c *Cache) Contains(a mem.Addr) bool { return c.find(c.LineOf(a)) >= 0 }

// IsDirty reports whether the line containing a is resident and dirty,
// without side effects.
func (c *Cache) IsDirty(a mem.Addr) bool {
	i := c.find(c.LineOf(a))
	return i >= 0 && c.slots[i].flags&flagDirty != 0
}

// IsShared reports whether the resident line containing a carries the
// coherence "shared" mark.
func (c *Cache) IsShared(a mem.Addr) bool {
	i := c.find(c.LineOf(a))
	return i >= 0 && c.slots[i].flags&flagShared != 0
}

// ClearDirty removes the dirty mark from a resident line — a coherence
// intervention wrote the data back to memory on the owner's behalf. It
// is a no-op if the line is absent.
func (c *Cache) ClearDirty(a mem.Addr) {
	if i := c.find(c.LineOf(a)); i >= 0 {
		c.slots[i].flags &^= flagDirty
	}
}

// SetShared sets or clears the coherence "shared" mark on a resident
// line. It is a no-op if the line is absent.
func (c *Cache) SetShared(a mem.Addr, shared bool) {
	i := c.find(c.LineOf(a))
	if i < 0 {
		return
	}
	if shared {
		c.slots[i].flags |= flagShared
	} else {
		c.slots[i].flags &^= flagShared
	}
}

// Insert fills the line containing a into the cache on behalf of tid,
// choosing an invalid way if one exists and the LRU way otherwise. The
// dirty flag marks the new line as modified (write-allocate of a store);
// the shared flag carries the coherence state assigned by the machine.
// It returns the displaced victim, if any. Inserting a line that is
// already resident just refreshes its state.
func (c *Cache) Insert(tid mem.ThreadID, a mem.Addr, dirty, shared bool) Victim {
	if c.direct && !c.forceGeneric {
		return c.insertDM(tid, a, dirty, shared)
	}
	line := c.LineOf(a)
	if i := c.find(line); i >= 0 {
		// Already resident (e.g. refetched after an upgrade); refresh.
		c.useClock++
		c.lastUse[i] = c.useClock
		s := &c.slots[i]
		s.owner = tid
		if dirty {
			s.flags |= flagDirty
		}
		return Victim{}
	}
	base := c.setOf(line) * c.ways
	idx := -1
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.slots[i].flags&flagValid == 0 {
			idx = i
			break
		}
	}
	var victim Victim
	if idx < 0 {
		// Evict the LRU way.
		idx = base
		for w := 1; w < c.ways; w++ {
			if c.lastUse[base+w] < c.lastUse[idx] {
				idx = base + w
			}
		}
		v := &c.slots[idx]
		victim = Victim{
			Valid: true,
			Line:  v.tag,
			Dirty: v.flags&flagDirty != 0,
			Owner: v.owner,
		}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
		c.valid--
		if c.listener != nil {
			c.listener.Evicted(victim.Line, victim.Dirty)
		}
	}
	c.useClock++
	c.lastUse[idx] = c.useClock
	s := &c.slots[idx]
	s.tag = line
	s.flags = flagValid
	if dirty {
		s.flags |= flagDirty
	}
	if shared {
		s.flags |= flagShared
	}
	s.owner = tid
	c.valid++
	if c.listener != nil {
		c.listener.Filled(line, tid)
	}
	return victim
}

// insertDM is the direct-mapped Insert fast lane: the target slot is
// known from the address alone, so there is no invalid-way scan and no
// LRU victim search — the sole resident line of the set, if any and not
// the refill itself, is the victim. Event order (eviction listener
// before fill listener), statistics and the returned Victim match the
// generic path exactly.
func (c *Cache) insertDM(tid mem.ThreadID, a mem.Addr, dirty, shared bool) Victim {
	line := a >> c.lineShift << c.lineShift
	s := &c.slots[uint64(line>>c.lineShift)&c.setMask]
	if s.flags&flagValid != 0 {
		if s.tag == line {
			// Already resident (e.g. refetched after an upgrade);
			// refresh.
			s.owner = tid
			if dirty {
				s.flags |= flagDirty
			}
			return Victim{}
		}
		victim := Victim{
			Valid: true,
			Line:  s.tag,
			Dirty: s.flags&flagDirty != 0,
			Owner: s.owner,
		}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
		c.valid--
		if c.listener != nil {
			c.listener.Evicted(victim.Line, victim.Dirty)
		}
		c.fillSlot(s, line, tid, dirty, shared)
		return victim
	}
	c.fillSlot(s, line, tid, dirty, shared)
	return Victim{}
}

// fillSlot writes a fresh line into slot s (shared tail of the
// direct-mapped insert paths).
func (c *Cache) fillSlot(s *slot, line mem.Addr, tid mem.ThreadID, dirty, shared bool) {
	s.tag = line
	s.flags = flagValid
	if dirty {
		s.flags |= flagDirty
	}
	if shared {
		s.flags |= flagShared
	}
	s.owner = tid
	c.valid++
	if c.listener != nil {
		c.listener.Filled(line, tid)
	}
}

// Invalidate removes the line containing a if resident, reporting
// whether it was present and whether it was dirty (the caller decides
// what a dirty invalidation means — coherence write-back, inclusion
// victim, etc.).
func (c *Cache) Invalidate(a mem.Addr) (present, dirty bool) {
	i := c.find(c.LineOf(a))
	if i < 0 {
		return false, false
	}
	s := &c.slots[i]
	dirty = s.flags&flagDirty != 0
	line := s.tag
	s.flags = 0
	s.owner = mem.NilThread
	c.valid--
	c.stats.Invalidations++
	if dirty {
		c.stats.Writebacks++
	}
	if c.listener != nil {
		c.listener.Evicted(line, dirty)
	}
	return true, dirty
}

// InvalidateSpan invalidates every line of this cache overlapping the
// byte span [base, base+n). It is used to maintain inclusion when an
// outer cache with a larger line evicts. It returns the number of lines
// invalidated.
func (c *Cache) InvalidateSpan(base mem.Addr, n uint64) int {
	if c.direct && !c.forceGeneric {
		return c.invalidateSpanDM(base, n)
	}
	count := 0
	for line := c.LineOf(base); line < base+mem.Addr(n); line += mem.Addr(c.cfg.LineSize) {
		if present, _ := c.Invalidate(line); present {
			count++
		}
	}
	return count
}

// invalidateSpanDM is InvalidateSpan for the direct-mapped organisation:
// each line of the span indexes its slot directly, with no per-line
// dispatch through Invalidate/find (inclusion invalidations run once per
// outer-cache eviction, so this sits on the miss path).
func (c *Cache) invalidateSpanDM(base mem.Addr, n uint64) int {
	count := 0
	for line := base >> c.lineShift << c.lineShift; line < base+mem.Addr(n); line += mem.Addr(c.cfg.LineSize) {
		s := &c.slots[uint64(line>>c.lineShift)&c.setMask]
		if s.flags&flagValid == 0 || s.tag != line {
			continue
		}
		dirty := s.flags&flagDirty != 0
		s.flags = 0
		s.owner = mem.NilThread
		c.valid--
		c.stats.Invalidations++
		if dirty {
			c.stats.Writebacks++
		}
		if c.listener != nil {
			c.listener.Evicted(line, dirty)
		}
		count++
	}
	return count
}

// Flush invalidates every line. Statistics are preserved; the listener
// sees an eviction for each valid line.
func (c *Cache) Flush() {
	for i := range c.slots {
		s := &c.slots[i]
		if s.flags&flagValid == 0 {
			continue
		}
		dirty := s.flags&flagDirty != 0
		if dirty {
			c.stats.Writebacks++
		}
		c.stats.Invalidations++
		if c.listener != nil {
			c.listener.Evicted(s.tag, dirty)
		}
		s.flags = 0
		s.owner = mem.NilThread
	}
	c.valid = 0
}

// ForEachValidLine calls fn for every resident line with its
// line-aligned address and last accessor, in slot order.
func (c *Cache) ForEachValidLine(fn func(line mem.Addr, owner mem.ThreadID)) {
	for i := range c.slots {
		if c.slots[i].flags&flagValid != 0 {
			fn(c.slots[i].tag, c.slots[i].owner)
		}
	}
}

// OwnerFootprint returns the number of resident lines whose last
// accessor is tid. This is the cheap attribution used by scheduling
// experiments; the model-evaluation experiments use the Tracker, which
// implements the paper's state-projection definition instead.
func (c *Cache) OwnerFootprint(tid mem.ThreadID) int {
	n := 0
	for i := range c.slots {
		if c.slots[i].flags&flagValid != 0 && c.slots[i].owner == tid {
			n++
		}
	}
	return n
}
