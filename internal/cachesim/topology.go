package cachesim

// Cache topologies. The paper's machines give every CPU a private
// direct-mapped E-cache; modern multi-cores instead share a last-level
// cache, where co-running threads evict each other's lines and
// cross-CPU sharing is resolved inside the one cache rather than by an
// invalidate directory. Topology names the organisations the simulator
// can build and SharedL2 is the shared-cache backend: one Cache filled
// by every CPU, plus per-line sharer sets that drive L1 inclusion and
// write-invalidation across CPUs.
//
// Dispatch is config-selected, not interface-dispatched: machine.New
// reads the Topology once and builds either the classic private
// hierarchies (whose direct-mapped fast lanes are untouched) or shared
// hierarchies whose Data/Inst paths branch to the shared backend. The
// set-associative and fully-associative variants reuse the generic
// LRU Cache (per Gysi et al., arXiv:2001.01653, a shared cache is
// modelled well by LRU over one line pool); shared-llc keeps the
// paper's direct-mapped geometry.

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// TopoKind enumerates cache organisations.
type TopoKind uint8

const (
	// TopoPrivate is the paper's organisation: one private
	// direct-mapped (per the preset config) L2 per CPU with a
	// write-invalidate directory between them. The zero value, so
	// existing configurations are unchanged.
	TopoPrivate TopoKind = iota
	// TopoSharedLLC shares one L2 of the configured geometry
	// (direct-mapped in the presets) among every CPU.
	TopoSharedLLC
	// TopoSharedAssoc shares one W-way set-associative LRU L2.
	TopoSharedAssoc
	// TopoSharedFA shares one fully-associative LRU L2 (one set).
	TopoSharedFA
)

// Topology selects the cache organisation of a machine. The zero value
// is the private per-CPU hierarchy of the paper.
type Topology struct {
	Kind TopoKind
	// Ways is the associativity of a TopoSharedAssoc L2; ignored by the
	// other kinds.
	Ways int
}

// Shared reports whether the topology shares one L2 among all CPUs.
func (t Topology) Shared() bool { return t.Kind != TopoPrivate }

// String renders the canonical flag spelling of the topology.
func (t Topology) String() string {
	switch t.Kind {
	case TopoSharedLLC:
		return "shared-llc"
	case TopoSharedAssoc:
		return "shared-assoc:" + strconv.Itoa(t.Ways)
	case TopoSharedFA:
		return "shared-fa"
	default:
		return "private-dm"
	}
}

// ParseTopology parses a -topology flag value. The empty string means
// the private default. Errors name the accepted spellings so a typo
// fails fast with usage.
func ParseTopology(spec string) (Topology, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch {
	case s == "" || s == "private-dm":
		return Topology{}, nil
	case s == "shared-llc":
		return Topology{Kind: TopoSharedLLC}, nil
	case s == "shared-fa":
		return Topology{Kind: TopoSharedFA}, nil
	case strings.HasPrefix(s, "shared-assoc:"):
		w, err := strconv.Atoi(strings.TrimPrefix(s, "shared-assoc:"))
		if err != nil || w < 1 {
			return Topology{}, fmt.Errorf("cachesim: bad way count in topology %q (want shared-assoc:W with integer W >= 1)", spec)
		}
		return Topology{Kind: TopoSharedAssoc, Ways: w}, nil
	default:
		return Topology{}, fmt.Errorf("cachesim: unknown topology %q (have private-dm, shared-llc, shared-assoc:W, shared-fa)", spec)
	}
}

// Validate checks the topology against the L2 geometry it will apply
// to, returning a descriptive error for impossible combinations.
func (t Topology) Validate(l2 Config) error {
	switch t.Kind {
	case TopoPrivate, TopoSharedLLC, TopoSharedFA:
		return nil
	case TopoSharedAssoc:
		if t.Ways < 1 || t.Ways > l2.Lines() || l2.Lines()%t.Ways != 0 {
			return fmt.Errorf("cachesim: shared-assoc:%d does not divide the %d-line L2", t.Ways, l2.Lines())
		}
		return nil
	default:
		return fmt.Errorf("cachesim: unknown topology kind %d", t.Kind)
	}
}

// L2Config returns the effective L2 geometry under the topology: the
// associativity is rewritten for the shared-assoc and shared-fa
// variants; private and shared-llc keep the configured geometry.
func (t Topology) L2Config(l2 Config) Config {
	switch t.Kind {
	case TopoSharedAssoc:
		l2.Assoc = t.Ways
	case TopoSharedFA:
		l2.Assoc = l2.Lines()
	}
	return l2
}

// SharedL2 is a last-level cache shared by every CPU: one Cache plus,
// per line slot, the set of CPUs whose L1s may hold copies of the
// line. The sharer sets are conservative supersets of actual L1
// residency (an L1 eviction does not clear its bit); they exist to
// bound the cross-CPU work of inclusion and write-invalidation, so
// invalidating a non-holder is a harmless no-op. Coherence needs no
// directory here — the line's single copy, its dirty bit and its
// shared mark all live in the one cache — which is why shared-topology
// machines run without the machine layer's invalidate directory.
type SharedL2 struct {
	cache *Cache
	ncpu  int
	nw    int // sharer-mask words per slot
	// sharers[i*nw : (i+1)*nw] is slot i's CPU set. Only SharedL2
	// methods write it, so after Cache.Insert displaces a victim the
	// filled slot's entry still holds the *victim's* sharers — exactly
	// the set whose L1s need the inclusion invalidation.
	sharers []uint64
	// l1i/l1d are the per-CPU first-level caches, registered by
	// NewHierarchyShared.
	l1i, l1d []*Cache
}

// NewSharedL2 builds a shared L2 of the given (already topology-
// adjusted) geometry for ncpu processors.
func NewSharedL2(cfg Config, ncpu int) *SharedL2 {
	if ncpu < 1 || ncpu > 256 {
		// Invariant: machine.Config.Validate bounds the CPU count.
		panic(fmt.Sprintf("cachesim: shared L2 for %d CPUs", ncpu))
	}
	c := New(cfg)
	return &SharedL2{
		cache:   c,
		ncpu:    ncpu,
		nw:      (ncpu + 63) / 64,
		sharers: make([]uint64, cfg.Lines()*((ncpu+63)/64)),
		l1i:     make([]*Cache, ncpu),
		l1d:     make([]*Cache, ncpu),
	}
}

// Cache returns the underlying shared cache (stats, residency probes,
// listener registration).
func (sh *SharedL2) Cache() *Cache { return sh.cache }

// attach registers cpu's L1 caches for cross-CPU inclusion work.
func (sh *SharedL2) attach(cpu int, l1i, l1d *Cache) {
	sh.l1i[cpu] = l1i
	sh.l1d[cpu] = l1d
}

// mask returns slot i's sharer words.
func (sh *SharedL2) mask(i int) []uint64 {
	return sh.sharers[i*sh.nw : (i+1)*sh.nw : (i+1)*sh.nw]
}

func maskCount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// invalidateL1Span drops the byte span [line, line+span) from the L1s
// of every CPU in w except skip (pass -1 to invalidate everywhere).
// Order matches the private hierarchy's inclusion path: per CPU, L1I
// before L1D; CPUs ascending.
func (sh *SharedL2) invalidateL1Span(w []uint64, skip int, line mem.Addr, span uint64) {
	for wi, word := range w {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if i == skip {
				continue
			}
			sh.l1i[i].InvalidateSpan(line, span)
			sh.l1d[i].InvalidateSpan(line, span)
		}
	}
}

// readBy records a read hit by cpu on the resident line containing a:
// the CPU joins the line's sharer set, and a line referenced from more
// than one CPU carries the coherence "shared" mark (the analogue of
// the private topology's directory-driven SetShared).
func (sh *SharedL2) readBy(cpu int, a mem.Addr) {
	i := sh.cache.find(sh.cache.LineOf(a))
	if i < 0 {
		return // invariant: called only after a hit
	}
	w := sh.mask(i)
	w[uint(cpu)>>6] |= 1 << (uint(cpu) & 63)
	if maskCount(w) > 1 {
		sh.cache.slots[i].flags |= flagShared
	}
}

// storeBy resolves a write hit by cpu on the resident line containing
// a: every other sharer's L1 copies are invalidated (write-invalidate,
// but in-cache — the single L2 copy survives, already marked dirty by
// the lookup), and the writer becomes the sole sharer.
func (sh *SharedL2) storeBy(cpu int, a mem.Addr) {
	line := sh.cache.LineOf(a)
	i := sh.cache.find(line)
	if i < 0 {
		return // invariant: called only after a hit
	}
	w := sh.mask(i)
	sh.invalidateL1Span(w, cpu, line, uint64(sh.cache.cfg.LineSize))
	for k := range w {
		w[k] = 0
	}
	w[uint(cpu)>>6] = 1 << (uint(cpu) & 63)
	sh.cache.slots[i].flags &^= flagShared
}

// fill inserts the line containing a on behalf of (cpu, tid) after a
// miss, maintaining inclusion across every CPU: the displaced victim's
// span is invalidated from the L1s of all its recorded sharers. The
// filler becomes the line's sole sharer.
func (sh *SharedL2) fill(cpu int, tid mem.ThreadID, a mem.Addr, write bool) Victim {
	victim := sh.cache.Insert(tid, a, write, false)
	i := sh.cache.find(sh.cache.LineOf(a))
	w := sh.mask(i)
	if victim.Valid {
		// w still holds the victim's sharer set (the side array is
		// written only here and in the invalidation paths), so this is
		// precisely the cross-CPU inclusion invalidation.
		sh.invalidateL1Span(w, -1, victim.Line, uint64(sh.cache.cfg.LineSize))
	}
	for k := range w {
		w[k] = 0
	}
	w[uint(cpu)>>6] = 1 << (uint(cpu) & 63)
	return victim
}

// InvalidateLine removes the line containing a from the shared cache
// and, via the sharer set, from every CPU's L1s. It reports whether
// the shared copy was present and dirty.
func (sh *SharedL2) InvalidateLine(a mem.Addr) (present, dirty bool) {
	line := sh.cache.LineOf(a)
	i := sh.cache.find(line)
	if i < 0 {
		return false, false
	}
	w := sh.mask(i)
	present, dirty = sh.cache.Invalidate(line)
	sh.invalidateL1Span(w, -1, line, uint64(sh.cache.cfg.LineSize))
	for k := range w {
		w[k] = 0
	}
	return present, dirty
}

// Flush empties the shared cache and every sharer set. Idempotent —
// the machine calls it once per CPU hierarchy flush.
func (sh *SharedL2) Flush() {
	sh.cache.Flush()
	for i := range sh.sharers {
		sh.sharers[i] = 0
	}
}

// Sharers returns the recorded sharer set of the line containing a (a
// conservative superset of actual L1 residency, as one bit per CPU in
// ascending word order) and whether the line is resident. Diagnostics
// and coherence checking.
func (sh *SharedL2) Sharers(a mem.Addr) (mask [4]uint64, present bool) {
	i := sh.cache.find(sh.cache.LineOf(a))
	if i < 0 {
		return mask, false
	}
	copy(mask[:], sh.mask(i))
	return mask, true
}
