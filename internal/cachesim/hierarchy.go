package cachesim

import "repro/internal/mem"

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Access outcomes, ordered from fastest to slowest.
const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelL2 means the access missed in L1 but hit in the external
	// cache (an E-cache reference and hit, in UltraSPARC terms).
	LevelL2
	// LevelMemory means the access missed in both caches (an E-cache
	// reference and miss).
	LevelMemory
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "memory"
	}
}

// Result describes one hierarchy access: the level that satisfied it and
// the L2 victim displaced by the fill, which the machine layer needs for
// coherence bookkeeping and write-back accounting.
type Result struct {
	Level  Level
	Victim Victim // L2 line displaced by a memory fill, if any
}

// Hierarchy models the UltraSPARC-1 memory hierarchy of the paper's
// Table 1: split first-level caches (write-through, non-allocating L1D;
// L1I for instruction fetch) in front of a unified external cache
// (write-back, write-allocate) that maintains inclusion of both L1s.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	// dmData marks the data-path fast lane: both the L1D and the L2 are
	// direct-mapped (the UltraSPARC-1 geometry of every experiment), so
	// Data can call the one-way probes directly without the per-cache
	// dispatch branch.
	dmData bool
	// shared, when non-nil, marks a shared-topology hierarchy: L2 is the
	// one cache shared by every CPU and the data/inst paths route fills
	// and sharer maintenance through it. Config-selected at construction;
	// nil on the private topologies, whose paths are untouched.
	shared *SharedL2
	cpu    int // this hierarchy's CPU index within shared; 0 otherwise
}

// NewHierarchy builds a hierarchy from the three cache configurations.
// The L2 line size must be at least as large as both L1 line sizes for
// inclusion maintenance to be meaningful.
func NewHierarchy(l1i, l1d, l2 Config) *Hierarchy {
	h := &Hierarchy{L1I: New(l1i), L1D: New(l1d), L2: New(l2)}
	if l2.LineSize < l1i.LineSize || l2.LineSize < l1d.LineSize {
		// Invariant: geometry comes from machine.Config presets/Validate.
		panic("cachesim: L2 line must not be smaller than L1 lines")
	}
	h.dmData = h.L1D.direct && h.L2.direct
	return h
}

// NewHierarchyShared builds cpu's view of a shared-L2 topology: private
// split L1s in front of the one shared cache. The direct-mapped data
// fast lanes stay disabled (dmData false) — cross-CPU sharer
// maintenance needs the generic path — so FastData reports false and
// the machine layer falls back to per-reference application.
func NewHierarchyShared(l1i, l1d Config, sh *SharedL2, cpu int) *Hierarchy {
	h := &Hierarchy{L1I: New(l1i), L1D: New(l1d), L2: sh.cache, shared: sh, cpu: cpu}
	l2 := sh.cache.Config()
	if l2.LineSize < l1i.LineSize || l2.LineSize < l1d.LineSize {
		// Invariant: geometry comes from machine.Config presets/Validate.
		panic("cachesim: L2 line must not be smaller than L1 lines")
	}
	sh.attach(cpu, h.L1I, h.L1D)
	return h
}

// Data performs one data reference by thread tid at physical address a.
//
// Loads allocate in L1D; stores are write-through and non-allocating in
// L1D (they update a resident L1D line but always proceed to the L2),
// matching the UltraSPARC-1. The L2 is write-allocate and write-back.
// The shared flag is the coherence state the machine wants on a fresh L2
// fill.
func (h *Hierarchy) Data(tid mem.ThreadID, a mem.Addr, write, shared bool) Result {
	if h.dmData && !h.L1D.forceGeneric && !h.L2.forceGeneric {
		return h.dataDM(tid, a, write, shared)
	}
	if h.shared != nil {
		return h.dataShared(tid, a, write)
	}
	// The write-through L1D never holds dirty data, so even a store
	// hit leaves the L1D line clean (the dirty bit lives in the L2).
	if h.L1D.Lookup(tid, a, false) && !write {
		return Result{Level: LevelL1}
	}
	// Loads that miss L1D and all stores reach the E-cache.
	if h.L2.Lookup(tid, a, write) {
		if !write {
			h.fillL1(h.L1D, tid, a)
		}
		return Result{Level: LevelL2}
	}
	victim := h.fillL2(tid, a, write, shared)
	if !write {
		h.fillL1(h.L1D, tid, a)
	}
	return Result{Level: LevelMemory, Victim: victim}
}

// dataDM is Data for the direct-mapped geometry: identical decision
// tree, but the probes go straight to the one-way fast lanes, skipping
// each cache's per-call dispatch branch.
func (h *Hierarchy) dataDM(tid mem.ThreadID, a mem.Addr, write, shared bool) Result {
	if h.L1D.lookupDM(tid, a, false) && !write {
		return Result{Level: LevelL1}
	}
	if h.L2.lookupDM(tid, a, write) {
		if !write {
			h.L1D.insertDM(tid, a, false, false)
		}
		return Result{Level: LevelL2}
	}
	victim := h.fillL2(tid, a, write, shared)
	if !write {
		h.L1D.insertDM(tid, a, false, false)
	}
	return Result{Level: LevelMemory, Victim: victim}
}

// dataShared is Data for the shared-L2 topologies: the same decision
// tree, with sharer-set maintenance folded into the L2 outcomes. A read
// hit joins the sharer set (marking the line shared when other CPUs
// hold it); a write hit invalidates the other sharers' L1 copies and
// leaves the writer exclusive; a fill routes through SharedL2.fill so
// inclusion invalidation reaches every sharer's L1s. The machine's
// coherence fill hint is irrelevant here — sharing state lives in the
// one cache.
func (h *Hierarchy) dataShared(tid mem.ThreadID, a mem.Addr, write bool) Result {
	if h.L1D.Lookup(tid, a, false) && !write {
		return Result{Level: LevelL1}
	}
	if h.L2.Lookup(tid, a, write) {
		if write {
			h.shared.storeBy(h.cpu, a)
		} else {
			h.shared.readBy(h.cpu, a)
			h.fillL1(h.L1D, tid, a)
		}
		return Result{Level: LevelL2}
	}
	victim := h.shared.fill(h.cpu, tid, a, write)
	if !write {
		h.fillL1(h.L1D, tid, a)
	}
	return Result{Level: LevelMemory, Victim: victim}
}

// Inst performs one instruction fetch by thread tid at physical address
// a. Instruction fetches allocate in both L1I and the unified L2.
func (h *Hierarchy) Inst(tid mem.ThreadID, a mem.Addr, shared bool) Result {
	if h.shared != nil {
		return h.instShared(tid, a)
	}
	if h.L1I.Lookup(tid, a, false) {
		return Result{Level: LevelL1}
	}
	if h.L2.Lookup(tid, a, false) {
		h.fillL1(h.L1I, tid, a)
		return Result{Level: LevelL2}
	}
	victim := h.fillL2(tid, a, false, shared)
	h.fillL1(h.L1I, tid, a)
	return Result{Level: LevelMemory, Victim: victim}
}

// instShared is Inst for the shared-L2 topologies; fetches are reads,
// so hits join the sharer set and fills route through the shared cache.
func (h *Hierarchy) instShared(tid mem.ThreadID, a mem.Addr) Result {
	if h.L1I.Lookup(tid, a, false) {
		return Result{Level: LevelL1}
	}
	if h.L2.Lookup(tid, a, false) {
		h.shared.readBy(h.cpu, a)
		h.fillL1(h.L1I, tid, a)
		return Result{Level: LevelL2}
	}
	victim := h.shared.fill(h.cpu, tid, a, false)
	h.fillL1(h.L1I, tid, a)
	return Result{Level: LevelMemory, Victim: victim}
}

// fillL2 inserts the line for a into the L2 and maintains inclusion: the
// span covered by a displaced L2 line is invalidated from both L1s.
func (h *Hierarchy) fillL2(tid mem.ThreadID, a mem.Addr, dirty, shared bool) Victim {
	victim := h.L2.Insert(tid, a, dirty, shared)
	if victim.Valid {
		span := uint64(h.L2.Config().LineSize)
		h.L1I.InvalidateSpan(victim.Line, span)
		h.L1D.InvalidateSpan(victim.Line, span)
	}
	return victim
}

// fillL1 inserts into an L1. L1 victims need no inclusion work and, for
// the write-through L1D, no write-back either (a victim can only be
// dirty through a write hit, which already updated the L2).
func (h *Hierarchy) fillL1(l1 *Cache, tid mem.ThreadID, a mem.Addr) {
	l1.Insert(tid, a, false, false)
}

// InvalidateLine removes the L2 line containing a and its covered spans
// from both L1s, returning whether the L2 copy was present and dirty.
// The machine uses it to implement write-invalidate coherence.
func (h *Hierarchy) InvalidateLine(a mem.Addr) (present, dirty bool) {
	if h.shared != nil {
		// The shared backend owns the sharer set, so the invalidation
		// reaches every CPU's L1s, not just this hierarchy's.
		return h.shared.InvalidateLine(a)
	}
	line := h.L2.LineOf(a)
	present, dirty = h.L2.Invalidate(line)
	if present {
		span := uint64(h.L2.Config().LineSize)
		h.L1I.InvalidateSpan(line, span)
		h.L1D.InvalidateSpan(line, span)
	}
	return present, dirty
}

// Flush empties all three caches. On a shared topology the L2 flush
// goes through the shared backend (clearing sharer sets); it is
// idempotent, so the machine may flush every CPU's hierarchy in turn.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	if h.shared != nil {
		h.shared.Flush()
		return
	}
	h.L2.Flush()
}

// CheckInclusion verifies that every valid L1 line is covered by a valid
// L2 line, returning the first violating address found (ok=false) or
// ok=true. It is an O(cache size) diagnostic for tests.
func (h *Hierarchy) CheckInclusion() (violation mem.Addr, ok bool) {
	for _, l1 := range []*Cache{h.L1I, h.L1D} {
		for i := range l1.slots {
			s := &l1.slots[i]
			if s.flags&flagValid == 0 {
				continue
			}
			if !h.L2.Contains(s.tag) {
				return s.tag, false
			}
		}
	}
	return 0, true
}
