package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// tiny returns a small direct-mapped cache: 8 lines of 64 bytes.
func tiny() *Cache {
	return New(Config{Name: "T", Size: 512, LineSize: 64, Assoc: 1, HitCycles: 1})
}

func TestConfigGeometry(t *testing.T) {
	c := Config{Name: "E", Size: 512 * 1024, LineSize: 64, Assoc: 1}
	if c.Lines() != 8192 || c.Sets() != 8192 {
		t.Errorf("geometry: %d lines, %d sets", c.Lines(), c.Sets())
	}
	c.Assoc = 2
	if c.Sets() != 4096 {
		t.Errorf("2-way sets = %d", c.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	if c.Lookup(1, 0x100, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(1, 0x100, false, false)
	if !c.Lookup(1, 0x100, false) {
		t.Fatal("miss after insert")
	}
	// Same line, different offset.
	if !c.Lookup(1, 0x13f, false) {
		t.Fatal("miss within the same line")
	}
	// Next line.
	if c.Lookup(1, 0x140, false) {
		t.Fatal("hit on a different line")
	}
	s := c.Stats()
	if s.Refs != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := tiny() // 8 sets: addresses 512 bytes apart collide
	c.Insert(1, 0x000, false, false)
	v := c.Insert(2, 0x200, false, false)
	if !v.Valid || v.Line != 0x000 || v.Owner != 1 {
		t.Errorf("victim = %+v, want line 0 owned by t1", v)
	}
	if c.Contains(0x000) {
		t.Error("conflicting line still resident")
	}
	if !c.Contains(0x200) {
		t.Error("new line not resident")
	}
}

func TestTwoWayLRU(t *testing.T) {
	c := New(Config{Name: "T2", Size: 1024, LineSize: 64, Assoc: 2, HitCycles: 1})
	// Set count = 8; lines 0x000, 0x200, 0x400 share set 0.
	c.Insert(1, 0x000, false, false)
	c.Insert(1, 0x200, false, false)
	// Touch 0x000 so 0x200 becomes LRU.
	if !c.Lookup(1, 0x000, false) {
		t.Fatal("expected hit")
	}
	v := c.Insert(1, 0x400, false, false)
	if !v.Valid || v.Line != 0x200 {
		t.Errorf("LRU victim = %+v, want 0x200", v)
	}
	if !c.Contains(0x000) || !c.Contains(0x400) || c.Contains(0x200) {
		t.Error("wrong lines resident after LRU eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, false, false)
	c.Lookup(1, 0x000, true) // dirty it
	if !c.IsDirty(0x000) {
		t.Fatal("line not dirty after write hit")
	}
	v := c.Insert(1, 0x200, false, false)
	if !v.Dirty {
		t.Error("victim lost its dirty bit")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInsertDirty(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, true, false) // write-allocate of a store
	if !c.IsDirty(0x000) {
		t.Error("write-allocated line not dirty")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, false, false)
	v := c.Insert(2, 0x000, true, false)
	if v.Valid {
		t.Error("reinsertion produced a victim")
	}
	if c.ValidLines() != 1 {
		t.Errorf("valid lines = %d", c.ValidLines())
	}
	if !c.IsDirty(0x000) {
		t.Error("reinsertion with dirty lost the dirty bit")
	}
	if got := c.OwnerFootprint(2); got != 1 {
		t.Errorf("owner not updated: footprint(2) = %d", got)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, false, false)
	c.Lookup(1, 0x000, true)
	present, dirty := c.Invalidate(0x000)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v)", present, dirty)
	}
	if c.Contains(0x000) || c.ValidLines() != 0 {
		t.Error("line survived invalidation")
	}
	present, _ = c.Invalidate(0x000)
	if present {
		t.Error("double invalidation reported present")
	}
}

func TestInvalidateSpan(t *testing.T) {
	c := New(Config{Name: "L1", Size: 1024, LineSize: 16, Assoc: 1, HitCycles: 1})
	// Fill four 16-byte lines covering one 64-byte outer line.
	for off := mem.Addr(0); off < 64; off += 16 {
		c.Insert(1, 0x400+off, false, false)
	}
	if got := c.InvalidateSpan(0x400, 64); got != 4 {
		t.Errorf("InvalidateSpan removed %d lines, want 4", got)
	}
	if c.ValidLines() != 0 {
		t.Error("lines survived span invalidation")
	}
	if got := c.InvalidateSpan(0x400, 0); got != 0 {
		t.Error("zero-length span invalidated something")
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	for i := mem.Addr(0); i < 8; i++ {
		c.Insert(1, i*64, i%2 == 0, false)
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Errorf("valid lines after flush = %d", c.ValidLines())
	}
	if c.Stats().Writebacks != 4 {
		t.Errorf("flush writebacks = %d, want 4", c.Stats().Writebacks)
	}
}

func TestSharedFlag(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, false, true)
	if !c.IsShared(0x000) {
		t.Error("shared insert lost the flag")
	}
	c.SetShared(0x000, false)
	if c.IsShared(0x000) {
		t.Error("SetShared(false) did not clear")
	}
	c.SetShared(0x000, true)
	if !c.IsShared(0x000) {
		t.Error("SetShared(true) did not set")
	}
	c.SetShared(0x777, true) // absent line: no-op, no panic
}

func TestOwnerFootprint(t *testing.T) {
	c := tiny()
	c.Insert(1, 0x000, false, false)
	c.Insert(1, 0x040, false, false)
	c.Insert(2, 0x080, false, false)
	if c.OwnerFootprint(1) != 2 || c.OwnerFootprint(2) != 1 || c.OwnerFootprint(3) != 0 {
		t.Error("owner footprints wrong")
	}
	// Thread 2 touching thread 1's line takes it over.
	c.Lookup(2, 0x000, false)
	if c.OwnerFootprint(1) != 1 || c.OwnerFootprint(2) != 2 {
		t.Error("ownership transfer on access failed")
	}
}

// TestLineConservation: after any access sequence, the number of valid
// lines equals insertions minus evictions minus invalidations, and never
// exceeds capacity.
func TestLineConservation(t *testing.T) {
	f := func(seed uint64, ops uint16) bool {
		rng := xrand.New(seed)
		c := New(Config{Name: "P", Size: 4096, LineSize: 64, Assoc: 2, HitCycles: 1})
		fills := 0
		for i := 0; i < int(ops); i++ {
			a := mem.Addr(rng.Uint64n(1 << 14))
			switch rng.Intn(3) {
			case 0:
				if !c.Lookup(1, a, rng.Bool(0.3)) {
					c.Insert(1, a, false, false)
					fills++
				}
			case 1:
				c.Insert(1, a, rng.Bool(0.5), false)
				if !c.Contains(a) {
					return false
				}
				fills++ // may be a refresh; corrected below via stats
			case 2:
				c.Invalidate(a)
			}
			if c.ValidLines() > c.Config().Lines() || c.ValidLines() < 0 {
				return false
			}
		}
		// Recount directly and compare with the tracked count.
		count := 0
		c.ForEachValidLine(func(mem.Addr, mem.ThreadID) { count++ })
		return count == c.ValidLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "odd", Size: 1000, LineSize: 64, Assoc: 1},
		{Name: "line", Size: 1024, LineSize: 48, Assoc: 1},
		{Name: "assoc", Size: 1024, LineSize: 64, Assoc: 0},
		{Name: "div", Size: 1024, LineSize: 64, Assoc: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// TestLRUMatchesReferenceModel compares the per-set LRU policy against
// a brute-force reference implementation (explicit recency lists) under
// random traffic on a small 4-way cache.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const sets, ways, line = 4, 4, 64
	c := New(Config{Name: "L", Size: sets * ways * line, LineSize: line, Assoc: ways, HitCycles: 1})
	// ref[s] is the recency list of set s, most recent first.
	ref := make([][]mem.Addr, sets)
	rng := xrand.New(5)
	for i := 0; i < 20000; i++ {
		a := mem.Addr(rng.Uint64n(64)) * line // 64 lines over 4 sets
		set := int(uint64(a/line) % sets)
		// Reference model.
		list := ref[set]
		found := -1
		for j, l := range list {
			if l == a {
				found = j
				break
			}
		}
		if found >= 0 {
			list = append(list[:found], list[found+1:]...)
			list = append([]mem.Addr{a}, list...)
		} else {
			if len(list) == ways {
				list = list[:ways-1]
			}
			list = append([]mem.Addr{a}, list...)
		}
		ref[set] = list
		// System under test.
		if !c.Lookup(1, a, false) {
			c.Insert(1, a, false, false)
		}
		// Cross-check residency every few steps.
		if i%500 == 0 {
			for s := range ref {
				for _, l := range ref[s] {
					if !c.Contains(l) {
						t.Fatalf("step %d: reference says %#x resident, cache disagrees", i, uint64(l))
					}
				}
			}
			total := 0
			for s := range ref {
				total += len(ref[s])
			}
			if total != c.ValidLines() {
				t.Fatalf("step %d: reference %d lines, cache %d", i, total, c.ValidLines())
			}
		}
	}
}
