package cachesim

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec string
		want Topology
		ok   bool
	}{
		{"", Topology{}, true},
		{"private-dm", Topology{}, true},
		{" Private-DM ", Topology{}, true},
		{"shared-llc", Topology{Kind: TopoSharedLLC}, true},
		{"SHARED-LLC", Topology{Kind: TopoSharedLLC}, true},
		{"shared-fa", Topology{Kind: TopoSharedFA}, true},
		{"shared-assoc:4", Topology{Kind: TopoSharedAssoc, Ways: 4}, true},
		{"shared-assoc:1", Topology{Kind: TopoSharedAssoc, Ways: 1}, true},
		{"bogus", Topology{}, false},
		{"shared-assoc:0", Topology{}, false},
		{"shared-assoc:-2", Topology{}, false},
		{"shared-assoc:x", Topology{}, false},
		{"shared", Topology{}, false},
	}
	for _, c := range cases {
		got, err := ParseTopology(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParseTopology(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err != nil {
			if !strings.Contains(err.Error(), "topology") {
				t.Errorf("ParseTopology(%q): undescriptive error %v", c.spec, err)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseTopology(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical spelling must round-trip.
		back, err := ParseTopology(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v, %v", c.spec, got.String(), back, err)
		}
	}
}

func TestTopologyValidateAndL2Config(t *testing.T) {
	l2 := Config{Name: "E", Size: 1024, LineSize: 32, Assoc: 1} // 32 lines
	for _, topo := range []Topology{
		{},
		{Kind: TopoSharedLLC},
		{Kind: TopoSharedFA},
		{Kind: TopoSharedAssoc, Ways: 4},
	} {
		if err := topo.Validate(l2); err != nil {
			t.Errorf("%s: unexpected Validate error %v", topo, err)
		}
	}
	for _, ways := range []int{0, 5, 33} { // 5 does not divide 32, 33 > lines
		topo := Topology{Kind: TopoSharedAssoc, Ways: ways}
		if err := topo.Validate(l2); err == nil {
			t.Errorf("shared-assoc:%d on a 32-line cache: want error", ways)
		}
	}
	if got := (Topology{Kind: TopoSharedAssoc, Ways: 4}).L2Config(l2).Assoc; got != 4 {
		t.Errorf("shared-assoc:4 effective Assoc = %d", got)
	}
	if got := (Topology{Kind: TopoSharedFA}).L2Config(l2).Assoc; got != 32 {
		t.Errorf("shared-fa effective Assoc = %d, want 32", got)
	}
	if got := (Topology{Kind: TopoSharedLLC}).L2Config(l2).Assoc; got != 1 {
		t.Errorf("shared-llc effective Assoc = %d, want 1", got)
	}
}

// testSharedSetup builds an ncpu shared-L2 topology with small caches:
// 16-line 32B-line shared L2, 16B-line 256B L1s.
func testSharedSetup(ncpu int) (*SharedL2, []*Hierarchy) {
	l1 := Config{Name: "L1", Size: 256, LineSize: 16, Assoc: 1}
	l2 := Config{Name: "E", Size: 512, LineSize: 32, Assoc: 1} // 16 lines
	sh := NewSharedL2(l2, ncpu)
	hiers := make([]*Hierarchy, ncpu)
	for i := range hiers {
		hiers[i] = NewHierarchyShared(l1, l1, sh, i)
	}
	return sh, hiers
}

func TestSharedL2SharerTracking(t *testing.T) {
	sh, h := testSharedSetup(2)
	const a = mem.Addr(0x1000)

	h[0].Data(1, a, false, false)
	if mask, ok := sh.Sharers(a); !ok || mask[0] != 1 {
		t.Fatalf("after cpu0 load: sharers %v present=%v, want {0}", mask, ok)
	}
	if sh.Cache().IsShared(a) {
		t.Fatal("single-sharer line marked shared")
	}

	h[1].Data(2, a, false, false)
	if mask, _ := sh.Sharers(a); mask[0] != 0b11 {
		t.Fatalf("after cpu1 load: sharers %v, want {0,1}", mask)
	}
	if !sh.Cache().IsShared(a) {
		t.Fatal("two-sharer line not marked shared")
	}
	if !h[1].L1D.Contains(a) {
		t.Fatal("cpu1 load did not fill its L1D")
	}

	// A store from cpu0 invalidates cpu1's L1 copy and leaves cpu0 the
	// sole sharer with the shared mark cleared.
	h[0].Data(1, a, true, false)
	if mask, _ := sh.Sharers(a); mask[0] != 1 {
		t.Fatalf("after cpu0 store: sharers %v, want {0}", mask)
	}
	if sh.Cache().IsShared(a) {
		t.Fatal("exclusive line still marked shared after store")
	}
	if h[1].L1D.Contains(a) {
		t.Fatal("cpu1 L1D copy survived cpu0's store")
	}
	if !sh.Cache().IsDirty(a) {
		t.Fatal("stored line not dirty in the shared cache")
	}
}

func TestSharedL2InvalidateLine(t *testing.T) {
	sh, h := testSharedSetup(2)
	const a = mem.Addr(0x2000)

	h[0].Data(1, a, true, false) // miss, fill dirty
	h[1].Data(2, a, false, false)
	h[1].Inst(2, a, false)
	if !h[1].L1D.Contains(a) || !h[1].L1I.Contains(a) {
		t.Fatal("setup: cpu1 L1s should hold the line")
	}

	present, dirty := h[0].InvalidateLine(a)
	if !present || !dirty {
		t.Fatalf("InvalidateLine = (%v, %v), want present dirty", present, dirty)
	}
	if sh.Cache().Contains(a) {
		t.Fatal("line still resident in the shared cache")
	}
	for i, hh := range h {
		if hh.L1D.Contains(a) || hh.L1I.Contains(a) {
			t.Fatalf("cpu%d L1 copy survived InvalidateLine", i)
		}
	}
	if _, ok := sh.Sharers(a); ok {
		t.Fatal("sharer set survived InvalidateLine")
	}
	// Invalidating an absent line is a clean no-op.
	if present, dirty := h[1].InvalidateLine(a); present || dirty {
		t.Fatalf("second InvalidateLine = (%v, %v), want absent", present, dirty)
	}
}

func TestSharedL2FlushIdempotent(t *testing.T) {
	sh, h := testSharedSetup(2)
	for i := 0; i < 8; i++ {
		h[i%2].Data(1, mem.Addr(0x1000+i*32), i%3 == 0, false)
	}
	if sh.Cache().ValidLines() == 0 {
		t.Fatal("setup: no resident lines")
	}
	h[0].Flush()
	if n := sh.Cache().ValidLines(); n != 0 {
		t.Fatalf("%d lines survived the flush", n)
	}
	for _, w := range sh.sharers {
		if w != 0 {
			t.Fatal("sharer bits survived the flush")
		}
	}
	// The machine flushes every CPU's hierarchy in turn; the second
	// flush must be a no-op, and refills must start from clean masks.
	h[1].Flush()
	h[1].Data(2, 0x1000, false, false)
	if mask, ok := sh.Sharers(0x1000); !ok || mask[0] != 0b10 {
		t.Fatalf("post-flush refill sharers %v present=%v, want {1}", mask, ok)
	}
}

func TestSharedL2VictimInvalidatesAllSharers(t *testing.T) {
	sh, h := testSharedSetup(2)
	l2 := sh.Cache().Config()
	a := mem.Addr(0x4000)
	b := a + mem.Addr(l2.Size) // same set, different tag

	h[0].Data(1, a, true, false)  // dirty fill by cpu0 (L1D non-allocating on stores)
	h[0].Data(1, a, false, false) // load hit fills cpu0's L1D
	h[1].Data(2, a, false, false)
	if !h[0].L1D.Contains(a) || !h[1].L1D.Contains(a) {
		t.Fatal("setup: both L1Ds should hold the line")
	}

	// cpu0's conflicting fill displaces the shared dirty line; the
	// write-back is reported and every sharer's L1 copy is dropped.
	res := h[0].Data(1, b, false, false)
	if res.Level != LevelMemory || !res.Victim.Valid || !res.Victim.Dirty {
		t.Fatalf("conflicting fill: %+v, want a dirty memory-level victim", res)
	}
	if res.Victim.Line != sh.Cache().LineOf(a) {
		t.Fatalf("victim line %#x, want %#x", res.Victim.Line, sh.Cache().LineOf(a))
	}
	for i, hh := range h {
		if hh.L1D.Contains(a) {
			t.Fatalf("cpu%d L1D copy of the victim survived the eviction", i)
		}
	}
	if mask, ok := sh.Sharers(b); !ok || mask[0] != 1 {
		t.Fatalf("filler's sharer set %v present=%v, want {0}", mask, ok)
	}
}

func TestSharedCheckInclusion(t *testing.T) {
	_, h := testSharedSetup(2)
	for i := 0; i < 64; i++ {
		h[i%2].Data(mem.ThreadID(1+i%3), mem.Addr(0x1000+i*16), i%5 == 0, false)
	}
	for i, hh := range h {
		if v, ok := hh.CheckInclusion(); !ok {
			t.Fatalf("cpu%d inclusion violated at %#x after normal traffic", i, v)
		}
	}
	// Force a violation: an L1 line with no covering L2 line.
	h[1].L1D.Insert(9, 0x9990, false, false)
	if _, ok := h[1].CheckInclusion(); ok {
		t.Fatal("CheckInclusion missed a planted L1-only line")
	}
}

func TestSharedAssocGeometry(t *testing.T) {
	l1 := Config{Name: "L1", Size: 256, LineSize: 16, Assoc: 1}
	l2 := Config{Name: "E", Size: 512, LineSize: 32, Assoc: 1} // 16 lines
	// Fully associative: 16 distinct conflicting-by-index lines all fit.
	fa := NewSharedL2(Topology{Kind: TopoSharedFA}.L2Config(l2), 1)
	NewHierarchyShared(l1, l1, fa, 0)
	for i := 0; i < 16; i++ {
		fa.fill(0, 1, mem.Addr(i*int(l2.Size)), false)
	}
	for i := 0; i < 16; i++ {
		if !fa.Cache().Contains(mem.Addr(i * int(l2.Size))) {
			t.Fatalf("fa: line %d evicted before capacity", i)
		}
	}
	// One more evicts exactly the least recently used line (the first).
	fa.fill(0, 1, mem.Addr(16*int(l2.Size)), false)
	if fa.Cache().Contains(0) {
		t.Fatal("fa: LRU line survived over-capacity fill")
	}
	if fa.Cache().ValidLines() != 16 {
		t.Fatalf("fa: %d valid lines, want 16", fa.Cache().ValidLines())
	}

	// 2-way: two conflicting lines coexist where direct-mapped would
	// thrash; the third evicts the older.
	w2 := NewSharedL2(Topology{Kind: TopoSharedAssoc, Ways: 2}.L2Config(l2), 1)
	NewHierarchyShared(l1, l1, w2, 0)
	a, b, c := mem.Addr(0), mem.Addr(l2.Size), mem.Addr(2*l2.Size)
	w2.fill(0, 1, a, false)
	w2.fill(0, 1, b, false)
	if !w2.Cache().Contains(a) || !w2.Cache().Contains(b) {
		t.Fatal("2-way: conflicting pair did not coexist")
	}
	w2.fill(0, 1, c, false)
	if w2.Cache().Contains(a) || !w2.Cache().Contains(b) || !w2.Cache().Contains(c) {
		t.Fatal("2-way: LRU eviction order wrong")
	}
}
