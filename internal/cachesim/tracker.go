package cachesim

import (
	"fmt"

	"repro/internal/mem"
)

// Tracker observes per-thread cache footprints the way the paper's
// simulator does: a thread's footprint is the projection of its declared
// state onto the cache — the number of resident lines that hold any of
// the thread's state — regardless of which thread's miss brought the
// line in. This is what lets a *sleeping* dependent thread's footprint
// grow while a sharing partner executes (Figure 4c/d).
//
// Threads register physical byte spans describing their state. The
// tracker listens to fill/evict events from the cache it is attached to
// and maintains a resident-line count per registered thread.
//
// Both indexes are flat arenas rather than maps: physical pages are
// allocated densely from address zero and thread IDs are small
// sequential integers, so the per-event owners() walk is two bounds
// checks and a slice scan — no hashing on the fill/evict path.
//
// Tracker implements Listener; attach it with Cache.SetListener. It is
// intended for the model-evaluation experiments, where a handful of
// threads are registered; the scheduling experiments run with no
// listener at all.
type Tracker struct {
	lineSize  uint64
	pageShift uint
	pages     [][]span       // indexed by physical page -> registered spans
	counts    []int64        // indexed by thread ID
	reg       []bool         // indexed by thread ID: tid is registered
	scratch   []mem.ThreadID // reused per event to dedupe tids
}

// span is a registered state fragment: the physical byte range [lo, hi)
// belongs to thread tid. Spans never cross a tracking-page boundary.
type span struct {
	lo, hi mem.Addr
	tid    mem.ThreadID
}

// NewTracker creates a tracker for caches with the given line size. The
// pageSize (a power of two, at least the line size) only sets the
// granularity of the internal index, not any architectural behaviour.
func NewTracker(lineSize, pageSize uint64) *Tracker {
	if !mem.IsPow2(lineSize) || !mem.IsPow2(pageSize) || pageSize < lineSize {
		// Invariant: geometry comes from a validated machine config.
		panic("cachesim: bad tracker geometry")
	}
	return &Tracker{
		lineSize:  lineSize,
		pageShift: mem.Log2(pageSize),
	}
}

// Register declares that the physical byte ranges in spans belong to
// thread tid's state. Ranges are split at page boundaries for indexing.
// Registering overlapping ranges for the same thread double-counts the
// overlap; callers register disjoint fragments per thread. Distinct
// threads may freely register overlapping ranges — that is precisely how
// shared state is expressed.
func (t *Tracker) Register(tid mem.ThreadID, ranges ...mem.Range) {
	if tid < 0 {
		// Invariant: negative IDs are runtime sentinels, never state
		// owners.
		panic(fmt.Sprintf("cachesim: Tracker.Register(%v): sentinel thread ID", tid))
	}
	if n := int(tid) + 1; n > len(t.counts) {
		t.counts = append(t.counts, make([]int64, n-len(t.counts))...)
		t.reg = append(t.reg, make([]bool, n-len(t.reg))...)
	}
	t.reg[tid] = true
	pageSize := uint64(1) << t.pageShift
	for _, r := range ranges {
		for base := r.Base; base < r.End(); {
			pageEnd := mem.Addr((uint64(base)/pageSize + 1) * pageSize)
			hi := r.End()
			if pageEnd < hi {
				hi = pageEnd
			}
			page := uint64(base) >> t.pageShift
			if n := int(page) + 1; n > len(t.pages) {
				t.pages = append(t.pages, make([][]span, n-len(t.pages))...)
			}
			t.pages[page] = append(t.pages[page], span{lo: base, hi: hi, tid: tid})
			base = hi
		}
	}
}

// Unregister removes every span belonging to tid and forgets its count.
func (t *Tracker) Unregister(tid mem.ThreadID) {
	if tid < 0 || int(tid) >= len(t.reg) {
		return
	}
	t.reg[tid] = false
	t.counts[tid] = 0
	for page, spans := range t.pages {
		if len(spans) == 0 {
			continue
		}
		keep := spans[:0]
		for _, s := range spans {
			if s.tid != tid {
				keep = append(keep, s)
			}
		}
		t.pages[page] = keep
	}
}

// Tracked reports whether tid has been registered.
func (t *Tracker) Tracked(tid mem.ThreadID) bool {
	return tid >= 0 && int(tid) < len(t.reg) && t.reg[tid]
}

// Footprint returns the number of resident lines holding state of tid,
// in lines of the tracked cache.
func (t *Tracker) Footprint(tid mem.ThreadID) int64 {
	if !t.Tracked(tid) {
		return 0
	}
	return t.counts[tid]
}

// Threads returns the registered thread IDs in ascending order.
func (t *Tracker) Threads() []mem.ThreadID {
	var ids []mem.ThreadID
	for tid, on := range t.reg {
		if on {
			ids = append(ids, mem.ThreadID(tid))
		}
	}
	return ids
}

// owners appends to t.scratch the distinct registered threads whose
// state overlaps the line at the given line-aligned address.
func (t *Tracker) owners(line mem.Addr) []mem.ThreadID {
	t.scratch = t.scratch[:0]
	lineEnd := line + mem.Addr(t.lineSize)
	// A line can touch at most two tracking pages when the line size
	// equals the page size; with pageSize >= lineSize it touches the
	// page of its first byte and possibly the next.
	for page := uint64(line) >> t.pageShift; page <= uint64(lineEnd-1)>>t.pageShift; page++ {
		if page >= uint64(len(t.pages)) {
			break
		}
		for _, s := range t.pages[page] {
			if s.lo < lineEnd && line < s.hi && !containsTid(t.scratch, s.tid) {
				t.scratch = append(t.scratch, s.tid)
			}
		}
	}
	return t.scratch
}

func containsTid(ids []mem.ThreadID, tid mem.ThreadID) bool {
	for _, id := range ids {
		if id == tid {
			return true
		}
	}
	return false
}

// Filled implements Listener.
func (t *Tracker) Filled(line mem.Addr, _ mem.ThreadID) {
	for _, tid := range t.owners(line) {
		t.counts[tid]++
	}
}

// Evicted implements Listener.
func (t *Tracker) Evicted(line mem.Addr, _ bool) {
	for _, tid := range t.owners(line) {
		t.counts[tid]--
	}
}

// Rebuild recomputes all counts from the current contents of the cache.
// Call it after registering spans for state that may already be
// resident.
func (t *Tracker) Rebuild(c *Cache) {
	for i := range t.counts {
		t.counts[i] = 0
	}
	c.ForEachValidLine(func(line mem.Addr, _ mem.ThreadID) {
		t.Filled(line, mem.NilThread)
	})
}
