package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// SVG rendering for the figures: multi-series line charts with axes,
// ticks, and a legend, built with nothing but the standard library. The
// output is deliberately plain (black axes, a small fixed palette) so
// diffs between regenerated figures stay readable.

// svgPalette holds the series stroke colors.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// SVGPlot describes one chart.
type SVGPlot struct {
	Title  string
	XLabel string
	YLabel string
	Series []*stats.Series
	// Width and Height are the canvas size in pixels (defaults
	// 720x440).
	Width, Height int
	// Dashed marks series indices to draw dashed (e.g. model
	// predictions vs solid observations).
	Dashed map[int]bool
}

// WriteTo renders the chart as a standalone SVG document.
func (p *SVGPlot) WriteTo(w io.Writer) (int64, error) {
	width, height := p.Width, p.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 440
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if math.IsInf(minX, 1) || maxX <= minX || maxY <= minY {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif">no data</text>`+"\n", width/2-30, height/2)
		b.WriteString("</svg>\n")
		n, err := io.WriteString(w, b.String())
		return int64(n), err
	}

	sx := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return marginT + plotH - (y-minY)/(maxY-minY)*plotH }

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(p.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-12, xmlEscape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), xmlEscape(p.YLabel))

	// Axes with 5 ticks each.
	fmt.Fprintf(&b, `<line x1="%d" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		fy := minY + (maxY-minY)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n",
			sx(fx), marginT+plotH, sx(fx), marginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			sx(fx), marginT+plotH+18, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%f" x2="%d" y2="%f" stroke="black"/>`+"\n",
			marginL-5, sy(fy), marginL, sy(fy))
		fmt.Fprintf(&b, `<text x="%d" y="%f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-8, sy(fy)+3, fmtTick(fy))
	}

	// Series polylines.
	for si, s := range p.Series {
		if s.Len() == 0 {
			continue
		}
		color := svgPalette[si%len(svgPalette)]
		dash := ""
		if p.Dashed[si] {
			dash = ` stroke-dasharray="6 4"`
		}
		var pts strings.Builder
		for i := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", sx(s.X[i]), sy(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.6"%s points="%s"/>`+"\n",
			color, dash, strings.TrimSpace(pts.String()))
	}

	// Legend.
	ly := marginT + 8
	for si, s := range p.Series {
		color := svgPalette[si%len(svgPalette)]
		dash := ""
		if p.Dashed[si] {
			dash = ` stroke-dasharray="6 4"`
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.6"%s/>`+"\n",
			width-marginR-150, ly, width-marginR-120, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			width-marginR-114, ly+3, xmlEscape(s.Label))
		ly += 14
	}
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the SVG to a string.
func (p *SVGPlot) String() string {
	var b strings.Builder
	p.WriteTo(&b)
	return b.String()
}

// fmtTick renders an axis tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// xmlEscape escapes text content for SVG.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
