package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Title", "col1", "longer column", "c")
	tbl.AddRow("a", "b", "c")
	tbl.AddRow("longer cell", "x", "y")
	tbl.Note("footnote %d", 7)
	out := tbl.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns must align: "b" and "x" start at the same offset.
	bi := strings.Index(lines[3], "b")
	xi := strings.Index(lines[4], "x")
	if bi != xi {
		t.Errorf("column misaligned: %d vs %d", bi, xi)
	}
	if !strings.Contains(lines[5], "footnote 7") {
		t.Error("note missing")
	}
}

func TestAddRowf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRowf("s", 3.14159, 42)
	out := tbl.String()
	if !strings.Contains(out, "3.142") || !strings.Contains(out, "42") {
		t.Errorf("formatting wrong: %q", out)
	}
}

func TestRowsShorterThanColumns(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	if out := tbl.String(); !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
}

func TestPlotRendersSeries(t *testing.T) {
	s1 := &stats.Series{Label: "up"}
	s2 := &stats.Series{Label: "down"}
	for i := 0; i < 50; i++ {
		s1.Append(float64(i), float64(i))
		s2.Append(float64(i), float64(50-i))
	}
	p := &Plot{Title: "T", XLabel: "x", YLabel: "y", Series: []*stats.Series{s1, s2}, Height: 10, Width: 40}
	out := p.String()
	if !strings.Contains(out, "T") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("plot incomplete: %q", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
	// 10 chart rows between pipes.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			rows++
		}
	}
	if rows != 10 {
		t.Errorf("chart rows = %d, want 10", rows)
	}
}

func TestPlotEmptyData(t *testing.T) {
	p := &Plot{Title: "E", Series: []*stats.Series{{Label: "none"}}}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	flat := &stats.Series{Label: "flat"}
	flat.Append(1, 0)
	p2 := &Plot{Series: []*stats.Series{flat}}
	if out := p2.String(); !strings.Contains(out, "no data") {
		t.Errorf("degenerate plot: %q", out)
	}
}

func TestCSV(t *testing.T) {
	a := &stats.Series{Label: "a"}
	b := &stats.Series{Label: "b"}
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(1, 100)
	var sb strings.Builder
	if err := CSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,10,100\n2,20,\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	var empty strings.Builder
	if err := CSV(&empty); err != nil || empty.Len() != 0 {
		t.Error("empty CSV misbehaved")
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("1", "2")
	tbl.AddRow("only") // short row padded
	tbl.Note("n")
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "|---|---|", "| 1 | 2 |", "| only |  |", "_n_"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSVGPlot(t *testing.T) {
	obs := &stats.Series{Label: "observed <1>"}
	pred := &stats.Series{Label: "predicted"}
	for i := 0; i < 30; i++ {
		obs.Append(float64(i*100), float64(i*i))
		pred.Append(float64(i*100), float64(i*i)+10)
	}
	p := &SVGPlot{
		Title: "T & Co", XLabel: "misses", YLabel: "lines",
		Series: []*stats.Series{obs, pred},
		Dashed: map[int]bool{1: true},
	}
	out := p.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "stroke-dasharray",
		"T &amp; Co", "observed &lt;1&gt;", "misses", "lines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines, one dashed.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSVGPlotEmpty(t *testing.T) {
	p := &SVGPlot{Title: "E", Series: []*stats.Series{{Label: "none"}}}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty SVG: %q", out)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2_000_000: "2.0M",
		40000:     "40k",
		512:       "512",
		3:         "3",
		0.125:     "0.12",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
