// Package report renders experiment results as aligned ASCII tables,
// simple text plots and CSV, so every table and figure of the paper can
// be regenerated on a terminal and diffed across runs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row built from format/value pairs: values are
// rendered with %v unless they are float64 (rendered %.4g).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table (used
// when pasting measured results into EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// Plot renders one or more series as a text chart: rows are sampled Y
// values over a shared X range, one column block per series.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []*stats.Series
	// Height is the number of chart rows (default 16).
	Height int
	// Width is the number of chart columns (default 64).
	Width int
}

// marks are the per-series glyphs.
var marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// WriteTo renders the plot.
func (p *Plot) WriteTo(w io.Writer) (int64, error) {
	height, width := p.Height, p.Width
	if height == 0 {
		height = 16
	}
	if width == 0 {
		width = 64
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if math.IsInf(minX, 1) || maxY <= minY || maxX <= minX {
		fmt.Fprintf(&b, "  (no data)\n")
		n, err := io.WriteString(w, b.String())
		return int64(n), err
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = mark
			}
		}
	}
	fmt.Fprintf(&b, "  %s\n", p.YLabel)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s %8.3g%s%.3g  (%s)\n", strings.Repeat(" ", 9), minX,
		strings.Repeat(" ", maxInt(1, width-14)), maxX, p.XLabel)
	for si, s := range p.Series {
		fmt.Fprintf(&b, "    %c %s\n", marks[si%len(marks)], s.Label)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the plot to a string.
func (p *Plot) String() string {
	var b strings.Builder
	p.WriteTo(&b)
	return b.String()
}

// CSV writes series as columns: x, then one y column per series (series
// must share X values; ragged series are written up to their length).
func CSV(w io.Writer, series ...*stats.Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	rows := 0
	for _, s := range series {
		if s.Len() > rows {
			rows = s.Len()
		}
	}
	for i := 0; i < rows; i++ {
		cells := make([]string, 0, len(series)+1)
		x := ""
		for _, s := range series {
			if i < s.Len() {
				x = fmt.Sprintf("%g", s.X[i])
				break
			}
		}
		cells = append(cells, x)
		for _, s := range series {
			if i < s.Len() {
				cells = append(cells, fmt.Sprintf("%g", s.Y[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
