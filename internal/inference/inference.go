// Package inference implements the paper's Section 7 future-work
// proposal: identifying state-sharing patterns entirely at runtime, so
// unmodified POSIX/Java-style programs get locality scheduling without
// user annotations.
//
// The paper sketches a Cache Miss Lookaside buffer (Bershad et al.): an
// inexpensive device between cache and memory recording a miss history
// at page granularity. This package is that device's software twin: the
// machine reports every E-cache miss to a Monitor, which maintains a
// small recent-accessor set per page and, from page co-access,
// incremental per-thread-pair sharing counts. The runtime periodically
// converts the counts into at_share-style coefficients
//
//	q(a, b) = |pages of a also accessed by b| / |pages of a|
//
// and feeds them to the same dependency graph the explicit annotations
// use. Inference is strictly a hint source: wrong inferences cannot
// affect correctness, only scheduling quality — the same contract as
// the annotations it replaces.
package inference

import (
	"sort"

	"repro/internal/mem"
)

// accessorsPerPage bounds the per-page recent-accessor set. Pages of
// genuinely shared state have few distinct accessors at a time; a tiny
// set keeps the per-miss cost O(1), like the hardware buffer would.
const accessorsPerPage = 4

// pageSet is one page's recent accessors, most recent last.
type pageSet struct {
	tids  [accessorsPerPage]mem.ThreadID
	count int8
}

func (p *pageSet) contains(tid mem.ThreadID) bool {
	for i := 0; i < int(p.count); i++ {
		if p.tids[i] == tid {
			return true
		}
	}
	return false
}

// add appends tid, evicting the oldest accessor when full, and returns
// the accessors that were already present (the sharing partners).
func (p *pageSet) add(tid mem.ThreadID) []mem.ThreadID {
	partners := make([]mem.ThreadID, 0, accessorsPerPage)
	for i := 0; i < int(p.count); i++ {
		partners = append(partners, p.tids[i])
	}
	if int(p.count) == accessorsPerPage {
		copy(p.tids[:], p.tids[1:])
		p.tids[accessorsPerPage-1] = tid
	} else {
		p.tids[p.count] = tid
		p.count++
	}
	return partners
}

// threadInfo accumulates one thread's page statistics.
type threadInfo struct {
	pages  int                      // distinct pages this thread missed on
	shared map[mem.ThreadID]float64 // pages of mine also touched by them
}

// Monitor is the software Cache Miss Lookaside buffer.
type Monitor struct {
	pageShift uint
	pages     map[uint64]*pageSet
	threads   map[mem.ThreadID]*threadInfo
	touches   uint64
}

// NewMonitor builds a monitor for the given page size (a power of two).
func NewMonitor(pageSize uint64) *Monitor {
	if !mem.IsPow2(pageSize) {
		// Invariant: geometry comes from a validated machine config.
		panic("inference: page size must be a power of two")
	}
	return &Monitor{
		pageShift: mem.Log2(pageSize),
		pages:     make(map[uint64]*pageSet),
		threads:   make(map[mem.ThreadID]*threadInfo),
	}
}

// Touches returns the number of misses recorded.
func (m *Monitor) Touches() uint64 { return m.touches }

// Touch records that thread tid took an E-cache miss at virtual address
// va. Called by the machine on every miss; O(1).
func (m *Monitor) Touch(tid mem.ThreadID, va mem.Addr) {
	if !tid.Valid() {
		return
	}
	m.touches++
	page := uint64(va) >> m.pageShift
	ps := m.pages[page]
	if ps == nil {
		ps = &pageSet{}
		m.pages[page] = ps
	}
	if ps.contains(tid) {
		return
	}
	partners := ps.add(tid)
	ti := m.thread(tid)
	ti.pages++
	// Co-access: this page is now evidence of sharing with every
	// recent accessor, in both directions.
	for _, other := range partners {
		ti.shared[other]++
		if oi := m.threads[other]; oi != nil {
			oi.shared[tid]++
		}
	}
}

func (m *Monitor) thread(tid mem.ThreadID) *threadInfo {
	ti := m.threads[tid]
	if ti == nil {
		ti = &threadInfo{shared: make(map[mem.ThreadID]float64)}
		m.threads[tid] = ti
	}
	return ti
}

// Coefficient returns the inferred q(a, b): the fraction of a's pages
// also recently accessed by b.
func (m *Monitor) Coefficient(a, b mem.ThreadID) float64 {
	ai := m.threads[a]
	if ai == nil || ai.pages == 0 {
		return 0
	}
	q := ai.shared[b] / float64(ai.pages)
	if q > 1 {
		q = 1
	}
	return q
}

// Pages returns the number of distinct pages tid has missed on.
func (m *Monitor) Pages(tid mem.ThreadID) int {
	if ti := m.threads[tid]; ti != nil {
		return ti.pages
	}
	return 0
}

// Edge is one inferred sharing relation.
type Edge struct {
	To mem.ThreadID
	Q  float64
}

// EdgesFor returns up to limit inferred out-edges of thread a with
// coefficient at least minQ, strongest first (ties broken by thread ID
// for determinism).
func (m *Monitor) EdgesFor(a mem.ThreadID, minQ float64, limit int) []Edge {
	ai := m.threads[a]
	if ai == nil || ai.pages == 0 {
		return nil
	}
	edges := make([]Edge, 0, len(ai.shared))
	for b, n := range ai.shared {
		q := n / float64(ai.pages)
		if q > 1 {
			q = 1
		}
		if q >= minQ {
			edges = append(edges, Edge{To: b, Q: q})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Q != edges[j].Q {
			return edges[i].Q > edges[j].Q
		}
		return edges[i].To < edges[j].To
	})
	if limit > 0 && len(edges) > limit {
		edges = edges[:limit]
	}
	return edges
}

// Forget drops all state about tid (thread exit). Page sets keep stale
// entries until they age out of the 4-slot window, which is harmless:
// coefficients involving dead threads are never requested again.
func (m *Monitor) Forget(tid mem.ThreadID) {
	delete(m.threads, tid)
	for _, ti := range m.threads {
		delete(ti.shared, tid)
	}
}

// Decay halves all pair evidence and page counts. Called periodically
// so that phase changes age out (the paper's "repeated trial runs"
// alternative made the same trade: old evidence must fade).
func (m *Monitor) Decay() {
	for _, ti := range m.threads {
		ti.pages -= ti.pages / 2
		for k := range ti.shared {
			ti.shared[k] /= 2
			if ti.shared[k] < 0.5 {
				delete(ti.shared, k)
			}
		}
	}
}
