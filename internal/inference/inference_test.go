package inference

import (
	"testing"

	"repro/internal/mem"
)

const page = 8192

func addr(p, off uint64) mem.Addr { return mem.Addr(p*page + off) }

func TestCoefficientFromCoAccess(t *testing.T) {
	m := NewMonitor(page)
	// Thread 1 misses on pages 0..9; thread 2 on pages 0..4 (half of
	// t1's pages) plus its own 100..104.
	for p := uint64(0); p < 10; p++ {
		m.Touch(1, addr(p, 64))
	}
	for p := uint64(0); p < 5; p++ {
		m.Touch(2, addr(p, 128))
	}
	for p := uint64(100); p < 105; p++ {
		m.Touch(2, addr(p, 0))
	}
	if got := m.Coefficient(1, 2); got != 0.5 {
		t.Errorf("q(1,2) = %v, want 0.5 (5 of 10 pages shared)", got)
	}
	if got := m.Coefficient(2, 1); got != 0.5 {
		t.Errorf("q(2,1) = %v, want 0.5 (5 of 10 pages shared)", got)
	}
	if got := m.Coefficient(1, 3); got != 0 {
		t.Errorf("q(1,3) = %v for unrelated thread", got)
	}
}

func TestRepeatMissesSamePageCountOnce(t *testing.T) {
	m := NewMonitor(page)
	for i := 0; i < 100; i++ {
		m.Touch(1, addr(7, uint64(i*64)))
	}
	if got := m.Pages(1); got != 1 {
		t.Errorf("Pages = %d, want 1", got)
	}
	if m.Touches() != 100 {
		t.Errorf("Touches = %d", m.Touches())
	}
}

func TestEdgesForOrderingAndLimit(t *testing.T) {
	m := NewMonitor(page)
	// t1 misses on 10 pages; t2 co-accesses 8, t3 co-accesses 4, t4
	// co-accesses 1.
	for p := uint64(0); p < 10; p++ {
		m.Touch(1, addr(p, 0))
	}
	for p := uint64(0); p < 8; p++ {
		m.Touch(2, addr(p, 8))
	}
	for p := uint64(0); p < 4; p++ {
		m.Touch(3, addr(p, 16))
	}
	m.Touch(4, addr(0, 24))
	edges := m.EdgesFor(1, 0.05, 2)
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0].To != 2 || edges[0].Q != 0.8 {
		t.Errorf("strongest edge = %+v, want t2 q=0.8", edges[0])
	}
	if edges[1].To != 3 || edges[1].Q != 0.4 {
		t.Errorf("second edge = %+v, want t3 q=0.4", edges[1])
	}
	// minQ filters the weak edge even without a limit.
	all := m.EdgesFor(1, 0.2, 0)
	for _, e := range all {
		if e.To == 4 {
			t.Error("sub-threshold edge returned")
		}
	}
}

func TestAccessorSetEviction(t *testing.T) {
	m := NewMonitor(page)
	// Five threads hit one page: the first is evicted from the 4-slot
	// set, so a sixth accessor no longer pairs with it.
	for tid := mem.ThreadID(1); tid <= 5; tid++ {
		m.Touch(tid, addr(0, 0))
	}
	m.Touch(6, addr(0, 0))
	if got := m.Coefficient(6, 1); got != 0 {
		t.Errorf("evicted accessor still paired: q(6,1)=%v", got)
	}
	if got := m.Coefficient(6, 5); got == 0 {
		t.Error("recent accessor not paired")
	}
}

func TestForget(t *testing.T) {
	m := NewMonitor(page)
	m.Touch(1, addr(0, 0))
	m.Touch(2, addr(0, 8))
	m.Forget(1)
	if m.Pages(1) != 0 || m.Coefficient(2, 1) != 0 {
		t.Error("forget incomplete")
	}
	if m.EdgesFor(1, 0, 0) != nil {
		t.Error("edges survive forget")
	}
}

func TestDecayFadesOldEvidence(t *testing.T) {
	m := NewMonitor(page)
	for p := uint64(0); p < 8; p++ {
		m.Touch(1, addr(p, 0))
		m.Touch(2, addr(p, 8))
	}
	q0 := m.Coefficient(1, 2)
	if q0 != 1 {
		t.Fatalf("q = %v", q0)
	}
	// Several decays with no fresh evidence must eventually clear the
	// pair.
	for i := 0; i < 8; i++ {
		m.Decay()
	}
	if got := m.Coefficient(1, 2); got != 0 {
		t.Errorf("pair evidence survived decay: %v", got)
	}
}

func TestCoefficientClamped(t *testing.T) {
	m := NewMonitor(page)
	// Pathological: pair evidence can exceed the page count when a
	// thread's slot is evicted and re-added; the coefficient must
	// clamp at 1.
	m.Touch(1, addr(0, 0))
	for tid := mem.ThreadID(2); tid <= 5; tid++ {
		m.Touch(tid, addr(0, 0))
	}
	m.Touch(1, addr(0, 0)) // re-added after eviction, pairs again
	if got := m.Coefficient(1, 5); got > 1 {
		t.Errorf("coefficient %v > 1", got)
	}
}

func TestInvalidThreadIgnored(t *testing.T) {
	m := NewMonitor(page)
	m.Touch(mem.SchedThread, addr(0, 0))
	m.Touch(mem.NilThread, addr(0, 0))
	if m.Touches() != 0 {
		t.Error("scheduler/nil misses recorded")
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewMonitor(1000)
}
