package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/fsatomic"
	"repro/internal/parallel"
	"repro/internal/retry"
	"repro/internal/snapshot"
)

// The store is the server's durability layer. Each session owns two
// files in the data directory:
//
//	<id>.json  — the manifest: identity, config, lifecycle state,
//	             progress counters, and the final result or failure.
//	<id>.snap  — the latest boundary snapshot (internal/snapshot
//	             format), present only while the session has resumable
//	             progress.
//
// Both are written atomically (internal/fsatomic; snapshot.WriteFile
// already is), and every operation runs under internal/retry so a
// transiently failing disk costs a short stall, not a lost session.
// The manifest is written before a create is acknowledged, so a
// SIGKILL at any instant loses at most unacknowledged sessions; any
// in-memory progress lost with the process is recomputed
// deterministically on the next step.

// manifest is the on-disk session record. Epoch and the migration
// provenance fields travel with the session when it moves between
// instances: Epoch is the fencing epoch of the last migration attempt
// that touched it, MigratedTo marks a tombstone left behind by a
// committed outbound migration, and MigratedFrom records the announced
// source of an inbound one.
type manifest struct {
	ID           string        `json:"id"`
	Tenant       string        `json:"tenant"`
	Config       SessionConfig `json:"config"`
	State        State         `json:"state"`
	Boundaries   uint64        `json:"boundaries"`
	Cycle        uint64        `json:"cycle"`
	Evictions    uint64        `json:"evictions"`
	Resumes      uint64        `json:"resumes"`
	Result       *Result       `json:"result,omitempty"`
	Failure      string        `json:"failure,omitempty"`
	Epoch        uint64        `json:"epoch,omitempty"`
	MigratedTo   string        `json:"migrated_to,omitempty"`
	MigratedFrom string        `json:"migrated_from,omitempty"`
}

// migrationIntent is the durable record of an in-flight outbound
// migration, written (atomically, before any byte reaches the peer)
// so a crash at ANY later instant leaves enough on disk to resolve the
// handoff in exactly one direction: boot recovery asks the recorded
// target whether epoch committed there — yes → tombstone locally,
// no → fence the epoch at the target and reclaim locally.
type migrationIntent struct {
	ID      string `json:"id"`
	Target  string `json:"target"`
	Epoch   uint64 `json:"epoch"`
	Created string `json:"created,omitempty"`
}

// store performs all session IO.
type store struct {
	dir string
	pol retry.Policy
}

// ioTimeout bounds one retried operation end to end; store IO never
// uses a request context (persistence must succeed even while the
// server is shutting down).
const ioTimeout = 15 * time.Second

func (st *store) manifestPath(id string) string { return filepath.Join(st.dir, id+".json") }
func (st *store) snapPath(id string) string     { return filepath.Join(st.dir, id+".snap") }
func (st *store) flightPath(id string) string   { return filepath.Join(st.dir, id+".flight.json") }
func (st *store) intentPath(id string) string   { return filepath.Join(st.dir, id+".intent.json") }

// policyFor decorrelates retry jitter across paths (and from other
// processes on the same disk) by folding the path into the seed.
func (st *store) policyFor(path string) retry.Policy {
	h := fnv.New64a()
	h.Write([]byte(path))
	p := st.pol
	p.Seed ^= h.Sum64()
	return p
}

func (st *store) ioCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), ioTimeout)
}

func (st *store) writeManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding manifest %s: %w", m.ID, err)
	}
	path := st.manifestPath(m.ID)
	ctx, cancel := st.ioCtx()
	defer cancel()
	return retry.Do(ctx, st.policyFor(path), func() error {
		return fsatomic.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		})
	})
}

func (st *store) loadManifest(path string) (manifest, error) {
	var m manifest
	ctx, cancel := st.ioCtx()
	defer cancel()
	err := retry.Do(ctx, st.policyFor(path), func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &m); err != nil {
			// A corrupt manifest will not improve with retrying.
			return retry.Permanent(err)
		}
		return nil
	})
	if err != nil {
		return manifest{}, fmt.Errorf("server: loading manifest %s: %w", path, err)
	}
	return m, nil
}

func (st *store) writeSnapshot(id string, s *snapshot.State) error {
	path := st.snapPath(id)
	ctx, cancel := st.ioCtx()
	defer cancel()
	return retry.Do(ctx, st.policyFor(path), func() error {
		return s.WriteFile(path)
	})
}

// loadSnapshot returns the session's snapshot, or (nil, nil) when none
// exists — a session whose snapshot vanished restarts from cycle zero,
// which is deterministic, just slower.
func (st *store) loadSnapshot(id string) (*snapshot.State, error) {
	path := st.snapPath(id)
	var out *snapshot.State
	ctx, cancel := st.ioCtx()
	defer cancel()
	err := retry.Do(ctx, st.policyFor(path), func() error {
		s, err := snapshot.LoadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return retry.Permanent(err)
			}
			return err
		}
		out = s
		return nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: loading snapshot for %s: %w", id, err)
	}
	return out, nil
}

// readSnapshotRaw returns the session's snapshot file bytes verbatim —
// the migration wire format IS the on-disk container (magic, version,
// CRC64 and all), so a transfer ships the already-durable bytes without
// re-encoding. (nil, nil) when the session has no snapshot (no progress
// yet: the target starts it from cycle zero).
func (st *store) readSnapshotRaw(id string) ([]byte, error) {
	path := st.snapPath(id)
	var out []byte
	ctx, cancel := st.ioCtx()
	defer cancel()
	err := retry.Do(ctx, st.policyFor(path), func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return retry.Permanent(err)
			}
			return err
		}
		out = data
		return nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: reading snapshot for %s: %w", id, err)
	}
	return out, nil
}

// writeSnapshotRaw persists received snapshot bytes verbatim (the
// inbound half of the wire-format reuse). The caller has already
// verified the container's CRC.
func (st *store) writeSnapshotRaw(id string, data []byte) error {
	path := st.snapPath(id)
	ctx, cancel := st.ioCtx()
	defer cancel()
	return retry.Do(ctx, st.policyFor(path), func() error {
		return fsatomic.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		})
	})
}

// removeSnapshot is best-effort cleanup (done sessions do not need
// their snapshots); a leftover file is harmless.
func (st *store) removeSnapshot(id string) {
	os.Remove(st.snapPath(id))
}

// removeSession removes the session's files; used by delete.
func (st *store) removeSession(id string) {
	os.Remove(st.snapPath(id))
	os.Remove(st.manifestPath(id))
	os.Remove(st.flightPath(id))
	os.Remove(st.intentPath(id))
}

// writeIntent durably records an outbound migration before the first
// byte leaves the process. Everything the crash-recovery path needs —
// target and fencing epoch — is in this one atomically-replaced file.
func (st *store) writeIntent(in migrationIntent) error {
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding migration intent %s: %w", in.ID, err)
	}
	path := st.intentPath(in.ID)
	ctx, cancel := st.ioCtx()
	defer cancel()
	return retry.Do(ctx, st.policyFor(path), func() error {
		return fsatomic.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		})
	})
}

// removeIntent clears a resolved intent. Best-effort: a leftover file
// only costs one extra resolution round on the next boot.
func (st *store) removeIntent(id string) {
	os.Remove(st.intentPath(id))
}

// scanIntents loads every migration intent in the data directory. A
// corrupt intent is quarantined like a corrupt manifest — the session
// itself still restores, but the operator must reconcile by hand (see
// the stuck-intent runbook in docs/SERVICE.md) because without the
// target and epoch the handoff cannot be auto-resolved safely.
func (st *store) scanIntents() (intents []migrationIntent, quarantined []string, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: scanning %s: %w", st.dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".intent.json") {
			continue
		}
		path := filepath.Join(st.dir, e.Name())
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			quarantined = append(quarantined, st.quarantine(path))
			continue
		}
		var in migrationIntent
		if jerr := json.Unmarshal(data, &in); jerr != nil || in.ID == "" || in.Target == "" || in.Epoch == 0 {
			quarantined = append(quarantined, st.quarantine(path))
			continue
		}
		intents = append(intents, in)
	}
	sort.Slice(intents, func(i, j int) bool { return intents[i].ID < intents[j].ID })
	return intents, quarantined, nil
}

// writeFlight persists a flight record (see flight.go). Same atomic
// write-and-retry discipline as the manifest.
func (st *store) writeFlight(id string, d flightDump) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding flight record %s: %w", id, err)
	}
	path := st.flightPath(id)
	ctx, cancel := st.ioCtx()
	defer cancel()
	return retry.Do(ctx, st.policyFor(path), func() error {
		return fsatomic.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		})
	})
}

// loadFlight returns the raw flight record, or ErrNotFound when the
// session never dumped one.
func (st *store) loadFlight(id string) (json.RawMessage, error) {
	data, err := os.ReadFile(st.flightPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("server: loading flight record for %s: %w", id, err)
	}
	return data, nil
}

// restored is one recovered session record — or, when quarantined is
// set, a manifest that could not be loaded and was moved aside.
type restored struct {
	man     manifest
	hasSnap bool
	// quarantined: loading the manifest failed (unreadable or corrupt)
	// and the file was renamed out of scan's view; path is where it
	// ended up and err is the load failure. The session is not
	// restored, but the rest of the directory still is.
	quarantined bool
	path        string
	err         error
}

// quarantine moves a manifest that failed to load out of the scan
// namespace (".json" → ".json.corrupt") so one bad file cannot keep
// the server from booting, while preserving the bytes for forensics.
// Returns the file's final path (unchanged if the rename also failed).
func (st *store) quarantine(path string) string {
	q := path + ".corrupt"
	if err := os.Rename(path, q); err != nil {
		return path
	}
	return q
}

// scan loads every manifest in the data directory, in parallel, and
// reports whether each session also has a snapshot on disk. Manifests
// are returned sorted by ID for deterministic restore order. A
// manifest that fails to load is quarantined and reported as such, not
// fatal: crash tolerance must not hinge on every file in the data
// directory being pristine.
func (st *store) scan(workers int) ([]restored, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("server: scanning %s: %w", st.dir, err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		// Flight records and migration intents also end in .json but are
		// not manifests — scanning them here would quarantine them as
		// corrupt. Intents get their own scan (scanIntents).
		if strings.HasSuffix(e.Name(), ".flight.json") || strings.HasSuffix(e.Name(), ".intent.json") {
			continue
		}
		paths = append(paths, filepath.Join(st.dir, e.Name()))
	}
	sort.Strings(paths)
	return parallel.Map(workers, len(paths), func(i int) (restored, error) {
		m, err := st.loadManifest(paths[i])
		if err != nil {
			return restored{quarantined: true, path: st.quarantine(paths[i]), err: err}, nil
		}
		_, statErr := os.Stat(st.snapPath(m.ID))
		return restored{man: m, hasSnap: statErr == nil}, nil
	})
}
