package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/snapshot"
)

// Cross-instance session migration: a two-phase handoff built so that
// a SIGKILL of either instance at ANY instant loses nothing and
// duplicates nothing.
//
//	prepare   park the engine at a boundary, persist snapshot +
//	          manifest, then durably record a migration intent carrying
//	          a fresh fencing epoch (sess.epoch+1). Only after the
//	          intent is on disk does any byte leave the process.
//	transfer  push the envelope — manifest, raw snapshot bytes (the
//	          on-disk container IS the wire format), obs-log cursor and
//	          tail — with retry/backoff and a per-attempt timeout.
//	commit    the target verifies the container CRC and the config
//	          fingerprint, persists snapshot THEN manifest (the
//	          manifest write is its commit point), inserts the session
//	          and acks. The source tombstones (StateMigrated, 410 +
//	          location) and removes the intent.
//
// Exactly-once under crashes rests on two facts. First, the intent is
// written before the transfer and removed only after the local
// tombstone (or reclaim decision) is resolved, so boot recovery always
// knows a handoff might be half-done and whom to ask. Second, the
// recovery question itself fences: a "not committed" answer records
// the asked epoch in the target's fence table (under the same per-ID
// lock inbound commits take), so a still-in-flight transfer of that
// epoch can no longer commit afterwards — the source may then reclaim
// with no risk of the session running on both sides. Re-push or
// reclaim, never both.

// migrationEnvelope is the transfer wire format. Snapshot carries the
// session's snapshot container verbatim (base64 in JSON); ObsPublished
// and ObsEvents carry the published engine-event cursor and retained
// tail so the /obs stream continues gap-free on the target.
type migrationEnvelope struct {
	FormatVersion int            `json:"format_version"`
	ID            string         `json:"id"`
	Epoch         uint64         `json:"epoch"`
	Source        string         `json:"source,omitempty"`
	Manifest      manifest       `json:"manifest"`
	Snapshot      []byte         `json:"snapshot,omitempty"`
	ObsPublished  uint64         `json:"obs_published,omitempty"`
	ObsEvents     []obsWireEntry `json:"obs_events,omitempty"`
}

// obsWireEntry is one published engine event in transit.
type obsWireEntry struct {
	Seq uint64    `json:"seq"`
	Ev  obs.Event `json:"ev"`
}

// migrationAck is the target's commit receipt.
type migrationAck struct {
	ID               string `json:"id"`
	Epoch            uint64 `json:"epoch"`
	AlreadyCommitted bool   `json:"already_committed,omitempty"`
}

// MigrateResult is the API-visible outcome of a committed migration.
type MigrateResult struct {
	ID         string `json:"id"`
	Target     string `json:"target"`
	Location   string `json:"location"`
	Epoch      uint64 `json:"epoch"`
	Boundaries uint64 `json:"boundaries"`
	Cycle      uint64 `json:"cycle"`
}

// crash invokes the chaos hook at a named phase boundary. A non-nil
// return means "the process just died here": callers propagate it
// immediately, skipping all cleanup, so in-process tests observe
// exactly the on-disk state a SIGKILL would leave.
func (s *Server) crash(point string) error {
	if s.cfg.CrashPoint == nil {
		return nil
	}
	return s.cfg.CrashPoint(point)
}

// Migrate runs the full outbound handoff of session id to target.
// Steps against the session serialize behind the same per-session step
// lock, so clients stepping through the migration see 504/409/410 in
// order, never a torn state.
func (s *Server) Migrate(ctx context.Context, id, target string) (MigrateResult, error) {
	tgt, err := s.peer.normalizePeer(target)
	if err != nil {
		return MigrateResult{}, &ValidationError{Err: err}
	}
	sess, err := s.lookup(id)
	if err != nil {
		return MigrateResult{}, err
	}
	select {
	case s.migOut <- struct{}{}:
	default:
		return MigrateResult{}, &OverloadError{
			Reason:     fmt.Sprintf("all %d outbound migration slots are busy", s.cfg.MaxMigrations),
			RetryAfter: 2 * time.Second,
		}
	}
	defer func() { <-s.migOut }()
	if err := sess.lockStep(ctx); err != nil {
		return MigrateResult{}, err
	}
	defer sess.unlockStep()

	sess.mu.Lock()
	switch {
	case sess.deleted:
		sess.mu.Unlock()
		return MigrateResult{}, ErrNotFound
	case sess.state == StateMigrated:
		err := sess.migrationGateLocked()
		sess.mu.Unlock()
		return MigrateResult{}, err
	case sess.state == StateMigrating:
		err := sess.migrationGateLocked()
		sess.mu.Unlock()
		return MigrateResult{}, err
	case sess.state == StateDone || sess.state == StateFailed:
		st := sess.state
		sess.mu.Unlock()
		return MigrateResult{}, &ConflictError{Err: fmt.Errorf("session %s is %s; only resumable sessions migrate", id, st)}
	}
	sess.mu.Unlock()

	start := time.Now()
	shard := s.shard(id)
	s.met.migStarted.Inc(shard)

	// Phase 1: prepare — park, persist, mark migrating.
	newEpoch, err := s.prepareMigration(ctx, sess, tgt)
	if err != nil {
		return MigrateResult{}, err
	}
	if err := s.crash("source.prepared"); err != nil {
		return MigrateResult{}, err
	}
	intent := migrationIntent{
		ID: id, Target: tgt, Epoch: newEpoch,
		Created: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if err := s.store.writeIntent(intent); err != nil {
		s.met.ioFailures.Inc(shard)
		s.abortMigration(sess, 0, "intent write failed: "+firstLine(err.Error()), false)
		return MigrateResult{}, fmt.Errorf("server: persisting migration intent: %w", err)
	}
	if err := s.crash("source.intent"); err != nil {
		return MigrateResult{}, err
	}

	// Phase 2: transfer.
	env, err := s.buildEnvelope(sess, newEpoch)
	if err != nil {
		s.abortMigration(sess, newEpoch, "reading snapshot for transfer: "+firstLine(err.Error()), false)
		return MigrateResult{}, err
	}
	if err := s.crash("source.push"); err != nil {
		return MigrateResult{}, err
	}
	sess.events.append(Event{Kind: "migrate_transfer", Detail: tgt})
	_, pushErr := s.peer.push(ctx, tgt, env, func(attempt int) {
		if attempt > 1 {
			sess.events.append(Event{Kind: "migrate_retry", Detail: fmt.Sprintf("transfer attempt %d", attempt)})
		}
	})
	if pushErr != nil {
		if errors.Is(pushErr, errPeerFenced) {
			s.abortMigration(sess, newEpoch, "fenced by target: "+firstLine(pushErr.Error()), true)
			return MigrateResult{}, &ConflictError{Err: pushErr}
		}
		// The push failed without a definitive answer — an attempt may
		// have committed on the target with its response lost. Resolve
		// through the recovery query (which fences on "no"), exactly as
		// boot recovery would.
		res, rerr := s.resolvePush(sess, intent, pushErr)
		return res, rerr
	}
	if err := s.crash("source.acked"); err != nil {
		return MigrateResult{}, err
	}

	// Phase 3: commit.
	if err := s.commitMigrated(sess, tgt, newEpoch, "acked by target"); err != nil {
		return MigrateResult{}, err
	}
	d := time.Since(start)
	s.met.migSeconds.Observe(shard, d.Seconds())
	s.spans.add(span{name: "migrate", sess: id, req: RequestID(ctx), start: start, dur: d})
	return s.migrateResult(sess, tgt), nil
}

func (s *Server) migrateResult(sess *Session, tgt string) MigrateResult {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return MigrateResult{
		ID: sess.ID, Target: tgt,
		Location:   tgt + "/v1/sessions/" + sess.ID,
		Epoch:      sess.epoch,
		Boundaries: sess.boundaries, Cycle: sess.cycle,
	}
}

// prepareMigration parks the session's engine at a quantum boundary,
// makes its snapshot and manifest durable, and marks it migrating. On
// success the session refuses steps until commit or abort; the epoch
// the transfer will carry is returned but NOT yet applied to the
// session (it becomes the session's epoch only at commit).
func (s *Server) prepareMigration(ctx context.Context, sess *Session, target string) (uint64, error) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.MigrateTimeout)
	defer cancel()
	if err := s.evictWait(pctx, sess); err != nil {
		return 0, err
	}
	sess.mu.Lock()
	if sess.deleted {
		sess.mu.Unlock()
		return 0, ErrNotFound
	}
	if sess.state != StateIdle {
		st := sess.state
		sess.mu.Unlock()
		return 0, &ConflictError{Err: fmt.Errorf("session %s became %s while preparing migration", sess.ID, st)}
	}
	snap := sess.snap
	onDisk := sess.onDisk
	newEpoch := sess.epoch + 1
	sess.state = StateMigrating
	sess.gen++
	sess.mu.Unlock()
	sess.events.append(Event{Kind: "migrate_prepare", Detail: target})
	if snap != nil && !onDisk {
		if err := s.store.writeSnapshot(sess.ID, snap); err != nil {
			s.met.ioFailures.Inc(s.shard(sess.ID))
			s.abortMigration(sess, 0, "snapshot write failed: "+firstLine(err.Error()), false)
			return 0, fmt.Errorf("server: persisting snapshot for migration: %w", err)
		}
		sess.mu.Lock()
		if sess.snap == snap {
			sess.onDisk = true
			sess.snap = nil
		}
		sess.mu.Unlock()
	}
	if err := s.persistManifest(sess); err != nil {
		s.abortMigration(sess, 0, "manifest write failed: "+firstLine(err.Error()), false)
		return 0, fmt.Errorf("server: persisting manifest for migration: %w", err)
	}
	return newEpoch, nil
}

// buildEnvelope assembles the transfer: the manifest as the target
// should restore it, the raw snapshot container (nil when the session
// has no progress — the target then starts it from cycle zero), and
// the published obs cursor plus retained tail.
func (s *Server) buildEnvelope(sess *Session, epoch uint64) (*migrationEnvelope, error) {
	raw, err := s.store.readSnapshotRaw(sess.ID)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	man := sess.manifestLocked()
	sess.mu.Unlock()
	man.State = StateIdle
	man.Epoch = epoch
	man.MigratedTo = ""
	man.MigratedFrom = s.cfg.AdvertiseURL
	published, tail := sess.obsLog.export()
	env := &migrationEnvelope{
		FormatVersion: 1,
		ID:            sess.ID,
		Epoch:         epoch,
		Source:        s.cfg.AdvertiseURL,
		Manifest:      man,
		Snapshot:      raw,
		ObsPublished:  published,
	}
	for _, e := range tail {
		env.ObsEvents = append(env.ObsEvents, obsWireEntry{Seq: e.seq, Ev: e.ev})
	}
	return env, nil
}

// resolvePush settles a transfer whose outcome is unknown (retries
// exhausted or the request context died mid-push). One synchronous
// recovery round decides commit or reclaim; if the target is
// unreachable even for that, the session stays fenced as migrating
// with its intent on disk and a background resolver keeps asking.
func (s *Server) resolvePush(sess *Session, in migrationIntent, pushErr error) (MigrateResult, error) {
	decided, committed, err := s.resolveOnce(sess, in)
	if err != nil {
		return MigrateResult{}, err
	}
	if !decided {
		go s.resolveIntent(sess, in)
		return MigrateResult{}, &MigratingError{ID: sess.ID}
	}
	if committed {
		return s.migrateResult(sess, in.Target), nil
	}
	return MigrateResult{}, &ConflictError{
		Err: fmt.Errorf("transfer to %s failed (%v); session reclaimed locally, safe to retry", in.Target, firstLine(pushErr.Error())),
	}
}

// commitMigrated turns the local session into a 410 tombstone. The
// intent is removed only after the tombstone manifest is durable: if
// either write fails (or the process dies between them), boot recovery
// re-asks the target and reaches the same decision.
func (s *Server) commitMigrated(sess *Session, target string, epoch uint64, detail string) error {
	sess.mu.Lock()
	if sess.deleted {
		// Deleted while migrating: the target copy is now the only one,
		// which is exactly what a migration wants. Just drop the intent.
		sess.mu.Unlock()
		s.store.removeIntent(sess.ID)
		return nil
	}
	sess.state = StateMigrated
	sess.migratedTo = target
	sess.epoch = epoch
	sess.snap = nil
	sess.onDisk = false
	sess.gen++
	sess.mu.Unlock()
	perr := s.persistManifest(sess)
	if err := s.crash("source.committed"); err != nil {
		return err
	}
	if perr == nil {
		s.store.removeSnapshot(sess.ID)
		s.store.removeIntent(sess.ID)
	}
	sess.events.append(Event{Kind: "migrate_commit", Detail: detail})
	sess.obsLog.close()
	s.met.migCommitted.Inc(s.shard(sess.ID))
	return nil
}

// abortMigration reclaims a session whose handoff definitively did not
// commit (peer fence, local IO failure before transfer, or a fenced
// "not committed" recovery answer). The attempted epoch is burned —
// durably advanced past — because the target (or a recovery-status
// query) may have fenced it forever; a retry reusing it would be
// rejected on every future attempt. The manifest carrying the burned
// epoch is persisted before the intent is removed so a crash in
// between re-resolves to the same state. Pass epoch 0 when no epoch
// ever left the process (pre-intent failures): nothing can have
// fenced it, so nothing needs burning.
func (s *Server) abortMigration(sess *Session, epoch uint64, reason string, fenced bool) {
	sess.mu.Lock()
	deleted := sess.deleted
	burned := false
	if !deleted {
		if sess.state == StateMigrating {
			sess.state = StateIdle
		}
		if epoch > sess.epoch {
			sess.epoch = epoch
			sess.gen++
			burned = true
		}
	}
	sess.mu.Unlock()
	if burned {
		if err := s.persistManifest(sess); err != nil {
			// Keep the intent: boot recovery (or the next resolver round)
			// will fence at the target and burn the epoch again, and the
			// session must stay unable to migrate with a stale epoch until
			// the burn is durable.
			s.met.ioFailures.Inc(s.shard(sess.ID))
			sess.events.append(Event{Kind: "migrate_abort", Detail: reason + " (epoch burn not durable: " + firstLine(err.Error()) + ")"})
			return
		}
	}
	s.store.removeIntent(sess.ID)
	if deleted {
		return
	}
	sess.events.append(Event{Kind: "migrate_abort", Detail: reason})
	s.met.migAborted.Inc(s.shard(sess.ID))
	if fenced {
		s.met.migFenced.Inc(s.shard(sess.ID))
	}
	s.dumpFlight(sess, "migration_aborted", reason)
}

// recoverIntents is the boot-time half of crash tolerance: every
// intent left in the data directory marks a handoff of unknown
// outcome. The owning session is fenced (StateMigrating) before the
// server serves traffic, and a background resolver per intent asks the
// recorded target which way to settle.
func (s *Server) recoverIntents() {
	intents, quarantined, err := s.store.scanIntents()
	for _, q := range quarantined {
		s.met.quarantined.Inc(0)
		fmt.Fprintf(os.Stderr, "atsimd: quarantined unreadable migration intent %s (resolve by hand, see docs/SERVICE.md)\n", q)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "atsimd: scanning migration intents: %v\n", err)
		return
	}
	for _, in := range intents {
		sess, ok := s.sessions[in.ID]
		if !ok {
			// Manifest gone (deleted or quarantined): nothing local to
			// settle either way.
			s.store.removeIntent(in.ID)
			continue
		}
		if sess.state == StateMigrated && sess.epoch >= in.Epoch {
			// Crash landed between the tombstone manifest and the intent
			// removal; finish the cleanup.
			s.store.removeSnapshot(in.ID)
			s.store.removeIntent(in.ID)
			continue
		}
		if sess.epoch >= in.Epoch {
			// An abort already burned this epoch (manifest durable) and
			// died before removing the intent: the handoff is settled as
			// reclaimed, nothing to ask the target.
			s.store.removeIntent(in.ID)
			continue
		}
		sess.state = StateMigrating
		fmt.Fprintf(os.Stderr, "atsimd: session %s has an unresolved migration intent (epoch %d -> %s); resolving\n",
			in.ID, in.Epoch, in.Target)
		go s.resolveIntent(sess, in)
	}
}

// resolveIntent keeps asking the intent's target until the handoff
// settles or the server shuts down. The session stays fenced
// (migrating, 409 to steps) the whole time: serving it locally before
// the answer is known is exactly the double-run this protocol exists
// to prevent.
func (s *Server) resolveIntent(sess *Session, in migrationIntent) {
	for {
		decided, _, err := s.resolveOnce(sess, in)
		if decided || err != nil {
			return
		}
		select {
		case <-s.baseCtx.Done():
			return
		case <-time.After(s.resolvePause()):
		}
	}
}

// resolveOnce asks the target once whether the intent's epoch
// committed there, and settles accordingly: tombstone on yes, reclaim
// on no (safe because the query fenced the epoch). decided=false means
// the target could not answer; err is non-nil only for a simulated
// crash mid-settle.
func (s *Server) resolveOnce(sess *Session, in migrationIntent) (decided, committed bool, err error) {
	sess.mu.Lock()
	deleted := sess.deleted
	sess.mu.Unlock()
	if deleted {
		s.store.removeIntent(in.ID)
		return true, false, nil
	}
	qctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.MigrateTimeout)
	defer cancel()
	reply, qerr := s.peer.status(qctx, in.Target, in.ID, in.Epoch)
	if qerr != nil {
		return false, false, nil
	}
	if reply.Committed {
		if cerr := s.commitMigrated(sess, in.Target, in.Epoch, "recovered: committed on target"); cerr != nil {
			return true, true, cerr
		}
		return true, true, nil
	}
	s.abortMigration(sess, in.Epoch, fmt.Sprintf("recovered: epoch %d fenced at target, reclaimed", in.Epoch), false)
	return true, false, nil
}

// resolvePause paces recovery rounds off the store retry policy's cap,
// so tests with millisecond policies resolve fast while production
// defaults poll every second.
func (s *Server) resolvePause() time.Duration {
	cap := s.cfg.Retry.Cap
	if cap <= 0 {
		cap = 500 * time.Millisecond
	}
	return 2 * cap
}

// acceptMigration is the inbound (target) half: verify, persist
// snapshot-then-manifest, insert, ack. The manifest write is the
// commit point — a crash before it leaves no trace (the source
// re-pushes or reclaims), a crash after it restores the session on
// boot and the source's re-push is answered "already committed".
func (s *Server) acceptMigration(ctx context.Context, env *migrationEnvelope) (migrationAck, error) {
	if len(s.cfg.PeerAllow) == 0 {
		return migrationAck{}, &ValidationError{Err: errors.New("migration disabled: no -peer-allow configured")}
	}
	if env.FormatVersion != 1 {
		return migrationAck{}, &ValidationError{Err: fmt.Errorf("unsupported migration format_version %d", env.FormatVersion)}
	}
	if env.ID == "" || env.ID != env.Manifest.ID || env.Epoch == 0 || env.Epoch != env.Manifest.Epoch {
		return migrationAck{}, &ValidationError{Err: errors.New("migration envelope id/epoch do not match its manifest")}
	}
	select {
	case s.migIn <- struct{}{}:
	default:
		return migrationAck{}, &OverloadError{
			Reason:     fmt.Sprintf("all %d inbound migration slots are busy", s.cfg.MaxMigrations),
			RetryAfter: 2 * time.Second,
		}
	}
	defer func() { <-s.migIn }()

	cfg := env.Manifest.Config
	if err := cfg.validate(s.cfg); err != nil {
		return migrationAck{}, &ValidationError{Err: fmt.Errorf("migrated session config: %w", err)}
	}
	if err := verifySnapshotMatches(env.Snapshot, cfg); err != nil {
		return migrationAck{}, &ValidationError{Err: err}
	}

	// From here on, everything for this ID serializes against recovery
	// queries: a query that answered "not committed" has fenced the
	// epoch before we get the lock, and our commit can no longer slip
	// in behind that answer.
	s.migLocks.lock(env.ID)
	defer s.migLocks.unlock(env.ID)
	if err := s.crash("target.received"); err != nil {
		return migrationAck{}, err
	}
	shard := s.shard(env.ID)
	s.fenceMu.Lock()
	fenced := s.migFences[env.ID]
	s.fenceMu.Unlock()
	if fenced >= env.Epoch {
		s.met.migFenced.Inc(shard)
		return migrationAck{}, &FencedError{ID: env.ID, Epoch: env.Epoch, Fenced: fenced}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return migrationAck{}, ErrDraining
	}
	existing := s.sessions[env.ID]
	if existing != nil {
		existing.mu.Lock()
		exEpoch, exState := existing.epoch, existing.state
		existing.mu.Unlock()
		switch {
		case exEpoch >= env.Epoch:
			s.mu.Unlock()
			if exEpoch == env.Epoch {
				// Duplicate delivery of a transfer that already committed
				// (the classic lost-ack): idempotent success.
				return migrationAck{ID: env.ID, Epoch: exEpoch, AlreadyCommitted: true}, nil
			}
			s.met.migFenced.Inc(shard)
			return migrationAck{}, &FencedError{ID: env.ID, Epoch: env.Epoch, Fenced: exEpoch}
		case exState == StateMigrating:
			s.mu.Unlock()
			return migrationAck{}, &ConflictError{Err: fmt.Errorf("session %s has a migration in flight here", env.ID)}
		case exState != StateMigrated:
			// Same ID, lower epoch, not a tombstone: an unrelated local
			// session. Refuse — the source reclaims and keeps its copy.
			s.mu.Unlock()
			return migrationAck{}, &ConflictError{Err: fmt.Errorf("session id %s collides with a local session", env.ID)}
		}
	} else {
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			s.met.rejectedOver.Inc(shard)
			return migrationAck{}, &OverloadError{
				Reason:     fmt.Sprintf("server at capacity (%d resident sessions)", s.cfg.MaxSessions),
				RetryAfter: 5 * time.Second,
			}
		}
		tenant := env.Manifest.Tenant
		if tenant == "" {
			tenant = "default"
		}
		if q := s.cfg.TenantQuota; q > 0 && s.tenants[tenant] >= q {
			s.mu.Unlock()
			s.met.rejectedQuota.Inc(shard)
			return migrationAck{}, &OverloadError{
				Reason:     fmt.Sprintf("tenant %q at quota (%d resident sessions)", tenant, s.cfg.TenantQuota),
				RetryAfter: 5 * time.Second,
				Quota:      true,
			}
		}
	}
	s.mu.Unlock()

	// Persist snapshot FIRST, manifest second: a committed manifest
	// must never reference a snapshot that is not there. (The reverse
	// order could, after a crash between the writes.)
	if len(env.Snapshot) > 0 {
		if err := s.store.writeSnapshotRaw(env.ID, env.Snapshot); err != nil {
			s.met.ioFailures.Inc(shard)
			return migrationAck{}, fmt.Errorf("server: persisting migrated snapshot: %w", err)
		}
	} else {
		s.store.removeSnapshot(env.ID)
	}
	if err := s.crash("target.snapshot"); err != nil {
		return migrationAck{}, err
	}
	man := env.Manifest
	if man.State == StateLive || man.State == StateMigrating || man.State == "" {
		man.State = StateIdle
	}
	man.MigratedTo = ""
	man.MigratedFrom = env.Source
	if man.Tenant == "" {
		man.Tenant = "default"
	}
	if err := s.store.writeManifest(man); err != nil {
		s.met.ioFailures.Inc(shard)
		return migrationAck{}, fmt.Errorf("server: persisting migrated manifest: %w", err)
	}
	if err := s.crash("target.manifest"); err != nil {
		return migrationAck{}, err
	}

	sess := s.installMigrated(man, len(env.Snapshot) > 0, existing)
	sess.obsLog.preload(env.ObsPublished, wireToEntries(env.ObsEvents))
	sess.events.append(Event{Kind: "migrated_in", Detail: env.Source,
		Boundaries: man.Boundaries, Cycle: man.Cycle})
	s.met.migIn.Inc(shard)
	return migrationAck{ID: env.ID, Epoch: env.Epoch}, nil
}

// installMigrated swaps the migrated-in session into the table,
// replacing a superseded tombstone if one is resident.
func (s *Server) installMigrated(man manifest, hasSnap bool, superseded *Session) *Session {
	sess := newSession(man.ID, man.Tenant, man.Config, s.cfg.ObsLogCap)
	sess.state = man.State
	sess.boundaries = man.Boundaries
	sess.cycle = man.Cycle
	sess.evictions = man.Evictions
	sess.resumes = man.Resumes
	sess.result = man.Result
	sess.failure = man.Failure
	sess.epoch = man.Epoch
	sess.migratedFrom = man.MigratedFrom
	sess.onDisk = hasSnap
	sess.cleanGen = sess.gen
	s.mu.Lock()
	if superseded != nil {
		if old, ok := s.sessions[man.ID]; ok && old == superseded {
			// Tombstone replaced by the session coming back: retire the
			// old record so a racing persist cannot clobber the new
			// manifest (persists no-op on deleted sessions).
			superseded.mu.Lock()
			superseded.deleted = true
			superseded.mu.Unlock()
			if s.tenants[superseded.Tenant]--; s.tenants[superseded.Tenant] <= 0 {
				delete(s.tenants, superseded.Tenant)
			}
		}
	}
	sess.lastTouch = s.tick.Add(1)
	s.sessions[man.ID] = sess
	s.tenants[man.Tenant]++
	// Keep the ID generator ahead of adopted IDs so this instance's own
	// creates can never collide with a migrated-in session.
	if n, ok := parseID(man.ID); ok && n > s.seq {
		s.seq = n
	}
	s.updateGaugesLocked()
	s.mu.Unlock()
	return sess
}

func wireToEntries(wire []obsWireEntry) []obsEntry {
	if len(wire) == 0 {
		return nil
	}
	out := make([]obsEntry, 0, len(wire))
	for _, w := range wire {
		out = append(out, obsEntry{seq: w.Seq, ev: w.Ev})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// verifySnapshotMatches decodes the transferred container (checking
// magic, version and CRC64) and cross-checks the fields that fingerprint
// the configuration: seed, policy, quantum and the engine's config
// record (which carries app, scale, topology, obs level...). The full
// guarantee — bit-identical state — is enforced later by the engine's
// verified deterministic fast-forward on first resume; this check
// merely refuses obviously-mismatched transfers before they are
// persisted.
func verifySnapshotMatches(raw []byte, cfg SessionConfig) error {
	if len(raw) == 0 {
		return nil
	}
	st, err := snapshot.Load(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("migrated snapshot rejected: %w", err)
	}
	if st.Seed != cfg.Seed {
		return fmt.Errorf("migrated snapshot seed %d does not match config seed %d", st.Seed, cfg.Seed)
	}
	if st.Policy != cfg.Policy {
		return fmt.Errorf("migrated snapshot policy %q does not match config policy %q", st.Policy, cfg.Policy)
	}
	if st.CheckpointEvery != cfg.Quantum {
		return fmt.Errorf("migrated snapshot quantum %d does not match config quantum %d", st.CheckpointEvery, cfg.Quantum)
	}
	want := cfg.kv()
	if len(st.Config) != len(want) {
		return fmt.Errorf("migrated snapshot config record has %d fields, want %d", len(st.Config), len(want))
	}
	wantByKey := make(map[string]string, len(want))
	for _, kv := range want {
		wantByKey[kv.K] = kv.V
	}
	for _, kv := range st.Config {
		if v, ok := wantByKey[kv.K]; !ok || v != kv.V {
			return fmt.Errorf("migrated snapshot config field %q=%q does not match session config", kv.K, kv.V)
		}
	}
	return nil
}

// migrationStatus answers the recovery question for (id, epoch) — and
// fences: answering "not committed" records the epoch in the fence
// table under the per-ID lock, so an inbound transfer of that epoch
// still in flight can no longer commit afterwards. The fence table is
// in-memory on purpose: it only needs to outlive in-process races (an
// accept blocked on persistence), because a process death also kills
// any transfer it was about to commit.
func (s *Server) migrationStatus(id string, epoch uint64) (migrationStatusReply, error) {
	if len(s.cfg.PeerAllow) == 0 {
		return migrationStatusReply{}, &ValidationError{Err: errors.New("migration disabled: no -peer-allow configured")}
	}
	if id == "" || epoch == 0 {
		return migrationStatusReply{}, &ValidationError{Err: errors.New("migration status needs an id and a non-zero epoch")}
	}
	s.migLocks.lock(id)
	defer s.migLocks.unlock(id)
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess != nil {
		sess.mu.Lock()
		have := sess.epoch
		sess.mu.Unlock()
		if have >= epoch {
			return migrationStatusReply{ID: id, Committed: true, Epoch: have}, nil
		}
	}
	s.fenceMu.Lock()
	if s.migFences[id] < epoch {
		s.migFences[id] = epoch
	}
	have := s.migFences[id]
	s.fenceMu.Unlock()
	return migrationStatusReply{ID: id, Committed: false, Epoch: have}, nil
}
