package server

import "sync"

// eventLogCap bounds each session's event ring. Old events fall off
// the front; Seq numbers stay monotonic so a consumer can detect the
// gap.
const eventLogCap = 256

// Event is one observable session transition, streamed as NDJSON from
// the events endpoint. A "gap" event is synthesized (not stored) when
// a reader's cursor falls behind the ring: Dropped counts the events
// lost between the cursor and the oldest retained event, and Seq is
// the last lost sequence number so followers advance past the hole —
// overflow is always reported, never silent (mirroring the engine
// stream's gap records).
type Event struct {
	Seq        uint64 `json:"seq"`
	Kind       string `json:"kind"` // created, live, boundary, evicted, resumed, done, failed, flight_dumped, deleted, gap, migrate_prepare, migrate_transfer, migrate_retry, migrate_commit, migrate_abort, migrated_in
	Boundaries uint64 `json:"boundaries,omitempty"`
	Cycle      uint64 `json:"cycle,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
}

// eventLog is a bounded ring of events plus a broadcast channel that
// followers wait on: append closes the current channel and installs a
// fresh one, so any number of followers wake without the log tracking
// them individually.
type eventLog struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	buf    []Event
	notify chan struct{}
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{cap: capacity, notify: make(chan struct{})}
}

func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	l.buf = append(l.buf, ev)
	if len(l.buf) > l.cap {
		l.buf = l.buf[len(l.buf)-l.cap:]
	}
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// since returns the buffered events with Seq > after, plus the channel
// that will be closed at the next append. When events between after
// and the oldest retained one already fell off the ring, the slice
// leads with a synthetic gap event accounting for them.
func (l *eventLog) since(after uint64) ([]Event, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.buf {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	if len(out) > 0 && out[0].Seq > after+1 {
		gap := Event{Seq: out[0].Seq - 1, Kind: "gap", Dropped: out[0].Seq - 1 - after}
		out = append([]Event{gap}, out...)
	}
	return out, l.notify
}
