package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"time"

	"repro/internal/obs"
)

// The flight recorder. Every session continuously buffers its recent
// past — the published engine-event tail (obsLog) and the lifecycle
// log (eventLog) — and on the failures worth a post-mortem the server
// dumps both to <id>.flight.json, atomically, next to the session's
// manifest. Triggers:
//
//   - the session's engine panicked (chaos-injected or real),
//   - the stall watchdog tripped, or any other engine error,
//   - an eviction could not persist its snapshot (the session survives
//     in memory, but the flight file records what it was doing in case
//     the process dies before a later persist succeeds).
//
// The file is forensic, not operational: restore ignores it, resume
// does not read it, deleting the session removes it.

// flightDump is the on-disk flight-record format, served verbatim by
// GET /v1/sessions/{id}/flight.
type flightDump struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Reason classifies the trigger: panic, stall, engine_error or
	// eviction_failure.
	Reason string `json:"reason"`
	// Detail is the full diagnostic (for panics, including the stack).
	Detail     string `json:"detail,omitempty"`
	State      State  `json:"state"`
	Boundaries uint64 `json:"boundaries"`
	Cycle      uint64 `json:"cycle"`
	DumpedAt   int64  `json:"dumped_at_unix_ns"`
	// Lifecycle is the session's buffered lifecycle event tail
	// (created/live/boundary/evicted/.../failed).
	Lifecycle []Event `json:"lifecycle"`
	// EngineEvents is the published engine-event tail in the /obs wire
	// format, one object per line of the stream — the engine's last
	// recorded moments before the trigger. EngineDropped counts the
	// events before the tail that bounded buffers already shed.
	EngineEvents  []json.RawMessage `json:"engine_events"`
	EngineDropped uint64            `json:"engine_dropped,omitempty"`
}

// failureReason classifies a session failure string for the flight
// record (and for anyone grepping flight files by reason).
func failureReason(failure string) string {
	switch {
	case strings.Contains(failure, "panicked"):
		return "panic"
	case strings.Contains(failure, "stall"):
		return "stall"
	default:
		return "engine_error"
	}
}

// dumpFlight writes the session's flight record. Best-effort by
// design: it runs on failure paths where the disk may be the problem,
// so a failed dump is counted as an IO failure and dropped — it must
// never turn one failure into two.
func (s *Server) dumpFlight(sess *Session, reason, detail string) {
	sess.mu.Lock()
	d := flightDump{
		ID: sess.ID, Tenant: sess.Tenant,
		Reason: reason, Detail: detail,
		State: sess.state, Boundaries: sess.boundaries, Cycle: sess.cycle,
		DumpedAt: time.Now().UnixNano(),
	}
	sess.mu.Unlock()
	d.Lifecycle, _ = sess.events.since(0)
	if d.Lifecycle == nil {
		d.Lifecycle = []Event{}
	}
	entries, _, _ := sess.obsLog.since(0)
	d.EngineEvents = make([]json.RawMessage, 0, len(entries))
	var line []byte
	for i, e := range entries {
		if i == 0 {
			// Everything before the retained tail is gone from memory;
			// account for it exactly as the live stream would.
			d.EngineDropped = e.seq - 1
		}
		line = obs.AppendEventNDJSON(line[:0], e.seq, e.ev)
		d.EngineEvents = append(d.EngineEvents, json.RawMessage(bytes.Clone(bytes.TrimSuffix(line, []byte("\n")))))
	}
	if err := s.store.writeFlight(sess.ID, d); err != nil {
		s.met.ioFailures.Inc(s.shard(sess.ID))
		return
	}
	s.met.flightDumps.Inc(s.shard(sess.ID))
	sess.events.append(Event{Kind: "flight_dumped", Detail: reason})
}

// Flight returns the session's flight record, or ErrNotFound when the
// session does not exist or never dumped one.
func (s *Server) Flight(id string) (json.RawMessage, error) {
	if _, err := s.lookup(id); err != nil {
		return nil, err
	}
	return s.store.loadFlight(id)
}
