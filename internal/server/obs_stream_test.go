package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// obsSessionConfig is testSessionConfig with tracing on and buffers
// big enough that nothing falls off — the lossless configuration the
// byte-identity comparisons need.
func obsSessionConfig(seed uint64) SessionConfig {
	cfg := testSessionConfig(seed)
	cfg.Obs = "trace"
	cfg.ObsRing = 1 << 17
	return cfg
}

// fetchObs GETs the session's /obs endpoint and returns the raw body.
func fetchObs(t *testing.T, base, id, query string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/obs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /obs%s = %d: %s", query, resp.StatusCode, body)
	}
	return body
}

// TestObsStreamMatchesEngineExport is the tentpole determinism gate:
// the server's engine-event stream for a completed session is
// byte-identical to the post-hoc export of a standalone run of the
// same configuration, and independent of the server's worker count.
func TestObsStreamMatchesEngineExport(t *testing.T) {
	cfg := obsSessionConfig(301)

	// Reference: the same engine run outside the server.
	app, err := workloads.SchedAppByName(cfg.App)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cachesim.ParseTopology(cfg.Topology)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cfg.machineConfig(topo)
	obsv := obs.New(mcfg.CPUs, obs.Options{
		Level: obs.Trace, RingSize: cfg.ObsRing, StreamSize: cfg.ObsRing,
	})
	e, err := rt.New(sim.New(machine.New(mcfg)), rt.Options{
		Policy: cfg.Policy,
		Seed:   cfg.Seed,
		Obs:    obsv,
		Checkpoint: rt.CheckpointConfig{
			Every:        cfg.Quantum,
			Config:       cfg.kv(),
			OnCheckpoint: func(*snapshot.State) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Spawn(e, cfg.Scale)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := obs.WriteStreamNDJSON(&want, obsv); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		_, ts := newTestAPI(t, func(c *Config) {
			c.Workers = workers
			c.ObsLogCap = 1 << 17
		})
		var info Info
		doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &info)
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)
		got := fetchObs(t, ts.URL, info.ID, "")
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("workers=%d: /obs differs from standalone export (%d vs %d bytes)",
				workers, len(got), want.Len())
		}
	}
}

// TestObsFollowEqualsBatch: a follower attached while the session is
// still being stepped accumulates exactly the bytes a post-completion
// batch read returns, and terminates on its own when the session
// finishes.
func TestObsFollowEqualsBatch(t *testing.T) {
	_, ts := newTestAPI(t, func(c *Config) { c.ObsLogCap = 1 << 17 })
	cfg := obsSessionConfig(302)
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &info)

	// One boundary first, so the follower starts mid-run with history
	// already published.
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 1}, nil)

	type followResult struct {
		body []byte
		err  error
	}
	followed := make(chan followResult, 1)
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/obs?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		followed <- followResult{body, err}
	}()

	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)

	fr := <-followed
	if fr.err != nil {
		t.Fatalf("follow read: %v", fr.err)
	}
	batch := fetchObs(t, ts.URL, info.ID, "")
	if !bytes.Equal(fr.body, batch) {
		t.Fatalf("follow stream != batch read (%d vs %d bytes)", len(fr.body), len(batch))
	}
	if len(batch) == 0 {
		t.Fatal("no engine events streamed at all")
	}

	// Cursor resume: re-reading from the last seq yields nothing new.
	var lastSeq uint64
	sc := bufio.NewScanner(bytes.NewReader(batch))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if line.Seq > 0 {
			lastSeq = line.Seq
		}
	}
	if rest := fetchObs(t, ts.URL, info.ID, "?after="+strconv.FormatUint(lastSeq, 10)); len(rest) != 0 {
		t.Fatalf("after=%d returned %d bytes, want none", lastSeq, len(rest))
	}
}

// TestObsStreamGapAccounting: with a tiny published-log cap the stream
// must lead with an explicit gap whose count plus retained events
// equals the run's total emission — nothing silently lost.
func TestObsStreamGapAccounting(t *testing.T) {
	_, ts := newTestAPI(t, func(c *Config) { c.ObsLogCap = 64 })
	cfg := obsSessionConfig(303)
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &info)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)

	body := fetchObs(t, ts.URL, info.ID, "")
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		lines   int
		dropped uint64
		first   struct {
			Seq     uint64 `json:"seq"`
			Kind    string `json:"kind"`
			Dropped uint64 `json:"dropped"`
		}
		lastSeq uint64
	)
	for sc.Scan() {
		lines++
		var line struct {
			Seq     uint64 `json:"seq"`
			Kind    string `json:"kind"`
			Dropped uint64 `json:"dropped"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if lines == 1 {
			first = line
		}
		if line.Kind == "gap" {
			dropped += line.Dropped
			if line.Seq != 0 {
				t.Fatalf("gap record carries seq %d", line.Seq)
			}
		} else {
			lastSeq = line.Seq
		}
	}
	if first.Kind != "gap" || first.Dropped == 0 {
		t.Fatalf("first line = %+v, want a leading gap (cap 64 must overflow)", first)
	}
	events := uint64(lines - 1) // all remaining lines are real events
	if dropped+events != lastSeq {
		t.Fatalf("accounting broken: %d dropped + %d retained != last seq %d", dropped, events, lastSeq)
	}
	if events != 64 {
		t.Fatalf("retained %d events, want exactly the log cap 64", events)
	}
}

// TestObsOffSession: an untraced session exposes an empty stream that
// terminates (rather than hangs) once the session is done.
func TestObsOffSession(t *testing.T) {
	_, ts := newTestAPI(t, nil)
	cfg := testSessionConfig(304)
	cfg.Obs = "off"
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &info)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)
	if body := fetchObs(t, ts.URL, info.ID, "?follow=1"); len(body) != 0 {
		t.Fatalf("obs-off session streamed %d bytes", len(body))
	}
	// And the obs level stayed out of the session's snapshot config:
	// the config record must look exactly like a pre-observability one.
	for _, kv := range cfg.kv() {
		if kv.K == "obs" || kv.K == "obsring" {
			t.Fatalf("obs-off config leaked %q into the snapshot config record", kv.K)
		}
	}
}

// counterTotal sums a sharded counter across its per-cpu series in the
// Prometheus rendering.
func counterTotal(t *testing.T, s *Server, name string) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total
}

// TestFlightRecorderOnPanic drives the chaos probe and checks the full
// flight path: the dump exists on disk, parses, classifies the failure
// as a panic, and carries the engine's final pre-panic events; it
// survives a server restart (scan must not quarantine it) and is gone
// after delete.
func TestFlightRecorderOnPanic(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestAPI(t, func(c *Config) { c.DataDir = dir })
	cfg := obsSessionConfig(305)
	cfg.PanicAtBoundary = 2
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &info)
	var res StepResult
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, &res)
	if resp.StatusCode != http.StatusConflict || res.State != StateFailed {
		t.Fatalf("chaos step = %d %+v, want 409 failed", resp.StatusCode, res)
	}

	if _, err := os.Stat(s.store.flightPath(info.ID)); err != nil {
		t.Fatalf("flight file missing after panic: %v", err)
	}

	var fd flightDump
	fresp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /flight = %d", fresp.StatusCode)
	}
	if err := json.NewDecoder(fresp.Body).Decode(&fd); err != nil {
		t.Fatalf("flight record does not parse: %v", err)
	}
	if fd.Reason != "panic" || fd.ID != info.ID || fd.State != StateFailed {
		t.Fatalf("flight record = reason %q id %q state %q", fd.Reason, fd.ID, fd.State)
	}
	if !strings.Contains(fd.Detail, "chaos: injected panic") {
		t.Fatalf("flight detail lost the panic diagnostic: %q", firstLine(fd.Detail))
	}
	if len(fd.EngineEvents) == 0 {
		t.Fatal("flight record has no engine events — the pre-panic publish is broken")
	}
	for i, raw := range fd.EngineEvents {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("engine_events[%d] is not valid JSON: %v", i, err)
		}
	}
	var kinds []string
	for _, ev := range fd.Lifecycle {
		kinds = append(kinds, ev.Kind)
	}
	if !strings.Contains(strings.Join(kinds, ","), "failed") {
		t.Fatalf("flight lifecycle %v lacks the failed event", kinds)
	}

	// Metrics counted the dump.
	if got := counterTotal(t, s, "atsimd_flight_dumps_total"); got != 1 {
		t.Fatalf("atsimd_flight_dumps_total = %d, want 1", got)
	}

	// Restart over the same directory: the flight file must not be
	// scanned as a manifest, the session must restore as failed, and
	// the record must still be served.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	got, err := s2.Get(info.ID)
	if err != nil || got.State != StateFailed {
		t.Fatalf("restored session = %+v, %v; want failed", got, err)
	}
	if _, err := s2.Flight(info.ID); err != nil {
		t.Fatalf("flight record lost across restart: %v", err)
	}
	var qbuf bytes.Buffer
	s2.WriteMetrics(&qbuf)
	if strings.Contains(qbuf.String(), "atsimd_manifests_quarantined_total 1") {
		t.Fatal("restart quarantined the flight file as a corrupt manifest")
	}

	// Delete removes the flight file with the session.
	if err := s2.Delete(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s2.store.flightPath(info.ID)); !os.IsNotExist(err) {
		t.Fatalf("flight file survived delete: %v", err)
	}
}

// TestRequestTracing pins X-Request-ID propagation, the access log,
// the RED histograms and the server trace export.
func TestRequestTracing(t *testing.T) {
	var access bytes.Buffer
	s, ts := newTestAPI(t, func(c *Config) { c.AccessLog = &access })

	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", obsSessionConfig(306), &info)

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+info.ID+"/step",
		strings.NewReader(`{"quanta": 0}`))
	req.Header.Set("X-Request-ID", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("supplied request id echoed as %q", got)
	}

	// A request without an ID gets a generated one.
	resp2, err := http.Get(ts.URL + "/v1/sessions/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on the response")
	}

	// The access log carries structured lines joined by request id.
	var sawStep bool
	sc := bufio.NewScanner(bytes.NewReader(access.Bytes()))
	for sc.Scan() {
		var line struct {
			Req    string `json:"req"`
			Method string `json:"method"`
			Path   string `json:"path"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("access log line is not JSON: %q", sc.Text())
		}
		if line.Req == "req-abc-123" && line.Method == "POST" && line.Status == http.StatusOK {
			sawStep = true
		}
	}
	if !sawStep {
		t.Fatalf("access log never recorded the step request:\n%s", access.String())
	}

	// The server trace is valid Chrome JSON whose spans join the
	// request id and carry engine-side virtual-time anchors.
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Req        string `json:"req"`
				Cycle      uint64 `json:"cycle"`
				Boundaries uint64 `json:"boundaries"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	tresp, err := http.Get(ts.URL + "/debug/server-trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if err := json.NewDecoder(tresp.Body).Decode(&trace); err != nil {
		t.Fatalf("server trace is not valid JSON: %v", err)
	}
	spans := map[string]bool{}
	var joined, anchored bool
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans[ev.Name] = true
		if ev.Args.Req == "req-abc-123" {
			joined = true
		}
		if ev.Name == "engine.run" && ev.Args.Cycle > 0 && ev.Args.Boundaries > 0 {
			anchored = true
		}
	}
	for _, want := range []string{"admission.wait", "grant.wait", "engine.run"} {
		if !spans[want] {
			t.Errorf("server trace lacks %s spans (have %v)", want, spans)
		}
	}
	if !joined {
		t.Error("no span joined the caller's X-Request-ID")
	}
	if !anchored {
		t.Error("no engine.run span carries a virtual-time anchor (cycle/boundaries)")
	}

	// The RED histograms register on /metrics.
	var mbuf bytes.Buffer
	if err := s.WriteMetrics(&mbuf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"atsimd_admission_wait_seconds", "atsimd_eviction_seconds",
		"atsimd_snapshot_write_seconds", "atsimd_flight_dumps_total",
	} {
		if !strings.Contains(mbuf.String(), metric) {
			t.Errorf("/metrics lacks %s", metric)
		}
	}
}

// TestObsStreamSurvivesEviction: evicting and resuming a session must
// not disturb the stream's sequence numbering — the deterministic
// re-execution republishes exactly where the cursor left off, so a
// follower sees no discontinuity and the final stream equals the
// uninterrupted twin's.
func TestObsStreamSurvivesEviction(t *testing.T) {
	_, ts := newTestAPI(t, func(c *Config) { c.ObsLogCap = 1 << 17 })
	cfg := obsSessionConfig(307)

	var control Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &control)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+control.ID+"/step", map[string]uint64{"quanta": 0}, nil)
	want := fetchObs(t, ts.URL, control.ID, "")

	var chopped Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", cfg, &chopped)
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("session did not complete in 100 single-boundary steps")
		}
		var res StepResult
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+chopped.ID+"/step", map[string]uint64{"quanta": 1}, &res)
		if res.State == StateDone {
			break
		}
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+chopped.ID+"/evict", nil, nil)
	}
	got := fetchObs(t, ts.URL, chopped.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatalf("evict/resume perturbed the stream (%d vs %d bytes)", len(got), len(want))
	}
}
