package server

import (
	"bufio"
	"context"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Wall-clock request tracing. The engine's own trace (internal/obs,
// Chrome format over virtual cycles) answers "what did the simulation
// do"; the span recorder here answers "where did the request's wall
// time go" — admission wait, grant wait, engine execution, snapshot
// write, eviction. Spans carry the request ID that caused them and,
// for engine-side spans, the virtual cycle and boundary count at
// completion, so the two traces can be aligned at step boundaries:
// find the engine.run span's cycle, find the same cycle on the virtual
// timeline.

// span is one completed wall-clock interval.
type span struct {
	// name identifies the phase: admission.wait, grant.wait,
	// engine.run, snapshot.write, evict.
	name string
	// req is the X-Request-ID of the request that caused the span
	// (empty for server-initiated work like shutdown persists).
	req string
	// sess is the session the span belongs to; spans render on
	// per-session lanes.
	sess  string
	start time.Time
	dur   time.Duration
	// cycle/boundaries snapshot the session's virtual clock when the
	// span closed; quanta is the grant's budget. Zero when not
	// applicable.
	cycle, boundaries, quanta uint64
}

// spanLog is the server's bounded span ring. Overflow drops the oldest
// spans and counts them, so the export always says what it is missing.
type spanLog struct {
	mu      sync.Mutex
	cap     int
	buf     []span
	dropped uint64
}

func newSpanLog(capacity int) *spanLog {
	return &spanLog{cap: capacity}
}

func (l *spanLog) add(sp span) {
	l.mu.Lock()
	l.buf = append(l.buf, sp)
	if len(l.buf) > l.cap {
		over := len(l.buf) - l.cap
		l.dropped += uint64(over)
		l.buf = append(l.buf[:0], l.buf[over:]...)
	}
	l.mu.Unlock()
}

// snapshot copies the retained spans out of the lock.
func (l *spanLog) snapshot() ([]span, uint64) {
	l.mu.Lock()
	out := make([]span, len(l.buf))
	copy(out, l.buf)
	dropped := l.dropped
	l.mu.Unlock()
	return out, dropped
}

// WriteServerTrace renders the retained spans as a Chrome trace
// (chrome://tracing, Perfetto): one pid, one lane (tid) per session,
// timestamps in microseconds since server boot. Complete ("X") events
// carry req/quanta/cycle/boundaries as args.
func (s *Server) WriteServerTrace(w io.Writer) error {
	spans, dropped := s.spans.snapshot()

	// Stable lane assignment: sessions sorted by ID, plus a lane 0 for
	// spans with no session.
	lane := map[string]int{}
	var ids []string
	for _, sp := range spans {
		if _, ok := lane[sp.sess]; !ok {
			lane[sp.sess] = 0
			ids = append(ids, sp.sess)
		}
	}
	sort.Strings(ids)
	for i, id := range ids {
		lane[id] = i + 1
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	var buf []byte
	emit := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.Write(buf)
		buf = buf[:0]
	}
	for id, tid := range lane {
		name := id
		if name == "" {
			name = "(server)"
		}
		buf = append(buf, `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, `}}`...)
		emit()
	}
	for _, sp := range spans {
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, sp.name)
		buf = append(buf, `,"ph":"X","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(lane[sp.sess]), 10)
		buf = append(buf, `,"ts":`...)
		buf = strconv.AppendInt(buf, (sp.start.UnixNano()-s.bootNanos)/1e3, 10)
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendInt(buf, sp.dur.Microseconds(), 10)
		buf = append(buf, `,"args":{`...)
		buf = append(buf, `"req":`...)
		buf = strconv.AppendQuote(buf, sp.req)
		if sp.quanta > 0 {
			buf = append(buf, `,"quanta":`...)
			buf = strconv.AppendUint(buf, sp.quanta, 10)
		}
		if sp.cycle > 0 {
			buf = append(buf, `,"cycle":`...)
			buf = strconv.AppendUint(buf, sp.cycle, 10)
		}
		if sp.boundaries > 0 {
			buf = append(buf, `,"boundaries":`...)
			buf = strconv.AppendUint(buf, sp.boundaries, 10)
		}
		buf = append(buf, `}}`...)
		emit()
	}
	bw.WriteString("\n],\"otherData\":{\"dropped_spans\":\"")
	bw.WriteString(strconv.FormatUint(dropped, 10))
	bw.WriteString("\"}}\n")
	return bw.Flush()
}

// reqIDKey carries the request ID through contexts.
type reqIDKey struct{}

// RequestID returns the request ID the HTTP layer attached to ctx, or
// "" for contexts that never passed through it.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// WithRequestID returns a ctx carrying the given request ID; the HTTP
// middleware applies it, and tests or embedded callers can too.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// nextRequestID generates an ID for requests that arrive without one:
// unique within the process (reqSeq) and across restarts (bootNanos).
func (s *Server) nextRequestID() string {
	return "r-" + strconv.FormatInt(s.bootNanos, 36) + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}
