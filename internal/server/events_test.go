package server

import (
	"fmt"
	"testing"
)

// TestEventLogGap pins overflow accounting on the lifecycle ring: a
// reader whose cursor fell behind gets a leading synthetic gap event
// whose Dropped count plus retained events covers the full sequence,
// and whose Seq advances follower cursors past the hole.
func TestEventLogGap(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(Event{Kind: "boundary", Detail: fmt.Sprintf("n%d", i)})
	}

	// Fresh reader: events 1..6 fell off, 7..10 retained.
	evs, _ := l.since(0)
	if len(evs) != 5 {
		t.Fatalf("since(0) = %d events, want gap + 4", len(evs))
	}
	if g := evs[0]; g.Kind != "gap" || g.Dropped != 6 || g.Seq != 6 {
		t.Fatalf("gap = %+v, want kind=gap dropped=6 seq=6", g)
	}
	if evs[1].Seq != 7 || evs[4].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[1].Seq, evs[4].Seq)
	}

	// Cursor inside the retained window: no gap.
	evs, _ = l.since(8)
	if len(evs) != 2 || evs[0].Kind == "gap" {
		t.Fatalf("since(8) = %+v, want 2 events and no gap", evs)
	}

	// Cursor just before the window boundary: contiguous, no gap.
	evs, _ = l.since(6)
	if len(evs) != 4 || evs[0].Kind == "gap" {
		t.Fatalf("since(6) = %d events (first %q), want 4 with no gap", len(evs), evs[0].Kind)
	}

	// Caught up: nothing.
	if evs, _ = l.since(10); len(evs) != 0 {
		t.Fatalf("since(10) = %+v, want none", evs)
	}

	// A follower that resumes with the gap's Seq sees only real events
	// afterward — the synthetic Seq is a valid cursor.
	evs, _ = l.since(6)
	for _, ev := range evs {
		if ev.Kind == "gap" {
			t.Fatalf("cursor at gap seq still yields a gap: %+v", evs)
		}
	}
}
