package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestAPI(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, mut)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

// TestHTTPLifecycle drives the full session lifecycle through the real
// HTTP surface: create, list, step to completion, inspect, delete.
func TestHTTPLifecycle(t *testing.T) {
	_, ts := newTestAPI(t, nil)

	var info Info
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions", testSessionConfig(11), &info)
	if resp.StatusCode != http.StatusCreated || info.ID == "" {
		t.Fatalf("create = %d %+v, want 201 with an id", resp.StatusCode, info)
	}

	var list []Info
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list); resp.StatusCode != 200 || len(list) != 1 {
		t.Fatalf("list = %d with %d sessions, want 200 with 1", resp.StatusCode, len(list))
	}

	var res StepResult
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, &res)
	if resp.StatusCode != 200 || res.State != StateDone || res.Result == nil {
		t.Fatalf("step = %d %+v, want 200 done", resp.StatusCode, res)
	}

	var got Info
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/"+info.ID, nil, &got); resp.StatusCode != 200 || got.State != StateDone {
		t.Fatalf("get = %d %+v, want 200 done", resp.StatusCode, got)
	}

	if resp := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+info.ID, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/"+info.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPStatusMapping pins the error protocol clients program
// against: 400 invalid config, 404 unknown id, 409 failed session,
// 429 + Retry-After on quota.
func TestHTTPStatusMapping(t *testing.T) {
	_, ts := newTestAPI(t, func(c *Config) { c.TenantQuota = 1 })

	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"app": "no-such-app"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid config = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/s-999999/step", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("step unknown = %d, want 404", resp.StatusCode)
	}

	poison := testSessionConfig(21)
	poison.PanicAtBoundary = 1
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", poison, &info)
	var res StepResult
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, &res)
	if resp.StatusCode != http.StatusConflict || res.State != StateFailed {
		t.Errorf("step poisoned = %d state %q, want 409 failed", resp.StatusCode, res.State)
	}

	// Tenant quota: the second create for the same tenant must carry
	// the backpressure protocol headers.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", strings.NewReader("{}"))
	req.Header.Set("X-Tenant", "alice")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("first alice create = %v %v", resp, err)
	}
	req, _ = http.NewRequest("POST", ts.URL+"/v1/sessions", strings.NewReader("{}"))
	req.Header.Set("X-Tenant", "alice")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("quota'd create = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
}

// TestHTTPHealthAndMetrics pins the operational endpoints.
func TestHTTPHealthAndMetrics(t *testing.T) {
	s, ts := newTestAPI(t, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		if resp := doJSON(t, "GET", ts.URL+path, nil, nil); resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", testSessionConfig(31), &info)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{
		"atsimd_sessions_created_total", "atsimd_sessions_done_total",
		"atsimd_steps_total", "atsimd_boundaries_total", "atsimd_step_seconds",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics output missing %s", metric)
		}
	}

	// readyz flips to 503 once draining.
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp := doJSON(t, "GET", ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestHTTPEvents pins the NDJSON event stream shape.
func TestHTTPEvents(t *testing.T) {
	_, ts := newTestAPI(t, nil)
	var info Info
	doJSON(t, "POST", ts.URL+"/v1/sessions", testSessionConfig(41), &info)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", map[string]uint64{"quanta": 0}, nil)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("events content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) == 0 || kinds[0] != "created" || kinds[len(kinds)-1] != "done" {
		t.Errorf("event kinds = %v, want created ... done", kinds)
	}
}
