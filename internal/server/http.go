package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// The HTTP surface. All bodies are JSON; errors come back as
// {"error": "..."} with a meaningful status:
//
//	POST   /v1/sessions               create (X-Tenant header names the tenant)
//	GET    /v1/sessions               list
//	GET    /v1/sessions/{id}          inspect
//	POST   /v1/sessions/{id}/step     advance {"quanta": n}; omitted = 1, 0 = to completion
//	POST   /v1/sessions/{id}/evict    checkpoint to disk, free the live slot
//	DELETE /v1/sessions/{id}          remove session and its files
//	GET    /v1/sessions/{id}/events   NDJSON lifecycle log; ?follow=1 streams
//	GET    /v1/sessions/{id}/obs      NDJSON engine-event stream; ?follow=1&after=N
//	GET    /v1/sessions/{id}/flight   the session's flight record, if dumped
//	POST   /v1/sessions/{id}/migrate  hand the session off {"target": url}; see docs/SERVICE.md
//	POST   /v1/migrations/in          peer-to-peer: accept a transfer envelope
//	GET    /v1/migrations/in/{id}     peer-to-peer: recovery status query (?epoch=N; fences on "no")
//	GET    /healthz                   process liveness (always 200 while serving)
//	GET    /readyz                    503 once draining
//	GET    /metrics                   Prometheus text format
//	GET    /debug/server-trace        wall-clock request spans, Chrome trace format
//
// Overload returns 429 with Retry-After; draining returns 503 with
// Retry-After; an expired request deadline returns 504 while the
// server-side work continues. A session migrated away answers mutating
// requests with 410 Gone plus a Location header pointing at the same
// path on its new home; a session mid-handoff answers 409 with
// Retry-After; a stale-epoch transfer is fenced with 409.
//
// Every request gets an X-Request-ID: the caller's if present, a
// generated one otherwise. The ID is echoed on the response, attached
// to the request's context (joining the spans in /debug/server-trace),
// and logged in the access log.

// maxBodyBytes bounds any request body.
const maxBodyBytes = 1 << 20

// maxMigrationBytes bounds an inbound migration envelope, whose
// snapshot payload dwarfs every other request body.
const maxMigrationBytes = 64 << 20

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.withDeadline(s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.withDeadline(s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.withDeadline(s.handleGet))
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.withDeadline(s.handleStep))
	mux.HandleFunc("POST /v1/sessions/{id}/evict", s.withDeadline(s.handleEvict))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.withDeadline(s.handleDelete))
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents) // own deadline handling (follow)
	mux.HandleFunc("GET /v1/sessions/{id}/obs", s.handleObs)       // own deadline handling (follow)
	mux.HandleFunc("GET /v1/sessions/{id}/flight", s.withDeadline(s.handleFlight))
	mux.HandleFunc("POST /v1/sessions/{id}/migrate", s.handleMigrate) // own, longer deadline
	mux.HandleFunc("POST /v1/migrations/in", s.handleMigrationIn)     // own, longer deadline
	mux.HandleFunc("GET /v1/migrations/in/{id}", s.withDeadline(s.handleMigrationStatus))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", "5")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /debug/server-trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.WriteServerTrace(w)
	})
	return s.withRequestID(mux)
}

// statusWriter observes the response status (and byte count) for the
// access log while passing Flush through for the streaming endpoints.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestID is the outermost middleware: adopt or generate the
// request ID, echo it, attach it to the context, and (when configured)
// write one structured access-log line per request.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := r.Header.Get("X-Request-ID")
		if req == "" {
			req = s.nextRequestID()
		}
		w.Header().Set("X-Request-ID", req)
		r = r.WithContext(WithRequestID(r.Context(), req))
		if s.cfg.AccessLog == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		line, _ := json.Marshal(struct {
			Time   string `json:"time"`
			Req    string `json:"req"`
			Method string `json:"method"`
			Path   string `json:"path"`
			Status int    `json:"status"`
			Bytes  int    `json:"bytes"`
			MS     int64  `json:"duration_ms"`
		}{
			Time: start.UTC().Format(time.RFC3339Nano), Req: req,
			Method: r.Method, Path: r.URL.Path,
			Status: sw.status, Bytes: sw.bytes, MS: time.Since(start).Milliseconds(),
		})
		s.logMu.Lock()
		s.cfg.AccessLog.Write(append(line, '\n'))
		s.logMu.Unlock()
	})
}

// withDeadline applies the server's per-request deadline.
func (s *Server) withDeadline(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// writeError maps the server's typed errors onto statuses. The request
// is consulted only for migration redirects: a MigratedError turns
// into 410 Gone with a Location header rebuilding the same path on the
// session's new home, so a client can re-issue the request verbatim.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	var (
		over *OverloadError
		dead *DeadlineError
		val  *ValidationError
		gone *MigratedError
		mig  *MigratingError
		fen  *FencedError
		conf *ConflictError
	)
	switch {
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	case errors.As(err, &gone):
		if gone.Location != "" && r != nil {
			w.Header().Set("Location", gone.Location+r.URL.Path)
		}
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
	case errors.As(err, &mig):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case errors.As(err, &fen):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case errors.As(err, &conf):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.As(err, &over):
		secs := int(over.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.As(err, &dead):
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: err.Error()})
	case errors.As(err, &val):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "reading body: " + err.Error()})
		return false
	}
	if len(body) == 0 {
		return true // empty body = all defaults
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if !decodeBody(w, r, &cfg) {
		return
	}
	info, err := s.CreateSession(r.Context(), r.Header.Get("X-Tenant"), cfg)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

type stepRequest struct {
	// Quanta is a pointer so "absent" (default 1) and the explicit 0
	// ("run to completion") stay distinguishable.
	Quanta *uint64 `json:"quanta"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	quanta := uint64(1)
	if req.Quanta != nil {
		quanta = *req.Quanta
	}
	res, err := s.Step(r.Context(), r.PathValue("id"), quanta)
	if err != nil {
		writeError(w, r, err)
		return
	}
	if res.State == StateFailed {
		// The session is poisoned; the body carries the diagnosis.
		writeJSON(w, http.StatusConflict, res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	info, err := s.Evict(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents streams the session's event log as NDJSON. Without
// ?follow it returns the buffered tail and closes; with ?follow=1 it
// keeps streaming new events until the client goes away or the server
// drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var after uint64
	for {
		evs, notify, err := s.Events(id, after)
		if err != nil {
			if after == 0 {
				writeError(w, r, err)
			}
			return
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			after = ev.Seq
		}
		if !follow {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// handleObs streams the session's published engine events as NDJSON —
// the live form of the engine's obs stream, one event per line with
// its global sequence number (see internal/obs NDJSON docs). ?after=N
// resumes past sequence N; ?follow=1 keeps streaming until the session
// reaches a terminal state, the client goes away, or the server
// drains. Events the bounded log shed before the reader saw them
// surface as an explicit {"kind":"gap","dropped":N} line.
func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	follow := r.URL.Query().Get("follow") != ""
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad after cursor: " + err.Error()})
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	wrote := false
	var buf []byte
	for {
		entries, notify, closed, err := s.ObsEvents(id, after)
		if err != nil {
			if !wrote {
				writeError(w, r, err)
			}
			return
		}
		buf = buf[:0]
		for _, e := range entries {
			if e.seq > after+1 {
				// The log shed events between the reader's cursor and its
				// oldest retained entry; the discontinuity is reported,
				// never skipped silently.
				buf = obs.AppendGapNDJSON(buf, e.seq-after-1)
			}
			buf = obs.AppendEventNDJSON(buf, e.seq, e.ev)
			after = e.seq
		}
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				return
			}
			wrote = true
		}
		if !follow || closed {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// handleFlight serves the session's flight record verbatim.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	data, err := s.Flight(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

type migrateRequest struct {
	Target string `json:"target"`
}

// handleMigrate runs the outbound handoff. The deadline is the regular
// request timeout plus the per-phase migration bound — a transfer
// legitimately outlives a step request.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout+3*s.cfg.MigrateTimeout)
	defer cancel()
	var req migrateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Migrate(ctx, r.PathValue("id"), req.Target)
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Location", res.Location)
	writeJSON(w, http.StatusOK, res)
}

// handleMigrationIn accepts a peer's transfer envelope.
func (s *Server) handleMigrationIn(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout+3*s.cfg.MigrateTimeout)
	defer cancel()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxMigrationBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "reading envelope: " + err.Error()})
		return
	}
	var env migrationEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding envelope: " + err.Error()})
		return
	}
	ack, err := s.acceptMigration(ctx, &env)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleMigrationStatus answers the peer recovery question; see
// migrationStatus for why this GET is deliberately not read-only.
func (s *Server) handleMigrationStatus(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad epoch: " + err.Error()})
		return
	}
	reply, err := s.migrationStatus(r.PathValue("id"), epoch)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// ListenAndServe is a convenience for cmd/atsimd: serve the API on
// addr until ctx is cancelled, then drain within the configured
// DrainTimeout. announce (optional) receives the bound address before
// serving — with ":0" the actual port.
func (s *Server) ListenAndServe(ctx context.Context, addr string, announce func(string)) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if announce != nil {
		announce(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	shutdownErr := s.Shutdown(drainCtx)
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	srv.Shutdown(httpCtx)
	return shutdownErr
}
