package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/retry"
)

// The migration tests run a pair of instances the way soak.sh does —
// real HTTP between them — but in-process, with the chaos gate's crash
// points simulated by Config.CrashPoint instead of SIGKILL: the hook
// returns an error that aborts all cleanup, and the test abandons the
// Server exactly like TestKillRestoreIdentity abandons a killed one.

var errSimCrash = errors.New("simulated crash")

// node is one instance of the pair: a data directory that survives
// "kills", the current Server over it, and a stable-URL HTTP front that
// drops connections while the node is down — so the peer URL stays
// valid across restarts, as a real host:port would.
type node struct {
	t   *testing.T
	dir string
	ts  *httptest.Server

	mu   sync.Mutex
	srv  *Server
	down bool
	old  []*Server // abandoned incarnations, reaped at cleanup
}

func newNode(t *testing.T, crash func(*node, string) error) *node {
	t.Helper()
	n := &node{t: t, dir: t.TempDir()}
	n.ts = httptest.NewServer(http.HandlerFunc(n.serve))
	t.Cleanup(func() {
		n.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		n.mu.Lock()
		all := append(n.old, n.srv)
		n.mu.Unlock()
		for _, s := range all {
			if s != nil {
				s.Shutdown(ctx)
			}
		}
	})
	n.boot(crash)
	return n
}

func (n *node) url() string { return n.ts.URL }

func (n *node) serve(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	srv, down := n.srv, n.down
	n.mu.Unlock()
	if down || srv == nil {
		panic(http.ErrAbortHandler) // connection drop, like a dead host
	}
	srv.Handler().ServeHTTP(w, r)
}

// boot starts a fresh Server over the node's directory. Tiny retry and
// migrate budgets keep crash-path retries and recovery polls fast.
func (n *node) boot(crash func(*node, string) error) {
	n.t.Helper()
	cfg := testConfig(n.dir)
	cfg.PeerAllow = []string{"*"}
	cfg.AdvertiseURL = n.url()
	cfg.MigrateTimeout = 2 * time.Second
	cfg.Retry = retry.Policy{Attempts: 3, Base: time.Millisecond, Cap: 4 * time.Millisecond}
	if crash != nil {
		cfg.CrashPoint = func(p string) error { return crash(n, p) }
	}
	s, err := New(cfg)
	if err != nil {
		n.t.Fatalf("booting node over %s: %v", n.dir, err)
	}
	n.mu.Lock()
	if n.srv != nil {
		n.old = append(n.old, n.srv)
	}
	n.srv = s
	n.down = false
	n.mu.Unlock()
}

// kill abandons the current Server without shutdown and drops all
// traffic, like SIGKILL would.
func (n *node) kill() {
	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
}

func (n *node) server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// crashAndDie builds a CrashPoint hook that kills the node at the
// named point: after it fires, the node drops connections until
// rebooted — so retries and recovery queries see a dead peer, not a
// live server that just errored once.
func crashAndDie(point string) func(*node, string) error {
	return func(n *node, p string) error {
		if p != point {
			return nil
		}
		n.kill()
		return fmt.Errorf("%w at %s", errSimCrash, p)
	}
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// controlFingerprint runs an uninterrupted twin of cfg to completion.
func controlFingerprint(t *testing.T, s *Server, cfg SessionConfig) string {
	t.Helper()
	twin := mustCreate(t, s, "", cfg)
	fp := mustFinish(t, s, twin.ID).Result.Fingerprint
	if err := s.Delete(context.Background(), twin.ID); err != nil {
		t.Fatalf("deleting control twin: %v", err)
	}
	return fp
}

// TestMigrateBasic pins the happy path end to end: prepare, transfer,
// commit; tombstone semantics on the source; byte-identical completion
// on the target; gap-free obs continuation; lifecycle events.
func TestMigrateBasic(t *testing.T) {
	a, b := newNode(t, nil), newNode(t, nil)
	ctx := context.Background()
	cfg := testSessionConfig(501)
	info := mustCreate(t, a.server(), "", cfg)
	if _, err := a.server().Step(ctx, info.ID, 3); err != nil {
		t.Fatalf("step: %v", err)
	}
	// The obs cursor the destination must continue from.
	entries, _, _, err := a.server().ObsEvents(info.ID, 0)
	if err != nil {
		t.Fatalf("obs before migrate: %v", err)
	}
	var cursor uint64
	for _, e := range entries {
		cursor = e.seq
	}
	if cursor == 0 {
		t.Fatal("no published obs events before migration; test needs some")
	}

	res, err := a.server().Migrate(ctx, info.ID, b.url())
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if res.Epoch != 1 || res.Target != b.url() {
		t.Errorf("MigrateResult = %+v; want epoch 1, target %s", res, b.url())
	}

	// Source: tombstone. Steps are fenced with the new location...
	var gone *MigratedError
	if _, err := a.server().Step(ctx, info.ID, 1); !errors.As(err, &gone) || gone.Location != b.url() {
		t.Fatalf("step on source after migrate = %v; want MigratedError to %s", err, b.url())
	}
	// ...a second migrate is fenced the same way...
	if _, err := a.server().Migrate(ctx, info.ID, b.url()); !errors.As(err, &gone) {
		t.Fatalf("re-migrate on source = %v; want MigratedError", err)
	}
	// ...reads still work and carry the forwarding info.
	got, err := a.server().Get(info.ID)
	if err != nil || got.State != StateMigrated || got.MigratedTo != b.url() {
		t.Fatalf("source Get = %+v, %v; want migrated -> %s", got, err, b.url())
	}
	// The intent is resolved and the snapshot moved out.
	if ins, _, qerr := a.server().store.scanIntents(); qerr != nil {
		t.Fatalf("scanIntents: %v", qerr)
	} else if len(ins) != 0 {
		t.Errorf("source still holds %d migration intents after commit", len(ins))
	}

	// Target: the session is resident, resumable, and carries provenance.
	tgt, err := b.server().Get(info.ID)
	if err != nil || tgt.State != StateIdle || tgt.Boundaries != 3 {
		t.Fatalf("target Get = %+v, %v; want idle at 3 boundaries", tgt, err)
	}
	if tgt.MigratedFrom != a.url() || tgt.Epoch != 1 {
		t.Errorf("target provenance = from %q epoch %d; want from %s epoch 1", tgt.MigratedFrom, tgt.Epoch, a.url())
	}
	fp := mustFinish(t, b.server(), info.ID).Result.Fingerprint
	if want := controlFingerprint(t, b.server(), cfg); fp != want {
		t.Errorf("migrated fingerprint %s != control twin %s", fp, want)
	}

	// Obs continuity: the target's stream picks up exactly past the
	// source's cursor, with no gap.
	after, _, _, err := b.server().ObsEvents(info.ID, cursor)
	if err != nil {
		t.Fatalf("obs on target: %v", err)
	}
	if len(after) == 0 {
		t.Fatal("target published no obs events past the migrated cursor")
	}
	if after[0].seq != cursor+1 {
		t.Errorf("target obs resumes at seq %d, want %d (gap across migration)", after[0].seq, cursor+1)
	}

	// Lifecycle events on both sides.
	evs, _, err := a.server().Events(info.ID, 0)
	if err != nil {
		t.Fatalf("source events: %v", err)
	}
	for _, want := range []string{"migrate_prepare", "migrate_transfer", "migrate_commit"} {
		found := false
		for _, ev := range evs {
			if ev.Kind == want {
				found = true
			}
		}
		if !found {
			t.Errorf("source event log lacks %q", want)
		}
	}
	bevs, _, err := b.server().Events(info.ID, 0)
	if err != nil {
		t.Fatalf("target events: %v", err)
	}
	found := false
	for _, ev := range bevs {
		if ev.Kind == "migrated_in" {
			found = true
		}
	}
	if !found {
		t.Error("target event log lacks migrated_in")
	}
}

// TestMigrateHTTP pins the wire-level contract: 410 Gone with a
// Location header that rebuilds the request path on the new home, and
// a one-hop follow reaching the live session.
func TestMigrateHTTP(t *testing.T) {
	a, b := newNode(t, nil), newNode(t, nil)
	ctx := context.Background()
	info := mustCreate(t, a.server(), "", testSessionConfig(502))
	if _, err := a.server().Step(ctx, info.ID, 2); err != nil {
		t.Fatalf("step: %v", err)
	}
	body := strings.NewReader(fmt.Sprintf(`{"target":%q}`, b.url()))
	resp, err := http.Post(a.url()+"/v1/sessions/"+info.ID+"/migrate", "application/json", body)
	if err != nil {
		t.Fatalf("POST migrate: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d, want 200", resp.StatusCode)
	}
	wantLoc := b.url() + "/v1/sessions/" + info.ID
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Errorf("migrate Location %q, want %q", loc, wantLoc)
	}

	stepPath := "/v1/sessions/" + info.ID + "/step"
	resp, err = http.Post(a.url()+stepPath, "application/json", strings.NewReader(`{"quanta":1}`))
	if err != nil {
		t.Fatalf("POST step on source: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("step on migrated session = %d, want 410", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc != b.url()+stepPath {
		t.Fatalf("410 Location %q, want %q", loc, b.url()+stepPath)
	}
	resp, err = http.Post(loc, "application/json", strings.NewReader(`{"quanta":1}`))
	if err != nil {
		t.Fatalf("POST step at Location: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("followed step = %d, want 200", resp.StatusCode)
	}
}

// TestMigrateValidation covers the refusal surface: no allowlist, a
// target outside it, unknown sessions, terminal sessions.
func TestMigrateValidation(t *testing.T) {
	ctx := context.Background()
	closed := newTestServer(t, nil) // no PeerAllow: migration disabled
	info := mustCreate(t, closed, "", testSessionConfig(503))
	var val *ValidationError
	if _, err := closed.Migrate(ctx, info.ID, "http://127.0.0.1:1"); !errors.As(err, &val) {
		t.Errorf("migrate without -peer-allow = %v; want ValidationError", err)
	}

	restricted := newTestServer(t, func(c *Config) {
		c.PeerAllow = []string{"http://10.9.8.7:"}
		c.Retry = retry.Policy{Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond}
	})
	info2 := mustCreate(t, restricted, "", testSessionConfig(504))
	if _, err := restricted.Migrate(ctx, info2.ID, "http://127.0.0.1:9"); !errors.As(err, &val) {
		t.Errorf("migrate to non-allowlisted target = %v; want ValidationError", err)
	}
	if _, err := restricted.Migrate(ctx, "s-999999", "http://10.9.8.7:1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("migrate unknown session = %v; want ErrNotFound", err)
	}
	mustFinish(t, restricted, info2.ID)
	var conf *ConflictError
	if _, err := restricted.Migrate(ctx, info2.ID, "http://10.9.8.7:1"); !errors.As(err, &conf) {
		t.Errorf("migrate done session = %v; want ConflictError", err)
	}
}

// TestMigrateFencing exercises the epoch protocol directly: duplicate
// deliveries ack idempotently, stale epochs are fenced, and a recovery
// query's "no" fences a later commit of the epoch it answered for.
func TestMigrateFencing(t *testing.T) {
	a, b := newNode(t, nil), newNode(t, nil)
	ctx := context.Background()
	info := mustCreate(t, a.server(), "", testSessionConfig(505))
	if _, err := a.server().Step(ctx, info.ID, 2); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := a.server().Migrate(ctx, info.ID, b.url()); err != nil {
		t.Fatalf("Migrate: %v", err)
	}

	// A duplicate push of the committed epoch (the lost-ack replay) is
	// acked idempotently, not applied twice.
	env := &migrationEnvelope{FormatVersion: 1, ID: info.ID, Epoch: 1}
	man, err := b.server().store.loadManifest(b.server().store.manifestPath(info.ID))
	if err != nil {
		t.Fatalf("loading committed manifest: %v", err)
	}
	env.Manifest = man
	env.Manifest.Epoch = 1
	ack, err := b.server().acceptMigration(ctx, env)
	if err != nil || !ack.AlreadyCommitted {
		t.Fatalf("duplicate push = %+v, %v; want AlreadyCommitted", ack, err)
	}

	// A stale epoch (0 is invalid, so replay epoch 1 after the target
	// has moved past it) — bump the target's copy to epoch 2 via a
	// recovery query fence, then verify epoch 2 pushes are refused.
	reply, err := b.server().migrationStatus(info.ID, 1)
	if err != nil || !reply.Committed {
		t.Fatalf("status(committed epoch) = %+v, %v; want committed", reply, err)
	}
	reply, err = b.server().migrationStatus(info.ID, 2)
	if err != nil || reply.Committed {
		t.Fatalf("status(future epoch) = %+v, %v; want not committed (and fenced)", reply, err)
	}
	env.Epoch = 2
	env.Manifest.Epoch = 2
	var fen *FencedError
	if _, err := b.server().acceptMigration(ctx, env); !errors.As(err, &fen) {
		t.Fatalf("push of fenced epoch = %v; want FencedError", err)
	}
}

// TestMigrateIDCollision: a transfer whose ID names an unrelated local
// session on the target is refused, and the source reclaims.
func TestMigrateIDCollision(t *testing.T) {
	a, b := newNode(t, nil), newNode(t, nil)
	ctx := context.Background()
	// Both instances mint s-000001 for their first session.
	ai := mustCreate(t, a.server(), "", testSessionConfig(506))
	bi := mustCreate(t, b.server(), "", testSessionConfig(507))
	if ai.ID != bi.ID {
		t.Fatalf("test premise broken: ids %s vs %s", ai.ID, bi.ID)
	}
	if _, err := a.server().Step(ctx, ai.ID, 2); err != nil {
		t.Fatalf("step: %v", err)
	}
	var conf *ConflictError
	if _, err := a.server().Migrate(ctx, ai.ID, b.url()); !errors.As(err, &conf) {
		t.Fatalf("migrate onto colliding id = %v; want ConflictError", err)
	}
	// The source reclaimed: still steppable, finishes deterministically.
	fp := mustFinish(t, a.server(), ai.ID).Result.Fingerprint
	if want := controlFingerprint(t, a.server(), testSessionConfig(506)); fp != want {
		t.Errorf("reclaimed fingerprint %s != control %s", fp, want)
	}
	// The target's own session is untouched.
	fpB := mustFinish(t, b.server(), bi.ID).Result.Fingerprint
	if want := controlFingerprint(t, b.server(), testSessionConfig(507)); fpB != want {
		t.Errorf("target session fingerprint %s != control %s", fpB, want)
	}
}

// TestMigrateKillSource kills the source at every source-side phase
// point, restarts it over the same directory, and requires the
// protocol's exactly-once outcome: the session finishes on exactly one
// side, byte-identical to an uninterrupted control twin.
func TestMigrateKillSource(t *testing.T) {
	for _, point := range []string{
		"source.prepared", "source.intent", "source.push",
		"source.acked", "source.committed",
	} {
		t.Run(point, func(t *testing.T) {
			a := newNode(t, crashAndDie(point))
			b := newNode(t, nil)
			ctx := context.Background()
			cfg := testSessionConfig(600)
			info := mustCreate(t, a.server(), "", cfg)
			if _, err := a.server().Step(ctx, info.ID, 3); err != nil {
				t.Fatalf("step: %v", err)
			}
			if _, err := a.server().Migrate(ctx, info.ID, b.url()); !errors.Is(err, errSimCrash) {
				t.Fatalf("Migrate with crash at %s = %v; want simulated crash", point, err)
			}
			// The node died at the crash point; reboot it crash-free.
			a.boot(nil)

			// Boot recovery resolves the intent in one direction or the
			// other; wait until the session leaves the fenced state.
			var last Info
			waitFor(t, "intent resolution after "+point, func() bool {
				in, err := a.server().Get(info.ID)
				if err != nil {
					return false
				}
				last = in
				return in.State != StateMigrating
			})

			var fp string
			switch last.State {
			case StateIdle:
				// Reclaimed: finishes on the source; the target must not
				// hold a live copy (it may never have seen the transfer).
				fp = mustFinish(t, a.server(), info.ID).Result.Fingerprint
				if tin, err := b.server().Get(info.ID); err == nil && tin.State != StateMigrated {
					t.Fatalf("session reclaimed on source but also %s on target: double-run", tin.State)
				}
			case StateMigrated:
				// Committed: finishes on the target; the source fences.
				waitFor(t, "target to hold the session", func() bool {
					_, err := b.server().Get(info.ID)
					return err == nil
				})
				fp = mustFinish(t, b.server(), info.ID).Result.Fingerprint
				var gone *MigratedError
				if _, err := a.server().Step(ctx, info.ID, 1); !errors.As(err, &gone) {
					t.Fatalf("step on tombstone = %v; want MigratedError", err)
				}
			default:
				t.Fatalf("session in state %q after recovery; want idle or migrated", last.State)
			}
			if want := controlFingerprint(t, b.server(), cfg); fp != want {
				t.Errorf("fingerprint after crash at %s = %s, want control %s", point, fp, want)
			}
			// Either way the intent is consumed — recovery never leaves a
			// half-resolved handoff behind.
			waitFor(t, "intent cleanup", func() bool {
				ins, _, err := a.server().store.scanIntents()
				return err == nil && len(ins) == 0
			})
		})
	}
}

// TestMigrateKillTarget kills the target at every target-side phase
// point. Before the manifest write the transfer must roll back to the
// source; after it, the restarted target owns the session and the
// source tombstones.
func TestMigrateKillTarget(t *testing.T) {
	for _, point := range []string{"target.received", "target.snapshot", "target.manifest"} {
		t.Run(point, func(t *testing.T) {
			a := newNode(t, nil)
			b := newNode(t, crashAndDie(point))
			ctx := context.Background()
			cfg := testSessionConfig(700)
			info := mustCreate(t, a.server(), "", cfg)
			if _, err := a.server().Step(ctx, info.ID, 3); err != nil {
				t.Fatalf("step: %v", err)
			}
			// The push dies against a crashing peer; the source must hold
			// the session fenced rather than guess.
			var migrating *MigratingError
			if _, err := a.server().Migrate(ctx, info.ID, b.url()); !errors.As(err, &migrating) {
				t.Fatalf("Migrate against dying target = %v; want MigratingError", err)
			}
			if _, err := a.server().Step(ctx, info.ID, 1); !errors.As(err, &migrating) {
				t.Fatalf("step while fenced = %v; want MigratingError", err)
			}
			b.boot(nil)

			var last Info
			waitFor(t, "resolution after "+point, func() bool {
				in, err := a.server().Get(info.ID)
				if err != nil {
					return false
				}
				last = in
				return in.State != StateMigrating
			})

			var fp string
			committed := point == "target.manifest"
			if committed {
				// The manifest reached the target's disk: that transfer
				// committed, and recovery must agree.
				if last.State != StateMigrated {
					t.Fatalf("state %q after crash at %s; want migrated (manifest is the commit point)", last.State, point)
				}
				fp = mustFinish(t, b.server(), info.ID).Result.Fingerprint
			} else {
				if last.State != StateIdle {
					t.Fatalf("state %q after crash at %s; want idle (reclaimed)", last.State, point)
				}
				fp = mustFinish(t, a.server(), info.ID).Result.Fingerprint
				if _, err := b.server().Get(info.ID); !errors.Is(err, ErrNotFound) {
					t.Fatalf("target holds the session after pre-commit crash: double-run risk")
				}
			}
			if want := controlFingerprint(t, a.server(), cfg); fp != want {
				t.Errorf("fingerprint after crash at %s = %s, want control %s", point, fp, want)
			}
			waitFor(t, "intent cleanup", func() bool {
				ins, _, err := a.server().store.scanIntents()
				return err == nil && len(ins) == 0
			})
		})
	}
}

// TestMigrateReclaimThenRetry pins the epoch-burn rule: a session
// reclaimed after its epoch was fenced at the target must migrate
// successfully on retry, carrying a strictly higher epoch. Without the
// burn, the retry reuses the fenced epoch and every attempt is 409'd
// forever (the loop the migrate soak's crash-at-intent round caught).
func TestMigrateReclaimThenRetry(t *testing.T) {
	a := newNode(t, crashAndDie("source.intent"))
	b := newNode(t, nil)
	ctx := context.Background()
	cfg := testSessionConfig(900)
	info := mustCreate(t, a.server(), "", cfg)
	if _, err := a.server().Step(ctx, info.ID, 3); err != nil {
		t.Fatalf("step: %v", err)
	}
	// Die with the intent durable but nothing pushed; boot recovery asks
	// the target, which fences epoch 1 and answers "not committed".
	if _, err := a.server().Migrate(ctx, info.ID, b.url()); !errors.Is(err, errSimCrash) {
		t.Fatalf("Migrate with crash at source.intent = %v; want simulated crash", err)
	}
	a.boot(nil)
	waitFor(t, "reclaim after fenced recovery", func() bool {
		in, err := a.server().Get(info.ID)
		return err == nil && in.State == StateIdle
	})

	// The retry must carry an epoch past the fenced one and commit.
	res, err := a.server().Migrate(ctx, info.ID, b.url())
	if err != nil {
		t.Fatalf("Migrate retry after fenced reclaim: %v (epoch not burned?)", err)
	}
	if res.Epoch < 2 {
		t.Errorf("retry committed at epoch %d; want >= 2 (epoch 1 was fenced)", res.Epoch)
	}
	fp := mustFinish(t, b.server(), info.ID).Result.Fingerprint
	if want := controlFingerprint(t, a.server(), cfg); fp != want {
		t.Errorf("reclaim-then-retry fingerprint %s != control %s", fp, want)
	}
}

// TestMigrateConcurrentStepFences: step traffic racing a migration
// never lands twice — it either completes before the handoff, is
// fenced 409 during it, or is redirected 410 after it.
func TestMigrateConcurrentStepFences(t *testing.T) {
	a, b := newNode(t, nil), newNode(t, nil)
	ctx := context.Background()
	cfg := testSessionConfig(800)
	info := mustCreate(t, a.server(), "", cfg)
	if _, err := a.server().Step(ctx, info.ID, 1); err != nil {
		t.Fatalf("step: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.server().Migrate(ctx, info.ID, b.url())
		done <- err
	}()
	// Hammer steps during the handoff; every response must be one of
	// the three legal outcomes.
	var gone *MigratedError
	var migrating *MigratingError
	for i := 0; i < 50; i++ {
		_, err := a.server().Step(ctx, info.ID, 1)
		switch {
		case err == nil:
		case errors.As(err, &gone):
		case errors.As(err, &migrating):
		default:
			t.Fatalf("step during migration = %v; want success, MigratingError or MigratedError", err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		var conf *ConflictError
		// The session may have finished under the step hammer before the
		// migration could park it — that refusal is legal too.
		if !errors.As(err, &conf) {
			t.Fatalf("Migrate: %v", err)
		}
		mustFinish(t, a.server(), info.ID)
		return
	}
	fp := mustFinish(t, b.server(), info.ID).Result.Fingerprint
	if want := controlFingerprint(t, b.server(), cfg); fp != want {
		t.Errorf("migrated-under-load fingerprint %s != control %s", fp, want)
	}
}
