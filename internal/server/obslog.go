package server

import (
	"sync"

	"repro/internal/obs"
)

// obsLog is a session's published engine-event stream: the bridge
// between the engine's single-writer obs rings and the concurrent
// readers of the /obs endpoint and the flight recorder. The engine
// goroutine drains its stream ring into the log at every quantum
// boundary (and once more on exit); everything after that point is
// mutex-guarded and safe from any goroutine.
//
// Entries carry the event's 1-based global sequence number — its
// position in the run's deterministic emission order. The numbering is
// stable across evictions, resumes and process restarts: a resumed
// engine re-executes from cycle zero and re-emits the same sequence,
// and publishFrom's cursor skips the already-published prefix. The log
// itself is bounded; entries that fall off the front (like events the
// engine's ring overwrote between publishes) surface to readers as an
// explicit leading gap, never as silent loss.
type obsLog struct {
	mu  sync.Mutex
	cap int
	buf []obsEntry
	// published counts stream-ring events consumed so far — the global
	// index the next publish resumes from, and the sequence number of
	// the newest entry.
	published uint64
	closed    bool
	notify    chan struct{}
}

// obsEntry is one published engine event with its global sequence
// number.
type obsEntry struct {
	seq uint64
	ev  obs.Event
}

func newObsLog(capacity int) *obsLog {
	return &obsLog{cap: capacity, notify: make(chan struct{})}
}

// publishFrom appends everything the ring holds past the log's cursor.
// Called from the engine goroutine only (ring reads must stay on the
// writer's side). Events the ring already overwrote advance the cursor
// without entries — the seq discontinuity is the durable record of the
// loss.
func (l *obsLog) publishFrom(r *obs.Ring) {
	if r == nil {
		return
	}
	l.mu.Lock()
	evs, dropped := r.Since(l.published)
	if dropped == 0 && len(evs) == 0 {
		l.mu.Unlock()
		return
	}
	seq := l.published + dropped
	for i := range evs {
		seq++
		l.buf = append(l.buf, obsEntry{seq: seq, ev: evs[i]})
	}
	l.published = seq
	if len(l.buf) > l.cap {
		l.buf = append(l.buf[:0], l.buf[len(l.buf)-l.cap:]...)
	}
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// since returns the entries with seq > after, the channel closed at
// the next publish (or close), and whether the log is closed — closed
// plus an empty tail means a follower is done.
func (l *obsLog) since(after uint64) ([]obsEntry, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obsEntry
	for _, e := range l.buf {
		if e.seq > after {
			out = append(out, e)
		}
	}
	return out, l.notify, l.closed
}

// export returns the published cursor and a copy of the retained tail,
// for shipping in a migration envelope.
func (l *obsLog) export() (uint64, []obsEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := make([]obsEntry, len(l.buf))
	copy(tail, l.buf)
	return l.published, tail
}

// preload seeds a fresh log with a migrated-in cursor and tail. The
// resumed engine will re-emit the deterministic sequence from zero;
// publishFrom's cursor then skips the already-published prefix, so
// followers of /obs continue gap-free across the handoff.
func (l *obsLog) preload(published uint64, entries []obsEntry) {
	l.mu.Lock()
	l.published = published
	l.buf = append(l.buf[:0], entries...)
	if len(l.buf) > l.cap {
		l.buf = append(l.buf[:0], l.buf[len(l.buf)-l.cap:]...)
	}
	l.mu.Unlock()
}

// close marks the stream complete (session done, failed or deleted)
// and wakes every follower so it can drain and finish.
func (l *obsLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.notify)
		l.notify = make(chan struct{})
	}
	l.mu.Unlock()
}
