package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/retry"
)

// peerClient is the outbound half of cross-instance migration: it
// pushes transfer envelopes to a peer's /v1/migrations/in endpoint and
// asks the recovery-status question during intent resolution. Every
// call runs under internal/retry with a per-attempt timeout, so one
// hung transfer costs one attempt, not the whole handoff.
type peerClient struct {
	hc    *http.Client
	pol   retry.Policy
	allow []string
}

func newPeerClient(cfg Config) *peerClient {
	pol := cfg.Retry
	pol.AttemptTimeout = cfg.MigrateTimeout
	return &peerClient{
		// Transport defaults are fine; per-attempt deadlines come from
		// the retry policy's AttemptTimeout, not a client-wide timeout
		// (which would also bound the cheap recovery queries).
		hc:    &http.Client{},
		pol:   pol,
		allow: cfg.PeerAllow,
	}
}

// normalizePeer validates a migration target against the allowlist and
// canonicalizes it to a base URL without a trailing slash. Migration
// is a write path into another instance's data directory, so targets
// are opt-in by prefix: "http://10.0.0.8:7070", "http://10.0.0.0:" (a
// prefix), or "*" for any http(s) URL.
func (p *peerClient) normalizePeer(target string) (string, error) {
	if len(p.allow) == 0 {
		return "", errors.New("migration disabled: no -peer-allow configured")
	}
	u, err := url.Parse(target)
	if err != nil {
		return "", fmt.Errorf("bad migration target %q: %w", target, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("bad migration target %q: need an absolute http(s) URL", target)
	}
	base := strings.TrimRight(target, "/")
	for _, a := range p.allow {
		if a == "*" || strings.HasPrefix(base, strings.TrimRight(a, "/")) {
			return base, nil
		}
	}
	return "", fmt.Errorf("migration target %q is not covered by -peer-allow", target)
}

// errPeerFenced marks a 409 from the peer: the envelope's epoch is
// stale (or the ID collides with an unrelated session). Permanent —
// retrying the same epoch cannot succeed.
var errPeerFenced = errors.New("peer fenced the transfer")

// push delivers one transfer envelope, retrying transport failures and
// 5xx/429 responses; onAttempt (optional) observes each try's 1-based
// index before it runs. The returned ack is the target's commit
// receipt.
func (p *peerClient) push(ctx context.Context, target string, env *migrationEnvelope, onAttempt func(int)) (migrationAck, error) {
	body, err := json.Marshal(env)
	if err != nil {
		return migrationAck{}, fmt.Errorf("server: encoding migration envelope: %w", err)
	}
	var ack migrationAck
	err = p.pol.DoWithAttempt(ctx, func(actx context.Context, attempt int) error {
		if onAttempt != nil {
			onAttempt(attempt)
		}
		req, err := http.NewRequestWithContext(actx, http.MethodPost, target+"/v1/migrations/in", bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := json.Unmarshal(data, &ack); err != nil {
				return fmt.Errorf("decoding migration ack: %w", err)
			}
			return nil
		case resp.StatusCode == http.StatusConflict:
			return retry.Permanent(fmt.Errorf("%w: %s", errPeerFenced, firstLine(string(data))))
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			return fmt.Errorf("peer returned %d: %s", resp.StatusCode, firstLine(string(data)))
		default:
			return retry.Permanent(fmt.Errorf("peer refused the transfer (%d): %s", resp.StatusCode, firstLine(string(data))))
		}
	})
	if err != nil {
		return migrationAck{}, err
	}
	return ack, nil
}

// migrationStatusReply is the answer to the recovery question "did
// epoch E of session ID commit on you?". Asking is NOT read-only: a
// "no" fences that epoch at the target, so the asker may safely
// reclaim — the never-both half of exactly-once.
type migrationStatusReply struct {
	ID        string `json:"id"`
	Committed bool   `json:"committed"`
	Epoch     uint64 `json:"epoch"`
}

// status asks target whether (id, epoch) committed there. One retried,
// per-attempt-bounded query; a transport-level failure returns an
// error, meaning "unknown — keep the session fenced and ask again
// later".
func (p *peerClient) status(ctx context.Context, target, id string, epoch uint64) (migrationStatusReply, error) {
	var reply migrationStatusReply
	u := fmt.Sprintf("%s/v1/migrations/in/%s?epoch=%d", target, url.PathEscape(id), epoch)
	err := p.pol.DoWithAttempt(ctx, func(actx context.Context, _ int) error {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := p.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("peer returned %d: %s", resp.StatusCode, firstLine(string(data)))
		}
		if err := json.Unmarshal(data, &reply); err != nil {
			return fmt.Errorf("decoding migration status: %w", err)
		}
		return nil
	})
	if err != nil {
		return migrationStatusReply{}, err
	}
	return reply, nil
}

// idLocks hands out one mutex per session ID, so inbound commits and
// recovery-status queries for the same session serialize while
// unrelated migrations proceed in parallel. Entries are reference
// counted and dropped on last unlock.
type idLocks struct {
	mu sync.Mutex
	m  map[string]*idLockEntry
}

type idLockEntry struct {
	ch   chan struct{}
	refs int
}

func newIDLocks() *idLocks {
	return &idLocks{m: make(map[string]*idLockEntry)}
}

func (l *idLocks) lock(id string) {
	l.mu.Lock()
	e, ok := l.m[id]
	if !ok {
		e = &idLockEntry{ch: make(chan struct{}, 1)}
		l.m[id] = e
	}
	e.refs++
	l.mu.Unlock()
	e.ch <- struct{}{}
}

func (l *idLocks) unlock(id string) {
	l.mu.Lock()
	e := l.m[id]
	<-e.ch
	if e.refs--; e.refs == 0 {
		delete(l.m, id)
	}
	l.mu.Unlock()
}
